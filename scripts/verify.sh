#!/usr/bin/env bash
# Tier-1 verification: what CI should invoke.
#
#   scripts/verify.sh            # plain build + full ctest suite
#   scripts/verify.sh --tsan     # additionally build with -fsanitize=thread
#                                # and run the concurrency-heavy tests
#   scripts/verify.sh --asan     # AddressSanitizer variant of the same
#
# The sanitizer pass uses a separate build directory so the plain build
# stays incremental.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

# Fault-injection schedules run from a fixed seed so CI failures reproduce
# locally with the same command; override via IDB_FAULT_SEED to explore.
export IDB_FAULT_SEED="${IDB_FAULT_SEED:-20260808}"

run_plain() {
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

# Sanitized pass: the tests that drive real thread interleavings, plus the
# fault-injection suite — injected I/O errors exercise the rarely-taken
# unwind paths where use-after-free and lock bugs hide. The rest of the
# suite is single-threaded and adds only build time.
SANITIZE_TESTS="concurrency_stress_test|parallel_scan_test|pushdown_test|partition_test|degradation_engine_test|write_batch_test|wal_stream_test|checkpoint_fuzzy_test|maintenance_test|fault_injection_test|morsel_test|service_test"

run_sanitized() {
  local kind="$1"
  local dir="build-$kind"
  cmake -B "$dir" -S . -DINSTANTDB_SANITIZE="$kind" \
    -DINSTANTDB_BUILD_BENCHMARKS=OFF -DINSTANTDB_BUILD_EXAMPLES=OFF
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j 1 -R "$SANITIZE_TESTS"
}

case "${1:-}" in
  --tsan) run_plain && run_sanitized thread ;;
  --asan) run_plain && run_sanitized address ;;
  "") run_plain ;;
  *) echo "usage: $0 [--tsan|--asan]" >&2; exit 2 ;;
esac
echo "verify: OK"
