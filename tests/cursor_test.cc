#include "query/cursor.h"

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "query/session.h"
#include "util/file.h"

namespace instantdb {
namespace {

/// Person table mirroring the paper's §II example, for equivalence checks.
class CursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_cursor_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);

    auto schema = Schema::Make(
        {ColumnDef::Stable("name", ValueType::kString),
         ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp()),
         ColumnDef::Degradable(
             "salary", SalaryDomain(),
             *AttributeLcp::Make({{0, kMicrosPerDay}, {1, kMicrosPerMonth}}))});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db_->CreateTable("person", *schema).ok());
    session_ = std::make_unique<Session>(db_.get());
  }
  void TearDown() override {
    session_.reset();
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  void InsertPeople() {
    auto exec = [&](const std::string& sql) {
      auto result = session_->Execute(sql);
      ASSERT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    };
    exec("INSERT INTO person VALUES ('alice', '11 Rue Lepic', 2345)");
    exec("INSERT INTO person VALUES ('bob', '3 Av Foch', 2999)");
    exec("INSERT INTO person VALUES ('carol', '4 Rue Breteuil', 3500)");
    exec("INSERT INTO person VALUES ('dave', '8 Cours Mirabeau', 9000)");
  }

  /// Drains a cursor and checks row-for-row equality with Execute on the
  /// same SQL (values, display strings, column headers).
  void ExpectDrainEquivalent(const std::string& sql) {
    auto materialized = session_->Execute(sql);
    ASSERT_TRUE(materialized.ok()) << sql << " -> "
                                   << materialized.status().ToString();
    auto cursor = session_->ExecuteCursor(sql);
    ASSERT_TRUE(cursor.ok()) << sql << " -> " << cursor.status().ToString();
    EXPECT_EQ((*cursor)->columns(), materialized->columns) << sql;
    CursorRow row;
    size_t i = 0;
    while (true) {
      auto more = (*cursor)->Next(&row);
      ASSERT_TRUE(more.ok()) << sql << " -> " << more.status().ToString();
      if (!*more) break;
      ASSERT_LT(i, materialized->rows.size()) << sql;
      EXPECT_EQ(row.values(), materialized->rows[i]) << sql << " row " << i;
      EXPECT_EQ(row.display(), materialized->display[i]) << sql << " row " << i;
      ++i;
    }
    EXPECT_EQ(i, materialized->rows.size()) << sql;
    EXPECT_EQ((*cursor)->rows_returned(), materialized->rows.size()) << sql;
  }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(CursorTest, DrainEquivalenceAtFullAccuracy) {
  InsertPeople();
  ExpectDrainEquivalent("SELECT name, location, salary FROM person");
  ExpectDrainEquivalent("SELECT * FROM person");
  ExpectDrainEquivalent("SELECT name FROM person WHERE name = 'alice'");
  ExpectDrainEquivalent("SELECT name FROM person WHERE name LIKE '%o%'");
  ExpectDrainEquivalent("SELECT name FROM person WHERE name = 'nobody'");
}

TEST_F(CursorTest, DrainEquivalenceUnderPurpose) {
  InsertPeople();
  ASSERT_TRUE(session_
                  ->Execute("DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY "
                            "FOR P.LOCATION, RANGE1000 FOR P.SALARY")
                  .ok());
  // Index path (degradable equality + label LIKE) and range path (BETWEEN).
  ExpectDrainEquivalent(
      "SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%' AND "
      "SALARY = '2000-3000'");
  ExpectDrainEquivalent("SELECT name, salary FROM person "
                        "WHERE salary BETWEEN 2000 AND 3999");
  // Forced heap scan: same answer through the scan source.
  session_->set_use_indexes(false);
  ExpectDrainEquivalent(
      "SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%' AND "
      "SALARY = '2000-3000'");
  session_->set_use_indexes(true);
}

TEST_F(CursorTest, DrainEquivalenceOnMixedPhasesAndRelaxedSemantics) {
  InsertPeople();
  clock_->Advance(kMicrosPerHour);  // locations: address -> city
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  ASSERT_TRUE(session_
                  ->Execute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY "
                            "FOR person.location")
                  .ok());
  ExpectDrainEquivalent("SELECT name, location FROM person "
                        "WHERE location = 'Paris'");
  session_->read_options().include_coarser = true;
  ExpectDrainEquivalent("SELECT name, location FROM person");
}

TEST_F(CursorTest, AggregatesStreamFromBufferedResult) {
  InsertPeople();
  ExpectDrainEquivalent(
      "SELECT COUNT(*), MIN(salary), MAX(salary), SUM(salary) FROM person");
  ASSERT_TRUE(session_
                  ->Execute("DECLARE PURPOSE STAT SET ACCURACY LEVEL REGION "
                            "FOR person.location, RANGE1000 FOR person.salary")
                  .ok());
  ExpectDrainEquivalent(
      "SELECT location, COUNT(*), AVG(salary) FROM person GROUP BY location");
}

TEST_F(CursorTest, CloseStopsIteration) {
  InsertPeople();
  auto cursor = session_->ExecuteCursor("SELECT name FROM person");
  ASSERT_TRUE(cursor.ok());
  CursorRow row;
  auto more = (*cursor)->Next(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(*more);
  (*cursor)->Close();
  more = (*cursor)->Next(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
  EXPECT_EQ((*cursor)->rows_returned(), 1u);
}

TEST_F(CursorTest, DmlThroughCursorStreamsSummaryResult) {
  InsertPeople();
  auto cursor = session_->ExecuteCursor("DELETE FROM person WHERE name = 'dave'");
  ASSERT_TRUE(cursor.ok());
  CursorRow row;
  auto more = (*cursor)->Next(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);  // DML produces no rows; effect applied eagerly
  EXPECT_EQ(db_->GetTable("person")->live_rows(), 3u);
}

/// The streaming acceptance test: a 100k-row SELECT must hand rows out
/// incrementally, not materialize the result at Open. Proof: pull a few
/// hundred rows, delete everything, and observe the stream end after at
/// most one more scan batch — a cursor that had materialized 100k rows up
/// front would keep producing them.
TEST(CursorStreamingTest, HundredThousandRowsAreStreamedNotMaterialized) {
  const std::string dir = ::testing::TempDir() + "/idb_cursor_stream";
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
  VirtualClock clock(0);
  DbOptions options;
  options.path = dir;
  options.clock = &clock;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());

  auto schema = Schema::Make({ColumnDef::Stable("id", ValueType::kInt64),
                              ColumnDef::Stable("payload", ValueType::kString)});
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE((*db)->CreateTable("events", *schema).ok());

  constexpr int kRows = 100000;
  WriteBatch ingest;
  for (int i = 0; i < kRows; ++i) {
    ingest.Insert("events",
                  {Value::Int64(i), Value::String("payload-" + std::to_string(i))});
  }
  ASSERT_TRUE((*db)->Write(&ingest).ok());
  ASSERT_EQ((*db)->GetTable("events")->live_rows(),
            static_cast<uint64_t>(kRows));

  Session session(db->get());
  auto cursor = session.ExecuteCursor("SELECT id, payload FROM events");
  ASSERT_TRUE(cursor.ok());

  CursorRow row;
  constexpr size_t kPulled = 500;
  for (size_t i = 0; i < kPulled; ++i) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more) << "row " << i;
  }

  // Delete every row while the cursor is open. A streaming cursor sees the
  // deletions on its next batch; a materializing one would not.
  WriteBatch wipe;
  for (RowId row_id : ingest.row_ids()) wipe.Delete("events", row_id);
  ASSERT_TRUE((*db)->Write(&wipe).ok());
  ASSERT_EQ((*db)->GetTable("events")->live_rows(), 0u);

  size_t extra = 0;
  while (true) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++extra;
  }
  // At most the remainder of the already-pulled scan batch was in memory.
  EXPECT_LT(kPulled + extra, 1000u)
      << "cursor materialized rows ahead of consumption";

  db->reset();
  RemoveDirRecursive(dir).ok();
}

}  // namespace
}  // namespace instantdb
