// Maintenance daemon + verified-deletion audits (ISSUE 6): the cadence
// scheduler checkpoints only when partitions are dirty (or a WAL segment
// holds an overdue payload), WAL segments retire as the clean-through
// marks advance, the deletion-assurance audit catches a planted stale
// value via the degrader's fault-injection hook, shutdown mid-cadence is
// clean, and — the acceptance bar — a daemon at a 100 ms cadence keeps
// every layer (stores, indexes, WAL, epoch keys) audit-clean across
// every phase-0 deadline with no manual Checkpoint() call. Everything
// runs on a VirtualClock; MaintenanceDaemon::RunOnce is the exact body
// of the background loop, so the pumped tests exercise the real
// scheduler. In scripts/verify.sh's TSan list because the enabled-daemon
// tests race the scheduler thread against ingest and the degrader.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/builtin_domains.h"
#include "common/strings.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "util/file.h"

namespace instantdb {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_maintenance_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  DbOptions Options(VirtualClock* clock) const {
    DbOptions options;
    options.path = dir_;
    options.clock = clock;
    options.partitions = 4;
    options.degradation.worker_threads = 2;
    options.wal.segment_bytes = 4096;  // frequent rollover + retirement
    return options;
  }

  /// pings(user STABLE, location DEGRADABLE) with one accurate phase of
  /// `phase0` then a generalized phase held forever (no tuple removal, so
  /// row counts stay stable across the clock advances).
  void CreatePings(Database* db, Micros phase0) {
    auto lcp = AttributeLcp::Make({{0, phase0}, {1, kForever}});
    ASSERT_TRUE(lcp.ok());
    auto schema = Schema::Make(
        {ColumnDef::Stable("user", ValueType::kString),
         ColumnDef::Degradable("location", LocationDomain(), *lcp)});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db->CreateTable("pings", *schema).ok());
  }

  std::vector<RowId> InsertPings(Database* db, int rows) {
    std::vector<RowId> ids;
    for (int i = 0; i < rows; ++i) {
      auto id = db->Insert(
          "pings", {Value::String(StringPrintf("u%d", i)),
                    Value::String("11 Rue Lepic")});
      EXPECT_TRUE(id.ok()) << id.status().ToString();
      if (id.ok()) ids.push_back(*id);
    }
    return ids;
  }

  std::string dir_;
};

// Service 1, the cadence decision: a cadence point checkpoints iff enough
// partitions are dirty; clean points are counted, not paid for.
TEST_F(MaintenanceTest, CadenceSkipsCleanAndFiresWhenDirty) {
  VirtualClock clock(0);
  auto opened = Database::Open(Options(&clock));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  CreatePings(db.get(), kMicrosPerHour);
  MaintenanceDaemon* daemon = db->maintenance();
  ASSERT_NE(daemon, nullptr);
  ASSERT_FALSE(daemon->running());  // enabled=false: pumped, no thread

  // t=0, nothing dirty: the cadence point records a skip.
  ASSERT_TRUE(daemon->RunOnce(clock.NowMicros()).ok());
  EXPECT_EQ(daemon->stats().checkpoints, 0u);
  EXPECT_EQ(daemon->stats().checkpoints_skipped_clean, 1u);

  // Between cadence points nothing happens, dirty or not.
  InsertPings(db.get(), 4);
  EXPECT_GE(db->DirtyPartitions(), 1u);
  ASSERT_TRUE(daemon->RunOnce(clock.NowMicros()).ok());
  EXPECT_EQ(daemon->stats().checkpoints, 0u);

  // Next cadence point sees the dirty partitions and checkpoints them.
  clock.Advance(kMicrosPerSecond);
  ASSERT_TRUE(daemon->RunOnce(clock.NowMicros()).ok());
  EXPECT_EQ(daemon->stats().checkpoints, 1u);
  EXPECT_EQ(db->DirtyPartitions(), 0u);

  // And the one after that is clean again.
  clock.Advance(kMicrosPerSecond);
  ASSERT_TRUE(daemon->RunOnce(clock.NowMicros()).ok());
  EXPECT_EQ(daemon->stats().checkpoints, 1u);
  EXPECT_EQ(daemon->stats().checkpoints_skipped_clean, 2u);
  EXPECT_EQ(daemon->stats().forced_checkpoints, 0u);
}

// Service 1, the privacy override: when a live WAL segment still holds an
// accurate payload past its phase-0 deadline, the cadence point must
// checkpoint — and thereby retire/scrub the segment — even though the
// dirty threshold says don't.
TEST_F(MaintenanceTest, WalDeadlinePressureForcesRetirement) {
  VirtualClock clock(0);
  DbOptions options = Options(&clock);
  options.maintenance.checkpoint_interval = 100 * kMicrosPerMilli;
  options.maintenance.checkpoint_dirty_threshold = 1000;  // never "dirty"
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  CreatePings(db.get(), kMicrosPerSecond);
  MaintenanceDaemon* daemon = db->maintenance();

  InsertPings(db.get(), 8);  // payload deadlines all at t=1s

  // Before the deadline the threshold wins: no checkpoint, segments live.
  clock.Advance(100 * kMicrosPerMilli);
  ASSERT_TRUE(daemon->RunOnce(clock.NowMicros()).ok());
  EXPECT_EQ(daemon->stats().checkpoints, 0u);
  EXPECT_GE(daemon->stats().checkpoints_skipped_clean, 1u);
  EXPECT_EQ(db->stats().wal.segments_retired, 0u);

  // Past the deadline the segment's min payload deadline is overdue …
  clock.Advance(kMicrosPerSecond);
  EXPECT_GT(db->wal()->AuditExposure(clock.NowMicros()).exposed_segments, 0u);

  // … and the next cadence point force-checkpoints to retire it.
  ASSERT_TRUE(daemon->RunOnce(clock.NowMicros()).ok());
  EXPECT_EQ(daemon->stats().checkpoints, 1u);
  EXPECT_EQ(daemon->stats().forced_checkpoints, 1u);
  EXPECT_GT(db->stats().wal.segments_retired, 0u);
  EXPECT_EQ(db->wal()->AuditExposure(clock.NowMicros()).exposed_segments, 0u);
}

// Service 2: the audit is not a rubber stamp. Plant a stale value by
// telling the degrader to skip one partition; every sweep layer that
// holds the partition's bytes must light up, and healing the fault must
// bring the report back to clean.
TEST_F(MaintenanceTest, AuditCatchesPlantedStaleValue) {
  VirtualClock clock(0);
  auto opened = Database::Open(Options(&clock));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  CreatePings(db.get(), kMicrosPerSecond);
  Table* table = db->GetTable("pings");
  const std::vector<RowId> ids = InsertPings(db.get(), 16);
  ASSERT_EQ(ids.size(), 16u);

  // Fault: the degrader silently "loses" the partition owning row 0.
  const uint32_t victim = table->PartitionOf(ids[0]);
  uint64_t planted = 0;
  for (RowId id : ids) planted += table->PartitionOf(id) == victim ? 1 : 0;
  ASSERT_GT(planted, 0u);
  db->degradation()->TEST_FaultSkipPartition(table->id(), victim, true);

  clock.Advance(3 * kMicrosPerSecond);  // two seconds past the deadline
  ASSERT_TRUE(db->RunDegradationOnce().ok());

  AuditReport report = db->Audit();
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.Verify().ok());
  EXPECT_EQ(report.exposed_values, planted);
  // The worst attack window is exactly how long the fault has held the
  // values past their t=1s deadline.
  EXPECT_EQ(report.max_exposure, 2 * kMicrosPerSecond);
  ASSERT_EQ(report.tables.size(), 1u);
  EXPECT_EQ(report.tables[0].name, "pings");
  EXPECT_EQ(report.tables[0].rows_scanned, 16u);
  EXPECT_EQ(report.tables[0].exposed_values, planted);
  // The WAL still holds the accurate insert payloads too.
  EXPECT_GT(report.exposed_wal_segments, 0u);
  EXPECT_EQ(db->stats().maintenance.audits_failed, 1u);

  // Heal the fault: degrade the victim partition, let the cadence point
  // retire the overdue segments, and the audit comes back clean.
  db->degradation()->TEST_FaultSkipPartition(table->id(), victim, false);
  ASSERT_TRUE(db->RunDegradationOnce().ok());
  ASSERT_TRUE(db->maintenance()->RunOnce(clock.NowMicros()).ok());
  report = db->Audit();
  EXPECT_TRUE(report.Verify().ok()) << report.ToString();
  EXPECT_EQ(db->stats().maintenance.max_exposure_seen, 2 * kMicrosPerSecond);
}

// The paper's unsafe baseline: a kPlain WAL retires segments by rename
// and leaves the bytes on disk. The audit flags that permanently — there
// is no clean report to be had in kPlain once a payload-bearing segment
// retires.
TEST_F(MaintenanceTest, PlainWalModeIsPermanentlyFlagged) {
  VirtualClock clock(0);
  DbOptions options = Options(&clock);
  options.wal.privacy_mode = WalPrivacyMode::kPlain;
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  CreatePings(db.get(), kMicrosPerSecond);
  InsertPings(db.get(), 8);

  clock.Advance(2 * kMicrosPerSecond);
  ASSERT_TRUE(db->RunDegradationOnce().ok());
  ASSERT_TRUE(db->maintenance()->RunOnce(clock.NowMicros()).ok());
  ASSERT_GT(db->stats().wal.segments_retired, 0u);

  const AuditReport report = db->Audit();
  EXPECT_GT(report.unscrubbed_recycled_segments, 0u);
  EXPECT_FALSE(report.clean());
}

// Service 3, policy hooks: while paused, cadence points pass without
// work — and without accumulating a backlog Resume would replay.
TEST_F(MaintenanceTest, PauseGatesCadenceWithoutBacklog) {
  VirtualClock clock(0);
  auto opened = Database::Open(Options(&clock));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  CreatePings(db.get(), kMicrosPerHour);
  MaintenanceDaemon* daemon = db->maintenance();

  InsertPings(db.get(), 4);
  daemon->Pause();
  EXPECT_TRUE(daemon->paused());
  for (int i = 0; i < 5; ++i) {
    clock.Advance(kMicrosPerSecond);
    ASSERT_TRUE(daemon->RunOnce(clock.NowMicros()).ok());
  }
  EXPECT_EQ(daemon->stats().checkpoints, 0u);
  EXPECT_EQ(daemon->stats().checkpoints_skipped_clean, 0u);

  // One resume, one cadence point, one checkpoint — not five.
  daemon->Resume();
  clock.Advance(kMicrosPerSecond);
  ASSERT_TRUE(daemon->RunOnce(clock.NowMicros()).ok());
  EXPECT_EQ(daemon->stats().checkpoints, 1u);
}

// Lifecycle: an enabled daemon (real scheduler thread) works the cadence
// on a VirtualClock, and Close() stops it cleanly mid-flight — shutdown
// order contract: daemon first, then degrader, then the final checkpoint.
TEST_F(MaintenanceTest, EnabledDaemonRunsAndShutsDownCleanly) {
  VirtualClock clock(0);
  DbOptions options = Options(&clock);
  options.maintenance.enabled = true;
  options.maintenance.checkpoint_interval = 100 * kMicrosPerMilli;
  options.maintenance.audit_interval = 100 * kMicrosPerMilli;
  options.degradation.background_thread = true;
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  CreatePings(db.get(), kMicrosPerHour);  // nothing comes due in this test
  ASSERT_TRUE(db->maintenance()->running());
  InsertPings(db.get(), 16);

  // Walk virtual time across cadence points until the scheduler has both
  // checkpointed the dirty partitions and completed an audit. The loop is
  // bounded by real time, not virtual time — a hang fails the test.
  for (int i = 0; i < 5000; ++i) {
    const MaintenanceDaemon::Stats stats = db->stats().maintenance;
    if (stats.checkpoints >= 1 && stats.audits >= 1) break;
    clock.Advance(100 * kMicrosPerMilli);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const MaintenanceDaemon::Stats stats = db->stats().maintenance;
  EXPECT_GE(stats.checkpoints, 1u);
  EXPECT_GE(stats.audits, 1u);
  EXPECT_EQ(stats.audits_failed, 0u);
  EXPECT_GT(stats.audit_rows_scanned, 0u);

  ASSERT_TRUE(db->Close().ok());
  EXPECT_FALSE(db->maintenance()->running());
  EXPECT_FALSE(db->degradation()->running());
  ASSERT_TRUE(db->Close().ok());  // idempotent
}

// The acceptance bar (ISSUE 6): with the daemon on a 100 ms cadence, an
// audit taken after EVERY phase-0 deadline reports zero exposed values
// across stores, indexes, WAL segments and epoch keys — with no manual
// Checkpoint() call anywhere. Parameterized over the privacy modes that
// can be clean (kPlain is the unsafe baseline, proven dirty above).
class MaintenanceAcceptanceTest
    : public MaintenanceTest,
      public ::testing::WithParamInterface<WalPrivacyMode> {};

TEST_P(MaintenanceAcceptanceTest, DaemonKeepsEveryLayerCleanAtEveryDeadline) {
  constexpr Micros kStep = 100 * kMicrosPerMilli;
  constexpr Micros kPhase0 = 500 * kMicrosPerMilli;

  VirtualClock clock(0);
  DbOptions options = Options(&clock);
  options.wal.privacy_mode = GetParam();
  options.wal.epoch_micros = kStep;  // epochs as fine as the cadence
  options.maintenance.checkpoint_interval = kStep;
  options.maintenance.audit_interval = kStep;
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  CreatePings(db.get(), kPhase0);
  MaintenanceDaemon* daemon = db->maintenance();

  // Ingest a batch every 300 ms over three virtual seconds; each batch's
  // phase-0 deadline lands exactly on a later cadence point. At every step
  // the degrader runs, then the daemon's cadence point, then a full audit
  // that must be clean — including the steps where a deadline just fired.
  int inserted = 0;
  for (int step = 0; step < 30; ++step) {
    if (step % 3 == 0) {
      InsertPings(db.get(), 8);
      inserted += 8;
    }
    clock.Advance(kStep);
    const Micros now = clock.NowMicros();
    ASSERT_TRUE(db->RunDegradationOnce().ok());
    ASSERT_TRUE(daemon->RunOnce(now).ok());
    const AuditReport report = db->Audit();
    ASSERT_TRUE(report.Verify().ok())
        << "step " << step << ": " << report.ToString();
    EXPECT_EQ(report.at, now);
  }

  // The daemon did the checkpointing: cadence points fired, several were
  // real checkpoints (every 300 ms batch dirties partitions), and the worst
  // attack window any audit saw across all 30 deadline-crossing steps is
  // exactly zero.
  const MaintenanceDaemon::Stats stats = db->stats().maintenance;
  EXPECT_GE(stats.checkpoints, 5u);
  EXPECT_GE(stats.audits, 30u);
  EXPECT_EQ(stats.audits_failed, 0u);
  EXPECT_EQ(stats.max_exposure_seen, 0);
  EXPECT_GE(stats.audit_rows_scanned, static_cast<uint64_t>(inserted));
  if (GetParam() == WalPrivacyMode::kEncryptedEpoch) {
    EXPECT_GT(db->stats().wal.epoch_keys_destroyed, 0u);
  }
  ASSERT_TRUE(db->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(PrivacyModes, MaintenanceAcceptanceTest,
                         ::testing::Values(WalPrivacyMode::kScrub,
                                           WalPrivacyMode::kEncryptedEpoch),
                         [](const auto& info) {
                           return info.param == WalPrivacyMode::kScrub
                                      ? "Scrub"
                                      : "EncryptedEpoch";
                         });

}  // namespace
}  // namespace instantdb
