#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "storage/key_manager.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "util/file.h"

namespace instantdb {
namespace {

// --- LockManager -----------------------------------------------------------------

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  const LockKey key = LockKey::Table(1);
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, key, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(3, key, LockMode::kShared).ok());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  lm.ReleaseAll(3);
}

TEST(LockManagerTest, ExclusiveConflictsYoungerDies) {
  LockManager lm;
  const LockKey key = LockKey::Row(1, 42);
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kExclusive).ok());
  // Younger transaction (larger id) requesting a conflicting lock dies.
  EXPECT_TRUE(lm.Acquire(2, key, LockMode::kExclusive).IsAborted());
  EXPECT_TRUE(lm.Acquire(2, key, LockMode::kShared).IsAborted());
  EXPECT_EQ(lm.stats().die_aborts, 2u);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.Acquire(2, key, LockMode::kExclusive).ok());
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, OlderWaitsForYounger) {
  LockManager lm;
  const LockKey key = LockKey::Store(1, 0, 0);
  ASSERT_TRUE(lm.Acquire(5, key, LockMode::kExclusive).ok());

  std::atomic<bool> granted{false};
  std::thread older([&] {
    // Txn 2 is older than holder 5: it must block, not die.
    EXPECT_TRUE(lm.Acquire(2, key, LockMode::kExclusive).ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  lm.ReleaseAll(5);
  older.join();
  EXPECT_TRUE(granted.load());
  EXPECT_GE(lm.stats().waits, 1u);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ReacquireAndUpgrade) {
  LockManager lm;
  const LockKey key = LockKey::Table(9);
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
  // Re-acquire same mode: no-op.
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
  // Upgrade with no other holder succeeds.
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kExclusive).ok());
  // X implies S.
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
  EXPECT_EQ(lm.HeldBy(1).size(), 1u);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.HeldBy(1).empty());
}

TEST(LockManagerTest, UpgradeConflictsWithOtherSharer) {
  LockManager lm;
  const LockKey key = LockKey::Table(9);
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, key, LockMode::kShared).ok());
  // Younger sharer trying to upgrade dies (older sharer present).
  EXPECT_TRUE(lm.Acquire(2, key, LockMode::kExclusive).IsAborted());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, DistinctKeysDoNotConflict) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, LockKey::Row(1, 5), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, LockKey::Row(1, 6), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(3, LockKey::Row(2, 5), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(4, LockKey::Store(1, 0, 1), LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(5, LockKey::Store(1, 1, 0), LockMode::kExclusive).ok());
  for (uint64_t t = 1; t <= 5; ++t) lm.ReleaseAll(t);
}

TEST(LockManagerTest, MutualExclusionUnderContention) {
  LockManager lm;
  const LockKey key = LockKey::Row(1, 1);
  int counter = 0;
  std::atomic<uint64_t> next_id{1};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        // Retry loop: wait-die victims restart with a fresh (younger) id,
        // as a real transaction restart would.
        for (;;) {
          const uint64_t id = next_id.fetch_add(1);
          if (lm.Acquire(id, key, LockMode::kExclusive).ok()) {
            ++counter;  // protected by the X lock
            lm.ReleaseAll(id);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 800);
}

// --- TransactionManager ------------------------------------------------------------

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_txn_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(CreateDirs(dir_).ok());
    keys_ = std::make_unique<KeyManager>(dir_ + "/keystore");
    ASSERT_TRUE(keys_->Open().ok());
    wal_ = std::make_unique<WalManager>(dir_ + "/wal", WalOptions{},
                                        keys_.get());
    ASSERT_TRUE(wal_->Open().ok());
    tm_ = std::make_unique<TransactionManager>(&locks_, wal_.get());
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  WalRecord InsertRecord(RowId row) {
    WalRecord record;
    record.type = WalRecordType::kInsert;
    record.table = 1;
    record.row_id = row;
    record.stable = {Value::Int64(static_cast<int64_t>(row))};
    return record;
  }

  std::string dir_;
  std::unique_ptr<KeyManager> keys_;
  std::unique_ptr<WalManager> wal_;
  LockManager locks_;
  std::unique_ptr<TransactionManager> tm_;
};

TEST_F(TxnTest, CommitAppliesOpsInOrderAndLogs) {
  auto txn = tm_->Begin();
  std::vector<int> applied;
  txn->AddOp(InsertRecord(1), [&] {
    applied.push_back(1);
    return Status::OK();
  });
  txn->AddOp(InsertRecord(2), [&] {
    applied.push_back(2);
    return Status::OK();
  });
  ASSERT_TRUE(txn->Lock(LockKey::Row(1, 1), LockMode::kExclusive).ok());
  ASSERT_TRUE(tm_->Commit(txn.get()).ok());
  EXPECT_EQ(txn->state(), TxnState::kCommitted);
  EXPECT_EQ(applied, (std::vector<int>{1, 2}));
  EXPECT_TRUE(locks_.HeldBy(txn->id()).empty());

  // WAL contains the two ops followed by a COMMIT with the txn id.
  std::vector<WalRecordType> types;
  uint64_t commit_txn = 0;
  ASSERT_TRUE(wal_->Replay(0, [&](const WalRecord& r, Lsn) {
                   types.push_back(r.type);
                   if (r.type == WalRecordType::kCommit) commit_txn = r.txn_id;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(types, (std::vector<WalRecordType>{WalRecordType::kInsert,
                                               WalRecordType::kInsert,
                                               WalRecordType::kCommit}));
  EXPECT_EQ(commit_txn, txn->id());
}

TEST_F(TxnTest, AbortDropsOpsAndLogsNothing) {
  auto txn = tm_->Begin();
  bool applied = false;
  txn->AddOp(InsertRecord(1), [&] {
    applied = true;
    return Status::OK();
  });
  ASSERT_TRUE(txn->Lock(LockKey::Row(1, 1), LockMode::kExclusive).ok());
  tm_->Abort(txn.get());
  EXPECT_EQ(txn->state(), TxnState::kAborted);
  EXPECT_FALSE(applied);
  EXPECT_TRUE(locks_.HeldBy(txn->id()).empty());
  size_t records = 0;
  ASSERT_TRUE(wal_->Replay(0, [&](const WalRecord&, Lsn) {
                   ++records;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(records, 0u);
  EXPECT_EQ(tm_->stats().aborted, 1u);
}

TEST_F(TxnTest, ReadOnlyCommitWritesNoWal) {
  auto txn = tm_->Begin();
  ASSERT_TRUE(txn->Lock(LockKey::Table(1), LockMode::kShared).ok());
  EXPECT_TRUE(txn->read_only());
  ASSERT_TRUE(tm_->Commit(txn.get()).ok());
  EXPECT_EQ(wal_->stats().records_appended, 0u);
}

TEST_F(TxnTest, TxnIdsAreMonotone) {
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  auto t3 = tm_->Begin();
  EXPECT_LT(t1->id(), t2->id());
  EXPECT_LT(t2->id(), t3->id());
  tm_->Abort(t1.get());
  tm_->Abort(t2.get());
  tm_->Abort(t3.get());
}

TEST_F(TxnTest, TwoPassRecoveryIgnoresUncommitted) {
  // Simulate the recovery protocol: a committed txn and an uncommitted one
  // both reach the log (the latter without its COMMIT record, as if the
  // crash hit between op logging and commit).
  auto committed = tm_->Begin();
  committed->AddOp(InsertRecord(1), [] { return Status::OK(); });
  ASSERT_TRUE(tm_->Commit(committed.get()).ok());

  WalRecord orphan = InsertRecord(2);
  orphan.txn_id = 999;
  ASSERT_TRUE(wal_->Append(orphan, true).ok());

  // Pass 1: committed set. Pass 2: apply filter.
  std::set<uint64_t> committed_ids;
  ASSERT_TRUE(wal_->Replay(0, [&](const WalRecord& r, Lsn) {
                   if (r.type == WalRecordType::kCommit) {
                     committed_ids.insert(r.txn_id);
                   }
                   return Status::OK();
                 }).ok());
  std::vector<RowId> redone;
  ASSERT_TRUE(wal_->Replay(0, [&](const WalRecord& r, Lsn) {
                   if (r.type == WalRecordType::kInsert &&
                       committed_ids.count(r.txn_id) != 0) {
                     redone.push_back(r.row_id);
                   }
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(redone, (std::vector<RowId>{1}));
}

}  // namespace
}  // namespace instantdb
