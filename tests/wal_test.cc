#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/strings.h"
#include "gtest/gtest.h"
#include "storage/key_manager.h"
#include "util/file.h"
#include "wal/log_record.h"
#include "wal/wal_manager.h"

namespace instantdb {
namespace {

WalRecord MakeInsert(TableId table, RowId row, Micros t,
                     const std::string& secret) {
  WalRecord record;
  record.type = WalRecordType::kInsert;
  record.txn_id = 7;
  record.table = table;
  record.row_id = row;
  record.insert_time = t;
  record.stable = {Value::Int64(static_cast<int64_t>(row)),
                   Value::String("donor")};
  record.degradable = {Value::String(secret), Value::Int64(2000)};
  return record;
}

class WalTest : public ::testing::TestWithParam<WalPrivacyMode> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_wal_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(CreateDirs(dir_).ok());
    keys_ = std::make_unique<KeyManager>(dir_ + "/keystore");
    ASSERT_TRUE(keys_->Open().ok());
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  WalOptions MakeOptions() {
    WalOptions options;
    options.privacy_mode = GetParam();
    options.segment_bytes = 512;  // tiny segments to exercise rollover
    options.epoch_micros = kMicrosPerHour;
    return options;
  }

  std::unique_ptr<WalManager> MakeWal() {
    return std::make_unique<WalManager>(dir_ + "/wal", MakeOptions(),
                                        keys_.get());
  }

  /// Concatenated bytes of every file under the WAL dir (incl. recycled).
  std::string AllWalBytes() {
    std::string all;
    auto names = ListDir(dir_ + "/wal");
    if (!names.ok()) return all;
    for (const auto& name : *names) {
      auto contents = ReadFileToString(dir_ + "/wal/" + name);
      if (contents.ok()) all += *contents;
    }
    return all;
  }

  std::string dir_;
  std::unique_ptr<KeyManager> keys_;
};

TEST_P(WalTest, AppendAndReplayRoundTrip) {
  auto wal = MakeWal();
  ASSERT_TRUE(wal->Open().ok());
  std::vector<Lsn> lsns;
  for (RowId r = 1; r <= 20; ++r) {
    auto lsn = wal->Append(MakeInsert(1, r, r * kMicrosPerMinute,
                                      StringPrintf("addr-%llu",
                                                   static_cast<unsigned long long>(r))),
                           false);
    ASSERT_TRUE(lsn.ok());
    lsns.push_back(*lsn);
  }
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_TRUE(std::is_sorted(lsns.begin(), lsns.end()));

  std::vector<WalRecord> seen;
  ASSERT_TRUE(wal->Replay(0, [&](const WalRecord& record, Lsn) {
                   seen.push_back(record);
                   return Status::OK();
                 }).ok());
  ASSERT_EQ(seen.size(), 20u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].row_id, i + 1);
    ASSERT_FALSE(seen[i].degradable_unavailable);
    ASSERT_EQ(seen[i].degradable.size(), 2u);
    EXPECT_EQ(seen[i].degradable[0],
              Value::String(StringPrintf("addr-%llu",
                                         static_cast<unsigned long long>(i + 1))));
  }
}

TEST_P(WalTest, ReplayFromMidpoint) {
  auto wal = MakeWal();
  ASSERT_TRUE(wal->Open().ok());
  Lsn mid = 0;
  for (RowId r = 1; r <= 10; ++r) {
    auto lsn = wal->Append(MakeInsert(1, r, 0, "x"), false);
    ASSERT_TRUE(lsn.ok());
    if (r == 6) mid = *lsn;
  }
  size_t count = 0;
  RowId first = 0;
  ASSERT_TRUE(wal->Replay(mid, [&](const WalRecord& record, Lsn) {
                   if (count++ == 0) first = record.row_id;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(first, 6u);
}

TEST_P(WalTest, ReopenResumesAppendingAfterTornTail) {
  Lsn end_before;
  {
    auto wal = MakeWal();
    ASSERT_TRUE(wal->Open().ok());
    for (RowId r = 1; r <= 5; ++r) {
      ASSERT_TRUE(wal->Append(MakeInsert(1, r, 0, "secret"), false).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
    end_before = wal->next_lsn();
  }
  // Corrupt the tail: append garbage that looks like a partial frame.
  {
    auto names = ListDir(dir_ + "/wal");
    ASSERT_TRUE(names.ok());
    std::string last;
    for (const auto& name : *names) {
      if (EndsWith(name, ".log") && name > last) last = name;
    }
    ASSERT_FALSE(last.empty());
    auto f = NewAppendableFile(dir_ + "/wal/" + last);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("\xde\xad\xbe\xef partial").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  auto wal = MakeWal();
  ASSERT_TRUE(wal->Open().ok());
  EXPECT_EQ(wal->next_lsn(), end_before);  // torn bytes dropped
  size_t count = 0;
  ASSERT_TRUE(wal->Replay(0, [&](const WalRecord&, Lsn) {
                   ++count;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(count, 5u);
  // New appends still replay correctly.
  ASSERT_TRUE(wal->Append(MakeInsert(1, 6, 0, "after"), true).ok());
  count = 0;
  ASSERT_TRUE(wal->Replay(0, [&](const WalRecord&, Lsn) {
                   ++count;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(count, 6u);
}

TEST_P(WalTest, CheckpointRetiresSegments) {
  auto wal = MakeWal();
  ASSERT_TRUE(wal->Open().ok());
  for (RowId r = 1; r <= 50; ++r) {
    ASSERT_TRUE(wal->Append(MakeInsert(1, r, 0, "payload-payload"), false).ok());
  }
  ASSERT_GT(wal->stats().segments_created, 2u);
  // Quiescent vector checkpoint; a one-stream log has a one-entry vector.
  auto ckpt_vec = wal->LogCheckpointAll({});
  ASSERT_TRUE(ckpt_vec.ok());
  ASSERT_EQ(ckpt_vec->size(), 1u);
  const Lsn ckpt = (*ckpt_vec)[0];
  EXPECT_GT(wal->stats().segments_retired, 0u);
  auto read_back = wal->ReadCheckpointPositions();
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, *ckpt_vec);
  // Replay from the checkpoint sees nothing: everything before it (incl.
  // the checkpoint record) is covered, and its segment was rotated out.
  size_t count = 0;
  ASSERT_TRUE(wal->Replay(ckpt, [&](const WalRecord&, Lsn) {
                   ++count;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(count, 0u);
  // New appends after the checkpoint do replay.
  ASSERT_TRUE(wal->Append(MakeInsert(1, 99, 0, "post-ckpt"), true).ok());
  ASSERT_TRUE(wal->Replay(ckpt, [&](const WalRecord& record, Lsn) {
                   ++count;
                   EXPECT_EQ(record.row_id, 99u);
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(count, 1u);
}

TEST_P(WalTest, DegradeStepAndDeleteRecordsRoundTrip) {
  auto wal = MakeWal();
  ASSERT_TRUE(wal->Open().ok());
  WalRecord step;
  step.type = WalRecordType::kDegradeStep;
  step.table = 3;
  step.column = 2;
  step.from_phase = 0;
  step.to_phase = 1;
  step.up_to_row_id = 17;
  step.entries = {{15, 100, Value::String("Paris")},
                  {17, 120, Value::String("Aix")}};
  ASSERT_TRUE(wal->Append(step, false).ok());

  WalRecord del;
  del.type = WalRecordType::kDelete;
  del.table = 3;
  del.row_id = 15;
  ASSERT_TRUE(wal->Append(del, false).ok());

  std::vector<WalRecord> seen;
  ASSERT_TRUE(wal->Replay(0, [&](const WalRecord& record, Lsn) {
                   seen.push_back(record);
                   return Status::OK();
                 }).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].type, WalRecordType::kDegradeStep);
  EXPECT_EQ(seen[0].column, 2);
  EXPECT_EQ(seen[0].up_to_row_id, 17u);
  ASSERT_EQ(seen[0].entries.size(), 2u);
  EXPECT_EQ(seen[0].entries[1].value, Value::String("Aix"));
  EXPECT_EQ(seen[1].type, WalRecordType::kDelete);
  EXPECT_EQ(seen[1].row_id, 15u);
}

TEST_P(WalTest, AccurateResidueMatchesPrivacyMode) {
  const std::string secret = "SECRET-STREET-ADDRESS-1234";
  auto wal = MakeWal();
  ASSERT_TRUE(wal->Open().ok());
  for (RowId r = 1; r <= 40; ++r) {
    ASSERT_TRUE(wal->Append(MakeInsert(1, r, 0, secret), false).ok());
  }
  ASSERT_TRUE(wal->Sync().ok());

  if (GetParam() == WalPrivacyMode::kEncryptedEpoch) {
    // Even before retirement, the accurate value never hits the disk in
    // the clear.
    EXPECT_EQ(AllWalBytes().find(secret), std::string::npos);
  } else {
    EXPECT_NE(AllWalBytes().find(secret), std::string::npos);
  }

  ASSERT_TRUE(wal->LogCheckpointAll({}).ok());
  const std::string bytes = AllWalBytes();
  switch (GetParam()) {
    case WalPrivacyMode::kPlain:
      // Recycled segments keep the accurate values around — the unsafe
      // baseline the paper warns about.
      EXPECT_NE(bytes.find(secret), std::string::npos);
      break;
    case WalPrivacyMode::kScrub:
    case WalPrivacyMode::kEncryptedEpoch:
      EXPECT_EQ(bytes.find(secret), std::string::npos);
      break;
  }
}

TEST_P(WalTest, EpochKeyDestructionMakesInsertsUnreadable) {
  if (GetParam() != WalPrivacyMode::kEncryptedEpoch) GTEST_SKIP();
  auto wal = MakeWal();
  ASSERT_TRUE(wal->Open().ok());
  // Epoch 0: t < 1h. Epoch 1: 1h <= t < 2h.
  ASSERT_TRUE(wal->Append(MakeInsert(1, 1, 0, "old-epoch-addr"), false).ok());
  ASSERT_TRUE(wal
                  ->Append(MakeInsert(1, 2, kMicrosPerHour + 1,
                                      "new-epoch-addr"),
                           false)
                  .ok());
  ASSERT_TRUE(wal->Sync().ok());

  // Destroy epoch 0 (everything before 1h is fully degraded).
  ASSERT_TRUE(wal->DestroyEpochKeysThrough(1, kMicrosPerHour).ok());
  EXPECT_EQ(wal->stats().epoch_keys_destroyed, 1u);

  std::vector<WalRecord> seen;
  ASSERT_TRUE(wal->Replay(0, [&](const WalRecord& record, Lsn) {
                   seen.push_back(record);
                   return Status::OK();
                 }).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0].degradable_unavailable);
  EXPECT_TRUE(seen[0].degradable.empty());
  EXPECT_FALSE(seen[1].degradable_unavailable);
  ASSERT_EQ(seen[1].degradable.size(), 2u);
  EXPECT_EQ(seen[1].degradable[0], Value::String("new-epoch-addr"));
  // Idempotent: destroying again is a no-op.
  ASSERT_TRUE(wal->DestroyEpochKeysThrough(1, kMicrosPerHour).ok());
  EXPECT_EQ(wal->stats().epoch_keys_destroyed, 1u);
}

TEST_P(WalTest, CorruptFrameStopsReplayCleanly) {
  Lsn logical_end = 0;
  auto wal = MakeWal();
  ASSERT_TRUE(wal->Open().ok());
  for (RowId r = 1; r <= 3; ++r) {
    ASSERT_TRUE(wal->Append(MakeInsert(1, r, 0, "v"), false).ok());
  }
  ASSERT_TRUE(wal->Sync().ok());
  logical_end = wal->next_lsn();
  // Flip a byte inside the last record's body (segments are preallocated,
  // so the physical tail is zeros — corrupt at the *logical* end): CRC
  // rejects it and replay treats it as the end of the log.
  auto names = ListDir(dir_ + "/wal");
  ASSERT_TRUE(names.ok());
  for (const auto& name : *names) {
    if (!EndsWith(name, ".log")) continue;
    const std::string path = dir_ + "/wal/" + name;
    auto contents = ReadFileToString(path);
    ASSERT_TRUE(contents.ok());
    if (contents->size() < 20) continue;
    std::string mutated = *contents;
    const size_t start =
        std::strtoull(name.c_str() + 4, nullptr, 16);  // wal_<start-lsn>.log
    const size_t tail =
        logical_end > start ? std::min<size_t>(logical_end - start,
                                               mutated.size())
                            : mutated.size();
    if (tail < 20) continue;
    mutated[tail - 3] ^= 0x5A;
    ASSERT_TRUE(WriteStringToFile(path, mutated, false).ok());
  }
  auto reopened = MakeWal();
  ASSERT_TRUE(reopened->Open().ok());
  size_t count = 0;
  ASSERT_TRUE(reopened->Replay(0, [&](const WalRecord&, Lsn) {
                   ++count;
                   return Status::OK();
                 }).ok());
  EXPECT_LT(count, 3u);
}

INSTANTIATE_TEST_SUITE_P(AllPrivacyModes, WalTest,
                         ::testing::Values(WalPrivacyMode::kPlain,
                                           WalPrivacyMode::kScrub,
                                           WalPrivacyMode::kEncryptedEpoch),
                         [](const auto& info) {
                           switch (info.param) {
                             case WalPrivacyMode::kPlain:
                               return "Plain";
                             case WalPrivacyMode::kScrub:
                               return "Scrub";
                             case WalPrivacyMode::kEncryptedEpoch:
                               return "EncryptedEpoch";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace instantdb
