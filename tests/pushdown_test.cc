// Pushdown execution: stable-predicate pre-filtering and aggregate partials
// computed below row assembly must return exactly what the reference path
// (full RowView assembly, σ above) returns — across predicate shapes, scan
// parallelism and WAL privacy modes — while the scan counters prove the
// store probes were actually skipped. Also covers the batched store probe
// (TablePartition::ProbeMany vs per-row assembly), the maintenance daemon's
// adaptive checkpoint cadence, and audit-driven urgent repair. Runs under
// TSan/ASan in scripts/verify.sh: the aggregate fan-out and the
// degrade-while-aggregating test are real cross-thread paths.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "query/cursor.h"
#include "query/session.h"
#include "util/file.h"

namespace instantdb {
namespace {

class PushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_pushdown_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override {
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  /// Fresh database: `rows` pings with a unique stable score (0..rows-1, so
  /// "score < K" selects exactly K rows), a mix of phase-0 and phase-1
  /// locations, spread over `partitions` partitions.
  void BuildDb(uint32_t partitions, int rows,
               WalPrivacyMode privacy = WalPrivacyMode::kScrub) {
    db_.reset();
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    options.partitions = partitions;
    options.degradation.worker_threads = partitions;
    options.wal.privacy_mode = privacy;
    auto opened = Database::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db_ = std::move(*opened);

    auto schema = Schema::Make(
        {ColumnDef::Stable("user", ValueType::kString),
         ColumnDef::Stable("score", ValueType::kInt64),
         ColumnDef::Degradable("location", LocationDomain(),
                               Fig2LocationLcp())});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db_->CreateTable("pings", *schema).ok());

    const char* kAddresses[] = {"11 Rue Lepic", "3 Av Foch", "12 Rue Royale",
                                "4 Rue Breteuil", "8 Cours Mirabeau"};
    auto insert_range = [&](int from, int to) {
      for (int start = from; start < to; start += 25) {
        WriteBatch batch;
        for (int i = start; i < std::min(start + 25, to); ++i) {
          batch.Insert("pings", {Value::String("u" + std::to_string(i)),
                                 Value::Int64(i),
                                 Value::String(kAddresses[i % 5])});
        }
        ASSERT_TRUE(db_->Write(&batch).ok());
      }
    };
    insert_range(0, rows / 2);
    // First half degrades address -> city; second half stays accurate.
    clock_->Advance(kMicrosPerHour + kMicrosPerMinute);
    ASSERT_TRUE(db_->RunDegradationOnce().ok());
    insert_range(rows / 2, rows);
  }

  /// Streaming drain keyed by user (parallel scans interleave partitions).
  std::map<std::string, std::vector<std::string>> DrainCursor(
      Session* session, const std::string& sql, size_t parallelism,
      bool pushdown) {
    session->scan_options().parallelism = parallelism;
    session->scan_options().pushdown = pushdown;
    std::map<std::string, std::vector<std::string>> rows;
    auto cursor = session->ExecuteCursor(sql);
    EXPECT_TRUE(cursor.ok()) << sql << " -> " << cursor.status().ToString();
    if (!cursor.ok()) return rows;
    CursorRow row;
    while (true) {
      auto more = (*cursor)->Next(&row);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      const auto [it, inserted] = rows.emplace(row.display()[0], row.display());
      EXPECT_TRUE(inserted) << "duplicate row for " << row.display()[0];
    }
    return rows;
  }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(PushdownTest, EquivalenceAcrossPredicatesParallelismAndPrivacyModes) {
  constexpr int kRows = 600;
  const std::vector<std::string> kQueries = {
      // No predicate, stable + degradable projection.
      "SELECT user, location FROM pings",
      // Stable-only conjunction (the vector kernels do all the work).
      "SELECT user, score FROM pings WHERE score < 60 AND score >= 6",
      // Degradable-only predicate (nothing to push; stores still probed).
      "SELECT user, location FROM pings WHERE location = 'Paris'",
      // Mixed: stable term below assembly, degradable term above.
      "SELECT user, location FROM pings WHERE score < 300 AND "
      "location = 'Paris'",
      // Stable-only projection + predicate: no store probe at all.
      "SELECT user FROM pings WHERE score < 6",
  };
  for (WalPrivacyMode privacy :
       {WalPrivacyMode::kPlain, WalPrivacyMode::kScrub,
        WalPrivacyMode::kEncryptedEpoch}) {
    BuildDb(4, kRows, privacy);
    Session session(db_.get());
    // CITY accuracy makes every row computable regardless of phase.
    ASSERT_TRUE(session
                    .Execute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY "
                             "FOR pings.location")
                    .ok());
    for (const std::string& sql : kQueries) {
      const auto baseline =
          DrainCursor(&session, sql, /*parallelism=*/1, /*pushdown=*/false);
      for (size_t parallelism : {1u, 4u, 8u}) {
        EXPECT_EQ(DrainCursor(&session, sql, parallelism, /*pushdown=*/true),
                  baseline)
            << sql << " parallelism=" << parallelism;
        EXPECT_EQ(DrainCursor(&session, sql, parallelism, /*pushdown=*/false),
                  baseline)
            << sql << " parallelism=" << parallelism;
      }
      // Materialized path (snapshot-per-partition source) agrees too.
      for (const bool pushdown : {true, false}) {
        session.scan_options().pushdown = pushdown;
        session.scan_options().parallelism = 0;
        auto materialized = session.Execute(sql);
        ASSERT_TRUE(materialized.ok()) << sql;
        EXPECT_EQ(materialized->rows.size(), baseline.size())
            << sql << " pushdown=" << pushdown;
      }
      // Heap path forced even where an index probe would win.
      session.set_use_indexes(false);
      EXPECT_EQ(DrainCursor(&session, sql, 4, /*pushdown=*/true), baseline)
          << sql << " (indexes off)";
      session.set_use_indexes(true);
    }
  }
}

TEST_F(PushdownTest, StablePrefilterSkipsStoreProbesAndCountsThem) {
  constexpr int kRows = 600;
  BuildDb(4, kRows);
  Session session(db_.get());
  session.scan_options().pushdown = true;
  session.scan_options().parallelism = 1;

  // Stable-only projection + predicate: the scan never resolves a single
  // degradable value — every (row, column) probe is provably skipped.
  const Database::Stats s0 = db_->stats();
  EXPECT_EQ(DrainCursor(&session, "SELECT user FROM pings WHERE score < 6", 1,
                        true)
                .size(),
            6u);
  const Database::Stats s1 = db_->stats();
  EXPECT_EQ(s1.scan.rows - s0.scan.rows, static_cast<uint64_t>(kRows));
  EXPECT_EQ(s1.scan.rows_prefiltered - s0.scan.rows_prefiltered,
            static_cast<uint64_t>(kRows - 6));
  EXPECT_EQ(s1.scan.store_probes_issued, s0.scan.store_probes_issued);
  EXPECT_EQ(s1.scan.store_probes_skipped - s0.scan.store_probes_skipped,
            static_cast<uint64_t>(kRows));  // 1 degradable column

  // Same predicate with the degradable column projected: survivors (and
  // only survivors) are probed.
  ASSERT_TRUE(session
                  .Execute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY "
                           "FOR pings.location")
                  .ok());
  EXPECT_EQ(DrainCursor(&session,
                        "SELECT user, location FROM pings WHERE score < 6", 1,
                        true)
                .size(),
            6u);
  const Database::Stats s2 = db_->stats();
  EXPECT_EQ(s2.scan.rows - s1.scan.rows, static_cast<uint64_t>(kRows));
  EXPECT_EQ(s2.scan.store_probes_issued - s1.scan.store_probes_issued, 6u);
  EXPECT_EQ(s2.scan.store_probes_skipped - s1.scan.store_probes_skipped,
            static_cast<uint64_t>(kRows - 6));
}

TEST_F(PushdownTest, ProbeAccountingInvariantHoldsAcrossScanShapes) {
  constexpr int kRows = 480;
  BuildDb(4, kRows);
  Session session(db_.get());
  session.set_use_indexes(false);  // the index path doesn't do pushdown
  session.scan_options().pushdown = true;
  ASSERT_TRUE(session
                  .Execute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY "
                           "FOR pings.location")
                  .ok());
  const std::vector<std::pair<std::string, size_t>> kShapes = {
      {"SELECT user, location FROM pings", 1},
      {"SELECT user, location FROM pings WHERE score < 100", 4},
      {"SELECT user, location FROM pings WHERE location = 'Paris'", 4},
      {"SELECT user FROM pings WHERE score >= 240", 8},
  };
  for (const auto& [sql, parallelism] : kShapes) {
    const Database::Stats before = db_->stats();
    DrainCursor(&session, sql, parallelism, true);
    const Database::Stats after = db_->stats();
    const uint64_t rows = after.scan.rows - before.scan.rows;
    const uint64_t issued =
        after.scan.store_probes_issued - before.scan.store_probes_issued;
    const uint64_t skipped =
        after.scan.store_probes_skipped - before.scan.store_probes_skipped;
    EXPECT_EQ(rows, static_cast<uint64_t>(kRows)) << sql;
    // Per scanned row and degradable column (1 here), a probe is either
    // issued or provably skipped — never lost, never duplicated.
    EXPECT_EQ(issued + skipped, rows) << sql;
  }
  // Aggregate pushdown honors the same ledger.
  const Database::Stats before = db_->stats();
  auto agg = session.Execute("SELECT COUNT(*) FROM pings WHERE score < 100");
  ASSERT_TRUE(agg.ok());
  const Database::Stats after = db_->stats();
  EXPECT_EQ((after.scan.store_probes_issued - before.scan.store_probes_issued) +
                (after.scan.store_probes_skipped -
                 before.scan.store_probes_skipped),
            after.scan.rows - before.scan.rows);
}

TEST_F(PushdownTest, AggregatePushdownMatchesCursorAggregation) {
  constexpr int kRows = 960;
  BuildDb(8, kRows);
  Session session(db_.get());
  ASSERT_TRUE(session
                  .Execute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY "
                           "FOR pings.location")
                  .ok());
  const std::vector<std::string> kAggregates = {
      "SELECT COUNT(*) FROM pings",
      "SELECT COUNT(*), MIN(score), MAX(score), SUM(score) FROM pings",
      "SELECT COUNT(*), SUM(score) FROM pings WHERE score < 96",
      "SELECT COUNT(location), COUNT(*) FROM pings WHERE score >= 480",
      // Degradable predicate: falls back to the row source when an index
      // probe is usable, pushes down when not — identical either way.
      "SELECT COUNT(*) FROM pings WHERE location = 'Paris'",
      // Empty result: pushdown must also yield zero output rows.
      "SELECT COUNT(*), MIN(score) FROM pings WHERE score < 0",
  };
  for (const std::string& sql : kAggregates) {
    session.scan_options().pushdown = false;
    session.scan_options().parallelism = 1;
    auto reference = session.Execute(sql);
    ASSERT_TRUE(reference.ok()) << sql;
    for (size_t parallelism : {1u, 8u}) {
      session.scan_options().pushdown = true;
      session.scan_options().parallelism = parallelism;
      auto pushed = session.Execute(sql);
      ASSERT_TRUE(pushed.ok()) << sql;
      EXPECT_EQ(pushed->rows, reference->rows)
          << sql << " parallelism=" << parallelism;
      EXPECT_EQ(pushed->display, reference->display)
          << sql << " parallelism=" << parallelism;
    }
  }
  // The pushed runs above merged per-partition partials; the fallback and
  // reference runs merged none.
  EXPECT_GT(db_->stats().scan.aggregate_partials_merged, 0u);
}

TEST_F(PushdownTest, AggregateMergeStaysExactUnderConcurrentDegradation) {
  constexpr int kRows = 800;
  BuildDb(8, kRows);
  Session session(db_.get());
  session.scan_options().pushdown = true;
  session.scan_options().parallelism = 8;

  // COUNT(*) over a stable predicate is invariant under degradation (this
  // LCP keeps city forever, so tuples never disappear): every merge of
  // per-partition partials racing a live degrader must still be exact.
  std::thread degrader([&] {
    for (int i = 0; i < 20; ++i) {
      clock_->Advance(10 * kMicrosPerMinute);
      ASSERT_TRUE(db_->RunDegradationOnce().ok());
    }
  });
  for (int i = 0; i < 30; ++i) {
    auto count = session.Execute("SELECT COUNT(*) FROM pings WHERE score >= 0");
    ASSERT_TRUE(count.ok());
    ASSERT_EQ(count->display.size(), 1u);
    EXPECT_EQ(count->display[0][0], std::to_string(kRows));
  }
  degrader.join();

  // Settled: pushdown and reference aggregation agree on everything.
  auto pushed = session.Execute(
      "SELECT COUNT(*), MIN(score), MAX(score), SUM(score) FROM pings");
  ASSERT_TRUE(pushed.ok());
  session.scan_options().pushdown = false;
  auto reference = session.Execute(
      "SELECT COUNT(*), MIN(score), MAX(score), SUM(score) FROM pings");
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(pushed->rows, reference->rows);
  EXPECT_EQ(pushed->display, reference->display);
}

TEST_F(PushdownTest, ProbeManyAgreesWithPerRowAssembly) {
  constexpr int kRows = 500;
  BuildDb(4, kRows);
  Table* table = db_->GetTable("pings");
  ASSERT_NE(table, nullptr);
  const Schema& schema = table->schema();
  const auto& degradable = schema.degradable_columns();
  size_t checked = 0;
  for (uint32_t p = 0; p < table->num_partitions(); ++p) {
    // Per-row truth via the assembling cursor.
    std::map<RowId, RowView> expected;
    PartitionCursor cursor = table->OpenPartitionCursor(p);
    bool done = false;
    while (!done) {
      std::vector<RowView> views;
      ASSERT_TRUE(cursor.NextBatch(64, &views, &done).ok());
      for (RowView& view : views) expected.emplace(view.row_id, view);
    }
    std::vector<RowId> ids;
    for (const auto& [id, view] : expected) ids.push_back(id);  // ascending
    std::vector<int> phases;
    std::vector<Value> values;
    ASSERT_TRUE(table->partition(p)->ProbeMany(ids, &phases, &values).ok());
    ASSERT_EQ(phases.size(), ids.size() * degradable.size());
    ASSERT_EQ(values.size(), ids.size() * degradable.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      const RowView& view = expected.at(ids[i]);
      for (size_t d = 0; d < degradable.size(); ++d) {
        EXPECT_EQ(phases[i * degradable.size() + d], view.phases[d])
            << "row " << ids[i];
        EXPECT_EQ(values[i * degradable.size() + d], view.values[degradable[d]])
            << "row " << ids[i];
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, static_cast<size_t>(kRows));
}

TEST_F(PushdownTest, AdaptiveCadencePullsCheckpointToPayloadDeadline) {
  // Interval far above the phase-0 duration; threshold high enough that a
  // plain cadence point skips clean. The adaptive pull alone must bring the
  // daemon back at the payload deadline.
  dir_ = ::testing::TempDir() + "/idb_pushdown_cadence_test";
  ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  clock_ = std::make_unique<VirtualClock>(0);
  DbOptions options;
  options.path = dir_;
  options.clock = clock_.get();
  options.maintenance.checkpoint_interval = 24 * kMicrosPerHour;
  options.maintenance.checkpoint_dirty_threshold = 1000;
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  db_ = std::move(*opened);
  auto schema = Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp())});
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(db_->CreateTable("pings", *schema).ok());
  Session session(db_.get());
  ASSERT_TRUE(
      session.Execute("INSERT INTO pings VALUES ('u0', '11 Rue Lepic')").ok());

  MaintenanceDaemon* daemon = db_->maintenance();
  // Cadence point at t=0: skips clean (1 dirty < 1000, payload not yet
  // overdue), but the next deadline is pulled from t+24h to the payload's
  // phase-0 deadline (insert at 0 + 1h address phase).
  ASSERT_TRUE(daemon->RunOnce(clock_->NowMicros()).ok());
  EXPECT_EQ(daemon->next_checkpoint_due(), kMicrosPerHour);
  EXPECT_GE(daemon->stats().adaptive_checkpoint_pulls, 1u);
  EXPECT_EQ(daemon->stats().checkpoints, 0u);

  // At the pulled deadline the payload is overdue: WAL pressure forces the
  // checkpoint below the dirty threshold, retiring the segment — and with
  // the pressure gone the next deadline returns to the interval floor.
  clock_->Advance(kMicrosPerHour + kMicrosPerMinute);
  const Micros now = clock_->NowMicros();
  ASSERT_TRUE(daemon->RunOnce(now).ok());
  EXPECT_EQ(daemon->stats().checkpoints, 1u);
  EXPECT_EQ(daemon->stats().forced_checkpoints, 1u);
  EXPECT_EQ(daemon->next_checkpoint_due(),
            now + 24 * kMicrosPerHour);
}

TEST_F(PushdownTest, FailedAuditEnqueuesUrgentRepairThatDrainsFirst) {
  constexpr int kRows = 400;
  BuildDb(4, kRows);
  Table* table = db_->GetTable("pings");
  ASSERT_NE(table, nullptr);

  // Plant exposure: partition 0 skips the next degradation pass, so its
  // phase-0 locations outlive the address deadline.
  db_->degradation()->TEST_FaultSkipPartition(table->id(), 0, true);
  clock_->Advance(kMicrosPerHour + kMicrosPerMinute);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());

  const AuditReport failed = db_->Audit();
  EXPECT_FALSE(failed.clean());
  ASSERT_EQ(failed.tables.size(), 1u);
  EXPECT_EQ(failed.tables[0].exposed_partitions, std::vector<uint32_t>{0});
  EXPECT_GE(db_->maintenance()->stats().repairs_enqueued, 1u);

  // Lift the fault: the next pass drains the urgent unit first and the
  // store-level exposure disappears.
  db_->degradation()->TEST_FaultSkipPartition(table->id(), 0, false);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  EXPECT_GE(db_->stats().degradation.urgent_units, 1u);
  const AuditReport repaired = db_->Audit();
  EXPECT_EQ(repaired.exposed_values, 0u) << repaired.ToString();
  EXPECT_TRUE(repaired.tables[0].exposed_partitions.empty());
}

}  // namespace
}  // namespace instantdb
