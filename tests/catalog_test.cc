#include <memory>

#include "catalog/builtin_domains.h"
#include "catalog/catalog.h"
#include "catalog/generalization.h"
#include "catalog/lcp.h"
#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "util/file.h"

namespace instantdb {
namespace {

// --- Value -------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int64(42).int64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_EQ(Value::String("x").str(), "x");
  EXPECT_TRUE(Value::Bool(true).boolean());
  EXPECT_EQ(Value::Timestamp(kMicrosPerHour).timestamp(), kMicrosPerHour);
}

TEST(ValueTest, CompareSameType) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  EXPECT_EQ(Value::Double(1.5).Compare(Value::Double(1.5)), 0);
  // NULL sorts first.
  EXPECT_LT(Value::Null().Compare(Value::Int64(0)), 0);
  EXPECT_GT(Value::Int64(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, EqualityAcrossInt64AndTimestamp) {
  EXPECT_EQ(Value::Int64(5), Value::Timestamp(5));
  EXPECT_NE(Value::Int64(5), Value::String("5"));
}

TEST(ValueTest, RecordEncodingRoundTrip) {
  const std::vector<Value> values = {
      Value::Null(),           Value::Int64(-7),
      Value::Int64(1LL << 40), Value::Double(-3.25),
      Value::String(""),       Value::String("hello\0world"),
      Value::Bool(true),       Value::Timestamp(kMicrosPerDay)};
  std::string buf;
  for (const Value& v : values) v.EncodeTo(&buf);
  Slice in = buf;
  for (const Value& v : values) {
    Value got;
    ASSERT_TRUE(Value::DecodeFrom(&in, &got));
    EXPECT_EQ(got, v) << v.ToString();
    EXPECT_EQ(got.type(), v.type());
  }
  EXPECT_TRUE(in.empty());
}

TEST(ValueTest, OrderedEncodingSortsLikeCompare) {
  Random rng(3);
  for (int i = 0; i < 500; ++i) {
    const Value a = Value::Int64(rng.UniformRange(-1000, 1000));
    const Value b = Value::Int64(rng.UniformRange(-1000, 1000));
    std::string ea, eb;
    a.EncodeOrdered(&ea);
    b.EncodeOrdered(&eb);
    EXPECT_EQ(a.Compare(b) < 0, ea < eb);
  }
  // NULL sorts before any value in the encoded space too.
  std::string en, ev;
  Value::Null().EncodeOrdered(&en);
  Value::Int64(INT64_MIN).EncodeOrdered(&ev);
  EXPECT_LT(en, ev);
}

// --- GeneralizationTree (Fig. 1) ----------------------------------------------

class LocationTreeTest : public ::testing::Test {
 protected:
  std::shared_ptr<const DomainHierarchy> tree_ = LocationDomain();
};

TEST_F(LocationTreeTest, HeightMatchesFig1) {
  // Fig. 1: address -> city -> region -> country = 4 levels.
  EXPECT_EQ(tree_->height(), 4);
  EXPECT_EQ(tree_->value_type(), ValueType::kString);
}

TEST_F(LocationTreeTest, PathToRootIsTheDegradationPath) {
  // "a path from a particular node to the root of the GT expresses all
  // degraded forms the value of that node can take" (paper §II).
  const Value addr = Value::String("11 Rue Lepic");
  EXPECT_EQ(tree_->Generalize(addr, 0, 0)->str(), "11 Rue Lepic");
  EXPECT_EQ(tree_->Generalize(addr, 0, 1)->str(), "Paris");
  EXPECT_EQ(tree_->Generalize(addr, 0, 2)->str(), "Ile-de-France");
  EXPECT_EQ(tree_->Generalize(addr, 0, 3)->str(), "France");
}

TEST_F(LocationTreeTest, GeneralizeFromIntermediateLevel) {
  EXPECT_EQ(tree_->Generalize(Value::String("Marseille"), 1, 2)->str(),
            "Provence");
  EXPECT_EQ(tree_->Generalize(Value::String("Provence"), 2, 3)->str(),
            "France");
}

TEST_F(LocationTreeTest, GeneralizeRejectsBadLevels) {
  EXPECT_FALSE(tree_->Generalize(Value::String("Paris"), 1, 0).ok());  // down
  EXPECT_FALSE(tree_->Generalize(Value::String("Paris"), 1, 9).ok());  // high
  // Value not at claimed level.
  EXPECT_FALSE(tree_->Generalize(Value::String("Paris"), 0, 2).ok());
  EXPECT_TRUE(tree_->Generalize(Value::String("Nowhere"), 0, 1)
                  .status()
                  .IsNotFound());
}

TEST_F(LocationTreeTest, LeafIntervalsAreContiguousAndNested) {
  const auto paris = tree_->LeafRange(Value::String("Paris"), 1);
  const auto idf = tree_->LeafRange(Value::String("Ile-de-France"), 2);
  const auto france = tree_->LeafRange(Value::String("France"), 3);
  ASSERT_TRUE(paris.ok());
  ASSERT_TRUE(idf.ok());
  ASSERT_TRUE(france.ok());
  EXPECT_TRUE(idf->Contains(*paris));
  EXPECT_TRUE(france->Contains(*idf));
  // Fig. 1 instance has 5 addresses total.
  EXPECT_EQ(france->lo, 0);
  EXPECT_EQ(france->hi, 4);
  const auto lepic = tree_->LeafRange(Value::String("11 Rue Lepic"), 0);
  ASSERT_TRUE(lepic.ok());
  EXPECT_EQ(lepic->lo, lepic->hi);
  EXPECT_TRUE(paris->Contains(*lepic));
}

TEST_F(LocationTreeTest, CoversRelation) {
  EXPECT_TRUE(tree_->Covers(Value::String("France"), 3,
                            Value::String("11 Rue Lepic"), 0));
  EXPECT_TRUE(
      tree_->Covers(Value::String("Provence"), 2, Value::String("Aix"), 1));
  EXPECT_FALSE(tree_->Covers(Value::String("Provence"), 2,
                             Value::String("Paris"), 1));
  // A specific value never covers a more general one.
  EXPECT_FALSE(
      tree_->Covers(Value::String("Paris"), 1, Value::String("France"), 3));
}

TEST_F(LocationTreeTest, CardinalityPerLevel) {
  EXPECT_EQ(*tree_->CardinalityAtLevel(0), 5);  // addresses
  EXPECT_EQ(*tree_->CardinalityAtLevel(1), 4);  // Paris, Versailles, Marseille, Aix
  EXPECT_EQ(*tree_->CardinalityAtLevel(2), 2);  // Ile-de-France, Provence
  EXPECT_EQ(*tree_->CardinalityAtLevel(3), 1);  // France
}

TEST(GeneralizationTreeTest, RejectsUnbalancedTree) {
  GeneralizationTree::Builder builder("bad");
  builder.AddRoot("root");
  builder.AddChild("root", "deep");
  builder.AddChild("deep", "leaf1");
  builder.AddChild("root", "leaf2");  // depth 1 vs depth 2
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GeneralizationTreeTest, RejectsDuplicateLabelsAndUnknownParents) {
  {
    GeneralizationTree::Builder builder("dup");
    builder.AddRoot("r");
    builder.AddChild("r", "a");
    builder.AddChild("r", "a");
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    GeneralizationTree::Builder builder("orphan");
    builder.AddRoot("r");
    builder.AddChild("nope", "a");
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    GeneralizationTree::Builder builder("empty");
    EXPECT_FALSE(builder.Build().ok());
  }
}

TEST(GeneralizationTreeTest, SyntheticDomainScales) {
  auto tree = SyntheticLocationDomain(2, 3, 4, 5);
  EXPECT_EQ(tree->height(), 5);
  EXPECT_EQ(*tree->CardinalityAtLevel(0), 2 * 3 * 4 * 5);
  EXPECT_EQ(*tree->CardinalityAtLevel(4), 1);
  // Every leaf generalizes to the root.
  EXPECT_EQ(tree->Generalize(Value::String("Addr1.2.3.4"), 0, 4)->str(),
            "World");
}

TEST(GeneralizationTreeTest, LeafOrdinalRoundTrip) {
  auto domain = SyntheticLocationDomain(2, 2, 2, 2);
  const auto* tree = static_cast<const GeneralizationTree*>(domain.get());
  for (int64_t ord = 0; ord < tree->leaf_count(); ++ord) {
    auto label = tree->LeafLabel(ord);
    ASSERT_TRUE(label.ok());
    EXPECT_EQ(*tree->LeafOrdinal(Value::String(*label)), ord);
  }
  EXPECT_FALSE(tree->LeafLabel(tree->leaf_count()).ok());
}

TEST(GeneralizationTreeTest, AsciiArtShowsFig1Shape) {
  auto domain = LocationDomain();
  const auto* tree = static_cast<const GeneralizationTree*>(domain.get());
  const std::string art = tree->ToAsciiArt();
  EXPECT_NE(art.find("France"), std::string::npos);
  EXPECT_NE(art.find("Paris"), std::string::npos);
  EXPECT_NE(art.find("11 Rue Lepic"), std::string::npos);
}

// --- IntervalHierarchy ---------------------------------------------------------

class SalaryDomainTest : public ::testing::Test {
 protected:
  std::shared_ptr<const DomainHierarchy> salary_ = SalaryDomain();
};

TEST_F(SalaryDomainTest, HeightAndTypes) {
  EXPECT_EQ(salary_->height(), 4);  // exact, 1000, 10000, 100000
  EXPECT_EQ(salary_->value_type(), ValueType::kInt64);
}

TEST_F(SalaryDomainTest, GeneralizeToPaperRange1000) {
  // The paper's example: SALARY = '2000-3000' at accuracy RANGE1000.
  EXPECT_EQ(salary_->Generalize(Value::Int64(2345), 0, 1)->int64(), 2000);
  EXPECT_EQ(salary_->Generalize(Value::Int64(2999), 0, 1)->int64(), 2000);
  EXPECT_EQ(salary_->Generalize(Value::Int64(3000), 0, 1)->int64(), 3000);
  EXPECT_EQ(salary_->Generalize(Value::Int64(2345), 0, 2)->int64(), 0);
  EXPECT_EQ(salary_->Generalize(Value::Int64(23456), 0, 2)->int64(), 20000);
}

TEST_F(SalaryDomainTest, BucketsNest) {
  // Generalizing in two hops equals one hop (functoriality of f_k).
  const Value v = Value::Int64(67890);
  const Value mid = *salary_->Generalize(v, 0, 1);
  EXPECT_EQ(*salary_->Generalize(mid, 1, 2), *salary_->Generalize(v, 0, 2));
  EXPECT_EQ(*salary_->Generalize(mid, 1, 3), *salary_->Generalize(v, 0, 3));
}

TEST_F(SalaryDomainTest, ValidationCatchesNonBucketValues) {
  EXPECT_TRUE(salary_->ValidateAtLevel(Value::Int64(2345), 0).ok());
  EXPECT_FALSE(salary_->ValidateAtLevel(Value::Int64(2345), 1).ok());
  EXPECT_TRUE(salary_->ValidateAtLevel(Value::Int64(2000), 1).ok());
  EXPECT_FALSE(salary_->ValidateAtLevel(Value::Int64(-5), 0).ok());
  EXPECT_FALSE(salary_->ValidateAtLevel(Value::Int64(200001), 0).ok());
  EXPECT_FALSE(salary_->ValidateAtLevel(Value::String("x"), 0).ok());
}

TEST_F(SalaryDomainTest, LeafRangesAndCardinality) {
  auto range = salary_->LeafRange(Value::Int64(2000), 1);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->lo, 2000);
  EXPECT_EQ(range->hi, 2999);
  EXPECT_EQ(*salary_->CardinalityAtLevel(0), 100001);
  EXPECT_EQ(*salary_->CardinalityAtLevel(1), 101);
  EXPECT_EQ(*salary_->CardinalityAtLevel(3), 2);  // [0,100000] has 2 buckets of 100000
}

TEST_F(SalaryDomainTest, DisplayValueRendersBuckets) {
  EXPECT_EQ(salary_->DisplayValue(Value::Int64(2000), 1), "[2000..2999]");
  EXPECT_EQ(salary_->DisplayValue(Value::Int64(2345), 0), "2345");
}

TEST_F(SalaryDomainTest, LevelForWidthResolvesPaperSyntax) {
  const auto* ih = static_cast<const IntervalHierarchy*>(salary_.get());
  EXPECT_EQ(*ih->LevelForWidth(1000), 1);
  EXPECT_EQ(*ih->LevelForWidth(1), 0);
  EXPECT_FALSE(ih->LevelForWidth(500).ok());
}

TEST(IntervalHierarchyTest, RejectsNonNestingWidths) {
  EXPECT_FALSE(IntervalHierarchy::Make("x", 0, 100, {10, 15}).ok());
  EXPECT_FALSE(IntervalHierarchy::Make("x", 0, 100, {10, 10}).ok());
  EXPECT_FALSE(IntervalHierarchy::Make("x", 0, 100, {}).ok());
  EXPECT_FALSE(IntervalHierarchy::Make("x", 100, 0, {10}).ok());
  EXPECT_TRUE(IntervalHierarchy::Make("x", 0, 100, {10, 100}).ok());
}

// --- Hierarchy persistence ----------------------------------------------------

TEST(HierarchyCodecTest, TreeRoundTrip) {
  auto original = LocationDomain();
  std::string buf;
  original->EncodeTo(&buf);
  Slice in = buf;
  auto decoded = DomainHierarchy::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ((*decoded)->height(), 4);
  EXPECT_EQ((*decoded)->Generalize(Value::String("3 Av Foch"), 0, 1)->str(),
            "Paris");
  EXPECT_EQ(*(*decoded)->CardinalityAtLevel(0), 5);
}

TEST(HierarchyCodecTest, IntervalRoundTrip) {
  auto original = SalaryDomain();
  std::string buf;
  original->EncodeTo(&buf);
  Slice in = buf;
  auto decoded = DomainHierarchy::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)->height(), 4);
  EXPECT_EQ((*decoded)->Generalize(Value::Int64(1234), 0, 1)->int64(), 1000);
}

TEST(HierarchyCodecTest, CorruptInputRejected) {
  std::string buf = "\x07garbage";
  Slice in = buf;
  EXPECT_FALSE(DomainHierarchy::DecodeFrom(&in).ok());
}

// --- AttributeLcp (Fig. 2) -----------------------------------------------------

TEST(LcpTest, Fig2Timeline) {
  const AttributeLcp lcp = Fig2LocationLcp();
  ASSERT_EQ(lcp.num_phases(), 4);
  // d0: accurate address for 1 hour.
  EXPECT_EQ(lcp.PhaseAt(0), 0);
  EXPECT_EQ(lcp.PhaseAt(kMicrosPerHour - 1), 0);
  // d1: city until 1h + 1day.
  EXPECT_EQ(lcp.PhaseAt(kMicrosPerHour), 1);
  EXPECT_EQ(lcp.PhaseAt(kMicrosPerHour + kMicrosPerDay - 1), 1);
  // d2: region until + 1 month.
  EXPECT_EQ(lcp.PhaseAt(kMicrosPerHour + kMicrosPerDay), 2);
  // d3: country until + another month.
  EXPECT_EQ(lcp.PhaseAt(kMicrosPerHour + kMicrosPerDay + kMicrosPerMonth), 3);
  // ⊥ afterwards.
  EXPECT_EQ(
      lcp.PhaseAt(kMicrosPerHour + kMicrosPerDay + 2 * kMicrosPerMonth), 4);
  EXPECT_TRUE(lcp.DegradesFully());
  EXPECT_EQ(lcp.RemovalOffset(),
            kMicrosPerHour + kMicrosPerDay + 2 * kMicrosPerMonth);
  EXPECT_EQ(lcp.ShortestStep(), kMicrosPerHour);
}

TEST(LcpTest, ValidationRules) {
  EXPECT_FALSE(AttributeLcp::Make({}).ok());
  // Levels must strictly increase.
  EXPECT_FALSE(AttributeLcp::Make({{1, 10}, {1, 10}}).ok());
  EXPECT_FALSE(AttributeLcp::Make({{2, 10}, {1, 10}}).ok());
  // Durations positive.
  EXPECT_FALSE(AttributeLcp::Make({{0, 0}}).ok());
  // kForever only in last phase.
  EXPECT_FALSE(AttributeLcp::Make({{0, kForever}, {1, 10}}).ok());
  EXPECT_TRUE(AttributeLcp::Make({{0, 10}, {2, kForever}}).ok());
}

TEST(LcpTest, RetentionBaselineIsDegenerateLcp) {
  // The paper's "limited retention" is expressible as a single-phase LCP:
  // accurate for the TTL, then gone. This is how the baseline shares the
  // whole engine.
  const AttributeLcp retention = AttributeLcp::Retention(7 * kMicrosPerDay);
  EXPECT_EQ(retention.num_phases(), 1);
  EXPECT_EQ(retention.PhaseAt(6 * kMicrosPerDay), 0);
  EXPECT_EQ(retention.PhaseAt(7 * kMicrosPerDay), 1);  // removed
  EXPECT_TRUE(retention.DegradesFully());

  const AttributeLcp keep = AttributeLcp::KeepForever();
  EXPECT_FALSE(keep.DegradesFully());
  EXPECT_EQ(keep.PhaseAt(kForever - 1), 0);
}

TEST(LcpTest, EncodingRoundTrip) {
  const AttributeLcp lcp = Fig2LocationLcp();
  std::string buf;
  lcp.EncodeTo(&buf);
  Slice in = buf;
  auto decoded = AttributeLcp::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, lcp);

  const AttributeLcp forever = AttributeLcp::KeepForever();
  buf.clear();
  forever.EncodeTo(&buf);
  in = buf;
  EXPECT_EQ(*AttributeLcp::DecodeFrom(&in), forever);
}

TEST(LcpTest, ToStringMentionsStates) {
  const std::string s = Fig2LocationLcp().ToString();
  EXPECT_NE(s.find("d0"), std::string::npos);
  EXPECT_NE(s.find("d3"), std::string::npos);
  EXPECT_NE(s.find("⊥"), std::string::npos);
}

// --- TupleLcp (Fig. 3) ---------------------------------------------------------

TEST(TupleLcpTest, ProductOfTwoAttributeLcps) {
  // Fig. 3: the tuple LCP combines the attribute LCPs; each independent
  // attribute transition moves the tuple to a new state t_k.
  const auto a = *AttributeLcp::Make({{0, 10}, {1, 20}});           // ⊥ at 30
  const auto b = *AttributeLcp::Make({{0, 15}, {1, 30}});           // ⊥ at 45
  const TupleLcp tuple = TupleLcp::Make({&a, &b});

  // Transition instants: 0, 10, 15, 30, 45(removal). States before removal:
  // t0@0 (d0,d0), t1@10 (d1,d0), t2@15 (d1,d1), t3@30 (⊥,d1).
  ASSERT_EQ(tuple.num_states(), 4);
  EXPECT_EQ(tuple.states()[0].attr_phase, (std::vector<int>{0, 0}));
  EXPECT_EQ(tuple.states()[1].attr_phase, (std::vector<int>{1, 0}));
  EXPECT_EQ(tuple.states()[2].attr_phase, (std::vector<int>{1, 1}));
  EXPECT_EQ(tuple.states()[3].attr_phase, (std::vector<int>{2, 1}));
  EXPECT_EQ(tuple.RemovalOffset(), 45);

  EXPECT_EQ(tuple.StateAt(0), 0);
  EXPECT_EQ(tuple.StateAt(12), 1);
  EXPECT_EQ(tuple.StateAt(29), 2);
  EXPECT_EQ(tuple.StateAt(44), 3);
}

TEST(TupleLcpTest, SimultaneousTransitionsMergeIntoOneState) {
  const auto a = *AttributeLcp::Make({{0, 10}});
  const auto b = *AttributeLcp::Make({{0, 10}});
  const TupleLcp tuple = TupleLcp::Make({&a, &b});
  ASSERT_EQ(tuple.num_states(), 1);  // both removed together at 10
  EXPECT_EQ(tuple.RemovalOffset(), 10);
}

TEST(TupleLcpTest, ForeverAttributeBlocksRemoval) {
  const auto a = *AttributeLcp::Make({{0, 10}});
  const auto keep = AttributeLcp::KeepForever();
  const TupleLcp tuple = TupleLcp::Make({&a, &keep});
  EXPECT_EQ(tuple.RemovalOffset(), kForever);
  // States: t0 (d0,d0), t1@10 (⊥, d0).
  ASSERT_EQ(tuple.num_states(), 2);
  EXPECT_EQ(tuple.states()[1].attr_phase, (std::vector<int>{1, 0}));
}

TEST(TupleLcpTest, NoDegradableAttributes) {
  const TupleLcp tuple = TupleLcp::Make({});
  EXPECT_EQ(tuple.num_states(), 1);
  EXPECT_EQ(tuple.RemovalOffset(), kForever);
}

// --- Schema --------------------------------------------------------------------

Schema MakePersonSchema() {
  auto schema = Schema::Make(
      {ColumnDef::Stable("id", ValueType::kInt64),
       ColumnDef::Stable("name", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp()),
       ColumnDef::Degradable(
           "salary", SalaryDomain(),
           *AttributeLcp::Make({{0, kMicrosPerDay}, {1, kMicrosPerMonth}}))});
  return *schema;
}

TEST(SchemaTest, PartitionsStableAndDegradable) {
  const Schema schema = MakePersonSchema();
  EXPECT_EQ(schema.num_columns(), 4);
  EXPECT_EQ(schema.stable_columns(), (std::vector<int>{0, 1}));
  EXPECT_EQ(schema.degradable_columns(), (std::vector<int>{2, 3}));
  EXPECT_EQ(schema.FindColumn("salary"), 3);
  EXPECT_EQ(schema.FindColumn("nope"), -1);
  EXPECT_EQ(schema.DegradableOrdinal(2), 0);
  EXPECT_EQ(schema.DegradableOrdinal(3), 1);
  EXPECT_EQ(schema.DegradableOrdinal(0), -1);
  EXPECT_GT(schema.tuple_lcp().num_states(), 1);
}

TEST(SchemaTest, ValidateInsertRowEnforcesFullAccuracy) {
  const Schema schema = MakePersonSchema();
  const std::vector<Value> good = {Value::Int64(1), Value::String("alice"),
                                   Value::String("11 Rue Lepic"),
                                   Value::Int64(2345)};
  EXPECT_TRUE(schema.ValidateInsertRow(good).ok());

  // Degradable value given at city level instead of address level.
  std::vector<Value> coarse = good;
  coarse[2] = Value::String("Paris");
  EXPECT_FALSE(schema.ValidateInsertRow(coarse).ok());

  // NULL degradable value rejected; NULL stable value accepted.
  std::vector<Value> null_degradable = good;
  null_degradable[3] = Value::Null();
  EXPECT_FALSE(schema.ValidateInsertRow(null_degradable).ok());
  std::vector<Value> null_stable = good;
  null_stable[1] = Value::Null();
  EXPECT_TRUE(schema.ValidateInsertRow(null_stable).ok());

  // Wrong arity and wrong types.
  EXPECT_FALSE(schema.ValidateInsertRow({Value::Int64(1)}).ok());
  std::vector<Value> bad_type = good;
  bad_type[0] = Value::String("one");
  EXPECT_FALSE(schema.ValidateInsertRow(bad_type).ok());
}

TEST(SchemaTest, MakeRejectsBadDefinitions) {
  EXPECT_FALSE(Schema::Make({}).ok());
  EXPECT_FALSE(Schema::Make({ColumnDef::Stable("a", ValueType::kInt64),
                             ColumnDef::Stable("a", ValueType::kInt64)})
                   .ok());
  // LCP level beyond hierarchy height.
  auto bad_lcp = *AttributeLcp::Make({{0, 10}, {9, kForever}});
  EXPECT_FALSE(
      Schema::Make({ColumnDef::Degradable("loc", LocationDomain(), bad_lcp)})
          .ok());
}

TEST(SchemaTest, EncodingRoundTrip) {
  const Schema schema = MakePersonSchema();
  std::string buf;
  schema.EncodeTo(&buf);
  Slice in = buf;
  auto decoded = Schema::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded->num_columns(), 4);
  EXPECT_EQ(decoded->column(2).name, "location");
  EXPECT_EQ(decoded->column(2).kind, ColumnKind::kDegradable);
  EXPECT_EQ(decoded->column(2).lcp, Fig2LocationLcp());
  EXPECT_EQ(decoded->column(2).hierarchy->height(), 4);
}

// --- Catalog -------------------------------------------------------------------

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  auto t1 = catalog.CreateTable("person", MakePersonSchema());
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ((*t1)->id, 1u);
  EXPECT_FALSE(catalog.CreateTable("person", MakePersonSchema()).ok());
  EXPECT_NE(catalog.GetTable("person"), nullptr);
  EXPECT_EQ(catalog.GetTable("person"), catalog.GetTable(TableId{1}));
  EXPECT_EQ(catalog.GetTable("ghost"), nullptr);
  EXPECT_TRUE(catalog.DropTable("person").ok());
  EXPECT_FALSE(catalog.DropTable("person").ok());
  EXPECT_EQ(catalog.GetTable("person"), nullptr);
}

TEST(CatalogTest, IdsNotReusedAfterDrop) {
  Catalog catalog;
  auto t1 = catalog.CreateTable("a", MakePersonSchema());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(catalog.DropTable("a").ok());
  auto t2 = catalog.CreateTable("b", MakePersonSchema());
  ASSERT_TRUE(t2.ok());
  EXPECT_GT((*t2)->id, (*t1)->id);
}

TEST(CatalogTest, PersistenceRoundTrip) {
  const std::string dir = ::testing::TempDir() + "/idb_catalog_test";
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
  ASSERT_TRUE(CreateDirs(dir).ok());
  const std::string path = dir + "/CATALOG";

  {
    Catalog catalog;
    ASSERT_TRUE(catalog.CreateTable("person", MakePersonSchema()).ok());
    ASSERT_TRUE(catalog
                    .CreateTable("events",
                                 *Schema::Make({ColumnDef::Stable(
                                     "what", ValueType::kString)}))
                    .ok());
    ASSERT_TRUE(catalog.SaveTo(path).ok());
  }
  auto loaded = Catalog::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  const TableDef* person = (*loaded)->GetTable("person");
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(person->schema.num_columns(), 4);
  EXPECT_EQ(person->schema.column(2).hierarchy->name(), "location");
  ASSERT_NE((*loaded)->GetTable("events"), nullptr);
  // New tables after load continue the id sequence.
  auto t3 = (*loaded)->CreateTable(
      "more", *Schema::Make({ColumnDef::Stable("x", ValueType::kInt64)}));
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ((*t3)->id, 3u);
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
}

TEST(CatalogTest, LoadRejectsCorruptFile) {
  const std::string dir = ::testing::TempDir() + "/idb_catalog_corrupt";
  ASSERT_TRUE(CreateDirs(dir).ok());
  const std::string path = dir + "/CATALOG";
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("person", MakePersonSchema()).ok());
  ASSERT_TRUE(catalog.SaveTo(path).ok());
  // Flip one byte past the checksum header.
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string mutated = *contents;
  mutated[mutated.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(path, mutated, false).ok());
  EXPECT_TRUE(Catalog::LoadFrom(path).status().IsCorruption());
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
}

}  // namespace
}  // namespace instantdb
