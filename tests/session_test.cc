#include "query/session.h"

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "util/file.h"

namespace instantdb {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_session_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);

    auto schema = Schema::Make(
        {ColumnDef::Stable("name", ValueType::kString),
         ColumnDef::Degradable("location", LocationDomain(),
                               Fig2LocationLcp())});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db_->CreateTable("person", *schema).ok());
    person_ = db_->catalog().GetTable("person")->id;
    session_ = std::make_unique<Session>(db_.get());
  }
  void TearDown() override {
    session_.reset();
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
  TableId person_ = 0;
  std::unique_ptr<Session> session_;
};

// --- purpose lifecycle -------------------------------------------------------------

TEST_F(SessionTest, NoActivePurposeDefaultsToFullAccuracy) {
  EXPECT_TRUE(session_->active_purpose().empty());
  EXPECT_EQ(session_->AccuracyFor(person_, 1), 0);
  EXPECT_EQ(session_->AccuracyFor(person_, 0), 0);   // stable column
  EXPECT_EQ(session_->AccuracyFor(999, 5), 0);       // unknown table/column
}

TEST_F(SessionTest, DeclarePurposeBindsLevelsAndActivates) {
  ASSERT_TRUE(session_
                  ->DeclarePurpose("GEO", {{"CITY", "person", "location"}})
                  .ok());
  EXPECT_EQ(session_->active_purpose(), "GEO");
  EXPECT_EQ(session_->AccuracyFor(person_, 1), 1);  // CITY = level 1
  // Unbound columns stay at full accuracy.
  EXPECT_EQ(session_->AccuracyFor(person_, 0), 0);
}

TEST_F(SessionTest, UsePurposeSwitchesBetweenDeclaredPurposes) {
  ASSERT_TRUE(session_
                  ->DeclarePurpose("GEO", {{"CITY", "person", "location"}})
                  .ok());
  ASSERT_TRUE(session_
                  ->DeclarePurpose("NATL", {{"COUNTRY", "person", "location"}})
                  .ok());
  // Declaring activates the newest purpose.
  EXPECT_EQ(session_->active_purpose(), "NATL");
  EXPECT_EQ(session_->AccuracyFor(person_, 1), 3);  // COUNTRY = level 3

  ASSERT_TRUE(session_->UsePurpose("GEO").ok());
  EXPECT_EQ(session_->active_purpose(), "GEO");
  EXPECT_EQ(session_->AccuracyFor(person_, 1), 1);

  EXPECT_TRUE(session_->UsePurpose("NOPE").IsNotFound());
  EXPECT_EQ(session_->active_purpose(), "GEO");  // unchanged on error
}

TEST_F(SessionTest, ClearPurposeRestoresFullAccuracyDefaults) {
  ASSERT_TRUE(session_
                  ->DeclarePurpose("GEO", {{"REGION", "person", "location"}})
                  .ok());
  EXPECT_EQ(session_->AccuracyFor(person_, 1), 2);
  session_->ClearPurpose();
  EXPECT_TRUE(session_->active_purpose().empty());
  EXPECT_EQ(session_->AccuracyFor(person_, 1), 0);
  // A cleared purpose stays declared and can be re-activated.
  ASSERT_TRUE(session_->UsePurpose("GEO").ok());
  EXPECT_EQ(session_->AccuracyFor(person_, 1), 2);
}

TEST_F(SessionTest, DeclarePurposeValidation) {
  // Stable column rejected.
  EXPECT_FALSE(session_->DeclarePurpose("BAD", {{"L1", "person", "name"}}).ok());
  // Unknown table / column / level spec rejected.
  EXPECT_TRUE(session_->DeclarePurpose("BAD", {{"CITY", "nosuch", "location"}})
                  .IsNotFound());
  EXPECT_TRUE(session_->DeclarePurpose("BAD", {{"CITY", "person", "nocol"}})
                  .IsNotFound());
  EXPECT_FALSE(
      session_->DeclarePurpose("BAD", {{"GALAXY", "person", "location"}}).ok());
  // Failed declarations never activate.
  EXPECT_TRUE(session_->active_purpose().empty());
}

TEST_F(SessionTest, BareColumnClauseBindsAcrossTables) {
  // No table qualifier: the binder resolves the column over all tables.
  ASSERT_TRUE(session_->DeclarePurpose("GEO", {{"CITY", "", "location"}}).ok());
  EXPECT_EQ(session_->AccuracyFor(person_, 1), 1);
}

// --- name resolution ---------------------------------------------------------------

TEST_F(SessionTest, ResolveTableNameIsCaseInsensitive) {
  const Catalog& catalog = db_->catalog();
  EXPECT_NE(ResolveTableName(catalog, "person", false), nullptr);
  EXPECT_NE(ResolveTableName(catalog, "PERSON", false), nullptr);
  EXPECT_NE(ResolveTableName(catalog, "PeRsOn", false), nullptr);
  EXPECT_EQ(ResolveTableName(catalog, "nosuch", false), nullptr);
}

TEST_F(SessionTest, ResolveTableNamePrefixOnlyWhenAllowed) {
  const Catalog& catalog = db_->catalog();
  // The paper's `P.LOCATION` style: "P" is a prefix of "person".
  EXPECT_EQ(ResolveTableName(catalog, "P", false), nullptr);
  const TableDef* by_prefix = ResolveTableName(catalog, "P", true);
  ASSERT_NE(by_prefix, nullptr);
  EXPECT_EQ(by_prefix->name, "person");
  EXPECT_NE(ResolveTableName(catalog, "pers", true), nullptr);
  // Exact match wins over prefix; longer-than-name never matches.
  EXPECT_EQ(ResolveTableName(catalog, "personx", true), nullptr);
}

TEST_F(SessionTest, ResolveColumnNameIsCaseInsensitive) {
  const Schema& schema = db_->catalog().GetTable("person")->schema;
  EXPECT_EQ(ResolveColumnName(schema, "name"), 0);
  EXPECT_EQ(ResolveColumnName(schema, "NAME"), 0);
  EXPECT_EQ(ResolveColumnName(schema, "Location"), 1);
  EXPECT_EQ(ResolveColumnName(schema, "missing"), -1);
}

// --- DML result rendering ----------------------------------------------------------

TEST_F(SessionTest, DmlResultsPopulateCountsAndRenderSummaries) {
  auto insert =
      session_->Execute("INSERT INTO person VALUES ('alice', '11 Rue Lepic')");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert->statement, StatementKind::kInsert);
  EXPECT_EQ(insert->affected_rows, 1u);
  EXPECT_NE(insert->last_insert_id, kInvalidRowId);
  EXPECT_NE(insert->ToString().find("1 row(s) affected"), std::string::npos);
  EXPECT_NE(insert->ToString().find("last insert id"), std::string::npos);

  auto insert2 =
      session_->Execute("INSERT INTO person VALUES ('bob', '3 Av Foch')");
  ASSERT_TRUE(insert2.ok());
  EXPECT_GT(insert2->last_insert_id, insert->last_insert_id);

  auto del = session_->Execute("DELETE FROM person WHERE name = 'alice'");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->statement, StatementKind::kDelete);
  EXPECT_EQ(del->affected_rows, 1u);
  EXPECT_EQ(del->last_insert_id, kInvalidRowId);
  EXPECT_EQ(del->ToString(), "1 row(s) affected\n");

  auto none = session_->Execute("DELETE FROM person WHERE name = 'nobody'");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->affected_rows, 0u);

  auto command = session_->Execute(
      "DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY FOR person.location");
  ASSERT_TRUE(command.ok());
  EXPECT_EQ(command->statement, StatementKind::kCommand);
  EXPECT_EQ(command->ToString(), "OK\n");
}

}  // namespace
}  // namespace instantdb
