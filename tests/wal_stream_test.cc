// Sharded-WAL recovery matrix: {1, 2, 4} streams × every privacy mode.
//
// What must hold (ISSUE 3 acceptance): crash recovery reconstructs the same
// state a single-stream log would, a torn tail frame in one stream voids a
// cross-stream commit atomically while clean streams' transactions survive,
// the persisted stream count pins the on-disk layout across reopen, and
// epoch-key destruction reaches every stream's copies at once.
//
// Crashes are simulated by syncing the WAL and copying the database
// directory while the source stays open (no checkpoint runs), then
// recovering from the copy — the same technique as a crash image, without
// leaking the live Database.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>
#include <tuple>
#include <vector>

#include "catalog/builtin_domains.h"
#include "common/strings.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "util/file.h"

namespace instantdb {
namespace {

Schema PingSchema() {
  return *Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp())});
}

/// Concatenated bytes of every file under `dir`, recursively (stream
/// subdirectories, recycled segments, the keystore — everything a forensic
/// scan would read).
std::string AllBytesUnder(const std::string& dir) {
  std::string all;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    auto contents = ReadFileToString(entry.path().string());
    if (contents.ok()) all += *contents;
  }
  return all;
}

void CopyTree(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive);
}

/// One row's recovered identity: id, stored location value, location phase.
struct RowState {
  RowId row_id;
  std::string user;
  std::string location;  // "<null>" once removed
  int phase;

  bool operator==(const RowState& other) const {
    return row_id == other.row_id && user == other.user &&
           location == other.location && phase == other.phase;
  }
  bool operator<(const RowState& other) const { return row_id < other.row_id; }
};

std::vector<RowState> DumpTable(Table* table) {
  std::vector<RowState> rows;
  EXPECT_TRUE(table
                  ->ScanRows([&](const RowView& view) {
                    rows.push_back(
                        {view.row_id, view.values[0].ToString(),
                         view.values[1].is_null() ? "<null>"
                                                  : view.values[1].ToString(),
                         view.phases[0]});
                    return true;
                  })
                  .ok());
  std::sort(rows.begin(), rows.end());
  return rows;
}

class WalStreamTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, WalPrivacyMode>> {
 protected:
  uint32_t streams() const { return std::get<0>(GetParam()); }
  WalPrivacyMode mode() const { return std::get<1>(GetParam()); }

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_wal_stream_test";
    clone_ = dir_ + "_clone";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(RemoveDirRecursive(clone_).ok());
  }
  void TearDown() override {
    RemoveDirRecursive(dir_).ok();
    RemoveDirRecursive(clone_).ok();
  }

  DbOptions Options(const std::string& path, uint32_t wal_streams,
                    uint32_t partitions, VirtualClock* clock) {
    DbOptions options;
    options.path = path;
    options.clock = clock;
    options.partitions = partitions;
    options.degradation.worker_threads = partitions;
    options.wal.privacy_mode = mode();
    options.wal.wal_streams = wal_streams;
    options.wal.segment_bytes = 1024;  // tiny: exercise per-stream rollover
    return options;
  }

  std::unique_ptr<Database> MustOpen(const DbOptions& options) {
    auto db = Database::Open(options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return db.ok() ? std::move(*db) : nullptr;
  }

  /// Runs the standard mixed workload: batched + single inserts, one
  /// degradation wave, deletes, a fuzzy checkpoint mid-way, more inserts
  /// after it. Returns the inserted row ids.
  std::vector<RowId> RunWorkload(Database* db, VirtualClock* clock) {
    std::vector<RowId> rows;
    const char* addresses[] = {"11 Rue Lepic", "3 Av Foch", "4 Rue Breteuil",
                               "12 Rue Royale"};
    for (int b = 0; b < 4; ++b) {
      WriteBatch batch;
      for (int r = 0; r < 10; ++r) {
        batch.Insert("pings", {Value::String(StringPrintf("u%d_%d", b, r)),
                               Value::String(addresses[r % 4])});
      }
      EXPECT_TRUE(db->Write(&batch).ok());
      rows.insert(rows.end(), batch.row_ids().begin(),
                  batch.row_ids().end());
      clock->Advance(kMicrosPerMinute);
    }
    for (int i = 0; i < 8; ++i) {
      auto row = db->Insert(
          "pings", {Value::String(StringPrintf("s%d", i)),
                    Value::String(addresses[i % 4])});
      EXPECT_TRUE(row.ok());
      rows.push_back(*row);
    }
    // Everything crosses address → city.
    clock->Advance(kMicrosPerHour);
    auto moved = db->RunDegradationOnce();
    EXPECT_TRUE(moved.ok()) << moved.status().ToString();
    EXPECT_GT(*moved, 0u);
    // Delete a few rows spread over partitions.
    for (size_t i = 0; i < rows.size(); i += 7) {
      EXPECT_TRUE(db->Delete("pings", rows[i]).ok());
    }
    // Fuzzy checkpoint, then post-checkpoint work that only the WAL holds.
    EXPECT_TRUE(db->Checkpoint().ok());
    for (int i = 0; i < 6; ++i) {
      auto row = db->Insert(
          "pings", {Value::String(StringPrintf("post%d", i)),
                    Value::String(addresses[i % 4])});
      EXPECT_TRUE(row.ok());
      rows.push_back(*row);
    }
    return rows;
  }

  /// Syncs the WAL and snapshots the open database's directory — a crash
  /// image taken after the last commit's ack.
  void CrashClone(Database* db) {
    ASSERT_TRUE(db->wal()->Sync().ok());
    CopyTree(dir_, clone_);
  }

  std::string dir_;
  std::string clone_;
};

TEST_P(WalStreamTest, CrashRecoveryReconstructsState) {
  VirtualClock clock(0);
  auto db = MustOpen(Options(dir_, streams(), 4, &clock));
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->CreateTable("pings", PingSchema()).ok());
  RunWorkload(db.get(), &clock);
  const std::vector<RowState> before = DumpTable(db->GetTable("pings"));
  ASSERT_FALSE(before.empty());
  CrashClone(db.get());

  VirtualClock recovered_clock(clock.NowMicros());
  auto recovered = MustOpen(Options(clone_, streams(), 4, &recovered_clock));
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->wal()->num_streams(), streams());
  EXPECT_EQ(DumpTable(recovered->GetTable("pings")), before);

  // The per-partition row-id allocators resumed above the recovered id
  // space: new inserts get fresh ids and degradation continues on schedule.
  const uint64_t live = recovered->GetTable("pings")->live_rows();
  auto row = recovered->Insert("pings", {Value::String("after"),
                                         Value::String("11 Rue Lepic")});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(recovered->GetTable("pings")->live_rows(), live + 1);
  for (const RowState& state : before) {
    EXPECT_NE(state.row_id, *row);
  }
  recovered_clock.Advance(kMicrosPerDay);
  EXPECT_TRUE(recovered->RunDegradationOnce().ok());
}

TEST_P(WalStreamTest, ShardedReplayEquivalentToSingleStream) {
  // Identical workload against a single-stream and an N-stream log (same
  // partition count, deterministically advanced clocks): crash recovery
  // must produce identical table states — the global commit ordering makes
  // sharding invisible to replay.
  if (streams() == 1) GTEST_SKIP() << "needs a sharded configuration";
  const std::string single_dir = dir_ + "_single";
  const std::string single_clone = clone_ + "_single";
  RemoveDirRecursive(single_dir).ok();
  RemoveDirRecursive(single_clone).ok();

  std::vector<RowState> states[2];
  for (int variant = 0; variant < 2; ++variant) {
    const uint32_t wal_streams = variant == 0 ? 1 : streams();
    const std::string base = variant == 0 ? single_dir : dir_;
    const std::string clone = variant == 0 ? single_clone : clone_;
    VirtualClock clock(0);
    auto db = MustOpen(Options(base, wal_streams, 4, &clock));
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(db->CreateTable("pings", PingSchema()).ok());
    RunWorkload(db.get(), &clock);
    ASSERT_TRUE(db->wal()->Sync().ok());
    CopyTree(base, clone);
    VirtualClock recovered_clock(clock.NowMicros());
    auto recovered =
        MustOpen(Options(clone, wal_streams, 4, &recovered_clock));
    ASSERT_NE(recovered, nullptr);
    states[variant] = DumpTable(recovered->GetTable("pings"));
  }
  EXPECT_EQ(states[0], states[1]);

  RemoveDirRecursive(single_dir).ok();
  RemoveDirRecursive(single_clone).ok();
}

TEST_P(WalStreamTest, MergedReplayWhenStreamsDoNotDividePartitions) {
  // partitions = 2 with 4 streams: a partition's records span streams, so
  // recovery must fall back to the global commit-order merge. State must
  // still match the pre-crash image exactly.
  if (streams() != 4) GTEST_SKIP() << "one configuration suffices";
  VirtualClock clock(0);
  auto db = MustOpen(Options(dir_, 4, 2, &clock));
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->CreateTable("pings", PingSchema()).ok());
  RunWorkload(db.get(), &clock);
  const std::vector<RowState> before = DumpTable(db->GetTable("pings"));
  CrashClone(db.get());

  VirtualClock recovered_clock(clock.NowMicros());
  auto recovered = MustOpen(Options(clone_, 4, 2, &recovered_clock));
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->wal()->num_streams(), 4u);
  EXPECT_EQ(DumpTable(recovered->GetTable("pings")), before);
}

TEST_P(WalStreamTest, StreamCountIsPinnedOnDisk) {
  VirtualClock clock(0);
  {
    auto db = MustOpen(Options(dir_, streams(), 4, &clock));
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(db->CreateTable("pings", PingSchema()).ok());
    ASSERT_TRUE(db->Insert("pings", {Value::String("a"),
                                     Value::String("11 Rue Lepic")})
                    .ok());
  }
  // Reopen asking for a different count: the on-disk count wins (re-routing
  // would strand records), and the data is intact.
  {
    auto reopened =
        MustOpen(Options(dir_, streams() == 1 ? 8 : 1, 4, &clock));
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->wal()->num_streams(), streams());
    EXPECT_EQ(reopened->GetTable("pings")->live_rows(), 1u);
  }
  // A lost STREAMS file must not demote a sharded log to one stream — the
  // contiguous s<k> directories recover the count even though the
  // CHECKPOINT manifest also lives at the top level.
  if (streams() > 1) {
    ASSERT_TRUE(RemoveFile(dir_ + "/wal/STREAMS").ok());
    auto reopened = MustOpen(Options(dir_, 1, 4, &clock));
    ASSERT_NE(reopened, nullptr);
    EXPECT_EQ(reopened->wal()->num_streams(), streams());
    EXPECT_EQ(reopened->GetTable("pings")->live_rows(), 1u);
  }
}

TEST_P(WalStreamTest, CheckpointRetiresSegmentsPerStream) {
  VirtualClock clock(0);
  auto db = MustOpen(Options(dir_, streams(), 4, &clock));
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->CreateTable("pings", PingSchema()).ok());
  const std::string needle = "11 Rue Lepic";  // a real leaf: must validate
  for (int b = 0; b < 8; ++b) {
    WriteBatch batch;
    for (int r = 0; r < 16; ++r) {
      batch.Insert("pings", {Value::String("u"), Value::String(needle)});
    }
    ASSERT_TRUE(db->Write(&batch).ok());
  }
  // Fuzzy checkpoints retire segments fully below the begin position; the
  // segment holding the checkpoint record itself survives until the next
  // cadence tick — so scrub timeliness needs the second checkpoint, exactly
  // the "forced checkpoint before the earliest phase-0 deadline" cadence of
  // the paper.
  ASSERT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_GT(db->wal()->stats().segments_retired, 0u);
  const std::string wal_bytes = AllBytesUnder(dir_ + "/wal");
  switch (mode()) {
    case WalPrivacyMode::kPlain:
      // Recycled segments keep the accurate values — the unsafe baseline.
      EXPECT_NE(wal_bytes.find(needle), std::string::npos);
      break;
    case WalPrivacyMode::kScrub:
    case WalPrivacyMode::kEncryptedEpoch:
      EXPECT_EQ(wal_bytes.find(needle), std::string::npos);
      break;
  }
}

TEST_P(WalStreamTest, EpochKeyDestructionReachesEveryStream) {
  if (mode() != WalPrivacyMode::kEncryptedEpoch) GTEST_SKIP();
  VirtualClock clock(0);
  auto db = MustOpen(Options(dir_, streams(), 4, &clock));
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->CreateTable("pings", PingSchema()).ok());
  const std::string needle = "11 Rue Lepic";  // a real leaf: must validate
  WriteBatch batch;
  for (int r = 0; r < 32; ++r) {
    batch.Insert("pings", {Value::String("u"), Value::String(needle)});
  }
  ASSERT_TRUE(db->Write(&batch).ok());
  ASSERT_TRUE(db->wal()->Sync().ok());
  // Sealed on arrival: no stream ever holds the accurate value in clear.
  EXPECT_EQ(AllBytesUnder(dir_ + "/wal").find(needle), std::string::npos);

  // Every tuple leaves phase 0; the shared per-(table, epoch) keys die,
  // voiding the inserts' payloads in every stream at once.
  clock.Advance(kMicrosPerHour + kMicrosPerMinute);
  auto moved = db->RunDegradationOnce();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, 32u);
  EXPECT_GT(db->wal()->stats().epoch_keys_destroyed, 0u);

  CrashClone(db.get());
  VirtualClock recovered_clock(clock.NowMicros());
  auto recovered = MustOpen(Options(clone_, streams(), 4, &recovered_clock));
  ASSERT_NE(recovered, nullptr);
  // Recovery fell back to the degraded values logged by the steps; the
  // accurate addresses are unrecoverable by design.
  for (const RowState& state : DumpTable(recovered->GetTable("pings"))) {
    EXPECT_EQ(state.location, "Paris");
    EXPECT_EQ(state.phase, 1);
  }
  EXPECT_EQ(AllBytesUnder(clone_ + "/wal").find(needle), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    StreamsByMode, WalStreamTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(WalPrivacyMode::kPlain,
                                         WalPrivacyMode::kScrub,
                                         WalPrivacyMode::kEncryptedEpoch)),
    [](const auto& info) {
      std::string name = "S" + std::to_string(std::get<0>(info.param));
      switch (std::get<1>(info.param)) {
        case WalPrivacyMode::kPlain: return name + "Plain";
        case WalPrivacyMode::kScrub: return name + "Scrub";
        case WalPrivacyMode::kEncryptedEpoch: return name + "EncryptedEpoch";
      }
      return name;
    });

// --- torn-tail atomicity, at the WalManager level ---------------------------

class WalTornTailTest : public ::testing::TestWithParam<WalPrivacyMode> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_wal_torn_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(CreateDirs(dir_).ok());
    keys_ = std::make_unique<KeyManager>(dir_ + "/keystore");
    ASSERT_TRUE(keys_->Open().ok());
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  WalOptions MakeOptions() {
    WalOptions options;
    options.privacy_mode = GetParam();
    options.wal_streams = 2;
    return options;
  }

  WalRecord MakeInsert(uint64_t txn, RowId row) {
    WalRecord record;
    record.type = WalRecordType::kInsert;
    record.txn_id = txn;
    record.table = 1;
    record.row_id = row;
    record.insert_time = 0;
    record.stable = {Value::String("donor")};
    record.degradable = {Value::String("addr")};
    return record;
  }

  Status Commit(WalManager* wal, uint64_t txn,
                const std::vector<WalRecord>& ops) {
    std::vector<const WalRecord*> pointers;
    for (const WalRecord& op : ops) pointers.push_back(&op);
    WalRecord commit;
    commit.type = WalRecordType::kCommit;
    commit.txn_id = txn;
    return wal->AppendCommit(pointers, &commit, /*sync=*/true);
  }

  std::string dir_;
  std::unique_ptr<KeyManager> keys_;
};

TEST_P(WalTornTailTest, TornStreamVoidsCrossStreamCommitAtomically) {
  Lsn s1_end = 0;
  {
    WalManager wal(dir_ + "/wal", MakeOptions(), keys_.get());
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_EQ(wal.num_streams(), 2u);
    // txn 1 spans both streams (rows 2 -> s0, 3 -> s1); its commit frame
    // lands in s0. txn 2 lives wholly in s0.
    WalRecord a = MakeInsert(1, 2);
    WalRecord b = MakeInsert(1, 3);
    ASSERT_TRUE(Commit(&wal, 1, {a, b}).ok());
    ASSERT_TRUE(Commit(&wal, 2, {MakeInsert(2, 4)}).ok());
    s1_end = wal.StreamEnds()[1];
  }
  // Tear stream 1's tail: the frame holding txn 1's row-3 insert loses its
  // last bytes, as after a crash mid-write. (Segments are preallocated, so
  // the cut lands at the logical end, not the zero-padded physical end.)
  {
    auto names = ListDir(dir_ + "/wal/s1");
    ASSERT_TRUE(names.ok());
    std::string segment;
    for (const auto& name : *names) {
      if (EndsWith(name, ".log")) segment = name;
    }
    ASSERT_FALSE(segment.empty());
    const std::string path = dir_ + "/wal/s1/" + segment;
    ASSERT_GT(s1_end, 4u);
    ASSERT_TRUE(TruncateFile(path, s1_end - 3).ok());
  }
  WalManager wal(dir_ + "/wal", MakeOptions(), keys_.get());
  ASSERT_TRUE(wal.Open().ok());
  // txn 1's commit frame survived in s0, but its per-stream counts say one
  // record must live in s1 — gone, so the commit is void. txn 2 replays.
  std::vector<RowId> rows;
  ASSERT_TRUE(wal.RecoverCommitted({0, 0}, /*stream_local_apply=*/false,
                                   [&](const WalRecord& record) {
                                     rows.push_back(record.row_id);
                                     return Status::OK();
                                   })
                  .ok());
  EXPECT_EQ(rows, std::vector<RowId>{4});
}

TEST_P(WalTornTailTest, MergedReplayFollowsCommitOrder) {
  WalManager wal(dir_ + "/wal", MakeOptions(), keys_.get());
  ASSERT_TRUE(wal.Open().ok());
  // Three commits with interleaved stream footprints; the merge must yield
  // whole transactions in commit-sequence order.
  ASSERT_TRUE(Commit(&wal, 7, {MakeInsert(7, 2)}).ok());             // s0
  ASSERT_TRUE(Commit(&wal, 8, {MakeInsert(8, 3)}).ok());             // s1
  ASSERT_TRUE(Commit(&wal, 9, {MakeInsert(9, 4), MakeInsert(9, 5)}).ok());
  std::vector<uint64_t> txn_order;
  ASSERT_TRUE(wal.RecoverCommitted({0, 0}, /*stream_local_apply=*/false,
                                   [&](const WalRecord& record) {
                                     if (txn_order.empty() ||
                                         txn_order.back() != record.txn_id) {
                                       txn_order.push_back(record.txn_id);
                                     }
                                     return Status::OK();
                                   })
                  .ok());
  EXPECT_EQ(txn_order, (std::vector<uint64_t>{7, 8, 9}));
}

TEST_P(WalTornTailTest, CommitSequenceResumesAfterRecovery) {
  // A reopened log must mint CSNs (and the database must mint txn ids)
  // above everything still in the replay range: a second crash would
  // otherwise merge a new generation's commits BEFORE the old ones, and a
  // reused txn id could satisfy a torn commit's record counts with the
  // prior generation's records.
  {
    WalManager wal(dir_ + "/wal", MakeOptions(), keys_.get());
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_TRUE(Commit(&wal, 7, {MakeInsert(7, 2)}).ok());
    ASSERT_TRUE(Commit(&wal, 8, {MakeInsert(8, 3), MakeInsert(8, 4)}).ok());
  }
  WalManager wal(dir_ + "/wal", MakeOptions(), keys_.get());
  ASSERT_TRUE(wal.Open().ok());
  uint64_t max_txn = 0;
  ASSERT_TRUE(wal.RecoverCommitted({0, 0}, /*stream_local_apply=*/false,
                                   [](const WalRecord&) { return Status::OK(); },
                                   &max_txn)
                  .ok());
  EXPECT_EQ(max_txn, 8u);
  // Same txn id as the first generation, committed post-recovery: its CSN
  // must sort after both surviving commits.
  ASSERT_TRUE(Commit(&wal, 7, {MakeInsert(7, 5)}).ok());
  std::vector<uint64_t> seqs;
  for (uint32_t s = 0; s < 2; ++s) {
    ASSERT_TRUE(wal.ReplayStream(s, 0, [&](const WalRecord& record, Lsn) {
                     if (record.type == WalRecordType::kCommit) {
                       seqs.push_back(record.commit_seq);
                     }
                     return Status::OK();
                   })
                    .ok());
  }
  ASSERT_EQ(seqs.size(), 3u);
  const uint64_t newest = *std::max_element(seqs.begin(), seqs.end());
  size_t above = 0;
  for (uint64_t seq : seqs) {
    if (seq == newest) ++above;
  }
  EXPECT_EQ(above, 1u);
  EXPECT_GT(newest, 2u);  // strictly after both first-generation CSNs
}

// --- group-commit watermark, at the WalStream level -------------------------

class GroupCommitWatermarkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_group_commit_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(CreateDirs(dir_).ok());
    keys_ = std::make_unique<KeyManager>(dir_ + "/keystore");
    ASSERT_TRUE(keys_->Open().ok());
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  WalRecord MakeInsert(uint64_t txn, RowId row) {
    WalRecord record;
    record.type = WalRecordType::kInsert;
    record.txn_id = txn;
    record.table = 1;
    record.row_id = row;
    record.insert_time = 0;
    record.stable = {Value::String("u")};
    record.degradable = {Value::String("11 Rue Lepic")};
    return record;
  }

  std::string dir_;
  std::unique_ptr<KeyManager> keys_;
};

TEST_F(GroupCommitWatermarkTest, CoveredRequestIsAbsorbedWithoutASync) {
  WalStream stream(dir_ + "/wal", 0, WalOptions{}, keys_.get());
  ASSERT_TRUE(stream.Open().ok());
  ASSERT_TRUE(stream.Append(MakeInsert(1, 1), /*sync=*/true).ok());
  WalStream::Stats stats = stream.stats();
  EXPECT_EQ(stats.syncs, 1u);
  EXPECT_EQ(stats.sync_requests, 1u);
  EXPECT_EQ(stats.commits_absorbed, 0u);
  EXPECT_EQ(stream.synced_lsn(), stream.next_lsn());

  // A second durability demand for already-covered bytes is satisfied by
  // the watermark alone: no new fdatasync.
  ASSERT_TRUE(stream.SyncThrough(stream.next_lsn()).ok());
  stats = stream.stats();
  EXPECT_EQ(stats.syncs, 1u);
  EXPECT_EQ(stats.sync_requests, 2u);
  EXPECT_EQ(stats.commits_absorbed, 1u);
}

TEST_F(GroupCommitWatermarkTest, ConcurrentDurableAppendsKeepInvariants) {
  constexpr int kThreads = 8;
  constexpr int kAppendsPerThread = 50;
  WalStream stream(dir_ + "/wal", 0, WalOptions{}, keys_.get());
  ASSERT_TRUE(stream.Open().ok());
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        const RowId row = static_cast<RowId>(t * kAppendsPerThread + i + 1);
        if (!stream.Append(MakeInsert(row, row), /*sync=*/true).ok()) {
          ++errors;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(errors.load(), 0);

  const WalStream::Stats stats = stream.stats();
  EXPECT_EQ(stats.records_appended,
            static_cast<uint64_t>(kThreads) * kAppendsPerThread);
  // Every durability demand either led a sync or was absorbed, the synced
  // watermark caught up with the appended one, and nothing was lost.
  EXPECT_EQ(stats.sync_requests, stats.syncs + stats.commits_absorbed);
  EXPECT_EQ(stats.sync_requests,
            static_cast<uint64_t>(kThreads) * kAppendsPerThread);
  EXPECT_EQ(stream.synced_lsn(), stream.next_lsn());
  size_t replayed = 0;
  ASSERT_TRUE(stream
                  .Replay(0,
                          [&](const WalRecord&, Lsn) {
                            ++replayed;
                            return Status::OK();
                          })
                  .ok());
  EXPECT_EQ(replayed, static_cast<size_t>(kThreads) * kAppendsPerThread);
}

// Leadership covers the whole appended tail, whatever the leader's own
// demand: after three unsynced appends, a demand for the FIRST record's end
// leads one fdatasync through the appended end, so later demands for the
// larger LSNs are already below the watermark and absorb without syncing.
// This is the property the commit-latency-aware handoff rests on (the
// largest demand leading cannot strand smaller ones).
TEST_F(GroupCommitWatermarkTest, OneLeaderCoversEveryLargerDemand) {
  WalStream stream(dir_ + "/wal", 0, WalOptions{}, keys_.get());
  ASSERT_TRUE(stream.Open().ok());
  Lsn end_first = 0;
  const WalRecord first = MakeInsert(1, 1);
  ASSERT_TRUE(stream.AppendBatch({&first}, false, &end_first).ok());
  ASSERT_TRUE(stream.Append(MakeInsert(2, 2), /*sync=*/false).ok());
  ASSERT_TRUE(stream.Append(MakeInsert(3, 3), /*sync=*/false).ok());
  const Lsn end_all = stream.next_lsn();
  ASSERT_GT(end_all, end_first);

  ASSERT_TRUE(stream.SyncThrough(end_first).ok());  // leads; covers end_all
  WalStream::Stats stats = stream.stats();
  EXPECT_EQ(stats.syncs, 1u);
  EXPECT_EQ(stream.synced_lsn(), end_all);

  ASSERT_TRUE(stream.SyncThrough(end_all).ok());  // absorbed, no new sync
  stats = stream.stats();
  EXPECT_EQ(stats.syncs, 1u);
  EXPECT_EQ(stats.sync_requests, 2u);
  EXPECT_EQ(stats.commits_absorbed, 1u);
  EXPECT_EQ(stats.sync_requests, stats.syncs + stats.commits_absorbed);
}

// Handoff under contention: threads append WITHOUT sync and then demand
// durability for exactly their own end LSN, so demands of every size race
// through the registration/handoff path (larger arrivals overtaking smaller
// parked ones). The ledger must stay exact — every demand leads or is
// absorbed, sync_requests == syncs + commits_absorbed — and the watermark
// must cover the appended end with nothing lost.
TEST_F(GroupCommitWatermarkTest, StaggeredDemandsKeepTheSyncLedgerExact) {
  constexpr int kThreads = 8;
  constexpr int kAppendsPerThread = 40;
  WalStream stream(dir_ + "/wal", 0, WalOptions{}, keys_.get());
  ASSERT_TRUE(stream.Open().ok());
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        const RowId row = static_cast<RowId>(t * kAppendsPerThread + i + 1);
        const WalRecord record = MakeInsert(row, row);
        Lsn end = 0;
        if (!stream.AppendBatch({&record}, /*sync=*/false, &end).ok() ||
            !stream.SyncThrough(end).ok()) {
          ++errors;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(errors.load(), 0);

  const WalStream::Stats stats = stream.stats();
  EXPECT_EQ(stats.sync_requests,
            static_cast<uint64_t>(kThreads) * kAppendsPerThread);
  EXPECT_EQ(stats.sync_requests, stats.syncs + stats.commits_absorbed);
  EXPECT_EQ(stream.synced_lsn(), stream.next_lsn());
  size_t replayed = 0;
  ASSERT_TRUE(stream
                  .Replay(0,
                          [&](const WalRecord&, Lsn) {
                            ++replayed;
                            return Status::OK();
                          })
                  .ok());
  EXPECT_EQ(replayed, static_cast<size_t>(kThreads) * kAppendsPerThread);
}

INSTANTIATE_TEST_SUITE_P(AllPrivacyModes, WalTornTailTest,
                         ::testing::Values(WalPrivacyMode::kPlain,
                                           WalPrivacyMode::kScrub,
                                           WalPrivacyMode::kEncryptedEpoch),
                         [](const auto& info) {
                           switch (info.param) {
                             case WalPrivacyMode::kPlain:
                               return "Plain";
                             case WalPrivacyMode::kScrub:
                               return "Scrub";
                             case WalPrivacyMode::kEncryptedEpoch:
                               return "EncryptedEpoch";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace instantdb
