#include <thread>

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "util/file.h"

namespace instantdb {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_engine_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
  }
  void TearDown() override {
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  void OpenDb(DegradationOptions degradation = {}) {
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    options.degradation = degradation;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  Schema PingSchema(AttributeLcp lcp) {
    return *Schema::Make(
        {ColumnDef::Stable("user", ValueType::kString),
         ColumnDef::Degradable("location", LocationDomain(), std::move(lcp))});
  }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(EngineTest, NextDeadlineTracksEarliestStoreHead) {
  OpenDb();
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema(Fig2LocationLcp())).ok());
  EXPECT_EQ(db_->degradation()->NextDeadline(), kForever);
  ASSERT_TRUE(db_->Insert("pings", {Value::String("a"),
                                    Value::String("11 Rue Lepic")}).ok());
  EXPECT_EQ(db_->degradation()->NextDeadline(), kMicrosPerHour);
  clock_->Advance(10 * kMicrosPerMinute);
  ASSERT_TRUE(db_->Insert("pings", {Value::String("b"),
                                    Value::String("3 Av Foch")}).ok());
  // Earliest deadline still belongs to the first tuple.
  EXPECT_EQ(db_->degradation()->NextDeadline(), kMicrosPerHour);
}

TEST_F(EngineTest, StepBatchLimitBoundsOneStep) {
  DegradationOptions degradation;
  degradation.step_batch_limit = 10;
  OpenDb(degradation);
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema(Fig2LocationLcp())).ok());
  for (int i = 0; i < 35; ++i) {
    ASSERT_TRUE(db_->Insert("pings", {Value::String("u"),
                                      Value::String("11 Rue Lepic")}).ok());
  }
  clock_->Advance(kMicrosPerHour);
  // RunDue keeps issuing bounded steps until the backlog drains.
  auto moved = db_->RunDegradationOnce();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, 35u);
  const auto stats = db_->degradation()->stats();
  EXPECT_GE(stats.steps, 4u);  // ceil(35 / 10)
  EXPECT_EQ(stats.values_moved, 35u);
}

TEST_F(EngineTest, MultipleTablesScheduledIndependently) {
  OpenDb();
  ASSERT_TRUE(db_->CreateTable("fast", PingSchema(*AttributeLcp::Make(
                                            {{0, kMicrosPerMinute}})))
                  .ok());
  ASSERT_TRUE(db_->CreateTable("slow", PingSchema(Fig2LocationLcp())).ok());
  ASSERT_TRUE(db_->Insert("fast", {Value::String("a"),
                                   Value::String("11 Rue Lepic")}).ok());
  ASSERT_TRUE(db_->Insert("slow", {Value::String("b"),
                                   Value::String("3 Av Foch")}).ok());
  EXPECT_EQ(db_->degradation()->NextDeadline(), kMicrosPerMinute);
  clock_->Advance(kMicrosPerMinute);
  auto moved = db_->RunDegradationOnce();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, 1u);  // only the fast table's tuple (removed at 1min)
  EXPECT_EQ(db_->GetTable("fast")->live_rows(), 0u);
  EXPECT_EQ(db_->GetTable("slow")->live_rows(), 1u);
  // Slow table's deadline now governs.
  EXPECT_EQ(db_->degradation()->NextDeadline(), kMicrosPerHour);
}

TEST_F(EngineTest, BackgroundThreadDegradesOnVirtualClock) {
  DegradationOptions degradation;
  degradation.background_thread = true;
  OpenDb(degradation);
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema(Fig2LocationLcp())).ok());
  auto row = db_->Insert("pings", {Value::String("a"),
                                   Value::String("11 Rue Lepic")});
  ASSERT_TRUE(row.ok());
  clock_->Advance(kMicrosPerHour);  // wakes the sleeping degrader
  // Wait (bounded) for the background thread to act.
  for (int i = 0; i < 500; ++i) {
    if (db_->GetTable("pings")->stats().values_degraded > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto view = db_->GetTable("pings")->GetRow(*row);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->has_value());
  const int col = db_->GetTable("pings")->schema().FindColumn("location");
  EXPECT_EQ((*view)->values[col], Value::String("Paris"));
}

TEST_F(EngineTest, DroppedTableLeavesScheduler) {
  OpenDb();
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema(Fig2LocationLcp())).ok());
  ASSERT_TRUE(db_->Insert("pings", {Value::String("a"),
                                    Value::String("11 Rue Lepic")}).ok());
  ASSERT_TRUE(db_->DropTable("pings").ok());
  EXPECT_EQ(db_->degradation()->NextDeadline(), kForever);
  clock_->Advance(kMicrosPerMonth);
  auto moved = db_->RunDegradationOnce();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, 0u);
}

TEST_F(EngineTest, LatenessReflectsDelayedPumping) {
  OpenDb();
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema(Fig2LocationLcp())).ok());
  ASSERT_TRUE(db_->Insert("pings", {Value::String("a"),
                                    Value::String("11 Rue Lepic")}).ok());
  // Pump 30 minutes late: lateness is recorded per value.
  clock_->Advance(kMicrosPerHour + 30 * kMicrosPerMinute);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  const Histogram& lateness = db_->GetTable("pings")->lateness_histogram();
  ASSERT_EQ(lateness.count(), 1u);
  EXPECT_DOUBLE_EQ(lateness.max(),
                   static_cast<double>(30 * kMicrosPerMinute));
}

// Property sweep: for any LCP phase timing, a tuple pumped exactly at each
// boundary is always in the phase the automaton predicts — storage and
// automaton never disagree.
class LcpConformanceTest
    : public ::testing::TestWithParam<std::vector<LcpPhase>> {};

TEST_P(LcpConformanceTest, StorageMatchesAutomaton) {
  const std::string dir = ::testing::TempDir() + "/idb_conformance";
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
  VirtualClock clock;
  DbOptions options;
  options.path = dir;
  options.clock = &clock;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto lcp = AttributeLcp::Make(GetParam());
  ASSERT_TRUE(lcp.ok());
  auto schema = Schema::Make(
      {ColumnDef::Stable("u", ValueType::kString),
       ColumnDef::Degradable("loc", LocationDomain(), *lcp)});
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE((*db)->CreateTable("t", *schema).ok());
  auto row = (*db)->Insert("t", {Value::String("x"),
                                 Value::String("11 Rue Lepic")});
  ASSERT_TRUE(row.ok());

  for (int p = 0; p < lcp->num_phases(); ++p) {
    const Micros end = lcp->PhaseEndOffset(p);
    if (end == kForever) break;
    // One microsecond before the boundary: still in phase p.
    clock.AdvanceTo(end - 1);
    ASSERT_TRUE((*db)->RunDegradationOnce().ok());
    auto view = *(*db)->GetTable("t")->GetRow(*row);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->phases[0], p) << "before boundary of phase " << p;
    // At the boundary: moved on (or expired).
    clock.AdvanceTo(end);
    ASSERT_TRUE((*db)->RunDegradationOnce().ok());
    view = *(*db)->GetTable("t")->GetRow(*row);
    if (p + 1 < lcp->num_phases()) {
      ASSERT_TRUE(view.has_value());
      EXPECT_EQ(view->phases[0], p + 1) << "after boundary of phase " << p;
    } else {
      EXPECT_FALSE(view.has_value()) << "tuple should expire after last phase";
    }
  }
  db->reset();
  RemoveDirRecursive(dir).ok();
}

INSTANTIATE_TEST_SUITE_P(
    PolicyShapes, LcpConformanceTest,
    ::testing::Values(
        std::vector<LcpPhase>{{0, kMicrosPerHour}},
        std::vector<LcpPhase>{{0, kMicrosPerMinute}, {1, kMicrosPerMinute}},
        std::vector<LcpPhase>{{0, kMicrosPerHour},
                              {1, kMicrosPerDay},
                              {2, kMicrosPerMonth},
                              {3, kMicrosPerMonth}},
        std::vector<LcpPhase>{{0, 2 * kMicrosPerHour}, {2, kMicrosPerDay}},
        std::vector<LcpPhase>{{1, kMicrosPerHour}, {3, kMicrosPerDay}},
        std::vector<LcpPhase>{{0, kMicrosPerHour}, {3, kForever}}));

}  // namespace
}  // namespace instantdb
