#include "db/write_batch.h"

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "query/session.h"
#include "storage/key_manager.h"
#include "util/file.h"
#include "wal/wal_manager.h"

namespace instantdb {
namespace {

class WriteBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_write_batch_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);

    auto pings = Schema::Make(
        {ColumnDef::Stable("user", ValueType::kString),
         ColumnDef::Degradable("location", LocationDomain(),
                               Fig2LocationLcp())});
    ASSERT_TRUE(pings.ok());
    ASSERT_TRUE(db_->CreateTable("pings", *pings).ok());

    auto events = Schema::Make({ColumnDef::Stable("id", ValueType::kInt64)});
    ASSERT_TRUE(events.ok());
    ASSERT_TRUE(db_->CreateTable("events", *events).ok());
  }
  void TearDown() override {
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(WriteBatchTest, CommitsAtomicallyAcrossTablesAndReturnsRowIds) {
  WriteBatch batch;
  batch.Insert("pings", {Value::String("alice"), Value::String("11 Rue Lepic")});
  batch.Insert("events", {Value::Int64(1)});
  batch.Insert("pings", {Value::String("bob"), Value::String("3 Av Foch")});
  ASSERT_EQ(batch.size(), 3u);
  ASSERT_TRUE(db_->Write(&batch).ok());

  ASSERT_EQ(batch.row_ids().size(), 3u);
  for (RowId row_id : batch.row_ids()) EXPECT_NE(row_id, kInvalidRowId);
  EXPECT_EQ(db_->GetTable("pings")->live_rows(), 2u);
  EXPECT_EQ(db_->GetTable("events")->live_rows(), 1u);

  auto row = db_->GetTable("pings")->GetRow(batch.row_ids()[0]);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(row->has_value());
  EXPECT_EQ((**row).values[0], Value::String("alice"));
}

TEST_F(WriteBatchTest, FailedOperationAbortsTheWholeBatch) {
  WriteBatch batch;
  batch.Insert("pings", {Value::String("alice"), Value::String("11 Rue Lepic")});
  batch.Insert("nosuch", {Value::Int64(1)});
  EXPECT_TRUE(db_->Write(&batch).IsNotFound());
  EXPECT_TRUE(batch.row_ids().empty());
  EXPECT_EQ(db_->GetTable("pings")->live_rows(), 0u);

  // Invalid row (coarse value in the most-accurate state) aborts too.
  WriteBatch bad_row;
  bad_row.Insert("pings", {Value::String("x"), Value::String("Paris")});
  bad_row.Insert("events", {Value::Int64(2)});
  EXPECT_FALSE(db_->Write(&bad_row).ok());
  EXPECT_EQ(db_->GetTable("events")->live_rows(), 0u);
}

TEST_F(WriteBatchTest, StagedDeletesApplyWithInserts) {
  WriteBatch seed;
  seed.Insert("events", {Value::Int64(1)});
  seed.Insert("events", {Value::Int64(2)});
  ASSERT_TRUE(db_->Write(&seed).ok());

  WriteBatch mixed;
  mixed.Delete("events", seed.row_ids()[0]);
  mixed.Insert("events", {Value::Int64(3)});
  ASSERT_TRUE(db_->Write(&mixed).ok());
  ASSERT_EQ(mixed.row_ids().size(), 2u);
  EXPECT_EQ(mixed.row_ids()[0], kInvalidRowId);  // delete slot
  EXPECT_NE(mixed.row_ids()[1], kInvalidRowId);
  EXPECT_EQ(db_->GetTable("events")->live_rows(), 2u);
}

TEST_F(WriteBatchTest, EmptyBatchIsANoOp) {
  WriteBatch batch;
  ASSERT_TRUE(db_->Write(&batch).ok());
  EXPECT_TRUE(batch.row_ids().empty());
  batch.Insert("events", {Value::Int64(1)});
  batch.Clear();
  ASSERT_TRUE(db_->Write(&batch).ok());
  EXPECT_EQ(db_->GetTable("events")->live_rows(), 0u);
}

/// The group-commit acceptance test: 1000 batched inserts with durability
/// requested must issue exactly ONE WAL sync, where the per-row path pays
/// one sync per row.
TEST_F(WriteBatchTest, ThousandInsertBatchIssuesExactlyOneWalSync) {
  const uint64_t syncs_before = db_->wal()->stats().syncs;

  WriteBatch batch;
  for (int i = 0; i < 1000; ++i) {
    batch.Insert("events", {Value::Int64(i)});
  }
  WriteOptions durable;
  durable.sync = true;
  ASSERT_TRUE(db_->Write(&batch, durable).ok());
  EXPECT_EQ(db_->wal()->stats().syncs - syncs_before, 1u);
  EXPECT_EQ(db_->GetTable("events")->live_rows(), 1000u);

  // Per-row baseline: N rows, N syncs.
  const uint64_t before_per_row = db_->wal()->stats().syncs;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Insert("events", {Value::Int64(1000 + i)}, durable).ok());
  }
  EXPECT_EQ(db_->wal()->stats().syncs - before_per_row, 10u);
}

/// AppendBatch framing must be byte-compatible with record-at-a-time
/// appends: replay decodes every record in order across segment rotations.
TEST(WalAppendBatchTest, BatchedFramesReplayAcrossSegmentRotation) {
  const std::string dir = ::testing::TempDir() + "/idb_append_batch_test";
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
  ASSERT_TRUE(CreateDirs(dir).ok());
  KeyManager keys(dir + "/keystore");
  ASSERT_TRUE(keys.Open().ok());
  WalOptions options;
  options.segment_bytes = 256;  // force rotations mid-batch
  WalManager wal(dir + "/wal", options, &keys);
  ASSERT_TRUE(wal.Open().ok());

  std::vector<WalRecord> records;
  for (RowId r = 1; r <= 50; ++r) {
    WalRecord record;
    record.type = WalRecordType::kInsert;
    record.txn_id = 42;
    record.table = 1;
    record.row_id = r;
    record.insert_time = static_cast<Micros>(r) * kMicrosPerMinute;
    record.stable = {Value::Int64(static_cast<int64_t>(r))};
    record.degradable = {Value::String("addr-" + std::to_string(r))};
    records.push_back(std::move(record));
  }
  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn_id = 42;
  records.push_back(commit);

  std::vector<const WalRecord*> pointers;
  for (const WalRecord& r : records) pointers.push_back(&r);
  const uint64_t syncs_before = wal.stats().syncs;
  auto first_lsn = wal.AppendBatch(pointers, /*sync=*/true);
  ASSERT_TRUE(first_lsn.ok());
  EXPECT_EQ(wal.stats().syncs - syncs_before, 1u);
  EXPECT_EQ(wal.stats().records_appended, records.size());
  EXPECT_GT(wal.stats().segments_created, 1u);  // rotation happened

  size_t replayed = 0;
  ASSERT_TRUE(wal.Replay(0, [&](const WalRecord& record, Lsn) {
                   if (replayed < 50) {
                     EXPECT_EQ(record.type, WalRecordType::kInsert);
                     EXPECT_EQ(record.row_id, replayed + 1);
                     EXPECT_EQ(record.stable[0],
                               Value::Int64(static_cast<int64_t>(replayed + 1)));
                   } else {
                     EXPECT_EQ(record.type, WalRecordType::kCommit);
                   }
                   ++replayed;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(replayed, records.size());
  RemoveDirRecursive(dir).ok();
}

}  // namespace
}  // namespace instantdb
