// Fault-injection I/O + error-sticky durability (ISSUE 8): every
// durability-bearing component routes its file I/O through the Env seam,
// so these tests substitute a FaultInjectionEnv and prove the privacy
// contract survives a hostile filesystem:
//
//  - a failed WAL fdatasync permanently poisons the stream (fsyncgate:
//    a retry could succeed while covering nothing) and every in-flight
//    group-commit waiter receives the error instead of an ack;
//  - ENOSPC degrades gracefully: writes fail with IOError("no space"),
//    reads keep working, and the error stays sticky on the stream;
//  - the torture harness runs >= 50 seeded randomized fault/crash
//    schedules (durable ingest + degradation + checkpoints under injected
//    faults, then a simulated power cut) and asserts zero durability
//    violations (recovered ⊇ acked, ⊆ attempted) and zero privacy
//    violations (the recovered database audits clean);
//  - torn store/heap writes surface as truncated-at-CRC loads and
//    Corruption reads, never as decoded garbage;
//  - the maintenance cadence retries transient checkpoint I/O failures
//    with capped backoff, the previous WAL manifest stays authoritative
//    across a failed rename, and Close() surfaces the first sticky
//    background error even after the retry succeeded.
//
// The base seed is fixed (deterministic in CI) and overridable via
// IDB_FAULT_SEED; scripts/verify.sh runs this suite under TSan as well.

#include <algorithm>
#include <cstdlib>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "catalog/builtin_domains.h"
#include "common/strings.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "storage/disk_manager.h"
#include "storage/key_manager.h"
#include "storage/state_store.h"
#include "util/file.h"

namespace instantdb {
namespace {

uint64_t BaseSeed() {
  const char* seed = std::getenv("IDB_FAULT_SEED");
  if (seed != nullptr && *seed != '\0') {
    return std::strtoull(seed, nullptr, 10);
  }
  return 20260808ull;
}

std::set<std::string> DumpUsers(Table* table) {
  std::set<std::string> users;
  EXPECT_TRUE(table
                  ->ScanRows([&](const RowView& view) {
                    users.insert(view.values[0].ToString());
                    return true;
                  })
                  .ok());
  return users;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_fault_injection_test";
    clone_ = dir_ + "_clone";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(RemoveDirRecursive(clone_).ok());
  }
  void TearDown() override {
    RemoveDirRecursive(dir_).ok();
    RemoveDirRecursive(clone_).ok();
  }

  DbOptions Options(const std::string& path, VirtualClock* clock, Env* env,
                    uint32_t streams) const {
    DbOptions options;
    options.path = path;
    options.clock = clock;
    options.env = env;
    options.partitions = 2;
    options.degradation.worker_threads = 1;
    options.degradation.step_batch_limit = 16;
    // kScrub: retired segments are scrubbed, so a recovered database can
    // audit fully clean (kPlain leaves recycled segments unscrubbed by
    // design and never comes clean).
    options.wal.privacy_mode = WalPrivacyMode::kScrub;
    options.wal.wal_streams = streams;
    options.wal.segment_bytes = 4096;  // frequent rollover + retirement
    return options;
  }

  /// pings(user STABLE, location DEGRADABLE): accurate for an hour, then a
  /// generalized phase held forever — tuples never expire, so every acked
  /// insert must survive recovery with its user intact.
  void CreatePings(Database* db) {
    auto lcp = AttributeLcp::Make({{0, kMicrosPerHour}, {1, kForever}});
    ASSERT_TRUE(lcp.ok());
    auto schema = Schema::Make(
        {ColumnDef::Stable("user", ValueType::kString),
         ColumnDef::Degradable("location", LocationDomain(), *lcp)});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db->CreateTable("pings", *schema).ok());
  }

  std::string dir_;
  std::string clone_;
};

// The deterministic fsyncgate test: one WAL stream, many concurrent durable
// committers, and the very next fdatasync fails with EIO. The failure must
// poison the stream permanently, and EVERY in-flight committer — the sync
// leader and all parked group-commit waiters — must receive the error; none
// may be acked, because none of their bytes are provably on disk.
TEST_F(FaultInjectionTest, FsyncEioPoisonsStreamAndFailsAllWaiters) {
  FaultInjectionEnv fault(Env::Default());
  VirtualClock clock(0);
  auto opened = Database::Open(Options(dir_, &clock, &fault, /*streams=*/1));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  CreatePings(db.get());

  WriteOptions durable;
  durable.sync = true;
  ASSERT_TRUE(
      db->Insert("pings",
                 {Value::String("baseline"), Value::String("11 Rue Lepic")},
                 durable)
          .ok());

  // The next fdatasync anywhere under the WAL directory returns EIO.
  fault.FailOnce(FaultOp::kSync, 1, Status::IOError("injected fsync EIO"),
                 "/wal/");

  // All committers race onto the single stream: one leads the failing sync,
  // the rest are parked on the group-commit watermark or fail fast on the
  // already-poisoned stream. Poisoning wakes the parked waiters with the
  // error, and no later sync can succeed — so no commit can be acked.
  constexpr int kCommitters = 8;
  std::vector<Status> statuses(kCommitters);
  std::vector<std::thread> threads;
  for (int t = 0; t < kCommitters; ++t) {
    threads.emplace_back([&, t] {
      auto id = db->Insert(
          "pings",
          {Value::String(StringPrintf("w%d", t)), Value::String("11 Rue Lepic")},
          durable);
      statuses[t] = id.status();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kCommitters; ++t) {
    EXPECT_FALSE(statuses[t].ok()) << "committer " << t << " was acked past a "
                                   << "failed fsync";
    EXPECT_TRUE(statuses[t].ToString().find("poisoned") != std::string::npos)
        << statuses[t].ToString();
  }

  // Sticky: the stream stays failed, later commits fail fast.
  Status later =
      db->Insert("pings", {Value::String("late"), Value::String("11 Rue Lepic")}, durable)
          .status();
  EXPECT_FALSE(later.ok());
  EXPECT_TRUE(later.ToString().find("poisoned") != std::string::npos)
      << later.ToString();

  // Reads keep working: only the baseline row is visible.
  EXPECT_EQ(db->GetTable("pings")->live_rows(), 1u);
  EXPECT_EQ(DumpUsers(db->GetTable("pings")),
            std::set<std::string>{"baseline"});

  const Database::Stats stats = db->stats();
  EXPECT_EQ(stats.wal.poisoned_streams, 1u);
  EXPECT_GE(stats.io.sync_failures, 1u);
  EXPECT_GE(stats.io.injected_faults, 1u);
  // The fsyncgate invariant: a failed sync is never silently forgotten.
  EXPECT_TRUE(stats.wal.poisoned_streams > 0 || stats.io.retries > 0);

  // Close cannot pretend the database shut down healthy: the final
  // checkpoint hits the poisoned stream.
  EXPECT_FALSE(db->Close().ok());
}

// ENOSPC graceful degradation: with the "disk" full, writes surface
// IOError("no space") while every read path keeps serving; clearing the
// condition does not un-poison the stream (the refused append already broke
// the LSN/byte correspondence).
TEST_F(FaultInjectionTest, DiskFullFailsWritesKeepsReadsWorking) {
  FaultInjectionEnv fault(Env::Default());
  VirtualClock clock(0);
  auto opened = Database::Open(Options(dir_, &clock, &fault, /*streams=*/1));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  CreatePings(db.get());

  WriteOptions durable;
  durable.sync = true;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db->Insert("pings",
                           {Value::String(StringPrintf("u%d", i)),
                            Value::String("11 Rue Lepic")},
                           durable)
                    .ok());
  }

  fault.SetDiskFull(dir_);
  Status full =
      db->Insert("pings", {Value::String("u4"), Value::String("11 Rue Lepic")}, durable)
          .status();
  ASSERT_FALSE(full.ok());
  EXPECT_TRUE(full.IsIOError()) << full.ToString();
  EXPECT_TRUE(full.ToString().find("no space") != std::string::npos)
      << full.ToString();

  // The database is still fully readable while the disk is full.
  EXPECT_EQ(db->GetTable("pings")->live_rows(), 4u);
  EXPECT_EQ(DumpUsers(db->GetTable("pings")).size(), 4u);
  EXPECT_GE(db->stats().io.injected_faults, 1u);

  // Space coming back does not resurrect the stream: the failed append
  // already poisoned it (sticky-fail, not transparent retry).
  fault.ClearDiskFull();
  Status later =
      db->Insert("pings", {Value::String("u5"), Value::String("11 Rue Lepic")}, durable)
          .status();
  EXPECT_FALSE(later.ok());
  EXPECT_TRUE(later.ToString().find("poisoned") != std::string::npos)
      << later.ToString();
  EXPECT_EQ(db->stats().wal.poisoned_streams, 1u);
  EXPECT_EQ(db->GetTable("pings")->live_rows(), 4u);

  EXPECT_FALSE(db->Close().ok());
}

// The randomized crash-point torture harness: >= 50 seeded schedules of
// durable ingest + degradation + checkpoints with one-shot faults armed at
// random points, each ending in a simulated power cut. Recovering the crash
// image must violate neither the durability contract (every acked commit
// survives; nothing appears that was never attempted) nor the privacy
// contract (after pumping recovered degradation and one maintenance cadence
// point, the deletion-assurance audit is clean).
TEST_F(FaultInjectionTest, TortureRandomizedFaultCrashSchedules) {
  constexpr int kSchedules = 50;
  constexpr int kRounds = 6;
  constexpr int kRowsPerRound = 4;
  const uint64_t base_seed = BaseSeed();

  const FaultOp kOps[] = {FaultOp::kSync, FaultOp::kAppend, FaultOp::kWrite,
                          FaultOp::kRename, FaultOp::kAllocate};
  const char* kPaths[] = {"", "/wal/", "seg_", "heap"};

  for (int schedule = 0; schedule < kSchedules; ++schedule) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(schedule);
    SCOPED_TRACE("schedule seed " + std::to_string(seed));
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(RemoveDirRecursive(clone_).ok());
    std::mt19937_64 rng(seed);

    FaultInjectionEnv fault(Env::Default());
    VirtualClock clock(0);
    auto opened = Database::Open(Options(dir_, &clock, &fault, /*streams=*/2));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Database> db = std::move(*opened);
    CreatePings(db.get());

    std::set<std::string> attempted;
    std::set<std::string> acked;
    bool saw_error = false;
    WriteOptions durable;
    durable.sync = true;

    for (int round = 0; round < kRounds; ++round) {
      // Arm a random one-shot fault about half the time. Short writes are
      // deliberately absent here: a half-persisted store frame followed by
      // the flush retry is not a crash-consistent state (the dedicated
      // torn-tail tests cover short writes against a reopen instead).
      if (rng() % 2 == 0) {
        fault.FailOnce(kOps[rng() % std::size(kOps)],
                       /*countdown=*/1 + static_cast<int>(rng() % 6),
                       Status::IOError("injected torture fault"),
                       kPaths[rng() % std::size(kPaths)]);
      }

      WriteBatch batch;
      std::vector<std::string> users;
      for (int r = 0; r < kRowsPerRound; ++r) {
        users.push_back(StringPrintf("s%d.r%d.%d", schedule, round, r));
        batch.Insert("pings", {Value::String(users.back()),
                               Value::String("11 Rue Lepic")});
        attempted.insert(users.back());
      }
      Status wrote = db->Write(&batch, durable);
      if (wrote.ok()) {
        acked.insert(users.begin(), users.end());
      } else {
        saw_error = true;
      }

      clock.Advance((1 + rng() % 30) * kMicrosPerMinute);
      if (!db->RunDegradationOnce().ok()) saw_error = true;
      if (rng() % 2 == 0 && !db->Checkpoint().ok()) saw_error = true;
    }

    // Every injected sync failure must be accounted for: a poisoned stream,
    // a counted background retry, or an error surfaced to this caller —
    // never a silent retry-and-forget.
    const Database::Stats stats = db->stats();
    if (stats.io.sync_failures > 0) {
      EXPECT_TRUE(stats.wal.poisoned_streams > 0 || stats.io.retries > 0 ||
                  saw_error)
          << "a sync failure vanished without a trace";
    }

    // Power cut: clone the tree, destroy everything unsynced in the clone,
    // and recover it with a clean filesystem.
    fault.ClearFaults();
    ASSERT_TRUE(fault.SimulateCrashTo(dir_, clone_).ok());
    db.reset();  // the source's Close may fail (poisoned stream) — ignored

    VirtualClock recovered_clock(clock.NowMicros());
    auto recovered = Database::Open(
        Options(clone_, &recovered_clock, /*env=*/nullptr, /*streams=*/2));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    std::unique_ptr<Database> rdb = std::move(*recovered);
    Table* table = rdb->GetTable("pings");
    ASSERT_NE(table, nullptr);

    // Durability: no lost acked commit, no resurrected never-attempted row.
    // (An unacked commit may legitimately survive — its bytes can become
    // durable through a later rotation seal even though the committer saw an
    // error — hence superset-of-acked, subset-of-attempted rather than
    // equality.)
    const std::set<std::string> surviving = DumpUsers(table);
    EXPECT_TRUE(std::includes(surviving.begin(), surviving.end(),
                              acked.begin(), acked.end()))
        << "lost acked commit: acked=" << acked.size()
        << " survived=" << surviving.size();
    EXPECT_TRUE(std::includes(attempted.begin(), attempted.end(),
                              surviving.begin(), surviving.end()))
        << "resurrected row that was never attempted";

    // Privacy: drain whatever degradation became due, run one maintenance
    // cadence point (checkpoint + segment retirement), and the audit must
    // prove no value outlived its deadline anywhere — stores, indexes, WAL
    // segments, epoch keys.
    const Micros now = recovered_clock.NowMicros();
    for (int i = 0; i < 200 && table->NextDeadline() <= now; ++i) {
      auto moved = rdb->RunDegradationOnce();
      ASSERT_TRUE(moved.ok()) << moved.status().ToString();
      if (*moved == 0) break;
    }
    ASSERT_TRUE(rdb->maintenance()->RunOnce(now).ok());
    const AuditReport report = rdb->Audit();
    EXPECT_TRUE(report.Verify().ok()) << report.ToString();
    EXPECT_TRUE(rdb->Close().ok());
  }
}

// Torn-tail detection in the state store: a short write tears the tail of a
// CRC-framed (v2) segment; reopening must load the durable prefix intact and
// drop the torn frames instead of decoding garbage.
TEST_F(FaultInjectionTest, StateStoreShortWriteTruncatesAtTornFrame) {
  FaultInjectionEnv fault(Env::Default());
  ASSERT_TRUE(fault.CreateDirs(dir_).ok());
  KeyManager keys(dir_ + "/KEYSTORE", &fault);
  ASSERT_TRUE(keys.Open().ok());

  const std::string store_dir = dir_ + "/store_a";
  {
    StateStore store(store_dir, /*table=*/1, /*column=*/0, /*phase=*/0,
                     StorageOptions(), &keys, &fault);
    ASSERT_TRUE(store.Open().ok());
    for (RowId r = 1; r <= 8; ++r) {
      ASSERT_TRUE(store
                      .Append({r, /*insert_time=*/100,
                               Value::String(StringPrintf("v%llu",
                                                          (unsigned long long)r))})
                      .ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());  // rows 1..8 are durable

    for (RowId r = 9; r <= 12; ++r) {
      ASSERT_TRUE(store
                      .Append({r, 100,
                               Value::String(StringPrintf("v%llu",
                                                          (unsigned long long)r))})
                      .ok());
    }
    // The next segment append persists half its payload, then fails: the
    // checkpoint that tried to flush the tail must report the error.
    fault.ShortWriteOnce(1, "seg_");
    EXPECT_FALSE(store.Checkpoint().ok());
  }

  // Recover with a clean env: the CRC framing cuts the load at the torn
  // frame — the checkpointed prefix is intact, every loaded row carries its
  // exact value, and nothing past the tear survives.
  KeyManager keys2(dir_ + "/KEYSTORE", Env::Default());
  ASSERT_TRUE(keys2.Open().ok());
  StateStore reopened(store_dir, 1, 0, 0, StorageOptions(), &keys2,
                      Env::Default());
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_GE(reopened.size(), 8u);
  EXPECT_LT(reopened.size(), 12u);
  for (RowId r = 1; r <= 8; ++r) {
    const StoreEntry* entry = reopened.Find(r);
    ASSERT_NE(entry, nullptr) << "durable row " << r << " lost";
    EXPECT_EQ(entry->value.ToString(),
              StringPrintf("v%llu", (unsigned long long)r));
  }
  // Prefix property: a loaded post-checkpoint frame implies every earlier
  // one loaded too (frames are cut at the first CRC mismatch, never cherry-
  // picked past it).
  bool missing = false;
  for (RowId r = 9; r <= 12; ++r) {
    if (reopened.Find(r) == nullptr) {
      missing = true;
    } else {
      EXPECT_FALSE(missing) << "frame " << r << " loaded past a torn frame";
    }
  }
}

// Bitrot detection: flipping one durable payload byte must invalidate the
// frame's CRC on load — the store drops the frame (and everything after it)
// rather than serving a corrupted value as the row's state.
TEST_F(FaultInjectionTest, StateStoreCrcRejectsCorruptedPayload) {
  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDirs(dir_).ok());
  KeyManager keys(dir_ + "/KEYSTORE", env);
  ASSERT_TRUE(keys.Open().ok());

  const std::string store_dir = dir_ + "/store_b";
  std::string segment_path;
  {
    StateStore store(store_dir, 1, 0, 0, StorageOptions(), &keys, env);
    ASSERT_TRUE(store.Open().ok());
    for (RowId r = 1; r <= 8; ++r) {
      ASSERT_TRUE(store.Append({r, 100, Value::String("payload")}).ok());
    }
    ASSERT_TRUE(store.Checkpoint().ok());
  }
  auto names = env->ListDir(store_dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    if (name.find("seg_") != std::string::npos) {
      segment_path = store_dir + "/" + name;
    }
  }
  ASSERT_FALSE(segment_path.empty());

  // Flip the first payload byte of the first frame: 8-byte magic header,
  // then [len|crc|payload] — the payload starts at offset 16.
  auto file = env->NewRandomRWFile(segment_path);
  ASSERT_TRUE(file.ok());
  std::string scratch;
  Slice byte;
  ASSERT_TRUE((*file)->Read(16, 1, &scratch, &byte).ok());
  const char flipped = static_cast<char>(byte[0] ^ 0xff);
  ASSERT_TRUE((*file)->Write(16, Slice(&flipped, 1)).ok());
  ASSERT_TRUE((*file)->Sync().ok());

  StateStore reopened(store_dir, 1, 0, 0, StorageOptions(), &keys, env);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.size(), 0u);  // the very first frame failed its CRC
  EXPECT_EQ(reopened.Find(1), nullptr);
}

// Heap page checksums: a torn (half-persisted) page write and a flipped
// byte must both surface as Corruption on read, never as a decoded page.
TEST_F(FaultInjectionTest, HeapPageChecksumDetectsTornAndCorruptPages) {
  constexpr size_t kPageSize = 4096;
  FaultInjectionEnv fault(Env::Default());
  ASSERT_TRUE(fault.CreateDirs(dir_).ok());
  const std::string path = dir_ + "/heap.db";

  auto opened =
      DiskManager::Open(path, kPageSize, &fault, /*checksum_pages=*/true);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<DiskManager> heap = std::move(*opened);

  auto p0 = heap->AllocatePage();
  ASSERT_TRUE(p0.ok());
  auto p1 = heap->AllocatePage();
  ASSERT_TRUE(p1.ok());

  std::string page_a(kPageSize, 'a');
  std::string page_b(kPageSize, 'b');
  ASSERT_TRUE(heap->WritePage(*p0, page_a.data()).ok());
  ASSERT_TRUE(heap->WritePage(*p1, page_a.data()).ok());
  std::vector<char> buf(kPageSize);
  ASSERT_TRUE(heap->ReadPage(*p0, buf.data()).ok());
  // Bytes outside the checksum word [4..8) round-trip exactly.
  EXPECT_EQ(std::string(buf.data(), 4), page_a.substr(0, 4));
  EXPECT_EQ(std::string(buf.data() + 8, kPageSize - 8), page_a.substr(8));

  // Torn write: only half of the new page reaches the file, leaving a
  // half-new half-old hybrid whose stored CRC matches neither.
  fault.ShortWriteOnce(1, "heap.db");
  EXPECT_FALSE(heap->WritePage(*p0, page_b.data()).ok());
  Status torn = heap->ReadPage(*p0, buf.data());
  EXPECT_TRUE(torn.IsCorruption()) << torn.ToString();
  EXPECT_TRUE(torn.ToString().find("checksum mismatch") != std::string::npos)
      << torn.ToString();

  // Bitrot on the other page: flip one byte behind the manager's back.
  auto file = Env::Default()->NewRandomRWFile(path);
  ASSERT_TRUE(file.ok());
  const uint64_t offset = static_cast<uint64_t>(*p1) * kPageSize + 100;
  std::string scratch;
  Slice byte;
  ASSERT_TRUE((*file)->Read(offset, 1, &scratch, &byte).ok());
  const char flipped = static_cast<char>(byte[0] ^ 0xff);
  ASSERT_TRUE((*file)->Write(offset, Slice(&flipped, 1)).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  Status rot = heap->ReadPage(*p1, buf.data());
  EXPECT_TRUE(rot.IsCorruption()) << rot.ToString();
}

// The maintenance cadence against a transiently broken disk: a failed
// manifest rename leaves the previous CHECKPOINT manifest authoritative,
// schedules a capped-backoff retry that tracks the unmet deadline pressure
// (so the recovered disk immediately drives the overdue checkpoint even
// though the failed attempt flushed every partition clean), and the first
// error stays sticky all the way into stats().io and Close().
TEST_F(FaultInjectionTest, MaintenanceRetriesCheckpointAndKeepsOldManifest) {
  FaultInjectionEnv fault(Env::Default());
  VirtualClock clock(0);
  auto opened = Database::Open(Options(dir_, &clock, &fault, /*streams=*/1));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  CreatePings(db.get());
  MaintenanceDaemon* daemon = db->maintenance();

  WriteOptions durable;
  durable.sync = true;
  ASSERT_TRUE(
      db->Insert("pings", {Value::String("u0"), Value::String("11 Rue Lepic")}, durable)
          .ok());

  // A healthy cadence point: dirty partitions, checkpoint runs.
  clock.Advance(kMicrosPerSecond);
  Micros now = clock.NowMicros();
  ASSERT_TRUE(daemon->RunOnce(now).ok());
  ASSERT_EQ(daemon->stats().checkpoints, 1u);
  auto before = db->wal()->ReadCheckpointPositions();
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(
      db->Insert("pings", {Value::String("u1"), Value::String("11 Rue Lepic")}, durable)
          .ok());

  // The next manifest publish fails at the rename. The partitions still
  // flush (that part of the checkpoint succeeded), but the previous
  // manifest must stay authoritative and the cadence must schedule a
  // floor-delay retry.
  fault.FailOnce(FaultOp::kRename, 1, Status::IOError("injected rename EIO"),
                 "CHECKPOINT");
  clock.Advance(2 * kMicrosPerSecond);
  now = clock.NowMicros();
  Status failed = daemon->RunOnce(now);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.IsIOError()) << failed.ToString();
  EXPECT_EQ(daemon->next_checkpoint_due(), now + 10'000);  // backoff floor
  EXPECT_EQ(daemon->stats().io_retries, 1u);
  auto after_failure = db->wal()->ReadCheckpointPositions();
  ASSERT_TRUE(after_failure.ok());
  EXPECT_EQ(*after_failure, *before) << "a failed rename replaced the "
                                     << "authoritative manifest";

  // Disk recovers: the retry point fires 10 ms later and the pending
  // deadline pressure pushes the checkpoint through even though the failed
  // attempt left every partition clean.
  clock.Advance(10'000);
  now = clock.NowMicros();
  ASSERT_TRUE(daemon->RunOnce(now).ok());
  EXPECT_EQ(daemon->stats().checkpoints, 2u);
  auto after_retry = db->wal()->ReadCheckpointPositions();
  ASSERT_TRUE(after_retry.ok());
  EXPECT_NE(*after_retry, *before) << "the retried checkpoint never "
                                   << "published a new manifest";

  // The transient failure is observable forever: stats().io carries the
  // retry count and first error, and Close refuses to report a healthy
  // shutdown even though the retry succeeded.
  const Database::Stats stats = db->stats();
  EXPECT_GE(stats.io.retries, 1u);
  EXPECT_FALSE(stats.io.first_error.empty());
  EXPECT_TRUE(stats.io.first_error.find("injected rename EIO") !=
              std::string::npos)
      << stats.io.first_error;
  if (stats.io.sync_failures > 0) {
    EXPECT_TRUE(stats.wal.poisoned_streams > 0 || stats.io.retries > 0);
  }
  Status closed = db->Close();
  EXPECT_FALSE(closed.ok());
  EXPECT_TRUE(closed.IsIOError()) << closed.ToString();
}

}  // namespace
}  // namespace instantdb
