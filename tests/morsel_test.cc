// Morsel-driven execution: page-range work units claimed from per-partition
// queues with partition affinity and busiest-queue stealing (util/morsel.h).
// These tests pin down (a) scheduler accounting — every morsel claimed
// exactly once, home claims never counted as steals, ordinals in
// (partition, page) order; (b) scan equivalence at any parallelism,
// including parallelism ABOVE the partition count, with pushdown on and
// off; (c) range-bounded cursor resume exactness across morsel boundaries;
// (d) work stealing on a 100%-skewed table, proving more than one worker
// participates in one partition's scan; and (e) snapshot safety with a
// concurrent degrader. Runs under ThreadSanitizer in scripts/verify.sh
// --tsan: the scheduler's lock-free claim path and the shared worker pool
// are exactly the cross-thread code it exercises.

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "query/cursor.h"
#include "query/session.h"
#include "util/file.h"
#include "util/morsel.h"

namespace instantdb {
namespace {

TEST(MorselSchedulerTest, OrdinalsFlattenQueueMajor) {
  std::vector<std::vector<Morsel>> queues(2);
  queues[0].push_back(Morsel{0, 0, 2, 0});
  queues[0].push_back(Morsel{0, 2, kInvalidPageId, 0});
  queues[1].push_back(Morsel{1, 0, kInvalidPageId, 0});
  MorselScheduler sched(queues);
  EXPECT_EQ(sched.total(), 3u);
  EXPECT_EQ(sched.num_queues(), 2u);
  // Worker 0 drains its home queue in order, then steals the last morsel;
  // ordinals come out 0, 1, 2 — the flattened (partition, page) order the
  // materializing path concatenates buckets in.
  Morsel m;
  for (size_t expect = 0; expect < 3; ++expect) {
    ASSERT_TRUE(sched.Claim(0, &m));
    EXPECT_EQ(m.ordinal, expect);
  }
  EXPECT_FALSE(sched.Claim(0, &m));
}

TEST(MorselSchedulerTest, HomeClaimsAndStealsAreCountedApart) {
  // Queue 0 holds all the work; queue 1 is a single empty-partition morsel.
  // Worker 1 exhausts its home immediately and must then steal from the
  // busiest queue — deterministically, single-threaded.
  std::vector<std::vector<Morsel>> queues(2);
  for (PageId p = 0; p < 3; ++p) queues[0].push_back(Morsel{0, p, p + 1, 0});
  queues[1].push_back(Morsel{1, 0, kInvalidPageId, 0});
  std::atomic<uint64_t> claimed{0};
  std::atomic<uint64_t> stolen{0};
  std::atomic<uint64_t> failures{0};
  MorselScheduler sched(queues, MorselStatsSink{&claimed, &stolen, &failures});

  Morsel m;
  bool was_stolen = true;
  ASSERT_TRUE(sched.Claim(1, &m, &was_stolen));  // home queue 1
  EXPECT_FALSE(was_stolen);
  EXPECT_EQ(m.partition, 1u);
  ASSERT_TRUE(sched.Claim(1, &m, &was_stolen));  // home empty: steals
  EXPECT_TRUE(was_stolen);
  EXPECT_EQ(m.partition, 0u);
  ASSERT_TRUE(sched.Claim(0, &m, &was_stolen));  // home claim, no steal
  EXPECT_FALSE(was_stolen);
  ASSERT_TRUE(sched.Claim(1, &m, &was_stolen));
  EXPECT_TRUE(was_stolen);
  EXPECT_FALSE(sched.Claim(0, &m));
  EXPECT_FALSE(sched.Claim(1, &m));

  EXPECT_EQ(claimed.load(), sched.total());
  EXPECT_EQ(stolen.load(), 2u);
  EXPECT_EQ(failures.load(), 0u);  // no races single-threaded
}

class MorselScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_morsel_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override {
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  /// Fresh database with `partitions` partitions and a worker pool of 4,
  /// holding `rows` pings with mixed phases (first half degraded past the
  /// one-hour address deadline). `batch_rows` sets the WriteBatch size:
  /// batches are partition-affine, so 25 spreads rows over every partition
  /// while a single `rows`-sized batch lands them all in ONE (100% skew).
  void BuildDb(uint32_t partitions, int rows, int batch_rows = 25) {
    db_.reset();
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    options.partitions = partitions;
    options.degradation.worker_threads = 4;
    auto opened = Database::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db_ = std::move(*opened);

    auto schema = Schema::Make(
        {ColumnDef::Stable("user", ValueType::kString),
         ColumnDef::Degradable("location", LocationDomain(),
                               Fig2LocationLcp())});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db_->CreateTable("pings", *schema).ok());

    const char* kAddresses[] = {"11 Rue Lepic", "3 Av Foch", "12 Rue Royale",
                                "4 Rue Breteuil", "8 Cours Mirabeau"};
    // Pad users to ~150-byte rows so a few hundred rows span several heap
    // pages — 1-page morsel plans need multi-page partitions to be
    // interesting.
    const std::string pad(120, 'x');
    auto insert_range = [&](int from, int to) {
      for (int start = from; start < to; start += batch_rows) {
        WriteBatch batch;
        for (int i = start; i < std::min(start + batch_rows, to); ++i) {
          batch.Insert("pings", {Value::String("u" + std::to_string(i) + pad),
                                 Value::String(kAddresses[i % 5])});
        }
        ASSERT_TRUE(db_->Write(&batch).ok());
      }
    };
    insert_range(0, rows / 2);
    clock_->Advance(kMicrosPerHour + kMicrosPerMinute);
    ASSERT_TRUE(db_->RunDegradationOnce().ok());
    insert_range(rows / 2, rows);
  }

  /// Total morsel count of the pings table's current plan at 1-page
  /// granularity (what the scans below are configured to use).
  size_t PlanTotal() {
    size_t total = 0;
    for (const auto& queue : db_->GetTable("pings")->MorselPlan(1)) {
      total += queue.size();
    }
    return total;
  }

  /// Drains `sql` through a streaming cursor at `parallelism` into
  /// user -> rendered-row, asserting no duplicate users. Forces 1-page
  /// morsels so even small test tables split into many work units.
  std::map<std::string, std::vector<std::string>> DrainCursor(
      Session* session, const std::string& sql, size_t parallelism) {
    session->scan_options().parallelism = parallelism;
    session->scan_options().morsel_pages = 1;
    std::map<std::string, std::vector<std::string>> rows;
    auto cursor = session->ExecuteCursor(sql);
    EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
    if (!cursor.ok()) return rows;
    CursorRow row;
    while (true) {
      auto more = (*cursor)->Next(&row);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      const auto [it, inserted] =
          rows.emplace(row.display()[0], row.display());
      EXPECT_TRUE(inserted) << "duplicate row for " << row.display()[0];
    }
    return rows;
  }

  /// Materialized (Session::Execute) scan: returns the rendered rows IN
  /// ORDER — the morsel-ordinal merge must reproduce the sequential order
  /// at any parallelism.
  std::vector<std::vector<std::string>> MaterializedRows(
      Session* session, const std::string& sql, size_t parallelism) {
    session->scan_options().parallelism = parallelism;
    session->scan_options().morsel_pages = 1;
    auto result = session->Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return {};
    return result->display;
  }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(MorselScanTest, EquivalentAtAnyParallelismPartitionsAndPushdown) {
  constexpr int kRows = 900;
  for (uint32_t partitions : {1u, 4u}) {
    BuildDb(partitions, kRows);
    for (bool pushdown : {true, false}) {
      Session session(db_.get());
      session.scan_options().pushdown = pushdown;
      ASSERT_TRUE(session
                      .Execute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY "
                               "FOR pings.location")
                      .ok());
      const std::string sql = "SELECT user, location FROM pings";
      const auto baseline = DrainCursor(&session, sql, 1);
      ASSERT_EQ(baseline.size(), static_cast<size_t>(kRows))
          << "partitions=" << partitions << " pushdown=" << pushdown;
      const auto ordered = MaterializedRows(&session, sql, 1);
      ASSERT_EQ(ordered.size(), static_cast<size_t>(kRows));
      // 2×partitions exceeds the partition count: pre-morsel fan-out could
      // not even express this — workers must share partitions.
      for (size_t parallelism : {4u, 2 * partitions}) {
        EXPECT_EQ(DrainCursor(&session, sql, parallelism), baseline)
            << "partitions=" << partitions << " parallelism=" << parallelism
            << " pushdown=" << pushdown;
        // The materialized path must also preserve sequential ORDER, not
        // just the row set: buckets concatenate in morsel-ordinal order.
        EXPECT_EQ(MaterializedRows(&session, sql, parallelism), ordered)
            << "partitions=" << partitions << " parallelism=" << parallelism
            << " pushdown=" << pushdown;
      }
    }
  }
}

TEST_F(MorselScanTest, ClaimedCounterMatchesThePlanSizeExactly) {
  BuildDb(4, 800);
  Session session(db_.get());
  const size_t plan_total = PlanTotal();
  ASSERT_GT(plan_total, 4u);  // multiple morsels per partition at 1 page

  // Streaming fan-out: a fully drained scan claims every morsel exactly
  // once — the invariant the lock-free claim path must uphold.
  const uint64_t before = db_->stats().scan.morsels_claimed;
  EXPECT_EQ(DrainCursor(&session, "SELECT user FROM pings", 4).size(), 800u);
  const uint64_t streamed = db_->stats().scan.morsels_claimed;
  EXPECT_EQ(streamed - before, plan_total);

  // Materialized path builds its own scheduler over the same plan.
  EXPECT_EQ(MaterializedRows(&session, "SELECT user FROM pings", 4).size(),
            800u);
  const uint64_t materialized = db_->stats().scan.morsels_claimed;
  EXPECT_EQ(materialized - streamed, plan_total);

  // Aggregate pushdown drains morsels too (per-worker partials).
  const uint64_t merges_before = db_->stats().scan.aggregate_partials_merged;
  auto count = session.Execute("SELECT COUNT(*) FROM pings");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->display[0][0], "800");
  EXPECT_EQ(db_->stats().scan.morsels_claimed - materialized, plan_total);
  // One partial per WORKER now, not per partition.
  EXPECT_GT(db_->stats().scan.aggregate_partials_merged, merges_before);
}

TEST_F(MorselScanTest, SkewedPartitionIsSharedByStealingWorkers) {
  // Every row in ONE partition (a single partition-affine WriteBatch per
  // half): 3 of the 4 scan workers find an empty home queue and must steal
  // from the hot partition to contribute.
  constexpr int kRows = 4000;
  BuildDb(4, kRows, /*batch_rows=*/kRows);
  Session session(db_.get());
  // Queue capacity 1 maximizes backpressure: the first worker blocks after
  // a couple of morsels, so the stealing workers are the only runnable
  // producers for most of the plan.
  session.scan_options().prefetch_batches = 1;

  const auto plan = db_->GetTable("pings")->MorselPlan(1);
  size_t hot = 0;
  for (const auto& queue : plan) hot = std::max(hot, queue.size());
  ASSERT_GE(hot, 20u) << "skewed table did not materialize enough pages";

  const Database::Stats before = db_->stats();
  const auto rows = DrainCursor(&session, "SELECT user FROM pings", 4);
  EXPECT_EQ(rows.size(), static_cast<size_t>(kRows));
  const Database::Stats after = db_->stats();
  EXPECT_EQ(after.scan.morsels_claimed - before.scan.morsels_claimed,
            PlanTotal());
  // The proof that >1 worker scanned the hot partition: home claims are
  // never counted as steals, so any stolen morsel was taken by a worker
  // whose home queue lay elsewhere.
  EXPECT_GT(after.scan.morsels_stolen, before.scan.morsels_stolen);
}

TEST_F(MorselScanTest, MorselCursorsResumeExactlyAcrossBoundaries) {
  constexpr int kRows = 500;
  BuildDb(4, kRows);
  Table* table = db_->GetTable("pings");
  ASSERT_NE(table, nullptr);

  // Full sequential sweep as ground truth.
  std::set<RowId> expected;
  for (uint32_t p = 0; p < table->num_partitions(); ++p) {
    PartitionCursor cursor = table->OpenPartitionCursor(p);
    bool done = false;
    while (!done) {
      std::vector<RowView> views;
      ASSERT_TRUE(cursor.NextBatch(64, &views, &done).ok());
      for (const RowView& view : views) expected.insert(view.row_id);
    }
  }
  ASSERT_EQ(expected.size(), static_cast<size_t>(kRows));

  // Drain every 1-page morsel with a tiny batch limit, forcing resume
  // positions INSIDE pages and at page (= morsel) boundaries. The union
  // must be exact: no row lost at a boundary, none served by two morsels.
  std::set<RowId> seen;
  for (const auto& queue : table->MorselPlan(1)) {
    for (const Morsel& morsel : queue) {
      PartitionCursor cursor = table->OpenMorselCursor(morsel);
      bool done = false;
      while (!done) {
        std::vector<RowView> views;
        ASSERT_TRUE(cursor.NextBatch(7, &views, &done).ok());
        for (const RowView& view : views) {
          EXPECT_EQ(table->PartitionOf(view.row_id), morsel.partition);
          EXPECT_TRUE(seen.insert(view.row_id).second)
              << "row served by two morsels: " << view.row_id;
        }
      }
      // A drained morsel cursor stays drained.
      std::vector<RowView> extra;
      ASSERT_TRUE(cursor.NextBatch(7, &extra, &done).ok());
      EXPECT_TRUE(done);
      EXPECT_TRUE(extra.empty());
    }
  }
  EXPECT_EQ(seen, expected);
}

TEST_F(MorselScanTest, ScanDuringDegradationStaysSnapshotSafe) {
  constexpr int kRows = 800;
  BuildDb(4, kRows);
  Session session(db_.get());
  ASSERT_TRUE(session
                  .Execute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY "
                           "FOR pings.location")
                  .ok());
  // Parallelism above the partition count with 1-page morsels: several
  // workers inside one partition while the degrader moves values.
  session.scan_options().parallelism = 8;
  session.scan_options().morsel_pages = 1;
  auto cursor = session.ExecuteCursor("SELECT user, location FROM pings");
  ASSERT_TRUE(cursor.ok());

  const std::set<std::string> kCities = {"Paris", "Versailles", "Marseille",
                                         "Aix"};
  CursorRow row;
  std::set<std::string> seen;
  int pulled = 0;
  while (pulled < kRows / 4) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    EXPECT_TRUE(seen.insert(row.display()[0]).second);
    EXPECT_TRUE(kCities.count(row.display()[1]))
        << "torn location: " << row.display()[1];
    ++pulled;
  }
  clock_->Advance(kMicrosPerHour + kMicrosPerMinute);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  while (true) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_TRUE(seen.insert(row.display()[0]).second);
    // Read before or after its degradation step, a CITY-rendered value is
    // a city label — never torn or half-moved.
    EXPECT_TRUE(kCities.count(row.display()[1]))
        << "torn location: " << row.display()[1];
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kRows));
}

}  // namespace
}  // namespace instantdb
