#include <thread>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"
#include "gtest/gtest.h"

namespace instantdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Expired("x").IsExpired());
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::InvalidArgument("bad accuracy level");
  EXPECT_EQ(s.message(), "bad accuracy level");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad accuracy level");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto ok_path = []() -> Status {
    IDB_RETURN_IF_ERROR(Status::OK());
    return Status::Busy("reached");
  };
  EXPECT_TRUE(ok_path().IsBusy());

  auto err_path = []() -> Status {
    IDB_RETURN_IF_ERROR(Status::IOError("disk"));
    return Status::OK();
  };
  EXPECT_TRUE(err_path().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<int> {
    if (fail) return Status::IOError("nope");
    return 7;
  };
  auto use = [&](bool fail) -> Result<int> {
    IDB_ASSIGN_OR_RETURN(int v, make(fail));
    return v * 2;
  };
  ASSERT_TRUE(use(false).ok());
  EXPECT_EQ(*use(false), 14);
  EXPECT_TRUE(use(true).status().IsIOError());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(VirtualClockTest, StartsAtConfiguredTime) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
}

TEST(VirtualClockTest, AdvanceMovesTime) {
  VirtualClock clock;
  clock.Advance(kMicrosPerHour);
  EXPECT_EQ(clock.NowMicros(), kMicrosPerHour);
  clock.AdvanceTo(kMicrosPerDay);
  EXPECT_EQ(clock.NowMicros(), kMicrosPerDay);
  clock.AdvanceTo(5);  // backwards: no-op
  EXPECT_EQ(clock.NowMicros(), kMicrosPerDay);
}

TEST(VirtualClockTest, WaitUntilWakesOnAdvance) {
  VirtualClock clock;
  Micros observed = -1;
  std::thread waiter([&] { observed = clock.WaitUntil(1000); });
  clock.Advance(1500);
  waiter.join();
  EXPECT_GE(observed, 1000);
}

TEST(VirtualClockTest, WakeAllInterruptsSleep) {
  VirtualClock clock;
  Micros observed = -1;
  std::thread waiter([&] { observed = clock.WaitUntil(1'000'000); });
  // Give the waiter a moment to block, then interrupt it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  clock.WakeAll();
  waiter.join();
  EXPECT_EQ(observed, 0);  // time never moved
}

TEST(SystemClockTest, MonotoneAndWaits) {
  SystemClock clock;
  const Micros t0 = clock.NowMicros();
  const Micros t1 = clock.WaitUntil(t0 + 2000);
  EXPECT_GE(t1, t0 + 2000);
}

TEST(TimeConstantsTest, PaperDelays) {
  // Fig. 2 of the paper uses 1 hour / 1 day / 1 month delays.
  EXPECT_EQ(kMicrosPerHour, 3600LL * 1000 * 1000);
  EXPECT_EQ(kMicrosPerDay, 24 * kMicrosPerHour);
  EXPECT_EQ(kMicrosPerMonth, 30 * kMicrosPerDay);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RandomTest, UniformWithinRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    const int64_t r = rng.UniformRange(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewsTowardSmallValues) {
  ZipfGenerator zipf(1000, 0.99, 3);
  size_t low = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next() < 10) ++low;
  }
  // With theta=0.99 the 10 hottest of 1000 items draw far more than the
  // uniform 1% of accesses.
  EXPECT_GT(low, kSamples / 10);
}

TEST(StringsTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("x=%d y=%s", 3, "ok"), "x=3 y=ok");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(StringsTest, JoinSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_EQ(ToUpper("DeClArE"), "DECLARE");
  EXPECT_TRUE(StartsWith("instantdb", "instant"));
  EXPECT_TRUE(EndsWith("segment.log", ".log"));
  EXPECT_FALSE(EndsWith("log", "segment.log"));
}

}  // namespace
}  // namespace instantdb
