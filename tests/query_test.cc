#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/session.h"
#include "util/file.h"

namespace instantdb {
namespace {

// --- parser ------------------------------------------------------------------------

TEST(ParserTest, ParsesPaperDeclarePurpose) {
  auto ast = ParseStatement(
      "DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION, "
      "RANGE1000 FOR P.SALARY");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const auto& declare = std::get<DeclarePurposeAst>(*ast);
  EXPECT_EQ(declare.name, "STAT");
  ASSERT_EQ(declare.clauses.size(), 2u);
  EXPECT_EQ(declare.clauses[0].spec, "COUNTRY");
  EXPECT_EQ(declare.clauses[0].table, "P");
  EXPECT_EQ(declare.clauses[0].column, "LOCATION");
  EXPECT_EQ(declare.clauses[1].spec, "RANGE1000");
  EXPECT_EQ(declare.clauses[1].column, "SALARY");
}

TEST(ParserTest, ParsesPaperSelect) {
  auto ast = ParseStatement(
      "SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%' AND "
      "SALARY = '2000-3000'");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const auto& select = std::get<SelectAst>(*ast);
  EXPECT_TRUE(select.star);
  EXPECT_EQ(select.table, "PERSON");
  ASSERT_EQ(select.where.size(), 2u);
  EXPECT_EQ(select.where[0].op, ComparisonOp::kLike);
  EXPECT_EQ(select.where[0].value, Value::String("%FRANCE%"));
  EXPECT_EQ(select.where[1].op, ComparisonOp::kEq);
  EXPECT_EQ(select.where[1].value, Value::String("2000-3000"));
}

TEST(ParserTest, ParsesAggregatesAndGroupBy) {
  auto ast = ParseStatement(
      "SELECT location, COUNT(*), AVG(salary) FROM person "
      "WHERE salary BETWEEN 1000 AND 5000 GROUP BY location");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const auto& select = std::get<SelectAst>(*ast);
  ASSERT_EQ(select.items.size(), 3u);
  EXPECT_EQ(select.items[0].aggregate, AggregateKind::kNone);
  EXPECT_EQ(select.items[1].aggregate, AggregateKind::kCount);
  EXPECT_TRUE(select.items[1].column.empty());
  EXPECT_EQ(select.items[2].aggregate, AggregateKind::kAvg);
  EXPECT_EQ(select.group_by, "location");
  ASSERT_EQ(select.where.size(), 1u);
  EXPECT_EQ(select.where[0].op, ComparisonOp::kBetween);
  EXPECT_EQ(select.where[0].value2, Value::Int64(5000));
}

TEST(ParserTest, ParsesInsertAndDelete) {
  auto insert = ParseStatement(
      "INSERT INTO person VALUES ('alice', 42, '11 Rue Lepic', 2345)");
  ASSERT_TRUE(insert.ok());
  const auto& ins = std::get<InsertAst>(*insert);
  ASSERT_EQ(ins.values.size(), 4u);
  EXPECT_EQ(ins.values[1], Value::Int64(42));

  auto del = ParseStatement("DELETE FROM person WHERE name = 'alice'");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(std::get<DeleteAst>(*del).where.size(), 1u);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseStatement("FROBNICATE THE DATABASE").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t WHERE x ==== 3").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t extra garbage").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t WHERE s = 'unterminated").ok());
}

// --- end-to-end SQL -----------------------------------------------------------------

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_sql_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);

    auto schema = Schema::Make(
        {ColumnDef::Stable("name", ValueType::kString),
         ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp()),
         ColumnDef::Degradable(
             "salary", SalaryDomain(),
             *AttributeLcp::Make({{0, kMicrosPerDay}, {1, kMicrosPerMonth}}))});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db_->CreateTable("person", *schema).ok());
    session_ = std::make_unique<Session>(db_.get());
  }
  void TearDown() override {
    session_.reset();
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  QueryResult MustExecute(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? *result : QueryResult{};
  }

  void InsertPeople() {
    MustExecute("INSERT INTO person VALUES ('alice', '11 Rue Lepic', 2345)");
    MustExecute("INSERT INTO person VALUES ('bob', '3 Av Foch', 2999)");
    MustExecute("INSERT INTO person VALUES ('carol', '4 Rue Breteuil', 3500)");
    MustExecute("INSERT INTO person VALUES ('dave', '8 Cours Mirabeau', 9000)");
  }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(SqlTest, InsertAndSelectAtFullAccuracy) {
  InsertPeople();
  auto result = MustExecute("SELECT name, location, salary FROM person");
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.columns,
            (std::vector<std::string>{"name", "location", "salary"}));
  EXPECT_EQ(result.rows[0][1], Value::String("11 Rue Lepic"));
  EXPECT_EQ(result.rows[0][2], Value::Int64(2345));
}

TEST_F(SqlTest, PaperQueryVerbatim) {
  InsertPeople();
  // The exact statements from §II of the paper.
  MustExecute(
      "DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION, "
      "RANGE1000 FOR P.SALARY");
  auto result = MustExecute(
      "SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%' AND "
      "SALARY = '2000-3000'");
  // alice (2345) and bob (2999) fall in the 2000-3000 bucket; all are in
  // France.
  ASSERT_EQ(result.rows.size(), 2u);
  // Projected values are generalized to the declared accuracy (π_{*,k}).
  const int loc = 1, sal = 2;
  for (const auto& row : result.rows) {
    EXPECT_EQ(row[loc], Value::String("France"));
    EXPECT_EQ(row[sal], Value::Int64(2000));
  }
  // Display strings render buckets.
  EXPECT_EQ(result.display[0][sal], "[2000..2999]");
}

TEST_F(SqlTest, AccuracyLevelsChangeVisibilityAsDataDegrades) {
  InsertPeople();
  clock_->Advance(kMicrosPerHour);  // locations: address -> city
  ASSERT_TRUE(db_->RunDegradationOnce().ok());

  // Full-accuracy session (no purpose): locations are coarser than level 0,
  // so the strict semantics hide every row that references location.
  auto strict = MustExecute("SELECT name, location FROM person");
  EXPECT_EQ(strict.rows.size(), 0u);

  // Columns that are still accurate remain queryable at level 0.
  auto salaries = MustExecute("SELECT name, salary FROM person");
  EXPECT_EQ(salaries.rows.size(), 4u);

  // A CITY-level purpose sees all rows, generalized.
  MustExecute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY FOR person.location");
  auto city = MustExecute(
      "SELECT name, location FROM person WHERE location = 'Paris'");
  EXPECT_EQ(city.rows.size(), 2u);  // alice + bob
}

TEST_F(SqlTest, PredicateAtCoarserLevelSelectsSubtree) {
  InsertPeople();
  MustExecute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY FOR person.location");
  // Predicate names a REGION node while accuracy is CITY: subtree match.
  auto result = MustExecute(
      "SELECT name, location FROM person WHERE location = 'Provence'");
  ASSERT_EQ(result.rows.size(), 2u);  // carol (Marseille), dave (Aix)
  // Output stays at the demanded CITY level.
  EXPECT_EQ(result.rows[0][1], Value::String("Marseille"));
  EXPECT_EQ(result.rows[1][1], Value::String("Aix"));
}

TEST_F(SqlTest, IncludeCoarserRelaxedSemantics) {
  InsertPeople();
  clock_->Advance(kMicrosPerHour + kMicrosPerDay);  // locations at region
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  MustExecute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY FOR person.location");

  // Strict: region-level values cannot be computed at city accuracy.
  auto strict = MustExecute("SELECT name, location FROM person");
  EXPECT_EQ(strict.rows.size(), 0u);

  // Relaxed (§IV): coarser values are returned at their stored accuracy and
  // predicates are evaluated by containment.
  session_->read_options().include_coarser = true;
  auto relaxed = MustExecute("SELECT name, location FROM person");
  ASSERT_EQ(relaxed.rows.size(), 4u);
  auto france = MustExecute(
      "SELECT name FROM person WHERE location = 'France'");
  EXPECT_EQ(france.rows.size(), 4u);
  // A city-level predicate cannot be satisfied by region-coarse rows.
  auto paris = MustExecute("SELECT name FROM person WHERE location = 'Paris'");
  EXPECT_EQ(paris.rows.size(), 0u);
}

TEST_F(SqlTest, AggregatesAndGroupByAtCoarseLevel) {
  InsertPeople();
  MustExecute(
      "DECLARE PURPOSE STAT SET ACCURACY LEVEL REGION FOR person.location, "
      "RANGE1000 FOR person.salary");
  auto result = MustExecute(
      "SELECT location, COUNT(*), AVG(salary) FROM person GROUP BY location");
  ASSERT_EQ(result.rows.size(), 2u);  // Ile-de-France, Provence
  // Rows come back keyed by display string order.
  EXPECT_EQ(result.columns[1], "COUNT(*)");
  // Each region has 2 people.
  EXPECT_EQ(result.rows[0][1], Value::Int64(2));
  EXPECT_EQ(result.rows[1][1], Value::Int64(2));
  // AVG over bucket lower bounds at RANGE1000.
  // Ile-de-France: alice 2000, bob 2000 -> 2000. Provence: 3000, 9000 -> 6000.
  EXPECT_DOUBLE_EQ(result.rows[0][2].dbl(), 2000);
  EXPECT_DOUBLE_EQ(result.rows[1][2].dbl(), 6000);
}

TEST_F(SqlTest, CountMinMaxSum) {
  InsertPeople();
  auto result = MustExecute(
      "SELECT COUNT(*), MIN(salary), MAX(salary), SUM(salary) FROM person");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], Value::Int64(4));
  EXPECT_EQ(result.rows[0][1], Value::Int64(2345));
  EXPECT_EQ(result.rows[0][2], Value::Int64(9000));
  EXPECT_DOUBLE_EQ(result.rows[0][3].dbl(), 2345 + 2999 + 3500 + 9000);
}

TEST_F(SqlTest, DeleteWithViewSemantics) {
  InsertPeople();
  MustExecute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY FOR person.location");
  auto result = MustExecute("DELETE FROM person WHERE location = 'Paris'");
  EXPECT_EQ(result.affected_rows, 2u);
  session_->ClearPurpose();
  auto remaining = MustExecute("SELECT name FROM person");
  ASSERT_EQ(remaining.rows.size(), 2u);
  // Deleting everything works too.
  auto all = MustExecute("DELETE FROM person");
  EXPECT_EQ(all.affected_rows, 2u);
  EXPECT_EQ(db_->GetTable("person")->live_rows(), 0u);
}

TEST_F(SqlTest, BetweenUsesRangeIndex) {
  InsertPeople();
  MustExecute(
      "DECLARE PURPOSE PAY SET ACCURACY LEVEL RANGE1000 FOR person.salary");
  auto result = MustExecute(
      "SELECT name, salary FROM person WHERE salary BETWEEN 2000 AND 3999");
  // Buckets 2000 and 3000: alice, bob, carol.
  EXPECT_EQ(result.rows.size(), 3u);
  // Force a scan: same answer (index/scan parity).
  session_->set_use_indexes(false);
  auto scanned = MustExecute(
      "SELECT name, salary FROM person WHERE salary BETWEEN 2000 AND 3999");
  EXPECT_EQ(scanned.rows.size(), 3u);
}

TEST_F(SqlTest, StablePredicatesAndLike) {
  InsertPeople();
  auto eq = MustExecute("SELECT name FROM person WHERE name = 'alice'");
  EXPECT_EQ(eq.rows.size(), 1u);
  auto like = MustExecute("SELECT name FROM person WHERE name LIKE 'a%'");
  EXPECT_EQ(like.rows.size(), 1u);
  auto contains = MustExecute("SELECT name FROM person WHERE name LIKE '%o%'");
  EXPECT_EQ(contains.rows.size(), 2u);  // bob, carol
  auto ne = MustExecute("SELECT name FROM person WHERE name <> 'alice'");
  EXPECT_EQ(ne.rows.size(), 3u);
}

TEST_F(SqlTest, UsePurposeSwitchesAndErrors) {
  InsertPeople();
  MustExecute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY FOR person.location");
  MustExecute("DECLARE PURPOSE NATL SET ACCURACY LEVEL COUNTRY FOR person.location");
  MustExecute("USE PURPOSE GEO");
  EXPECT_EQ(session_->active_purpose(), "GEO");
  EXPECT_TRUE(session_->Execute("USE PURPOSE NOPE").status().IsNotFound());
  // Declaring on a stable column is rejected.
  EXPECT_FALSE(session_
                   ->Execute("DECLARE PURPOSE BAD SET ACCURACY LEVEL L1 "
                             "FOR person.name")
                   .ok());
  // Unknown level spec rejected.
  EXPECT_FALSE(session_
                   ->Execute("DECLARE PURPOSE BAD2 SET ACCURACY LEVEL GALAXY "
                             "FOR person.location")
                   .ok());
}

TEST_F(SqlTest, InsertRejectsCoarseAndWrongArity) {
  EXPECT_FALSE(
      session_->Execute("INSERT INTO person VALUES ('x', 'Paris', 100)").ok());
  EXPECT_FALSE(session_->Execute("INSERT INTO person VALUES ('x')").ok());
  EXPECT_FALSE(session_
                   ->Execute("INSERT INTO nosuch VALUES ('x', 'y', 1)")
                   .status()
                   .ok());
}

TEST_F(SqlTest, ResultToStringRendersTable) {
  InsertPeople();
  auto result = MustExecute("SELECT name, salary FROM person WHERE name = 'alice'");
  const std::string rendered = result.ToString();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("alice"), std::string::npos);
  EXPECT_NE(rendered.find("2345"), std::string::npos);
  EXPECT_NE(rendered.find("1 row(s)"), std::string::npos);
}

TEST_F(SqlTest, MixedPhaseQueryUnionsStates) {
  // Rows inserted at different times sit in different tuple states ST_j;
  // a coarse query unions every computable state (σ over ∪_{j≤k} ST_j).
  MustExecute("INSERT INTO person VALUES ('early', '11 Rue Lepic', 1000)");
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  MustExecute("INSERT INTO person VALUES ('late', '3 Av Foch', 2000)");

  MustExecute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY FOR person.location");
  auto result = MustExecute(
      "SELECT name, location FROM person WHERE location = 'Paris'");
  ASSERT_EQ(result.rows.size(), 2u);  // early (city phase) + late (accurate)
  for (const auto& row : result.rows) {
    EXPECT_EQ(row[1], Value::String("Paris"));
  }
}

}  // namespace
}  // namespace instantdb
