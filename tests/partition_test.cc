#include <map>
#include <set>

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "util/file.h"

namespace instantdb {
namespace {

Schema PingSchema() {
  return *Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp())});
}

/// Partitioned-table behavior, both layouts, with the degradation worker
/// pool enabled: routing, scans, recovery and scheduling must be
/// indistinguishable from the single-partition engine (modulo speed).
class PartitionTest : public ::testing::TestWithParam<DegradableLayout> {
 protected:
  static constexpr uint32_t kPartitions = 4;

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_partition_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
    ReopenDb(kPartitions);
  }
  void TearDown() override {
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  void ReopenDb(uint32_t partitions) {
    db_.reset();
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    options.layout = GetParam();
    options.partitions = partitions;
    options.degradation.worker_threads = 4;
    options.storage.segment_bytes = 512;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  RowId InsertPing(const std::string& user, const std::string& address) {
    auto row_id =
        db_->Insert("pings", {Value::String(user), Value::String(address)});
    EXPECT_TRUE(row_id.ok()) << row_id.status().ToString();
    return row_id.ok() ? *row_id : kInvalidRowId;
  }

  Value LocationOf(RowId row_id) {
    auto row = db_->GetTable("pings")->GetRow(row_id);
    EXPECT_TRUE(row.ok());
    if (!row.ok() || !row->has_value()) return Value::Null();
    return (*row)->values[1];
  }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
};

TEST_P(PartitionTest, RowsRouteDeterministicallyToAllPartitions) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  Table* table = db_->GetTable("pings");
  ASSERT_EQ(table->num_partitions(), kPartitions);

  std::vector<RowId> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back(InsertPing("u" + std::to_string(i), "11 Rue Lepic"));
  }
  EXPECT_EQ(table->live_rows(), 40u);
  // Sequential row ids round-robin over partitions, so every partition owns
  // exactly a quarter of the rows.
  for (uint32_t p = 0; p < kPartitions; ++p) {
    EXPECT_EQ(table->partition(p)->live_rows(), 10u) << "partition " << p;
  }
  for (RowId row : rows) {
    EXPECT_EQ(table->PartitionOf(row), row % kPartitions);
    auto view = table->GetRow(row);
    ASSERT_TRUE(view.ok());
    EXPECT_TRUE(view->has_value());
  }
}

TEST_P(PartitionTest, WorkerPoolDegradesEveryPartitionOnSchedule) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  std::vector<RowId> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(InsertPing("u" + std::to_string(i), "11 Rue Lepic"));
  }
  clock_->Advance(kMicrosPerHour);
  auto moved = db_->RunDegradationOnce();
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ(*moved, 100u);
  for (RowId row : rows) {
    EXPECT_EQ(LocationOf(row), Value::String("Paris"));
  }
  // Aggregated table stats reflect every partition's steps.
  const auto stats = db_->GetTable("pings")->stats();
  EXPECT_EQ(stats.values_degraded, 100u);
  EXPECT_GE(stats.degrade_steps, kPartitions);  // at least one per partition
  EXPECT_EQ(db_->GetTable("pings")->lateness_histogram().count(), 100u);
}

TEST_P(PartitionTest, EngineCountsPassesOnlyWhenWorkWasDue) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  ASSERT_TRUE(db_->RunDegradationOnce().ok());  // nothing due: not a pass
  EXPECT_EQ(db_->degradation()->stats().passes, 0u);
  InsertPing("a", "11 Rue Lepic");
  ASSERT_TRUE(db_->RunDegradationOnce().ok());  // still before the deadline
  EXPECT_EQ(db_->degradation()->stats().passes, 0u);
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  const auto stats = db_->degradation()->stats();
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.values_moved, 1u);
}

TEST_P(PartitionTest, ScanBatchResumesAcrossPartitionBoundaries) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  std::set<RowId> expected;
  for (int i = 0; i < 53; ++i) {
    expected.insert(InsertPing("u" + std::to_string(i), "3 Av Foch"));
  }

  Table* table = db_->GetTable("pings");
  std::multiset<RowId> seen;
  TableScanPos pos;
  bool done = false;
  int batches = 0;
  while (!done) {
    std::vector<RowView> batch;
    ASSERT_TRUE(table->ScanBatch(&pos, 7, &batch, &done).ok());
    for (const RowView& view : batch) seen.insert(view.row_id);
    ++batches;
    ASSERT_LE(batches, 100);  // termination guard
  }
  // Every row exactly once, across all partitions.
  EXPECT_EQ(seen.size(), expected.size());
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), seen.begin(),
                         seen.end()));
  EXPECT_GE(batches, static_cast<int>(kPartitions));
}

TEST_P(PartitionTest, RecoveryRoutesRedoToOwningPartition) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  std::vector<RowId> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back(InsertPing("u" + std::to_string(i), "11 Rue Lepic"));
  }
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  // Post-degradation inserts land in the WAL after the degrade steps.
  const RowId fresh = InsertPing("fresh", "4 Rue Breteuil");
  const RowId gone = InsertPing("gone", "3 Av Foch");
  ASSERT_TRUE(db_->Delete("pings", gone).ok());

  ReopenDb(kPartitions);
  Table* table = db_->GetTable("pings");
  ASSERT_EQ(table->num_partitions(), kPartitions);
  EXPECT_EQ(table->live_rows(), 21u);
  for (RowId row : rows) {
    EXPECT_EQ(LocationOf(row), Value::String("Paris"));
  }
  EXPECT_EQ(LocationOf(fresh), Value::String("4 Rue Breteuil"));
  EXPECT_TRUE(LocationOf(gone).is_null());
  // New row ids continue above every live row (ids of rows deleted before
  // the shutdown checkpoint may be reused; they collide with nothing).
  const RowId next = InsertPing("next", "8 Cours Mirabeau");
  EXPECT_GT(next, fresh);
  EXPECT_EQ(LocationOf(next), Value::String("8 Cours Mirabeau"));

  // Degradation continues on schedule after recovery.
  clock_->Advance(kMicrosPerDay);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  EXPECT_EQ(LocationOf(rows[0]), Value::String("Ile-de-France"));
  EXPECT_EQ(LocationOf(fresh), Value::String("Marseille"));
}

TEST_P(PartitionTest, IndexLookupsMergeAcrossPartitions) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  for (int i = 0; i < 12; ++i) {
    InsertPing("p" + std::to_string(i),
               i % 2 == 0 ? "11 Rue Lepic" : "4 Rue Breteuil");
  }
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());

  Table* table = db_->GetTable("pings");
  const int col = table->schema().FindColumn("location");
  std::vector<RowId> rids;
  ASSERT_TRUE(
      table->IndexLookupEqual(col, Value::String("Paris"), 1, &rids).ok());
  EXPECT_EQ(rids.size(), 6u);
  rids.clear();
  ASSERT_TRUE(
      table->IndexLookupEqual(col, Value::String("France"), 3, &rids).ok());
  EXPECT_EQ(rids.size(), 12u);
}

TEST_P(PartitionTest, PartitionCountPersistsAcrossMismatchedReopen) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  std::vector<RowId> rows;
  for (int i = 0; i < 16; ++i) {
    rows.push_back(InsertPing("u" + std::to_string(i), "12 Rue Royale"));
  }
  // Reopening with a different DbOptions::partitions must not re-route
  // recovered rows: the on-disk count wins.
  ReopenDb(/*partitions=*/2);
  Table* table = db_->GetTable("pings");
  EXPECT_EQ(table->num_partitions(), kPartitions);
  EXPECT_EQ(table->live_rows(), 16u);
  for (RowId row : rows) {
    EXPECT_EQ(LocationOf(row), Value::String("12 Rue Royale"));
  }
}

TEST_P(PartitionTest, LegacyUnpartitionedLayoutIsPinnedToOnePartition) {
  // Simulate a table from before partitioning existed: single-partition
  // layout with no PARTITIONS file. Reopening with partitions=4 must not
  // re-route (and thereby orphan) the stored rows.
  ReopenDb(/*partitions=*/1);
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  std::vector<RowId> rows;
  for (int i = 0; i < 8; ++i) {
    rows.push_back(InsertPing("u" + std::to_string(i), "11 Rue Lepic"));
  }
  db_.reset();  // clean close (checkpoints)
  ASSERT_TRUE(RemoveFile(dir_ + "/tables/t1/PARTITIONS").ok());

  ReopenDb(/*partitions=*/4);
  Table* table = db_->GetTable("pings");
  EXPECT_EQ(table->num_partitions(), 1u);
  EXPECT_EQ(table->live_rows(), 8u);
  for (RowId row : rows) {
    EXPECT_EQ(LocationOf(row), Value::String("11 Rue Lepic"));
  }
}

TEST_P(PartitionTest, DropTableRemovesEveryPartition) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  InsertPing("a", "11 Rue Lepic");
  ASSERT_TRUE(db_->DropTable("pings").ok());
  EXPECT_EQ(db_->GetTable("pings"), nullptr);
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  EXPECT_EQ(db_->GetTable("pings")->live_rows(), 0u);
  EXPECT_EQ(db_->GetTable("pings")->num_partitions(), kPartitions);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, PartitionTest,
                         ::testing::Values(DegradableLayout::kStateStores,
                                           DegradableLayout::kInPlace),
                         [](const auto& info) {
                           return info.param == DegradableLayout::kStateStores
                                      ? "StateStores"
                                      : "InPlace";
                         });

}  // namespace
}  // namespace instantdb
