#include <map>

#include "anonymize/mondrian.h"
#include "catalog/builtin_domains.h"
#include "common/random.h"
#include "gtest/gtest.h"

namespace instantdb {
namespace {

std::vector<MondrianRecord> RandomRecords(size_t n, uint64_t seed) {
  auto location = SyntheticLocationDomain(3, 3, 3, 3);
  const auto* tree = static_cast<const GeneralizationTree*>(location.get());
  Random rng(seed);
  std::vector<MondrianRecord> records(n);
  for (auto& record : records) {
    auto label = tree->LeafLabel(
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(tree->leaf_count()))));
    record.quasi_identifiers = {
        Value::String(*label),
        Value::Int64(static_cast<int64_t>(rng.Uniform(100000)))};
  }
  return records;
}

class MondrianTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MondrianTest, EveryClassHasAtLeastKRecords) {
  const size_t k = GetParam();
  Mondrian mondrian({SyntheticLocationDomain(3, 3, 3, 3), SalaryDomain()}, k);
  const auto records = RandomRecords(200, 7);
  auto result = mondrian.Anonymize(records);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->records.size(), records.size());
  // k-anonymity invariant: identical generalized QI vectors appear >= k
  // times.
  std::map<std::string, size_t> class_sizes;
  for (const auto& record : result->records) {
    std::string key;
    for (const Value& v : record.values) key += v.ToString() + "|";
    ++class_sizes[key];
    EXPECT_GE(record.class_size, k);
  }
  for (const auto& [key, size] : class_sizes) {
    EXPECT_GE(size, k) << key;
  }
  EXPECT_GE(result->num_classes, 1u);
  if (k <= 10) EXPECT_GT(result->num_classes, 1u);
}

TEST_P(MondrianTest, GeneralizedValuesCoverOriginals) {
  const size_t k = GetParam();
  auto location = SyntheticLocationDomain(3, 3, 3, 3);
  Mondrian mondrian({location, SalaryDomain()}, k);
  const auto records = RandomRecords(150, 13);
  auto result = mondrian.Anonymize(records);
  ASSERT_TRUE(result.ok());
  auto salary = SalaryDomain();
  const std::vector<std::shared_ptr<const DomainHierarchy>> domains = {
      location, salary};
  for (size_t i = 0; i < records.size(); ++i) {
    for (size_t d = 0; d < domains.size(); ++d) {
      EXPECT_TRUE(domains[d]->Covers(result->records[i].values[d],
                                     result->records[i].levels[d],
                                     records[i].quasi_identifiers[d], 0))
          << "record " << i << " dim " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, MondrianTest,
                         ::testing::Values(2, 5, 10, 50),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(MondrianEdgeTest, RejectsTooFewRecords) {
  Mondrian mondrian({SalaryDomain()}, 10);
  std::vector<MondrianRecord> records(5);
  for (auto& r : records) r.quasi_identifiers = {Value::Int64(1)};
  EXPECT_FALSE(mondrian.Anonymize(records).ok());
}

TEST(MondrianEdgeTest, IdenticalRecordsFormOneClass) {
  Mondrian mondrian({SalaryDomain()}, 3);
  std::vector<MondrianRecord> records(12);
  for (auto& r : records) r.quasi_identifiers = {Value::Int64(500)};
  auto result = mondrian.Anonymize(records);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_classes, 1u);
  // No generalization needed: all values identical.
  EXPECT_EQ(result->records[0].levels[0], 0);
  EXPECT_EQ(result->records[0].values[0], Value::Int64(500));
}

TEST(MondrianEdgeTest, InformationLossGrowsWithK) {
  auto location = SyntheticLocationDomain(3, 3, 3, 3);
  const auto records = RandomRecords(300, 21);
  double prev_loss = -1;
  for (size_t k : {2, 10, 75}) {
    Mondrian mondrian({location, SalaryDomain()}, k);
    auto result = mondrian.Anonymize(records);
    ASSERT_TRUE(result.ok());
    const double loss = result->avg_level[0] + result->avg_level[1];
    EXPECT_GE(loss, prev_loss) << "k=" << k;
    prev_loss = loss;
  }
}

}  // namespace
}  // namespace instantdb
