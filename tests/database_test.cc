#include <set>

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "util/file.h"

namespace instantdb {
namespace {

Schema PingSchema() {
  // The paper's motivating scenario: cell phones report user locations.
  return *Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Stable("ping_id", ValueType::kInt64),
       ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp())});
}

class DatabaseTest : public ::testing::TestWithParam<DegradableLayout> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_db_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
    ReopenDb();
  }
  void TearDown() override {
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  void ReopenDb() {
    db_.reset();
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    options.layout = GetParam();
    options.storage.segment_bytes = 512;
    options.wal.segment_bytes = 4096;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  RowId InsertPing(const std::string& user, int64_t ping,
                   const std::string& address) {
    auto row_id = db_->Insert(
        "pings", {Value::String(user), Value::Int64(ping),
                  Value::String(address)});
    EXPECT_TRUE(row_id.ok()) << row_id.status().ToString();
    return row_id.ok() ? *row_id : kInvalidRowId;
  }

  /// location value of one row (NULL when removed / row gone).
  Value LocationOf(RowId row_id) {
    auto row = db_->GetTable("pings")->GetRow(row_id);
    EXPECT_TRUE(row.ok());
    if (!row.ok() || !row->has_value()) return Value::Null();
    const int col = db_->GetTable("pings")->schema().FindColumn("location");
    return (*row)->values[col];
  }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
};

TEST_P(DatabaseTest, Fig2LifecycleEndToEnd) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  const RowId row = InsertPing("alice", 1, "11 Rue Lepic");

  // t = 0: accurate address.
  EXPECT_EQ(LocationOf(row), Value::String("11 Rue Lepic"));

  // t = 1h: degraded to city.
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  EXPECT_EQ(LocationOf(row), Value::String("Paris"));

  // t = 1h + 1d: degraded to region.
  clock_->Advance(kMicrosPerDay);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  EXPECT_EQ(LocationOf(row), Value::String("Ile-de-France"));

  // t = +1 month: country.
  clock_->Advance(kMicrosPerMonth);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  EXPECT_EQ(LocationOf(row), Value::String("France"));

  // t = +1 more month: the tuple disappears entirely.
  clock_->Advance(kMicrosPerMonth);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  auto gone = db_->GetTable("pings")->GetRow(row);
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(gone->has_value());
  EXPECT_EQ(db_->GetTable("pings")->live_rows(), 0u);
  EXPECT_EQ(db_->GetTable("pings")->stats().tuples_expired, 1u);
}

TEST_P(DatabaseTest, DegradationIsBatchedAcrossManyRows) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  const std::vector<std::string> addresses = {
      "11 Rue Lepic", "3 Av Foch", "12 Rue Royale", "4 Rue Breteuil",
      "8 Cours Mirabeau"};
  std::vector<RowId> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(InsertPing("u" + std::to_string(i), i,
                              addresses[i % addresses.size()]));
    clock_->Advance(kMicrosPerMinute);  // staggered arrivals
  }
  // 2 hours in: rows 0..60 (inserted at minutes 0..60) crossed their
  // 1-hour phase-0 deadline; row 61's deadline is at 2h01 and has not.
  clock_->AdvanceTo(2 * kMicrosPerHour);
  auto moved = db_->RunDegradationOnce();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, 61u);
  EXPECT_EQ(LocationOf(rows[0]), Value::String("Paris"));       // 11 Rue Lepic
  EXPECT_EQ(LocationOf(rows[59]), Value::String("Aix"));        // 8 Cours Mirabeau
  EXPECT_EQ(LocationOf(rows[60]), Value::String("Paris"));      // boundary row
  EXPECT_EQ(LocationOf(rows[61]), Value::String("3 Av Foch"));  // still accurate
}

TEST_P(DatabaseTest, UserDeleteRemovesEverythingImmediately) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  const RowId keep = InsertPing("keep", 1, "11 Rue Lepic");
  const RowId gone = InsertPing("gone", 2, "3 Av Foch");
  ASSERT_TRUE(db_->Delete("pings", gone).ok());
  EXPECT_EQ(db_->GetTable("pings")->live_rows(), 1u);
  EXPECT_TRUE(LocationOf(gone).is_null());
  EXPECT_EQ(LocationOf(keep), Value::String("11 Rue Lepic"));
  EXPECT_TRUE(db_->Delete("pings", gone).IsNotFound());
  // Degradation after the delete does not resurrect the row.
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  EXPECT_TRUE(LocationOf(gone).is_null());
}

TEST_P(DatabaseTest, RecoveryReplaysInsertsAndDegradations) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  const RowId r1 = InsertPing("alice", 1, "11 Rue Lepic");
  const RowId r2 = InsertPing("bob", 2, "4 Rue Breteuil");
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  const RowId r3 = InsertPing("carol", 3, "12 Rue Royale");

  // Crash without checkpoint: drop the Database object the hard way (the
  // destructor checkpoints, so simulate by reopening from a copy...). We
  // instead rely on WAL replay: reopen after a clean-ish close still must
  // produce identical state.
  ReopenDb();
  EXPECT_EQ(LocationOf(r1), Value::String("Paris"));
  EXPECT_EQ(LocationOf(r2), Value::String("Marseille"));
  EXPECT_EQ(LocationOf(r3), Value::String("12 Rue Royale"));
  EXPECT_EQ(db_->GetTable("pings")->live_rows(), 3u);

  // Degradation continues on schedule after recovery: a day later r1 has
  // crossed the city→region boundary and r3 (inserted at 1h, now 1 day old)
  // has crossed its own address→city boundary.
  clock_->Advance(kMicrosPerDay);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  EXPECT_EQ(LocationOf(r1), Value::String("Ile-de-France"));
  EXPECT_EQ(LocationOf(r3), Value::String("Versailles"));
}

TEST_P(DatabaseTest, IndexesSurviveRecoveryViaRebuild) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  InsertPing("alice", 1, "11 Rue Lepic");
  InsertPing("bob", 2, "3 Av Foch");
  InsertPing("carol", 3, "4 Rue Breteuil");
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  ReopenDb();

  Table* table = db_->GetTable("pings");
  const int col = table->schema().FindColumn("location");
  std::vector<RowId> rids;
  ASSERT_TRUE(
      table->IndexLookupEqual(col, Value::String("Paris"), 1, &rids).ok());
  EXPECT_EQ(rids.size(), 2u);
  rids.clear();
  ASSERT_TRUE(
      table->IndexLookupEqual(col, Value::String("France"), 3, &rids).ok());
  EXPECT_EQ(rids.size(), 3u);
}

TEST_P(DatabaseTest, RetentionBaselineIsAllOrNothing) {
  // Limited retention = single-phase LCP. The value stays fully accurate
  // until the TTL, then the tuple vanishes — no intermediate states.
  auto schema = *Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(),
                             AttributeLcp::Retention(kMicrosPerDay))});
  ASSERT_TRUE(db_->CreateTable("retained", schema).ok());
  auto row = db_->Insert("retained", {Value::String("alice"),
                                      Value::String("11 Rue Lepic")});
  ASSERT_TRUE(row.ok());
  clock_->Advance(kMicrosPerDay - 1);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  auto view = db_->GetTable("retained")->GetRow(*row);
  ASSERT_TRUE(view->has_value());
  EXPECT_EQ((*view)->values[1], Value::String("11 Rue Lepic"));
  clock_->Advance(1);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  view = db_->GetTable("retained")->GetRow(*row);
  EXPECT_FALSE(view->has_value());
}

TEST_P(DatabaseTest, ForensicScanFindsNoDegradedPlaintext) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  const std::string secret = "11 Rue Lepic";
  for (int i = 0; i < 20; ++i) InsertPing("alice", i, secret);
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  // Checkpoint: flush heap pages and retire WAL segments.
  ASSERT_TRUE(db_->Checkpoint().ok());
  db_.reset();  // close cleanly

  // Scan every byte under the database directory for the accurate address.
  // The CATALOG is excluded: the generalization tree is public domain
  // metadata, so its labels appearing there associate no tuple with the
  // address.
  std::function<size_t(const std::string&)> scan =
      [&](const std::string& dir) -> size_t {
    size_t hits = 0;
    auto names = ListDir(dir);
    if (!names.ok()) return 0;
    for (const auto& name : *names) {
      if (name == "CATALOG") continue;
      const std::string path = dir + "/" + name;
      auto contents = ReadFileToString(path);
      if (contents.ok()) {
        for (size_t pos = contents->find(secret); pos != std::string::npos;
             pos = contents->find(secret, pos + 1)) {
          ++hits;
        }
      } else {
        hits += scan(path);
      }
    }
    return hits;
  };
  EXPECT_EQ(scan(dir_), 0u);
  ReopenDb();  // and the database still opens fine
  EXPECT_EQ(db_->GetTable("pings")->live_rows(), 20u);
}

TEST_P(DatabaseTest, MultipleDegradableColumnsIndependentTimelines) {
  auto schema = *Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp()),
       ColumnDef::Degradable(
           "salary", SalaryDomain(),
           *AttributeLcp::Make({{0, kMicrosPerDay}, {1, kMicrosPerMonth}}))});
  ASSERT_TRUE(db_->CreateTable("person", schema).ok());
  auto row = db_->Insert("person", {Value::String("alice"),
                                    Value::String("11 Rue Lepic"),
                                    Value::Int64(2345)});
  ASSERT_TRUE(row.ok());

  // 1h: location degrades to city; salary still exact.
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  auto view = *db_->GetTable("person")->GetRow(*row);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->values[1], Value::String("Paris"));
  EXPECT_EQ(view->values[2], Value::Int64(2345));

  // 1 day: salary rounds to the paper's RANGE1000 bucket.
  clock_->Advance(kMicrosPerDay);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  view = *db_->GetTable("person")->GetRow(*row);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->values[2], Value::Int64(2000));
}

TEST_P(DatabaseTest, DropTableErasesStorage) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  InsertPing("alice", 1, "11 Rue Lepic");
  ASSERT_TRUE(db_->DropTable("pings").ok());
  EXPECT_EQ(db_->GetTable("pings"), nullptr);
  EXPECT_TRUE(db_->DropTable("pings").IsNotFound());
  // Recreating with the same name works and starts empty.
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  EXPECT_EQ(db_->GetTable("pings")->live_rows(), 0u);
}

TEST_P(DatabaseTest, UpdateStableKeepsDegradationSchedule) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  const RowId row = InsertPing("alice", 1, "11 Rue Lepic");
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->GetTable("pings")
                  ->UpdateStable(txn.get(), row,
                                 {Value::String("alice-renamed"),
                                  Value::Int64(99)})
                  .ok());
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
  auto view = *db_->GetTable("pings")->GetRow(row);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->values[0], Value::String("alice-renamed"));
  EXPECT_EQ(view->values[2], Value::String("11 Rue Lepic"));
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  EXPECT_EQ(LocationOf(row), Value::String("Paris"));
}

TEST_P(DatabaseTest, AbortedTransactionLeavesNoTrace) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  auto txn = db_->Begin();
  auto row = db_->GetTable("pings")->Insert(
      txn.get(),
      {Value::String("ghost"), Value::Int64(1), Value::String("3 Av Foch")});
  ASSERT_TRUE(row.ok());
  db_->Abort(txn.get());
  EXPECT_EQ(db_->GetTable("pings")->live_rows(), 0u);
  auto view = db_->GetTable("pings")->GetRow(*row);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->has_value());
}

TEST_P(DatabaseTest, ScanRowsSeesConsistentPhases) {
  ASSERT_TRUE(db_->CreateTable("pings", PingSchema()).ok());
  InsertPing("a", 1, "11 Rue Lepic");
  clock_->Advance(kMicrosPerHour);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  InsertPing("b", 2, "3 Av Foch");

  std::map<std::string, int> phase_by_user;
  ASSERT_TRUE(db_->GetTable("pings")
                  ->ScanRows([&](const RowView& view) {
                    phase_by_user[view.values[0].str()] = view.phases[0];
                    return true;
                  })
                  .ok());
  EXPECT_EQ(phase_by_user["a"], 1);  // city phase
  EXPECT_EQ(phase_by_user["b"], 0);  // accurate
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, DatabaseTest,
                         ::testing::Values(DegradableLayout::kStateStores,
                                           DegradableLayout::kInPlace),
                         [](const auto& info) {
                           return info.param == DegradableLayout::kStateStores
                                      ? "StateStores"
                                      : "InPlace";
                         });

}  // namespace
}  // namespace instantdb
