#include <map>
#include <set>

#include "catalog/builtin_domains.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/key_manager.h"
#include "storage/record.h"
#include "storage/state_store.h"
#include "common/strings.h"
#include "util/file.h"

namespace instantdb {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_storage_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(CreateDirs(dir_).ok());
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  std::string dir_;
};

// --- DiskManager ---------------------------------------------------------------

TEST_F(StorageTest, DiskManagerAllocateReadWrite) {
  auto dm = DiskManager::Open(dir_ + "/heap.db", 4096);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ((*dm)->num_pages(), 0u);
  auto p0 = (*dm)->AllocatePage();
  auto p1 = (*dm)->AllocatePage();
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);

  std::string page(4096, 'x');
  ASSERT_TRUE((*dm)->WritePage(*p1, page.data()).ok());
  std::string read(4096, 0);
  ASSERT_TRUE((*dm)->ReadPage(*p1, read.data()).ok());
  EXPECT_EQ(read, page);
  // Fresh pages read back zeroed.
  ASSERT_TRUE((*dm)->ReadPage(*p0, read.data()).ok());
  EXPECT_EQ(read, std::string(4096, '\0'));
  EXPECT_FALSE((*dm)->ReadPage(7, read.data()).ok());
  EXPECT_FALSE((*dm)->WritePage(7, page.data()).ok());
}

TEST_F(StorageTest, DiskManagerReopenKeepsPages) {
  const std::string path = dir_ + "/heap.db";
  {
    auto dm = DiskManager::Open(path, 4096);
    ASSERT_TRUE(dm.ok());
    ASSERT_TRUE((*dm)->AllocatePage().ok());
    std::string page(4096, 'z');
    ASSERT_TRUE((*dm)->WritePage(0, page.data()).ok());
    ASSERT_TRUE((*dm)->Sync().ok());
  }
  auto dm = DiskManager::Open(path, 4096);
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ((*dm)->num_pages(), 1u);
  std::string read(4096, 0);
  ASSERT_TRUE((*dm)->ReadPage(0, read.data()).ok());
  EXPECT_EQ(read[100], 'z');
}

// --- BufferPool ------------------------------------------------------------------

TEST_F(StorageTest, BufferPoolCachesAndEvicts) {
  auto dm = DiskManager::Open(dir_ + "/heap.db", 4096);
  ASSERT_TRUE(dm.ok());
  BufferPool pool(dm->get(), 2);

  PageId ids[3];
  for (auto& id : ids) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard->id();
    guard->data()[0] = static_cast<char>('a' + id);
    guard->MarkDirty();
  }
  // Pool capacity 2: fetching all three again forces eviction + re-read.
  for (PageId id : ids) {
    auto guard = pool.FetchPage(id);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], static_cast<char>('a' + id));
  }
  const auto stats = pool.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.dirty_writebacks, 0u);
}

TEST_F(StorageTest, BufferPoolPinPreventsEviction) {
  auto dm = DiskManager::Open(dir_ + "/heap.db", 4096);
  ASSERT_TRUE(dm.ok());
  BufferPool pool(dm->get(), 2);
  auto g0 = pool.NewPage();
  auto g1 = pool.NewPage();
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  // Both frames pinned: a third page cannot be brought in.
  auto g2 = pool.NewPage();
  EXPECT_TRUE(g2.status().IsBusy());
  g0->Release();
  auto g3 = pool.NewPage();
  EXPECT_TRUE(g3.ok());
}

TEST_F(StorageTest, BufferPoolFlushAllPersists) {
  const std::string path = dir_ + "/heap.db";
  auto dm = DiskManager::Open(path, 4096);
  ASSERT_TRUE(dm.ok());
  {
    BufferPool pool(dm->get(), 4);
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    std::memcpy(guard->data(), "persist-me", 10);
    guard->MarkDirty();
    guard->Release();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  std::string read(4096, 0);
  ASSERT_TRUE((*dm)->ReadPage(0, read.data()).ok());
  EXPECT_EQ(read.substr(0, 10), "persist-me");
}

// --- HeapFile --------------------------------------------------------------------

class HeapFileTest : public StorageTest {
 protected:
  void SetUp() override {
    StorageTest::SetUp();
    auto dm = DiskManager::Open(dir_ + "/heap.db", 4096);
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(*dm);
    pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
    heap_ = std::make_unique<HeapFile>(pool_.get());
    ASSERT_TRUE(heap_->Open().ok());
  }

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapFile> heap_;
};

TEST_F(HeapFileTest, InsertGetDelete) {
  auto rid = heap_->Insert("hello record");
  ASSERT_TRUE(rid.ok());
  auto got = heap_->Get(*rid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello record");
  EXPECT_EQ(heap_->live_records(), 1u);
  ASSERT_TRUE(heap_->Delete(*rid).ok());
  EXPECT_TRUE(heap_->Get(*rid).status().IsNotFound());
  EXPECT_TRUE(heap_->Delete(*rid).IsNotFound());
  EXPECT_EQ(heap_->live_records(), 0u);
}

TEST_F(HeapFileTest, DeleteScrubsBytes) {
  // The record's bytes must be zeroed in the page image (paper §III:
  // deleted data must be physically cleaned in the data space).
  const std::string payload = "TOP-SECRET-ADDRESS";
  auto rid = heap_->Insert(payload);
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(heap_->Delete(*rid).ok());
  ASSERT_TRUE(pool_->FlushAll().ok());
  auto raw = ReadFileToString(dir_ + "/heap.db");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->find(payload), std::string::npos);
}

TEST_F(HeapFileTest, ManyInsertsSpanPages) {
  std::vector<Rid> rids;
  for (int i = 0; i < 2000; ++i) {
    auto rid = heap_->Insert(StringPrintf("record-%04d-xxxxxxxxxxxxxxxx", i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_GT(disk_->num_pages(), 1u);
  for (int i = 0; i < 2000; ++i) {
    auto got = heap_->Get(rids[i]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->substr(0, 11), StringPrintf("record-%04d", i));
  }
  EXPECT_EQ(heap_->live_records(), 2000u);
}

TEST_F(HeapFileTest, SlotReuseAfterDelete) {
  auto r1 = heap_->Insert("aaaa");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(heap_->Delete(*r1).ok());
  auto r2 = heap_->Insert("bbbb");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->page, r2->page);
  EXPECT_EQ(r1->slot, r2->slot);  // slot recycled
}

TEST_F(HeapFileTest, UpdateInPlaceAndRelocating) {
  auto rid = heap_->Insert("0123456789");
  ASSERT_TRUE(rid.ok());
  Rid out;
  // Shrink stays put and scrubs the tail.
  ASSERT_TRUE(heap_->Update(*rid, "abc", &out).ok());
  EXPECT_EQ(out, *rid);
  EXPECT_EQ(*heap_->Get(out), "abc");
  // Grow may relocate but keeps the data intact.
  const std::string big(1000, 'G');
  ASSERT_TRUE(heap_->Update(out, big, &out).ok());
  EXPECT_EQ(*heap_->Get(out), big);
  EXPECT_EQ(heap_->live_records(), 1u);
}

TEST_F(HeapFileTest, ScanVisitsAllLiveRecords) {
  std::set<std::string> expect;
  for (int i = 0; i < 50; ++i) {
    const std::string payload = StringPrintf("row-%02d", i);
    ASSERT_TRUE(heap_->Insert(payload).ok());
    expect.insert(payload);
  }
  std::set<std::string> seen;
  ASSERT_TRUE(heap_->Scan([&](Rid, Slice record) {
                seen.insert(std::string(record));
                return true;
              }).ok());
  EXPECT_EQ(seen, expect);
  // Early stop.
  int count = 0;
  ASSERT_TRUE(heap_->Scan([&](Rid, Slice) { return ++count < 5; }).ok());
  EXPECT_EQ(count, 5);
}

TEST_F(HeapFileTest, OpenRebuildsFreeSpaceMap) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(heap_->Insert(StringPrintf("record-%03d-yyyyyyyy", i)).ok());
  }
  ASSERT_TRUE(pool_->FlushAll().ok());
  // Re-open over the same file.
  HeapFile reopened(pool_.get());
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.live_records(), 300u);
  auto rid = reopened.Insert("after-reopen");
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(*reopened.Get(*rid), "after-reopen");
}

TEST_F(HeapFileTest, RejectsOversizedRecord) {
  EXPECT_FALSE(heap_->Insert(std::string(5000, 'x')).ok());
}

// --- record codec ------------------------------------------------------------------

TEST(RecordCodecTest, StateStoresLayoutRoundTrip) {
  auto schema = *Schema::Make(
      {ColumnDef::Stable("id", ValueType::kInt64),
       ColumnDef::Stable("name", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp())});
  HeapTuple tuple;
  tuple.row_id = 42;
  tuple.insert_time = kMicrosPerHour;
  tuple.stable = {Value::Int64(7), Value::String("alice")};
  std::string buf;
  EncodeHeapTuple(schema, DegradableLayout::kStateStores, tuple, &buf);
  HeapTuple out;
  ASSERT_TRUE(
      DecodeHeapTuple(schema, DegradableLayout::kStateStores, buf, &out).ok());
  EXPECT_EQ(out.row_id, 42u);
  EXPECT_EQ(out.insert_time, kMicrosPerHour);
  ASSERT_EQ(out.stable.size(), 2u);
  EXPECT_EQ(out.stable[1], Value::String("alice"));
  EXPECT_TRUE(out.degradable.empty());
}

TEST(RecordCodecTest, InPlaceLayoutCarriesDegradables) {
  auto schema = *Schema::Make(
      {ColumnDef::Stable("id", ValueType::kInt64),
       ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp()),
       ColumnDef::Degradable("salary", SalaryDomain(),
                             AttributeLcp::Retention(kMicrosPerDay))});
  HeapTuple tuple;
  tuple.row_id = 1;
  tuple.insert_time = 5;
  tuple.stable = {Value::Int64(9)};
  tuple.degradable = {{1, Value::String("Paris")}, {0, Value::Int64(2345)}};
  std::string buf;
  EncodeHeapTuple(schema, DegradableLayout::kInPlace, tuple, &buf);
  HeapTuple out;
  ASSERT_TRUE(
      DecodeHeapTuple(schema, DegradableLayout::kInPlace, buf, &out).ok());
  ASSERT_EQ(out.degradable.size(), 2u);
  EXPECT_EQ(out.degradable[0].phase, 1);
  EXPECT_EQ(out.degradable[0].value, Value::String("Paris"));
  EXPECT_EQ(out.degradable[1].value, Value::Int64(2345));
  // Decoding with the wrong layout fails loudly (trailing bytes).
  EXPECT_FALSE(
      DecodeHeapTuple(schema, DegradableLayout::kStateStores, buf, &out).ok());
}

// --- KeyManager ------------------------------------------------------------------

TEST_F(StorageTest, KeyManagerMintGetDestroy) {
  KeyManager keys(dir_ + "/keystore");
  ASSERT_TRUE(keys.Open().ok());
  auto k1 = keys.GetOrCreate("t1.c0.p0.s0");
  ASSERT_TRUE(k1.ok());
  auto k1_again = keys.GetOrCreate("t1.c0.p0.s0");
  ASSERT_TRUE(k1_again.ok());
  EXPECT_EQ(*k1, *k1_again);
  auto k2 = keys.GetOrCreate("t1.c0.p0.s1");
  ASSERT_TRUE(k2.ok());
  EXPECT_NE(*k1, *k2);

  ASSERT_TRUE(keys.Destroy("t1.c0.p0.s0").ok());
  EXPECT_TRUE(keys.Get("t1.c0.p0.s0").status().IsNotFound());
  EXPECT_TRUE(keys.IsDestroyed("t1.c0.p0.s0"));
  EXPECT_EQ(keys.live_keys(), 1u);
  EXPECT_EQ(keys.keys_destroyed(), 1u);
}

TEST_F(StorageTest, KeyManagerPersistsAcrossReopen) {
  const std::string path = dir_ + "/keystore";
  ChaCha20::Key original;
  {
    KeyManager keys(path);
    ASSERT_TRUE(keys.Open().ok());
    original = *keys.GetOrCreate("a");
    ASSERT_TRUE(keys.GetOrCreate("b").ok());
    ASSERT_TRUE(keys.Destroy("b").ok());
  }
  KeyManager keys(path);
  ASSERT_TRUE(keys.Open().ok());
  auto a = keys.Get("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, original);
  EXPECT_TRUE(keys.Get("b").status().IsNotFound());
  EXPECT_TRUE(keys.IsDestroyed("b"));
}

TEST_F(StorageTest, KeyManagerDestroyRemovesBytesFromDisk) {
  const std::string path = dir_ + "/keystore";
  KeyManager keys(path);
  ASSERT_TRUE(keys.Open().ok());
  auto key = keys.GetOrCreate("victim");
  ASSERT_TRUE(key.ok());
  const std::string key_bytes(reinterpret_cast<const char*>(key->data()),
                              key->size());
  {
    auto contents = ReadFileToString(path);
    ASSERT_TRUE(contents.ok());
    EXPECT_NE(contents->find(key_bytes), std::string::npos);
  }
  ASSERT_TRUE(keys.Destroy("victim").ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->find(key_bytes), std::string::npos);
}

// --- StateStore -------------------------------------------------------------------

class StateStoreTest : public StorageTest,
                       public ::testing::WithParamInterface<EraseMode> {
 protected:
  StorageOptions MakeOptions() {
    StorageOptions options;
    options.segment_bytes = 256;  // tiny segments to exercise rollover
    options.erase_mode = GetParam();
    return options;
  }

  std::unique_ptr<StateStore> MakeStore(int phase = 0) {
    keys_ = std::make_unique<KeyManager>(dir_ + "/keystore");
    if (!keys_->Open().ok()) return nullptr;
    return std::make_unique<StateStore>(dir_ + "/store", TableId{1}, 0, phase,
                                        MakeOptions(), keys_.get());
  }

  StoreEntry Entry(RowId id, const std::string& value) {
    return StoreEntry{id, static_cast<Micros>(id) * kMicrosPerMinute,
                      Value::String(value)};
  }

  /// What a degradation step's redo does: pop each collected id (here, the
  /// FIFO prefix 1..up_to); ids not in the store are no-ops.
  void PopIdsThrough(StateStore* store, RowId up_to) {
    for (RowId id = 1; id <= up_to; ++id) {
      ASSERT_TRUE(store->PopById(id).ok());
    }
  }

  std::unique_ptr<KeyManager> keys_;
};

TEST_P(StateStoreTest, AppendPopFifoOrder) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  for (RowId id = 1; id <= 100; ++id) {
    ASSERT_TRUE(store->Append(Entry(id, StringPrintf("v%llu",
                                     static_cast<unsigned long long>(id))))
                    .ok());
  }
  EXPECT_EQ(store->size(), 100u);
  for (RowId id = 1; id <= 100; ++id) {
    StoreEntry out;
    ASSERT_TRUE(store->PopHead(&out).ok());
    EXPECT_EQ(out.row_id, id);
  }
  EXPECT_TRUE(store->empty());
  StoreEntry out;
  EXPECT_TRUE(store->PopHead(&out).IsNotFound());
  // With 256-byte segments, 100 entries spanned several segments, and all
  // must have been erased.
  EXPECT_GT(store->stats().segments_created, 2u);
  EXPECT_EQ(store->stats().segments_erased, store->stats().segments_created);
}

TEST_P(StateStoreTest, FindAndForEach) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  for (RowId id = 10; id <= 100; id += 10) {
    ASSERT_TRUE(store->Append(Entry(id, "x")).ok());
  }
  ASSERT_NE(store->Find(50), nullptr);
  EXPECT_EQ(store->Find(50)->row_id, 50u);
  EXPECT_EQ(store->Find(55), nullptr);
  EXPECT_EQ(store->Find(5), nullptr);
  EXPECT_EQ(store->Find(500), nullptr);
  size_t n = 0;
  store->ForEach([&](const StoreEntry&) { return ++n < 4; });
  EXPECT_EQ(n, 4u);
}

TEST_P(StateStoreTest, AppendIsIdempotentOnRowId) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  ASSERT_TRUE(store->Append(Entry(5, "a")).ok());
  ASSERT_TRUE(store->Append(Entry(5, "a-again")).ok());  // duplicate: ignored
  EXPECT_EQ(store->size(), 1u);
  // A transaction committing slightly out of row-id order still lands in
  // its FIFO position (concurrent WriteBatch ingest commits out of order).
  ASSERT_TRUE(store->Append(Entry(3, "late")).ok());
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->Head().value, Value::String("late"));
  EXPECT_EQ(store->Head().row_id, 3u);
}

TEST_P(StateStoreTest, PopByIdPopsExactlyThatEntry) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  for (RowId id : {1u, 2u, 3u}) {
    ASSERT_TRUE(store->Append(Entry(id, "v")).ok());
  }
  ASSERT_TRUE(store->PopById(2).ok());
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->Find(2), nullptr);
  EXPECT_NE(store->Find(1), nullptr);
  EXPECT_NE(store->Find(3), nullptr);
  ASSERT_TRUE(store->PopById(2).ok());   // idempotent
  ASSERT_TRUE(store->PopById(99).ok());  // never appended: no-op
  EXPECT_EQ(store->size(), 2u);
}

TEST_P(StateStoreTest, ReplayGuardAndSurvivorsAcrossReopen) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  for (RowId id : {4u, 5u, 6u}) {
    ASSERT_TRUE(store->Append(Entry(id, "v" + std::to_string(id))).ok());
  }
  ASSERT_TRUE(store->PopById(4).ok());
  ASSERT_TRUE(store->PopById(5).ok());  // watermark now 5
  // Late out-of-order commit below the live watermark: accepted (it was
  // never popped) — this is a first-time append, not redo.
  ASSERT_TRUE(store->Append(Entry(2, "late")).ok());
  EXPECT_EQ(store->size(), 2u);
  ASSERT_TRUE(store->Checkpoint().ok());

  // Crash + reopen: the survivor (2) below the watermark stays live and
  // the popped ids (4, 5) stay popped.
  store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_EQ(store->size(), 2u);
  ASSERT_NE(store->Find(2), nullptr);
  EXPECT_EQ(store->Find(2)->value, Value::String("late"));
  EXPECT_NE(store->Find(6), nullptr);
  EXPECT_EQ(store->Find(4), nullptr);
  // A replayed append of a live id dedupes; a replayed append of an id
  // whose pop is also in the replayable suffix comes back and is re-popped
  // by the degrade record that follows in log order.
  ASSERT_TRUE(store->Append(Entry(2, "redo")).ok());
  EXPECT_EQ(store->size(), 2u);
  ASSERT_TRUE(store->Append(Entry(4, "redo")).ok());
  ASSERT_TRUE(store->PopById(4).ok());
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->Find(4), nullptr);
  // The popped ids were appended once: id allocation must stay above them.
  EXPECT_GE(store->LastAppendedRowId(), 5u);
}

TEST_P(StateStoreTest, PrefixPopRedoIsIdempotent) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  for (RowId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(store->Append(Entry(id, "v")).ok());
  }
  PopIdsThrough(store.get(), 4);
  EXPECT_EQ(store->size(), 6u);
  PopIdsThrough(store.get(), 4);  // redo: all no-ops
  EXPECT_EQ(store->size(), 6u);
  EXPECT_EQ(store->Head().row_id, 5u);
}

TEST_P(StateStoreTest, LegacyPositionalMetaStillOpens) {
  // Databases checkpointed before the watermark format wrote META as
  // [head_seqno, head_popped, next_seqno]; their frames are strictly
  // monotone, so the positional skip remains exact.
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  for (RowId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(store->Append(Entry(id, "v")).ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store->PopHead(nullptr).ok());
  }
  ASSERT_TRUE(store->Checkpoint().ok());
  store.reset();

  std::string legacy;
  PutVarint64(&legacy, 0);  // head seqno
  PutVarint64(&legacy, 3);  // head frames popped
  PutVarint64(&legacy, 1);  // next seqno
  ASSERT_TRUE(
      WriteStringToFile(dir_ + "/store/META", legacy, /*sync=*/true).ok());

  store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_EQ(store->size(), 7u);
  EXPECT_EQ(store->Head().row_id, 4u);
  // The watermark reconstructed from the skipped frames keeps id
  // allocation above every id ever appended.
  EXPECT_GE(store->LastAppendedRowId(), 10u);
}

TEST_P(StateStoreTest, ReopenRecoversLiveEntries) {
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    for (RowId id = 1; id <= 40; ++id) {
      ASSERT_TRUE(store->Append(Entry(id, StringPrintf("value-%llu",
                                       static_cast<unsigned long long>(id))))
                      .ok());
    }
    PopIdsThrough(store.get(), 15);
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_EQ(store->size(), 25u);
  EXPECT_EQ(store->Head().row_id, 16u);
  EXPECT_EQ(store->LastAppendedRowId(), 40u);
  // Appends continue after the recovered tail.
  ASSERT_TRUE(store->Append(Entry(41, "new")).ok());
  EXPECT_EQ(store->size(), 26u);
}

TEST_P(StateStoreTest, ReopenWithoutCheckpointReplaysViaPops) {
  // Without a checkpoint meta, pops since the last checkpoint come back as
  // live entries; the WAL redo (pop by collected id) must drain them again.
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    for (RowId id = 1; id <= 20; ++id) {
      ASSERT_TRUE(store->Append(Entry(id, "v")).ok());
    }
    ASSERT_TRUE(store->Checkpoint().ok());
    PopIdsThrough(store.get(), 8);
    // Crash here: no second checkpoint.
  }
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  // Entries in segments that were fully drained+erased stay gone; the
  // partially drained head segment resurfaces its entries.
  ASSERT_FALSE(store->empty());
  PopIdsThrough(store.get(), 8);  // idempotent redo
  EXPECT_EQ(store->Head().row_id, 9u);
  EXPECT_EQ(store->size(), 12u);
}

TEST_P(StateStoreTest, ErasedSegmentsLeaveNoPlaintext) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  const std::string secret = "VERY-SENSITIVE-LOCATION";
  for (RowId id = 1; id <= 30; ++id) {
    ASSERT_TRUE(store->Append(Entry(id, secret)).ok());
  }
  ASSERT_TRUE(store->Checkpoint().ok());
  PopIdsThrough(store.get(), 30);
  // Every byte under the store directory must be free of the secret.
  auto names = ListDir(dir_ + "/store");
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    auto contents = ReadFileToString(dir_ + "/store/" + name);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents->find(secret), std::string::npos) << name;
  }
}

TEST_P(StateStoreTest, CiphertextAtRestForCryptoMode) {
  if (GetParam() != EraseMode::kCryptoErase) GTEST_SKIP();
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  const std::string secret = "PLAINTEXT-SHOULD-NOT-APPEAR";
  ASSERT_TRUE(store->Append(Entry(1, secret)).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  auto names = ListDir(dir_ + "/store");
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    if (!StartsWith(name, "seg_")) continue;
    auto contents = ReadFileToString(dir_ + "/store/" + name);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents->find(secret), std::string::npos) << name;
  }
}

TEST_P(StateStoreTest, TornTailFrameIsDropped) {
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    for (RowId id = 1; id <= 3; ++id) {
      ASSERT_TRUE(store->Append(Entry(id, "abcdef")).ok());
    }
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  // Simulate a torn write by chopping bytes off the tail segment.
  auto names = ListDir(dir_ + "/store");
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    if (!StartsWith(name, "seg_")) continue;
    const std::string path = dir_ + "/store/" + name;
    auto size = GetFileSize(path);
    ASSERT_TRUE(size.ok());
    if (*size > 3) {
      ASSERT_TRUE(TruncateFile(path, *size - 3).ok());
    }
  }
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_EQ(store->size(), 2u);  // last frame dropped
  // The dropped entry is re-appended by WAL redo.
  ASSERT_TRUE(store->Append(Entry(3, "abcdef")).ok());
  EXPECT_EQ(store->size(), 3u);
}

TEST_P(StateStoreTest, SecureDeleteEntryScrubsAndSkips) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  const std::string secret = "DELETED-SECRET-PAYLOAD";
  for (RowId id = 1; id <= 9; ++id) {
    ASSERT_TRUE(store->Append(Entry(id, id == 5 ? secret : "keep")).ok());
  }
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->SecureDeleteEntry(5).ok());
  EXPECT_TRUE(store->SecureDeleteEntry(5).IsNotFound());
  EXPECT_EQ(store->size(), 8u);
  EXPECT_EQ(store->Find(5), nullptr);
  ASSERT_NE(store->Find(6), nullptr);
  // The deleted payload is gone from disk immediately.
  auto names = ListDir(dir_ + "/store");
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    auto contents = ReadFileToString(dir_ + "/store/" + name);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents->find(secret), std::string::npos) << name;
  }
  // Tombstones survive reopen.
  auto reopened = MakeStore();
  ASSERT_TRUE(reopened->Open().ok());
  EXPECT_EQ(reopened->size(), 8u);
  EXPECT_EQ(reopened->Find(5), nullptr);
  // FIFO popping skips the deleted entry.
  PopIdsThrough(reopened.get(), 6);
  EXPECT_EQ(reopened->Head().row_id, 7u);
}

TEST_P(StateStoreTest, DeletingWholeSegmentErasesIt) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  for (RowId id = 1; id <= 60; ++id) {
    ASSERT_TRUE(store->Append(Entry(id, "vvvvvvvvvvvv")).ok());
  }
  const auto created = store->stats().segments_created;
  ASSERT_GT(created, 2u);
  // Delete every row: all segments must end up erased.
  for (RowId id = 1; id <= 60; ++id) {
    ASSERT_TRUE(store->SecureDeleteEntry(id).ok());
  }
  EXPECT_TRUE(store->empty());
  EXPECT_EQ(store->stats().segments_erased, store->stats().segments_created);
}

TEST_P(StateStoreTest, DropErasesEverything) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  for (RowId id = 1; id <= 50; ++id) {
    ASSERT_TRUE(store->Append(Entry(id, "payload")).ok());
  }
  ASSERT_TRUE(store->Drop().ok());
  EXPECT_FALSE(FileExists(dir_ + "/store"));
}

INSTANTIATE_TEST_SUITE_P(AllEraseModes, StateStoreTest,
                         ::testing::Values(EraseMode::kOverwrite,
                                           EraseMode::kCryptoErase),
                         [](const auto& info) {
                           return info.param == EraseMode::kOverwrite
                                      ? "Overwrite"
                                      : "CryptoErase";
                         });

}  // namespace
}  // namespace instantdb
