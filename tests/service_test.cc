#include "service/service.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "maintain/audit.h"
#include "query/cursor.h"
#include "query/session.h"
#include "util/file.h"
#include "util/worker_pool.h"

namespace instantdb {
namespace {

/// The accounting invariant ISSUE 10 demands: every submission lands in
/// exactly one terminal bucket.
void ExpectServiceInvariant(const Database& db) {
  const Database::ServiceStats s = db.stats().service;
  EXPECT_EQ(s.admitted + s.rejected_overload + s.rejected_shutdown +
                s.rejected_deadline,
            s.submitted)
      << "admitted=" << s.admitted << " overload=" << s.rejected_overload
      << " shutdown=" << s.rejected_shutdown
      << " deadline=" << s.rejected_deadline << " submitted=" << s.submitted;
}

/// One-shot gate: a statement parks on it so a test can hold the service's
/// admission slot(s) occupied while probing queue behavior.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_service_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    options.degradation.worker_threads = 2;
    options.partitions = 4;            // several degradation units per pass
    options.wal.segment_bytes = 4096;  // frequent rollover + retirement
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);

    auto schema = Schema::Make(
        {ColumnDef::Stable("name", ValueType::kString),
         ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp()),
         ColumnDef::Degradable(
             "salary", SalaryDomain(),
             *AttributeLcp::Make({{0, kMicrosPerDay}, {1, kMicrosPerMonth}}))});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db_->CreateTable("person", *schema).ok());
  }
  void TearDown() override {
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  void InsertPeople(Session* session) {
    for (const char* sql :
         {"INSERT INTO person VALUES ('alice', '11 Rue Lepic', 2345)",
          "INSERT INTO person VALUES ('bob', '3 Av Foch', 2999)",
          "INSERT INTO person VALUES ('carol', '4 Rue Breteuil', 3500)",
          "INSERT INTO person VALUES ('dave', '8 Cours Mirabeau', 9000)"}) {
      auto result = session->Execute(sql);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
  }

  /// Spins until `stats().service` satisfies `pred` (the admission queues
  /// are internal; the counters are the observable surface).
  template <typename Pred>
  void AwaitService(Pred pred) {
    while (!pred(db_->stats().service)) std::this_thread::yield();
  }

  static Status Nop(Session*) { return Status::OK(); }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
};

// --- admission control -------------------------------------------------------

TEST_F(ServiceTest, AdmitsUpToMaxConcurrentAndRejectsBeyondQueueDepth) {
  ServiceOptions opts;
  opts.max_concurrent = 1;
  opts.queue_depth = 1;
  ServiceFrontEnd service(db_.get(), opts);
  Session holder_session(db_.get()), queued_session(db_.get()),
      rejected_session(db_.get());

  Gate gate;
  Gate holder_in;
  std::thread holder([&] {
    Status status = service.Run(&holder_session, ServiceClass::kNormal,
                                /*is_write=*/false, [&](Session*) {
                                  holder_in.Open();
                                  gate.Wait();
                                  return Status::OK();
                                });
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  holder_in.Wait();

  Status queued_status;
  std::thread queued([&] {
    queued_status = service.Run(&queued_session, ServiceClass::kNormal,
                                /*is_write=*/false, Nop);
  });
  AwaitService([](const Database::ServiceStats& s) { return s.queued >= 1; });

  // Queue depth 1 is full: the third submission sheds immediately.
  Status rejected = service.Run(&rejected_session, ServiceClass::kNormal,
                                /*is_write=*/false, Nop);
  EXPECT_TRUE(rejected.IsOverloaded()) << rejected.ToString();

  gate.Open();
  holder.join();
  queued.join();
  EXPECT_TRUE(queued_status.ok()) << queued_status.ToString();

  const Database::ServiceStats stats = db_->stats().service;
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected_overload, 1u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_GE(stats.max_queue_depth, 1u);
  ExpectServiceInvariant(*db_);
}

TEST_F(ServiceTest, WeightedFairDrainingFavorsHighWithoutStarvingLow) {
  ServiceOptions opts;
  opts.max_concurrent = 1;
  opts.queue_depth = 8;
  // weights 4:2:1 (the default); expected drain order below is the exact
  // virtual-time schedule for 4 queued kHigh vs 4 queued kLow.
  ServiceFrontEnd service(db_.get(), opts);

  Gate gate;
  Gate holder_in;
  Session holder_session(db_.get());
  std::thread holder([&] {
    Status status = service.Run(&holder_session, ServiceClass::kNormal, false,
                                [&](Session*) {
                                  holder_in.Open();
                                  gate.Wait();
                                  return Status::OK();
                                });
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  holder_in.Wait();

  std::mutex order_mu;
  std::string order;
  std::vector<std::thread> threads;
  std::vector<Session> sessions;
  sessions.reserve(8);
  for (int i = 0; i < 8; ++i) sessions.emplace_back(db_.get());
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      Status status = service.Run(&sessions[i], ServiceClass::kHigh, false,
                                  [&](Session*) {
                                    std::lock_guard<std::mutex> lock(order_mu);
                                    order += 'H';
                                    return Status::OK();
                                  });
      EXPECT_TRUE(status.ok()) << status.ToString();
    });
  }
  for (int i = 4; i < 8; ++i) {
    threads.emplace_back([&, i] {
      Status status = service.Run(&sessions[i], ServiceClass::kLow, false,
                                  [&](Session*) {
                                    std::lock_guard<std::mutex> lock(order_mu);
                                    order += 'L';
                                    return Status::OK();
                                  });
      EXPECT_TRUE(status.ok()) << status.ToString();
    });
  }
  AwaitService([](const Database::ServiceStats& s) { return s.queued >= 8; });
  gate.Open();
  holder.join();
  for (auto& t : threads) t.join();

  // Virtual times h/4 vs l/1, ties to the higher class: H first (tie), one
  // early L (no starvation), then high's weight advantage drains the rest
  // of its queue before low's remainder.
  EXPECT_EQ(order, "HLHHHLLL");
  ExpectServiceInvariant(*db_);
}

// --- deadlines & cancellation ------------------------------------------------

TEST_F(ServiceTest, DeadlineExpiredBeforeAdmissionRejectsWithTimeout) {
  ServiceFrontEnd service(db_.get());
  Session session(db_.get());
  clock_->Advance(1000);
  Status status = service.Run(&session, ServiceClass::kNormal, false, Nop,
                              /*cancel=*/nullptr, /*deadline=*/500);
  EXPECT_TRUE(status.IsTimeout()) << status.ToString();
  const Database::ServiceStats stats = db_->stats().service;
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
  ExpectServiceInvariant(*db_);
}

TEST_F(ServiceTest, ScanObservesDeadlineMidStatementWithoutLeakingTokens) {
  ServiceFrontEnd service(db_.get());
  Session session(db_.get());
  InsertPeople(&session);

  clock_->Advance(1000);
  Status status = service.Run(
      &session, ServiceClass::kNormal, false,
      [&](Session* s) -> Status {
        // The service wired our absolute deadline into the session's scan
        // options; expire it mid-statement and scan.
        clock_->Advance(10 * kMicrosPerSecond);
        auto result = s->Execute("SELECT name, location FROM person");
        return result.status();
      },
      /*cancel=*/nullptr, /*deadline=*/clock_->NowMicros() + kMicrosPerSecond);
  EXPECT_TRUE(status.IsTimeout()) << status.ToString();

  WorkerPool* pool = db_->worker_pool();
  EXPECT_EQ(pool->free_workers(), pool->size()) << "scan leaked pool tokens";
  const Database::ServiceStats stats = db_->stats().service;
  EXPECT_EQ(stats.admitted, 1u);  // admitted, then timed out mid-execution
  EXPECT_GE(stats.timeouts, 1u);
  ExpectServiceInvariant(*db_);
}

TEST_F(ServiceTest, CursorScanChecksDeadlineBetweenPulls) {
  Session session(db_.get());
  InsertPeople(&session);
  clock_->Advance(1000);

  session.scan_options().deadline = clock_->NowMicros() + kMicrosPerSecond;
  auto cursor = session.ExecuteCursor("SELECT name FROM person");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  clock_->Advance(10 * kMicrosPerSecond);  // past the deadline
  CursorRow row;
  auto next = (*cursor)->Next(&row);
  EXPECT_TRUE(next.status().IsTimeout()) << next.status().ToString();
  (*cursor)->Close();
  session.scan_options().deadline = 0;

  WorkerPool* pool = db_->worker_pool();
  EXPECT_EQ(pool->free_workers(), pool->size()) << "scan leaked pool tokens";
}

TEST_F(ServiceTest, CancelTokenAbortsStatement) {
  ServiceFrontEnd service(db_.get());
  Session session(db_.get());
  InsertPeople(&session);

  CancelToken cancel;
  cancel.Cancel();  // tripped before the scan starts: first check aborts
  Status status = service.Run(
      &session, ServiceClass::kNormal, false,
      [&](Session* s) -> Status {
        return s->Execute("SELECT name FROM person").status();
      },
      &cancel);
  EXPECT_TRUE(status.IsAborted()) << status.ToString();
  EXPECT_EQ(db_->stats().service.cancelled, 1u);
  ExpectServiceInvariant(*db_);
}

// --- backpressure shedding ---------------------------------------------------

TEST_F(ServiceTest, DegradationBacklogShedsWritesBeforeReadsLowBeforeHigh) {
  ServiceOptions opts;
  opts.pressure_refresh = 0;  // sample fresh every admission
  ServiceFrontEnd service(db_.get(), opts);
  Session session(db_.get());
  InsertPeople(&session);

  // Let the salary phase-0 deadline (1 day) lapse without degrading:
  // overdue backlog >= degradation_backlog_high -> pressure score 1.
  clock_->Advance(2 * kMicrosPerDay);
  ASSERT_GE(db_->degradation()->OverdueUnits(clock_->NowMicros()), 1u);
  const PressureState pressure = service.SamplePressure();
  EXPECT_TRUE(pressure.degradation_pressure);
  EXPECT_EQ(pressure.score, 1);

  // Score 1 sheds exactly the lowest class's writes; its reads and every
  // higher class still get through.
  EXPECT_TRUE(service.Run(&session, ServiceClass::kLow, /*is_write=*/true, Nop)
                  .IsOverloaded());
  EXPECT_TRUE(
      service.Run(&session, ServiceClass::kLow, /*is_write=*/false, Nop).ok());
  EXPECT_TRUE(
      service.Run(&session, ServiceClass::kNormal, /*is_write=*/true, Nop)
          .ok());
  EXPECT_TRUE(
      service.Run(&session, ServiceClass::kHigh, /*is_write=*/true, Nop).ok());

  // Clear the backlog; the write rung opens again.
  auto moved = db_->RunDegradationOnce();
  ASSERT_TRUE(moved.ok());
  EXPECT_GT(*moved, 0u);
  EXPECT_TRUE(service.Run(&session, ServiceClass::kLow, /*is_write=*/true, Nop)
                  .ok());
  ExpectServiceInvariant(*db_);
}

TEST_F(ServiceTest, PoolExhaustionAddsASheddingRung) {
  ServiceOptions opts;
  opts.pressure_refresh = 0;
  opts.reserved_degradation_workers = 1;
  ServiceFrontEnd service(db_.get(), opts);
  Session session(db_.get());

  // Saturate every normal-visible pool token (pool size 2, 1 reserved).
  WorkerPool* pool = db_->worker_pool();
  Gate gate;
  std::atomic<int> parked{0};
  WorkerPool::Ticket ticket;
  const size_t taken = pool->TryDispatch(
      pool->size(),
      [&](size_t) {
        parked.fetch_add(1);
        gate.Wait();
      },
      &ticket);
  EXPECT_EQ(taken, 1u) << "normal dispatch must not see the reserve";
  while (parked.load() < 1) std::this_thread::yield();

  const PressureState pressure = service.SamplePressure();
  EXPECT_TRUE(pressure.pool_pressure);
  EXPECT_EQ(pressure.pool_free_workers, 0u);
  EXPECT_EQ(pressure.score, 1);
  EXPECT_TRUE(service.Run(&session, ServiceClass::kLow, /*is_write=*/true, Nop)
                  .IsOverloaded());
  EXPECT_TRUE(
      service.Run(&session, ServiceClass::kHigh, /*is_write=*/false, Nop).ok());

  gate.Open();
  pool->Wait(&ticket);
  ExpectServiceInvariant(*db_);
}

// --- degradation priority floor ----------------------------------------------

TEST_F(ServiceTest, DegradationFloorHoldsAtFullQueryLoad) {
  ServiceOptions opts;
  opts.reserved_degradation_workers = 1;
  ServiceFrontEnd service(db_.get(), opts);
  Session session(db_.get());
  InsertPeople(&session);
  // Spread rows over every partition so the pass has enough units to fan
  // out (a single-unit pass drains on the caller and needs no helper).
  for (int i = 0; i < 12; ++i) {
    auto id = db_->Insert("person", {Value::String("u" + std::to_string(i)),
                                     Value::String("11 Rue Lepic"),
                                     Value::Int64(1000 + i)});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }

  // 100% query load: a foreground fan-out holds every normal-visible pool
  // token for the whole degradation pass.
  WorkerPool* pool = db_->worker_pool();
  ASSERT_EQ(pool->reserved(), 1u);
  Gate gate;
  std::atomic<int> parked{0};
  WorkerPool::Ticket ticket;
  const size_t taken = pool->TryDispatch(
      pool->size(),
      [&](size_t) {
        parked.fetch_add(1);
        gate.Wait();
      },
      &ticket);
  ASSERT_EQ(taken, pool->size() - pool->reserved());
  while (parked.load() < static_cast<int>(taken)) std::this_thread::yield();

  // The overdue degradation step still completes: the engine's priority
  // dispatch takes the reserved token foreground dispatches cannot see.
  clock_->Advance(2 * kMicrosPerDay);
  ASSERT_GE(db_->degradation()->OverdueUnits(clock_->NowMicros()), 2u);
  auto moved = db_->RunDegradationOnce();
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_GT(*moved, 0u);
  EXPECT_EQ(db_->degradation()->OverdueUnits(clock_->NowMicros()), 0u);
  EXPECT_GE(db_->stats().service.degradation_reserved_dispatches, 1u);

  gate.Open();
  pool->Wait(&ticket);

  // Deletion assurance: let a cadence point retire the WAL segments still
  // holding the accurate insert payloads, then nothing is retained past
  // its deadline at any layer.
  ASSERT_TRUE(db_->maintenance()->RunOnce(clock_->NowMicros()).ok());
  AuditReport report = db_->Audit();
  EXPECT_TRUE(report.Verify().ok()) << report.ToString();
  ExpectServiceInvariant(*db_);
}

TEST_F(ServiceTest, WorkerPoolReserveIsInvisibleToNormalDispatch) {
  WorkerPool pool(2);
  pool.SetReserved(1);

  Gate gate;
  std::atomic<int> parked{0};
  WorkerPool::Ticket normal_ticket;
  // A normal dispatch wanting everything gets size - reserved.
  EXPECT_EQ(pool.TryDispatch(
                2,
                [&](size_t) {
                  parked.fetch_add(1);
                  gate.Wait();
                },
                &normal_ticket),
            1u);
  while (parked.load() < 1) std::this_thread::yield();
  // A second normal dispatch is refused the reserve even though a worker
  // is free...
  WorkerPool::Ticket refused;
  EXPECT_EQ(pool.TryDispatch(1, [](size_t) {}, &refused), 0u);
  EXPECT_EQ(pool.reserved_grants(), 0u);
  // ...while a priority dispatch takes it, and the dip is counted.
  WorkerPool::Ticket priority_ticket;
  EXPECT_EQ(pool.TryDispatch(
                1, [&](size_t) { parked.fetch_add(1); }, &priority_ticket,
                /*priority=*/true),
            1u);
  pool.Wait(&priority_ticket);
  EXPECT_EQ(pool.reserved_grants(), 1u);

  gate.Open();
  pool.Wait(&normal_ticket);
  EXPECT_EQ(pool.free_workers(), pool.size());
}

// --- shutdown ----------------------------------------------------------------

TEST_F(ServiceTest, CloseDrainsQueuedStatementsWithShutdown) {
  ServiceOptions opts;
  opts.max_concurrent = 1;
  opts.queue_depth = 4;
  ServiceFrontEnd service(db_.get(), opts);
  Session holder_session(db_.get());
  Session queued_sessions[2] = {Session(db_.get()), Session(db_.get())};

  Gate gate;
  Gate holder_in;
  std::thread holder([&] {
    Status status =
        service.Run(&holder_session, ServiceClass::kNormal, false,
                    [&](Session*) {
                      holder_in.Open();
                      gate.Wait();
                      return Status::OK();
                    });
    // Admitted before the close: it runs to completion.
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  holder_in.Wait();

  Status queued_status[2];
  std::thread queued[2];
  for (int i = 0; i < 2; ++i) {
    queued[i] = std::thread([&, i] {
      queued_status[i] =
          service.Run(&queued_sessions[i], ServiceClass::kNormal, false, Nop);
    });
  }
  AwaitService([](const Database::ServiceStats& s) { return s.queued >= 2; });

  Status close_status;
  std::thread closer([&] { close_status = db_->Close(); });
  // The pre-close hook rejects both queued statements without waiting for
  // the in-flight one...
  AwaitService(
      [](const Database::ServiceStats& s) { return s.rejected_shutdown >= 2; });
  for (auto& t : queued) t.join();
  EXPECT_TRUE(queued_status[0].IsShutdown()) << queued_status[0].ToString();
  EXPECT_TRUE(queued_status[1].IsShutdown()) << queued_status[1].ToString();

  // ...then blocks until it finishes before closing the engine.
  gate.Open();
  holder.join();
  closer.join();
  EXPECT_TRUE(close_status.ok()) << close_status.ToString();

  // New submissions after close reject immediately.
  Session late(db_.get());
  EXPECT_TRUE(
      service.Run(&late, ServiceClass::kHigh, false, Nop).IsShutdown());
  ExpectServiceInvariant(*db_);
}

// --- statement classification ------------------------------------------------

TEST_F(ServiceTest, StatementKeywordSniffClassifiesWrites) {
  EXPECT_TRUE(ServiceFrontEnd::StatementIsWrite("INSERT INTO t VALUES (1)"));
  EXPECT_TRUE(ServiceFrontEnd::StatementIsWrite("  delete from t"));
  EXPECT_TRUE(ServiceFrontEnd::StatementIsWrite("Create Table t (x INT)"));
  EXPECT_FALSE(ServiceFrontEnd::StatementIsWrite("SELECT * FROM t"));
  EXPECT_FALSE(ServiceFrontEnd::StatementIsWrite("  select 1"));
}

TEST_F(ServiceTest, ExecuteRunsSqlUnderAdmission) {
  ServiceFrontEnd service(db_.get());
  Session session(db_.get());
  auto insert = service.Execute(
      &session, "INSERT INTO person VALUES ('eve', '11 Rue Lepic', 1234)");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  auto select = service.Execute(&session, "SELECT name FROM person");
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ(select->rows.size(), 1u);
  EXPECT_EQ(db_->stats().service.admitted, 2u);
  ExpectServiceInvariant(*db_);
}

}  // namespace
}  // namespace instantdb
