#include "query/prepared_statement.h"

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "query/cursor.h"
#include "query/session.h"
#include "util/file.h"

namespace instantdb {
namespace {

class PreparedStatementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_prepared_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);

    auto schema = Schema::Make(
        {ColumnDef::Stable("name", ValueType::kString),
         ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp()),
         ColumnDef::Degradable(
             "salary", SalaryDomain(),
             *AttributeLcp::Make({{0, kMicrosPerDay}, {1, kMicrosPerMonth}}))});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db_->CreateTable("person", *schema).ok());
    session_ = std::make_unique<Session>(db_.get());
  }
  void TearDown() override {
    session_.reset();
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(PreparedStatementTest, InsertParseOnceExecuteMany) {
  auto stmt = session_->Prepare("INSERT INTO person VALUES (?, ?, ?)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->parameter_count(), 3u);

  const struct {
    const char* name;
    const char* address;
    int64_t salary;
  } people[] = {{"alice", "11 Rue Lepic", 2345},
                {"bob", "3 Av Foch", 2999},
                {"carol", "4 Rue Breteuil", 3500}};
  RowId last = 0;
  for (const auto& p : people) {
    ASSERT_TRUE((*stmt)->Bind(0, Value::String(p.name)).ok());
    ASSERT_TRUE((*stmt)->Bind(1, Value::String(p.address)).ok());
    ASSERT_TRUE((*stmt)->Bind(2, Value::Int64(p.salary)).ok());
    auto result = (*stmt)->Execute();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->affected_rows, 1u);
    EXPECT_GT(result->last_insert_id, last);
    last = result->last_insert_id;
  }

  auto all = session_->Execute("SELECT name, salary FROM person");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->rows.size(), 3u);
  EXPECT_EQ(all->rows[2][0], Value::String("carol"));
  EXPECT_EQ(all->rows[2][1], Value::Int64(3500));
}

TEST_F(PreparedStatementTest, SelectWithParameterizedPredicates) {
  ASSERT_TRUE(
      session_->Execute("INSERT INTO person VALUES ('alice', '11 Rue Lepic', 2345)")
          .ok());
  ASSERT_TRUE(
      session_->Execute("INSERT INTO person VALUES ('bob', '3 Av Foch', 2999)")
          .ok());
  ASSERT_TRUE(
      session_
          ->Execute("INSERT INTO person VALUES ('carol', '4 Rue Breteuil', 3500)")
          .ok());

  auto by_name = session_->Prepare("SELECT name FROM person WHERE name = ?");
  ASSERT_TRUE(by_name.ok());
  ASSERT_TRUE((*by_name)->BindAll({Value::String("bob")}).ok());
  auto bob = (*by_name)->Execute();
  ASSERT_TRUE(bob.ok());
  ASSERT_EQ(bob->rows.size(), 1u);
  EXPECT_EQ(bob->rows[0][0], Value::String("bob"));

  // Rebinding reuses the same parsed template.
  ASSERT_TRUE((*by_name)->BindAll({Value::String("carol")}).ok());
  auto carol = (*by_name)->Execute();
  ASSERT_TRUE(carol.ok());
  ASSERT_EQ(carol->rows.size(), 1u);
  EXPECT_EQ(carol->rows[0][0], Value::String("carol"));

  auto by_range = session_->Prepare(
      "SELECT name FROM person WHERE salary BETWEEN ? AND ?");
  ASSERT_TRUE(by_range.ok());
  EXPECT_EQ((*by_range)->parameter_count(), 2u);
  ASSERT_TRUE(
      (*by_range)->BindAll({Value::Int64(2000), Value::Int64(3000)}).ok());
  auto mid = (*by_range)->Execute();
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->rows.size(), 2u);  // alice + bob

  auto by_like = session_->Prepare("SELECT name FROM person WHERE name LIKE ?");
  ASSERT_TRUE(by_like.ok());
  ASSERT_TRUE((*by_like)->BindAll({Value::String("%o%")}).ok());
  auto contains = (*by_like)->Execute();
  ASSERT_TRUE(contains.ok());
  EXPECT_EQ(contains->rows.size(), 2u);  // bob, carol
}

TEST_F(PreparedStatementTest, PurposeAppliesAtExecutionNotPreparation) {
  ASSERT_TRUE(
      session_->Execute("INSERT INTO person VALUES ('alice', '11 Rue Lepic', 2345)")
          .ok());
  auto stmt = session_->Prepare("SELECT location FROM person WHERE location = ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->BindAll({Value::String("Paris")}).ok());

  // The purpose is declared AFTER Prepare: execution still honors it.
  ASSERT_TRUE(session_
                  ->Execute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY "
                            "FOR person.location")
                  .ok());
  auto result = (*stmt)->Execute();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::String("Paris"));
}

TEST_F(PreparedStatementTest, BindingErrors) {
  auto stmt = session_->Prepare("SELECT name FROM person WHERE salary = ?");
  ASSERT_TRUE(stmt.ok());
  // Unbound parameter fails fast.
  EXPECT_FALSE((*stmt)->Execute().ok());
  // Out-of-range ordinal and wrong BindAll arity are rejected.
  EXPECT_FALSE((*stmt)->Bind(1, Value::Int64(1)).ok());
  EXPECT_FALSE((*stmt)->BindAll({Value::Int64(1), Value::Int64(2)}).ok());
  // ClearBindings drops a valid binding.
  ASSERT_TRUE((*stmt)->Bind(0, Value::Int64(2345)).ok());
  (*stmt)->ClearBindings();
  EXPECT_FALSE((*stmt)->Execute().ok());

  // Statements without markers work as plain reusable statements.
  auto plain = session_->Prepare("SELECT name FROM person");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*plain)->parameter_count(), 0u);
  EXPECT_TRUE((*plain)->Execute().ok());
}

TEST_F(PreparedStatementTest, ExecuteCursorStreamsPreparedSelect) {
  for (int i = 0; i < 10; ++i) {
    auto insert = session_->Prepare("INSERT INTO person VALUES (?, ?, ?)");
    ASSERT_TRUE(insert.ok());
    ASSERT_TRUE((*insert)
                    ->BindAll({Value::String("user" + std::to_string(i)),
                               Value::String("11 Rue Lepic"),
                               Value::Int64(1000 + i)})
                    .ok());
    ASSERT_TRUE((*insert)->Execute().ok());
  }
  auto stmt = session_->Prepare("SELECT name FROM person WHERE salary >= ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->BindAll({Value::Int64(1005)}).ok());
  auto cursor = (*stmt)->ExecuteCursor();
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  CursorRow row;
  size_t n = 0;
  while (true) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++n;
  }
  EXPECT_EQ(n, 5u);
}

TEST_F(PreparedStatementTest, ParameterizedDelete) {
  for (const char* name : {"alice", "bob"}) {
    ASSERT_TRUE(session_
                    ->Execute(std::string("INSERT INTO person VALUES ('") +
                              name + "', '11 Rue Lepic', 1000)")
                    .ok());
  }
  auto del = session_->Prepare("DELETE FROM person WHERE name = ?");
  ASSERT_TRUE(del.ok());
  ASSERT_TRUE((*del)->BindAll({Value::String("alice")}).ok());
  auto result = (*del)->Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->affected_rows, 1u);
  EXPECT_EQ(db_->GetTable("person")->live_rows(), 1u);
}

TEST_F(PreparedStatementTest, ParserRejectsMarkersOutsideLiteralPositions) {
  EXPECT_FALSE(session_->Prepare("SELECT ? FROM person").ok());
  EXPECT_FALSE(session_->Prepare("SELECT name FROM ?").ok());
}

TEST_F(PreparedStatementTest, DirectExecutionOfMarkersIsRejected) {
  // Without this, a ? would silently execute as a NULL literal (matching
  // nothing) instead of failing loudly.
  EXPECT_FALSE(session_->Execute("SELECT name FROM person WHERE name = ?").ok());
  EXPECT_FALSE(session_->Execute("DELETE FROM person WHERE name = ?").ok());
  EXPECT_FALSE(session_->Execute("INSERT INTO person VALUES (?, ?, ?)").ok());
  EXPECT_FALSE(
      session_->ExecuteCursor("SELECT name FROM person WHERE name = ?").ok());
}

}  // namespace
}  // namespace instantdb
