#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "query/cursor.h"
#include "query/session.h"
#include "util/file.h"

namespace instantdb {
namespace {

/// Stress: concurrent streaming cursors + WriteBatch ingest + background
/// degradation (worker pool over a partitioned table, driven by a
/// VirtualClock). Asserts that no row is ever lost and that every value
/// leaves phase 0 once its deadline has passed and the degrader has run.
///
/// This is the test meant to run under ThreadSanitizer (cmake
/// -DINSTANTDB_SANITIZE=thread, see scripts/verify.sh): it exercises every
/// cross-thread path the partitioned engine has — partition latches, the
/// degradation worker pool, WAL group commit, wait-die locking.
class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_stress_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  /// The full stress body; `scan_parallelism` configures the readers'
  /// cursors (1 = sequential streaming scans, >1 = partition fan-out with
  /// prefetch workers racing the ingest threads and the degrader pool).
  void RunStress(size_t scan_parallelism);

  std::string dir_;
};

TEST_F(ConcurrencyStressTest, CursorsIngestAndDegraderInterleaveSafely) {
  RunStress(/*scan_parallelism=*/1);
}

// The parallel read path under fire: every reader fans its scan out over 4
// prefetch workers while 4 ingest threads commit and the 4-worker degrader
// drains deadlines — the TSan configuration that drives the bounded queue,
// batch recycling and worker shutdown across real interleavings.
TEST_F(ConcurrencyStressTest, ParallelCursorsIngestAndDegraderInterleaveSafely) {
  RunStress(/*scan_parallelism=*/4);
}

void ConcurrencyStressTest::RunStress(size_t scan_parallelism) {
  constexpr int kIngestThreads = 4;
  constexpr int kBatchesPerThread = 10;
  constexpr int kRowsPerBatch = 25;
  constexpr int kReaderThreads = 2;
  constexpr uint64_t kTotalRows =
      uint64_t{kIngestThreads} * kBatchesPerThread * kRowsPerBatch;

  VirtualClock clock(0);
  DbOptions options;
  options.path = dir_;
  options.clock = &clock;
  options.partitions = 4;
  options.degradation.background_thread = true;
  options.degradation.worker_threads = 4;
  options.degradation.step_batch_limit = 64;  // force many small steps
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);

  // Two phases: address for an hour, then city forever — tuples never
  // expire, so "no lost rows" is exact.
  auto lcp = AttributeLcp::Make({{0, kMicrosPerHour}, {1, kForever}});
  ASSERT_TRUE(lcp.ok());
  auto schema = Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), *lcp)});
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(db->CreateTable("stress", *schema).ok());

  std::atomic<int> errors{0};
  std::atomic<bool> stop_readers{false};

  // Ingest: each thread commits WriteBatches while the clock moves and the
  // degrader runs.
  std::vector<std::thread> ingest;
  for (int t = 0; t < kIngestThreads; ++t) {
    ingest.emplace_back([&, t] {
      for (int b = 0; b < kBatchesPerThread; ++b) {
        WriteBatch batch;
        for (int r = 0; r < kRowsPerBatch; ++r) {
          batch.Insert("stress",
                       {Value::String("u" + std::to_string(t) + "." +
                                      std::to_string(b) + "." +
                                      std::to_string(r)),
                        Value::String("11 Rue Lepic")});
        }
        Status status = db->Write(&batch);
        // Wait-die can in principle abort a batch; retry preserves the
        // no-lost-rows invariant.
        for (int retry = 0; !status.ok() && status.IsAborted() && retry < 100;
             ++retry) {
          status = db->Write(&batch);
        }
        if (!status.ok()) {
          ++errors;
          return;
        }
      }
    });
  }

  // Readers: streaming cursors over the stable column (accuracy-neutral, so
  // every live row qualifies regardless of its degradation phase).
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&] {
      Session session(db.get());
      session.scan_options().parallelism = scan_parallelism;
      while (!stop_readers.load(std::memory_order_acquire)) {
        auto cursor = session.ExecuteCursor("SELECT user FROM stress");
        if (!cursor.ok()) {
          ++errors;
          return;
        }
        CursorRow row;
        uint64_t rows = 0;
        while (true) {
          auto more = (*cursor)->Next(&row);
          if (!more.ok()) {
            ++errors;
            return;
          }
          if (!*more) break;
          ++rows;
        }
        if (rows > kTotalRows) {
          ++errors;  // a row was observed that was never inserted
          return;
        }
      }
    });
  }

  // Drive time forward while ingest runs so deadlines spread out and the
  // background degrader wakes repeatedly mid-traffic. Checkpoint along the
  // way: a fuzzy checkpoint racing in-flight commits and degrade steps must
  // not lose or resurface anything at the final recovery check.
  for (int i = 0; i < 30; ++i) {
    clock.Advance(2 * kMicrosPerMinute);
    if (i % 10 == 9 && !db->Checkpoint().ok()) ++errors;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& t : ingest) t.join();

  // Push every inserted row past its phase-0 deadline and let the worker
  // pool drain the backlog (NextDeadline() == kForever iff nothing is left
  // in phase 0, since phase 1 lasts forever).
  clock.Advance(kMicrosPerHour + kMicrosPerMinute);
  Table* table = db->GetTable("stress");
  for (int i = 0; i < 5000 && table->NextDeadline() != kForever; ++i) {
    clock.WakeAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop_readers.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  // NextDeadline() flips to kForever the instant the last step commits,
  // which can be slightly before that pass finishes updating statistics:
  // join the degrader before reading them.
  db->degradation()->Stop();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(table->NextDeadline(), kForever)
      << "degrader failed to drain phase 0 after the deadline";

  // No lost rows, and every value left phase 0 by its deadline plus one
  // pass of the worker pool.
  EXPECT_EQ(table->live_rows(), kTotalRows);
  uint64_t scanned = 0;
  ASSERT_TRUE(table
                  ->ScanRows([&](const RowView& view) {
                    ++scanned;
                    EXPECT_GE(view.phases[0], 1) << "row " << view.row_id;
                    EXPECT_EQ(view.values[1], Value::String("Paris"));
                    return true;
                  })
                  .ok());
  EXPECT_EQ(scanned, kTotalRows);
  const auto stats = table->stats();
  EXPECT_EQ(stats.inserts, kTotalRows);
  EXPECT_EQ(stats.values_degraded, kTotalRows);
  const auto engine_stats = db->degradation()->stats();
  EXPECT_EQ(engine_stats.values_moved, kTotalRows);
  EXPECT_GE(engine_stats.passes, 1u);

  // And the state survives recovery.
  db.reset();
  options.degradation.background_thread = false;
  auto reopened = Database::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->GetTable("stress")->live_rows(), kTotalRows);
}

}  // namespace
}  // namespace instantdb
