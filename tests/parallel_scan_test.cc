// Parallel read path: partition fan-out scans must return exactly the row
// set the sequential scan returns at every parallelism, preserve snapshot
// safety while the degrader runs, expose per-partition cursors for
// consumers that shard a scan themselves, and account their work in
// Database::stats().scan. This test runs under ThreadSanitizer in
// scripts/verify.sh --tsan: the prefetch workers, bounded queue and
// consumer are exactly the cross-thread paths it exercises.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/builtin_domains.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "query/cursor.h"
#include "query/session.h"
#include "util/file.h"

namespace instantdb {
namespace {

class ParallelScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_parallel_scan_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override {
    db_.reset();
    RemoveDirRecursive(dir_).ok();
  }

  /// Fresh database with `partitions` partitions and a worker pool of the
  /// same size, holding `rows` pings with a mix of phase-0 and phase-1
  /// locations (the clock advances past the one-hour address deadline for
  /// the first half of the inserts).
  void BuildDb(uint32_t partitions, int rows) {
    db_.reset();
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    clock_ = std::make_unique<VirtualClock>(0);
    DbOptions options;
    options.path = dir_;
    options.clock = clock_.get();
    options.partitions = partitions;
    options.degradation.worker_threads = partitions;
    auto opened = Database::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db_ = std::move(*opened);

    auto schema = Schema::Make(
        {ColumnDef::Stable("user", ValueType::kString),
         ColumnDef::Degradable("location", LocationDomain(),
                               Fig2LocationLcp())});
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE(db_->CreateTable("pings", *schema).ok());

    const char* kAddresses[] = {"11 Rue Lepic", "3 Av Foch", "12 Rue Royale",
                                "4 Rue Breteuil", "8 Cours Mirabeau"};
    // Many small batches: WriteBatches are partition-affine (one batch lands
    // in one partition), so spreading the rows over batches populates every
    // partition.
    auto insert_range = [&](int from, int to) {
      for (int start = from; start < to; start += 25) {
        WriteBatch batch;
        for (int i = start; i < std::min(start + 25, to); ++i) {
          batch.Insert("pings", {Value::String("u" + std::to_string(i)),
                                 Value::String(kAddresses[i % 5])});
        }
        ASSERT_TRUE(db_->Write(&batch).ok());
      }
    };
    insert_range(0, rows / 2);
    // The first half crosses address -> city; the second half stays
    // accurate, so scans see mixed phases.
    clock_->Advance(kMicrosPerHour + kMicrosPerMinute);
    ASSERT_TRUE(db_->RunDegradationOnce().ok());
    insert_range(rows / 2, rows);
  }

  /// Drains `sql` through a streaming cursor at `parallelism` into
  /// user -> rendered-row, asserting no duplicate users.
  std::map<std::string, std::vector<std::string>> DrainCursor(
      Session* session, const std::string& sql, size_t parallelism) {
    session->scan_options().parallelism = parallelism;
    std::map<std::string, std::vector<std::string>> rows;
    auto cursor = session->ExecuteCursor(sql);
    EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
    if (!cursor.ok()) return rows;
    CursorRow row;
    while (true) {
      auto more = (*cursor)->Next(&row);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      const auto [it, inserted] =
          rows.emplace(row.display()[0], row.display());
      EXPECT_TRUE(inserted) << "duplicate row for " << row.display()[0];
    }
    return rows;
  }

  std::string dir_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(ParallelScanTest, ParallelAndSequentialScansReturnTheSameRowSet) {
  constexpr int kRows = 900;  // several scan batches per partition at p=1
  for (uint32_t partitions : {1u, 4u, 8u}) {
    BuildDb(partitions, kRows);
    Session session(db_.get());
    // CITY accuracy makes every row computable (phase-0 generalizes, the
    // degraded half matches exactly), so the expected set is all rows.
    ASSERT_TRUE(session
                    .Execute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY "
                             "FOR pings.location")
                    .ok());
    const auto baseline =
        DrainCursor(&session, "SELECT user, location FROM pings", 1);
    ASSERT_EQ(baseline.size(), static_cast<size_t>(kRows))
        << "partitions=" << partitions;
    for (size_t parallelism : {2u, 8u}) {
      const auto parallel =
          DrainCursor(&session, "SELECT user, location FROM pings",
                      parallelism);
      EXPECT_EQ(parallel, baseline)
          << "partitions=" << partitions << " parallelism=" << parallelism;
    }
    // The materialized path (Execute drains partitions on the pool) must
    // agree too, and in deterministic partition order.
    session.scan_options().parallelism = 0;  // auto: match the worker pool
    auto materialized = session.Execute("SELECT user, location FROM pings");
    ASSERT_TRUE(materialized.ok());
    EXPECT_EQ(materialized->rows.size(), static_cast<size_t>(kRows));
    std::set<std::string> users;
    for (const auto& display : materialized->display) {
      users.insert(display[0]);
    }
    EXPECT_EQ(users.size(), baseline.size());
  }
}

TEST_F(ParallelScanTest, PredicatesAndStableProjectionsAgreeAcrossParallelism) {
  BuildDb(4, 600);
  Session session(db_.get());
  // Stable-only projection: no degradable reference, every row qualifies.
  const auto all = DrainCursor(&session, "SELECT user FROM pings", 1);
  EXPECT_EQ(all.size(), 600u);
  EXPECT_EQ(DrainCursor(&session, "SELECT user FROM pings", 8), all);
  // Degradable predicate through the relaxed semantics (include_coarser):
  // the degraded half evaluates by containment.
  session.read_options().include_coarser = true;
  const auto paris = DrainCursor(
      &session, "SELECT user, location FROM pings WHERE location = 'Paris'",
      1);
  EXPECT_FALSE(paris.empty());
  for (size_t parallelism : {2u, 4u}) {
    EXPECT_EQ(
        DrainCursor(&session,
                    "SELECT user, location FROM pings WHERE location = 'Paris'",
                    parallelism),
        paris)
        << "parallelism=" << parallelism;
  }
}

TEST_F(ParallelScanTest, CursorOpenDuringDegradationStaysSnapshotSafe) {
  constexpr int kRows = 800;
  BuildDb(8, kRows);
  Session session(db_.get());
  ASSERT_TRUE(session
                  .Execute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY "
                           "FOR pings.location")
                  .ok());
  session.scan_options().parallelism = 4;
  auto cursor = session.ExecuteCursor("SELECT user, location FROM pings");
  ASSERT_TRUE(cursor.ok());

  const std::set<std::string> kCities = {"Paris", "Versailles", "Marseille",
                                         "Aix"};
  CursorRow row;
  std::set<std::string> seen;
  int pulled = 0;
  // Pull a slice, then degrade the remaining accurate half mid-scan.
  while (pulled < kRows / 4) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    EXPECT_TRUE(seen.insert(row.display()[0]).second);
    EXPECT_TRUE(kCities.count(row.display()[1]))
        << "torn location: " << row.display()[1];
    ++pulled;
  }
  clock_->Advance(kMicrosPerHour + kMicrosPerMinute);
  ASSERT_TRUE(db_->RunDegradationOnce().ok());
  while (true) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_TRUE(seen.insert(row.display()[0]).second);
    // Whether a row was read before or after its degradation step, the
    // value rendered at CITY accuracy is a city label — never a torn or
    // half-moved value.
    EXPECT_TRUE(kCities.count(row.display()[1]))
        << "torn location: " << row.display()[1];
  }
  // Degradation moves values between stores but never removes heap rows
  // (this LCP keeps city forever): no row may be lost or duplicated.
  EXPECT_EQ(seen.size(), static_cast<size_t>(kRows));
}

TEST_F(ParallelScanTest, PartitionCursorsShardTheTableExactly) {
  constexpr int kRows = 500;
  BuildDb(4, kRows);
  Table* table = db_->GetTable("pings");
  ASSERT_NE(table, nullptr);
  std::set<RowId> all;
  for (uint32_t p = 0; p < table->num_partitions(); ++p) {
    PartitionCursor cursor = table->OpenPartitionCursor(p);
    bool done = false;
    while (!done) {
      std::vector<RowView> views;
      ASSERT_TRUE(cursor.NextBatch(64, &views, &done).ok());
      for (const RowView& view : views) {
        // Every row a partition cursor serves routes back to it.
        EXPECT_EQ(table->PartitionOf(view.row_id), p);
        EXPECT_TRUE(all.insert(view.row_id).second)
            << "row served twice: " << view.row_id;
      }
    }
    // A drained cursor stays drained.
    std::vector<RowView> extra;
    ASSERT_TRUE(cursor.NextBatch(64, &extra, &done).ok());
    EXPECT_TRUE(done);
    EXPECT_TRUE(extra.empty());
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kRows));

  // An out-of-range partition index yields a safe empty cursor.
  PartitionCursor oob = table->OpenPartitionCursor(table->num_partitions());
  bool done = false;
  std::vector<RowView> views;
  ASSERT_TRUE(oob.NextBatch(64, &views, &done).ok());
  EXPECT_TRUE(done);
  EXPECT_TRUE(views.empty());
}

TEST_F(ParallelScanTest, ScanCountersAccountBatchesRowsAndStalls) {
  constexpr int kRows = 600;
  BuildDb(4, kRows);
  Session session(db_.get());

  const Database::Stats before = db_->stats();
  const auto rows = DrainCursor(&session, "SELECT user FROM pings", 1);
  EXPECT_EQ(rows.size(), static_cast<size_t>(kRows));
  const Database::Stats sequential = db_->stats();
  EXPECT_EQ(sequential.scan.rows - before.scan.rows,
            static_cast<uint64_t>(kRows));
  EXPECT_GE(sequential.scan.batches - before.scan.batches, 1u);
  // The sequential path never touches the prefetch queue.
  EXPECT_EQ(sequential.scan.prefetch_stalls, before.scan.prefetch_stalls);

  const auto parallel = DrainCursor(&session, "SELECT user FROM pings", 4);
  EXPECT_EQ(parallel.size(), static_cast<size_t>(kRows));
  const Database::Stats fanned = db_->stats();
  EXPECT_EQ(fanned.scan.rows - sequential.scan.rows,
            static_cast<uint64_t>(kRows));
  EXPECT_GE(fanned.scan.batches - sequential.scan.batches, 4u);
  EXPECT_GE(fanned.scan.prefetch_stalls, sequential.scan.prefetch_stalls);
}

TEST_F(ParallelScanTest, ExplicitParallelismClampsToThePartitionCount) {
  BuildDb(1, 300);
  Session session(db_.get());
  // parallelism 8 on a 1-partition table degenerates safely.
  const auto wide = DrainCursor(&session, "SELECT user FROM pings", 8);
  const auto narrow = DrainCursor(&session, "SELECT user FROM pings", 1);
  EXPECT_EQ(wide, narrow);
  EXPECT_EQ(wide.size(), 300u);
}

}  // namespace
}  // namespace instantdb
