#include <map>
#include <set>

#include "catalog/builtin_domains.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "index/bitmap_index.h"
#include "index/btree.h"
#include "index/multires_index.h"
#include "util/file.h"

namespace instantdb {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_index_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(CreateDirs(dir_).ok());
    auto dm = DiskManager::Open(dir_ + "/index.db", 4096);
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(*dm);
    pool_ = std::make_unique<BufferPool>(disk_.get(), 256);
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  static std::string Key(int64_t v, RowId rid) {
    std::string out;
    BPlusTree::EncodeKey(Value::Int64(v), rid, &out);
    return out;
  }

  std::string dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BTreeTest, InsertLookupSmall) {
  auto tree = BPlusTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->Insert(Key(5, 1), 1).ok());
  ASSERT_TRUE((*tree)->Insert(Key(3, 2), 2).ok());
  ASSERT_TRUE((*tree)->Insert(Key(9, 3), 3).ok());
  EXPECT_EQ((*tree)->num_entries(), 3u);
  EXPECT_TRUE(*(*tree)->Contains(Key(5, 1)));
  EXPECT_FALSE(*(*tree)->Contains(Key(5, 2)));
  EXPECT_FALSE(*(*tree)->Contains(Key(4, 1)));
}

TEST_F(BTreeTest, ScanIsOrderedAcrossSplits) {
  auto tree = BPlusTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  // Insert shuffled keys; enough volume to force leaf + internal splits.
  Random rng(42);
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 5000; ++i) values.push_back(i);
  for (size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1], values[rng.Uniform(i)]);
  }
  for (int64_t v : values) {
    ASSERT_TRUE((*tree)->Insert(Key(v, static_cast<RowId>(v)), static_cast<RowId>(v)).ok());
  }
  EXPECT_GT((*tree)->height(), 1);

  int64_t expect = 0;
  ASSERT_TRUE((*tree)
                  ->Scan("", "",
                         [&](Slice, RowId rid) {
                           EXPECT_EQ(rid, static_cast<RowId>(expect));
                           ++expect;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(expect, 5000);
}

TEST_F(BTreeTest, RangeScanBounds) {
  auto tree = BPlusTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  for (int64_t v = 0; v < 100; ++v) {
    ASSERT_TRUE((*tree)->Insert(Key(v, static_cast<RowId>(v)), static_cast<RowId>(v)).ok());
  }
  std::string begin, end;
  BPlusTree::EncodeLowerBound(Value::Int64(10), &begin);
  BPlusTree::EncodeUpperBound(Value::Int64(19), &end);
  std::vector<RowId> rids;
  ASSERT_TRUE((*tree)
                  ->Scan(begin, end,
                         [&](Slice, RowId rid) {
                           rids.push_back(rid);
                           return true;
                         })
                  .ok());
  ASSERT_EQ(rids.size(), 10u);
  EXPECT_EQ(rids.front(), 10u);
  EXPECT_EQ(rids.back(), 19u);
}

TEST_F(BTreeTest, DuplicateValuesDistinctRows) {
  auto tree = BPlusTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  for (RowId r = 1; r <= 50; ++r) {
    ASSERT_TRUE((*tree)->Insert(Key(7, r), r).ok());
  }
  std::string begin, end;
  BPlusTree::EncodeLowerBound(Value::Int64(7), &begin);
  BPlusTree::EncodeUpperBound(Value::Int64(7), &end);
  size_t count = 0;
  ASSERT_TRUE((*tree)->Scan(begin, end, [&](Slice, RowId) {
                   ++count;
                   return true;
                 }).ok());
  EXPECT_EQ(count, 50u);
}

TEST_F(BTreeTest, DeleteThenScanSkips) {
  auto tree = BPlusTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  for (int64_t v = 0; v < 200; ++v) {
    ASSERT_TRUE((*tree)->Insert(Key(v, static_cast<RowId>(v)), static_cast<RowId>(v)).ok());
  }
  for (int64_t v = 0; v < 200; v += 2) {
    ASSERT_TRUE((*tree)->Delete(Key(v, static_cast<RowId>(v))).ok());
  }
  EXPECT_TRUE((*tree)->Delete(Key(0, 0)).IsNotFound());
  EXPECT_EQ((*tree)->num_entries(), 100u);
  size_t odd = 0;
  ASSERT_TRUE((*tree)->Scan("", "", [&](Slice, RowId rid) {
                   EXPECT_EQ(rid % 2, 1u);
                   ++odd;
                   return true;
                 }).ok());
  EXPECT_EQ(odd, 100u);
}

TEST_F(BTreeTest, RandomizedAgainstReferenceModel) {
  auto tree = BPlusTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  Random rng(7);
  std::map<std::string, RowId> model;
  for (int op = 0; op < 4000; ++op) {
    const int64_t v = static_cast<int64_t>(rng.Uniform(500));
    const RowId rid = rng.Uniform(50);
    const std::string key = Key(v, rid);
    if (rng.OneIn(3) && !model.empty()) {
      // Delete a random existing key.
      auto it = model.lower_bound(key);
      if (it == model.end()) it = model.begin();
      ASSERT_TRUE((*tree)->Delete(it->first).ok());
      model.erase(it);
    } else if (model.count(key) == 0) {
      ASSERT_TRUE((*tree)->Insert(key, rid).ok());
      model[key] = rid;
    }
  }
  EXPECT_EQ((*tree)->num_entries(), model.size());
  auto it = model.begin();
  ASSERT_TRUE((*tree)->Scan("", "", [&](Slice key, RowId rid) {
                   EXPECT_EQ(std::string(key), it->first);
                   EXPECT_EQ(rid, it->second);
                   ++it;
                   return true;
                 }).ok());
  EXPECT_EQ(it, model.end());
}

TEST_F(BTreeTest, MultipleTreesShareOnePool) {
  auto t1 = BPlusTree::Create(pool_.get());
  auto t2 = BPlusTree::Create(pool_.get());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  for (int64_t v = 0; v < 100; ++v) {
    ASSERT_TRUE((*t1)->Insert(Key(v, 1), 1).ok());
    ASSERT_TRUE((*t2)->Insert(Key(v * 1000, 2), 2).ok());
  }
  EXPECT_EQ((*t1)->num_entries(), 100u);
  EXPECT_EQ((*t2)->num_entries(), 100u);
  // Re-open t1 by meta page and verify contents survive. Meta is kept in
  // memory on the operation hot path, so reattaching requires a Flush.
  ASSERT_TRUE((*t1)->Flush().ok());
  auto reopened = BPlusTree::Open(pool_.get(), (*t1)->meta_page());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_entries(), 100u);
  EXPECT_TRUE(*(*reopened)->Contains(Key(42, 1)));
}

// --- MultiResolutionIndex -----------------------------------------------------------

class MultiResIndexTest : public BTreeTest {
 protected:
  void SetUp() override {
    BTreeTest::SetUp();
    column_ = ColumnDef::Degradable("location", LocationDomain(),
                                    Fig2LocationLcp());
    index_ = std::make_unique<MultiResolutionIndex>(column_, pool_.get());
    ASSERT_TRUE(index_->Init().ok());
  }

  std::vector<RowId> Lookup(const std::string& label, int level) {
    std::vector<RowId> rids;
    auto status = index_->LookupEqual(Value::String(label), level,
                                      [&](RowId rid) {
                                        rids.push_back(rid);
                                        return true;
                                      });
    EXPECT_TRUE(status.ok()) << status.ToString();
    std::sort(rids.begin(), rids.end());
    return rids;
  }

  ColumnDef column_;
  std::unique_ptr<MultiResolutionIndex> index_;
};

TEST_F(MultiResIndexTest, AccurateInsertVisibleAtEveryLevel) {
  ASSERT_TRUE(index_->OnInsert(1, Value::String("11 Rue Lepic")).ok());
  ASSERT_TRUE(index_->OnInsert(2, Value::String("3 Av Foch")).ok());
  ASSERT_TRUE(index_->OnInsert(3, Value::String("4 Rue Breteuil")).ok());

  EXPECT_EQ(Lookup("11 Rue Lepic", 0), (std::vector<RowId>{1}));
  EXPECT_EQ(Lookup("Paris", 1), (std::vector<RowId>{1, 2}));
  EXPECT_EQ(Lookup("Ile-de-France", 2), (std::vector<RowId>{1, 2}));
  EXPECT_EQ(Lookup("France", 3), (std::vector<RowId>{1, 2, 3}));
  EXPECT_EQ(Lookup("Marseille", 1), (std::vector<RowId>{3}));
}

TEST_F(MultiResIndexTest, DegradedEntryMovesBetweenPhaseTrees) {
  ASSERT_TRUE(index_->OnInsert(1, Value::String("11 Rue Lepic")).ok());
  EXPECT_EQ(index_->EntriesInPhase(0), 1u);
  // Degrade to phase 1 (city level): stored value becomes "Paris".
  ASSERT_TRUE(index_
                  ->OnDegrade(1, 0, Value::String("11 Rue Lepic"), 1,
                              Value::String("Paris"))
                  .ok());
  EXPECT_EQ(index_->EntriesInPhase(0), 0u);
  EXPECT_EQ(index_->EntriesInPhase(1), 1u);
  // Address-level lookup no longer finds it (strict computability):
  EXPECT_TRUE(Lookup("11 Rue Lepic", 0).empty());
  // City-level and coarser lookups still do:
  EXPECT_EQ(Lookup("Paris", 1), (std::vector<RowId>{1}));
  EXPECT_EQ(Lookup("France", 3), (std::vector<RowId>{1}));
}

TEST_F(MultiResIndexTest, RemovalDropsFromAllLevels) {
  ASSERT_TRUE(index_->OnInsert(1, Value::String("8 Cours Mirabeau")).ok());
  ASSERT_TRUE(index_
                  ->OnDegrade(1, 0, Value::String("8 Cours Mirabeau"), 1,
                              Value::String("Aix"))
                  .ok());
  // Final transition to ⊥ (to_phase == num_phases).
  ASSERT_TRUE(index_
                  ->OnDegrade(1, 1, Value::String("Aix"),
                              column_.lcp.num_phases(), Value::Null())
                  .ok());
  EXPECT_TRUE(Lookup("France", 3).empty());
  for (int p = 0; p < index_->num_phases(); ++p) {
    EXPECT_EQ(index_->EntriesInPhase(p), 0u);
  }
}

TEST_F(MultiResIndexTest, MixedPhasesUnionAtCoarseLevel) {
  // One row per phase, all under France.
  ASSERT_TRUE(index_->OnInsert(1, Value::String("11 Rue Lepic")).ok());
  ASSERT_TRUE(index_->OnInsert(2, Value::String("12 Rue Royale")).ok());
  ASSERT_TRUE(index_->OnInsert(3, Value::String("4 Rue Breteuil")).ok());
  ASSERT_TRUE(index_
                  ->OnDegrade(2, 0, Value::String("12 Rue Royale"), 1,
                              Value::String("Versailles"))
                  .ok());
  ASSERT_TRUE(index_
                  ->OnDegrade(3, 0, Value::String("4 Rue Breteuil"), 1,
                              Value::String("Marseille"))
                  .ok());
  ASSERT_TRUE(index_
                  ->OnDegrade(3, 1, Value::String("Marseille"), 2,
                              Value::String("Provence"))
                  .ok());
  // Country-level query unions phase 0 (row 1), phase 1 (row 2), phase 2
  // (row 3).
  EXPECT_EQ(Lookup("France", 3), (std::vector<RowId>{1, 2, 3}));
  // Region-level: row 3 is at region level (computable), row 1 generalizes,
  // row 2 (city level 1 <= 2) generalizes too.
  EXPECT_EQ(Lookup("Ile-de-France", 2), (std::vector<RowId>{1, 2}));
  EXPECT_EQ(Lookup("Provence", 2), (std::vector<RowId>{3}));
  // City-level query must NOT see row 3 (already region-coarse).
  EXPECT_EQ(Lookup("Marseille", 1), (std::vector<RowId>{}));
  EXPECT_EQ(Lookup("Versailles", 1), (std::vector<RowId>{2}));
}

TEST_F(MultiResIndexTest, RangeLookupOnIntervalDomain) {
  ColumnDef salary = ColumnDef::Degradable(
      "salary", SalaryDomain(),
      *AttributeLcp::Make({{0, kMicrosPerDay}, {1, kMicrosPerMonth}}));
  MultiResolutionIndex index(salary, pool_.get());
  ASSERT_TRUE(index.Init().ok());
  for (RowId r = 1; r <= 10; ++r) {
    ASSERT_TRUE(index.OnInsert(r, Value::Int64(static_cast<int64_t>(r) * 500)).ok());
  }
  // Range [1000, 3000] at level 0 → rows with salary 1000..3000.
  std::vector<RowId> rids;
  ASSERT_TRUE(index
                  .LookupRange(Value::Int64(1000), Value::Int64(3000), 0,
                               [&](RowId rid) {
                                 rids.push_back(rid);
                                 return true;
                               })
                  .ok());
  std::sort(rids.begin(), rids.end());
  EXPECT_EQ(rids, (std::vector<RowId>{2, 3, 4, 5, 6}));
  // Degrade row 2 to the 1000-bucket level; a bucket query at level 1 finds
  // both accurate and degraded rows.
  ASSERT_TRUE(index.OnDegrade(2, 0, Value::Int64(1000), 1, Value::Int64(1000)).ok());
  rids.clear();
  ASSERT_TRUE(index
                  .LookupEqual(Value::Int64(1000), 1,
                               [&](RowId rid) {
                                 rids.push_back(rid);
                                 return true;
                               })
                  .ok());
  std::sort(rids.begin(), rids.end());
  EXPECT_EQ(rids, (std::vector<RowId>{2, 3}));  // 1000 and 1500
}

// --- BitmapColumnIndex ---------------------------------------------------------------

class BitmapIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    column_ = ColumnDef::Degradable("location", LocationDomain(),
                                    Fig2LocationLcp());
    index_ = std::make_unique<BitmapColumnIndex>(column_);
  }

  std::vector<RowId> Lookup(const std::string& label, int level) {
    auto bitmap = index_->LookupEqual(Value::String(label), level);
    EXPECT_TRUE(bitmap.ok());
    std::vector<RowId> rids;
    bitmap->ForEachSet([&](size_t i) { rids.push_back(i); });
    return rids;
  }

  ColumnDef column_;
  std::unique_ptr<BitmapColumnIndex> index_;
};

TEST_F(BitmapIndexTest, MirrorsMultiResolutionSemantics) {
  ASSERT_TRUE(index_->OnInsert(1, Value::String("11 Rue Lepic")).ok());
  ASSERT_TRUE(index_->OnInsert(2, Value::String("3 Av Foch")).ok());
  ASSERT_TRUE(index_->OnInsert(3, Value::String("4 Rue Breteuil")).ok());
  EXPECT_EQ(Lookup("Paris", 1), (std::vector<RowId>{1, 2}));
  EXPECT_EQ(Lookup("France", 3), (std::vector<RowId>{1, 2, 3}));

  ASSERT_TRUE(index_
                  ->OnDegrade(3, 0, Value::String("4 Rue Breteuil"), 1,
                              Value::String("Marseille"))
                  .ok());
  EXPECT_EQ(Lookup("Marseille", 1), (std::vector<RowId>{3}));
  EXPECT_EQ(Lookup("France", 3), (std::vector<RowId>{1, 2, 3}));
  EXPECT_EQ(index_->DistinctInPhase(0), 2u);
  EXPECT_EQ(index_->DistinctInPhase(1), 1u);

  ASSERT_TRUE(index_->OnDelete(3, 1, Value::String("Marseille")).ok());
  EXPECT_EQ(Lookup("France", 3), (std::vector<RowId>{1, 2}));
  EXPECT_EQ(index_->DistinctInPhase(1), 0u);
}

TEST_F(BitmapIndexTest, DomainShrinksAsDataDegrades) {
  // The paper's OLAP observation: degradation reduces distinct values, so
  // bitmap indexes get *denser* per value at coarser phases.
  const std::vector<std::string> addresses = {
      "11 Rue Lepic", "3 Av Foch", "12 Rue Royale", "4 Rue Breteuil",
      "8 Cours Mirabeau"};
  for (RowId r = 0; r < addresses.size(); ++r) {
    ASSERT_TRUE(index_->OnInsert(r + 1, Value::String(addresses[r])).ok());
  }
  EXPECT_EQ(index_->DistinctInPhase(0), 5u);  // one per address
  // Degrade all to city level.
  const std::vector<std::string> cities = {"Paris", "Paris", "Versailles",
                                           "Marseille", "Aix"};
  for (RowId r = 0; r < addresses.size(); ++r) {
    ASSERT_TRUE(index_
                    ->OnDegrade(r + 1, 0, Value::String(addresses[r]), 1,
                                Value::String(cities[r]))
                    .ok());
  }
  EXPECT_EQ(index_->DistinctInPhase(0), 0u);
  EXPECT_EQ(index_->DistinctInPhase(1), 4u);  // 4 distinct cities
  EXPECT_GT(index_->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace instantdb
