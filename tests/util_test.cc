#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "util/arena.h"
#include "util/bitmap.h"
#include "util/chacha20.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/file.h"
#include "util/histogram.h"

namespace instantdb {
namespace {

// --- coding -----------------------------------------------------------------

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  Slice in = buf;
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const std::vector<uint64_t> values = {
      0, 1, 127, 128, 16383, 16384, (1ull << 32) - 1, 1ull << 32,
      ~0ull};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in = buf;
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, ~0ull);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    uint64_t got;
    EXPECT_FALSE(GetVarint64(&in, &got)) << "cut=" << cut;
  }
}

TEST(CodingTest, VarintRandomRoundTrip) {
  Random rng(11);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextU64() >> (rng.Uniform(64));
    std::string buf;
    PutVarint64(&buf, v);
    Slice in = buf;
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Slice in = buf;
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
}

TEST(OrderedCodingTest, Int64OrderPreserved) {
  const std::vector<int64_t> values = {INT64_MIN, -1000000, -1, 0, 1, 42,
                                       1000000, INT64_MAX};
  std::vector<std::string> encoded;
  for (int64_t v : values) {
    std::string buf;
    PutOrderedInt64(&buf, v);
    encoded.push_back(buf);
  }
  EXPECT_TRUE(std::is_sorted(encoded.begin(), encoded.end()));
  for (size_t i = 0; i < values.size(); ++i) {
    Slice in = encoded[i];
    int64_t got;
    ASSERT_TRUE(GetOrderedInt64(&in, &got));
    EXPECT_EQ(got, values[i]);
  }
}

TEST(OrderedCodingTest, Int64RandomOrderProperty) {
  Random rng(5);
  for (int i = 0; i < 2000; ++i) {
    const int64_t a = static_cast<int64_t>(rng.NextU64());
    const int64_t b = static_cast<int64_t>(rng.NextU64());
    std::string ea, eb;
    PutOrderedInt64(&ea, a);
    PutOrderedInt64(&eb, b);
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST(OrderedCodingTest, DoubleOrderPreserved) {
  const std::vector<double> values = {-1e300, -42.5, -1.0, -0.0, 0.0,
                                      1e-10, 1.0, 42.5, 1e300};
  std::vector<std::string> encoded;
  for (double v : values) {
    std::string buf;
    PutOrderedDouble(&buf, v);
    encoded.push_back(buf);
  }
  for (size_t i = 1; i < encoded.size(); ++i) {
    EXPECT_LE(encoded[i - 1], encoded[i]) << "at " << i;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    Slice in = encoded[i];
    double got;
    ASSERT_TRUE(GetOrderedDouble(&in, &got));
    EXPECT_EQ(got, values[i]);
  }
}

TEST(OrderedCodingTest, StringOrderAndEscaping) {
  const std::vector<std::string> values = {
      "", std::string(1, '\0'), std::string("\0\0", 2), "a",
      std::string("a\0b", 3), "ab", "b"};
  std::vector<std::string> encoded;
  for (const auto& v : values) {
    std::string buf;
    PutOrderedString(&buf, v);
    encoded.push_back(buf);
  }
  EXPECT_TRUE(std::is_sorted(encoded.begin(), encoded.end()));
  for (size_t i = 0; i < values.size(); ++i) {
    Slice in = encoded[i];
    std::string got;
    ASSERT_TRUE(GetOrderedString(&in, &got));
    EXPECT_EQ(got, values[i]);
    EXPECT_TRUE(in.empty());
  }
}

TEST(OrderedCodingTest, StringPrefixFreeWithSuffix) {
  // A shorter string followed by a fixed suffix must not be confused with a
  // longer string: ("a", suffix) and ("a\x01", suffix) stay distinct.
  std::string e1, e2;
  PutOrderedString(&e1, "a");
  PutOrderedInt64(&e1, 1);
  PutOrderedString(&e2, std::string("a\x01", 2));
  PutOrderedInt64(&e2, 1);
  EXPECT_NE(e1, e2);
  EXPECT_LT(e1, e2);
}

// --- crc32c -----------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  char zeros[32];
  std::memset(zeros, 0, sizeof(zeros));
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8A9136AAu);

  char ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(crc32c::Value(ones, sizeof(ones)), 0x62A8AB43u);

  char seq[32];
  for (int i = 0; i < 32; ++i) seq[i] = static_cast<char>(i);
  EXPECT_EQ(crc32c::Value(seq, sizeof(seq)), 0x46DD794Eu);
}

TEST(Crc32cTest, Extend) {
  const char* data = "hello world";
  const uint32_t whole = crc32c::Value(data, 11);
  const uint32_t part = crc32c::Value(data, 5);
  const uint32_t extended = crc32c::Value(data + 5, 6, part);
  EXPECT_EQ(whole, extended);
}

TEST(Crc32cTest, MaskRoundTrip) {
  const uint32_t crc = crc32c::Value("abc", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

// --- chacha20 ---------------------------------------------------------------

TEST(ChaCha20Test, Rfc8439Vector) {
  // RFC 8439 §2.4.2 test vector.
  ChaCha20::Key key;
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i);
  ChaCha20::Nonce nonce = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::string data = plaintext;
  ChaCha20::XorStream(key, nonce, 1, data.data(), data.size());
  const unsigned char expected_first[16] = {0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68,
                                            0xf9, 0x80, 0x41, 0xba, 0x07, 0x28,
                                            0xdd, 0x0d, 0x69, 0x81};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(data[i]), expected_first[i]) << i;
  }
  // Decrypt restores the plaintext.
  ChaCha20::XorStream(key, nonce, 1, data.data(), data.size());
  EXPECT_EQ(data, plaintext);
}

TEST(ChaCha20Test, OffsetAddressingMatchesStream) {
  ChaCha20::Key key{};
  key[0] = 7;
  ChaCha20::Nonce nonce{};
  std::string whole(300, 'A');
  ChaCha20::XorStreamAt(key, nonce, 0, whole.data(), whole.size());

  // Encrypting the same logical bytes in two pieces at their offsets gives
  // identical ciphertext.
  std::string a(130, 'A'), b(170, 'A');
  ChaCha20::XorStreamAt(key, nonce, 0, a.data(), a.size());
  ChaCha20::XorStreamAt(key, nonce, 130, b.data(), b.size());
  EXPECT_EQ(whole.substr(0, 130), a);
  EXPECT_EQ(whole.substr(130), b);
}

TEST(ChaCha20Test, DifferentKeysDiffer) {
  ChaCha20::Key k1{}, k2{};
  k2[31] = 1;
  ChaCha20::Nonce nonce{};
  std::string d1(64, 'x'), d2(64, 'x');
  ChaCha20::XorStream(k1, nonce, 0, d1.data(), d1.size());
  ChaCha20::XorStream(k2, nonce, 0, d2.data(), d2.size());
  EXPECT_NE(d1, d2);
}

// --- arena ------------------------------------------------------------------

TEST(ArenaTest, AllocationsAreUsableAndAligned) {
  Arena arena;
  char* a = arena.Allocate(10);
  std::memset(a, 0xAB, 10);
  char* b = arena.Allocate(8000);  // larger than a block
  std::memset(b, 0xCD, 8000);
  char* c = arena.Allocate(1, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_EQ(static_cast<unsigned char>(a[9]), 0xABu);
  EXPECT_GT(arena.MemoryUsage(), 8000u);
}

TEST(ArenaTest, ManySmallAllocations) {
  Arena arena;
  std::vector<char*> ptrs;
  for (int i = 0; i < 10000; ++i) {
    char* p = arena.Allocate(16);
    std::memset(p, i & 0xFF, 16);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(ptrs[i][0]),
              static_cast<unsigned char>(i & 0xFF));
  }
}

// --- histogram ---------------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_NEAR(h.Percentile(50), 50, 1);
  EXPECT_NEAR(h.Percentile(95), 95, 1);
}

TEST(HistogramTest, MergeAndClear) {
  Histogram a, b;
  a.Add(1);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2);
  a.Clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.Percentile(99), 0);
}

// --- bitmap -----------------------------------------------------------------

TEST(BitmapTest, SetGetClear) {
  Bitmap bm;
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(1000);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_TRUE(bm.Get(63));
  EXPECT_TRUE(bm.Get(64));
  EXPECT_TRUE(bm.Get(1000));
  EXPECT_FALSE(bm.Get(1));
  EXPECT_FALSE(bm.Get(5000));  // out of range reads as unset
  bm.Clear(64);
  EXPECT_FALSE(bm.Get(64));
  EXPECT_EQ(bm.Count(), 3u);
}

TEST(BitmapTest, CountRange) {
  Bitmap bm(256);
  for (size_t i = 0; i < 256; i += 2) bm.Set(i);
  EXPECT_EQ(bm.CountRange(0, 256), 128u);
  EXPECT_EQ(bm.CountRange(0, 1), 1u);
  EXPECT_EQ(bm.CountRange(1, 2), 0u);
  EXPECT_EQ(bm.CountRange(10, 20), 5u);
  EXPECT_EQ(bm.CountRange(63, 65), 1u);  // crosses a word boundary
  EXPECT_EQ(bm.CountRange(20, 10), 0u);
}

TEST(BitmapTest, LogicalOps) {
  Bitmap a(128), b(128);
  a.Set(1);
  a.Set(2);
  a.Set(100);
  b.Set(2);
  b.Set(100);
  b.Set(101);

  Bitmap a_and = a;
  a_and.AndWith(b);
  EXPECT_EQ(a_and.Count(), 2u);
  EXPECT_TRUE(a_and.Get(2));
  EXPECT_TRUE(a_and.Get(100));

  Bitmap a_or = a;
  a_or.OrWith(b);
  EXPECT_EQ(a_or.Count(), 4u);

  Bitmap a_not = a;
  a_not.AndNotWith(b);
  EXPECT_EQ(a_not.Count(), 1u);
  EXPECT_TRUE(a_not.Get(1));
}

TEST(BitmapTest, ForEachSetAscending) {
  Bitmap bm;
  const std::vector<size_t> positions = {3, 64, 65, 200, 511};
  for (size_t p : positions) bm.Set(p);
  std::vector<size_t> seen;
  bm.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, positions);
}

// --- file -------------------------------------------------------------------

class FileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_file_test";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(CreateDirs(dir_).ok());
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  std::string dir_;
};

TEST_F(FileTest, WriteReadRoundTrip) {
  const std::string path = dir_ + "/data.bin";
  ASSERT_TRUE(WriteStringToFile(path, "hello instantdb", true).ok());
  auto r = ReadFileToString(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello instantdb");
  auto size = GetFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 15u);
}

TEST_F(FileTest, AppendableFilePreservesContents) {
  const std::string path = dir_ + "/log";
  {
    auto f = NewAppendableFile(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("one").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  {
    auto f = NewAppendableFile(path);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ((*f)->size(), 3u);
    ASSERT_TRUE((*f)->Append("two").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  EXPECT_EQ(*ReadFileToString(path), "onetwo");
}

TEST_F(FileTest, RandomAccessReads) {
  const std::string path = dir_ + "/ra";
  ASSERT_TRUE(WriteStringToFile(path, "0123456789", false).ok());
  auto f = NewRandomAccessFile(path);
  ASSERT_TRUE(f.ok());
  std::string scratch;
  Slice out;
  ASSERT_TRUE((*f)->Read(3, 4, &scratch, &out).ok());
  EXPECT_EQ(out, "3456");
  // Read past EOF returns the available suffix.
  ASSERT_TRUE((*f)->Read(8, 10, &scratch, &out).ok());
  EXPECT_EQ(out, "89");
}

TEST_F(FileTest, OverwriteRangeZeroesBytes) {
  const std::string path = dir_ + "/erase";
  ASSERT_TRUE(WriteStringToFile(path, "SENSITIVE-DATA-HERE", true).ok());
  ASSERT_TRUE(OverwriteRange(path, 0, 9).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->substr(9), "-DATA-HERE");
  for (int i = 0; i < 9; ++i) EXPECT_EQ((*contents)[i], '\0');
}

TEST_F(FileTest, ListAndRemove) {
  ASSERT_TRUE(WriteStringToFile(dir_ + "/a", "1", false).ok());
  ASSERT_TRUE(WriteStringToFile(dir_ + "/b", "2", false).ok());
  ASSERT_TRUE(CreateDirIfMissing(dir_ + "/sub").ok());
  ASSERT_TRUE(WriteStringToFile(dir_ + "/sub/c", "3", false).ok());
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 3u);
  ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  EXPECT_FALSE(FileExists(dir_));
}

}  // namespace
}  // namespace instantdb
