// Fuzzy checkpoints under the asynchronous commit pipeline (ISSUE 4):
// incremental per-partition checkpoints run concurrently with multi-
// threaded durable WriteBatch ingest and a background degrader, and a
// crash image taken afterwards must recover to exactly the pre-crash
// state — no lost rows (every acked commit survives) and no resurrected
// ones (no row, value or phase more accurate than the live state). The
// matrix covers {1, 4} WAL streams × every privacy mode; the test is in
// scripts/verify.sh's TSan list because it drives the group-commit
// watermark, the checkpoint worker pool and the degradation pool against
// each other.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <tuple>
#include <vector>

#include "catalog/builtin_domains.h"
#include "common/strings.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "util/file.h"

namespace instantdb {
namespace {

/// One row's recovered identity: id, user, stored location value, phase.
struct RowState {
  RowId row_id;
  std::string user;
  std::string location;
  int phase;

  bool operator==(const RowState& other) const {
    return row_id == other.row_id && user == other.user &&
           location == other.location && phase == other.phase;
  }
  bool operator<(const RowState& other) const { return row_id < other.row_id; }
};

std::vector<RowState> DumpTable(Table* table) {
  std::vector<RowState> rows;
  EXPECT_TRUE(table
                  ->ScanRows([&](const RowView& view) {
                    rows.push_back(
                        {view.row_id, view.values[0].ToString(),
                         view.values[1].is_null() ? "<null>"
                                                  : view.values[1].ToString(),
                         view.phases[0]});
                    return true;
                  })
                  .ok());
  std::sort(rows.begin(), rows.end());
  return rows;
}

void CopyTree(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  std::filesystem::copy(from, to, std::filesystem::copy_options::recursive);
}

class CheckpointFuzzyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, WalPrivacyMode>> {
 protected:
  uint32_t streams() const { return std::get<0>(GetParam()); }
  WalPrivacyMode mode() const { return std::get<1>(GetParam()); }

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idb_ckpt_fuzzy_test";
    clone_ = dir_ + "_clone";
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    ASSERT_TRUE(RemoveDirRecursive(clone_).ok());
  }
  void TearDown() override {
    RemoveDirRecursive(dir_).ok();
    RemoveDirRecursive(clone_).ok();
  }

  DbOptions Options(const std::string& path, VirtualClock* clock) {
    DbOptions options;
    options.path = path;
    options.clock = clock;
    options.partitions = 4;
    options.degradation.worker_threads = 2;
    options.degradation.step_batch_limit = 16;  // many small steps
    options.wal.privacy_mode = mode();
    options.wal.wal_streams = streams();
    options.wal.segment_bytes = 4096;  // frequent rollover + retirement
    return options;
  }

  std::string dir_;
  std::string clone_;
};

TEST_P(CheckpointFuzzyTest, ConcurrentCheckpointsLoseAndResurrectNothing) {
  constexpr int kWriters = 4;
  constexpr int kBatchesPerWriter = 8;
  constexpr int kRowsPerBatch = 8;
  constexpr uint64_t kTotalRows =
      uint64_t{kWriters} * kBatchesPerWriter * kRowsPerBatch;

  VirtualClock clock(0);
  DbOptions options = Options(dir_, &clock);
  options.degradation.background_thread = true;
  // Third checkpoint driver: the maintenance daemon's cadence fires on
  // every 10-minute Advance below, so its checkpoints race the manual ones
  // AND the ingest/degrader threads.
  options.maintenance.enabled = true;
  options.maintenance.checkpoint_interval = kMicrosPerMinute;
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);

  // Two phases (address for an hour, city forever): tuples never expire,
  // so every acked insert must survive recovery with its user intact.
  auto lcp = AttributeLcp::Make({{0, kMicrosPerHour}, {1, kForever}});
  ASSERT_TRUE(lcp.ok());
  auto schema = Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), *lcp)});
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(db->CreateTable("pings", *schema).ok());

  std::atomic<int> errors{0};
  std::mutex error_mu;
  std::string first_error;  // first failing status, for the assert below
  auto record_error = [&](const Status& status, const char* who) {
    ++errors;
    std::lock_guard<std::mutex> lock(error_mu);
    if (first_error.empty()) {
      first_error = std::string(who) + ": " + status.ToString();
    }
  };
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      WriteOptions durable;
      durable.sync = true;  // every commit demands the group-commit watermark
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        WriteBatch batch;
        for (int r = 0; r < kRowsPerBatch; ++r) {
          batch.Insert("pings",
                       {Value::String(StringPrintf("u%d.%d.%d", t, b, r)),
                        Value::String("11 Rue Lepic")});
        }
        Status status = db->Write(&batch, durable);
        for (int retry = 0; !status.ok() && status.IsAborted() && retry < 100;
             ++retry) {
          status = db->Write(&batch, durable);
        }
        if (!status.ok()) {
          record_error(status, "writer");
          return;
        }
      }
    });
  }

  // Checkpoint while ingest commits and the degrader steps: fuzzy begin
  // positions + dirty-partition skipping race live appends and applies.
  for (int i = 0; i < 12; ++i) {
    clock.Advance(10 * kMicrosPerMinute);  // spreads phase-0 deadlines out
    Status ckpt = db->Checkpoint();
    if (!ckpt.ok()) record_error(ckpt, "checkpoint");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& t : writers) t.join();

  // Let the degrader drain what is due, then quiesce so the live dump is a
  // stable reference state.
  clock.Advance(kMicrosPerHour);
  Table* table = db->GetTable("pings");
  for (int i = 0; i < 5000 && table->NextDeadline() != kForever; ++i) {
    clock.WakeAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  db->degradation()->Stop();
  ASSERT_EQ(errors.load(), 0) << first_error;

  const Database::Stats stats = db->stats();
  EXPECT_GE(stats.checkpoints, 12u);
  // Watermark bookkeeping: every durability demand either led a sync or was
  // absorbed by another leader's.
  EXPECT_EQ(stats.wal.sync_requests,
            stats.wal.syncs + stats.wal.commits_absorbed);

  const std::vector<RowState> before = DumpTable(table);
  ASSERT_EQ(before.size(), kTotalRows);

  // Crash image: sync the WAL and snapshot the directory while the source
  // stays open — nothing below relies on a clean shutdown checkpoint. The
  // daemon must stop first (Stop joins, so any in-flight cadence checkpoint
  // drains): a checkpoint scrubbing segments mid-copy would hand CopyTree a
  // vanishing file list.
  db->maintenance()->Stop();
  ASSERT_TRUE(db->wal()->Sync().ok());
  CopyTree(dir_, clone_);

  VirtualClock recovered_clock(clock.NowMicros());
  auto recovered = Database::Open(Options(clone_, &recovered_clock));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // Exact state equality is simultaneously the no-lost-rows check (every
  // acked row present with its user) and the no-resurrection check (no
  // extra row, no value or phase more accurate than the live state).
  EXPECT_EQ(DumpTable((*recovered)->GetTable("pings")), before);
}

TEST_P(CheckpointFuzzyTest, MostlyCleanDatabaseFlushesOnlyDirtyPartitions) {
  VirtualClock clock(0);
  auto opened = Database::Open(Options(dir_, &clock));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  auto lcp = AttributeLcp::Make({{0, kMicrosPerHour}, {1, kForever}});
  ASSERT_TRUE(lcp.ok());
  auto schema = Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), *lcp)});
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(db->CreateTable("pings", *schema).ok());

  // One WriteBatch is partition-affine: exactly one of the 4 partitions is
  // dirty, the rest must be skipped as clean.
  WriteBatch batch;
  for (int r = 0; r < 8; ++r) {
    batch.Insert("pings", {Value::String(StringPrintf("u%d", r)),
                           Value::String("11 Rue Lepic")});
  }
  ASSERT_TRUE(db->Write(&batch).ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  Database::Stats stats = db->stats();
  EXPECT_EQ(stats.checkpoint_partitions_flushed, 1u);
  EXPECT_EQ(stats.checkpoint_partitions_clean, 3u);

  // Nothing changed since: the second checkpoint flushes nothing at all.
  ASSERT_TRUE(db->Checkpoint().ok());
  stats = db->stats();
  EXPECT_EQ(stats.checkpoint_partitions_flushed, 1u);
  EXPECT_EQ(stats.checkpoint_partitions_clean, 7u);

  // The skipped flushes must not weaken recovery: crash-recover the image
  // and find every row.
  ASSERT_TRUE(db->wal()->Sync().ok());
  CopyTree(dir_, clone_);
  VirtualClock recovered_clock(clock.NowMicros());
  auto recovered = Database::Open(Options(clone_, &recovered_clock));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->GetTable("pings")->live_rows(), 8u);
}

INSTANTIATE_TEST_SUITE_P(
    StreamsByMode, CheckpointFuzzyTest,
    ::testing::Combine(::testing::Values(1u, 4u),
                       ::testing::Values(WalPrivacyMode::kPlain,
                                         WalPrivacyMode::kScrub,
                                         WalPrivacyMode::kEncryptedEpoch)),
    [](const auto& info) {
      std::string name = "S" + std::to_string(std::get<0>(info.param));
      switch (std::get<1>(info.param)) {
        case WalPrivacyMode::kPlain: return name + "Plain";
        case WalPrivacyMode::kScrub: return name + "Scrub";
        case WalPrivacyMode::kEncryptedEpoch: return name + "EncryptedEpoch";
      }
      return name;
    });

}  // namespace
}  // namespace instantdb
