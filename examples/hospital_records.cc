// Hospital admissions: multi-attribute degradation vs. k-anonymity.
//
// "People give personal data explicitly all the time to insurance
// companies, hospitals, banks…" (paper §I). An admissions table keeps the
// patient identity (stable — that is the point of a medical record) while
// the sensitive attributes degrade on independent schedules. The same
// dataset is also pushed through the Mondrian k-anonymizer to contrast the
// two tools: anonymization cuts the identity link and rewrites history
// once; degradation keeps identity and fades detail over time.

#include <cstdio>

#include "common/strings.h"
#include "instantdb/instantdb.h"

using namespace instantdb;

namespace {

std::shared_ptr<const DomainHierarchy> DiagnosisDomain() {
  GeneralizationTree::Builder builder("diagnosis");
  builder.AddPath("Illness/Cardiovascular/Hypertension/essential hypertension");
  builder.AddPath("Illness/Cardiovascular/Hypertension/secondary hypertension");
  builder.AddPath("Illness/Cardiovascular/Arrhythmia/atrial fibrillation");
  builder.AddPath("Illness/Respiratory/Asthma/allergic asthma");
  builder.AddPath("Illness/Respiratory/Asthma/occupational asthma");
  builder.AddPath("Illness/Respiratory/Infection/bacterial pneumonia");
  auto tree = builder.Build();
  (*tree)->SetLevelNames({"DIAGNOSIS", "CONDITION", "SYSTEM", "ILLNESS"});
  return *tree;
}

std::shared_ptr<const DomainHierarchy> AgeDomain() {
  auto hierarchy = IntervalHierarchy::Make("age", 0, 120, {5, 20, 120});
  (*hierarchy)->SetLevelNames({"EXACT", "RANGE5", "RANGE20", "ANY"});
  return *hierarchy;
}

}  // namespace

int main() {
  VirtualClock clock;
  DbOptions options;
  options.path = "/tmp/instantdb_hospital";
  options.clock = &clock;
  RemoveDirRecursive(options.path).ok();
  auto db = Database::Open(options);
  if (!db.ok()) return 1;

  auto diagnosis = DiagnosisDomain();
  auto age = AgeDomain();
  // Diagnosis: exact for a week (treatment), condition for a year
  // (follow-up), body system forever (research).
  auto diagnosis_lcp = *AttributeLcp::Make(
      {{0, 7 * kMicrosPerDay}, {1, 365 * kMicrosPerDay}, {2, kForever}});
  // Age: exact for a month, 5-year band for a year, 20-year band forever.
  auto age_lcp = *AttributeLcp::Make(
      {{0, 30 * kMicrosPerDay}, {1, 365 * kMicrosPerDay}, {2, kForever}});

  auto schema = Schema::Make(
      {ColumnDef::Stable("patient", ValueType::kString),
       ColumnDef::Degradable("diagnosis", diagnosis, diagnosis_lcp),
       ColumnDef::Degradable("age", age, age_lcp)});
  (*db)->CreateTable("admissions", *schema).status();

  const auto* tree = static_cast<const GeneralizationTree*>(diagnosis.get());
  const auto diagnoses = tree->LabelsAtLevel(0);
  Random rng(11);
  std::vector<MondrianRecord> mondrian_input;
  for (int i = 0; i < 60; ++i) {
    const Value diag = Value::String(diagnoses[rng.Uniform(diagnoses.size())]);
    const Value patient_age = Value::Int64(rng.UniformRange(18, 95));
    (*db)->Insert("admissions", {Value::String(StringPrintf("patient-%03d", i)),
                                 diag, patient_age}).status();
    mondrian_input.push_back(MondrianRecord{{diag, patient_age}});
  }

  Session session(db->get());

  std::printf("== Fresh data: clinicians see exact values ==\n");
  auto fresh = session.Execute(
      "SELECT patient, diagnosis, age FROM admissions WHERE age < 40");
  if (fresh.ok()) {
    std::printf("%zu patients under 40 with exact diagnosis/age visible\n",
                fresh->rows.size());
  }

  // Two months later: follow-up care works at CONDITION/RANGE5; identity
  // intact, so the ward can still contact the right patients.
  clock.Advance(60 * kMicrosPerDay);
  (*db)->RunDegradationOnce().status().ok();
  session.Execute(
      "DECLARE PURPOSE FOLLOWUP SET ACCURACY LEVEL CONDITION FOR "
      "admissions.diagnosis, RANGE5 FOR admissions.age").status();
  auto followup = session.Execute(
      "SELECT patient, diagnosis, age FROM admissions "
      "WHERE diagnosis = 'Hypertension'");
  if (followup.ok()) {
    std::printf("\n== 2 months later, purpose FOLLOWUP ==\n%s",
                followup->ToString().c_str());
  }

  // Research purpose at SYSTEM/RANGE20 level.
  session.Execute(
      "DECLARE PURPOSE RESEARCH SET ACCURACY LEVEL SYSTEM FOR "
      "admissions.diagnosis, RANGE20 FOR admissions.age").status();
  auto research = session.Execute(
      "SELECT diagnosis, COUNT(*) FROM admissions GROUP BY diagnosis");
  if (research.ok()) {
    std::printf("\n== Research view (SYSTEM accuracy) ==\n%s",
                research->ToString().c_str());
  }

  // The k-anonymity alternative on the same data: one-shot rewrite that
  // generalizes until every (diagnosis, age) class has >= k members.
  std::printf("\n== Mondrian k-anonymity on the same 60 admissions ==\n");
  std::printf("%-4s | %-11s | %-10s | classes\n", "k", "avg diag lvl",
              "avg age lvl");
  for (size_t k : {2, 5, 10}) {
    Mondrian mondrian({diagnosis, age}, k);
    auto result = mondrian.Anonymize(mondrian_input);
    if (!result.ok()) continue;
    std::printf("%-4zu | %-11.2f | %-10.2f | %zu\n", k, result->avg_level[0],
                result->avg_level[1], result->num_classes);
  }
  std::printf(
      "\nContrast: anonymization pays its information loss immediately and\n"
      "severs the identity link; degradation keeps the donor's identity for\n"
      "user-facing service and loses detail only as it ages.\n");
  return 0;
}
