// Search-query log with timely degradation.
//
// The paper's introduction points at the AOL search-log disclosure: 657,000
// users' queries were published with insufficient anonymization. This
// example keeps a search log useful for service improvement while making
// the sensitive part (what exactly was searched) degrade from the precise
// query topic to a broad category, and demonstrates the donor's "right to
// be forgotten" (immediate secure delete).

#include <cstdio>

#include "common/strings.h"
#include "instantdb/instantdb.h"

using namespace instantdb;

namespace {

std::shared_ptr<const DomainHierarchy> TopicDomain() {
  GeneralizationTree::Builder builder("topic");
  builder.AddPath("Any/Health/Cardiology/heart palpitations");
  builder.AddPath("Any/Health/Cardiology/blood pressure diet");
  builder.AddPath("Any/Health/Oncology/melanoma symptoms");
  builder.AddPath("Any/Finance/Loans/payday loan rates");
  builder.AddPath("Any/Finance/Loans/consolidate credit card debt");
  builder.AddPath("Any/Finance/Tax/freelance tax deadline");
  builder.AddPath("Any/Travel/Flights/cheap flights lisbon");
  builder.AddPath("Any/Travel/Hotels/hotels near louvre");
  auto tree = builder.Build();
  (*tree)->SetLevelNames({"QUERY", "TOPIC", "CATEGORY", "ANY"});
  return *tree;
}

}  // namespace

int main() {
  VirtualClock clock;
  DbOptions options;
  options.path = "/tmp/instantdb_query_log";
  options.clock = &clock;
  RemoveDirRecursive(options.path).ok();
  auto db = Database::Open(options);
  if (!db.ok()) return 1;

  auto topic = TopicDomain();
  // Precise query text for a day (spell-correction, abuse detection), topic
  // for a week (ranking experiments), category for a quarter (capacity
  // planning), then gone.
  auto lcp = *AttributeLcp::Make({{0, kMicrosPerDay},
                                  {1, 7 * kMicrosPerDay},
                                  {2, 90 * kMicrosPerDay}});
  auto schema = Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Stable("ts", ValueType::kTimestamp),
       ColumnDef::Degradable("query", topic, lcp)});
  (*db)->CreateTable("searches", *schema).status();

  Session session(db->get());
  const char* kUsers[] = {"u4417749", "u711391", "u98280"};
  const auto* tree = static_cast<const GeneralizationTree*>(topic.get());
  const auto queries = tree->LabelsAtLevel(0);
  Random rng(7);
  for (int day = 0; day < 10; ++day) {
    for (int q = 0; q < 30; ++q) {
      (*db)->Insert("searches",
                    {Value::String(kUsers[rng.Uniform(3)]),
                     Value::Timestamp(clock.NowMicros()),
                     Value::String(queries[rng.Uniform(queries.size())])})
          .status();
    }
    clock.Advance(kMicrosPerDay);
    (*db)->RunDegradationOnce().status().ok();
  }

  // Fresh queries (level 0) — only the last day is this accurate.
  auto exact = session.Execute("SELECT COUNT(*) FROM searches");
  std::printf("searches visible at full accuracy (last 24h only): %s",
              exact.ok() ? exact->ToString().c_str() : "error\n");

  // Ranking team works at TOPIC accuracy.
  session.Execute("DECLARE PURPOSE RANKING SET ACCURACY LEVEL TOPIC "
                  "FOR searches.query").status();
  auto topics = session.Execute(
      "SELECT query, COUNT(*) FROM searches GROUP BY query");
  if (topics.ok()) {
    std::printf("\nRanking view (TOPIC accuracy, last week):\n%s",
                topics->ToString().c_str());
  }

  // Capacity planning at CATEGORY accuracy sees everything still stored.
  session.Execute("DECLARE PURPOSE CAPACITY SET ACCURACY LEVEL CATEGORY "
                  "FOR searches.query").status();
  auto categories = session.Execute(
      "SELECT query, COUNT(*) FROM searches GROUP BY query");
  if (categories.ok()) {
    std::printf("\nCapacity view (CATEGORY accuracy, everything):\n%s",
                categories->ToString().c_str());
  }

  // A user invokes their right to erasure: view-style delete at CATEGORY
  // accuracy removes every remaining trace, stable part included, and the
  // storage layer scrubs the bytes.
  auto erased = session.Execute(
      "DELETE FROM searches WHERE user = 'u4417749'");
  std::printf("\nuser u4417749 erased: %llu rows (secure, immediate)\n",
              erased.ok() ? static_cast<unsigned long long>(erased->affected_rows)
                          : 0ULL);
  auto remaining = session.Execute(
      "SELECT query, COUNT(*) FROM searches GROUP BY query");
  if (remaining.ok()) {
    std::printf("\nAfter erasure:\n%s", remaining->ToString().c_str());
  }
  return 0;
}
