// Quickstart: the InstantDB lifecycle in one file.
//
// Creates a database whose `location` attribute follows the paper's Fig. 2
// Life Cycle Policy, ingests location pings through the scalable write path
// (WriteBatch group commit + a prepared INSERT), fast-forwards a virtual
// clock through the policy, and queries at different declared purposes —
// both materialized (Session::Execute) and streamed row-at-a-time
// (Session::ExecuteCursor).

#include <cstdio>

#include "common/strings.h"
#include "instantdb/instantdb.h"

using namespace instantdb;  // examples only; library code never does this

int main() {
  // 1. Open a database driven by a virtual clock so we can fast-forward
  //    through hours and months (real deployments pass no clock and get
  //    wall time + a background degrader thread).
  VirtualClock clock;
  DbOptions options;
  options.path = "/tmp/instantdb_quickstart";
  options.clock = &clock;
  RemoveDirRecursive(options.path).ok();
  auto db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. A table with a stable identity column and a degradable location.
  //    The LCP: accurate address for 1 hour -> city for 1 day -> region for
  //    a month -> country for a month -> gone.
  auto schema = Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp())});
  (*db)->CreateTable("pings", *schema).status();

  Session session(db->get());

  // Bulk ingest: stage rows in a WriteBatch and commit them atomically
  // through one transaction and one WAL append/sync (group commit).
  WriteBatch batch;
  batch.Insert("pings", {Value::String("alice"), Value::String("11 Rue Lepic")});
  batch.Insert("pings", {Value::String("bob"), Value::String("4 Rue Breteuil")});
  if (Status s = (*db)->Write(&batch); !s.ok()) {
    std::fprintf(stderr, "batch write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("WriteBatch committed %zu rows (first row id %llu)\n\n",
              batch.size(),
              static_cast<unsigned long long>(batch.row_ids()[0]));

  // Hot-loop ingest: parse the INSERT once, bind `?` parameters per row.
  auto prepared = session.Prepare("INSERT INTO pings VALUES (?, ?)");
  if (prepared.ok()) {
    const std::pair<const char*, const char*> more[] = {
        {"carol", "3 Av Foch"}, {"dave", "8 Cours Mirabeau"}};
    for (const auto& [user, address] : more) {
      (*prepared)->Bind(0, Value::String(user)).ok();
      (*prepared)->Bind(1, Value::String(address)).ok();
      (*prepared)->Execute().status().ok();
    }
  }

  auto show = [&](const char* when, const char* sql) {
    auto result = session.Execute(sql);
    std::printf("-- %s\n   %s\n", when, sql);
    if (result.ok()) {
      std::printf("%s\n", result->ToString().c_str());
    } else {
      std::printf("   error: %s\n\n", result.status().ToString().c_str());
    }
  };

  // 3. Immediately after insertion: full accuracy available. Large results
  //    stream batch-at-a-time through a cursor instead of materializing;
  //    display strings render lazily, only because we print them here.
  {
    auto cursor = session.ExecuteCursor("SELECT user, location FROM pings");
    if (cursor.ok()) {
      std::printf("-- t = 0, streamed through a Cursor\n");
      CursorRow row;
      while (true) {
        auto more = (*cursor)->Next(&row);
        if (!more.ok() || !*more) break;
        std::printf("   %s @ %s\n", row.display()[0].c_str(),
                    row.display()[1].c_str());
      }
      std::printf("   (%llu rows)\n\n",
                  static_cast<unsigned long long>((*cursor)->rows_returned()));
    }
  }
  show("t = 0 (full accuracy)", "SELECT user, location FROM pings");

  // 4. One hour later the degrader rewrites addresses to cities and
  //    physically erases the accurate values (store segments, WAL, index).
  clock.Advance(kMicrosPerHour);
  (*db)->RunDegradationOnce().status().ok();
  show("t = 1h (strict semantics: level-0 queries see nothing)",
       "SELECT user, location FROM pings");

  session.Execute("DECLARE PURPOSE GEO SET ACCURACY LEVEL CITY "
                  "FOR pings.location").status();
  show("t = 1h, purpose GEO (city accuracy)",
       "SELECT user, location FROM pings");

  // 5. A month later only regions/countries remain.
  clock.Advance(kMicrosPerDay + kMicrosPerMonth);
  (*db)->RunDegradationOnce().status().ok();
  session.Execute("DECLARE PURPOSE NATL SET ACCURACY LEVEL COUNTRY "
                  "FOR pings.location").status();
  show("t = 1 month+, purpose NATL (country accuracy)",
       "SELECT user, location FROM pings WHERE location LIKE '%France%'");

  // 6. After the final phase the tuples disappear entirely.
  clock.Advance(2 * kMicrosPerMonth);
  (*db)->RunDegradationOnce().status().ok();
  show("t = 3 months (tuples expired)",
       "SELECT user, location FROM pings");

  const auto stats = (*db)->GetTable("pings")->stats();
  std::printf("degradation steps=%llu, values degraded=%llu, "
              "values removed=%llu, tuples expired=%llu\n",
              static_cast<unsigned long long>(stats.degrade_steps),
              static_cast<unsigned long long>(stats.values_degraded),
              static_cast<unsigned long long>(stats.values_removed),
              static_cast<unsigned long long>(stats.tuples_expired));
  return 0;
}
