// Location privacy: the paper's motivating scenario in full.
//
// "Implicitly, cell phones give location information … The data ends up in
// a database somewhere, where it can be queried for various purposes."
//
// This example reproduces the paper's three figures programmatically
// (generalization tree, attribute LCP, tuple LCP), then runs a fleet of
// simulated phones for a week and reports how the amount of accurate
// location data exposed to an attacker shrinks hour by hour, compared to a
// traditional retention database.

#include <cstdio>

#include "common/strings.h"
#include "instantdb/instantdb.h"

using namespace instantdb;

int main() {
  // --- Fig. 1: the generalization tree of the location domain ------------
  auto domain = LocationDomain();
  const auto* tree = static_cast<const GeneralizationTree*>(domain.get());
  std::printf("Fig. 1 — generalization tree of the location domain:\n%s\n",
              tree->ToAsciiArt().c_str());

  // --- Fig. 2: the attribute LCP ------------------------------------------
  const AttributeLcp lcp = Fig2LocationLcp();
  std::printf("Fig. 2 — location LCP: %s\n\n", lcp.ToString().c_str());

  // --- Fig. 3: the tuple LCP (location + a salary-like attribute) ---------
  const AttributeLcp salary_lcp =
      *AttributeLcp::Make({{0, kMicrosPerDay}, {1, kMicrosPerMonth}});
  const TupleLcp tuple_lcp = TupleLcp::Make({&lcp, &salary_lcp});
  std::printf("Fig. 3 — tuple LCP (location x salary): %s\n\n",
              tuple_lcp.ToString().c_str());

  // --- A week of phone pings ----------------------------------------------
  VirtualClock clock;
  DbOptions options;
  options.path = "/tmp/instantdb_location_privacy";
  options.clock = &clock;
  RemoveDirRecursive(options.path).ok();
  auto db = Database::Open(options);
  if (!db.ok()) return 1;

  auto schema = Schema::Make(
      {ColumnDef::Stable("phone", ValueType::kString),
       ColumnDef::Stable("ts", ValueType::kTimestamp),
       ColumnDef::Degradable("location", domain, lcp)});
  (*db)->CreateTable("pings", *schema).status();

  Random rng(42);
  const auto addresses = tree->LabelsAtLevel(0);
  uint64_t inserted = 0;
  std::printf("hour | live tuples | accurate | city | region | country\n");
  std::printf("-----+-------------+----------+------+--------+--------\n");
  for (int hour = 0; hour < 7 * 24; ++hour) {
    // ~12 pings per hour across 4 phones.
    for (int p = 0; p < 12; ++p) {
      const std::string phone = StringPrintf("phone-%llu",
          static_cast<unsigned long long>(rng.Uniform(4)));
      const std::string& addr = addresses[rng.Uniform(addresses.size())];
      (*db)->Insert("pings", {Value::String(phone),
                              Value::Timestamp(clock.NowMicros()),
                              Value::String(addr)}).status();
      ++inserted;
    }
    clock.Advance(kMicrosPerHour);
    (*db)->RunDegradationOnce().status().ok();

    if (hour % 24 != 23) continue;
    // Count values per accuracy phase by scanning.
    size_t per_phase[5] = {0, 0, 0, 0, 0};
    size_t live = 0;
    (*db)->GetTable("pings")->ScanRows([&](const RowView& view) {
      ++live;
      ++per_phase[view.phases[0] <= 4 ? view.phases[0] : 4];
      return true;
    }).ok();
    std::printf("%4d | %11zu | %8zu | %4zu | %6zu | %7zu\n", hour + 1, live,
                per_phase[0], per_phase[1], per_phase[2], per_phase[3]);
  }

  std::printf("\n%llu pings inserted over a week.\n",
              static_cast<unsigned long long>(inserted));
  std::printf("Exposure: at any instant at most ~1 hour of accurate "
              "addresses exist; a traditional retention DB with a 1-year "
              "limit would expose all %llu.\n",
              static_cast<unsigned long long>(inserted));

  // --- Purpose-driven querying --------------------------------------------
  Session session(db->get());
  session.Execute("DECLARE PURPOSE TRAFFIC SET ACCURACY LEVEL CITY "
                  "FOR pings.location").status();
  auto by_city = session.Execute(
      "SELECT location, COUNT(*) FROM pings GROUP BY location");
  if (by_city.ok()) {
    std::printf("\nTraffic service (CITY accuracy):\n%s\n",
                by_city->ToString().c_str());
  }
  session.Execute("DECLARE PURPOSE STATS SET ACCURACY LEVEL REGION "
                  "FOR pings.location").status();
  auto by_region = session.Execute(
      "SELECT location, COUNT(*) FROM pings GROUP BY location");
  if (by_region.ok()) {
    std::printf("Regional statistics (REGION accuracy):\n%s\n",
                by_region->ToString().c_str());
  }
  return 0;
}
