// B3 (paper benefit iii — increased usability w.r.t. applications):
// degradation vs. limited retention vs. anonymization for a mix of service
// purposes that need different accuracies.
//
// Metric: fraction of a 60-day event history each purpose can still query.
// Retention is all-or-nothing; degradation serves coarse purposes from the
// full history while accurate purposes see only the fresh window; Mondrian
// k-anonymity keeps everything but pays an up-front information loss and,
// crucially, severs the donor identity that user-facing services need.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "support/bench_util.h"

using namespace instantdb;
using bench::TablePrinter;

namespace {

void RunUsability() {
  constexpr int kDays = 60;
  constexpr int kPerDay = 50;
  const size_t total = static_cast<size_t>(kDays) * kPerDay;

  // Degradation: address 1 day, city 1 week, region 3 months.
  auto degradation_lcp = *AttributeLcp::Make(
      {{0, kMicrosPerDay}, {1, 7 * kMicrosPerDay}, {2, 90 * kMicrosPerDay}});
  auto retention_week = AttributeLcp::Retention(7 * kMicrosPerDay);
  auto retention_month = AttributeLcp::Retention(30 * kMicrosPerDay);

  struct PolicyRun {
    std::string name;
    AttributeLcp lcp;
    size_t visible[3];  // rows visible at ADDRESS / CITY / REGION purposes
  };
  std::vector<PolicyRun> runs = {
      {"degradation", degradation_lcp, {0, 0, 0}},
      {"retention 1 week", retention_week, {0, 0, 0}},
      {"retention 1 month", retention_month, {0, 0, 0}},
  };

  for (PolicyRun& run : runs) {
    VirtualClock clock;
    auto test = bench::OpenFreshDb("usability", &clock);
    auto workload = bench::MakePingWorkload(run.lcp, 3);
    test.db->CreateTable("pings", workload.schema).status();
    for (int day = 0; day < kDays; ++day) {
      clock.Advance(kMicrosPerDay);
      test.db->RunDegradationOnce().status().ok();
      // Insert after the daily degradation pass so the last day's events
      // are still inside their accurate window at query time.
      bench::InsertPings(test.db.get(), &clock, workload, "pings", kPerDay, 0,
                         0.8, day);
    }
    Session session(test.db.get());
    const char* kLevels[3] = {"ADDRESS", "CITY", "REGION"};
    for (int purpose = 0; purpose < 3; ++purpose) {
      session.Execute(StringPrintf(
          "DECLARE PURPOSE P%d SET ACCURACY LEVEL %s FOR pings.location",
          purpose, kLevels[purpose])).status();
      // COUNT(location) references the degradable column, so the strict
      // computability semantics (rows coarser than the purpose are
      // invisible) apply.
      auto result = session.Execute("SELECT COUNT(location) FROM pings");
      run.visible[purpose] =
          result.ok() && !result->rows.empty()
              ? static_cast<size_t>(result->rows[0][0].int64())
              : 0;
    }
  }

  TablePrinter table({"policy", "ADDRESS purpose", "CITY purpose",
                      "REGION purpose", "identity kept"});
  for (const PolicyRun& run : runs) {
    table.AddRow({run.name,
                  StringPrintf("%zu (%.0f%%)", run.visible[0],
                               100.0 * run.visible[0] / total),
                  StringPrintf("%zu (%.0f%%)", run.visible[1],
                               100.0 * run.visible[1] / total),
                  StringPrintf("%zu (%.0f%%)", run.visible[2],
                               100.0 * run.visible[2] / total),
                  "yes"});
  }

  // Anonymization baseline: same events, Mondrian over (location, day).
  {
    auto domain = SyntheticLocationDomain(3, 3, 3, 3);
    const auto* tree = static_cast<const GeneralizationTree*>(domain.get());
    // Widths must nest (each divides the next): ~week, month, everything.
    auto day_domain = *IntervalHierarchy::Make("day", 0, kDays, {6, 30, 60});
    ZipfGenerator zipf(tree->leaf_count(), 0.8, 3);
    std::vector<MondrianRecord> records(total);
    Random rng(5);
    for (size_t i = 0; i < total; ++i) {
      records[i].quasi_identifiers = {
          Value::String(*tree->LeafLabel(static_cast<int64_t>(zipf.Next()))),
          Value::Int64(static_cast<int64_t>(i / kPerDay))};
    }
    for (size_t k : {5, 25}) {
      Mondrian mondrian({domain, day_domain}, k);
      auto result = mondrian.Anonymize(records);
      if (!result.ok()) continue;
      // A record is usable for a purpose if its generalized location level
      // is at or below the purpose's level.
      size_t usable[3] = {0, 0, 0};
      for (const auto& record : result->records) {
        for (int purpose = 0; purpose < 3; ++purpose) {
          if (record.levels[0] <= purpose) ++usable[purpose];
        }
      }
      table.AddRow({StringPrintf("mondrian k=%zu", k),
                    StringPrintf("%zu (%.0f%%)", usable[0],
                                 100.0 * usable[0] / total),
                    StringPrintf("%zu (%.0f%%)", usable[1],
                                 100.0 * usable[1] / total),
                    StringPrintf("%zu (%.0f%%)", usable[2],
                                 100.0 * usable[2] / total),
                    "no"});
    }
  }
  table.Print(
      "B3: rows answerable per purpose after 60 days (3000 events; "
      "degradation LCP: address 1d -> city 1w -> region 90d)");
  std::printf(
      "\nShape check: retention serves accurate purposes inside its TTL but\n"
      "nothing outside; degradation serves each purpose from exactly the\n"
      "window its accuracy needs; anonymization trades accuracy everywhere\n"
      "and cannot serve user-oriented (identity-keeping) services at all.\n");
}

void BM_PurposeQuery(benchmark::State& state) {
  VirtualClock clock;
  auto test = bench::OpenFreshDb("usability_q", &clock);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  bench::InsertPings(test.db.get(), &clock, workload, "pings", 2000,
                     kMicrosPerSecond);
  Session session(test.db.get());
  session.Execute(
      "DECLARE PURPOSE S SET ACCURACY LEVEL CITY FOR pings.location").status();
  for (auto _ : state) {
    auto result = session.Execute("SELECT COUNT(*) FROM pings");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PurposeQuery);

}  // namespace

int main(int argc, char** argv) {
  RunUsability();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
