// B1 (paper benefit i — increased privacy w.r.t. disclosure):
// the amount of accurate personal information exposed at any instant, under
// the Fig. 2 degradation policy vs. limited retention at several TTLs vs.
// a traditional keep-forever database.
//
// Expected shape: degradation caps accurate exposure at (arrival rate ×
// first-phase duration), orders of magnitude below any realistic retention
// limit, while intermediate states keep serving coarse purposes.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "support/bench_util.h"

using namespace instantdb;
using bench::TablePrinter;

namespace {

struct Policy {
  std::string name;
  AttributeLcp lcp;
};

void RunExposure() {
  const std::vector<Policy> policies = {
      {"degradation(Fig.2)", Fig2LocationLcp()},
      {"retention 1 day", AttributeLcp::Retention(kMicrosPerDay)},
      {"retention 1 week", AttributeLcp::Retention(7 * kMicrosPerDay)},
      {"retention 1 month", AttributeLcp::Retention(kMicrosPerMonth)},
      {"keep forever", AttributeLcp::KeepForever()},
  };
  constexpr int kDays = 45;
  constexpr int kPingsPerHour = 20;

  TablePrinter table({"policy", "day 1", "day 7", "day 30", "day 45",
                      "peak accurate", "still-usable@coarse d45"});
  for (const Policy& policy : policies) {
    VirtualClock clock;
    auto test = bench::OpenFreshDb("exposure", &clock);
    auto workload = bench::MakePingWorkload(policy.lcp, 3);
    test.db->CreateTable("pings", workload.schema).status();

    size_t accurate_at[4] = {0, 0, 0, 0};
    size_t coarse_usable = 0;
    size_t peak = 0;
    int sample = 0;
    for (int hour = 0; hour < kDays * 24; ++hour) {
      clock.Advance(kMicrosPerHour);
      test.db->RunDegradationOnce().status().ok();
      // Insert after the hourly degradation pass: samples then see the
      // in-window accurate tuples (at most one hour of arrivals).
      bench::InsertPings(test.db.get(), &clock, workload, "pings",
                         kPingsPerHour, 0, 0.8, hour);
      // Sample exposure once per day (the within-day accurate window of
      // the degradation policy is bounded by its 1h first phase anyway).
      if ((hour + 1) % 24 != 0) continue;
      const int day = (hour + 1) / 24;
      size_t accurate = 0, coarse = 0;
      test.db->GetTable("pings")->ScanRows([&](const RowView& view) {
        const int phase = view.phases[0];
        if (phase == 0) {
          ++accurate;
        } else if (phase < policy.lcp.num_phases()) {
          ++coarse;
        }
        return true;
      }).ok();
      peak = std::max(peak, accurate);
      if ((day == 1 || day == 7 || day == 30 || day == kDays) && sample < 4) {
        accurate_at[sample++] = accurate;
      }
      if (day == kDays) coarse_usable = coarse;
    }
    table.AddRow({policy.name, std::to_string(accurate_at[0]),
                  std::to_string(accurate_at[1]), std::to_string(accurate_at[2]),
                  std::to_string(accurate_at[3]), std::to_string(peak),
                  std::to_string(coarse_usable)});
  }
  table.Print(
      "B1: accurate tuples exposed to disclosure over 45 days "
      "(20 inserts/hour; degradation = Fig. 2 LCP)");
  std::printf(
      "\nShape check: degradation's accurate exposure stays at the ~1h\n"
      "arrival window (~20), every retention variant exposes its whole TTL\n"
      "window, and coarse states keep serving statistics purposes.\n");
}

void RunVerifiedDeletion() {
  // The proof side of B1: exposure numbers above are only as credible as
  // the deletion they assume. Re-run the degradation policy for a week with
  // the maintenance daemon's hourly cadence (checkpoints + deletion-
  // assurance audits) and report what the audits PROVED — every layer
  // (stores, indexes, WAL segments, epoch keys) clean at every sweep, with
  // no manual Checkpoint() call anywhere.
  constexpr int kPingsPerHour = 20;
  VirtualClock clock;
  DbOptions base;
  base.maintenance.checkpoint_interval = kMicrosPerHour;
  base.maintenance.audit_interval = kMicrosPerHour;
  auto test = bench::OpenFreshDb("exposure_verified", &clock, base);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  for (int hour = 0; hour < 7 * 24; ++hour) {
    clock.Advance(kMicrosPerHour);
    test.db->RunDegradationOnce().status().ok();
    test.db->maintenance()->RunOnce(clock.NowMicros()).ok();
    bench::InsertPings(test.db.get(), &clock, workload, "pings",
                       kPingsPerHour, 0, 0.8, hour);
  }
  const MaintenanceDaemon::Stats stats = test.db->stats().maintenance;
  TablePrinter table({"audits", "failed", "rows swept", "daemon ckpts",
                      "worst attack window", "wal segments retired"});
  table.AddRow({std::to_string(stats.audits), std::to_string(stats.audits_failed),
                std::to_string(stats.audit_rows_scanned),
                std::to_string(stats.checkpoints),
                bench::FormatDuration(stats.max_exposure_seen),
                std::to_string(test.db->stats().wal.segments_retired)});
  table.Print(
      "B1b: deletion-assurance audits over 7 days of Fig. 2 degradation "
      "(hourly daemon cadence, no manual checkpoints)");
  bench::JsonEmitter::Instance().AddScalar("verified_deletion.audits",
                                           static_cast<double>(stats.audits));
  bench::JsonEmitter::Instance().AddScalar(
      "verified_deletion.audits_failed",
      static_cast<double>(stats.audits_failed));
  bench::JsonEmitter::Instance().AddScalar(
      "verified_deletion.worst_attack_window_us",
      static_cast<double>(stats.max_exposure_seen));
  std::printf(
      "\nShape check: every hourly audit proves degradation completed —\n"
      "0 failed audits and a zero worst attack window mean no accurate\n"
      "value outlived its deadline in any store, index or log segment.\n");
}

void BM_ExposureScan(benchmark::State& state) {
  VirtualClock clock;
  auto test = bench::OpenFreshDb("exposure_scan", &clock);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  bench::InsertPings(test.db.get(), &clock, workload, "pings", 5000,
                     kMicrosPerSecond);
  for (auto _ : state) {
    size_t n = 0;
    test.db->GetTable("pings")->ScanRows([&](const RowView&) {
      ++n;
      return true;
    }).ok();
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_ExposureScan);

}  // namespace

int main(int argc, char** argv) {
  RunExposure();
  RunVerifiedDeletion();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
