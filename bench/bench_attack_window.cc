// B2 (paper benefit ii — increased security w.r.t. attacks):
// "to be effective, an attack targeting a database running a data
// degradation process must be repeated with a frequency smaller than the
// duration of the shortest degradation step."
//
// We simulate an attacker who snapshots the database at a fixed period and
// measure the fraction of all tuples whose ACCURATE value the attacker ever
// captures, as a function of snapshot period relative to the shortest step
// τ0. Expected shape: capture is ~100% for periods < τ0 and decays
// proportionally to τ0/period beyond — so sustained full capture needs
// frequency > 1/τ0, which is what intrusion detection can spot.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "support/bench_util.h"

using namespace instantdb;
using bench::TablePrinter;

namespace {

void RunAttackWindow() {
  // τ0 = 1 hour (Fig. 2). Sweep snapshot periods around it.
  const AttributeLcp lcp = Fig2LocationLcp();
  const Micros tau0 = lcp.ShortestStep();
  const std::vector<std::pair<std::string, Micros>> periods = {
      {"tau0/4", tau0 / 4},   {"tau0/2", tau0 / 2}, {"tau0", tau0},
      {"2*tau0", 2 * tau0},   {"4*tau0", 4 * tau0}, {"12*tau0", 12 * tau0},
      {"24*tau0", 24 * tau0},
  };
  constexpr size_t kTuples = 2000;
  const Micros kArrivalGap = kMicrosPerMinute;  // ~33h of arrivals

  TablePrinter table({"snapshot period", "snapshots", "accurate captured",
                      "capture rate", "snapshots/day needed"});
  for (const auto& [label, period] : periods) {
    VirtualClock clock;
    auto test = bench::OpenFreshDb("attack", &clock);
    auto workload = bench::MakePingWorkload(lcp, 3);
    test.db->CreateTable("pings", workload.schema).status();

    std::set<RowId> captured;
    size_t snapshots = 0;
    Micros next_snapshot = 0;
    size_t inserted = 0;
    while (inserted < kTuples) {
      bench::InsertPings(test.db.get(), &clock, workload, "pings", 1, 0, 0.8,
                         inserted);
      ++inserted;
      clock.Advance(kArrivalGap);
      test.db->RunDegradationOnce().status().ok();
      while (clock.NowMicros() >= next_snapshot) {
        // One snapshot: the attacker reads every accurate value present.
        ++snapshots;
        test.db->GetTable("pings")->ScanRows([&](const RowView& view) {
          if (view.phases[0] == 0) captured.insert(view.row_id);
          return true;
        }).ok();
        next_snapshot += period;
      }
    }
    const double rate =
        static_cast<double>(captured.size()) / static_cast<double>(kTuples);
    table.AddRow({label, std::to_string(snapshots),
                  std::to_string(captured.size()),
                  StringPrintf("%.1f%%", 100 * rate),
                  StringPrintf("%.1f", static_cast<double>(kMicrosPerDay) /
                                           static_cast<double>(period))});
  }
  table.Print(
      "B2: attacker snapshot period vs. captured accurate tuples "
      "(tau0 = 1h, 2000 tuples arriving 1/min)");
  std::printf(
      "\nShape check: capture stays ~100%% only while the period <= tau0;\n"
      "sustained disclosure therefore requires >= 24 snapshots/day here —\n"
      "continuous attacks that Intrusion Detection and Auditing Systems\n"
      "detect (paper benefit ii).\n");
}

void BM_SnapshotScan(benchmark::State& state) {
  VirtualClock clock;
  auto test = bench::OpenFreshDb("attack_scan", &clock);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  bench::InsertPings(test.db.get(), &clock, workload, "pings", 2000,
                     kMicrosPerSecond);
  for (auto _ : state) {
    size_t accurate = 0;
    test.db->GetTable("pings")->ScanRows([&](const RowView& view) {
      accurate += view.phases[0] == 0 ? 1 : 0;
      return true;
    }).ok();
    benchmark::DoNotOptimize(accurate);
  }
}
BENCHMARK(BM_SnapshotScan);

}  // namespace

int main(int argc, char** argv) {
  RunAttackWindow();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
