// B2 (paper benefit ii — increased security w.r.t. attacks):
// "to be effective, an attack targeting a database running a data
// degradation process must be repeated with a frequency smaller than the
// duration of the shortest degradation step."
//
// We simulate an attacker who snapshots the database at a fixed period and
// measure the fraction of all tuples whose ACCURATE value the attacker ever
// captures, as a function of snapshot period relative to the shortest step
// τ0. Expected shape: capture is ~100% for periods < τ0 and decays
// proportionally to τ0/period beyond — so sustained full capture needs
// frequency > 1/τ0, which is what intrusion detection can spot.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "support/bench_util.h"

using namespace instantdb;
using bench::TablePrinter;

namespace {

void RunAttackWindow() {
  // τ0 = 1 hour (Fig. 2). Sweep snapshot periods around it.
  const AttributeLcp lcp = Fig2LocationLcp();
  const Micros tau0 = lcp.ShortestStep();
  const std::vector<std::pair<std::string, Micros>> periods = {
      {"tau0/4", tau0 / 4},   {"tau0/2", tau0 / 2}, {"tau0", tau0},
      {"2*tau0", 2 * tau0},   {"4*tau0", 4 * tau0}, {"12*tau0", 12 * tau0},
      {"24*tau0", 24 * tau0},
  };
  constexpr size_t kTuples = 2000;
  const Micros kArrivalGap = kMicrosPerMinute;  // ~33h of arrivals

  TablePrinter table({"snapshot period", "snapshots", "accurate captured",
                      "capture rate", "snapshots/day needed"});
  for (const auto& [label, period] : periods) {
    VirtualClock clock;
    auto test = bench::OpenFreshDb("attack", &clock);
    auto workload = bench::MakePingWorkload(lcp, 3);
    test.db->CreateTable("pings", workload.schema).status();

    std::set<RowId> captured;
    size_t snapshots = 0;
    Micros next_snapshot = 0;
    size_t inserted = 0;
    while (inserted < kTuples) {
      bench::InsertPings(test.db.get(), &clock, workload, "pings", 1, 0, 0.8,
                         inserted);
      ++inserted;
      clock.Advance(kArrivalGap);
      test.db->RunDegradationOnce().status().ok();
      while (clock.NowMicros() >= next_snapshot) {
        // One snapshot: the attacker reads every accurate value present.
        ++snapshots;
        test.db->GetTable("pings")->ScanRows([&](const RowView& view) {
          if (view.phases[0] == 0) captured.insert(view.row_id);
          return true;
        }).ok();
        next_snapshot += period;
      }
    }
    const double rate =
        static_cast<double>(captured.size()) / static_cast<double>(kTuples);
    table.AddRow({label, std::to_string(snapshots),
                  std::to_string(captured.size()),
                  StringPrintf("%.1f%%", 100 * rate),
                  StringPrintf("%.1f", static_cast<double>(kMicrosPerDay) /
                                           static_cast<double>(period))});
  }
  table.Print(
      "B2: attacker snapshot period vs. captured accurate tuples "
      "(tau0 = 1h, 2000 tuples arriving 1/min)");
  std::printf(
      "\nShape check: capture stays ~100%% only while the period <= tau0;\n"
      "sustained disclosure therefore requires >= 24 snapshots/day here —\n"
      "continuous attacks that Intrusion Detection and Auditing Systems\n"
      "detect (paper benefit ii).\n");
}

void RunMaintenanceCadence() {
  // Daemon-on vs caller-driven WAL hygiene: how long accurate insert
  // payloads outlive their phase-0 deadline inside live WAL segments, as a
  // function of the maintenance daemon's checkpoint cadence. The stores
  // themselves stay clean (degradation is pumped every step) — what the
  // cadence controls is segment retirement, i.e. the log's attack window.
  // "off" is the caller-driven baseline that never checkpoints.
  constexpr Micros kStep = 100 * kMicrosPerMilli;
  constexpr Micros kPhase0 = kMicrosPerMinute;
  constexpr Micros kSimEnd = 10 * kMicrosPerMinute;
  constexpr int kArrivalSteps = 3;  // one ping / 300ms — misaligned with 1s
  const std::vector<std::pair<std::string, Micros>> cadences = {
      {"off (caller-driven)", 0},
      {"100ms", 100 * kMicrosPerMilli},
      {"1s", kMicrosPerSecond},
  };
  auto lcp = AttributeLcp::Make({{0, kPhase0}, {1, kForever}});

  TablePrinter table({"checkpoint cadence", "daemon ckpts", "forced",
                      "worst WAL attack window", "exposed time",
                      "peak exposed segments", "final audit clean"});
  for (const auto& [label, cadence] : cadences) {
    VirtualClock clock;
    DbOptions base;
    base.wal.segment_bytes = 4096;
    base.maintenance.checkpoint_interval = cadence;
    auto test = bench::OpenFreshDb("attack_daemon", &clock, base);
    auto workload = bench::MakePingWorkload(*lcp, 3);
    test.db->CreateTable("pings", workload.schema).status();
    MaintenanceDaemon* daemon = test.db->maintenance();

    uint64_t exposed_steps = 0, streak = 0, worst_streak = 0, peak = 0;
    size_t inserted = 0;
    bool final_clean = false;
    for (Micros step = 1; step * kStep <= kSimEnd; ++step) {
      if (step % kArrivalSteps == 0) {
        bench::InsertPings(test.db.get(), &clock, workload, "pings", 1, 0, 0.8,
                           inserted++);
      }
      clock.Advance(kStep);
      test.db->RunDegradationOnce().status().ok();
      // With cadence "off" the daemon step is a no-op: nobody checkpoints.
      daemon->RunOnce(clock.NowMicros()).ok();
      const AuditReport report = test.db->Audit();
      if (report.exposed_wal_segments > 0) {
        ++exposed_steps;
        worst_streak = std::max(worst_streak, ++streak);
        peak = std::max(peak, report.exposed_wal_segments);
      } else {
        streak = 0;
      }
      final_clean = report.clean();
    }
    const auto stats = test.db->stats().maintenance;
    table.AddRow({label, std::to_string(stats.checkpoints),
                  std::to_string(stats.forced_checkpoints),
                  bench::FormatDuration(worst_streak * kStep),
                  bench::FormatDuration(exposed_steps * kStep),
                  std::to_string(peak), final_clean ? "yes" : "NO"});
    bench::JsonEmitter::Instance().AddScalar(
        "wal_attack_window_us." + label,
        static_cast<double>(worst_streak * kStep));
  }
  table.Print(
      "B2b: WAL attack window vs. maintenance checkpoint cadence "
      "(tau0 = 1min pings, 100ms audit sampling, 10min horizon)");
  std::printf(
      "\nShape check: caller-driven ('off') lets accurate payloads sit in\n"
      "live WAL segments for the whole run once their deadline passes; the\n"
      "daemon bounds the window by its cadence (deadline-pressure forces a\n"
      "checkpoint even with no dirty partitions), and a 100ms cadence\n"
      "retires every overdue segment within the same audit step.\n");
}

void BM_SnapshotScan(benchmark::State& state) {
  VirtualClock clock;
  auto test = bench::OpenFreshDb("attack_scan", &clock);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  bench::InsertPings(test.db.get(), &clock, workload, "pings", 2000,
                     kMicrosPerSecond);
  for (auto _ : state) {
    size_t accurate = 0;
    test.db->GetTable("pings")->ScanRows([&](const RowView& view) {
      accurate += view.phases[0] == 0 ? 1 : 0;
      return true;
    }).ok();
    benchmark::DoNotOptimize(accurate);
  }
}
BENCHMARK(BM_SnapshotScan);

}  // namespace

int main(int argc, char** argv) {
  RunAttackWindow();
  RunMaintenanceCadence();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
