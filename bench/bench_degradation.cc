// B4 (paper challenge — "How to enforce timely data degradation?"):
// degradation throughput and timeliness for the two physical layouts:
//   - kStateStores: FIFO stores per (attribute, phase); a step is a
//     sequential pop/append + segment-granularity secure erase.
//   - kInPlace: degradable values inline in heap tuples; a step is a
//     random-access page rewrite per tuple.
//
// Expected shape: FIFO stores sustain much higher degradation throughput
// and near-zero lateness; in-place pays a page rewrite per value.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "support/bench_util.h"

using namespace instantdb;
using bench::TablePrinter;

namespace {

const char* LayoutName(DegradableLayout layout) {
  return layout == DegradableLayout::kStateStores ? "state-stores" : "in-place";
}

void RunTimeliness() {
  TablePrinter table({"layout", "tuples", "degrade wall ms", "tuples/sec",
                      "p99 lateness", "segments erased"});
  for (DegradableLayout layout :
       {DegradableLayout::kStateStores, DegradableLayout::kInPlace}) {
    for (size_t tuples : {10000u, 50000u}) {
      VirtualClock clock;
      DbOptions options;
      options.layout = layout;
      auto test = bench::OpenFreshDb("degradation", &clock, options);
      auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 4);
      test.db->CreateTable("pings", workload.schema).status();
      bench::InsertPings(test.db.get(), &clock, workload, "pings", tuples, 0);

      // A "step storm": every tuple crosses the 1h boundary at once.
      clock.Advance(kMicrosPerHour);
      SystemClock wall;
      const Micros start = wall.NowMicros();
      auto moved = test.db->RunDegradationOnce();
      const Micros elapsed = wall.NowMicros() - start;
      if (!moved.ok()) continue;

      const Table* t = test.db->GetTable("pings");
      uint64_t erased = 0;
      for (uint32_t part = 0; part < t->num_partitions(); ++part) {
        for (int p = 0; p < 4; ++p) {
          const StateStore* store = t->partition(part)->store(1, p);
          if (store != nullptr) erased += store->stats().segments_erased;
        }
      }
      table.AddRow(
          {LayoutName(layout), std::to_string(*moved),
           StringPrintf("%.1f", elapsed / 1000.0),
           StringPrintf("%.0f", *moved * 1e6 / std::max<Micros>(elapsed, 1)),
           bench::FormatDuration(
               static_cast<Micros>(t->lateness_histogram().Percentile(99))),
           std::to_string(erased)});
    }
  }
  table.Print("B4: one full degradation step storm (all tuples cross the "
              "1h address->city boundary)");
  std::printf(
      "\nShape check: with the working set buffer-pool resident, both\n"
      "layouts are CPU-bound and sustain tens of thousands of values/sec\n"
      "with zero lateness. The structural difference is the secure-erase\n"
      "granularity: state stores retire whole drained segments (sequential\n"
      "I/O, 'segments erased' column), while in-place must overwrite each\n"
      "heap tuple's bytes inside its page — random writes that surface as\n"
      "page flushes once the heap exceeds the buffer pool.\n");
}

void BM_DegradeBatch(benchmark::State& state) {
  const auto layout = static_cast<DegradableLayout>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    VirtualClock clock;
    DbOptions options;
    options.layout = layout;
    auto test = bench::OpenFreshDb("degr_micro", &clock, options);
    auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
    test.db->CreateTable("pings", workload.schema).status();
    bench::InsertPings(test.db.get(), &clock, workload, "pings", 4000, 0);
    clock.Advance(kMicrosPerHour);
    state.ResumeTiming();
    auto moved = test.db->RunDegradationOnce();
    benchmark::DoNotOptimize(moved);
  }
  state.SetItemsProcessed(state.iterations() * 4000);
  state.SetLabel(LayoutName(layout));
}
BENCHMARK(BM_DegradeBatch)
    ->Arg(static_cast<int>(DegradableLayout::kStateStores))
    ->Arg(static_cast<int>(DegradableLayout::kInPlace))
    ->Unit(benchmark::kMillisecond);

void BM_InsertThroughput(benchmark::State& state) {
  const auto layout = static_cast<DegradableLayout>(state.range(0));
  VirtualClock clock;
  DbOptions options;
  options.layout = layout;
  auto test = bench::OpenFreshDb("insert_micro", &clock, options);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  ZipfGenerator zipf(workload.addresses.size(), 0.8, 9);
  size_t i = 0;
  for (auto _ : state) {
    auto row = test.db->Insert(
        "pings", {Value::String("u"), Value::String(workload.addresses[zipf.Next()])});
    benchmark::DoNotOptimize(row);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
  state.SetLabel(LayoutName(layout));
}
BENCHMARK(BM_InsertThroughput)
    ->Arg(static_cast<int>(DegradableLayout::kStateStores))
    ->Arg(static_cast<int>(DegradableLayout::kInPlace));

}  // namespace

int main(int argc, char** argv) {
  RunTimeliness();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
