// E1–E3: regenerate the paper's three model figures (Fig. 1 generalization
// tree, Fig. 2 attribute LCP, Fig. 3 tuple LCP) and micro-benchmark the
// model operations they define.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "support/bench_util.h"

using namespace instantdb;

namespace {

void PrintFigures() {
  auto domain = LocationDomain();
  const auto* tree = static_cast<const GeneralizationTree*>(domain.get());
  std::printf("=== E1 (Fig. 1): generalization tree of the location domain ===\n%s",
              tree->ToAsciiArt().c_str());
  std::printf("levels: ");
  for (int level = 0; level < domain->height(); ++level) {
    std::printf("%d=%s (%lld values)%s", level,
                domain->level_names()[level].c_str(),
                static_cast<long long>(*domain->CardinalityAtLevel(level)),
                level + 1 == domain->height() ? "\n" : ", ");
  }

  const AttributeLcp lcp = Fig2LocationLcp();
  std::printf("\n=== E2 (Fig. 2): attribute LCP ===\n%s\n", lcp.ToString().c_str());
  std::printf("shortest degradation step (attack-window bound): %s\n",
              bench::FormatDuration(lcp.ShortestStep()).c_str());

  const AttributeLcp salary =
      *AttributeLcp::Make({{0, kMicrosPerDay}, {1, kMicrosPerMonth}});
  const TupleLcp tuple = TupleLcp::Make({&lcp, &salary});
  std::printf("\n=== E3 (Fig. 3): tuple LCP (location x salary) ===\n%s\n",
              tuple.ToString().c_str());
  std::printf("tuple states: %d, removal after %s\n\n", tuple.num_states(),
              bench::FormatDuration(tuple.RemovalOffset()).c_str());
}

void BM_TreeGeneralize(benchmark::State& state) {
  auto domain = SyntheticLocationDomain(4, 4, 4, 4);
  const auto* tree = static_cast<const GeneralizationTree*>(domain.get());
  const auto leaves = tree->LabelsAtLevel(0);
  Random rng(1);
  const int to_level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Value leaf = Value::String(leaves[rng.Uniform(leaves.size())]);
    auto result = domain->Generalize(leaf, 0, to_level);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TreeGeneralize)->DenseRange(0, 4);

void BM_IntervalGeneralize(benchmark::State& state) {
  auto domain = SalaryDomain();
  Random rng(1);
  const int to_level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result =
        domain->Generalize(Value::Int64(static_cast<int64_t>(rng.Uniform(100000))),
                           0, to_level);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_IntervalGeneralize)->DenseRange(0, 3);

void BM_LcpPhaseAt(benchmark::State& state) {
  const AttributeLcp lcp = Fig2LocationLcp();
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lcp.PhaseAt(static_cast<Micros>(rng.Uniform(3 * kMicrosPerMonth))));
  }
}
BENCHMARK(BM_LcpPhaseAt);

void BM_LeafRange(benchmark::State& state) {
  auto domain = SyntheticLocationDomain(4, 4, 4, 4);
  const auto* tree = static_cast<const GeneralizationTree*>(domain.get());
  const auto cities = tree->LabelsAtLevel(1);
  Random rng(1);
  for (auto _ : state) {
    auto range =
        domain->LeafRange(Value::String(cities[rng.Uniform(cities.size())]), 1);
    benchmark::DoNotOptimize(range);
  }
}
BENCHMARK(BM_LeafRange);

}  // namespace

int main(int argc, char** argv) {
  PrintFigures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
