#include "support/bench_util.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/random.h"

namespace instantdb::bench {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"' + JsonEscape(items[i]) + '"';
  }
  out += ']';
  return out;
}

void FlushJsonAtExit() { JsonEmitter::Instance().Flush(); }

}  // namespace

JsonEmitter& JsonEmitter::Instance() {
  static JsonEmitter* emitter = [] {
    auto* e = new JsonEmitter();
    std::atexit(FlushJsonAtExit);
    return e;
  }();
  return *emitter;
}

void JsonEmitter::AddTable(const std::string& title,
                           const std::vector<std::string>& headers,
                           const std::vector<std::vector<std::string>>& rows) {
  std::string json = "{\"title\": \"" + JsonEscape(title) + "\", ";
  json += "\"headers\": " + JsonStringArray(headers) + ", \"rows\": [";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) json += ", ";
    json += JsonStringArray(rows[r]);
  }
  json += "]}";
  tables_.push_back(std::move(json));
}

void JsonEmitter::AddSeries(const std::string& name, double ops_per_sec,
                            const Histogram& latency_micros) {
  series_.push_back(StringPrintf(
      "{\"name\": \"%s\", \"ops_per_sec\": %.6g, \"count\": %zu, "
      "\"p50_us\": %.6g, \"p99_us\": %.6g, \"mean_us\": %.6g, "
      "\"max_us\": %.6g}",
      JsonEscape(name).c_str(), ops_per_sec, latency_micros.count(),
      latency_micros.Percentile(50), latency_micros.Percentile(99),
      latency_micros.mean(), latency_micros.max()));
}

void JsonEmitter::AddScalar(const std::string& name, double value) {
  scalars_.push_back(StringPrintf("{\"name\": \"%s\", \"value\": %.6g}",
                                  JsonEscape(name).c_str(), value));
}

void JsonEmitter::Flush() {
  if (tables_.empty() && series_.empty() && scalars_.empty()) return;
  const char* program = program_invocation_short_name;  // GNU
  const char* dir = std::getenv("BENCH_JSON_DIR");
  const std::string path = std::string(dir == nullptr ? "." : dir) + "/BENCH_" +
                           (program == nullptr ? "unknown" : program) + ".json";
  std::string json = "{\n  \"bench\": \"";
  json += JsonEscape(program == nullptr ? "unknown" : program);
  json += "\",\n  \"tables\": [\n    " + Join(tables_, ",\n    ");
  json += "\n  ],\n  \"series\": [\n    " + Join(series_, ",\n    ");
  json += "\n  ],\n  \"scalars\": [\n    " + Join(scalars_, ",\n    ");
  json += "\n  ]\n}\n";
  const Status status = WriteStringToFile(path, json, /*sync=*/false);
  if (!status.ok()) {
    std::fprintf(stderr, "BENCH json write failed: %s\n",
                 status.ToString().c_str());
  } else {
    std::printf("[machine-readable metrics written to %s]\n", path.c_str());
  }
}

TestDb OpenFreshDb(const std::string& name, VirtualClock* clock,
                   DbOptions base) {
  TestDb out;
  out.path = "/tmp/instantdb_bench_" + name;
  RemoveDirRecursive(out.path).ok();
  base.path = out.path;
  base.clock = clock;
  auto db = Database::Open(base);
  if (!db.ok()) {
    std::fprintf(stderr, "bench db open failed: %s\n",
                 db.status().ToString().c_str());
    std::abort();
  }
  out.db = std::move(*db);
  return out;
}

PingWorkload MakePingWorkload(const AttributeLcp& lcp, int fanout) {
  PingWorkload workload;
  workload.domain =
      SyntheticLocationDomain(fanout, fanout, fanout, fanout);
  const auto* tree =
      static_cast<const GeneralizationTree*>(workload.domain.get());
  workload.addresses = tree->LabelsAtLevel(0);
  auto schema = Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Degradable("location", workload.domain, lcp)});
  workload.schema = *schema;
  return workload;
}

std::vector<RowId> InsertPings(Database* db, VirtualClock* clock,
                               const PingWorkload& workload,
                               const std::string& table, size_t n,
                               Micros inter_arrival, double zipf_theta,
                               uint64_t seed) {
  ZipfGenerator zipf(workload.addresses.size(), zipf_theta, seed);
  Random rng(seed);
  std::vector<RowId> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string& addr = workload.addresses[zipf.Next()];
    auto row = db->Insert(
        table, {Value::String(StringPrintf(
                    "user-%llu", static_cast<unsigned long long>(
                                     rng.Uniform(1 + n / 16)))),
                Value::String(addr)});
    if (row.ok()) rows.push_back(*row);
    if (inter_arrival > 0) clock->Advance(inter_arrival);
  }
  return rows;
}

size_t ForensicScan(const std::string& dir, const std::string& needle) {
  size_t hits = 0;
  auto names = ListDir(dir);
  if (!names.ok()) return 0;
  for (const auto& name : *names) {
    if (name == "CATALOG") continue;
    const std::string path = dir + "/" + name;
    auto contents = ReadFileToString(path);
    if (contents.ok()) {
      for (size_t pos = contents->find(needle); pos != std::string::npos;
           pos = contents->find(needle, pos + 1)) {
        ++hits;
      }
    } else {
      hits += ForensicScan(path, needle);
    }
  }
  return hits;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(const std::string& title) const {
  JsonEmitter::Instance().AddTable(title, headers_, rows_);
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n=== %s ===\n", title.c_str());
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%-*s%s", static_cast<int>(widths[c]), headers_[c].c_str(),
                c + 1 == headers_.size() ? "\n" : " | ");
  }
  for (size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s%s", std::string(widths[c], '-').c_str(),
                c + 1 == headers_.size() ? "\n" : "-+-");
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : " | ");
    }
  }
}

std::string FormatDuration(Micros micros) {
  if (micros == kForever) return "forever";
  if (micros >= kMicrosPerDay) {
    return StringPrintf("%.3gd", static_cast<double>(micros) /
                                     static_cast<double>(kMicrosPerDay));
  }
  if (micros >= kMicrosPerHour) {
    return StringPrintf("%.3gh", static_cast<double>(micros) /
                                     static_cast<double>(kMicrosPerHour));
  }
  if (micros >= kMicrosPerMinute) {
    return StringPrintf("%.3gm", static_cast<double>(micros) /
                                     static_cast<double>(kMicrosPerMinute));
  }
  return StringPrintf("%.3gs", static_cast<double>(micros) /
                                   static_cast<double>(kMicrosPerSecond));
}

}  // namespace instantdb::bench
