#ifndef INSTANTDB_BENCH_SUPPORT_BENCH_UTIL_H_
#define INSTANTDB_BENCH_SUPPORT_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "instantdb/instantdb.h"

namespace instantdb::bench {

/// Fresh scratch database under /tmp, driven by the supplied VirtualClock.
struct TestDb {
  std::string path;
  std::unique_ptr<Database> db;
};

/// Opens a fresh database (removing any previous contents).
TestDb OpenFreshDb(const std::string& name, VirtualClock* clock,
                   DbOptions base = {});

/// The standard benchmark table: one stable user column plus a degradable
/// location over a synthetic tree (`fanout^4` leaves) with the given LCP.
struct PingWorkload {
  std::shared_ptr<const DomainHierarchy> domain;
  std::vector<std::string> addresses;  // leaf labels, index by ordinal
  Schema schema;
};
PingWorkload MakePingWorkload(const AttributeLcp& lcp, int fanout = 4);

/// Inserts `n` rows with arrivals spaced `inter_arrival` apart; addresses
/// drawn Zipf(theta) over the leaves. Returns the inserted row ids.
std::vector<RowId> InsertPings(Database* db, VirtualClock* clock,
                               const PingWorkload& workload,
                               const std::string& table, size_t n,
                               Micros inter_arrival, double zipf_theta = 0.8,
                               uint64_t seed = 42);

/// Counts occurrences of `needle` in every file under `dir` (recursive),
/// skipping the CATALOG (domain metadata, not tuple data).
size_t ForensicScan(const std::string& dir, const std::string& needle);

/// \brief Process-wide machine-readable benchmark output.
///
/// Every table printed through TablePrinter and every explicitly recorded
/// metric series is collected here and written to `BENCH_<program>.json`
/// (directory overridable with $BENCH_JSON_DIR, default the working
/// directory) at process exit — the perf-trajectory files consumed by
/// tooling alongside the human-readable console output.
class JsonEmitter {
 public:
  static JsonEmitter& Instance();

  void AddTable(const std::string& title,
                const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows);

  /// One named series: throughput plus latency percentiles (microseconds)
  /// from a util/histogram of per-op latencies.
  void AddSeries(const std::string& name, double ops_per_sec,
                 const Histogram& latency_micros);

  /// One named scalar (speedups, counts, byte totals, ...).
  void AddScalar(const std::string& name, double value);

  /// Writes BENCH_<program>.json now (also runs automatically at exit).
  void Flush();

 private:
  JsonEmitter() = default;

  std::vector<std::string> tables_;   // pre-rendered JSON objects
  std::vector<std::string> series_;   // pre-rendered JSON objects
  std::vector<std::string> scalars_;  // pre-rendered JSON objects
};

/// Aligned-column table printer for the experiment series the paper-shaped
/// reports are generated from. Tables are echoed into the JsonEmitter so
/// every benchmark emits machine-readable output for free.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatDuration(Micros micros);

}  // namespace instantdb::bench

#endif  // INSTANTDB_BENCH_SUPPORT_BENCH_UTIL_H_
