// B9 (paper challenge — irrecoverability + durability):
// (a) crash-recovery time as a function of un-checkpointed work;
// (b) the forensic guarantee: after data degrades, NO accurate value is
//     recoverable from any file the database ever wrote — data space,
//     state stores, indexes, or logs — even right after a crash-restart.
//
// Expected shape: recovery time is linear in the WAL tail; residue is zero
// for the scrub/encrypted WAL modes in every crash scenario, while the
// plain mode demonstrates the Stahlberg-et-al. threat the paper cites.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "support/bench_util.h"

using namespace instantdb;
using bench::TablePrinter;

namespace {

void RunRecovery() {
  TablePrinter table({"un-checkpointed inserts", "wal bytes", "reopen ms",
                      "rows recovered"});
  for (size_t pending : {1000u, 5000u, 20000u}) {
    VirtualClock clock;
    std::string path;
    uint64_t wal_bytes = 0;
    {
      auto test = bench::OpenFreshDb(
          StringPrintf("recovery_%zu", pending), &clock);
      path = test.path;
      auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
      test.db->CreateTable("pings", workload.schema).status();
      bench::InsertPings(test.db.get(), &clock, workload, "pings", pending,
                         kMicrosPerSecond);
      wal_bytes = test.db->wal()->stats().bytes_appended;
      // Simulate a crash: leak the database object so no checkpoint runs
      // on close (the OS reclaims everything when the bench exits).
      auto* leaked = test.db.release();
      (void)leaked;
    }
    DbOptions options;
    options.path = path;
    options.clock = &clock;
    SystemClock wall;
    const Micros start = wall.NowMicros();
    auto reopened = Database::Open(options);
    const Micros elapsed = wall.NowMicros() - start;
    const uint64_t rows =
        reopened.ok() ? (*reopened)->GetTable("pings")->live_rows() : 0;
    table.AddRow({std::to_string(pending), std::to_string(wal_bytes),
                  StringPrintf("%.1f", elapsed / 1000.0),
                  std::to_string(rows)});
  }
  table.Print("B9a: crash recovery time vs. WAL tail length "
              "(no checkpoint before the crash)");
}

void RunForensics() {
  TablePrinter table({"WAL mode", "crash point", "residue (accurate copies)",
                      "rows after recovery"});
  for (WalPrivacyMode mode : {WalPrivacyMode::kPlain, WalPrivacyMode::kScrub,
                              WalPrivacyMode::kEncryptedEpoch}) {
    const char* mode_name = mode == WalPrivacyMode::kPlain ? "plain"
                            : mode == WalPrivacyMode::kScrub
                                ? "scrub"
                                : "encrypted-epoch";
    for (int crash_after_degrade : {0, 1}) {
      VirtualClock clock;
      DbOptions options;
      options.wal.privacy_mode = mode;
      options.wal.epoch_micros = kMicrosPerHour;
      auto test = bench::OpenFreshDb("forensics", &clock, options);
      auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
      test.db->CreateTable("pings", workload.schema).status();
      const std::string secret = workload.addresses[1];
      for (int i = 0; i < 2000; ++i) {
        test.db->Insert("pings", {Value::String("u"), Value::String(secret)})
            .status();
      }
      if (crash_after_degrade != 0) {
        clock.Advance(kMicrosPerHour + kMicrosPerMinute);
        test.db->RunDegradationOnce().status().ok();
        test.db->Checkpoint().ok();
      }
      const std::string path = test.path;
      auto* leaked = test.db.release();  // crash
      (void)leaked;

      DbOptions reopen_options = options;
      reopen_options.path = path;
      reopen_options.clock = &clock;
      auto reopened = Database::Open(reopen_options);
      const uint64_t rows =
          reopened.ok() ? (*reopened)->GetTable("pings")->live_rows() : 0;
      reopened->get()->Checkpoint().ok();
      const size_t residue = bench::ForensicScan(path, secret);
      table.AddRow({mode_name,
                    crash_after_degrade ? "after degrade+ckpt" : "before degrade",
                    std::to_string(residue), std::to_string(rows)});
    }
  }
  table.Print("B9b: forensic residue of one sensitive address after "
              "crash + recovery (2000 copies inserted)");
  std::printf(
      "\nShape check: before the degradation deadline the accurate value\n"
      "legitimately exists (WAL/stores must hold it to be recoverable);\n"
      "after degradation, scrub and encrypted-epoch leave zero copies in\n"
      "every file while plain mode keeps them recoverable — the forensic\n"
      "threat the paper cites from Stahlberg et al.\n");
}

void BM_Reopen(benchmark::State& state) {
  VirtualClock clock;
  std::string path;
  {
    auto test = bench::OpenFreshDb("reopen_micro", &clock);
    path = test.path;
    auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
    test.db->CreateTable("pings", workload.schema).status();
    bench::InsertPings(test.db.get(), &clock, workload, "pings", 2000,
                       kMicrosPerSecond);
    test.db->Checkpoint().ok();
  }
  for (auto _ : state) {
    DbOptions options;
    options.path = path;
    options.clock = &clock;
    auto db = Database::Open(options);
    benchmark::DoNotOptimize(db);
  }
  state.SetLabel("open+recover 2000 rows (checkpointed)");
}
BENCHMARK(BM_Reopen)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunRecovery();
  RunForensics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
