// ISSUE 10 acceptance bench: the overload-safe service layer under an
// open-loop mixed workload at 2x the measured saturation rate.
//
// Four client threads drive one ServiceFrontEnd on a real SystemClock:
// high- and normal-class point reads, a low-class aggregate scan, and a
// normal-class batched ingest, each firing on its own open-loop arrival
// schedule (arrivals do NOT wait for completions — the queueing delay under
// overload lands in the measured latency, where a closed loop would hide it
// by slowing the clients down). A background thread pumps degradation and
// maintenance and audits deletion assurance on a fixed cadence.
//
// What the numbers must show at 2x saturation:
//  - zero missed degradation deadlines: Audit().Verify() clean EVERY
//    interval (the reserved-worker floor holds under full query load),
//  - bounded p99 for admitted high-priority statements,
//  - the excess load surfacing as Status::Overloaded rejects, not as an
//    unbounded queue,
//  - the stats invariant: admitted + rejected == submitted.
//
// IDB_BENCH_SMOKE=1 shortens calibration and the measured run for CI.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "db/write_batch.h"
#include "service/service.h"
#include "support/bench_util.h"
#include "util/file.h"
#include "util/histogram.h"

using namespace instantdb;
using bench::TablePrinter;

namespace {

Micros WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ClientResult {
  std::string label;
  double target_qps = 0;
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t timeouts = 0;
  Histogram latency;  // microseconds, admitted-and-succeeded only
};

/// One open-loop client: fires `fn` on its arrival schedule until
/// `deadline_wall`, never waiting for the previous call to finish its
/// schedule slot (late arrivals fire immediately, back-to-back).
void OpenLoopClient(double qps, Micros deadline_wall,
                    const std::function<Status()>& fn, ClientResult* out) {
  const double gap = 1e6 / qps;
  double next = static_cast<double>(WallMicros());
  while (true) {
    const Micros now = WallMicros();
    if (now >= deadline_wall) break;
    if (static_cast<double>(now) < next) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(next - now)));
      continue;
    }
    next += gap;
    ++out->issued;
    const Micros start = WallMicros();
    const Status status = fn();
    if (status.ok()) {
      ++out->ok;
      out->latency.Add(static_cast<double>(WallMicros() - start));
    } else if (status.IsOverloaded()) {
      ++out->overloaded;
    } else if (status.IsTimeout()) {
      ++out->timeouts;
    }
  }
}

void RunServiceBench() {
  const bool smoke = std::getenv("IDB_BENCH_SMOKE") != nullptr;
  const Micros kCalibrate = (smoke ? 150 : 500) * kMicrosPerMilli;
  const Micros kMeasure = (smoke ? 1000 : 5000) * kMicrosPerMilli;
  const Micros kPhase0 = 250 * kMicrosPerMilli;  // degradation every 250ms
  const size_t kSeedRows = smoke ? 500 : 2000;

  DbOptions base;  // SystemClock: open-loop arrivals need real time
  base.partitions = 8;
  base.degradation.worker_threads = 4;
  base.wal.segment_bytes = 64 * 1024;
  // Real-time audit slack per the DeletionAuditor guidance: one degradation
  // pass latency plus one checkpoint interval. Under 2x overload a pass —
  // including its WAL-contended checkpoint — was measured at up to ~300ms
  // on a single-core host, and the pump checkpoints every 100ms; 500ms
  // covers both with margin. Anything still accurate past that is a real
  // missed deadline, not scheduler noise.
  base.maintenance.audit_grace = 500 * kMicrosPerMilli;
  // Checkpoint cadence floor matched to the 250ms phase-0 deadline: the
  // default 1s floor would leave live segments holding overdue payloads
  // for most of the measure window (the adaptive pull only moves cadence
  // points for deadlines still in the future).
  base.maintenance.checkpoint_interval = 100 * kMicrosPerMilli;
  const std::string path = "/tmp/idb_bench_service";
  RemoveDirRecursive(path).ok();
  base.path = path;
  auto opened = Database::Open(base);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return;
  }
  std::unique_ptr<Database> db = std::move(*opened);

  auto lcp = AttributeLcp::Make({{0, kPhase0}, {1, kForever}});
  auto workload = bench::MakePingWorkload(*lcp, 4);
  db->CreateTable("pings", workload.schema).ok();
  for (size_t i = 0; i < kSeedRows; ++i) {
    db->Insert("pings",
               {Value::String(StringPrintf("u%zu", i)),
                Value::String(workload.addresses[i % workload.addresses.size()])})
        .status()
        .ok();
  }

  ServiceOptions service_opts;
  service_opts.max_concurrent = 4;
  service_opts.queue_depth = 4;  // small: excess load must reject, not queue
  service_opts.reserved_degradation_workers = 1;
  ServiceFrontEnd service(db.get(), service_opts);

  // --- calibration: closed-loop point reads => saturation estimate -----------
  Session calibration_session(db.get());
  uint64_t calibration_ops = 0;
  {
    const Micros end = WallMicros() + kCalibrate;
    while (WallMicros() < end) {
      const std::string sql =
          StringPrintf("SELECT user FROM pings WHERE user = 'u%llu'",
                       static_cast<unsigned long long>(calibration_ops % kSeedRows));
      service.Execute(&calibration_session, sql, ServiceClass::kNormal)
          .status()
          .ok();
      ++calibration_ops;
    }
  }
  const double saturation_qps =
      static_cast<double>(calibration_ops) * 1e6 / static_cast<double>(kCalibrate);
  const double target_qps = 2.0 * saturation_qps;  // the overload point

  // --- measured open-loop run at 2x saturation -------------------------------
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> audit_intervals{0}, audit_clean{0}, values_moved{0};
  std::mutex dirty_mu;
  std::string last_dirty;  // breakdown of the most recent failed audit
  std::thread background([&] {
    // Degradation + maintenance pump and the deletion-assurance monitor:
    // RunDue's priority dispatch takes the reserved pool token the clients
    // can never see, so this loop holds its deadlines at full query load.
    // Degradation runs on a tight cadence; the heavier checkpoint (which
    // retires WAL segments and contends with ingest group commit) only on
    // the audit cadence, immediately before each verification.
    Micros next_audit = WallMicros() + 100 * kMicrosPerMilli;
    while (!stop.load(std::memory_order_acquire)) {
      auto moved = db->RunDegradationOnce();
      if (moved.ok()) values_moved.fetch_add(*moved);
      if (WallMicros() >= next_audit) {
        next_audit += 100 * kMicrosPerMilli;
        db->maintenance()->RunOnce(db->clock()->NowMicros()).ok();
        audit_intervals.fetch_add(1);
        const Status verdict = db->Audit().Verify();
        if (verdict.ok()) {
          audit_clean.fetch_add(1);
        } else {
          std::lock_guard<std::mutex> lock(dirty_mu);
          last_dirty = verdict.ToString();
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Statements execute on the submitting thread, so one open-loop client
  // degrades to a closed loop once latency exceeds its arrival gap. Fan
  // each read class out over enough threads that the offered concurrency
  // exceeds max_concurrent + queue_depth — the 2x excess then lands in the
  // admission queues and, past their depth, in Overloaded rejects.
  const size_t kReadersPerClass = 6;
  const Micros deadline_wall = WallMicros() + kMeasure;
  std::vector<ClientResult> high_readers(kReadersPerClass);
  std::vector<ClientResult> normal_readers(kReadersPerClass);
  ClientResult low_result, ingest_result;

  std::vector<std::thread> clients;
  std::atomic<uint64_t> read_seq{0};
  auto spawn_reader = [&](ServiceClass cls, double qps, ClientResult* out) {
    clients.emplace_back([&, cls, qps, out] {
      Session session(db.get());
      OpenLoopClient(
          qps, deadline_wall,
          [&]() -> Status {
            const uint64_t n = read_seq.fetch_add(1) % kSeedRows;
            return service
                .Execute(&session,
                         StringPrintf("SELECT user FROM pings WHERE user = 'u%llu'",
                                      static_cast<unsigned long long>(n)),
                         cls, nullptr,
                         db->clock()->NowMicros() + 100 * kMicrosPerMilli)
                .status();
          },
          out);
    });
  };
  // The read share carries the overload; ingest and the analytics scan run
  // at modest fixed rates so the mix stays mixed at every target.
  const double per_reader_qps =
      target_qps * 0.5 / static_cast<double>(kReadersPerClass);
  for (size_t i = 0; i < kReadersPerClass; ++i) {
    spawn_reader(ServiceClass::kHigh, per_reader_qps, &high_readers[i]);
    spawn_reader(ServiceClass::kNormal, per_reader_qps, &normal_readers[i]);
  }
  clients.emplace_back([&] {
    Session session(db.get());
    OpenLoopClient(
        20, deadline_wall,
        [&]() -> Status {
          return service
              .Execute(&session, "SELECT COUNT(*) FROM pings",
                       ServiceClass::kLow, nullptr,
                       db->clock()->NowMicros() + 200 * kMicrosPerMilli)
              .status();
        },
        &low_result);
  });
  clients.emplace_back([&] {
    Session session(db.get());
    uint64_t batch_seq = 0;
    OpenLoopClient(
        50, deadline_wall,
        [&]() -> Status {
          return service.Run(
              &session, ServiceClass::kNormal, /*is_write=*/true,
              [&](Session*) {
                WriteBatch batch;
                for (int i = 0; i < 16; ++i) {
                  batch.Insert(
                      "pings",
                      {Value::String(StringPrintf("w%llu",
                                                  static_cast<unsigned long long>(
                                                      batch_seq * 16 + i))),
                       Value::String(
                           workload.addresses[batch_seq % workload.addresses.size()])});
                }
                ++batch_seq;
                return db->Write(&batch);
              });
        },
        &ingest_result);
  });
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  background.join();

  auto merge = [](const std::vector<ClientResult>& parts, std::string label,
                  double target) {
    ClientResult sum;
    sum.label = std::move(label);
    sum.target_qps = target;
    for (const ClientResult& p : parts) {
      sum.issued += p.issued;
      sum.ok += p.ok;
      sum.overloaded += p.overloaded;
      sum.timeouts += p.timeouts;
      sum.latency.Merge(p.latency);
    }
    return sum;
  };
  low_result.label = "low aggregate";
  low_result.target_qps = 20;
  ingest_result.label = "normal ingest x16";
  ingest_result.target_qps = 50;
  const std::vector<ClientResult> results = {
      merge(high_readers, "high point-read", target_qps * 0.5),
      merge(normal_readers, "normal point-read", target_qps * 0.5),
      low_result, ingest_result};

  // --- report ----------------------------------------------------------------
  const Database::ServiceStats stats = db->stats().service;
  TablePrinter table({"class", "target qps", "issued", "ok", "overloaded",
                      "timeout", "p50 us", "p99 us", "p999 us"});
  for (const ClientResult& r : results) {
    table.AddRow({r.label, StringPrintf("%.0f", r.target_qps),
                  std::to_string(r.issued), std::to_string(r.ok),
                  std::to_string(r.overloaded), std::to_string(r.timeouts),
                  StringPrintf("%.0f", r.latency.Percentile(50)),
                  StringPrintf("%.0f", r.latency.Percentile(99)),
                  StringPrintf("%.0f", r.latency.Percentile(99.9))});
    const double secs = static_cast<double>(kMeasure) / 1e6;
    bench::JsonEmitter::Instance().AddSeries(
        "service." + r.label, static_cast<double>(r.ok) / secs, r.latency);
  }
  table.Print(StringPrintf(
      "Service layer at 2x saturation (closed-loop calibration %.0f qps; "
      "open-loop mixed workload, %s run)",
      saturation_qps, smoke ? "smoke" : "full"));

  const bool invariant_holds =
      stats.admitted + stats.rejected_overload + stats.rejected_shutdown +
          stats.rejected_deadline ==
      stats.submitted;
  std::printf(
      "\nadmission: submitted=%llu admitted=%llu overloaded=%llu "
      "deadline=%llu timeouts=%llu max_queue_depth=%llu (invariant %s)\n"
      "degradation under load: values_moved=%llu reserved_dispatches=%llu\n"
      "deletion assurance: %llu/%llu audit intervals clean%s\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.rejected_overload),
      static_cast<unsigned long long>(stats.rejected_deadline),
      static_cast<unsigned long long>(stats.timeouts),
      static_cast<unsigned long long>(stats.max_queue_depth),
      invariant_holds ? "holds" : "VIOLATED",
      static_cast<unsigned long long>(values_moved.load()),
      static_cast<unsigned long long>(stats.degradation_reserved_dispatches),
      static_cast<unsigned long long>(audit_clean.load()),
      static_cast<unsigned long long>(audit_intervals.load()),
      audit_clean.load() == audit_intervals.load()
          ? ""
          : "  <-- MISSED DEGRADATION DEADLINES");
  if (!last_dirty.empty()) {
    std::printf("last dirty audit: %s\n", last_dirty.c_str());
  }
  const auto& maint = db->stats().maintenance;
  const auto wal_stats = db->wal()->stats();
  std::printf(
      "log hygiene: checkpoints=%llu skipped_clean=%llu forced=%llu "
      "adaptive_pulls=%llu segments_created=%llu segments_retired=%llu\n",
      static_cast<unsigned long long>(maint.checkpoints),
      static_cast<unsigned long long>(maint.checkpoints_skipped_clean),
      static_cast<unsigned long long>(maint.forced_checkpoints),
      static_cast<unsigned long long>(maint.adaptive_checkpoint_pulls),
      static_cast<unsigned long long>(wal_stats.segments_created),
      static_cast<unsigned long long>(wal_stats.segments_retired));

  bench::JsonEmitter::Instance().AddScalar("service.saturation_qps",
                                           saturation_qps);
  bench::JsonEmitter::Instance().AddScalar(
      "service.rejected_overload", static_cast<double>(stats.rejected_overload));
  bench::JsonEmitter::Instance().AddScalar(
      "service.audit_intervals", static_cast<double>(audit_intervals.load()));
  bench::JsonEmitter::Instance().AddScalar(
      "service.audit_clean", static_cast<double>(audit_clean.load()));
  bench::JsonEmitter::Instance().AddScalar(
      "service.reserved_dispatches",
      static_cast<double>(stats.degradation_reserved_dispatches));
  bench::JsonEmitter::Instance().AddScalar("service.invariant_holds",
                                           invariant_holds ? 1 : 0);

  db->Close().ok();
  db.reset();
  RemoveDirRecursive(path).ok();
}

}  // namespace

int main() {
  RunServiceBench();
  return 0;
}
