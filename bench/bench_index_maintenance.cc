// B7 (paper challenge — OLAP side: "OLAP must take care of updates
// incurred by degradation … bitmap-like indexes"):
// (a) index maintenance cost under a mixed insert + degradation load, with
//     the multi-resolution trees alone vs. trees + bitmap indexes;
// (b) aggregation speed at coarse levels: bitmap OR vs. tree range scan;
// (c) how the number of distinct indexed values collapses per phase —
//     exactly the regime where bitmaps win.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "support/bench_util.h"

using namespace instantdb;
using bench::TablePrinter;

namespace {

void RunMaintenance() {
  TablePrinter table({"config", "inserts", "degrade moves", "wall ms",
                      "ops/sec"});
  for (bool bitmaps : {false, true}) {
    VirtualClock clock;
    DbOptions options;
    options.bitmap_indexes = bitmaps;
    auto test = bench::OpenFreshDb("index_maint", &clock, options);
    auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 4);
    test.db->CreateTable("pings", workload.schema).status();

    SystemClock wall;
    const Micros start = wall.NowMicros();
    size_t inserts = 0, moves = 0;
    // Interleave: 500 inserts, advance 20 min, degrade, repeat.
    for (int round = 0; round < 18; ++round) {
      bench::InsertPings(test.db.get(), &clock, workload, "pings", 500, 0, 0.8,
                         round);
      inserts += 500;
      clock.Advance(20 * kMicrosPerMinute);
      auto moved = test.db->RunDegradationOnce();
      if (moved.ok()) moves += *moved;
    }
    const Micros elapsed = wall.NowMicros() - start;
    table.AddRow({bitmaps ? "multires + bitmap" : "multires only",
                  std::to_string(inserts), std::to_string(moves),
                  StringPrintf("%.1f", elapsed / 1000.0),
                  StringPrintf("%.0f", (inserts + moves) * 1e6 /
                                           std::max<Micros>(elapsed, 1))});
  }
  table.Print("B7a: index maintenance under mixed insert + degradation "
              "(9000 inserts, 20-minute degradation cadence)");
}

void RunBitmapDensity() {
  VirtualClock clock;
  DbOptions options;
  options.bitmap_indexes = true;
  auto test = bench::OpenFreshDb("index_density", &clock, options);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 4);
  test.db->CreateTable("pings", workload.schema).status();
  bench::InsertPings(test.db.get(), &clock, workload, "pings", 10000,
                     kMicrosPerSecond);
  // March the whole population to the region phase.
  clock.Advance(kMicrosPerHour + kMicrosPerDay);
  test.db->RunDegradationOnce().status().ok();

  // Indexes are per partition; the default (1 partition) keeps the
  // pre-partitioning numbers.
  const TablePartition* t = test.db->GetTable("pings")->partition(0);
  const BitmapColumnIndex* bitmap = t->bitmap_index(0);
  TablePrinter table({"phase", "level", "distinct values", "rows/value"});
  const AttributeLcp lcp = Fig2LocationLcp();
  for (int p = 0; p < lcp.num_phases(); ++p) {
    const size_t distinct = bitmap->DistinctInPhase(p);
    const uint64_t entries = t->multires_index(0)->EntriesInPhase(p);
    table.AddRow({StringPrintf("d%d", p),
                  std::to_string(lcp.phase(p).level),
                  std::to_string(distinct),
                  distinct == 0 ? "-"
                                : StringPrintf("%.0f", static_cast<double>(entries) /
                                                           distinct)});
  }
  table.Print("B7b: value-domain collapse per phase after degradation "
              "(10000 tuples, fanout-4 tree)");
  std::printf("bitmap index memory: %zu bytes\n", bitmap->MemoryBytes());
}

struct AggSetup {
  VirtualClock clock;
  bench::TestDb test;
  bench::PingWorkload workload;
};

AggSetup* SharedAggSetup() {
  static AggSetup* setup = [] {
    auto* s = new AggSetup();
    DbOptions options;
    options.bitmap_indexes = true;
    s->test = bench::OpenFreshDb("index_agg", &s->clock, options);
    s->workload = bench::MakePingWorkload(Fig2LocationLcp(), 4);
    s->test.db->CreateTable("pings", s->workload.schema).status();
    bench::InsertPings(s->test.db.get(), &s->clock, s->workload, "pings",
                       20000, kMicrosPerSecond);
    s->clock.Advance(kMicrosPerHour + kMicrosPerDay);
    s->test.db->RunDegradationOnce().status().ok();
    return s;
  }();
  return setup;
}

void BM_CoarseCountBitmap(benchmark::State& state) {
  AggSetup* setup = SharedAggSetup();
  const auto* tree =
      static_cast<const GeneralizationTree*>(setup->workload.domain.get());
  const std::string region = tree->LabelsAtLevel(2).front();
  Table* table = setup->test.db->GetTable("pings");
  const int col = table->schema().FindColumn("location");
  for (auto _ : state) {
    auto bitmap = table->BitmapLookupEqual(col, Value::String(region), 2);
    benchmark::DoNotOptimize(bitmap->Count());
  }
  state.SetLabel("bitmap OR + popcount");
}
BENCHMARK(BM_CoarseCountBitmap)->Unit(benchmark::kMicrosecond);

void BM_CoarseCountTree(benchmark::State& state) {
  AggSetup* setup = SharedAggSetup();
  const auto* tree =
      static_cast<const GeneralizationTree*>(setup->workload.domain.get());
  const std::string region = tree->LabelsAtLevel(2).front();
  Table* table = setup->test.db->GetTable("pings");
  const int col = table->schema().FindColumn("location");
  for (auto _ : state) {
    std::vector<RowId> rids;
    table->IndexLookupEqual(col, Value::String(region), 2, &rids).ok();
    benchmark::DoNotOptimize(rids.size());
  }
  state.SetLabel("multires range scan");
}
BENCHMARK(BM_CoarseCountTree)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  RunMaintenance();
  RunBitmapDensity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
