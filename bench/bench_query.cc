// B6 (paper challenge — "How to speed up queries involving degradable
// attributes?", OLTP side):
// selection latency vs. accuracy level for three access paths: full scan,
// the multi-resolution index, and a naive single B+-tree that only indexes
// accurate (phase-0) values and must fall back to scanning degraded data
// (modeled by disabling index use for the degraded part).
//
// Also shows the paper's observation that OLTP queries become LESS
// selective as attributes degrade: one city-level key covers many rows.
//
// Expected shape: multi-resolution index answers coarse queries in time
// proportional to the result, the scan in time proportional to the table;
// selectivity decays by roughly the domain fan-out per level.
//
// Emits BENCH_query.json via the shared JsonEmitter: the selectivity table,
// per-access-path SELECT latency series (indexed vs full scan per level)
// and the scan-parallelism series over the 4-partition setup table.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "support/bench_util.h"

using namespace instantdb;
using bench::JsonEmitter;
using bench::TablePrinter;

namespace {

constexpr size_t kTuples = 20000;

struct QuerySetup {
  VirtualClock clock;
  bench::TestDb test;
  bench::PingWorkload workload;
  const GeneralizationTree* tree = nullptr;
};

std::unique_ptr<QuerySetup> MakeSetup() {
  auto setup = std::make_unique<QuerySetup>();
  // Partitioned setup so the SQL scan paths exercise the parallel read
  // path's fan-out (ScanOptions::parallelism defaults to the pool size).
  DbOptions options;
  options.partitions = 4;
  options.degradation.worker_threads = 4;
  setup->test = bench::OpenFreshDb("query", &setup->clock, options);
  setup->workload = bench::MakePingWorkload(Fig2LocationLcp(), 4);
  setup->tree =
      static_cast<const GeneralizationTree*>(setup->workload.domain.get());
  setup->test.db->CreateTable("pings", setup->workload.schema).status();
  // Insert over ~2h so the table holds a mix of phase-0 and phase-1 data.
  bench::InsertPings(setup->test.db.get(), &setup->clock, setup->workload,
                     "pings", kTuples, 2 * kMicrosPerHour / kTuples);
  setup->test.db->RunDegradationOnce().status().ok();
  return setup;
}

/// Wall-clock latency series of one SQL statement, executed `iters` times
/// through `session`, recorded into the shared JsonEmitter.
double RecordSqlSeries(Session* session, const std::string& name,
                       const std::string& sql, int iters) {
  SystemClock wall;
  Histogram latency;
  uint64_t rows = 0;
  for (int i = 0; i < iters; ++i) {
    const Micros t0 = wall.NowMicros();
    auto result = session->Execute(sql);
    latency.Add(static_cast<double>(wall.NowMicros() - t0));
    if (result.ok()) rows = result->affected_rows;
  }
  const double mean_us = latency.mean() <= 0 ? 1 : latency.mean();
  const double ops_per_sec = 1e6 / mean_us;
  JsonEmitter::Instance().AddSeries(name, ops_per_sec, latency);
  JsonEmitter::Instance().AddScalar(name + "_rows",
                                    static_cast<double>(rows));
  return mean_us;
}

void RunSelectivity() {
  auto setup = MakeSetup();
  Session session(setup->test.db.get());
  TablePrinter table({"accuracy level", "predicate", "matching rows",
                      "selectivity", "index rows visited", "scan rows visited"});
  const char* kLevels[4] = {"ADDRESS", "CITY", "REGION", "COUNTRY"};
  for (int level = 0; level < 4; ++level) {
    session.Execute(StringPrintf(
        "DECLARE PURPOSE P%d SET ACCURACY LEVEL %s FOR pings.location", level,
        kLevels[level])).status();
    const std::string label = setup->tree->LabelsAtLevel(level).front();
    const std::string sql = StringPrintf(
        "SELECT COUNT(*) FROM pings WHERE location = '%s'", label.c_str());
    session.set_use_indexes(true);
    auto indexed = session.Execute(sql);
    session.set_use_indexes(false);
    auto scanned = session.Execute(sql);
    const int64_t matches =
        indexed.ok() && !indexed->rows.empty() ? indexed->rows[0][0].int64() : -1;
    const int64_t scan_matches =
        scanned.ok() && !scanned->rows.empty() ? scanned->rows[0][0].int64() : -1;
    table.AddRow({kLevels[level], "location = '" + label + "'",
                  std::to_string(matches),
                  StringPrintf("%.2f%%", 100.0 * matches / kTuples),
                  std::to_string(matches),
                  StringPrintf("%zu (all)", kTuples)});
    if (matches != scan_matches) {
      std::printf("!! index/scan mismatch at level %d: %lld vs %lld\n", level,
                  static_cast<long long>(matches),
                  static_cast<long long>(scan_matches));
    }
  }
  table.Print(
      "B6a: selectivity decay as accuracy coarsens (20000 tuples, fanout-4 "
      "tree; equality predicate on one node per level)");
}

/// Per-access-path SELECT latency into the JSON: the multi-resolution index
/// vs the (parallel) full scan at each accuracy level — the machine-
/// readable form of the paper's B6 comparison.
void RunAccessPathSeries() {
  auto setup = MakeSetup();
  Session session(setup->test.db.get());
  TablePrinter table({"accuracy level", "indexed us", "scan us"});
  const char* kLevels[4] = {"ADDRESS", "CITY", "REGION", "COUNTRY"};
  for (int level = 0; level < 4; ++level) {
    session.Execute(StringPrintf(
        "DECLARE PURPOSE S%d SET ACCURACY LEVEL %s FOR pings.location", level,
        kLevels[level])).status();
    const std::string label = setup->tree->LabelsAtLevel(level).front();
    const std::string sql = StringPrintf(
        "SELECT COUNT(*) FROM pings WHERE location = '%s'", label.c_str());
    session.set_use_indexes(true);
    const double indexed = RecordSqlSeries(
        &session, StringPrintf("select_indexed_level%d", level), sql, 20);
    session.set_use_indexes(false);
    const double scanned = RecordSqlSeries(
        &session, StringPrintf("select_scan_level%d", level), sql, 10);
    session.set_use_indexes(true);
    table.AddRow({kLevels[level], StringPrintf("%.0f", indexed),
                  StringPrintf("%.0f", scanned)});
  }
  table.Print("B6b: SELECT latency by access path (mean us per statement)");
}

/// Scan parallelism over the 4-partition setup table: the same full-scan
/// SELECT at ScanOptions::parallelism 1 vs 4, streamed and materialized.
/// On a single core the hot (page-cached) scan shows parity — the cold-scan
/// fan-out win is measured in bench_partition_scaling, where the table
/// out-sizes the caches.
void RunScanParallelism() {
  auto setup = MakeSetup();
  Session session(setup->test.db.get());
  session.set_use_indexes(false);
  TablePrinter table({"parallelism", "count(*) us", "full drain us"});
  for (size_t parallelism : {1u, 4u}) {
    session.scan_options().parallelism = parallelism;
    const double agg = RecordSqlSeries(
        &session, StringPrintf("scan_count_par%zu", parallelism),
        "SELECT COUNT(*) FROM pings", 10);
    const double drain = RecordSqlSeries(
        &session, StringPrintf("scan_drain_par%zu", parallelism),
        "SELECT user, location FROM pings", 10);
    table.AddRow({std::to_string(parallelism), StringPrintf("%.0f", agg),
                  StringPrintf("%.0f", drain)});
  }
  table.Print(
      "scan parallelism (hot, 20000 tuples, 4 partitions): COUNT(*) and "
      "materializing drain at parallelism 1 vs 4");
}

/// Setup for the pushdown series: `partitions` partitions and a schema with
/// a UNIQUE stable int score (0..n-1), so "score < K" selects exactly K rows
/// — selectivity is exact by construction.
std::unique_ptr<QuerySetup> MakeScoredSetup(uint32_t partitions, size_t rows) {
  auto setup = std::make_unique<QuerySetup>();
  DbOptions options;
  options.partitions = partitions;
  options.degradation.worker_threads = partitions;
  setup->test = bench::OpenFreshDb("query_pushdown", &setup->clock, options);
  setup->workload = bench::MakePingWorkload(Fig2LocationLcp(), 4);
  setup->tree =
      static_cast<const GeneralizationTree*>(setup->workload.domain.get());
  auto schema = Schema::Make(
      {ColumnDef::Stable("user", ValueType::kString),
       ColumnDef::Stable("score", ValueType::kInt64),
       ColumnDef::Degradable("location", setup->workload.domain,
                             Fig2LocationLcp())});
  setup->test.db->CreateTable("scored", *schema).status();
  const auto& addresses = setup->workload.addresses;
  for (size_t start = 0; start < rows; start += 100) {
    WriteBatch batch;
    for (size_t i = start; i < std::min(start + 100, rows); ++i) {
      batch.Insert("scored",
                   {Value::String("u" + std::to_string(i)),
                    Value::Int64(static_cast<int64_t>(i)),
                    Value::String(addresses[i % addresses.size()])});
    }
    setup->test.db->Write(&batch).ok();
    setup->clock.Advance(2 * kMicrosPerHour / (rows / 100));
  }
  setup->test.db->RunDegradationOnce().status().ok();
  return setup;
}

/// Predicate pushdown on a selective stable term: latency of draining the
/// qualifying rows at 0.1% / 1% / 10% selectivity with the stable filter
/// run below row assembly (state stores probed only for survivors) vs the
/// reference path (full RowView assembly, σ above), plus the raw full-table
/// drain as the decode-everything floor. Sequential scan (parallelism 1):
/// this isolates the pushdown win from fan-out.
void RunPushdownSelectivity() {
  constexpr size_t kRows = 20000;
  auto setup = MakeScoredSetup(4, kRows);
  Session session(setup->test.db.get());
  session.set_use_indexes(false);
  session.scan_options().parallelism = 1;
  session.Execute(
      "DECLARE PURPOSE PD SET ACCURACY LEVEL CITY FOR scored.location")
      .status();
  TablePrinter table({"selectivity", "pushdown us", "reference us", "speedup"});
  const struct {
    const char* label;
    const char* tag;
    size_t matches;
  } kPoints[] = {{"0.1%", "sel01", 20}, {"1%", "sel1", 200},
                 {"10%", "sel10", 2000}};
  for (const auto& point : kPoints) {
    const std::string sql = StringPrintf(
        "SELECT user, location FROM scored WHERE score < %zu", point.matches);
    session.scan_options().pushdown = true;
    const double pushed = RecordSqlSeries(
        &session, StringPrintf("pushdown_scan_%s_on", point.tag), sql, 10);
    session.scan_options().pushdown = false;
    const double reference = RecordSqlSeries(
        &session, StringPrintf("pushdown_scan_%s_off", point.tag), sql, 10);
    table.AddRow({point.label, StringPrintf("%.0f", pushed),
                  StringPrintf("%.0f", reference),
                  StringPrintf("%.1fx", reference / pushed)});
  }
  session.scan_options().pushdown = false;
  RecordSqlSeries(&session, "pushdown_scan_fulldecode",
                  "SELECT user, location FROM scored", 10);
  table.Print(
      "pushdown: selective stable-predicate scan (20000 tuples, parallelism "
      "1) — stable filter below row assembly vs full assembly + σ");
}

/// Aggregate pushdown: COUNT(*) / SUM over 8 partitions with per-worker
/// partials folded inside the scan (COUNT(*) additionally skips every state
/// store probe) vs the cursor path materializing every row first.
void RunAggregatePushdown() {
  constexpr size_t kRows = 20000;
  auto setup = MakeScoredSetup(8, kRows);
  Session session(setup->test.db.get());
  session.set_use_indexes(false);
  session.Execute(
      "DECLARE PURPOSE PA SET ACCURACY LEVEL CITY FOR scored.location")
      .status();
  TablePrinter table(
      {"aggregate", "parallelism", "pushdown us", "reference us", "speedup"});
  const struct {
    const char* name;
    const char* sql;
  } kAggregates[] = {
      {"count", "SELECT COUNT(*) FROM scored"},
      {"sum", "SELECT SUM(score) FROM scored WHERE score < 10000"},
  };
  for (const auto& agg : kAggregates) {
    for (size_t parallelism : {1u, 8u}) {
      session.scan_options().parallelism = parallelism;
      session.scan_options().pushdown = true;
      const double pushed = RecordSqlSeries(
          &session,
          StringPrintf("agg_pushdown_%s_par%zu_on", agg.name, parallelism),
          agg.sql, 15);
      session.scan_options().pushdown = false;
      const double reference = RecordSqlSeries(
          &session,
          StringPrintf("agg_pushdown_%s_par%zu_off", agg.name, parallelism),
          agg.sql, 15);
      table.AddRow({agg.name, std::to_string(parallelism),
                    StringPrintf("%.0f", pushed),
                    StringPrintf("%.0f", reference),
                    StringPrintf("%.1fx", reference / pushed)});
    }
  }
  table.Print(
      "aggregate pushdown (20000 tuples, 8 partitions): per-partition "
      "partials in the scan workers vs cursor aggregation");
}

QuerySetup* SharedSetup() {
  static QuerySetup* setup = MakeSetup().release();
  return setup;
}

void BM_QueryIndexed(benchmark::State& state) {
  QuerySetup* setup = SharedSetup();
  const int level = static_cast<int>(state.range(0));
  const std::string label = setup->tree->LabelsAtLevel(level).front();
  Table* table = setup->test.db->GetTable("pings");
  const int col = table->schema().FindColumn("location");
  for (auto _ : state) {
    std::vector<RowId> rids;
    auto status = table->IndexLookupEqual(col, Value::String(label), level, &rids);
    benchmark::DoNotOptimize(rids);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetLabel(StringPrintf("level=%d multires-index", level));
}
BENCHMARK(BM_QueryIndexed)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_QueryScan(benchmark::State& state) {
  QuerySetup* setup = SharedSetup();
  const int level = static_cast<int>(state.range(0));
  const std::string label = setup->tree->LabelsAtLevel(level).front();
  Session session(setup->test.db.get());
  session.set_use_indexes(false);
  const char* kLevels[4] = {"ADDRESS", "CITY", "REGION", "COUNTRY"};
  session.Execute(StringPrintf(
      "DECLARE PURPOSE B SET ACCURACY LEVEL %s FOR pings.location",
      kLevels[level])).status();
  const std::string sql = StringPrintf(
      "SELECT COUNT(*) FROM pings WHERE location = '%s'", label.c_str());
  for (auto _ : state) {
    auto result = session.Execute(sql);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(StringPrintf("level=%d full-scan", level));
}
BENCHMARK(BM_QueryScan)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_QuerySqlIndexed(benchmark::State& state) {
  QuerySetup* setup = SharedSetup();
  const int level = static_cast<int>(state.range(0));
  const std::string label = setup->tree->LabelsAtLevel(level).front();
  Session session(setup->test.db.get());
  const char* kLevels[4] = {"ADDRESS", "CITY", "REGION", "COUNTRY"};
  session.Execute(StringPrintf(
      "DECLARE PURPOSE C SET ACCURACY LEVEL %s FOR pings.location",
      kLevels[level])).status();
  const std::string sql = StringPrintf(
      "SELECT COUNT(*) FROM pings WHERE location = '%s'", label.c_str());
  for (auto _ : state) {
    auto result = session.Execute(sql);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(StringPrintf("level=%d sql+index", level));
}
BENCHMARK(BM_QuerySqlIndexed)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  RunSelectivity();
  RunAccessPathSeries();
  RunScanParallelism();
  RunPushdownSelectivity();
  RunAggregatePushdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;  // JsonEmitter flushes BENCH_<program>.json at exit
}
