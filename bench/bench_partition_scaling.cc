// Partition scaling: scan, batched-ingest and degradation throughput at
// 1/2/4/8 hash-partitions with the degradation worker pool enabled, plus
// WAL-stream scaling: durable batched ingest at 8 partitions over
// 1/2/4/8 log streams.
//
// What partitioning buys: every partition owns its own heap, buffer pool,
// state stores and reader-writer latch, so ingest threads, partition scans
// and degradation workers proceed in parallel instead of serializing on one
// per-table latch. What WAL sharding buys: commits route to per-partition
// log streams (batch-affine row allocation puts a WriteBatch's rows in one
// partition, hence one stream), so commits neither queue on a single log
// mutex nor — the dominant effect for durable ingest — behind one file's
// fsync: syncs on distinct streams overlap in the I/O layer even on a
// single core.
//
// Emits BENCH_partition_scaling.json with one throughput series per
// (metric, partitions), per-stream-count durable-ingest series carrying
// p50/p99 commit latency, WAL sync counts, and speedup scalars — plus the
// commit-pipeline scenarios: multi-writer durable ingest on ONE stream
// (group-commit absorption: syncs per commit < 1 at 16 writers) and the
// incremental-checkpoint dirty/clean partition counts.

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "support/bench_util.h"
#include "util/file.h"

using namespace instantdb;
using bench::JsonEmitter;
using bench::TablePrinter;

namespace {

constexpr size_t kRows = 20000;
constexpr size_t kBatchRows = 100;

// Durable (sync-on-commit) stream-scaling scenario: small OLTP-style
// WriteBatches, so the per-commit log sync — the thing sharding
// parallelizes — dominates over per-row CPU. Large batches amortize the
// sync and need partition/CPU scaling instead (first table).
constexpr size_t kStreamRows = 40000;
constexpr size_t kStreamBatchRows = 4;
constexpr uint32_t kStreamPartitions = 8;

struct Throughput {
  double ingest = 0;   // rows committed per second
  double scan = 0;     // rows assembled per second (partition-parallel)
  double degrade = 0;  // values degraded per second
  Histogram commit_latency_us;
  uint64_t commits = 0;
  // Commit-pipeline counters (Database::Stats deltas, not file-I/O
  // inference): fdatasyncs issued, durability demands, demands absorbed by
  // another leader's sync.
  uint64_t wal_syncs = 0;
  uint64_t wal_sync_requests = 0;
  uint64_t wal_commits_absorbed = 0;
};

/// Batched ingest with `writers` concurrent threads; returns rows/s and
/// fills the per-commit latency histogram and commit-pipeline deltas.
void RunIngest(Database* db, SystemClock* wall, const bench::PingWorkload& workload,
               size_t total_rows, size_t batch_rows, size_t writers,
               Throughput* result) {
  const size_t batches = total_rows / batch_rows;
  std::atomic<size_t> next_batch{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> commits{0};
  std::mutex latency_mu;
  Histogram latency;
  const Database::Stats before = db->stats();
  const Micros start = wall->NowMicros();
  std::vector<std::thread> threads;
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&] {
      Histogram local;
      while (next_batch.fetch_add(1) < batches) {
        WriteBatch batch;
        for (size_t r = 0; r < batch_rows; ++r) {
          batch.Insert("pings",
                       {Value::String("u"),
                        Value::String(workload.addresses[r %
                                      workload.addresses.size()])});
        }
        const Micros t0 = wall->NowMicros();
        if (db->Write(&batch).ok()) {
          committed += batch.size();
          ++commits;
        }
        local.Add(static_cast<double>(wall->NowMicros() - t0));
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      latency.Merge(local);
    });
  }
  for (auto& t : threads) t.join();
  const Micros elapsed = std::max<Micros>(wall->NowMicros() - start, 1);
  const Database::Stats after = db->stats();
  result->ingest = committed.load() * 1e6 / elapsed;
  result->commit_latency_us = latency;
  result->commits = commits.load();
  result->wal_syncs = after.wal.syncs - before.wal.syncs;
  result->wal_sync_requests = after.wal.sync_requests - before.wal.sync_requests;
  result->wal_commits_absorbed =
      after.wal.commits_absorbed - before.wal.commits_absorbed;
}

Throughput RunOneConfig(uint32_t partitions) {
  SystemClock wall;
  VirtualClock clock;
  DbOptions options;
  options.partitions = partitions;
  options.degradation.worker_threads = partitions;
  auto test = bench::OpenFreshDb(
      "partition_scaling_p" + std::to_string(partitions), &clock, options);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 4);
  test.db->CreateTable("pings", workload.schema).status();

  Throughput result;

  // --- batched ingest, one writer thread per partition -----------------------
  RunIngest(test.db.get(), &wall, workload, kRows, kBatchRows, partitions,
            &result);

  // --- partition-parallel scan (sharded by hand via partition cursors, the
  // API the degradation-audit sweeps use) ------------------------------------
  {
    Table* table = test.db->GetTable("pings");
    std::atomic<uint64_t> scanned{0};
    const Micros start = wall.NowMicros();
    std::vector<std::thread> threads;
    for (uint32_t p = 0; p < table->num_partitions(); ++p) {
      threads.emplace_back([&, p] {
        PartitionCursor cursor = table->OpenPartitionCursor(p);
        std::vector<RowView> views;
        uint64_t rows = 0;
        bool done = false;
        while (!done) {
          views.clear();
          if (!cursor.NextBatch(256, &views, &done).ok()) break;
          rows += views.size();
        }
        scanned += rows;
      });
    }
    for (auto& t : threads) t.join();
    const Micros elapsed = std::max<Micros>(wall.NowMicros() - start, 1);
    result.scan = scanned.load() * 1e6 / elapsed;
  }

  // --- degradation step storm over the worker pool ---------------------------
  {
    clock.Advance(kMicrosPerHour);  // every tuple crosses address -> city
    const Micros start = wall.NowMicros();
    auto moved = test.db->RunDegradationOnce();
    const Micros elapsed = std::max<Micros>(wall.NowMicros() - start, 1);
    result.degrade = (moved.ok() ? *moved : 0) * 1e6 / elapsed;
  }
  return result;
}

void RunScaling() {
  TablePrinter table({"partitions", "ingest rows/s", "ingest p99 us",
                      "wal syncs", "scan rows/s", "degrade values/s"});
  double base_scan = 0, base_degrade = 0, base_ingest = 0;
  double best_scan = 0, best_degrade = 0;
  for (uint32_t partitions : {1u, 2u, 4u, 8u}) {
    const Throughput t = RunOneConfig(partitions);
    if (partitions == 1) {
      base_ingest = t.ingest;
      base_scan = t.scan;
      base_degrade = t.degrade;
    }
    if (partitions == 4) {
      best_scan = t.scan;
      best_degrade = t.degrade;
    }
    table.AddRow({std::to_string(partitions),
                  StringPrintf("%.0f", t.ingest),
                  StringPrintf("%.0f", t.commit_latency_us.Percentile(99)),
                  std::to_string(t.wal_syncs),
                  StringPrintf("%.0f", t.scan),
                  StringPrintf("%.0f", t.degrade)});
    const std::string suffix = "_p" + std::to_string(partitions);
    JsonEmitter::Instance().AddSeries("ingest" + suffix, t.ingest,
                                      t.commit_latency_us);
    JsonEmitter::Instance().AddScalar("ingest_rows_per_sec" + suffix, t.ingest);
    JsonEmitter::Instance().AddScalar("wal_syncs" + suffix,
                                      static_cast<double>(t.wal_syncs));
    JsonEmitter::Instance().AddScalar("scan_rows_per_sec" + suffix, t.scan);
    JsonEmitter::Instance().AddScalar("degrade_values_per_sec" + suffix,
                                      t.degrade);
  }
  table.Print(StringPrintf(
      "partition scaling: %zu rows, writer/scanner/degrader parallelism = "
      "partition count (%u hardware threads)",
      kRows, std::thread::hardware_concurrency()));
  if (base_scan > 0) {
    JsonEmitter::Instance().AddScalar("scan_speedup_p4_vs_p1",
                                      best_scan / base_scan);
  }
  if (base_degrade > 0) {
    JsonEmitter::Instance().AddScalar("degrade_speedup_p4_vs_p1",
                                      best_degrade / base_degrade);
  }
  if (base_ingest > 0) {
    std::printf(
        "\nShape check: with >= 4 cores, scan and degradation throughput\n"
        "should reach >= 2x their 1-partition baseline by 4 partitions\n"
        "(each worker owns distinct latches and store locks).\n");
  }
}

/// Parallel read path: one SELECT drained through the streaming cursor at
/// ScanOptions::parallelism 1/2/4/8 over an 8-partition table of payload-
/// heavy rows, COLD — the table is checkpointed, the partition buffer pools
/// are kept tiny and the OS page cache is evicted before every run, so the
/// scan actually reads the device. This is the configuration partition
/// fan-out exists for: with one core the speedup comes from overlapping
/// partition reads in the I/O layer and overlapping I/O with σ/π (the
/// sequential scan pays CPU + I/O additively; the fan-out pays roughly
/// max of the two), and on a multi-core box CPU scaling stacks on top.
/// Prefetch stalls (consumer waited on an empty queue) come from
/// Database::stats().scan — a stall-heavy run is producer/I/O-bound, which
/// is exactly when adding workers helps.
void RunParallelScanScaling() {
  constexpr uint32_t kScanPartitions = 8;
  constexpr size_t kScanRowCount = 96000;
  constexpr size_t kPayloadBytes = 2048;

  SystemClock wall;
  VirtualClock clock;
  DbOptions options;
  options.partitions = kScanPartitions;
  options.degradation.worker_threads = kScanPartitions;
  // 1 MiB of buffer pool per partition: a ~260 MB table never fits, so
  // every scan misses the pool and the page-cache eviction below makes the
  // misses hit the device.
  options.storage.buffer_pool_pages = 128;
  auto test = bench::OpenFreshDb("parallel_scan", &clock, options);
  auto schema = Schema::Make(
      {ColumnDef::Stable("id", ValueType::kInt64),
       ColumnDef::Stable("payload", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp())});
  test.db->CreateTable("events", *schema).status();

  const char* kAddresses[] = {"11 Rue Lepic", "3 Av Foch", "12 Rue Royale",
                              "4 Rue Breteuil", "8 Cours Mirabeau"};
  const std::string payload(kPayloadBytes, 'x');
  for (size_t start = 0; start < kScanRowCount; start += 100) {
    WriteBatch batch;  // batches are partition-affine: many batches spread
    for (size_t i = start; i < start + 100 && i < kScanRowCount; ++i) {
      batch.Insert("events", {Value::Int64(static_cast<int64_t>(i)),
                              Value::String(payload),
                              Value::String(kAddresses[i % 5])});
    }
    test.db->Write(&batch).ok();
  }
  test.db->Checkpoint().ok();  // heap pages on disk, stores flushed

  TablePrinter table({"parallelism", "cold scan rows/s", "elapsed ms",
                      "prefetch stalls", "scan batches"});
  Session session(test.db.get());
  double base = 0, best = 0;
  for (size_t parallelism : {1u, 2u, 4u, 8u}) {
    EvictDirFromOsCache(test.path).ok();
    session.scan_options().parallelism = parallelism;
    const Database::Stats before = test.db->stats();
    const Micros start = wall.NowMicros();
    uint64_t rows = 0;
    auto cursor = session.ExecuteCursor("SELECT id, location FROM events");
    if (cursor.ok()) {
      const CursorBatch* batch = nullptr;
      while (true) {
        auto more = (*cursor)->NextBatch(&batch);
        if (!more.ok() || !*more) break;
        rows += batch->size();
      }
    }
    const Micros elapsed = std::max<Micros>(wall.NowMicros() - start, 1);
    const Database::Stats after = test.db->stats();
    const double rows_per_sec = rows * 1e6 / elapsed;
    if (parallelism == 1) base = rows_per_sec;
    if (parallelism == 8) best = rows_per_sec;
    const uint64_t stalls =
        after.scan.prefetch_stalls - before.scan.prefetch_stalls;
    const uint64_t batches = after.scan.batches - before.scan.batches;
    table.AddRow({std::to_string(parallelism),
                  StringPrintf("%.0f", rows_per_sec),
                  StringPrintf("%llu",
                               static_cast<unsigned long long>(elapsed / 1000)),
                  std::to_string(stalls), std::to_string(batches)});
    const std::string suffix = "_par" + std::to_string(parallelism);
    JsonEmitter::Instance().AddScalar("parallel_scan_rows_per_sec" + suffix,
                                      rows_per_sec);
    JsonEmitter::Instance().AddScalar("parallel_scan_stalls" + suffix,
                                      static_cast<double>(stalls));
    if (rows != kScanRowCount) {
      std::printf("!! parallel scan returned %llu of %zu rows\n",
                  static_cast<unsigned long long>(rows), kScanRowCount);
    }
  }
  table.Print(StringPrintf(
      "parallel read path: cold SELECT over %zu x %zu-byte rows, "
      "%u partitions, page cache evicted per run (%u hardware threads)",
      kScanRowCount, kPayloadBytes, kScanPartitions,
      std::thread::hardware_concurrency()));
  if (base > 0) {
    JsonEmitter::Instance().AddScalar("parallel_scan_speedup_par8_vs_par1",
                                      best / base);
    std::printf("\ncold scan speedup, parallelism 8 vs 1: %.2fx\n",
                best / base);
  }
}

/// Durable-ingest scaling over WAL streams at a fixed 8 partitions: every
/// commit fsyncs. With one stream all commits queue behind one file's sync;
/// with per-partition streams the batch-affine commits land on distinct
/// stream files whose fsyncs overlap in the I/O layer — this is the
/// configuration the WAL sharding exists for, and it scales even when the
/// CPU does not (fsync waits overlap on a single core).
void RunWalStreamScaling() {
  TablePrinter table({"wal streams", "ingest rows/s", "commit p50 us",
                      "commit p99 us", "wal syncs"});
  double base = 0, best = 0;
  for (uint32_t streams : {1u, 2u, 4u, 8u}) {
    SystemClock wall;
    VirtualClock clock;
    DbOptions options;
    options.partitions = kStreamPartitions;
    options.degradation.worker_threads = 1;
    options.wal.wal_streams = streams;
    options.wal.sync_on_commit = true;  // durable ingest: the WAL-bound case
    auto test = bench::OpenFreshDb(
        "wal_stream_scaling_s" + std::to_string(streams), &clock, options);
    auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 4);
    test.db->CreateTable("pings", workload.schema).status();

    Throughput t;
    RunIngest(test.db.get(), &wall, workload, kStreamRows, kStreamBatchRows,
              kStreamPartitions, &t);
    if (streams == 1) base = t.ingest;
    if (streams == 8) best = t.ingest;
    table.AddRow({std::to_string(streams),
                  StringPrintf("%.0f", t.ingest),
                  StringPrintf("%.0f", t.commit_latency_us.Percentile(50)),
                  StringPrintf("%.0f", t.commit_latency_us.Percentile(99)),
                  std::to_string(t.wal_syncs)});
    const std::string suffix =
        "_p" + std::to_string(kStreamPartitions) + "_s" + std::to_string(streams);
    JsonEmitter::Instance().AddSeries("durable_ingest" + suffix, t.ingest,
                                      t.commit_latency_us);
    JsonEmitter::Instance().AddScalar("durable_ingest_rows_per_sec" + suffix,
                                      t.ingest);
    JsonEmitter::Instance().AddScalar("wal_syncs" + suffix,
                                      static_cast<double>(t.wal_syncs));
  }
  table.Print(StringPrintf(
      "WAL stream scaling: durable (sync-on-commit) batched ingest, "
      "%zu rows, %u partitions, %u writers",
      kStreamRows, kStreamPartitions, kStreamPartitions));
  if (base > 0) {
    JsonEmitter::Instance().AddScalar("ingest_speedup_p8_s8_vs_s1",
                                      best / base);
    std::printf("\ndurable ingest speedup, 8 streams vs 1: %.2fx\n",
                best / base);
  }
}

// Leader-based group commit on a FEW-stream configuration: durable
// small-batch ingest over one log stream at 1/4/16 writer threads. With one
// writer every commit leads its own fdatasync (syncs per commit == 1); with
// 16 writers most commits park on the synced-LSN watermark and one leader's
// fdatasync absorbs the pack — syncs per commit drops well below 1, which
// is the acceptance signal for the asynchronous commit pipeline (stream
// sharding cannot help here: there is only one stream to sync).
void RunGroupCommitScaling() {
  constexpr size_t kGroupRows = 12000;
  constexpr size_t kGroupBatchRows = 4;
  TablePrinter table({"writers", "ingest rows/s", "syncs", "syncs/commit",
                      "absorbed", "commit p50 us", "commit p99 us"});
  for (uint32_t writers : {1u, 4u, 16u}) {
    SystemClock wall;
    VirtualClock clock;
    DbOptions options;
    options.partitions = 8;
    options.degradation.worker_threads = 1;
    options.wal.wal_streams = 1;  // few-stream: every commit shares one file
    options.wal.sync_on_commit = true;
    auto test = bench::OpenFreshDb(
        "group_commit_w" + std::to_string(writers), &clock, options);
    auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 4);
    test.db->CreateTable("pings", workload.schema).status();

    Throughput t;
    RunIngest(test.db.get(), &wall, workload, kGroupRows, kGroupBatchRows,
              writers, &t);
    const double syncs_per_commit =
        t.commits == 0 ? 0 : static_cast<double>(t.wal_syncs) / t.commits;
    table.AddRow({std::to_string(writers),
                  StringPrintf("%.0f", t.ingest),
                  std::to_string(t.wal_syncs),
                  StringPrintf("%.3f", syncs_per_commit),
                  std::to_string(t.wal_commits_absorbed),
                  StringPrintf("%.0f", t.commit_latency_us.Percentile(50)),
                  StringPrintf("%.0f", t.commit_latency_us.Percentile(99))});
    const std::string suffix = "_w" + std::to_string(writers) + "_s1";
    JsonEmitter::Instance().AddSeries("group_commit_ingest" + suffix, t.ingest,
                                      t.commit_latency_us);
    JsonEmitter::Instance().AddScalar("group_commit_rows_per_sec" + suffix,
                                      t.ingest);
    JsonEmitter::Instance().AddScalar("group_commit_syncs_per_commit" + suffix,
                                      syncs_per_commit);
    JsonEmitter::Instance().AddScalar(
        "group_commit_absorbed" + suffix,
        static_cast<double>(t.wal_commits_absorbed));
    JsonEmitter::Instance().AddScalar("group_commit_syncs" + suffix,
                                      static_cast<double>(t.wal_syncs));
  }
  table.Print(StringPrintf(
      "group commit: durable (sync-on-commit) ingest, %zu rows, batch %zu, "
      "8 partitions, ONE wal stream",
      kGroupRows, kGroupBatchRows));
  std::printf(
      "\nShape check: syncs/commit must be 1.0 at 1 writer and < 1 at 16\n"
      "writers (leader absorption working).\n");
}

// Incremental checkpointing: a mostly-clean database flushes only its dirty
// partitions. After bulk ingest dirties all 8 partitions (first checkpoint
// flushes 8), a single small batch dirties exactly one — the second
// checkpoint flushes 1 and skips 7 as clean, and a third with no writes at
// all skips everything. The skipped-clean counter is the new
// Database::Stats evidence that the segment retirement cadence no longer
// pays for cold data volume.
void RunCheckpointSkipScenario() {
  SystemClock wall;
  VirtualClock clock;
  DbOptions options;
  options.partitions = 8;
  options.degradation.worker_threads = 8;
  auto test = bench::OpenFreshDb("checkpoint_skip", &clock, options);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 4);
  test.db->CreateTable("pings", workload.schema).status();

  Throughput ignored;
  RunIngest(test.db.get(), &wall, workload, 8000, 100, 8, &ignored);
  test.db->Checkpoint().ok();  // all partitions dirty: flush everything
  const Database::Stats after_full = test.db->stats();

  WriteBatch small;
  for (int r = 0; r < 4; ++r) {
    small.Insert("pings", {Value::String("u"),
                           Value::String(workload.addresses[0])});
  }
  test.db->Write(&small).ok();
  const Micros dirty_start = wall.NowMicros();
  test.db->Checkpoint().ok();  // one dirty partition: flush 1, skip 7
  const Micros dirty_elapsed = wall.NowMicros() - dirty_start;
  const Database::Stats after_dirty = test.db->stats();

  const Micros clean_start = wall.NowMicros();
  test.db->Checkpoint().ok();  // nothing dirty: flush 0, skip 8
  const Micros clean_elapsed = wall.NowMicros() - clean_start;
  const Database::Stats after_clean = test.db->stats();

  const uint64_t dirty_flushed = after_dirty.checkpoint_partitions_flushed -
                                 after_full.checkpoint_partitions_flushed;
  const uint64_t dirty_skipped = after_dirty.checkpoint_partitions_clean -
                                 after_full.checkpoint_partitions_clean;
  const uint64_t clean_flushed = after_clean.checkpoint_partitions_flushed -
                                 after_dirty.checkpoint_partitions_flushed;
  const uint64_t clean_skipped = after_clean.checkpoint_partitions_clean -
                                 after_dirty.checkpoint_partitions_clean;
  TablePrinter table({"checkpoint", "flushed", "skipped clean", "micros"});
  table.AddRow({"after bulk ingest",
                std::to_string(after_full.checkpoint_partitions_flushed),
                std::to_string(after_full.checkpoint_partitions_clean), "-"});
  table.AddRow({"one dirty partition", std::to_string(dirty_flushed),
                std::to_string(dirty_skipped),
                std::to_string(dirty_elapsed)});
  table.AddRow({"fully clean", std::to_string(clean_flushed),
                std::to_string(clean_skipped), std::to_string(clean_elapsed)});
  table.Print(
      "incremental checkpoint: flushed vs skipped-as-clean partitions "
      "(8 partitions)");
  JsonEmitter::Instance().AddScalar("checkpoint_dirty_flushed",
                                    static_cast<double>(dirty_flushed));
  JsonEmitter::Instance().AddScalar("checkpoint_skipped_clean",
                                    static_cast<double>(dirty_skipped));
  JsonEmitter::Instance().AddScalar("checkpoint_clean_skipped_all",
                                    static_cast<double>(clean_skipped));
  JsonEmitter::Instance().AddScalar("checkpoint_clean_micros",
                                    static_cast<double>(clean_elapsed));
}

/// Skewed read path: the same cold SELECT but over a table whose rows pile
/// onto ONE hot partition of 8 (batch-affine allocation rotates per batch,
/// so big batches every 8th commit and tiny ones between land ~90% of the
/// bytes in partition 0). This is the shape partition-grained fan-out
/// cannot help with — 7 workers finish their sliver and idle while one
/// drains the hot partition — and the shape the morsel scheduler exists
/// for: the hot partition splits into page-range morsels that every idle
/// worker steals, so the speedup survives the skew. morsels_stolen deltas
/// (Database::stats().scan) are the proof of shared draining.
void RunSkewedScanScaling() {
  constexpr uint32_t kSkewPartitions = 8;
  constexpr size_t kPayloadBytes = 2048;
  constexpr size_t kHotBatchRows = 200;
  constexpr size_t kColdBatchRows = 4;
  constexpr size_t kBatches = 1600;  // 200 rounds of 1 hot + 7 cold commits

  SystemClock wall;
  VirtualClock clock;
  DbOptions options;
  options.partitions = kSkewPartitions;
  options.degradation.worker_threads = kSkewPartitions;
  options.storage.buffer_pool_pages = 128;  // never fits: scans hit disk
  auto test = bench::OpenFreshDb("skewed_scan", &clock, options);
  auto schema = Schema::Make(
      {ColumnDef::Stable("id", ValueType::kInt64),
       ColumnDef::Stable("payload", ValueType::kString),
       ColumnDef::Degradable("location", LocationDomain(), Fig2LocationLcp())});
  test.db->CreateTable("events", *schema).status();

  const char* kAddresses[] = {"11 Rue Lepic", "3 Av Foch", "12 Rue Royale",
                              "4 Rue Breteuil", "8 Cours Mirabeau"};
  const std::string payload(kPayloadBytes, 'x');
  size_t total_rows = 0;
  for (size_t b = 0; b < kBatches; ++b) {
    const size_t rows = (b % kSkewPartitions == 0) ? kHotBatchRows
                                                   : kColdBatchRows;
    WriteBatch batch;
    for (size_t r = 0; r < rows; ++r, ++total_rows) {
      batch.Insert("events",
                   {Value::Int64(static_cast<int64_t>(total_rows)),
                    Value::String(payload),
                    Value::String(kAddresses[total_rows % 5])});
    }
    test.db->Write(&batch).ok();
  }
  test.db->Checkpoint().ok();

  TablePrinter table({"parallelism", "cold scan rows/s", "elapsed ms",
                      "morsels stolen", "prefetch stalls"});
  Session session(test.db.get());
  double base = 0, best = 0;
  for (size_t parallelism : {1u, 2u, 4u, 8u}) {
    EvictDirFromOsCache(test.path).ok();
    session.scan_options().parallelism = parallelism;
    const Database::Stats before = test.db->stats();
    const Micros start = wall.NowMicros();
    uint64_t rows = 0;
    auto cursor = session.ExecuteCursor("SELECT id, location FROM events");
    if (cursor.ok()) {
      const CursorBatch* batch = nullptr;
      while (true) {
        auto more = (*cursor)->NextBatch(&batch);
        if (!more.ok() || !*more) break;
        rows += batch->size();
      }
    }
    const Micros elapsed = std::max<Micros>(wall.NowMicros() - start, 1);
    const Database::Stats after = test.db->stats();
    const double rows_per_sec = rows * 1e6 / elapsed;
    if (parallelism == 1) base = rows_per_sec;
    if (parallelism == 8) best = rows_per_sec;
    const uint64_t stolen =
        after.scan.morsels_stolen - before.scan.morsels_stolen;
    const uint64_t stalls =
        after.scan.prefetch_stalls - before.scan.prefetch_stalls;
    table.AddRow({std::to_string(parallelism),
                  StringPrintf("%.0f", rows_per_sec),
                  StringPrintf("%llu",
                               static_cast<unsigned long long>(elapsed / 1000)),
                  std::to_string(stolen), std::to_string(stalls)});
    const std::string suffix = "_par" + std::to_string(parallelism);
    JsonEmitter::Instance().AddScalar("skewed_scan_rows_per_sec" + suffix,
                                      rows_per_sec);
    JsonEmitter::Instance().AddScalar("skewed_scan_stolen" + suffix,
                                      static_cast<double>(stolen));
    if (rows != total_rows) {
      std::printf("!! skewed scan returned %llu of %zu rows\n",
                  static_cast<unsigned long long>(rows), total_rows);
    }
  }
  table.Print(StringPrintf(
      "skewed read path: cold SELECT, %zu x %zu-byte rows with ~%zu%% in one "
      "of %u partitions, page cache evicted per run (%u hardware threads)",
      total_rows, kPayloadBytes,
      kHotBatchRows * 100 /
          (kHotBatchRows + (kSkewPartitions - 1) * kColdBatchRows),
      kSkewPartitions, std::thread::hardware_concurrency()));
  if (base > 0) {
    JsonEmitter::Instance().AddScalar("skewed_scan_speedup_p8_vs_p1",
                                      best / base);
    std::printf("\nskewed cold scan speedup, parallelism 8 vs 1: %.2fx\n",
                best / base);
  }
}

}  // namespace

int main() {
  RunScaling();
  RunWalStreamScaling();
  RunGroupCommitScaling();
  RunCheckpointSkipScenario();
  // Last: the cold-scan scenarios evict the page cache and leave hundreds
  // of MB of heap behind them, which would perturb the sync-bound
  // scenarios' series if they ran before them.
  RunParallelScanScaling();
  RunSkewedScanScaling();
  return 0;  // JsonEmitter flushes BENCH_<program>.json at exit
}
