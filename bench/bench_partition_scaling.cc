// Partition scaling: scan, batched-ingest and degradation throughput at
// 1/2/4/8 hash-partitions with the degradation worker pool enabled.
//
// What partitioning buys: every partition owns its own heap, buffer pool,
// state stores and reader-writer latch, so ingest threads, partition scans
// and degradation workers proceed in parallel instead of serializing on one
// per-table latch. On a multicore box the three throughput columns should
// scale near-linearly until the core count (or the WAL, for ingest) becomes
// the bottleneck; on a single core the columns stay flat, which is itself
// the correct shape (no partitioning overhead).
//
// Emits BENCH_partition_scaling.json with one throughput series per
// (metric, partitions) plus p4-vs-p1 speedup scalars.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "support/bench_util.h"

using namespace instantdb;
using bench::JsonEmitter;
using bench::TablePrinter;

namespace {

constexpr size_t kRows = 20000;
constexpr size_t kBatchRows = 100;

struct Throughput {
  double ingest = 0;   // rows committed per second
  double scan = 0;     // rows assembled per second (partition-parallel)
  double degrade = 0;  // values degraded per second
};

Throughput RunOneConfig(uint32_t partitions) {
  SystemClock wall;
  VirtualClock clock;
  DbOptions options;
  options.partitions = partitions;
  options.degradation.worker_threads = partitions;
  auto test = bench::OpenFreshDb(
      "partition_scaling_p" + std::to_string(partitions), &clock, options);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 4);
  test.db->CreateTable("pings", workload.schema).status();

  Throughput result;

  // --- batched ingest, one writer thread per partition -----------------------
  {
    const size_t writers = partitions;
    const size_t batches = kRows / kBatchRows;
    std::atomic<size_t> next_batch{0};
    std::atomic<uint64_t> committed{0};
    const Micros start = wall.NowMicros();
    std::vector<std::thread> threads;
    for (size_t w = 0; w < writers; ++w) {
      threads.emplace_back([&] {
        while (next_batch.fetch_add(1) < batches) {
          WriteBatch batch;
          for (size_t r = 0; r < kBatchRows; ++r) {
            batch.Insert("pings",
                         {Value::String("u"),
                          Value::String(workload.addresses[r %
                                        workload.addresses.size()])});
          }
          if (test.db->Write(&batch).ok()) committed += batch.size();
        }
      });
    }
    for (auto& t : threads) t.join();
    const Micros elapsed = std::max<Micros>(wall.NowMicros() - start, 1);
    result.ingest = committed.load() * 1e6 / elapsed;
  }

  // --- partition-parallel scan -----------------------------------------------
  {
    Table* table = test.db->GetTable("pings");
    std::atomic<uint64_t> scanned{0};
    const Micros start = wall.NowMicros();
    std::vector<std::thread> threads;
    for (uint32_t p = 0; p < table->num_partitions(); ++p) {
      threads.emplace_back([&, p] {
        uint64_t rows = 0;
        bool stopped = false;
        table->partition(p)
            ->ScanRows(
                [&](const RowView&) {
                  ++rows;
                  return true;
                },
                &stopped)
            .ok();
        scanned += rows;
      });
    }
    for (auto& t : threads) t.join();
    const Micros elapsed = std::max<Micros>(wall.NowMicros() - start, 1);
    result.scan = scanned.load() * 1e6 / elapsed;
  }

  // --- degradation step storm over the worker pool ---------------------------
  {
    clock.Advance(kMicrosPerHour);  // every tuple crosses address -> city
    const Micros start = wall.NowMicros();
    auto moved = test.db->RunDegradationOnce();
    const Micros elapsed = std::max<Micros>(wall.NowMicros() - start, 1);
    result.degrade = (moved.ok() ? *moved : 0) * 1e6 / elapsed;
  }
  return result;
}

void RunScaling() {
  TablePrinter table({"partitions", "ingest rows/s", "scan rows/s",
                      "degrade values/s"});
  double base_scan = 0, base_degrade = 0, base_ingest = 0;
  double best_scan = 0, best_degrade = 0;
  for (uint32_t partitions : {1u, 2u, 4u, 8u}) {
    const Throughput t = RunOneConfig(partitions);
    if (partitions == 1) {
      base_ingest = t.ingest;
      base_scan = t.scan;
      base_degrade = t.degrade;
    }
    if (partitions == 4) {
      best_scan = t.scan;
      best_degrade = t.degrade;
    }
    table.AddRow({std::to_string(partitions),
                  StringPrintf("%.0f", t.ingest),
                  StringPrintf("%.0f", t.scan),
                  StringPrintf("%.0f", t.degrade)});
    JsonEmitter::Instance().AddScalar(
        "ingest_rows_per_sec_p" + std::to_string(partitions), t.ingest);
    JsonEmitter::Instance().AddScalar(
        "scan_rows_per_sec_p" + std::to_string(partitions), t.scan);
    JsonEmitter::Instance().AddScalar(
        "degrade_values_per_sec_p" + std::to_string(partitions), t.degrade);
  }
  table.Print(StringPrintf(
      "partition scaling: %zu rows, writer/scanner/degrader parallelism = "
      "partition count (%u hardware threads)",
      kRows, std::thread::hardware_concurrency()));
  if (base_scan > 0) {
    JsonEmitter::Instance().AddScalar("scan_speedup_p4_vs_p1",
                                      best_scan / base_scan);
  }
  if (base_degrade > 0) {
    JsonEmitter::Instance().AddScalar("degrade_speedup_p4_vs_p1",
                                      best_degrade / base_degrade);
  }
  if (base_ingest > 0) {
    std::printf(
        "\nShape check: with >= 4 cores, scan and degradation throughput\n"
        "should reach >= 2x their 1-partition baseline by 4 partitions\n"
        "(each worker owns distinct latches and store locks); ingest scales\n"
        "until the shared WAL serializes group commits.\n");
  }
}

}  // namespace

int main() {
  RunScaling();
  return 0;  // JsonEmitter flushes BENCH_<program>.json at exit
}
