// B5 (paper challenge — degradation must reach the logs):
// the three WAL privacy strategies compared on (a) ingest cost and
// (b) accurate-value residue left in log files after the data degraded.
//
// Expected shape: kPlain is fastest but leaves every accurate value
// recoverable in recycled segments (the Stahlberg et al. forensic threat);
// kScrub removes residue at the cost of overwrite I/O tied to the
// checkpoint cadence; kEncryptedEpoch never writes plaintext and retires
// epochs by destroying one key — near-plain cost, zero residue.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "support/bench_util.h"

using namespace instantdb;
using bench::TablePrinter;

namespace {

const char* ModeName(WalPrivacyMode mode) {
  switch (mode) {
    case WalPrivacyMode::kPlain:
      return "plain";
    case WalPrivacyMode::kScrub:
      return "scrub";
    case WalPrivacyMode::kEncryptedEpoch:
      return "encrypted-epoch";
  }
  return "?";
}

void RunWalResidue() {
  constexpr size_t kTuples = 5000;
  TablePrinter table({"WAL mode", "ingest ms", "wal bytes", "scrub bytes",
                      "keys destroyed", "residue before ckpt",
                      "residue after degrade+ckpt"});
  for (WalPrivacyMode mode : {WalPrivacyMode::kPlain, WalPrivacyMode::kScrub,
                              WalPrivacyMode::kEncryptedEpoch}) {
    VirtualClock clock;
    DbOptions options;
    options.wal.privacy_mode = mode;
    options.wal.segment_bytes = 64 * 1024;
    options.wal.epoch_micros = kMicrosPerHour;
    auto test = bench::OpenFreshDb("wal", &clock, options);
    auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
    test.db->CreateTable("pings", workload.schema).status();

    // Use one distinctive leaf so residue is directly greppable. Ingest goes
    // through WriteBatch group commits of 500 rows — the scalable path; the
    // logged records (and hence the residue semantics) are identical to
    // per-row inserts.
    const std::string secret = workload.addresses[0];
    SystemClock wall;
    const Micros start = wall.NowMicros();
    WriteBatch batch;
    for (size_t i = 0; i < kTuples; ++i) {
      batch.Insert("pings", {Value::String("u"), Value::String(secret)});
      if (batch.size() == 500 || i + 1 == kTuples) {
        test.db->Write(&batch).ok();
        batch.Clear();
      }
    }
    const Micros ingest = wall.NowMicros() - start;
    bench::JsonEmitter::Instance().AddScalar(
        std::string("ingest_ms_") + ModeName(mode), ingest / 1000.0);
    const size_t residue_before = bench::ForensicScan(test.path, secret);

    // Cross the first degradation boundary, degrade, checkpoint.
    clock.Advance(kMicrosPerHour + kMicrosPerMinute);
    test.db->RunDegradationOnce().status().ok();
    test.db->Checkpoint().ok();
    const size_t residue_after = bench::ForensicScan(test.path, secret);

    const auto stats = test.db->wal()->stats();
    table.AddRow({ModeName(mode), StringPrintf("%.1f", ingest / 1000.0),
                  std::to_string(stats.bytes_appended),
                  std::to_string(stats.scrub_bytes),
                  std::to_string(stats.epoch_keys_destroyed),
                  std::to_string(residue_before),
                  std::to_string(residue_after)});
  }
  table.Print("B5: WAL privacy strategies (5000 inserts of one sensitive "
              "address, then degrade past 1h + checkpoint)");
  std::printf(
      "\nShape check: plain leaves ~5000 copies recoverable in *.recycled\n"
      "segments; scrub pays overwrite bytes to reach zero; encrypted-epoch\n"
      "reaches zero with no rewrite I/O by destroying the epoch key.\n");
}

void BM_WalAppend(benchmark::State& state) {
  const auto mode = static_cast<WalPrivacyMode>(state.range(0));
  VirtualClock clock;
  DbOptions options;
  options.wal.privacy_mode = mode;
  auto test = bench::OpenFreshDb("wal_micro", &clock, options);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  size_t i = 0;
  for (auto _ : state) {
    auto row = test.db->Insert("pings", {Value::String("user"),
                                         Value::String(workload.addresses[0])});
    benchmark::DoNotOptimize(row);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
  state.SetLabel(ModeName(mode));
}
BENCHMARK(BM_WalAppend)
    ->Arg(static_cast<int>(WalPrivacyMode::kPlain))
    ->Arg(static_cast<int>(WalPrivacyMode::kScrub))
    ->Arg(static_cast<int>(WalPrivacyMode::kEncryptedEpoch));

void BM_CheckpointCost(benchmark::State& state) {
  const auto mode = static_cast<WalPrivacyMode>(state.range(0));
  VirtualClock clock;
  DbOptions options;
  options.wal.privacy_mode = mode;
  options.wal.segment_bytes = 32 * 1024;
  auto test = bench::OpenFreshDb("wal_ckpt", &clock, options);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 500; ++i) {
      test.db->Insert("pings", {Value::String("u"),
                                Value::String(workload.addresses[0])}).status();
    }
    state.ResumeTiming();
    auto status = test.db->Checkpoint();
    benchmark::DoNotOptimize(status);
  }
  state.SetLabel(ModeName(mode));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckpointCost)
    ->Arg(static_cast<int>(WalPrivacyMode::kPlain))
    ->Arg(static_cast<int>(WalPrivacyMode::kScrub))
    ->Arg(static_cast<int>(WalPrivacyMode::kEncryptedEpoch))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunWalResidue();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
