// B8 (paper challenge — "How does data degradation impact transaction
// semantics?"):
// reader transactions run concurrently with the degrader; we measure read
// throughput, degradation progress, and lock conflicts (wait-die aborts)
// as the degradation cadence increases.
//
// Expected shape: conflicts grow with degradation frequency, but stay
// bounded because each step locks only the head of one (attribute, phase)
// store — readers of other levels and other attributes proceed untouched.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "support/bench_util.h"

using namespace instantdb;
using bench::TablePrinter;

namespace {

void RunInterference() {
  TablePrinter table({"degradation cadence", "reads done", "mean read ms",
                      "tuples degraded", "degrader passes",
                      "wait-die aborts"});
  for (Micros cadence : {kMicrosPerHour, 20 * kMicrosPerMinute,
                         5 * kMicrosPerMinute, kMicrosPerMinute}) {
    VirtualClock clock;
    auto test = bench::OpenFreshDb("txn", &clock);
    auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
    test.db->CreateTable("pings", workload.schema).status();
    // One hour of arrivals, one per second of virtual time.
    bench::InsertPings(test.db.get(), &clock, workload, "pings", 3600,
                       kMicrosPerSecond);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> read_micros{0};
    std::thread reader([&] {
      SystemClock wall;
      Session session(test.db.get());
      session.Execute("DECLARE PURPOSE R SET ACCURACY LEVEL CITY "
                      "FOR pings.location").status();
      while (!stop.load(std::memory_order_acquire)) {
        const Micros start = wall.NowMicros();
        auto result = session.Execute("SELECT COUNT(location) FROM pings");
        if (result.ok()) {
          reads.fetch_add(1, std::memory_order_relaxed);
          read_micros.fetch_add(
              static_cast<uint64_t>(wall.NowMicros() - start),
              std::memory_order_relaxed);
        }
      }
    });

    // Drive 6 virtual hours of degradation at the given cadence.
    size_t moved = 0;
    for (Micros t = 0; t < 6 * kMicrosPerHour; t += cadence) {
      clock.Advance(cadence);
      auto result = test.db->RunDegradationOnce();
      if (result.ok()) moved += *result;
    }
    stop.store(true, std::memory_order_release);
    reader.join();

    const auto stats = test.db->degradation()->stats();
    const uint64_t done = reads.load();
    table.AddRow({bench::FormatDuration(cadence), std::to_string(done),
                  done == 0 ? "-"
                            : StringPrintf("%.2f", read_micros.load() /
                                                        (1000.0 * done)),
                  std::to_string(moved), std::to_string(stats.passes),
                  std::to_string(stats.lock_aborts)});
  }
  table.Print("B8: reader/degrader interference over 6 virtual hours "
              "(3600 tuples, one reader thread at CITY accuracy)");
  std::printf(
      "\nShape check: degradation steps never block readers at the 2PL\n"
      "level (reads snapshot rows under a short-lived latch, and each step\n"
      "X-locks only one store head), so wait-die aborts stay at zero and\n"
      "reader latency stays flat (even improving as degraded values shrink\n"
      "the accurate set) — the bounded interference the design targets.\n");
}

void BM_CommitPath(benchmark::State& state) {
  VirtualClock clock;
  auto test = bench::OpenFreshDb("txn_micro", &clock);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  Table* table = test.db->GetTable("pings");
  size_t i = 0;
  for (auto _ : state) {
    auto txn = test.db->Begin();
    auto row = table->Insert(
        txn.get(), {Value::String("u"), Value::String(workload.addresses[0])});
    benchmark::DoNotOptimize(row);
    auto status = test.db->Commit(txn.get());
    benchmark::DoNotOptimize(status);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_CommitPath);

void BM_AbortPath(benchmark::State& state) {
  VirtualClock clock;
  auto test = bench::OpenFreshDb("txn_abort", &clock);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  Table* table = test.db->GetTable("pings");
  for (auto _ : state) {
    auto txn = test.db->Begin();
    auto row = table->Insert(
        txn.get(), {Value::String("u"), Value::String(workload.addresses[0])});
    benchmark::DoNotOptimize(row);
    test.db->Abort(txn.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AbortPath);

}  // namespace

int main(int argc, char** argv) {
  RunInterference();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
