// B8 (paper challenge — "How does data degradation impact transaction
// semantics?"):
// reader transactions run concurrently with the degrader; we measure read
// throughput, degradation progress, and lock conflicts (wait-die aborts)
// as the degradation cadence increases.
//
// Expected shape: conflicts grow with degradation frequency, but stay
// bounded because each step locks only the head of one (attribute, phase)
// store — readers of other levels and other attributes proceed untouched.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "support/bench_util.h"

using namespace instantdb;
using bench::TablePrinter;

namespace {

void RunInterference() {
  TablePrinter table({"degradation cadence", "reads done", "mean read ms",
                      "tuples degraded", "degrader passes",
                      "wait-die aborts"});
  for (Micros cadence : {kMicrosPerHour, 20 * kMicrosPerMinute,
                         5 * kMicrosPerMinute, kMicrosPerMinute}) {
    VirtualClock clock;
    auto test = bench::OpenFreshDb("txn", &clock);
    auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
    test.db->CreateTable("pings", workload.schema).status();
    // One hour of arrivals, one per second of virtual time.
    bench::InsertPings(test.db.get(), &clock, workload, "pings", 3600,
                       kMicrosPerSecond);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> read_micros{0};
    std::thread reader([&] {
      SystemClock wall;
      Session session(test.db.get());
      session.Execute("DECLARE PURPOSE R SET ACCURACY LEVEL CITY "
                      "FOR pings.location").status();
      while (!stop.load(std::memory_order_acquire)) {
        const Micros start = wall.NowMicros();
        auto result = session.Execute("SELECT COUNT(location) FROM pings");
        if (result.ok()) {
          reads.fetch_add(1, std::memory_order_relaxed);
          read_micros.fetch_add(
              static_cast<uint64_t>(wall.NowMicros() - start),
              std::memory_order_relaxed);
        }
      }
    });

    // Drive 6 virtual hours of degradation at the given cadence.
    size_t moved = 0;
    for (Micros t = 0; t < 6 * kMicrosPerHour; t += cadence) {
      clock.Advance(cadence);
      auto result = test.db->RunDegradationOnce();
      if (result.ok()) moved += *result;
    }
    stop.store(true, std::memory_order_release);
    reader.join();

    const auto stats = test.db->degradation()->stats();
    const uint64_t done = reads.load();
    table.AddRow({bench::FormatDuration(cadence), std::to_string(done),
                  done == 0 ? "-"
                            : StringPrintf("%.2f", read_micros.load() /
                                                        (1000.0 * done)),
                  std::to_string(moved), std::to_string(stats.passes),
                  std::to_string(stats.lock_aborts)});
  }
  table.Print("B8: reader/degrader interference over 6 virtual hours "
              "(3600 tuples, one reader thread at CITY accuracy)");
  std::printf(
      "\nShape check: degradation steps never block readers at the 2PL\n"
      "level (reads snapshot rows under a short-lived latch, and each step\n"
      "X-locks only one store head), so wait-die aborts stay at zero and\n"
      "reader latency stays flat (even improving as degraded values shrink\n"
      "the accurate set) — the bounded interference the design targets.\n");
}

// Scalable-ingest comparison: the per-row Database::Insert convenience path
// (one transaction + one WAL sync per row when durability is requested)
// against a WriteBatch committing the same rows through ONE transaction and
// one group-commit WAL sync per batch.
void RunIngestComparison() {
  constexpr size_t kRows = 5000;
  constexpr size_t kBatchRows = 1000;

  TablePrinter table({"ingest path", "rows", "wall ms", "ops/sec", "p50 us",
                      "p99 us", "wal syncs"});
  double per_row_ops = 0, batched_ops = 0;

  for (const bool batched : {false, true}) {
    VirtualClock clock;
    auto test = bench::OpenFreshDb(batched ? "ingest_batched" : "ingest_row",
                                   &clock);
    auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
    test.db->CreateTable("pings", workload.schema).status();

    WriteOptions durable;
    durable.sync = true;
    SystemClock wall;
    Histogram latency;
    const uint64_t syncs_before = test.db->wal()->stats().syncs;
    const Micros start = wall.NowMicros();
    if (batched) {
      WriteBatch batch;
      for (size_t i = 0; i < kRows; ++i) {
        batch.Insert("pings", {Value::String("u"),
                               Value::String(
                                   workload.addresses[i %
                                                      workload.addresses.size()])});
        if (batch.size() == kBatchRows || i + 1 == kRows) {
          const Micros op_start = wall.NowMicros();
          test.db->Write(&batch, durable).ok();
          latency.Add(static_cast<double>(wall.NowMicros() - op_start));
          batch.Clear();
        }
      }
    } else {
      for (size_t i = 0; i < kRows; ++i) {
        const Micros op_start = wall.NowMicros();
        test.db
            ->Insert("pings",
                     {Value::String("u"),
                      Value::String(
                          workload.addresses[i % workload.addresses.size()])},
                     durable)
            .status();
        latency.Add(static_cast<double>(wall.NowMicros() - op_start));
      }
    }
    const Micros elapsed = wall.NowMicros() - start;
    const double ops =
        elapsed == 0 ? 0 : kRows * 1e6 / static_cast<double>(elapsed);
    (batched ? batched_ops : per_row_ops) = ops;
    const char* name = batched ? "WriteBatch(1000) + group commit"
                               : "per-row Database::Insert";
    table.AddRow({name, std::to_string(kRows),
                  StringPrintf("%.1f", elapsed / 1000.0),
                  StringPrintf("%.0f", ops),
                  StringPrintf("%.0f", latency.Percentile(50)),
                  StringPrintf("%.0f", latency.Percentile(99)),
                  std::to_string(test.db->wal()->stats().syncs - syncs_before)});
    bench::JsonEmitter::Instance().AddSeries(
        batched ? "ingest_batched" : "ingest_per_row", ops, latency);
  }
  table.Print("Durable ingest: per-row transactions vs WriteBatch group "
              "commit (sync on commit)");
  const double speedup = per_row_ops == 0 ? 0 : batched_ops / per_row_ops;
  bench::JsonEmitter::Instance().AddScalar("batched_ingest_speedup", speedup);
  std::printf("\nBatched ingest throughput is %.1fx the per-row path "
              "(target: >= 5x).\n", speedup);
}

void BM_CommitPath(benchmark::State& state) {
  VirtualClock clock;
  auto test = bench::OpenFreshDb("txn_micro", &clock);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  Table* table = test.db->GetTable("pings");
  size_t i = 0;
  for (auto _ : state) {
    auto txn = test.db->Begin();
    auto row = table->Insert(
        txn.get(), {Value::String("u"), Value::String(workload.addresses[0])});
    benchmark::DoNotOptimize(row);
    auto status = test.db->Commit(txn.get());
    benchmark::DoNotOptimize(status);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_CommitPath);

void BM_AbortPath(benchmark::State& state) {
  VirtualClock clock;
  auto test = bench::OpenFreshDb("txn_abort", &clock);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  Table* table = test.db->GetTable("pings");
  for (auto _ : state) {
    auto txn = test.db->Begin();
    auto row = table->Insert(
        txn.get(), {Value::String("u"), Value::String(workload.addresses[0])});
    benchmark::DoNotOptimize(row);
    test.db->Abort(txn.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AbortPath);

void BM_WriteBatchCommit(benchmark::State& state) {
  VirtualClock clock;
  auto test = bench::OpenFreshDb("txn_batch_micro", &clock);
  auto workload = bench::MakePingWorkload(Fig2LocationLcp(), 3);
  test.db->CreateTable("pings", workload.schema).status();
  const size_t batch_rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    WriteBatch batch;
    for (size_t i = 0; i < batch_rows; ++i) {
      batch.Insert("pings", {Value::String("u"),
                             Value::String(workload.addresses[0])});
    }
    auto status = test.db->Write(&batch);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_rows));
}
BENCHMARK(BM_WriteBatchCommit)->Arg(1)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  RunInterference();
  RunIngestComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
