#include "catalog/lcp.h"

#include <algorithm>

#include "common/strings.h"

namespace instantdb {

namespace {

/// a + b with saturation at kForever.
Micros SaturatingAdd(Micros a, Micros b) {
  if (a == kForever || b == kForever) return kForever;
  if (a > kForever - b) return kForever;
  return a + b;
}

}  // namespace

Result<AttributeLcp> AttributeLcp::Make(std::vector<LcpPhase> phases) {
  if (phases.empty()) {
    return Status::InvalidArgument("LCP needs at least one phase");
  }
  int prev_level = -1;
  for (size_t i = 0; i < phases.size(); ++i) {
    if (phases[i].level <= prev_level) {
      return Status::InvalidArgument(
          "LCP levels must be strictly increasing (degradation is "
          "irreversible)");
    }
    prev_level = phases[i].level;
    if (phases[i].duration <= 0) {
      return Status::InvalidArgument("LCP phase durations must be positive");
    }
    if (phases[i].duration == kForever && i + 1 != phases.size()) {
      return Status::InvalidArgument(
          "only the last LCP phase may last forever");
    }
  }
  return AttributeLcp(std::move(phases));
}

AttributeLcp AttributeLcp::Retention(Micros ttl) {
  auto r = Make({{0, ttl}});
  return *r;
}

AttributeLcp AttributeLcp::KeepForever() {
  auto r = Make({{0, kForever}});
  return *r;
}

Micros AttributeLcp::PhaseEndOffset(int i) const {
  Micros end = 0;
  for (int p = 0; p <= i && p < num_phases(); ++p) {
    end = SaturatingAdd(end, phases_[p].duration);
  }
  return end;
}

int AttributeLcp::PhaseAt(Micros offset) const {
  Micros end = 0;
  for (int p = 0; p < num_phases(); ++p) {
    end = SaturatingAdd(end, phases_[p].duration);
    if (offset < end) return p;
  }
  return num_phases();  // removed
}

Micros AttributeLcp::ShortestStep() const {
  Micros shortest = kForever;
  for (const auto& phase : phases_) {
    shortest = std::min(shortest, phase.duration);
  }
  return shortest;
}

std::string AttributeLcp::ToString() const {
  std::string out;
  for (int i = 0; i < num_phases(); ++i) {
    if (i > 0) out += " -> ";
    out += StringPrintf("d%d(level=%d", i, phases_[i].level);
    if (phases_[i].duration == kForever) {
      out += ", forever)";
    } else {
      out += StringPrintf(", %.3gh)",
                          static_cast<double>(phases_[i].duration) /
                              static_cast<double>(kMicrosPerHour));
    }
  }
  if (DegradesFully()) out += " -> ⊥";
  return out;
}

void AttributeLcp::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(phases_.size()));
  for (const auto& phase : phases_) {
    PutVarint32(dst, static_cast<uint32_t>(phase.level));
    PutVarint64(dst, static_cast<uint64_t>(phase.duration));
  }
}

Result<AttributeLcp> AttributeLcp::DecodeFrom(Slice* input) {
  uint32_t n;
  if (!GetVarint32(input, &n)) return Status::Corruption("bad LCP");
  std::vector<LcpPhase> phases(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t level;
    uint64_t duration;
    if (!GetVarint32(input, &level) || !GetVarint64(input, &duration)) {
      return Status::Corruption("bad LCP phase");
    }
    phases[i] = {static_cast<int>(level), static_cast<Micros>(duration)};
  }
  return Make(std::move(phases));
}

// ---------------------------------------------------------------------------
// TupleLcp
// ---------------------------------------------------------------------------

TupleLcp TupleLcp::Make(const std::vector<const AttributeLcp*>& lcps) {
  TupleLcp out;
  // Collect every finite transition instant of every attribute.
  std::vector<Micros> instants = {0};
  for (const AttributeLcp* lcp : lcps) {
    for (int p = 0; p < lcp->num_phases(); ++p) {
      const Micros end = lcp->PhaseEndOffset(p);
      if (end != kForever) instants.push_back(end);
    }
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()),
                 instants.end());

  // Tuple removal: when ALL attributes have reached their final automaton
  // state (paper: "until all degradable attributes have reached their final
  // state", after which the whole tuple disappears).
  Micros removal = 0;
  for (const AttributeLcp* lcp : lcps) {
    removal = std::max(removal, lcp->RemovalOffset());
  }
  out.removal_offset_ = lcps.empty() ? kForever : removal;

  for (Micros t : instants) {
    if (out.removal_offset_ != kForever && t >= out.removal_offset_) break;
    TupleState state;
    state.start_offset = t;
    state.attr_phase.reserve(lcps.size());
    for (const AttributeLcp* lcp : lcps) {
      state.attr_phase.push_back(lcp->PhaseAt(t));
    }
    out.states_.push_back(std::move(state));
  }
  return out;
}

int TupleLcp::StateAt(Micros offset) const {
  int idx = 0;
  for (int i = 0; i < num_states(); ++i) {
    if (states_[i].start_offset <= offset) idx = i;
  }
  return idx;
}

std::string TupleLcp::ToString() const {
  std::string out;
  for (int i = 0; i < num_states(); ++i) {
    if (i > 0) out += " -> ";
    out += StringPrintf("t%d@%.3gh(", i,
                        static_cast<double>(states_[i].start_offset) /
                            static_cast<double>(kMicrosPerHour));
    for (size_t a = 0; a < states_[i].attr_phase.size(); ++a) {
      if (a > 0) out += ",";
      out += StringPrintf("d%d", states_[i].attr_phase[a]);
    }
    out += ")";
  }
  if (removal_offset_ != kForever) {
    out += StringPrintf(" -> removed@%.3gh",
                        static_cast<double>(removal_offset_) /
                            static_cast<double>(kMicrosPerHour));
  }
  return out;
}

}  // namespace instantdb
