#include "catalog/value.h"

#include "common/strings.h"

namespace instantdb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kTimestamp:
      return "TIMESTAMP";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  assert(type_ == other.type_ ||
         (type_ == ValueType::kTimestamp && other.type_ == ValueType::kInt64) ||
         (type_ == ValueType::kInt64 && other.type_ == ValueType::kTimestamp));
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kTimestamp: {
      const int64_t a = std::get<int64_t>(data_);
      const int64_t b = std::get<int64_t>(other.data_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kDouble: {
      const double a = dbl(), b = other.dbl();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString:
      return str().compare(other.str());
    case ValueType::kBool:
      return static_cast<int>(boolean()) - static_cast<int>(other.boolean());
    case ValueType::kNull:
      return 0;
  }
  return 0;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) {
    // int64/timestamp compare by value.
    const bool numeric_pair =
        (type_ == ValueType::kTimestamp && other.type_ == ValueType::kInt64) ||
        (type_ == ValueType::kInt64 && other.type_ == ValueType::kTimestamp);
    if (!numeric_pair) return false;
  }
  if (is_null()) return other.is_null();
  return Compare(other) == 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return StringPrintf("%lld", static_cast<long long>(int64()));
    case ValueType::kDouble:
      return StringPrintf("%g", dbl());
    case ValueType::kString:
      return str();
    case ValueType::kBool:
      return boolean() ? "true" : "false";
    case ValueType::kTimestamp:
      return StringPrintf("@%lld", static_cast<long long>(timestamp()));
  }
  return "?";
}

void Value::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type_));
  switch (type_) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      PutVarint64(dst, static_cast<uint64_t>(std::get<int64_t>(data_)));
      break;
    case ValueType::kDouble: {
      uint64_t bits;
      static_assert(sizeof(double) == 8);
      std::memcpy(&bits, &std::get<double>(data_), 8);
      PutFixed64(dst, bits);
      break;
    }
    case ValueType::kString:
      PutLengthPrefixed(dst, str());
      break;
    case ValueType::kBool:
      dst->push_back(boolean() ? 1 : 0);
      break;
  }
}

bool Value::DecodeFrom(Slice* input, Value* out) {
  if (input->empty()) return false;
  const auto type = static_cast<ValueType>(input->front());
  input->remove_prefix(1);
  switch (type) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kInt64:
    case ValueType::kTimestamp: {
      uint64_t raw;
      if (!GetVarint64(input, &raw)) return false;
      *out = (type == ValueType::kInt64)
                 ? Value::Int64(static_cast<int64_t>(raw))
                 : Value::Timestamp(static_cast<int64_t>(raw));
      return true;
    }
    case ValueType::kDouble: {
      uint64_t bits;
      if (!GetFixed64(input, &bits)) return false;
      double d;
      std::memcpy(&d, &bits, 8);
      *out = Value::Double(d);
      return true;
    }
    case ValueType::kString: {
      Slice s;
      if (!GetLengthPrefixed(input, &s)) return false;
      *out = Value::String(std::string(s));
      return true;
    }
    case ValueType::kBool: {
      if (input->empty()) return false;
      const char b = input->front();
      input->remove_prefix(1);
      *out = Value::Bool(b != 0);
      return true;
    }
  }
  return false;
}

void Value::EncodeOrdered(std::string* dst) const {
  if (is_null()) {
    dst->push_back('\x00');
    return;
  }
  dst->push_back('\x01');
  switch (type_) {
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      PutOrderedInt64(dst, std::get<int64_t>(data_));
      break;
    case ValueType::kDouble:
      PutOrderedDouble(dst, dbl());
      break;
    case ValueType::kString:
      PutOrderedString(dst, str());
      break;
    case ValueType::kBool:
      dst->push_back(boolean() ? '\x01' : '\x00');
      break;
    case ValueType::kNull:
      break;
  }
}

}  // namespace instantdb
