#include "catalog/generalization.h"

#include <algorithm>
#include <functional>

#include "common/strings.h"

namespace instantdb {

// ---------------------------------------------------------------------------
// DomainHierarchy
// ---------------------------------------------------------------------------

std::string DomainHierarchy::DisplayValue(const Value& value,
                                          int /*level*/) const {
  return value.ToString();
}

Result<int> DomainHierarchy::LevelForSpec(const std::string& spec) const {
  for (size_t i = 0; i < level_names_.size(); ++i) {
    if (EqualsIgnoreCase(level_names_[i], spec)) return static_cast<int>(i);
  }
  // "L<k>" default names and bare decimal indexes.
  std::string digits = spec;
  if ((spec.size() >= 2) && (spec[0] == 'L' || spec[0] == 'l')) {
    digits = spec.substr(1);
  }
  if (!digits.empty() &&
      digits.find_first_not_of("0123456789") == std::string::npos) {
    const int level = std::atoi(digits.c_str());
    if (level >= 0 && level < height()) return level;
  }
  // RANGE<width> resolves against interval hierarchies.
  if (spec.size() > 5 && EqualsIgnoreCase(spec.substr(0, 5), "RANGE")) {
    const auto* interval = dynamic_cast<const IntervalHierarchy*>(this);
    if (interval != nullptr) {
      return interval->LevelForWidth(std::atoll(spec.c_str() + 5));
    }
  }
  return Status::NotFound("unknown accuracy level '" + spec + "' for domain " +
                          name());
}

void DomainHierarchy::EncodeLevelNames(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(level_names_.size()));
  for (const std::string& name : level_names_) PutLengthPrefixed(dst, name);
}

bool DomainHierarchy::DecodeLevelNames(Slice* input,
                                       std::vector<std::string>* out) {
  uint32_t n;
  if (!GetVarint32(input, &n)) return false;
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice name;
    if (!GetLengthPrefixed(input, &name)) return false;
    (*out)[i] = std::string(name);
  }
  return true;
}

bool DomainHierarchy::Covers(const Value& general, int general_level,
                             const Value& specific, int specific_level) const {
  if (specific_level > general_level) return false;
  auto g = LeafRange(general, general_level);
  auto s = LeafRange(specific, specific_level);
  if (!g.ok() || !s.ok()) return false;
  return g->Contains(*s);
}

// ---------------------------------------------------------------------------
// GeneralizationTree::Builder
// ---------------------------------------------------------------------------

GeneralizationTree::Builder& GeneralizationTree::Builder::AddRoot(
    const std::string& label) {
  if (!labels_.empty()) {
    if (deferred_error_.ok()) {
      deferred_error_ = Status::InvalidArgument("root must be added first");
    }
    return *this;
  }
  labels_.push_back(label);
  parents_.push_back(-1);
  by_label_[label] = 0;
  return *this;
}

GeneralizationTree::Builder& GeneralizationTree::Builder::AddChild(
    const std::string& parent, const std::string& label) {
  if (!deferred_error_.ok()) return *this;
  auto it = by_label_.find(parent);
  if (it == by_label_.end()) {
    deferred_error_ = Status::InvalidArgument("unknown parent: " + parent);
    return *this;
  }
  if (by_label_.count(label) != 0) {
    deferred_error_ = Status::InvalidArgument("duplicate label: " + label);
    return *this;
  }
  by_label_[label] = static_cast<int>(labels_.size());
  labels_.push_back(label);
  parents_.push_back(it->second);
  return *this;
}

GeneralizationTree::Builder& GeneralizationTree::Builder::AddPath(
    const std::string& slash_path) {
  if (!deferred_error_.ok()) return *this;
  const auto parts = Split(slash_path, '/');
  if (parts.empty()) return *this;
  if (labels_.empty()) {
    AddRoot(parts[0]);
  } else if (labels_[0] != parts[0]) {
    deferred_error_ =
        Status::InvalidArgument("path root mismatch: " + parts[0]);
    return *this;
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    if (by_label_.count(parts[i]) == 0) {
      AddChild(parts[i - 1], parts[i]);
    }
  }
  return *this;
}

Result<std::shared_ptr<GeneralizationTree>>
GeneralizationTree::Builder::Build() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (labels_.empty()) return Status::InvalidArgument("empty tree");

  auto tree = std::shared_ptr<GeneralizationTree>(new GeneralizationTree());
  tree->name_ = name_;
  tree->by_label_ = by_label_;
  tree->nodes_.resize(labels_.size());
  for (size_t i = 0; i < labels_.size(); ++i) {
    tree->nodes_[i].label = labels_[i];
    tree->nodes_[i].parent = parents_[i];
    if (parents_[i] >= 0) {
      tree->nodes_[parents_[i]].children.push_back(static_cast<int>(i));
      tree->nodes_[i].depth = tree->nodes_[parents_[i]].depth + 1;
    }
  }

  // All leaves must share one depth so each value has one form per level.
  int leaf_depth = -1;
  for (const auto& node : tree->nodes_) {
    if (!node.children.empty()) continue;
    if (leaf_depth < 0) leaf_depth = node.depth;
    if (node.depth != leaf_depth) {
      return Status::InvalidArgument(
          "unbalanced generalization tree: leaf '" + node.label +
          "' at depth " + std::to_string(node.depth) + ", expected " +
          std::to_string(leaf_depth));
    }
  }
  tree->height_ = leaf_depth + 1;
  for (auto& node : tree->nodes_) node.level = leaf_depth - node.depth;

  // DFS assigns leaf ordinals; every node owns the contiguous interval of
  // the leaves beneath it.
  std::function<void(int)> dfs = [&](int id) {
    Node& node = tree->nodes_[id];
    if (node.children.empty()) {
      const int64_t ordinal = static_cast<int64_t>(tree->leaves_.size());
      node.leaves = {ordinal, ordinal};
      tree->leaves_.push_back(id);
      return;
    }
    node.leaves.lo = static_cast<int64_t>(tree->leaves_.size());
    for (int child : node.children) dfs(child);
    node.leaves.hi = static_cast<int64_t>(tree->leaves_.size()) - 1;
  };
  dfs(0);
  return tree;
}

// ---------------------------------------------------------------------------
// GeneralizationTree
// ---------------------------------------------------------------------------

Result<int> GeneralizationTree::FindNode(const Value& value, int level) const {
  if (value.type() != ValueType::kString) {
    return Status::InvalidArgument("tree domain values are strings");
  }
  auto it = by_label_.find(value.str());
  if (it == by_label_.end()) {
    return Status::NotFound("unknown label '" + value.str() + "' in domain " +
                            name_);
  }
  if (nodes_[it->second].level != level) {
    return Status::InvalidArgument(StringPrintf(
        "label '%s' is a level-%d value of %s, not level %d",
        value.str().c_str(), nodes_[it->second].level, name_.c_str(), level));
  }
  return it->second;
}

Result<Value> GeneralizationTree::Generalize(const Value& value, int from,
                                             int to) const {
  if (to < from || to >= height_) {
    return Status::InvalidArgument(
        StringPrintf("bad generalization %d -> %d (height %d)", from, to,
                     height_));
  }
  IDB_ASSIGN_OR_RETURN(int id, FindNode(value, from));
  while (nodes_[id].level < to) id = nodes_[id].parent;
  return Value::String(nodes_[id].label);
}

Result<int64_t> GeneralizationTree::LeafOrdinal(const Value& leaf) const {
  IDB_ASSIGN_OR_RETURN(int id, FindNode(leaf, 0));
  return nodes_[id].leaves.lo;
}

Result<Value> GeneralizationTree::LeafFromOrdinal(int64_t ordinal) const {
  IDB_ASSIGN_OR_RETURN(std::string label, LeafLabel(ordinal));
  return Value::String(std::move(label));
}

Result<LeafInterval> GeneralizationTree::LeafRange(const Value& value,
                                                   int level) const {
  IDB_ASSIGN_OR_RETURN(int id, FindNode(value, level));
  return nodes_[id].leaves;
}

Status GeneralizationTree::ValidateAtLevel(const Value& value,
                                           int level) const {
  return FindNode(value, level).status();
}

Result<int64_t> GeneralizationTree::CardinalityAtLevel(int level) const {
  if (level < 0 || level >= height_) {
    return Status::InvalidArgument("level out of range");
  }
  int64_t n = 0;
  for (const auto& node : nodes_) {
    if (node.level == level) ++n;
  }
  return n;
}

Result<std::string> GeneralizationTree::LeafLabel(int64_t ordinal) const {
  if (ordinal < 0 || ordinal >= leaf_count()) {
    return Status::InvalidArgument("leaf ordinal out of range");
  }
  return nodes_[leaves_[ordinal]].label;
}

std::vector<std::string> GeneralizationTree::LabelsAtLevel(int level) const {
  std::vector<std::string> out;
  for (const auto& node : nodes_) {
    if (node.level == level) out.push_back(node.label);
  }
  return out;
}

std::string GeneralizationTree::ToAsciiArt() const {
  std::string out;
  std::function<void(int, const std::string&, bool)> rec =
      [&](int id, const std::string& prefix, bool last) {
        const Node& node = nodes_[id];
        if (node.parent < 0) {
          out += node.label + "\n";
        } else {
          out += prefix + (last ? "└─ " : "├─ ") + node.label + "\n";
        }
        const std::string child_prefix =
            node.parent < 0 ? "" : prefix + (last ? "   " : "│  ");
        for (size_t i = 0; i < node.children.size(); ++i) {
          rec(node.children[i], child_prefix, i + 1 == node.children.size());
        }
      };
  rec(0, "", true);
  return out;
}

void GeneralizationTree::EncodeTo(std::string* dst) const {
  dst->push_back(0);  // kind tag: explicit tree
  PutLengthPrefixed(dst, name_);
  PutVarint32(dst, static_cast<uint32_t>(nodes_.size()));
  for (const auto& node : nodes_) {
    PutLengthPrefixed(dst, node.label);
    PutVarint32(dst, static_cast<uint32_t>(node.parent + 1));  // -1 -> 0
  }
  EncodeLevelNames(dst);
}

// ---------------------------------------------------------------------------
// IntervalHierarchy
// ---------------------------------------------------------------------------

Result<std::shared_ptr<IntervalHierarchy>> IntervalHierarchy::Make(
    std::string name, int64_t min, int64_t max, std::vector<int64_t> widths) {
  if (min > max) return Status::InvalidArgument("min > max");
  if (widths.empty()) {
    return Status::InvalidArgument("interval hierarchy needs >= 1 width");
  }
  int64_t prev = 1;
  for (int64_t w : widths) {
    if (w <= prev) {
      return Status::InvalidArgument("widths must be strictly increasing");
    }
    if (w % prev != 0) {
      return Status::InvalidArgument(
          "each width must be a multiple of the previous so buckets nest");
    }
    prev = w;
  }
  return std::shared_ptr<IntervalHierarchy>(
      new IntervalHierarchy(std::move(name), min, max, std::move(widths)));
}

int64_t IntervalHierarchy::WidthAt(int level) const {
  return level == 0 ? 1 : widths_[level - 1];
}

Result<int> IntervalHierarchy::LevelForWidth(int64_t width) const {
  if (width == 1) return 0;
  for (size_t i = 0; i < widths_.size(); ++i) {
    if (widths_[i] == width) return static_cast<int>(i) + 1;
  }
  return Status::NotFound(StringPrintf("no level with bucket width %lld in %s",
                                       static_cast<long long>(width),
                                       name_.c_str()));
}

Result<Value> IntervalHierarchy::Generalize(const Value& value, int from,
                                            int to) const {
  if (to < from || to >= height()) {
    return Status::InvalidArgument("bad generalization levels");
  }
  IDB_RETURN_IF_ERROR(ValidateAtLevel(value, from));
  const int64_t w = WidthAt(to);
  // Buckets align to the domain minimum; widths nest, so a lower-level
  // bucket's lower bound generalizes exactly like a raw value.
  const int64_t offset = value.int64() - min_;
  return Value::Int64(min_ + (offset / w) * w);
}

Result<int64_t> IntervalHierarchy::LeafOrdinal(const Value& leaf) const {
  IDB_RETURN_IF_ERROR(ValidateAtLevel(leaf, 0));
  return leaf.int64() - min_;
}

Result<Value> IntervalHierarchy::LeafFromOrdinal(int64_t ordinal) const {
  if (ordinal < 0 || ordinal > max_ - min_) {
    return Status::InvalidArgument("leaf ordinal out of range");
  }
  return Value::Int64(min_ + ordinal);
}

Result<LeafInterval> IntervalHierarchy::LeafRange(const Value& value,
                                                  int level) const {
  IDB_RETURN_IF_ERROR(ValidateAtLevel(value, level));
  const int64_t lo = value.int64() - min_;
  const int64_t w = WidthAt(level);
  const int64_t hi = std::min(lo + w - 1, max_ - min_);
  return LeafInterval{lo, hi};
}

Status IntervalHierarchy::ValidateAtLevel(const Value& value,
                                          int level) const {
  if (level < 0 || level >= height()) {
    return Status::InvalidArgument("level out of range");
  }
  if (value.type() != ValueType::kInt64) {
    return Status::InvalidArgument("interval domain values are int64");
  }
  const int64_t v = value.int64();
  if (v < min_ || v > max_) {
    return Status::InvalidArgument(
        StringPrintf("value %lld outside domain [%lld, %lld]",
                     static_cast<long long>(v), static_cast<long long>(min_),
                     static_cast<long long>(max_)));
  }
  if ((v - min_) % WidthAt(level) != 0) {
    return Status::InvalidArgument(
        StringPrintf("value %lld is not a level-%d bucket bound",
                     static_cast<long long>(v), level));
  }
  return Status::OK();
}

Result<int64_t> IntervalHierarchy::CardinalityAtLevel(int level) const {
  if (level < 0 || level >= height()) {
    return Status::InvalidArgument("level out of range");
  }
  const int64_t w = WidthAt(level);
  return (max_ - min_) / w + 1;
}

std::string IntervalHierarchy::DisplayValue(const Value& value,
                                            int level) const {
  if (level == 0 || value.type() != ValueType::kInt64) return value.ToString();
  const int64_t lo = value.int64();
  const int64_t hi = std::min(lo + WidthAt(level) - 1, max_);
  return StringPrintf("[%lld..%lld]", static_cast<long long>(lo),
                      static_cast<long long>(hi));
}

void IntervalHierarchy::EncodeTo(std::string* dst) const {
  dst->push_back(1);  // kind tag: interval hierarchy
  PutLengthPrefixed(dst, name_);
  PutVarint64(dst, static_cast<uint64_t>(min_));
  PutVarint64(dst, static_cast<uint64_t>(max_));
  PutVarint32(dst, static_cast<uint32_t>(widths_.size()));
  for (int64_t w : widths_) PutVarint64(dst, static_cast<uint64_t>(w));
  EncodeLevelNames(dst);
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

Result<std::shared_ptr<DomainHierarchy>> DomainHierarchy::DecodeFrom(
    Slice* input) {
  if (input->empty()) return Status::Corruption("empty hierarchy encoding");
  const char kind = input->front();
  input->remove_prefix(1);
  Slice name;
  if (!GetLengthPrefixed(input, &name)) {
    return Status::Corruption("bad hierarchy name");
  }
  if (kind == 0) {
    uint32_t n;
    if (!GetVarint32(input, &n)) return Status::Corruption("bad node count");
    GeneralizationTree::Builder builder{std::string(name)};
    std::vector<std::string> labels(n);
    for (uint32_t i = 0; i < n; ++i) {
      Slice label;
      uint32_t parent_plus1;
      if (!GetLengthPrefixed(input, &label) ||
          !GetVarint32(input, &parent_plus1)) {
        return Status::Corruption("bad tree node");
      }
      labels[i] = std::string(label);
      if (parent_plus1 == 0) {
        builder.AddRoot(labels[i]);
      } else {
        builder.AddChild(labels[parent_plus1 - 1], labels[i]);
      }
    }
    IDB_ASSIGN_OR_RETURN(auto tree, builder.Build());
    std::vector<std::string> names;
    if (!DecodeLevelNames(input, &names)) {
      return Status::Corruption("bad level names");
    }
    tree->SetLevelNames(std::move(names));
    return std::shared_ptr<DomainHierarchy>(std::move(tree));
  }
  if (kind == 1) {
    uint64_t umin, umax;
    uint32_t n;
    if (!GetVarint64(input, &umin) || !GetVarint64(input, &umax) ||
        !GetVarint32(input, &n)) {
      return Status::Corruption("bad interval hierarchy header");
    }
    std::vector<int64_t> widths(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t w;
      if (!GetVarint64(input, &w)) return Status::Corruption("bad width");
      widths[i] = static_cast<int64_t>(w);
    }
    IDB_ASSIGN_OR_RETURN(
        auto hierarchy,
        IntervalHierarchy::Make(std::string(name), static_cast<int64_t>(umin),
                                static_cast<int64_t>(umax), std::move(widths)));
    std::vector<std::string> names;
    if (!DecodeLevelNames(input, &names)) {
      return Status::Corruption("bad level names");
    }
    hierarchy->SetLevelNames(std::move(names));
    return std::shared_ptr<DomainHierarchy>(std::move(hierarchy));
  }
  return Status::Corruption("unknown hierarchy kind");
}

}  // namespace instantdb
