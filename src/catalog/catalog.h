#ifndef INSTANTDB_CATALOG_CATALOG_H_
#define INSTANTDB_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "storage/page.h"

namespace instantdb {

class Env;

/// Table metadata: id, name, schema. Ids are dense and never reused within
/// one database instance so storage paths stay unambiguous.
struct TableDef {
  TableId id = 0;
  std::string name;
  Schema schema;
};

/// \brief In-memory table registry with single-file persistence.
///
/// The catalog file is rewritten atomically (temp + rename) on every DDL so
/// a crash can never leave a torn catalog.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Result<const TableDef*> CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);

  /// nullptr if absent.
  const TableDef* GetTable(const std::string& name) const;
  const TableDef* GetTable(TableId id) const;

  std::vector<const TableDef*> tables() const;

  /// `env` == nullptr uses Env::Default().
  Status SaveTo(const std::string& path, Env* env = nullptr) const;
  static Result<std::unique_ptr<Catalog>> LoadFrom(const std::string& path,
                                                   Env* env = nullptr);

 private:
  std::map<std::string, std::unique_ptr<TableDef>> by_name_;
  std::map<TableId, TableDef*> by_id_;
  TableId next_id_ = 1;
};

}  // namespace instantdb

#endif  // INSTANTDB_CATALOG_CATALOG_H_
