#ifndef INSTANTDB_CATALOG_GENERALIZATION_H_
#define INSTANTDB_CATALOG_GENERALIZATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/value.h"
#include "common/result.h"
#include "common/status.h"

namespace instantdb {

/// Contiguous range of leaf ordinals [lo, hi] covered by a generalized
/// value. GT nodes are DFS-numbered so every node owns such a range; this is
/// what turns coarse-level predicates into index range scans (DESIGN.md §4).
struct LeafInterval {
  int64_t lo = 0;
  int64_t hi = -1;  // empty by default

  bool Contains(int64_t ordinal) const { return ordinal >= lo && ordinal <= hi; }
  bool Contains(const LeafInterval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
  bool operator==(const LeafInterval& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// \brief Domain generalization hierarchy (paper §II, Fig. 1).
///
/// Gives, at accuracy levels 0 (leaf, most accurate) through `height()-1`
/// (root, coarsest), the values an attribute can take during its lifetime.
/// The paper assumes exactly one hierarchy per domain; a hierarchy is shared
/// by every column over that domain.
class DomainHierarchy {
 public:
  virtual ~DomainHierarchy() = default;

  virtual const std::string& name() const = 0;
  /// Number of accuracy levels (leaf level 0 .. root level height-1).
  virtual int height() const = 0;
  /// ValueType of values at every level of this domain.
  virtual ValueType value_type() const = 0;

  /// The degradation function f_k restricted to one value: maps a value at
  /// level `from` to its unique ancestor at level `to` (`to >= from`).
  virtual Result<Value> Generalize(const Value& value, int from,
                                   int to) const = 0;

  /// Ordinal of a leaf (level-0) value in DFS order.
  virtual Result<int64_t> LeafOrdinal(const Value& leaf) const = 0;

  /// Inverse of LeafOrdinal: the leaf value with the given DFS ordinal.
  virtual Result<Value> LeafFromOrdinal(int64_t ordinal) const = 0;

  /// Leaf interval covered by `value` at `level`.
  virtual Result<LeafInterval> LeafRange(const Value& value,
                                         int level) const = 0;

  /// Validates that `value` is a well-formed level-`level` value.
  virtual Status ValidateAtLevel(const Value& value, int level) const = 0;

  /// Number of distinct values at `level` (used by planner selectivity
  /// estimates and the bitmap index).
  virtual Result<int64_t> CardinalityAtLevel(int level) const = 0;

  /// Human-readable rendering of a level-`level` value (interval domains
  /// render buckets as "[lo..hi]").
  virtual std::string DisplayValue(const Value& value, int level) const;

  /// Optional human-readable level names ("ADDRESS", "CITY", …) used by the
  /// SQL `SET ACCURACY LEVEL <name>` syntax. Defaults to "L0", "L1", ….
  void SetLevelNames(std::vector<std::string> names) {
    level_names_ = std::move(names);
  }
  const std::vector<std::string>& level_names() const { return level_names_; }

  /// Resolves an accuracy-level spec: a level name (case-insensitive), a
  /// decimal level index, or `RANGE<width>` for interval hierarchies.
  Result<int> LevelForSpec(const std::string& spec) const;

  /// Serialization for catalog persistence.
  virtual void EncodeTo(std::string* dst) const = 0;
  static Result<std::shared_ptr<DomainHierarchy>> DecodeFrom(Slice* input);

  /// True if `general` (at `general_level`) is an ancestor-or-self of
  /// `specific` (at `specific_level <= general_level`).
  bool Covers(const Value& general, int general_level, const Value& specific,
              int specific_level) const;

 protected:
  void EncodeLevelNames(std::string* dst) const;
  static bool DecodeLevelNames(Slice* input, std::vector<std::string>* out);

  std::vector<std::string> level_names_;
};

/// \brief Explicit generalization tree for categorical domains — the
/// location tree of the paper's Fig. 1 is the canonical instance.
///
/// Node labels must be globally unique within the tree. All leaves must sit
/// at the same depth so each value has exactly one form per level.
class GeneralizationTree final : public DomainHierarchy {
 public:
  /// Incremental builder: add the root first, then children breadth-first or
  /// depth-first (parents before children), then Build().
  class Builder {
   public:
    explicit Builder(std::string name) : name_(std::move(name)) {}

    Builder& AddRoot(const std::string& label);
    Builder& AddChild(const std::string& parent, const std::string& label);
    /// Convenience: a full root-to-leaf path "a/b/c" adds missing nodes.
    Builder& AddPath(const std::string& slash_path);

    Result<std::shared_ptr<GeneralizationTree>> Build();

   private:
    std::string name_;
    std::vector<std::string> labels_;
    std::vector<int> parents_;  // -1 for root
    std::map<std::string, int> by_label_;
    Status deferred_error_;
  };

  const std::string& name() const override { return name_; }
  int height() const override { return height_; }
  ValueType value_type() const override { return ValueType::kString; }

  Result<Value> Generalize(const Value& value, int from, int to) const override;
  Result<int64_t> LeafOrdinal(const Value& leaf) const override;
  Result<Value> LeafFromOrdinal(int64_t ordinal) const override;
  Result<LeafInterval> LeafRange(const Value& value, int level) const override;
  Status ValidateAtLevel(const Value& value, int level) const override;
  Result<int64_t> CardinalityAtLevel(int level) const override;
  void EncodeTo(std::string* dst) const override;

  /// Number of leaves in the tree.
  int64_t leaf_count() const { return static_cast<int64_t>(leaves_.size()); }
  /// Label of the leaf with DFS ordinal `ordinal`.
  Result<std::string> LeafLabel(int64_t ordinal) const;
  /// All labels at a given level (testing, workload generation, examples).
  std::vector<std::string> LabelsAtLevel(int level) const;

  /// Multi-line ASCII rendering (used by `bench_figures` to reproduce
  /// the paper's Fig. 1).
  std::string ToAsciiArt() const;

 private:
  friend class Builder;

  struct Node {
    std::string label;
    int parent = -1;
    int depth = 0;           // root = 0
    int level = 0;           // leaf = 0 .. root = height-1
    LeafInterval leaves;     // DFS leaf interval
    std::vector<int> children;
  };

  GeneralizationTree() = default;

  Result<int> FindNode(const Value& value, int level) const;

  std::string name_;
  int height_ = 0;
  std::vector<Node> nodes_;          // nodes_[0] is the root
  std::map<std::string, int> by_label_;
  std::vector<int> leaves_;          // node ids in DFS (ordinal) order
};

/// \brief Implicit hierarchy for numeric domains: level 0 is the exact
/// value; level k >= 1 groups values into buckets of `widths[k-1]`, aligned
/// to the domain minimum. Widths must be strictly increasing and each must
/// divide the next so buckets nest (a value's forms along the levels are a
/// root-to-leaf path, exactly as in an explicit tree).
///
/// The paper's salary example (`SET ACCURACY LEVEL RANGE1000 FOR P.SALARY`,
/// predicate `SALARY = '2000-3000'`) is an IntervalHierarchy with a
/// 1000-wide level. Generalized values are represented as the bucket's
/// lower bound (Value::Int64).
class IntervalHierarchy final : public DomainHierarchy {
 public:
  static Result<std::shared_ptr<IntervalHierarchy>> Make(
      std::string name, int64_t min, int64_t max, std::vector<int64_t> widths);

  const std::string& name() const override { return name_; }
  int height() const override { return static_cast<int>(widths_.size()) + 1; }
  ValueType value_type() const override { return ValueType::kInt64; }

  Result<Value> Generalize(const Value& value, int from, int to) const override;
  Result<int64_t> LeafOrdinal(const Value& leaf) const override;
  Result<Value> LeafFromOrdinal(int64_t ordinal) const override;
  Result<LeafInterval> LeafRange(const Value& value, int level) const override;
  Status ValidateAtLevel(const Value& value, int level) const override;
  Result<int64_t> CardinalityAtLevel(int level) const override;
  std::string DisplayValue(const Value& value, int level) const override;
  void EncodeTo(std::string* dst) const override;

  int64_t min() const { return min_; }
  int64_t max() const { return max_; }
  /// Bucket width at `level` (1 for level 0).
  int64_t WidthAt(int level) const;
  /// The level whose bucket width is `width`, or error — resolves the
  /// paper's `RANGE1000` accuracy-level syntax.
  Result<int> LevelForWidth(int64_t width) const;

 private:
  IntervalHierarchy(std::string name, int64_t min, int64_t max,
                    std::vector<int64_t> widths)
      : name_(std::move(name)), min_(min), max_(max), widths_(std::move(widths)) {}

  std::string name_;
  int64_t min_;
  int64_t max_;
  std::vector<int64_t> widths_;  // widths_[k-1] = bucket width at level k
};

}  // namespace instantdb

#endif  // INSTANTDB_CATALOG_GENERALIZATION_H_
