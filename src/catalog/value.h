#ifndef INSTANTDB_CATALOG_VALUE_H_
#define INSTANTDB_CATALOG_VALUE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <variant>

#include "common/clock.h"
#include "util/coding.h"

namespace instantdb {

/// Column/value type tags. Timestamps are microseconds (`Micros`) with a
/// distinct tag so schemas can document intent.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kBool = 4,
  kTimestamp = 5,
};

const char* ValueTypeName(ValueType t);

/// \brief Runtime value: the unit the degradation functions f_k operate on.
///
/// Values are immutable once constructed. Degradable attributes keep the
/// same ValueType across all accuracy levels (tree domains are strings at
/// every level; interval domains are int64 bucket lower bounds), so a
/// column's type never changes as it degrades.
class Value {
 public:
  /// NULL value (used for removed/unknown degradable attributes).
  Value() = default;

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(ValueType::kInt64, v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  static Value Bool(bool v) { return Value(v); }
  static Value Timestamp(Micros v) { return Value(ValueType::kTimestamp, v); }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  int64_t int64() const {
    assert(type_ == ValueType::kInt64 || type_ == ValueType::kTimestamp);
    return std::get<int64_t>(data_);
  }
  double dbl() const {
    assert(type_ == ValueType::kDouble);
    return std::get<double>(data_);
  }
  const std::string& str() const {
    assert(type_ == ValueType::kString);
    return std::get<std::string>(data_);
  }
  bool boolean() const {
    assert(type_ == ValueType::kBool);
    return std::get<bool>(data_);
  }
  Micros timestamp() const {
    assert(type_ == ValueType::kTimestamp);
    return std::get<int64_t>(data_);
  }

  /// Three-way comparison. NULL sorts before everything; comparing values
  /// of different non-null types is a programming error (asserts).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Display rendering ("NULL", "42", "Paris", "true", ...).
  std::string ToString() const;

  /// Type-tagged record encoding (storage, WAL).
  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, Value* out);

  /// Order-preserving index-key encoding. No type tag: all keys of one
  /// index share a type. NULL encodes as a 0x00 prefix byte sorting first;
  /// non-null values get a 0x01 prefix.
  void EncodeOrdered(std::string* dst) const;

 private:
  Value(ValueType t, int64_t v) : type_(t), data_(v) {}
  explicit Value(double v) : type_(ValueType::kDouble), data_(v) {}
  explicit Value(std::string v) : type_(ValueType::kString), data_(std::move(v)) {}
  explicit Value(bool v) : type_(ValueType::kBool), data_(v) {}

  ValueType type_ = ValueType::kNull;
  std::variant<std::monostate, int64_t, double, std::string, bool> data_;
};

}  // namespace instantdb

#endif  // INSTANTDB_CATALOG_VALUE_H_
