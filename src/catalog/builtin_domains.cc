#include "catalog/builtin_domains.h"

#include "common/strings.h"

namespace instantdb {

std::shared_ptr<const DomainHierarchy> LocationDomain() {
  // Fig. 1 of the paper: the location domain generalizes address -> city ->
  // region -> country. The concrete places are illustrative (the figure's
  // bitmap names only "France" legibly); what matters is the shape.
  GeneralizationTree::Builder builder("location");
  builder.AddPath("France/Ile-de-France/Paris/11 Rue Lepic");
  builder.AddPath("France/Ile-de-France/Paris/3 Av Foch");
  builder.AddPath("France/Ile-de-France/Versailles/12 Rue Royale");
  builder.AddPath("France/Provence/Marseille/4 Rue Breteuil");
  builder.AddPath("France/Provence/Aix/8 Cours Mirabeau");
  auto tree = builder.Build();
  // The builder input is static and correct by construction.
  (*tree)->SetLevelNames({"ADDRESS", "CITY", "REGION", "COUNTRY"});
  return *tree;
}

std::shared_ptr<const DomainHierarchy> SyntheticLocationDomain(
    int countries, int regions_per_country, int cities_per_region,
    int addresses_per_city) {
  GeneralizationTree::Builder builder("location");
  builder.AddRoot("World");
  for (int c = 0; c < countries; ++c) {
    const std::string country = StringPrintf("Country%d", c);
    builder.AddChild("World", country);
    for (int r = 0; r < regions_per_country; ++r) {
      const std::string region = StringPrintf("Region%d.%d", c, r);
      builder.AddChild(country, region);
      for (int ci = 0; ci < cities_per_region; ++ci) {
        const std::string city = StringPrintf("City%d.%d.%d", c, r, ci);
        builder.AddChild(region, city);
        for (int a = 0; a < addresses_per_city; ++a) {
          builder.AddChild(city, StringPrintf("Addr%d.%d.%d.%d", c, r, ci, a));
        }
      }
    }
  }
  auto tree = builder.Build();
  (*tree)->SetLevelNames({"ADDRESS", "CITY", "REGION", "COUNTRY", "WORLD"});
  return *tree;
}

std::shared_ptr<const DomainHierarchy> SalaryDomain() {
  auto hierarchy =
      IntervalHierarchy::Make("salary", 0, 100000, {1000, 10000, 100000});
  (*hierarchy)->SetLevelNames({"EXACT", "RANGE1000", "RANGE10000",
                               "RANGE100000"});
  return *hierarchy;
}

AttributeLcp Fig2LocationLcp() {
  // Fig. 2: d0 (address) -> d1 (city) after 1h -> d2 (region) after 1 day ->
  // d3 (country) after 1 month -> d4 = ⊥. The figure's τ0 = 0 min marks the
  // entry into d0 at insertion time.
  auto lcp = AttributeLcp::Make({{0, kMicrosPerHour},
                                 {1, kMicrosPerDay},
                                 {2, kMicrosPerMonth},
                                 {3, kMicrosPerMonth}});
  return *lcp;
}

}  // namespace instantdb
