#ifndef INSTANTDB_CATALOG_BUILTIN_DOMAINS_H_
#define INSTANTDB_CATALOG_BUILTIN_DOMAINS_H_

#include <memory>

#include "catalog/generalization.h"
#include "catalog/lcp.h"

namespace instantdb {

/// \brief Ready-made domains used throughout tests, examples and benchmarks.
///
/// `LocationDomain()` reproduces the paper's Fig. 1 (address → city →
/// region → country); `SalaryDomain()` matches the `RANGE1000` example of
/// §II; the Fig. 2 LCP is provided by `Fig2LocationLcp()`.

/// Fig. 1 generalization tree of the location domain, height 4:
/// level 0 = address, 1 = city, 2 = region, 3 = country.
std::shared_ptr<const DomainHierarchy> LocationDomain();

/// A larger synthetic location tree with `countries * regions * cities *
/// addresses` leaves, for workloads that need realistic fan-out.
std::shared_ptr<const DomainHierarchy> SyntheticLocationDomain(
    int countries, int regions_per_country, int cities_per_region,
    int addresses_per_city);

/// Salary domain [0, 100000] with bucket widths 1000 (the paper's
/// RANGE1000), 10000 and 100000 at levels 1..3.
std::shared_ptr<const DomainHierarchy> SalaryDomain();

/// The attribute LCP of Fig. 2: accurate address for 1 hour, city for 1 day,
/// region for 1 month, country for 1 month, then removal (⊥).
AttributeLcp Fig2LocationLcp();

}  // namespace instantdb

#endif  // INSTANTDB_CATALOG_BUILTIN_DOMAINS_H_
