#ifndef INSTANTDB_CATALOG_LCP_H_
#define INSTANTDB_CATALOG_LCP_H_

#include <limits>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "util/coding.h"

namespace instantdb {

/// Sentinel duration: the attribute never leaves this state (the paper's
/// traditional-database behaviour, and the last state of policies that stop
/// degrading before removal).
inline constexpr Micros kForever = std::numeric_limits<Micros>::max();

/// One state d_i of an attribute LCP: the value is held generalized to GT
/// level `level` for `duration` microseconds, after which the transition to
/// the next state (or to removal, for the last phase) fires.
struct LcpPhase {
  int level = 0;
  Micros duration = kForever;

  bool operator==(const LcpPhase& other) const {
    return level == other.level && duration == other.duration;
  }
};

/// \brief Life Cycle Policy of one degradable attribute (paper §II, Fig. 2):
/// a deterministic finite automaton over accuracy states d_0 … d_{n-1}, plus
/// the implicit final state ⊥ (value removed) reached when the last phase's
/// duration elapses.
///
/// Phase indices are "attribute states" throughout the engine; the phase
/// index of a value equals the index into this automaton, and the state
/// stores of the storage layer are keyed by it.
class AttributeLcp {
 public:
  AttributeLcp() = default;

  /// Validates and builds a policy. Levels must be non-negative and strictly
  /// increasing (degradation is irreversible); durations positive; only the
  /// last phase may last forever.
  static Result<AttributeLcp> Make(std::vector<LcpPhase> phases);

  /// The paper's *limited retention* baseline as a degenerate LCP: keep the
  /// accurate value for `ttl`, then remove.
  static AttributeLcp Retention(Micros ttl);

  /// Traditional no-degradation baseline: accurate forever.
  static AttributeLcp KeepForever();

  int num_phases() const { return static_cast<int>(phases_.size()); }
  const LcpPhase& phase(int i) const { return phases_[i]; }
  const std::vector<LcpPhase>& phases() const { return phases_; }

  /// Offset (since insertion) at which phase `i` ends and the next
  /// transition fires; kForever if it never ends.
  Micros PhaseEndOffset(int i) const;

  /// Phase index holding at `offset` since insertion; `num_phases()` when
  /// the value has been removed (⊥).
  int PhaseAt(Micros offset) const;

  /// Offset at which the value disappears entirely, kForever if never.
  Micros RemovalOffset() const { return PhaseEndOffset(num_phases() - 1); }

  /// True if the value eventually reaches ⊥.
  bool DegradesFully() const { return RemovalOffset() != kForever; }

  /// Shortest phase duration — the paper's "shortest degradation step",
  /// which bounds the attack window (benefit ii).
  Micros ShortestStep() const;

  std::string ToString() const;

  void EncodeTo(std::string* dst) const;
  static Result<AttributeLcp> DecodeFrom(Slice* input);

  bool operator==(const AttributeLcp& other) const {
    return phases_ == other.phases_;
  }

 private:
  explicit AttributeLcp(std::vector<LcpPhase> phases)
      : phases_(std::move(phases)) {}

  std::vector<LcpPhase> phases_;
};

/// One state t_k of a tuple LCP: the vector of attribute phase indices in
/// effect from `start_offset` (since tuple insertion) until the next state.
struct TupleState {
  Micros start_offset = 0;
  /// attr_phase[i] indexes into degradable attribute i's LCP; a value of
  /// `lcp.num_phases()` means that attribute has reached ⊥.
  std::vector<int> attr_phase;
};

/// \brief Tuple-level LCP (paper §II, Fig. 3): the product automaton of the
/// per-attribute LCPs. Because every LCP is a chain, the product is a chain
/// too — one tuple state per distinct attribute-transition instant.
class TupleLcp {
 public:
  TupleLcp() = default;

  static TupleLcp Make(const std::vector<const AttributeLcp*>& lcps);

  const std::vector<TupleState>& states() const { return states_; }
  int num_states() const { return static_cast<int>(states_.size()); }

  /// Index of the tuple state holding at `offset` since insertion.
  int StateAt(Micros offset) const;

  /// Offset at which the whole tuple disappears: all degradable attributes
  /// have reached their final state and the paper removes the tuple (both
  /// stable and degradable parts). kForever if any attribute lingers.
  Micros RemovalOffset() const { return removal_offset_; }

  std::string ToString() const;

 private:
  std::vector<TupleState> states_;
  Micros removal_offset_ = kForever;
};

}  // namespace instantdb

#endif  // INSTANTDB_CATALOG_LCP_H_
