#include "catalog/schema.h"

#include "common/strings.h"

namespace instantdb {

Result<Schema> Schema::Make(std::vector<ColumnDef> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema needs at least one column");
  }
  Schema schema;
  schema.columns_ = std::move(columns);
  for (int i = 0; i < schema.num_columns(); ++i) {
    const ColumnDef& col = schema.columns_[i];
    if (col.name.empty()) {
      return Status::InvalidArgument("column names must be non-empty");
    }
    if (!schema.by_name_.emplace(col.name, i).second) {
      return Status::InvalidArgument("duplicate column name: " + col.name);
    }
    if (col.kind == ColumnKind::kDegradable) {
      if (col.hierarchy == nullptr) {
        return Status::InvalidArgument("degradable column '" + col.name +
                                       "' needs a domain hierarchy");
      }
      if (col.lcp.num_phases() == 0) {
        return Status::InvalidArgument("degradable column '" + col.name +
                                       "' needs an LCP");
      }
      if (col.type != col.hierarchy->value_type()) {
        return Status::InvalidArgument("column '" + col.name +
                                       "' type mismatches its hierarchy");
      }
      for (const LcpPhase& phase : col.lcp.phases()) {
        if (phase.level >= col.hierarchy->height()) {
          return Status::InvalidArgument(StringPrintf(
              "column '%s': LCP level %d exceeds hierarchy height %d",
              col.name.c_str(), phase.level, col.hierarchy->height()));
        }
      }
      schema.degradable_.push_back(i);
    } else {
      if (col.type == ValueType::kNull) {
        return Status::InvalidArgument("column '" + col.name +
                                       "' needs a concrete type");
      }
      schema.stable_.push_back(i);
    }
  }
  std::vector<const AttributeLcp*> lcps;
  for (int idx : schema.degradable_) {
    lcps.push_back(&schema.columns_[idx].lcp);
  }
  schema.tuple_lcp_ = TupleLcp::Make(lcps);
  return schema;
}

int Schema::FindColumn(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

int Schema::DegradableOrdinal(int col_idx) const {
  for (size_t i = 0; i < degradable_.size(); ++i) {
    if (degradable_[i] == col_idx) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::ValidateInsertRow(const std::vector<Value>& row) const {
  if (static_cast<int>(row.size()) != num_columns()) {
    return Status::InvalidArgument(
        StringPrintf("row has %zu values, schema has %d columns", row.size(),
                     num_columns()));
  }
  for (int i = 0; i < num_columns(); ++i) {
    const ColumnDef& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (col.kind == ColumnKind::kDegradable) {
        return Status::InvalidArgument(
            "degradable column '" + col.name +
            "' must be inserted at full accuracy, not NULL");
      }
      continue;
    }
    const bool numeric_ok =
        (col.type == ValueType::kTimestamp && v.type() == ValueType::kInt64) ||
        (col.type == ValueType::kInt64 && v.type() == ValueType::kTimestamp);
    if (v.type() != col.type && !numeric_ok) {
      return Status::InvalidArgument(StringPrintf(
          "column '%s' expects %s, got %s", col.name.c_str(),
          ValueTypeName(col.type), ValueTypeName(v.type())));
    }
    if (col.kind == ColumnKind::kDegradable) {
      // Paper §II: insertions of new elements are granted only in the most
      // accurate state, i.e. values must be valid GT leaves.
      IDB_RETURN_IF_ERROR(col.hierarchy->ValidateAtLevel(v, 0));
    }
  }
  return Status::OK();
}

void Schema::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(columns_.size()));
  for (const ColumnDef& col : columns_) {
    PutLengthPrefixed(dst, col.name);
    dst->push_back(static_cast<char>(col.type));
    dst->push_back(static_cast<char>(col.kind));
    if (col.kind == ColumnKind::kDegradable) {
      col.hierarchy->EncodeTo(dst);
      col.lcp.EncodeTo(dst);
    }
  }
}

Result<Schema> Schema::DecodeFrom(Slice* input) {
  uint32_t n;
  if (!GetVarint32(input, &n)) return Status::Corruption("bad column count");
  std::vector<ColumnDef> columns;
  columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice name;
    if (!GetLengthPrefixed(input, &name) || input->size() < 2) {
      return Status::Corruption("bad column header");
    }
    const auto type = static_cast<ValueType>((*input)[0]);
    const auto kind = static_cast<ColumnKind>((*input)[1]);
    input->remove_prefix(2);
    if (kind == ColumnKind::kDegradable) {
      IDB_ASSIGN_OR_RETURN(auto hierarchy, DomainHierarchy::DecodeFrom(input));
      IDB_ASSIGN_OR_RETURN(auto lcp, AttributeLcp::DecodeFrom(input));
      columns.push_back(ColumnDef::Degradable(
          std::string(name), std::move(hierarchy), std::move(lcp)));
    } else {
      columns.push_back(ColumnDef::Stable(std::string(name), type));
    }
  }
  return Make(std::move(columns));
}

}  // namespace instantdb
