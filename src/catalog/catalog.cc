#include "catalog/catalog.h"

#include "io/env.h"
#include "util/crc32c.h"

namespace instantdb {

Result<const TableDef*> Catalog::CreateTable(const std::string& name,
                                             Schema schema) {
  if (by_name_.count(name) != 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  auto def = std::make_unique<TableDef>();
  def->id = next_id_++;
  def->name = name;
  def->schema = std::move(schema);
  TableDef* raw = def.get();
  by_id_[raw->id] = raw;
  by_name_[name] = std::move(def);
  return raw;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no such table: " + name);
  by_id_.erase(it->second->id);
  by_name_.erase(it);
  return Status::OK();
}

const TableDef* Catalog::GetTable(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second.get();
}

const TableDef* Catalog::GetTable(TableId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<const TableDef*> Catalog::tables() const {
  std::vector<const TableDef*> out;
  out.reserve(by_name_.size());
  for (const auto& [name, def] : by_name_) out.push_back(def.get());
  return out;
}

Status Catalog::SaveTo(const std::string& path, Env* env) const {
  if (env == nullptr) env = Env::Default();
  std::string body;
  PutVarint32(&body, next_id_);
  PutVarint32(&body, static_cast<uint32_t>(by_name_.size()));
  for (const auto& [name, def] : by_name_) {
    PutVarint32(&body, def->id);
    PutLengthPrefixed(&body, def->name);
    def->schema.EncodeTo(&body);
  }
  std::string file;
  PutFixed32(&file, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  file += body;

  const std::string tmp = path + ".tmp";
  IDB_RETURN_IF_ERROR(env->WriteStringToFile(tmp, file, /*sync=*/true));
  Status renamed = env->RenameFile(tmp, path);
  if (!renamed.ok()) (void)env->RemoveFile(tmp);
  return renamed;
}

Result<std::unique_ptr<Catalog>> Catalog::LoadFrom(const std::string& path,
                                                   Env* env) {
  if (env == nullptr) env = Env::Default();
  IDB_ASSIGN_OR_RETURN(std::string file, env->ReadFileToString(path));
  Slice input = file;
  uint32_t masked;
  if (!GetFixed32(&input, &masked)) {
    return Status::Corruption("catalog too short");
  }
  if (crc32c::Unmask(masked) != crc32c::Value(input.data(), input.size())) {
    return Status::Corruption("catalog checksum mismatch");
  }
  auto catalog = std::make_unique<Catalog>();
  uint32_t next_id, count;
  if (!GetVarint32(&input, &next_id) || !GetVarint32(&input, &count)) {
    return Status::Corruption("bad catalog header");
  }
  catalog->next_id_ = next_id;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id;
    Slice name;
    if (!GetVarint32(&input, &id) || !GetLengthPrefixed(&input, &name)) {
      return Status::Corruption("bad catalog entry");
    }
    IDB_ASSIGN_OR_RETURN(Schema schema, Schema::DecodeFrom(&input));
    auto def = std::make_unique<TableDef>();
    def->id = id;
    def->name = std::string(name);
    def->schema = std::move(schema);
    TableDef* raw = def.get();
    catalog->by_id_[raw->id] = raw;
    catalog->by_name_[raw->name] = std::move(def);
  }
  return catalog;
}

}  // namespace instantdb
