#ifndef INSTANTDB_CATALOG_SCHEMA_H_
#define INSTANTDB_CATALOG_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/generalization.h"
#include "catalog/lcp.h"
#include "catalog/value.h"
#include "common/result.h"

namespace instantdb {

/// Stable attributes never degrade; degradable attributes traverse their
/// LCP (paper §II: "A tuple is a composition of stable attributes … and
/// degradable attributes").
enum class ColumnKind : uint8_t { kStable = 0, kDegradable = 1 };

/// One column definition. Degradable columns carry the domain hierarchy and
/// the LCP; stable columns carry neither.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
  ColumnKind kind = ColumnKind::kStable;
  std::shared_ptr<const DomainHierarchy> hierarchy;  // degradable only
  AttributeLcp lcp;                                  // degradable only

  static ColumnDef Stable(std::string name, ValueType type) {
    ColumnDef def;
    def.name = std::move(name);
    def.type = type;
    return def;
  }
  static ColumnDef Degradable(std::string name,
                              std::shared_ptr<const DomainHierarchy> hierarchy,
                              AttributeLcp lcp) {
    ColumnDef def;
    def.name = std::move(name);
    def.kind = ColumnKind::kDegradable;
    def.type = hierarchy->value_type();
    def.hierarchy = std::move(hierarchy);
    def.lcp = std::move(lcp);
    return def;
  }
};

/// \brief Validated table schema: column definitions, the derived tuple LCP,
/// and name lookup. Rows are addressed by an engine-assigned 64-bit row id
/// (the donor identity the paper keeps intact lives in stable columns).
class Schema {
 public:
  Schema() = default;

  static Result<Schema> Make(std::vector<ColumnDef> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of `name`, or -1.
  int FindColumn(const std::string& name) const;

  /// Indices of degradable / stable columns, in schema order.
  const std::vector<int>& degradable_columns() const { return degradable_; }
  const std::vector<int>& stable_columns() const { return stable_; }

  /// Position of column `col_idx` within degradable_columns(), or -1.
  int DegradableOrdinal(int col_idx) const;

  /// The product automaton over all degradable columns (Fig. 3).
  const TupleLcp& tuple_lcp() const { return tuple_lcp_; }

  /// Type- and domain-checks a full row at insertion accuracy (level 0).
  /// Inserts are granted only in the most accurate state (paper §II).
  Status ValidateInsertRow(const std::vector<Value>& row) const;

  void EncodeTo(std::string* dst) const;
  static Result<Schema> DecodeFrom(Slice* input);

 private:
  std::vector<ColumnDef> columns_;
  std::map<std::string, int> by_name_;
  std::vector<int> degradable_;
  std::vector<int> stable_;
  TupleLcp tuple_lcp_;
};

}  // namespace instantdb

#endif  // INSTANTDB_CATALOG_SCHEMA_H_
