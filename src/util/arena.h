#ifndef INSTANTDB_UTIL_ARENA_H_
#define INSTANTDB_UTIL_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace instantdb {

/// \brief Bump allocator for per-query and per-transaction scratch memory.
/// All memory is released at once when the arena is destroyed.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized memory aligned to `alignment`
  /// (a power of two, default suitable for any scalar type).
  char* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t));

  /// Total bytes reserved from the system allocator.
  size_t MemoryUsage() const { return memory_usage_; }

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateNewBlock(size_t bytes);

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cursor_ = nullptr;
  size_t remaining_ = 0;
  size_t memory_usage_ = 0;
};

}  // namespace instantdb

#endif  // INSTANTDB_UTIL_ARENA_H_
