#ifndef INSTANTDB_UTIL_WORKER_POOL_H_
#define INSTANTDB_UTIL_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace instantdb {

/// \brief Lazily-started shared worker pool: the threads scans, aggregate
/// drains, degradation passes, checkpoints and audit sweeps borrow instead
/// of each spawning (and joining) their own — thread create/join is tens of
/// microseconds per worker, which used to be paid per query.
///
/// The pool never over-commits: TryDispatch hands out at most as many tasks
/// as there are workers NOT currently running one (a free-worker token
/// count), so every accepted task is picked up promptly even when other
/// tasks block indefinitely (a streaming scan's producers parked on a full
/// prefetch queue hold their tokens; the next dispatch simply sees fewer
/// free workers and the caller spawns or inlines the shortfall). That
/// no-queueing-behind-busy-work guarantee is what makes borrowing safe for
/// both blocking fan-outs and long-lived producers without a deadlock story.
///
/// Threads start on first use and park on a condition variable between
/// tasks; an idle pool costs nothing until then.
class WorkerPool {
 public:
  /// `size` threads once started (at least 1).
  explicit WorkerPool(size_t size);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t size() const { return size_; }

  /// Handle for one TryDispatch: Wait() blocks until every accepted task
  /// finished. Must be waited before the state captured by `fn` dies.
  class Ticket {
   public:
    Ticket() = default;

   private:
    friend class WorkerPool;
    struct State {
      std::mutex mu;
      std::condition_variable cv;
      size_t active = 0;
    };
    std::shared_ptr<State> state_;
  };

  /// Borrows up to `want` currently-free pool workers and runs `fn(slot)`
  /// on each (slot in [0, returned)). Returns how many were borrowed —
  /// possibly 0 when the pool is saturated; the caller runs (or spawns) the
  /// shortfall itself. Never blocks.
  ///
  /// `priority` selects the token pool: normal dispatches (the default)
  /// never take the last `reserved()` free tokens, priority dispatches may
  /// take every free token. Priority is for the degradation engine (and
  /// anything else privacy-critical): because only priority callers can
  /// touch the reserve, a tight normal-dispatch loop — one session
  /// re-borrowing tokens the instant they free — can never re-acquire them
  /// first, which closes the starvation race where a parked degrader lost
  /// every freed token to faster foreground dispatchers. A priority caller
  /// is therefore guaranteed min(want, reserved()) tokens whenever its own
  /// kind isn't already holding them.
  size_t TryDispatch(size_t want, std::function<void(size_t)> fn,
                     Ticket* ticket, bool priority = false);

  /// Blocks until every task of `ticket` finished. Idempotent; a
  /// default-constructed or already-waited ticket returns immediately.
  void Wait(Ticket* ticket);

  /// ParallelFor on the pool: runs `fn(0) .. fn(count - 1)` from an atomic
  /// cursor with the CALLER always participating, helped by however many
  /// pool workers are free right now (at most `workers - 1`). Progress is
  /// therefore guaranteed even when the pool is saturated or `Run` is
  /// called from a pool worker — it degrades to inline, never deadlocks.
  /// Error semantics match util/parallel.h ParallelFor: the first non-OK
  /// status is returned; the failing worker stops claiming, siblings drain.
  Status Run(size_t workers, size_t count,
             const std::function<Status(size_t)>& fn);

  /// Reserves `n` tokens (clamped to the pool size) for priority
  /// dispatches; normal TryDispatch sees a pool smaller by that many. 0
  /// (the default) disables the reserve. Safe to call any time; tokens
  /// already handed out are unaffected.
  void SetReserved(size_t n);
  size_t reserved() const;

  /// Free-worker tokens right now (dispatch-order snapshot). A pool that
  /// was never started reports its full size — nothing has borrowed from
  /// it. Tests use this to prove a failed scan leaked no tokens; the
  /// service's PressureState reads it as the saturation signal.
  size_t free_workers() const;

  /// Priority dispatches that took tokens a concurrent normal dispatch was
  /// refused (i.e. dipped into the reserve): the
  /// `degradation_reserved_dispatches` service counter.
  uint64_t reserved_grants() const;

 private:
  void EnsureStartedLocked();
  void WorkerLoop();

  const size_t size_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  /// Workers not currently running a task. Decremented at dispatch time
  /// (task count never exceeds free workers), re-incremented by the worker
  /// when its task completes.
  size_t free_ = 0;
  /// Tokens only priority dispatches may take (SetReserved).
  size_t reserved_ = 0;
  /// Priority dispatches that dipped into the reserve (free_ at or below
  /// reserved_ when they took tokens).
  uint64_t reserved_grants_ = 0;
  bool started_ = false;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace instantdb

#endif  // INSTANTDB_UTIL_WORKER_POOL_H_
