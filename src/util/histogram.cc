#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace instantdb {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    auto* self = const_cast<Histogram*>(this);
    std::sort(self->samples_.begin(), self->samples_.end());
    self->sorted_ = true;
  }
}

double Histogram::min() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.front();
}

double Histogram::max() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.back();
}

double Histogram::mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t idx = static_cast<size_t>(std::llround(rank));
  return samples_[std::min(idx, samples_.size() - 1)];
}

std::string Histogram::ToString() const {
  return StringPrintf(
      "count=%zu mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f", count(),
      mean(), Percentile(50), Percentile(95), Percentile(99), max());
}

}  // namespace instantdb
