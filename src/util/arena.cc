#include "util/arena.h"

#include <cassert>
#include <cstdint>

namespace instantdb {

char* Arena::Allocate(size_t bytes, size_t alignment) {
  assert(alignment > 0 && (alignment & (alignment - 1)) == 0);
  const uintptr_t cur = reinterpret_cast<uintptr_t>(cursor_);
  const size_t pad = (alignment - (cur & (alignment - 1))) & (alignment - 1);
  if (bytes + pad <= remaining_) {
    char* out = cursor_ + pad;
    cursor_ += bytes + pad;
    remaining_ -= bytes + pad;
    return out;
  }
  if (bytes > kBlockSize / 4) {
    // Large requests get their own block so we do not waste the tail of the
    // current block.
    return AllocateNewBlock(bytes + alignment);
  }
  char* block = AllocateNewBlock(kBlockSize);
  cursor_ = block;
  remaining_ = kBlockSize;
  return Allocate(bytes, alignment);
}

char* Arena::AllocateNewBlock(size_t bytes) {
  blocks_.push_back(std::make_unique<char[]>(bytes));
  memory_usage_ += bytes;
  return blocks_.back().get();
}

}  // namespace instantdb
