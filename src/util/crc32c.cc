#include "util/crc32c.h"

#include <array>

namespace instantdb::crc32c {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli polynomial

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Value(const char* data, size_t n, uint32_t init) {
  uint32_t crc = ~init;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ static_cast<unsigned char>(data[i])) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - 0xA282EAD8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace instantdb::crc32c
