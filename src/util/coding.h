#ifndef INSTANTDB_UTIL_CODING_H_
#define INSTANTDB_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace instantdb {

/// Byte-range view used across storage, WAL and index code.
using Slice = std::string_view;

// ---------------------------------------------------------------------------
// Fixed-width little-endian encodings (record/page internals).
// ---------------------------------------------------------------------------

inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

// ---------------------------------------------------------------------------
// Varints (LEB128), as in LevelDB/RocksDB.
// ---------------------------------------------------------------------------

void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

/// Parses a varint from the front of `*input`, advancing it. Returns false
/// on truncated/overlong input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Appends varint length + bytes.
void PutLengthPrefixed(std::string* dst, Slice value);
/// Parses a length-prefixed slice from the front of `*input`, advancing it.
bool GetLengthPrefixed(Slice* input, Slice* value);

/// Reads fixed-width values from the front of `*input`, advancing it.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

// ---------------------------------------------------------------------------
// Order-preserving key encodings for the B+-tree.
//
// Encoded byte strings compare with memcmp in the same order as the source
// values: signed ints (two's complement with flipped sign bit, big-endian),
// doubles (IEEE-754 total order trick), strings (0x00-escaped with a
// 0x00 0x00 terminator so that a shorter string sorts before its
// extensions and fixed-width suffixes such as row ids can follow).
// ---------------------------------------------------------------------------

void PutOrderedInt64(std::string* dst, int64_t v);
void PutOrderedDouble(std::string* dst, double v);
void PutOrderedString(std::string* dst, Slice v);

bool GetOrderedInt64(Slice* input, int64_t* v);
bool GetOrderedDouble(Slice* input, double* v);
bool GetOrderedString(Slice* input, std::string* v);

}  // namespace instantdb

#endif  // INSTANTDB_UTIL_CODING_H_
