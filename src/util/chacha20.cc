#include "util/chacha20.h"

#include <cstring>

namespace instantdb {

namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotl(d ^ a, 16);
  c += d;
  b = Rotl(b ^ c, 12);
  a += b;
  d = Rotl(d ^ a, 8);
  c += d;
  b = Rotl(b ^ c, 7);
}

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;  // little-endian hosts only (x86/ARM little-endian)
}

void Block(const ChaCha20::Key& key, const ChaCha20::Nonce& nonce,
           uint32_t counter, uint8_t out[64]) {
  uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = Load32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = Load32(nonce.data() + 4 * i);

  uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const uint32_t v = x[i] + state[i];
    std::memcpy(out + 4 * i, &v, 4);
  }
}

}  // namespace

void ChaCha20::XorStream(const Key& key, const Nonce& nonce, uint32_t counter,
                         char* data, size_t n) {
  uint8_t ks[64];
  size_t off = 0;
  while (off < n) {
    Block(key, nonce, counter++, ks);
    const size_t chunk = (n - off < 64) ? n - off : 64;
    for (size_t i = 0; i < chunk; ++i) {
      data[off + i] = static_cast<char>(static_cast<uint8_t>(data[off + i]) ^ ks[i]);
    }
    off += chunk;
  }
}

void ChaCha20::XorStreamAt(const Key& key, const Nonce& nonce,
                           uint64_t byte_offset, char* data, size_t n) {
  uint32_t counter = static_cast<uint32_t>(byte_offset / 64);
  size_t skip = static_cast<size_t>(byte_offset % 64);
  uint8_t ks[64];
  size_t off = 0;
  while (off < n) {
    Block(key, nonce, counter++, ks);
    const size_t avail = 64 - skip;
    const size_t chunk = (n - off < avail) ? n - off : avail;
    for (size_t i = 0; i < chunk; ++i) {
      data[off + i] =
          static_cast<char>(static_cast<uint8_t>(data[off + i]) ^ ks[skip + i]);
    }
    off += chunk;
    skip = 0;
  }
}

}  // namespace instantdb
