#ifndef INSTANTDB_UTIL_BITMAP_H_
#define INSTANTDB_UTIL_BITMAP_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace instantdb {

/// \brief Growable bitset over row positions; the storage behind the bitmap
/// index used for coarse (low-cardinality) degraded attribute levels.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t bits) { Resize(bits); }

  void Resize(size_t bits);
  size_t size_bits() const { return bits_; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Get(size_t i) const;

  /// Number of set bits in [0, size_bits()).
  size_t Count() const;
  /// Number of set bits in [begin, end).
  size_t CountRange(size_t begin, size_t end) const;

  /// this &= other / this |= other (sizes are unified to the max).
  void AndWith(const Bitmap& other);
  void OrWith(const Bitmap& other);
  /// this &= ~other.
  void AndNotWith(const Bitmap& other);

  /// Calls `fn` for every set bit in ascending order.
  void ForEachSet(const std::function<void(size_t)>& fn) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  size_t bits_ = 0;
};

}  // namespace instantdb

#endif  // INSTANTDB_UTIL_BITMAP_H_
