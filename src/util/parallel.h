#ifndef INSTANTDB_UTIL_PARALLEL_H_
#define INSTANTDB_UTIL_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace instantdb {

/// Runs `fn(0) .. fn(count - 1)` on up to `workers` threads pulling tasks
/// from an atomic cursor, and returns the first non-OK status (the failing
/// worker stops claiming tasks; its siblings drain what they already
/// started). With one worker (or one task) everything runs inline on the
/// caller's thread, stopping at the first error — the shape shared by the
/// partition index rebuild and the per-stream WAL recovery passes.
inline Status ParallelFor(size_t workers, size_t count,
                          const std::function<Status(size_t)>& fn) {
  workers = std::min(std::max<size_t>(workers, 1), count);
  if (workers <= 1) {
    for (size_t i = 0; i < count; ++i) IDB_RETURN_IF_ERROR(fn(i));
    return Status::OK();
  }
  std::atomic<size_t> next{0};
  std::mutex error_mu;
  Status error;
  auto drain = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      const Status status = fn(i);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (error.ok()) error = status;
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t i = 0; i < workers; ++i) pool.emplace_back(drain);
  for (std::thread& worker : pool) worker.join();
  return error;
}

/// Detached counterpart of ParallelFor for producer/consumer pipelines (the
/// parallel scan fan-out): starts `workers` threads running `fn(worker)` and
/// joins them on destruction or an explicit Join(). The function owns no
/// queueing or error plumbing — callers coordinate through their own shared
/// state, which is what lets a cursor's prefetch workers outlive the call
/// that started them while the consumer drains.
class ParallelRunner {
 public:
  ParallelRunner() = default;
  ~ParallelRunner() { Join(); }
  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  /// Launches `workers` threads. `fn` must remain callable until Join.
  /// Restarting a runner joins any previous workers first (an old worker
  /// reading `fn` while Start reassigned it would be a data race).
  void Start(size_t workers, std::function<void(size_t)> fn) {
    Join();
    fn_ = std::move(fn);
    threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this, i] { fn_(i); });
    }
  }

  /// Blocks until every worker returned. Idempotent.
  void Join() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

 private:
  std::function<void(size_t)> fn_;
  std::vector<std::thread> threads_;
};

}  // namespace instantdb

#endif  // INSTANTDB_UTIL_PARALLEL_H_
