#ifndef INSTANTDB_UTIL_FILE_H_
#define INSTANTDB_UTIL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "util/coding.h"

namespace instantdb {

/// \brief Append-only file handle (WAL segments, state-store segments).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(Slice data) = 0;
  virtual Status Flush() = 0;
  /// Durably persists all appended data (fsync).
  virtual Status Sync() = 0;
  /// Reserves `bytes` of backing store up front (posix_fallocate). Appends
  /// within the reservation then change no file metadata, which lets
  /// SyncData skip the filesystem journal. Callers must Sync once after
  /// reserving to make the size durable, and truncate to the logical end
  /// when done. Best-effort: NotSupported on filesystems without it.
  virtual Status Preallocate(uint64_t bytes) {
    (void)bytes;
    return Status::NotSupported("preallocation not supported");
  }
  /// Durably persists appended data without forcing a metadata commit
  /// (fdatasync). Only equivalent to Sync for data durability when the
  /// bytes lie inside a preallocated, size-durable region; defaults to
  /// Sync() otherwise.
  virtual Status SyncData() { return Sync(); }
  virtual Status Close() = 0;
  virtual uint64_t size() const = 0;
};

/// \brief Positional-read file handle.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to `n` bytes at `offset` into `scratch`; `*out` points into
  /// scratch and is shorter than `n` only at end-of-file.
  virtual Status Read(uint64_t offset, size_t n, std::string* scratch,
                      Slice* out) const = 0;
  virtual uint64_t Size() const = 0;
};

/// \brief Read/write file handle used by the page-based DiskManager and by
/// secure overwrite erasure.
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;
  virtual Status Write(uint64_t offset, Slice data) = 0;
  virtual Status Read(uint64_t offset, size_t n, std::string* scratch,
                      Slice* out) const = 0;
  virtual Status Sync() = 0;
  virtual uint64_t Size() const = 0;
};

Result<std::unique_ptr<WritableFile>> NewWritableFile(const std::string& path,
                                                      bool truncate = true);
Result<std::unique_ptr<WritableFile>> NewAppendableFile(const std::string& path);
Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
    const std::string& path);
Result<std::unique_ptr<RandomRWFile>> NewRandomRWFile(const std::string& path);

// --- filesystem helpers ------------------------------------------------------

Status CreateDirIfMissing(const std::string& path);
/// Recursively creates all missing components of `path`.
Status CreateDirs(const std::string& path);
bool FileExists(const std::string& path);
Result<uint64_t> GetFileSize(const std::string& path);
Status RemoveFile(const std::string& path);
Status RemoveDirRecursive(const std::string& path);
Result<std::vector<std::string>> ListDir(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
Status WriteStringToFile(const std::string& path, Slice contents, bool sync);
Result<std::string> ReadFileToString(const std::string& path);

/// Truncates `path` to exactly `size` bytes (drops a torn tail after crash).
Status TruncateFile(const std::string& path, uint64_t size);

/// Overwrites `[offset, offset+len)` of `path` with zero bytes and syncs —
/// the physical erase primitive behind EraseMode::kOverwrite. (On real
/// hardware, overwrite semantics depend on the FTL; DESIGN.md documents the
/// simulation assumption.)
Status OverwriteRange(const std::string& path, uint64_t offset, uint64_t len);
/// Drops the file's clean pages from the OS page cache (posix_fadvise
/// DONTNEED after an fdatasync). Cold-read benchmarks use this to measure
/// scans that actually hit the device instead of the page cache.
Status EvictFromOsCache(const std::string& path);
/// Recursively evicts every regular file under `path`.
Status EvictDirFromOsCache(const std::string& path);

}  // namespace instantdb

#endif  // INSTANTDB_UTIL_FILE_H_
