#include "util/bitmap.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace instantdb {

void Bitmap::Resize(size_t bits) {
  bits_ = bits;
  words_.resize((bits + 63) / 64, 0);
}

void Bitmap::Set(size_t i) {
  if (i >= bits_) Resize(i + 1);
  words_[i / 64] |= (1ULL << (i % 64));
}

void Bitmap::Clear(size_t i) {
  if (i >= bits_) return;
  words_[i / 64] &= ~(1ULL << (i % 64));
}

bool Bitmap::Get(size_t i) const {
  if (i >= bits_) return false;
  return (words_[i / 64] >> (i % 64)) & 1;
}

size_t Bitmap::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

size_t Bitmap::CountRange(size_t begin, size_t end) const {
  end = std::min(end, bits_);
  if (begin >= end) return 0;
  size_t n = 0;
  for (size_t i = begin / 64; i <= (end - 1) / 64; ++i) {
    uint64_t w = words_[i];
    const size_t word_lo = i * 64;
    if (begin > word_lo) w &= ~0ULL << (begin - word_lo);
    if (end < word_lo + 64) w &= (1ULL << (end - word_lo)) - 1;
    n += static_cast<size_t>(std::popcount(w));
  }
  return n;
}

void Bitmap::AndWith(const Bitmap& other) {
  const size_t n = words_.size();
  for (size_t i = 0; i < n; ++i) {
    words_[i] &= i < other.words_.size() ? other.words_[i] : 0;
  }
}

void Bitmap::OrWith(const Bitmap& other) {
  if (other.bits_ > bits_) Resize(other.bits_);
  for (size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

void Bitmap::AndNotWith(const Bitmap& other) {
  const size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) words_[i] &= ~other.words_[i];
}

void Bitmap::ForEachSet(const std::function<void(size_t)>& fn) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      const size_t pos = i * 64 + static_cast<size_t>(bit);
      if (pos >= bits_) return;
      fn(pos);
      w &= w - 1;
    }
  }
}

}  // namespace instantdb
