#ifndef INSTANTDB_UTIL_CHACHA20_H_
#define INSTANTDB_UTIL_CHACHA20_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace instantdb {

/// \brief ChaCha20 stream cipher (RFC 8439), implemented from scratch.
///
/// Used for crypto-erasure: state-store segments and WAL payloads are
/// encrypted under per-segment/per-epoch keys; destroying a key renders
/// every at-rest copy unreadable. A stream cipher is the right primitive
/// because encryption and decryption are the same XOR pass and records can
/// be sealed at arbitrary byte offsets (the block counter addresses 64-byte
/// keystream blocks).
class ChaCha20 {
 public:
  static constexpr size_t kKeyBytes = 32;
  static constexpr size_t kNonceBytes = 12;

  using Key = std::array<uint8_t, kKeyBytes>;
  using Nonce = std::array<uint8_t, kNonceBytes>;

  /// XORs `n` bytes of keystream into `data` in place, starting at 64-byte
  /// block `counter`. Apply twice with identical parameters to decrypt.
  static void XorStream(const Key& key, const Nonce& nonce, uint32_t counter,
                        char* data, size_t n);

  /// Convenience: XORs a stream addressed by absolute byte offset. The
  /// offset is decomposed into (block counter, intra-block skip), so callers
  /// can seal independent records of one segment at their file offsets.
  static void XorStreamAt(const Key& key, const Nonce& nonce,
                          uint64_t byte_offset, char* data, size_t n);
};

}  // namespace instantdb

#endif  // INSTANTDB_UTIL_CHACHA20_H_
