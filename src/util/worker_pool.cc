#include "util/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace instantdb {

WorkerPool::WorkerPool(size_t size) : size_(std::max<size_t>(size, 1)) {}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::EnsureStartedLocked() {
  if (started_) return;
  started_ = true;
  free_ = size_;
  threads_.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
    if (tasks_.empty()) return;  // stop_ set and nothing left to drain
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

size_t WorkerPool::TryDispatch(size_t want, std::function<void(size_t)> fn,
                               Ticket* ticket, bool priority) {
  if (want == 0) return 0;
  auto state = std::make_shared<Ticket::State>();
  size_t take = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureStartedLocked();
    // Normal dispatches see a pool shrunk by the reserve; only priority
    // callers (the degrader) may take the last `reserved_` tokens, so no
    // foreground dispatch loop can ever re-acquire them first.
    const size_t visible =
        priority ? free_ : (free_ > reserved_ ? free_ - reserved_ : 0);
    take = std::min(want, visible);
    if (take == 0) return 0;
    if (priority && free_ - take < reserved_) ++reserved_grants_;
    // Tokens come off BEFORE the tasks are visible: a concurrent dispatch
    // can never promise the same free worker twice, which is the
    // no-over-commit invariant everything above relies on.
    free_ -= take;
    state->active = take;
    auto shared_fn = std::make_shared<std::function<void(size_t)>>(
        std::move(fn));
    for (size_t slot = 0; slot < take; ++slot) {
      // The token goes back BEFORE the ticket is signalled, so after
      // Wait() returns every borrowed worker is free again — tests assert
      // free_workers() == size to prove error paths leak nothing.
      tasks_.emplace_back([this, shared_fn, slot, state] {
        (*shared_fn)(slot);
        {
          std::lock_guard<std::mutex> returned(mu_);
          ++free_;
        }
        {
          std::lock_guard<std::mutex> done(state->mu);
          --state->active;
        }
        state->cv.notify_all();
      });
    }
  }
  cv_.notify_all();
  ticket->state_ = std::move(state);
  return take;
}

void WorkerPool::SetReserved(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  reserved_ = std::min(n, size_);
}

size_t WorkerPool::reserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

size_t WorkerPool::free_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_ ? free_ : size_;
}

uint64_t WorkerPool::reserved_grants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_grants_;
}

void WorkerPool::Wait(Ticket* ticket) {
  if (ticket == nullptr || ticket->state_ == nullptr) return;
  std::shared_ptr<Ticket::State> state = std::move(ticket->state_);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->active == 0; });
}

Status WorkerPool::Run(size_t workers, size_t count,
                       const std::function<Status(size_t)>& fn) {
  workers = std::min(std::max<size_t>(workers, 1), count);
  if (workers <= 1) {
    for (size_t i = 0; i < count; ++i) IDB_RETURN_IF_ERROR(fn(i));
    return Status::OK();
  }
  std::atomic<size_t> next{0};
  std::mutex error_mu;
  Status error;
  auto drain = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      const Status status = fn(i);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (error.ok()) error = status;
        return;
      }
    }
  };
  Ticket ticket;
  TryDispatch(workers - 1, [&](size_t) { drain(); }, &ticket);
  drain();
  Wait(&ticket);
  return error;
}

}  // namespace instantdb
