#ifndef INSTANTDB_UTIL_MORSEL_H_
#define INSTANTDB_UTIL_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "storage/page.h"

namespace instantdb {

/// Heap pages per morsel when ScanOptions::morsel_pages is 0: 16 pages
/// (128 KiB at the default page size) is small enough that a skewed
/// partition splits into many units, large enough that claim overhead
/// stays invisible next to the page reads.
inline constexpr uint32_t kDefaultMorselPages = 16;

/// \brief One unit of scan work: a page range of one partition's heap.
///
/// Every parallel consumer — streaming scan producers, materializing
/// drains, aggregate pushdown, degradation rounds, audit sweeps — claims
/// morsels instead of whole partitions, so parallelism is no longer capped
/// by the partition count and a skewed partition is shared by many workers.
struct Morsel {
  /// Owning partition (the per-partition queue this morsel lives in).
  uint32_t partition = 0;
  /// Heap page range [begin_page, end_page). end_page == kInvalidPageId
  /// means "to the end of the heap at scan time" — the last morsel of each
  /// partition is open-ended so rows appended after planning are still
  /// observed, exactly as whole-partition scans observed them.
  PageId begin_page = 0;
  PageId end_page = kInvalidPageId;
  /// Global position in the flattened (partition asc, begin_page asc) plan,
  /// assigned by MorselScheduler. Order-preserving consumers bucket results
  /// by it and concatenate, reproducing the sequential scan's output order.
  size_t ordinal = 0;
};

/// Destinations for the scheduler's claim/steal accounting (the
/// Database::ScanCounters morsel trio). All-null (the default) disables
/// counting — consumers outside the query read path (degradation, audits)
/// claim without touching scan stats.
struct MorselStatsSink {
  std::atomic<uint64_t>* claimed = nullptr;
  std::atomic<uint64_t>* stolen = nullptr;
  std::atomic<uint64_t>* steal_failures = nullptr;
};

/// \brief Work-stealing morsel scheduler: per-partition queues with
/// partition-affinity claims.
///
/// Each worker owns a home queue (`worker % num_queues`) and drains it
/// first — consecutive morsels of one partition keep the partition's pages
/// warm in its buffer pool. When the home queue runs dry the worker steals
/// from the queue with the most remaining morsels (the busiest partition is
/// exactly the one worth sharing). A steal that loses the race to the last
/// morsel counts a steal failure and re-picks.
///
/// Thread-safe and lock-free: each queue is an immutable morsel array plus
/// an atomic claim cursor. Total claims over a fully-drained scheduler
/// always equal the plan size (each morsel is handed out exactly once).
class MorselScheduler {
 public:
  /// `queues[p]` is partition p's morsel list (may be empty). The sink, if
  /// any, must outlive the scheduler.
  explicit MorselScheduler(std::vector<std::vector<Morsel>> queues,
                           MorselStatsSink sink = {});
  MorselScheduler(const MorselScheduler&) = delete;
  MorselScheduler& operator=(const MorselScheduler&) = delete;

  /// Total morsels across all queues (== the number of successful Claims a
  /// full drain performs).
  size_t total() const { return morsels_.size(); }
  size_t num_queues() const { return ranges_.size(); }

  /// Claims one morsel for `worker` (a stable worker index; affinity maps
  /// it to a home queue). Returns false when every queue is drained.
  /// `*stolen` (optional) reports whether the morsel came from a non-home
  /// queue.
  bool Claim(size_t worker, Morsel* out, bool* stolen = nullptr);

 private:
  bool TryClaim(size_t queue, Morsel* out);
  size_t Remaining(size_t queue) const;

  /// Flattened queue-major morsel array; ranges_[q] = [first, last) into it.
  std::vector<Morsel> morsels_;
  std::vector<std::pair<size_t, size_t>> ranges_;
  /// Per-queue claim cursor (offset of the next unclaimed morsel; may
  /// overshoot the queue size from failed claims — harmless).
  std::vector<std::atomic<size_t>> cursors_;
  MorselStatsSink sink_;
};

}  // namespace instantdb

#endif  // INSTANTDB_UTIL_MORSEL_H_
