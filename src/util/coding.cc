#include "util/coding.h"

#include <cmath>

namespace instantdb {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

namespace {

template <typename T, int kMaxBytes>
bool GetVarintImpl(Slice* input, T* value) {
  T result = 0;
  for (int shift = 0, i = 0; i < kMaxBytes && !input->empty(); ++i, shift += 7) {
    const auto byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= static_cast<T>(byte & 0x7F) << shift;
    } else {
      result |= static_cast<T>(byte) << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

}  // namespace

bool GetVarint32(Slice* input, uint32_t* value) {
  return GetVarintImpl<uint32_t, 5>(input, value);
}

bool GetVarint64(Slice* input, uint64_t* value) {
  return GetVarintImpl<uint64_t, 10>(input, value);
}

void PutLengthPrefixed(std::string* dst, Slice value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixed(Slice* input, Slice* value) {
  uint32_t len = 0;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

// --- order-preserving encodings --------------------------------------------

void PutOrderedInt64(std::string* dst, int64_t v) {
  // Flip the sign bit so negatives sort before positives, then big-endian.
  const uint64_t u = static_cast<uint64_t>(v) ^ (1ULL << 63);
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(u >> (56 - 8 * i));
  dst->append(buf, 8);
}

bool GetOrderedInt64(Slice* input, int64_t* v) {
  if (input->size() < 8) return false;
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u = (u << 8) | static_cast<unsigned char>((*input)[i]);
  }
  input->remove_prefix(8);
  *v = static_cast<int64_t>(u ^ (1ULL << 63));
  return true;
}

void PutOrderedDouble(std::string* dst, double v) {
  // IEEE-754 total order: positive values get the sign bit set; negative
  // values are bitwise complemented.
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  if (bits & (1ULL << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ULL << 63);
  }
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(bits >> (56 - 8 * i));
  dst->append(buf, 8);
}

bool GetOrderedDouble(Slice* input, double* v) {
  if (input->size() < 8) return false;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits = (bits << 8) | static_cast<unsigned char>((*input)[i]);
  }
  input->remove_prefix(8);
  if (bits & (1ULL << 63)) {
    bits &= ~(1ULL << 63);
  } else {
    bits = ~bits;
  }
  std::memcpy(v, &bits, 8);
  return true;
}

void PutOrderedString(std::string* dst, Slice v) {
  // Escape embedded 0x00 as 0x00 0x01 and terminate with 0x00 0x00 so the
  // encoding is prefix-free and memcmp order equals string order.
  for (char c : v) {
    if (c == '\0') {
      dst->push_back('\0');
      dst->push_back('\x01');
    } else {
      dst->push_back(c);
    }
  }
  dst->push_back('\0');
  dst->push_back('\0');
}

bool GetOrderedString(Slice* input, std::string* v) {
  v->clear();
  size_t i = 0;
  while (i < input->size()) {
    const char c = (*input)[i];
    if (c != '\0') {
      v->push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= input->size()) return false;
    const char next = (*input)[i + 1];
    if (next == '\0') {
      input->remove_prefix(i + 2);
      return true;
    }
    if (next == '\x01') {
      v->push_back('\0');
      i += 2;
      continue;
    }
    return false;  // invalid escape
  }
  return false;
}

}  // namespace instantdb
