#include "util/morsel.h"

namespace instantdb {

MorselScheduler::MorselScheduler(std::vector<std::vector<Morsel>> queues,
                                 MorselStatsSink sink)
    : sink_(sink) {
  size_t total = 0;
  for (const auto& queue : queues) total += queue.size();
  morsels_.reserve(total);
  ranges_.reserve(queues.size());
  for (auto& queue : queues) {
    const size_t first = morsels_.size();
    for (Morsel& m : queue) {
      m.ordinal = morsels_.size();
      morsels_.push_back(m);
    }
    ranges_.emplace_back(first, morsels_.size());
  }
  cursors_ = std::vector<std::atomic<size_t>>(ranges_.size());
}

size_t MorselScheduler::Remaining(size_t queue) const {
  const size_t size = ranges_[queue].second - ranges_[queue].first;
  const size_t next = cursors_[queue].load(std::memory_order_relaxed);
  return next >= size ? 0 : size - next;
}

bool MorselScheduler::TryClaim(size_t queue, Morsel* out) {
  const size_t size = ranges_[queue].second - ranges_[queue].first;
  const size_t i = cursors_[queue].fetch_add(1, std::memory_order_relaxed);
  if (i >= size) return false;
  *out = morsels_[ranges_[queue].first + i];
  return true;
}

bool MorselScheduler::Claim(size_t worker, Morsel* out, bool* stolen) {
  const size_t nq = ranges_.size();
  if (stolen != nullptr) *stolen = false;
  if (nq == 0) return false;
  const size_t home = worker % nq;
  if (Remaining(home) > 0 && TryClaim(home, out)) {
    if (sink_.claimed != nullptr) {
      sink_.claimed->fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
  // Home is dry: steal from the busiest queue — the skewed partition is the
  // one whose latency bounds the scan, so it is the one worth sharing.
  for (;;) {
    size_t best = nq;
    size_t best_remaining = 0;
    for (size_t q = 0; q < nq; ++q) {
      const size_t remaining = Remaining(q);
      if (remaining > best_remaining) {
        best = q;
        best_remaining = remaining;
      }
    }
    if (best == nq) return false;  // everything drained
    if (TryClaim(best, out)) {
      if (stolen != nullptr) *stolen = true;
      if (sink_.claimed != nullptr) {
        sink_.claimed->fetch_add(1, std::memory_order_relaxed);
      }
      if (sink_.stolen != nullptr) {
        sink_.stolen->fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
    // Raced another worker to the victim's last morsel: re-pick.
    if (sink_.steal_failures != nullptr) {
      sink_.steal_failures->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace instantdb
