#include "util/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace instantdb {

namespace {

Status PosixError(const std::string& context, int err) {
  return Status::IOError(context + ": " + std::strerror(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(Slice data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError("write " + path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    size_ += data.size();
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }  // no user-space buffer

  Status Sync() override {
    if (::fsync(fd_) != 0) return PosixError("fsync " + path_, errno);
    return Status::OK();
  }

  Status Preallocate(uint64_t bytes) override {
#if defined(__linux__)
    const int err = ::posix_fallocate(fd_, 0, static_cast<off_t>(bytes));
    if (err != 0) return PosixError("fallocate " + path_, err);
    return Status::OK();
#else
    (void)bytes;
    return Status::NotSupported("preallocation not supported");
#endif
  }

  Status SyncData() override {
#if defined(__linux__)
    if (::fdatasync(fd_) != 0) return PosixError("fdatasync " + path_, errno);
    return Status::OK();
#else
    return Sync();
#endif
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return PosixError("close " + path_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  std::string path_;
  int fd_;
  uint64_t size_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, std::string* scratch,
              Slice* out) const override {
    scratch->resize(n);
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::pread(fd_, scratch->data() + got, n - got,
                                static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError("pread " + path_, errno);
      }
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    *out = Slice(scratch->data(), got);
    return Status::OK();
  }

  uint64_t Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return 0;
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  int fd_;
};

class PosixRandomRWFile final : public RandomRWFile {
 public:
  PosixRandomRWFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomRWFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Write(uint64_t offset, Slice data) override {
    const char* p = data.data();
    size_t left = data.size();
    uint64_t off = offset;
    while (left > 0) {
      const ssize_t n = ::pwrite(fd_, p, left, static_cast<off_t>(off));
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError("pwrite " + path_, errno);
      }
      p += n;
      off += static_cast<uint64_t>(n);
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Read(uint64_t offset, size_t n, std::string* scratch,
              Slice* out) const override {
    scratch->resize(n);
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::pread(fd_, scratch->data() + got, n - got,
                                static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError("pread " + path_, errno);
      }
      if (r == 0) break;
      got += static_cast<size_t>(r);
    }
    *out = Slice(scratch->data(), got);
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return PosixError("fsync " + path_, errno);
    return Status::OK();
  }

  uint64_t Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return 0;
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  int fd_;
};

}  // namespace

Result<std::unique_ptr<WritableFile>> NewWritableFile(const std::string& path,
                                                      bool truncate) {
  const int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : 0);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return PosixError("open " + path, errno);
  uint64_t size = 0;
  if (!truncate) {
    struct stat st;
    if (::fstat(fd, &st) == 0) size = static_cast<uint64_t>(st.st_size);
    ::lseek(fd, 0, SEEK_END);
  }
  return std::unique_ptr<WritableFile>(
      new PosixWritableFile(path, fd, size));
}

Result<std::unique_ptr<WritableFile>> NewAppendableFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return PosixError("open " + path, errno);
  struct stat st;
  uint64_t size = 0;
  if (::fstat(fd, &st) == 0) size = static_cast<uint64_t>(st.st_size);
  return std::unique_ptr<WritableFile>(
      new PosixWritableFile(path, fd, size));
}

Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return PosixError("open " + path, errno);
  return std::unique_ptr<RandomAccessFile>(
      new PosixRandomAccessFile(path, fd));
}

Result<std::unique_ptr<RandomRWFile>> NewRandomRWFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return PosixError("open " + path, errno);
  return std::unique_ptr<RandomRWFile>(new PosixRandomRWFile(path, fd));
}

Status CreateDirIfMissing(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return PosixError("mkdir " + path, errno);
  }
  return Status::OK();
}

Status CreateDirs(const std::string& path) {
  std::string cur;
  for (const std::string& part : Split(path, '/')) {
    if (part.empty()) {
      if (cur.empty()) cur.push_back('/');
      continue;
    }
    if (!cur.empty() && cur.back() != '/') cur += '/';
    cur += part;
    IDB_RETURN_IF_ERROR(CreateDirIfMissing(cur));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Result<uint64_t> GetFileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return PosixError("stat " + path, errno);
  return static_cast<uint64_t>(st.st_size);
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return PosixError("unlink " + path, errno);
  return Status::OK();
}

Status RemoveDirRecursive(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return PosixError("opendir " + path, errno);
  }
  struct dirent* entry;
  Status status;
  while ((entry = ::readdir(dir)) != nullptr) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string child = path + "/" + name;
    struct stat st;
    if (::lstat(child.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      status = RemoveDirRecursive(child);
    } else {
      ::unlink(child.c_str());
    }
    if (!status.ok()) break;
  }
  ::closedir(dir);
  if (status.ok() && ::rmdir(path.c_str()) != 0 && errno != ENOENT) {
    return PosixError("rmdir " + path, errno);
  }
  return status;
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return PosixError("opendir " + path, errno);
  std::vector<std::string> names;
  struct dirent* entry;
  while ((entry = ::readdir(dir)) != nullptr) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(dir);
  return names;
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return PosixError("rename " + from + " -> " + to, errno);
  }
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, Slice contents, bool sync) {
  IDB_ASSIGN_OR_RETURN(auto file, NewWritableFile(path, /*truncate=*/true));
  IDB_RETURN_IF_ERROR(file->Append(contents));
  if (sync) IDB_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

Result<std::string> ReadFileToString(const std::string& path) {
  IDB_ASSIGN_OR_RETURN(auto file, NewRandomAccessFile(path));
  const uint64_t size = file->Size();
  std::string scratch;
  Slice out;
  IDB_RETURN_IF_ERROR(file->Read(0, size, &scratch, &out));
  scratch.resize(out.size());
  return scratch;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return PosixError("truncate " + path, errno);
  }
  return Status::OK();
}

Status EvictFromOsCache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return PosixError("open " + path, errno);
  // Dirty pages would survive the advice: flush first so the whole file is
  // clean and evictable.
  Status status;
  if (::fdatasync(fd) != 0) {
    status = PosixError("fdatasync " + path, errno);
  } else if (::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED) != 0) {
    status = PosixError("posix_fadvise " + path, errno);
  }
  ::close(fd);
  return status;
}

Status EvictDirFromOsCache(const std::string& path) {
  IDB_ASSIGN_OR_RETURN(auto names, ListDir(path));
  for (const std::string& name : names) {
    const std::string child = path + "/" + name;
    struct ::stat st;
    if (::stat(child.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      IDB_RETURN_IF_ERROR(EvictDirFromOsCache(child));
    } else if (S_ISREG(st.st_mode)) {
      IDB_RETURN_IF_ERROR(EvictFromOsCache(child));
    }
  }
  return Status::OK();
}

Status OverwriteRange(const std::string& path, uint64_t offset, uint64_t len) {
  IDB_ASSIGN_OR_RETURN(auto file, NewRandomRWFile(path));
  const std::string zeros(4096, '\0');
  uint64_t remaining = len;
  uint64_t off = offset;
  while (remaining > 0) {
    const uint64_t chunk =
        remaining < zeros.size() ? remaining : zeros.size();
    IDB_RETURN_IF_ERROR(file->Write(off, Slice(zeros.data(), chunk)));
    off += chunk;
    remaining -= chunk;
  }
  return file->Sync();
}

}  // namespace instantdb
