#ifndef INSTANTDB_UTIL_HISTOGRAM_H_
#define INSTANTDB_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace instantdb {

/// \brief Latency/size histogram used by the degradation statistics and the
/// benchmark harness. Stores raw samples; percentiles computed on demand.
class Histogram {
 public:
  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  /// p in [0, 100]. Nearest-rank percentile; 0 with no samples.
  double Percentile(double p) const;

  /// One-line summary "count=.. mean=.. p50=.. p95=.. p99=.. max=..".
  std::string ToString() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace instantdb

#endif  // INSTANTDB_UTIL_HISTOGRAM_H_
