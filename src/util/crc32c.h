#ifndef INSTANTDB_UTIL_CRC32C_H_
#define INSTANTDB_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace instantdb::crc32c {

/// CRC-32C (Castagnoli) of data[0, n); `init` extends a running checksum.
uint32_t Value(const char* data, size_t n, uint32_t init = 0);

/// Masked CRC stored in files, so that a CRC of bytes that themselves
/// contain an embedded CRC does not degenerate (LevelDB trick).
uint32_t Mask(uint32_t crc);
uint32_t Unmask(uint32_t masked);

}  // namespace instantdb::crc32c

#endif  // INSTANTDB_UTIL_CRC32C_H_
