#include "storage/heap_file.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/coding.h"

namespace instantdb {

namespace {

constexpr size_t kHeaderBytes = 8;
constexpr size_t kSlotBytes = 4;

uint16_t SlotOffset(const char* page, uint16_t slot) {
  return DecodeFixed32(page + kHeaderBytes + slot * kSlotBytes) & 0xFFFF;
}

uint16_t SlotLen(const char* page, uint16_t slot) {
  return (DecodeFixed32(page + kHeaderBytes + slot * kSlotBytes) >> 16) &
         0xFFFF;
}

void SetSlot(char* page, uint16_t slot, uint16_t offset, uint16_t len) {
  EncodeFixed32(page + kHeaderBytes + slot * kSlotBytes,
                static_cast<uint32_t>(offset) |
                    (static_cast<uint32_t>(len) << 16));
}

}  // namespace

HeapFile::HeapFile(BufferPool* pool)
    : pool_(pool), page_size_(pool->disk()->page_size()) {}

HeapFile::PageHeader HeapFile::ReadHeader(const char* page) {
  PageHeader header;
  header.num_slots = DecodeFixed32(page) & 0xFFFF;
  header.data_start = (DecodeFixed32(page) >> 16) & 0xFFFF;
  return header;
}

void HeapFile::WriteHeader(char* page, PageHeader header) {
  EncodeFixed32(page, static_cast<uint32_t>(header.num_slots) |
                          (static_cast<uint32_t>(header.data_start) << 16));
}

size_t HeapFile::FreeSpace(const char* page) const {
  const PageHeader header = ReadHeader(page);
  const size_t data_start =
      header.data_start == 0 ? page_size_ : header.data_start;
  const size_t slots_end = kHeaderBytes + header.num_slots * kSlotBytes;
  return data_start > slots_end ? data_start - slots_end : 0;
}

size_t HeapFile::max_record_size() const {
  return page_size_ - kHeaderBytes - kSlotBytes;
}

Status HeapFile::Open() {
  const PageId n = pool_->disk()->num_pages();
  free_space_.assign(n, 0);
  freed_slots_.assign(n, 0);
  live_records_ = 0;
  for (PageId p = 0; p < n; ++p) {
    IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(p));
    free_space_[p] = static_cast<uint16_t>(FreeSpace(guard.data()));
    const PageHeader header = ReadHeader(guard.data());
    for (uint16_t s = 0; s < header.num_slots; ++s) {
      if (SlotOffset(guard.data(), s) != 0) {
        ++live_records_;
      } else {
        ++freed_slots_[p];
      }
    }
  }
  return Status::OK();
}

void HeapFile::CompactPage(char* page) const {
  PageHeader header = ReadHeader(page);
  std::string buffer(page_size_, '\0');
  size_t write_end = page_size_;
  std::vector<std::pair<uint16_t, uint16_t>> new_slots(header.num_slots,
                                                       {0, 0});
  for (uint16_t s = 0; s < header.num_slots; ++s) {
    const uint16_t offset = SlotOffset(page, s);
    const uint16_t len = SlotLen(page, s);
    if (offset == 0) continue;
    write_end -= len;
    std::memcpy(buffer.data() + write_end, page + offset, len);
    new_slots[s] = {static_cast<uint16_t>(write_end), len};
  }
  // Zero the whole data region, then lay the compacted image back down —
  // this also scrubs any residue between records.
  std::memset(page + kHeaderBytes + header.num_slots * kSlotBytes, 0,
              page_size_ - kHeaderBytes - header.num_slots * kSlotBytes);
  std::memcpy(page + write_end, buffer.data() + write_end,
              page_size_ - write_end);
  for (uint16_t s = 0; s < header.num_slots; ++s) {
    SetSlot(page, s, new_slots[s].first, new_slots[s].second);
  }
  header.data_start = static_cast<uint16_t>(write_end);
  WriteHeader(page, header);
}

Result<Rid> HeapFile::InsertIntoPage(PageGuard& guard, Slice record) {
  char* page = guard.data();
  PageHeader header = ReadHeader(page);
  size_t data_start = header.data_start == 0 ? page_size_ : header.data_start;

  // Reuse an empty slot if any, else extend the slot array. The in-memory
  // freed-slot count makes the append-only common case O(1) instead of a
  // full slot scan per insert.
  uint16_t slot = header.num_slots;
  if (guard.id() < freed_slots_.size() && freed_slots_[guard.id()] > 0) {
    for (uint16_t s = 0; s < header.num_slots; ++s) {
      if (SlotOffset(page, s) == 0) {
        slot = s;
        break;
      }
    }
  }
  const bool new_slot = slot == header.num_slots;
  const size_t slots_end =
      kHeaderBytes + (header.num_slots + (new_slot ? 1 : 0)) * kSlotBytes;
  if (data_start < slots_end + record.size()) {
    return Status::Busy("page full");
  }
  data_start -= record.size();
  std::memcpy(page + data_start, record.data(), record.size());
  if (new_slot) {
    ++header.num_slots;
  } else if (guard.id() < freed_slots_.size() && freed_slots_[guard.id()] > 0) {
    --freed_slots_[guard.id()];
  }
  header.data_start = static_cast<uint16_t>(data_start);
  WriteHeader(page, header);
  SetSlot(page, slot, static_cast<uint16_t>(data_start),
          static_cast<uint16_t>(record.size()));
  guard.MarkDirty();
  free_space_[guard.id()] = static_cast<uint16_t>(FreeSpace(page));
  ++live_records_;
  return Rid{guard.id(), slot};
}

Result<Rid> HeapFile::Insert(Slice record) {
  if (record.size() > max_record_size()) {
    return Status::InvalidArgument("record larger than page");
  }
  const size_t needed = record.size() + kSlotBytes;
  for (PageId p = 0; p < free_space_.size(); ++p) {
    if (free_space_[p] < needed) continue;
    IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(p));
    auto rid = InsertIntoPage(guard, record);
    if (rid.ok()) return rid;
    if (!rid.status().IsBusy()) return rid;
    // Free-space map was stale (fragmentation); compact and retry once.
    CompactPage(guard.data());
    guard.MarkDirty();
    free_space_[p] = static_cast<uint16_t>(FreeSpace(guard.data()));
    if (free_space_[p] >= needed) {
      auto retry = InsertIntoPage(guard, record);
      if (retry.ok()) return retry;
    }
  }
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
  PageHeader header{0, static_cast<uint16_t>(page_size_)};
  WriteHeader(guard.data(), header);
  free_space_.push_back(static_cast<uint16_t>(FreeSpace(guard.data())));
  freed_slots_.push_back(0);
  return InsertIntoPage(guard, record);
}

Result<std::string> HeapFile::Get(Rid rid) const {
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page));
  const char* page = guard.data();
  const PageHeader header = ReadHeader(page);
  if (rid.slot >= header.num_slots || SlotOffset(page, rid.slot) == 0) {
    return Status::NotFound("no record at rid");
  }
  return std::string(page + SlotOffset(page, rid.slot),
                     SlotLen(page, rid.slot));
}

Status HeapFile::Delete(Rid rid) {
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page));
  char* page = guard.data();
  const PageHeader header = ReadHeader(page);
  if (rid.slot >= header.num_slots || SlotOffset(page, rid.slot) == 0) {
    return Status::NotFound("no record at rid");
  }
  // Physically clean the record bytes before freeing the slot.
  std::memset(page + SlotOffset(page, rid.slot), 0, SlotLen(page, rid.slot));
  SetSlot(page, rid.slot, 0, 0);
  guard.MarkDirty();
  free_space_[rid.page] = static_cast<uint16_t>(FreeSpace(page));
  if (rid.page < freed_slots_.size()) ++freed_slots_[rid.page];
  --live_records_;
  return Status::OK();
}

Status HeapFile::Update(Rid rid, Slice record, Rid* out) {
  *out = rid;
  IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page));
  char* page = guard.data();
  const PageHeader header = ReadHeader(page);
  if (rid.slot >= header.num_slots || SlotOffset(page, rid.slot) == 0) {
    return Status::NotFound("no record at rid");
  }
  const uint16_t offset = SlotOffset(page, rid.slot);
  const uint16_t old_len = SlotLen(page, rid.slot);
  if (record.size() <= old_len) {
    std::memcpy(page + offset, record.data(), record.size());
    // Scrub the shrunk tail.
    std::memset(page + offset + record.size(), 0, old_len - record.size());
    SetSlot(page, rid.slot, offset, static_cast<uint16_t>(record.size()));
    guard.MarkDirty();
    return Status::OK();
  }
  // Grow: zero the old image, free the slot, and re-insert (same page if it
  // fits after compaction, else anywhere).
  std::memset(page + offset, 0, old_len);
  SetSlot(page, rid.slot, 0, 0);
  CompactPage(page);
  guard.MarkDirty();
  free_space_[rid.page] = static_cast<uint16_t>(FreeSpace(page));
  if (rid.page < freed_slots_.size()) ++freed_slots_[rid.page];
  --live_records_;
  guard.Release();
  IDB_ASSIGN_OR_RETURN(Rid new_rid, Insert(record));
  *out = new_rid;
  return Status::OK();
}

Status HeapFile::Scan(const std::function<bool(Rid, Slice)>& fn) const {
  return ScanFrom(Rid{0, 0}, fn);
}

Status HeapFile::ScanFrom(Rid start,
                          const std::function<bool(Rid, Slice)>& fn) const {
  return ScanRange(start, kInvalidPageId, fn);
}

Status HeapFile::ScanRange(Rid start, PageId end_page,
                           const std::function<bool(Rid, Slice)>& fn) const {
  const PageId n = std::min<PageId>(end_page, pool_->disk()->num_pages());
  for (PageId p = start.page; p < n; ++p) {
    IDB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(p));
    const char* page = guard.data();
    const PageHeader header = ReadHeader(page);
    for (uint16_t s = p == start.page ? start.slot : 0; s < header.num_slots;
         ++s) {
      const uint16_t offset = SlotOffset(page, s);
      if (offset == 0) continue;
      if (!fn(Rid{p, s}, Slice(page + offset, SlotLen(page, s)))) {
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

}  // namespace instantdb
