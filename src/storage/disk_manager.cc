#include "storage/disk_manager.h"

#include <vector>

namespace instantdb {

Result<std::unique_ptr<DiskManager>> DiskManager::Open(const std::string& path,
                                                       size_t page_size) {
  IDB_ASSIGN_OR_RETURN(auto file, NewRandomRWFile(path));
  const uint64_t size = file->Size();
  if (size % page_size != 0) {
    return Status::Corruption("heap file size is not page-aligned: " + path);
  }
  return std::unique_ptr<DiskManager>(
      new DiskManager(path, page_size, std::move(file),
                      static_cast<PageId>(size / page_size)));
}

Result<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const PageId id = num_pages_.load(std::memory_order_relaxed);
  const std::string zeros(page_size_, '\0');
  IDB_RETURN_IF_ERROR(
      file_->Write(static_cast<uint64_t>(id) * page_size_, zeros));
  num_pages_.store(id + 1, std::memory_order_release);
  return id;
}

Status DiskManager::ReadPage(PageId id, char* out) const {
  if (id >= num_pages()) return Status::InvalidArgument("page out of range");
  std::string scratch;
  Slice data;
  IDB_RETURN_IF_ERROR(file_->Read(static_cast<uint64_t>(id) * page_size_,
                                  page_size_, &scratch, &data));
  if (data.size() != page_size_) {
    return Status::Corruption("short page read");
  }
  std::memcpy(out, data.data(), page_size_);
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  if (id >= num_pages()) return Status::InvalidArgument("page out of range");
  return file_->Write(static_cast<uint64_t>(id) * page_size_,
                      Slice(data, page_size_));
}

Status DiskManager::Sync() { return file_->Sync(); }

}  // namespace instantdb
