#include "storage/disk_manager.h"

#include <vector>

#include "util/coding.h"
#include "util/crc32c.h"

namespace instantdb {

namespace {
/// Byte offset of the page checksum word — the heap page header's reserved
/// word (heap_file.cc keeps bytes [4..8) unused).
constexpr size_t kPageCrcOffset = 4;
}  // namespace

Result<std::unique_ptr<DiskManager>> DiskManager::Open(const std::string& path,
                                                       size_t page_size,
                                                       Env* env,
                                                       bool checksum_pages) {
  if (env == nullptr) env = Env::Default();
  IDB_ASSIGN_OR_RETURN(auto file, env->NewRandomRWFile(path));
  const uint64_t size = file->Size();
  if (size % page_size != 0) {
    return Status::Corruption("heap file size is not page-aligned: " + path);
  }
  return std::unique_ptr<DiskManager>(
      new DiskManager(path, page_size, std::move(file),
                      static_cast<PageId>(size / page_size), checksum_pages));
}

uint32_t DiskManager::PageCrc(const char* page) const {
  static const char kZeros[4] = {0, 0, 0, 0};
  uint32_t crc = crc32c::Value(page, kPageCrcOffset);
  crc = crc32c::Value(kZeros, sizeof(kZeros), crc);
  crc = crc32c::Value(page + kPageCrcOffset + 4,
                      page_size_ - kPageCrcOffset - 4, crc);
  return crc32c::Mask(crc);
}

Result<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const PageId id = num_pages_.load(std::memory_order_relaxed);
  const std::string zeros(page_size_, '\0');
  IDB_RETURN_IF_ERROR(
      file_->Write(static_cast<uint64_t>(id) * page_size_, zeros));
  num_pages_.store(id + 1, std::memory_order_release);
  return id;
}

Status DiskManager::ReadPage(PageId id, char* out) const {
  if (id >= num_pages()) return Status::InvalidArgument("page out of range");
  std::string scratch;
  Slice data;
  IDB_RETURN_IF_ERROR(file_->Read(static_cast<uint64_t>(id) * page_size_,
                                  page_size_, &scratch, &data));
  if (data.size() != page_size_) {
    return Status::Corruption("short page read");
  }
  std::memcpy(out, data.data(), page_size_);
  if (checksum_pages_) {
    const uint32_t stored = DecodeFixed32(out + kPageCrcOffset);
    // 0 = unchecked: freshly allocated zero pages and pre-checksum files.
    if (stored != 0 && stored != PageCrc(out)) {
      return Status::Corruption("heap page checksum mismatch: " + path_ +
                                " page " + std::to_string(id));
    }
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  if (id >= num_pages()) return Status::InvalidArgument("page out of range");
  if (!checksum_pages_) {
    return file_->Write(static_cast<uint64_t>(id) * page_size_,
                        Slice(data, page_size_));
  }
  std::string stamped(data, page_size_);
  EncodeFixed32(stamped.data() + kPageCrcOffset, PageCrc(stamped.data()));
  return file_->Write(static_cast<uint64_t>(id) * page_size_, stamped);
}

Status DiskManager::Sync() { return file_->Sync(); }

}  // namespace instantdb
