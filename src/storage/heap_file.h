#ifndef INSTANTDB_STORAGE_HEAP_FILE_H_
#define INSTANTDB_STORAGE_HEAP_FILE_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace instantdb {

/// \brief Slotted-page heap file holding the stable part of each tuple (and,
/// under DegradableLayout::kInPlace, the degradable values too).
///
/// Page layout:
///   [0..2)  uint16 slot count
///   [2..4)  uint16 data_start — records grow downward from the page end
///   [8..)   slot array, 4 bytes each: uint16 offset (0 = empty), uint16 len
///
/// Deletes are *secure*: record bytes are zeroed in the page image before
/// the slot is freed, so no accurate value survives in the data space
/// (paper §III, "every trace of deleted data must be physically cleaned
/// up"). The same zeroing runs on every in-place shrink.
class HeapFile {
 public:
  explicit HeapFile(BufferPool* pool);

  /// Rebuilds the in-memory free-space map by scanning page headers.
  Status Open();

  Result<Rid> Insert(Slice record);
  Result<std::string> Get(Rid rid) const;

  /// Frees the slot; record bytes are always zeroed first.
  Status Delete(Rid rid);

  /// Rewrites the record. Stays at `rid` when it fits (possibly after page
  /// compaction); otherwise relocates and returns the new rid in `*out`.
  Status Update(Rid rid, Slice record, Rid* out);

  /// Calls `fn` for every live record. Stops early if `fn` returns false.
  Status Scan(
      const std::function<bool(Rid, Slice)>& fn) const;

  /// Resumable variant for cursors: scans live records in (page, slot)
  /// order starting at `start` (inclusive). `Rid{0, 0}` scans everything.
  Status ScanFrom(Rid start, const std::function<bool(Rid, Slice)>& fn) const;

  /// Page-range-bounded ScanFrom: stops before `end_page` (exclusive) — the
  /// morsel scan primitive. `kInvalidPageId` means "to the end of the heap",
  /// making ScanFrom the open-ended special case.
  Status ScanRange(Rid start, PageId end_page,
                   const std::function<bool(Rid, Slice)>& fn) const;

  /// Number of live records (maintained incrementally).
  uint64_t live_records() const { return live_records_; }

  size_t max_record_size() const;

 private:
  struct PageHeader {
    uint16_t num_slots;
    uint16_t data_start;
  };

  static PageHeader ReadHeader(const char* page);
  static void WriteHeader(char* page, PageHeader header);
  size_t FreeSpace(const char* page) const;
  /// Compacts the data region of a pinned page, preserving slot numbers.
  void CompactPage(char* page) const;
  Result<Rid> InsertIntoPage(PageGuard& guard, Slice record);

  BufferPool* const pool_;
  const size_t page_size_;
  std::vector<uint16_t> free_space_;  // per page, approximate
  /// Reusable (freed) slots per page: 0 means InsertIntoPage can append a
  /// fresh slot without scanning the slot array (the append-only hot path).
  std::vector<uint16_t> freed_slots_;
  uint64_t live_records_ = 0;
};

}  // namespace instantdb

#endif  // INSTANTDB_STORAGE_HEAP_FILE_H_
