#ifndef INSTANTDB_STORAGE_BUFFER_POOL_H_
#define INSTANTDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace instantdb {

class BufferPool;

/// \brief Pinned page handle. The frame stays in memory (and is never
/// evicted) while a guard exists; the guard unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the frame dirty so eviction/flush writes it back.
  void MarkDirty();

  /// Explicit early release.
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, PageId id, size_t frame, char* data)
      : pool_(pool), id_(id), frame_(frame), data_(data) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  size_t frame_ = 0;
  char* data_ = nullptr;
};

/// \brief Fixed-capacity LRU buffer pool over one DiskManager.
///
/// Classic steal/no-force is *not* used: InstantDB runs a no-steal policy —
/// dirty pages of uncommitted transactions are never evicted (transactions
/// pin what they write), so the WAL needs only redo records. Flushing
/// happens at checkpoints and on eviction of committed work.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss.
  Result<PageGuard> FetchPage(PageId id);

  /// Allocates a fresh zeroed page and pins it.
  Result<PageGuard> NewPage();

  /// Writes back every dirty frame (checkpoint path) and syncs the file.
  Status FlushAll();

  DiskManager* disk() const { return disk_; }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_writebacks = 0;
  };
  Stats stats() const;

 private:
  friend class PageGuard;

  struct Frame {
    PageId page = kInvalidPageId;
    int pins = 0;
    bool dirty = false;
    bool valid = false;
  };

  void Unpin(size_t frame);
  void MarkDirtyFrame(size_t frame);
  /// Returns a usable frame index, evicting an unpinned LRU victim if
  /// needed. Requires mu_ held.
  Result<size_t> GetFreeFrameLocked();
  void TouchLocked(size_t frame);
  Result<PageGuard> PinExistingLocked(size_t frame);

  DiskManager* const disk_;
  const size_t capacity_;
  const size_t page_size_;

  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::unique_ptr<char[]> memory_;
  std::unordered_map<PageId, size_t> table_;
  std::list<size_t> lru_;  // front = most recently used
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  Stats stats_;
};

}  // namespace instantdb

#endif  // INSTANTDB_STORAGE_BUFFER_POOL_H_
