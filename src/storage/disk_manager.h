#ifndef INSTANTDB_STORAGE_DISK_MANAGER_H_
#define INSTANTDB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "io/env.h"
#include "storage/page.h"
#include "util/file.h"

namespace instantdb {

/// \brief Page-granular I/O over a single file (one heap file per table).
/// Thread-safe; the buffer pool serializes logical access above it.
///
/// With `checksum_pages` every written page is stamped with a masked CRC32C
/// in the page's reserved word (bytes [4..8), unused by the heap layout) and
/// every read verifies it, so a torn page write surfaces as Corruption
/// instead of silently decoding garbage. A stored value of 0 means
/// "unchecked" (zero-fresh or pre-checksum pages), which keeps old heap
/// files readable. Index files must NOT enable it — B-tree nodes use that
/// word for the leftmost-child pointer.
class DiskManager {
 public:
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path,
                                                   size_t page_size,
                                                   Env* env = nullptr,
                                                   bool checksum_pages = false);

  size_t page_size() const { return page_size_; }
  PageId num_pages() const { return num_pages_.load(std::memory_order_acquire); }
  const std::string& path() const { return path_; }

  /// Extends the file by one zeroed page.
  Result<PageId> AllocatePage();

  Status ReadPage(PageId id, char* out) const;
  Status WritePage(PageId id, const char* data);
  Status Sync();

 private:
  DiskManager(std::string path, size_t page_size,
              std::unique_ptr<RandomRWFile> file, PageId num_pages,
              bool checksum_pages)
      : path_(std::move(path)),
        page_size_(page_size),
        file_(std::move(file)),
        num_pages_(num_pages),
        checksum_pages_(checksum_pages) {}

  /// CRC32C over the page with the checksum word treated as zero.
  uint32_t PageCrc(const char* page) const;

  std::string path_;
  size_t page_size_;
  std::unique_ptr<RandomRWFile> file_;
  std::atomic<PageId> num_pages_;
  const bool checksum_pages_;
  std::mutex alloc_mu_;
};

}  // namespace instantdb

#endif  // INSTANTDB_STORAGE_DISK_MANAGER_H_
