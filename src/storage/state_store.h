#ifndef INSTANTDB_STORAGE_STATE_STORE_H_
#define INSTANTDB_STORAGE_STATE_STORE_H_

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_set>

#include "catalog/value.h"
#include "common/clock.h"
#include "common/options.h"
#include "common/result.h"
#include "storage/key_manager.h"
#include "storage/page.h"
#include "util/coding.h"
#include "util/file.h"

namespace instantdb {

class Env;

/// One degradable attribute value of one tuple, resident in a state store.
struct StoreEntry {
  RowId row_id = kInvalidRowId;
  /// Tuple insertion time; with the table-uniform LCP it determines every
  /// degradation deadline of this entry.
  Micros insert_time = 0;
  Value value;
};

/// \brief Append-only FIFO store for the subset ST of values of one
/// (degradable attribute, LCP phase) pair — the physical realization of the
/// paper's dataset partitioning into subsets ST_k (§II).
///
/// Why FIFO works: the paper's simplifying assumptions (time-triggered
/// transitions, one LCP per attribute applied uniformly to all tuples,
/// inserts only at full accuracy) mean values enter a phase in insertion
/// order and leave it in the same order. A degradation step therefore only
/// ever pops a prefix of this store and appends generalized values to the
/// next phase's store — strictly sequential I/O.
///
/// Durability/erasure: entries are framed into segment files of
/// `segment_bytes`. When the last live entry of a segment is gone the
/// segment is *securely erased*: zero-overwritten (EraseMode::kOverwrite)
/// or its per-segment key destroyed (EraseMode::kCryptoErase), then
/// unlinked. User deletes in the middle of a store are handled by
/// `SecureDeleteEntry`, which tombstones the frame and zeroes its payload
/// bytes in place. The live contents are mirrored in memory, sorted by row
/// id (the working set of a phase is bounded by arrival-rate × phase
/// duration); crash recovery rebuilds the mirror from the segments plus WAL
/// replay, which is idempotent because appends of a present row id are
/// ignored and pops of an absent one are no-ops.
class StateStore {
 public:
  /// `env` == nullptr uses Env::Default().
  StateStore(std::string dir, TableId table, int column, int phase,
             const StorageOptions& options, KeyManager* keys,
             Env* env = nullptr);
  ~StateStore();
  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// Loads segment files (and the checkpoint meta, if present) and rebuilds
  /// the in-memory mirror. Tolerates a torn tail frame after a crash.
  Status Open();

  bool empty() const { return live_.empty(); }
  size_t size() const { return live_.size(); }

  /// Entry with the smallest row id; store must be non-empty.
  const StoreEntry& Head() const { return live_.front().entry; }
  /// Largest row id ever appended, kInvalidRowId when nothing was.
  RowId LastAppendedRowId() const { return last_appended_row_id_; }

  /// Appends an entry. Row ids are normally increasing (FIFO), but
  /// transactions committing concurrently may apply slightly out of order:
  /// the live mirror is kept sorted by row id, so a late append lands in
  /// its FIFO position. An append whose row id is already present is
  /// ignored — this is what makes WAL replay idempotent (re-pops are
  /// handled by the degrade records that follow in log order).
  Status Append(const StoreEntry& entry);

  /// Removes the head entry; erases segments as they drain.
  Status PopHead(StoreEntry* out);

  /// Pops exactly one entry by row id; a no-op when absent (stale redo, or
  /// an entry that was never appended). Degradation steps pop precisely the
  /// entries they collected — a prefix pop "through row id X" would also
  /// destroy an out-of-order append that landed below X between a step's
  /// collect and apply phases.
  Status PopById(RowId row_id);

  /// Physically removes one entry anywhere in the store (user DELETE):
  /// tombstones the frame and zeroes its payload bytes on disk, so the
  /// value is cleaned from the data space immediately, not when the
  /// segment drains. NotFound if the row is not in this store.
  Status SecureDeleteEntry(RowId row_id);

  /// Binary search over the (row-id-sorted) live mirror; nullptr if absent.
  const StoreEntry* Find(RowId row_id) const;

  /// Batched Find: resolves `ids[0..n)` (which must be ascending) against
  /// the live mirror with ONE forward merge instead of n independent binary
  /// searches — the probe primitive of the pushdown scan's survivor pass.
  /// Sets out[j] for every id found whose slot is still nullptr (slots
  /// already set are skipped, so a caller probing a phase chain passes the
  /// same arrays through every phase's store and each row keeps its
  /// first — i.e. most accurate — hit). Returns the number of slots newly
  /// set.
  size_t FindMany(const RowId* ids, size_t n, const StoreEntry** out) const;

  /// In-order iteration; stops early when `fn` returns false.
  void ForEach(const std::function<bool(const StoreEntry&)>& fn) const;

  /// Earliest insert_time over the live entries (kForever when empty). The
  /// mirror is sorted by row id, and out-of-order commits mean the head's
  /// insert_time is not necessarily the minimum — WAL epoch-key destruction
  /// must use this exact bound.
  Micros MinInsertTime() const;

  /// fsync the tail segment + persist checkpoint meta (head position).
  /// No-op when nothing changed since the last checkpoint — the incremental
  /// checkpoint path calls this for every store of a dirty partition, and a
  /// clean store must not pay the two fsyncs (tail + META rename).
  Status Checkpoint();

  /// Securely erases every segment and removes the directory (table drop /
  /// full tuple removal path for the final phase).
  Status Drop();

  struct Stats {
    uint64_t entries_appended = 0;
    uint64_t entries_popped = 0;
    uint64_t entries_deleted = 0;
    uint64_t segments_created = 0;
    uint64_t segments_erased = 0;
    uint64_t bytes_appended = 0;
  };
  const Stats& stats() const { return stats_; }

  const std::string& dir() const { return dir_; }

 private:
  struct Segment {
    uint64_t seqno = 0;
    uint32_t entries = 0;   // frames written to the file (incl. tombstones)
    uint32_t popped = 0;    // frames drained from the head
    uint32_t deleted = 0;   // frames tombstoned by SecureDeleteEntry
    uint64_t bytes = 0;
    bool sealed = false;    // no further appends
    /// v2 segments (magic header) carry a per-frame CRC32C; legacy segments
    /// are headerless and CRC-less but stay readable.
    bool has_crc = false;
  };

  struct LiveEntry {
    StoreEntry entry;
    uint64_t seqno = 0;     // owning segment
    uint64_t offset = 0;    // frame offset in the segment file
    uint32_t len = 0;       // payload length
  };

  std::string SegmentPath(uint64_t seqno) const;
  std::string KeyId(uint64_t seqno) const;
  std::string MetaPath() const { return dir_ + "/META"; }

  /// Checkpoint-meta state driving which loaded frames count as popped.
  /// v2 metas carry the pop watermark + survivor ids; v1 (legacy,
  /// pre-partitioning) metas carry a positional frame count, valid because
  /// legacy files have strictly monotone row ids.
  struct MetaState {
    bool legacy = false;
    uint64_t legacy_head_seqno = 0;
    uint64_t legacy_head_popped = 0;  // frames left to skip in the head seg
    std::unordered_set<RowId> survivors;
  };

  /// Sorted insert position of `row_id` in the live mirror.
  std::deque<LiveEntry>::iterator LowerBound(RowId row_id);
  Status OpenTailWriter();
  Status SealTail();
  /// Writes the buffered tail frames through to the segment file. Appends
  /// buffer in user space (durability comes from the WAL until Checkpoint);
  /// every operation that reads or mutates segment bytes on disk — sealing,
  /// checkpoint, tombstoning — flushes first.
  Status FlushTail();
  /// Secure erase + unlink of a fully-dead segment.
  Status EraseSegment(const Segment& segment);
  /// Erases leading segments with no live frames left.
  Status CleanupDrainedSegments();
  Segment* FindSegment(uint64_t seqno);
  Status LoadSegment(Segment* segment, MetaState* meta);
  Status SaveMeta();

  const std::string dir_;
  const TableId table_;
  const int column_;
  const int phase_;
  const StorageOptions options_;
  KeyManager* const keys_;
  Env* const env_;

  std::deque<LiveEntry> live_;    // sorted by row id
  /// Multiset of live insert times: O(log n) maintenance, O(1) exact
  /// minimum for MinInsertTime on the degradation hot path.
  std::multiset<Micros> live_times_;
  std::deque<Segment> segments_;  // front = head (oldest)
  std::unique_ptr<WritableFile> tail_writer_;
  /// Frames appended but not yet written through (see FlushTail).
  std::string tail_pending_;
  uint64_t next_seqno_ = 0;
  RowId last_appended_row_id_ = kInvalidRowId;
  /// Set by every mutation Checkpoint would have to persist (appends, pops,
  /// tombstones); cleared once a checkpoint lands. Open() leaves it clear —
  /// the loaded state IS the on-disk state.
  bool dirty_ = false;
  /// Largest row id ever popped (0 = none). Persisted by Checkpoint along
  /// with the ids of live "survivors" at or below it (late out-of-order
  /// appends that were never popped), which together describe the popped
  /// set exactly; this replaces positional frame counts (frames inside a
  /// segment need not be in row-id order when transactions committed out
  /// of order).
  RowId pop_watermark_ = 0;
  Stats stats_;
};

}  // namespace instantdb

#endif  // INSTANTDB_STORAGE_STATE_STORE_H_
