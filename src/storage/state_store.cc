#include "storage/state_store.h"

#include <algorithm>
#include <vector>

#include "catalog/lcp.h"
#include "common/logging.h"
#include "common/strings.h"
#include "io/env.h"
#include "util/crc32c.h"

namespace instantdb {

namespace {

/// High bit of the frame length field marks a tombstoned (securely deleted)
/// frame whose payload bytes have been zeroed in place.
constexpr uint32_t kTombstoneBit = 0x80000000u;

/// Magic header opening a v2 segment file. v2 frames are
/// `[u32 len|tombstone][u32 masked crc32c of the on-disk payload][payload]`,
/// so a short write anywhere in the frame is detected as a torn tail instead
/// of decoding garbage. Headerless files are legacy v1 (`[u32 len][payload]`)
/// and load without CRC checks.
constexpr char kSegmentMagic[8] = {'I', 'D', 'B', 'S', 'S', 'G', '2', '\n'};

/// First varint of a v2 META. v1 (legacy) metas start with a segment seqno,
/// which is always far below this.
constexpr uint64_t kMetaV2Tag = UINT64_MAX;

void EncodeEntryPayload(const StoreEntry& entry, std::string* dst) {
  PutVarint64(dst, entry.row_id);
  PutVarint64(dst, static_cast<uint64_t>(entry.insert_time));
  entry.value.EncodeTo(dst);
}

bool DecodeEntryPayload(Slice payload, StoreEntry* out) {
  uint64_t row_id, insert_time;
  if (!GetVarint64(&payload, &row_id) || !GetVarint64(&payload, &insert_time)) {
    return false;
  }
  out->row_id = row_id;
  out->insert_time = static_cast<Micros>(insert_time);
  return Value::DecodeFrom(&payload, &out->value) && payload.empty();
}

}  // namespace

StateStore::StateStore(std::string dir, TableId table, int column, int phase,
                       const StorageOptions& options, KeyManager* keys,
                       Env* env)
    : dir_(std::move(dir)),
      table_(table),
      column_(column),
      phase_(phase),
      options_(options),
      keys_(keys),
      env_(env != nullptr ? env : Env::Default()) {}

StateStore::~StateStore() {
  if (tail_writer_ != nullptr) tail_writer_->Close().ok();
}

std::string StateStore::SegmentPath(uint64_t seqno) const {
  return dir_ + StringPrintf("/seg_%08llu.dat",
                             static_cast<unsigned long long>(seqno));
}

std::string StateStore::KeyId(uint64_t seqno) const {
  return StringPrintf("t%u.c%d.p%d.s%llu", table_, column_, phase_,
                      static_cast<unsigned long long>(seqno));
}

StateStore::Segment* StateStore::FindSegment(uint64_t seqno) {
  for (Segment& segment : segments_) {
    if (segment.seqno == seqno) return &segment;
  }
  return nullptr;
}

Status StateStore::Open() {
  IDB_RETURN_IF_ERROR(env_->CreateDirs(dir_));
  live_.clear();
  segments_.clear();
  tail_writer_.reset();
  last_appended_row_id_ = kInvalidRowId;
  pop_watermark_ = 0;

  // Checkpoint meta (optional). v2: pop watermark + survivor ids (live
  // entries at or below the watermark — late out-of-order appends that were
  // never popped) + seqno allocation. v1 (written before partitioning):
  // positional head-frame count — still valid for those files, whose frames
  // are strictly monotone.
  uint64_t meta_next_seqno = 0;
  MetaState meta_state;
  if (env_->FileExists(MetaPath())) {
    IDB_ASSIGN_OR_RETURN(std::string meta, env_->ReadFileToString(MetaPath()));
    Slice in = meta;
    uint64_t first = 0;
    bool valid = GetVarint64(&in, &first);
    if (valid && first == kMetaV2Tag) {
      uint64_t watermark = 0;
      uint64_t survivor_count = 0;
      valid = GetVarint64(&in, &watermark) &&
              GetVarint64(&in, &meta_next_seqno) &&
              GetVarint64(&in, &survivor_count);
      for (uint64_t i = 0; valid && i < survivor_count; ++i) {
        uint64_t id = 0;
        valid = GetVarint64(&in, &id);
        if (valid) meta_state.survivors.insert(id);
      }
      if (valid) pop_watermark_ = watermark;
    } else if (valid) {
      meta_state.legacy = true;
      meta_state.legacy_head_seqno = first;
      valid = GetVarint64(&in, &meta_state.legacy_head_popped) &&
              GetVarint64(&in, &meta_next_seqno);
    }
    if (!valid || !in.empty()) {
      return Status::Corruption("bad state-store meta: " + MetaPath());
    }
  }

  IDB_ASSIGN_OR_RETURN(auto names, env_->ListDir(dir_));
  std::vector<uint64_t> seqnos;
  for (const std::string& name : names) {
    if (StartsWith(name, "seg_") && EndsWith(name, ".dat")) {
      seqnos.push_back(std::strtoull(name.c_str() + 4, nullptr, 10));
    }
  }
  std::sort(seqnos.begin(), seqnos.end());

  for (uint64_t seqno : seqnos) {
    Segment segment;
    segment.seqno = seqno;
    IDB_RETURN_IF_ERROR(LoadSegment(&segment, &meta_state));
    if (segment.popped + segment.deleted >= segment.entries) {
      // Fully drained (or unreadable) segment that survived a crash between
      // erase and unlink: finish the job.
      IDB_RETURN_IF_ERROR(EraseSegment(segment));
      continue;
    }
    segment.sealed = true;  // reopened segments take no further appends
    segments_.push_back(segment);
  }
  // Frames inside a segment follow commit order, which may deviate from
  // row-id order when transactions committed concurrently: restore the
  // sorted mirror invariant.
  std::sort(live_.begin(), live_.end(),
            [](const LiveEntry& a, const LiveEntry& b) {
              return a.entry.row_id < b.entry.row_id;
            });
  live_times_.clear();
  for (const LiveEntry& live : live_) {
    live_times_.insert(live.entry.insert_time);
  }
  // Largest id ever appended: popped ids (covered by the watermark) count
  // too. Keeping this exact prevents the table from re-allocating a row id
  // whose value was already degraded out of this store.
  if (!live_.empty()) {
    last_appended_row_id_ = live_.back().entry.row_id;
  }
  if (pop_watermark_ > 0 && (last_appended_row_id_ == kInvalidRowId ||
                             pop_watermark_ > last_appended_row_id_)) {
    last_appended_row_id_ = pop_watermark_;
  }
  next_seqno_ =
      std::max(meta_next_seqno, seqnos.empty() ? 0 : seqnos.back() + 1);
  return Status::OK();
}

Status StateStore::LoadSegment(Segment* segment, MetaState* meta) {
  const std::string path = SegmentPath(segment->seqno);
  IDB_ASSIGN_OR_RETURN(std::string raw, env_->ReadFileToString(path));

  ChaCha20::Key key{};
  bool have_key = true;
  if (options_.erase_mode == EraseMode::kCryptoErase) {
    auto k = keys_->Get(KeyId(segment->seqno));
    if (!k.ok()) {
      // Key destroyed but file not yet unlinked: the data is already dead.
      have_key = false;
    } else {
      key = *k;
    }
  }
  if (!have_key) {
    segment->entries = 0;
    segment->popped = 0;
    segment->bytes = raw.size();
    return Status::OK();
  }

  segment->has_crc =
      raw.size() >= sizeof(kSegmentMagic) &&
      std::memcmp(raw.data(), kSegmentMagic, sizeof(kSegmentMagic)) == 0;
  // v2 frames carry a masked CRC of the on-disk payload between the length
  // field and the payload; the frame header is 8 bytes instead of 4.
  const uint64_t hdr = segment->has_crc ? 8 : 4;
  uint64_t off = segment->has_crc ? sizeof(kSegmentMagic) : 0;
  while (off + hdr <= raw.size()) {
    const uint32_t raw_len = DecodeFixed32(raw.data() + off);
    const bool tombstone = (raw_len & kTombstoneBit) != 0;
    const uint32_t len = raw_len & ~kTombstoneBit;
    if (len == 0 || off + hdr + len > raw.size()) break;  // torn/zeroed tail
    if (tombstone) {
      ++segment->entries;
      ++segment->deleted;
      off += hdr + len;
      continue;
    }
    if (segment->has_crc) {
      const uint32_t stored = DecodeFixed32(raw.data() + off + 4);
      if (crc32c::Unmask(stored) !=
          crc32c::Value(raw.data() + off + hdr, len)) {
        break;  // torn (short-written) tail frame
      }
    }
    std::string payload(raw.data() + off + hdr, len);
    if (options_.erase_mode == EraseMode::kCryptoErase) {
      ChaCha20::XorStreamAt(key, NonceForSequence(segment->seqno), off + hdr,
                            payload.data(), payload.size());
    }
    StoreEntry entry;
    if (!DecodeEntryPayload(payload, &entry)) break;  // torn tail
    ++segment->entries;
    bool popped_entry;
    if (meta->legacy) {
      // Positional skip: legacy files have monotone frames, so the head
      // segment's first N frames are exactly the popped prefix.
      if (segment->seqno < meta->legacy_head_seqno) {
        popped_entry = true;
      } else if (segment->seqno == meta->legacy_head_seqno &&
                 meta->legacy_head_popped > 0) {
        popped_entry = true;
        --meta->legacy_head_popped;
      } else {
        popped_entry = false;
      }
      if (popped_entry) {
        pop_watermark_ = std::max(pop_watermark_, entry.row_id);
      }
    } else {
      popped_entry = entry.row_id <= pop_watermark_ &&
                     meta->survivors.count(entry.row_id) == 0;
    }
    if (popped_entry) {
      ++segment->popped;  // degraded out of this store before the checkpoint
    } else {
      live_.push_back(LiveEntry{std::move(entry), segment->seqno, off, len});
    }
    off += hdr + len;
  }
  segment->bytes = off;
  if (off < raw.size()) {
    // Drop the torn tail so future scans never see garbage.
    IDB_RETURN_IF_ERROR(env_->TruncateFile(path, off));
  }
  return Status::OK();
}

Status StateStore::OpenTailWriter() {
  Segment segment;
  segment.seqno = next_seqno_++;
  if (options_.erase_mode == EraseMode::kCryptoErase) {
    IDB_RETURN_IF_ERROR(keys_->GetOrCreate(KeyId(segment.seqno)).status());
  }
  IDB_ASSIGN_OR_RETURN(tail_writer_,
                       env_->NewWritableFile(SegmentPath(segment.seqno)));
  // New segments are v2: magic header, then CRC-framed entries. The header
  // rides the buffered tail like any frame bytes.
  segment.has_crc = true;
  segment.bytes = sizeof(kSegmentMagic);
  tail_pending_.append(kSegmentMagic, sizeof(kSegmentMagic));
  segments_.push_back(segment);
  ++stats_.segments_created;
  return Status::OK();
}

Status StateStore::FlushTail() {
  if (tail_writer_ == nullptr || tail_pending_.empty()) return Status::OK();
  IDB_RETURN_IF_ERROR(tail_writer_->Append(tail_pending_));
  tail_pending_.clear();
  return Status::OK();
}

Status StateStore::SealTail() {
  if (tail_writer_ != nullptr) {
    IDB_RETURN_IF_ERROR(FlushTail());
    IDB_RETURN_IF_ERROR(tail_writer_->Close());
    tail_writer_.reset();
  }
  if (!segments_.empty()) segments_.back().sealed = true;
  return Status::OK();
}

std::deque<StateStore::LiveEntry>::iterator StateStore::LowerBound(
    RowId row_id) {
  return std::lower_bound(
      live_.begin(), live_.end(), row_id,
      [](const LiveEntry& e, RowId id) { return e.entry.row_id < id; });
}

Status StateStore::Append(const StoreEntry& entry) {
  auto pos = LowerBound(entry.row_id);
  if (pos != live_.end() && pos->entry.row_id == entry.row_id) {
    return Status::OK();  // idempotent WAL redo
  }
  // No pop-watermark gate: an absent id is always a first-time append. A
  // replayed insert whose value was popped before the checkpoint is never
  // seen here (its record predates the replay-start LSN, which the
  // transaction manager's commit barrier keeps behind every applied
  // record); a replayed insert popped *after* the checkpoint is re-appended
  // and the degrade record that popped it replays later in log order.
  if (tail_writer_ == nullptr || segments_.empty() || segments_.back().sealed) {
    IDB_RETURN_IF_ERROR(OpenTailWriter());
  } else if (segments_.back().bytes >= options_.segment_bytes) {
    IDB_RETURN_IF_ERROR(SealTail());
    IDB_RETURN_IF_ERROR(OpenTailWriter());
  }
  Segment& tail = segments_.back();

  std::string payload;
  EncodeEntryPayload(entry, &payload);
  if (options_.erase_mode == EraseMode::kCryptoErase) {
    IDB_ASSIGN_OR_RETURN(ChaCha20::Key key,
                         keys_->GetOrCreate(KeyId(tail.seqno)));
    // Stream offset = the payload's file offset (after the 8-byte v2 frame
    // header), keeping (key, nonce, offset) unique per on-disk byte.
    ChaCha20::XorStreamAt(key, NonceForSequence(tail.seqno), tail.bytes + 8,
                          payload.data(), payload.size());
  }
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  // CRC over the on-disk (possibly ciphered) payload: verification at load
  // happens before decryption, so a torn frame never reaches the decoder.
  PutFixed32(&frame,
             crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  frame += payload;
  // Buffered append: one write() per ~8KB of frames instead of one per
  // entry keeps the syscall off the ingest hot path. The WAL carries
  // durability until Checkpoint writes the buffer through.
  tail_pending_ += frame;
  if (tail_pending_.size() >= 8192) {
    IDB_RETURN_IF_ERROR(FlushTail());
  }
  // Re-resolve the position: OpenTailWriter/SealTail do not touch live_,
  // but keeping the lookup next to the insert guards future edits.
  pos = LowerBound(entry.row_id);
  live_.insert(pos, LiveEntry{entry, tail.seqno, tail.bytes,
                              static_cast<uint32_t>(payload.size())});
  live_times_.insert(entry.insert_time);
  tail.bytes += frame.size();
  ++tail.entries;
  if (last_appended_row_id_ == kInvalidRowId ||
      entry.row_id > last_appended_row_id_) {
    last_appended_row_id_ = entry.row_id;
  }
  ++stats_.entries_appended;
  stats_.bytes_appended += frame.size();
  dirty_ = true;
  return Status::OK();
}

Status StateStore::EraseSegment(const Segment& segment) {
  const std::string path = SegmentPath(segment.seqno);
  if (options_.erase_mode == EraseMode::kCryptoErase) {
    IDB_RETURN_IF_ERROR(keys_->Destroy(KeyId(segment.seqno)));
  } else {
    if (env_->FileExists(path)) {
      auto size = env_->GetFileSize(path);
      if (size.ok() && *size > 0) {
        IDB_RETURN_IF_ERROR(env_->OverwriteRange(path, 0, *size));
      }
    }
  }
  if (env_->FileExists(path)) {
    IDB_RETURN_IF_ERROR(env_->RemoveFile(path));
  }
  ++stats_.segments_erased;
  return Status::OK();
}

Status StateStore::CleanupDrainedSegments() {
  while (!segments_.empty()) {
    Segment& front = segments_.front();
    if (front.popped + front.deleted < front.entries) break;
    if (!front.sealed) {
      // Fully drained open tail: seal it so the next append starts fresh.
      IDB_RETURN_IF_ERROR(SealTail());
    }
    Segment drained = segments_.front();
    segments_.pop_front();
    IDB_RETURN_IF_ERROR(EraseSegment(drained));
  }
  return Status::OK();
}

Status StateStore::PopHead(StoreEntry* out) {
  if (live_.empty()) return Status::NotFound("state store empty");
  const LiveEntry& head = live_.front();
  if (out != nullptr) *out = head.entry;
  Segment* segment = FindSegment(head.seqno);
  if (segment != nullptr) ++segment->popped;
  pop_watermark_ = std::max(pop_watermark_, head.entry.row_id);
  live_times_.erase(live_times_.find(head.entry.insert_time));
  live_.pop_front();
  ++stats_.entries_popped;
  dirty_ = true;
  return CleanupDrainedSegments();
}

Status StateStore::PopById(RowId row_id) {
  auto it = LowerBound(row_id);
  if (it == live_.end() || it->entry.row_id != row_id) {
    return Status::OK();  // stale redo / never appended
  }
  Segment* segment = FindSegment(it->seqno);
  if (segment != nullptr) ++segment->popped;
  pop_watermark_ = std::max(pop_watermark_, row_id);
  live_times_.erase(live_times_.find(it->entry.insert_time));
  live_.erase(it);
  ++stats_.entries_popped;
  dirty_ = true;
  return CleanupDrainedSegments();
}

Status StateStore::SecureDeleteEntry(RowId row_id) {
  auto it = std::lower_bound(
      live_.begin(), live_.end(), row_id,
      [](const LiveEntry& e, RowId id) { return e.entry.row_id < id; });
  if (it == live_.end() || it->entry.row_id != row_id) {
    return Status::NotFound("row not in this store");
  }
  // Tombstone the frame on disk: set the tombstone bit in the length field
  // and zero the payload bytes so the (plain or cipher) value is physically
  // cleaned right now. The buffered tail must be on disk first, or the
  // flush would resurrect the payload after this pass zeroed its range.
  IDB_RETURN_IF_ERROR(FlushTail());
  Segment* segment = FindSegment(it->seqno);
  const uint64_t hdr = (segment == nullptr || segment->has_crc) ? 8 : 4;
  const std::string path = SegmentPath(it->seqno);
  if (env_->FileExists(path)) {
    IDB_ASSIGN_OR_RETURN(auto file, env_->NewRandomRWFile(path));
    std::string len_field;
    PutFixed32(&len_field, it->len | kTombstoneBit);
    IDB_RETURN_IF_ERROR(file->Write(it->offset, len_field));
    // Zero the CRC word (v2) along with the payload bytes.
    const std::string zeros(hdr - 4 + it->len, '\0');
    IDB_RETURN_IF_ERROR(file->Write(it->offset + 4, zeros));
    IDB_RETURN_IF_ERROR(file->Sync());
  }
  if (segment != nullptr) ++segment->deleted;
  live_times_.erase(live_times_.find(it->entry.insert_time));
  live_.erase(it);
  ++stats_.entries_deleted;
  dirty_ = true;
  return CleanupDrainedSegments();
}

const StoreEntry* StateStore::Find(RowId row_id) const {
  auto it = std::lower_bound(
      live_.begin(), live_.end(), row_id,
      [](const LiveEntry& e, RowId id) { return e.entry.row_id < id; });
  if (it == live_.end() || it->entry.row_id != row_id) return nullptr;
  return &it->entry;
}

size_t StateStore::FindMany(const RowId* ids, size_t n,
                            const StoreEntry** out) const {
  size_t found = 0;
  auto it = live_.begin();
  for (size_t j = 0; j < n; ++j) {
    if (out[j] != nullptr) continue;
    // Ascending ids: resume the search where the previous id left it, so
    // the whole batch costs one pass over the overlapping range.
    it = std::lower_bound(it, live_.end(), ids[j],
                          [](const LiveEntry& e, RowId id) {
                            return e.entry.row_id < id;
                          });
    if (it == live_.end()) break;  // every later id is larger still
    if (it->entry.row_id == ids[j]) {
      out[j] = &it->entry;
      ++found;
    }
  }
  return found;
}

void StateStore::ForEach(
    const std::function<bool(const StoreEntry&)>& fn) const {
  for (const LiveEntry& live : live_) {
    if (!fn(live.entry)) return;
  }
}

Micros StateStore::MinInsertTime() const {
  return live_times_.empty() ? kForever : *live_times_.begin();
}

Status StateStore::Checkpoint() {
  if (!dirty_) return Status::OK();  // on-disk meta already matches memory
  if (tail_writer_ != nullptr) {
    IDB_RETURN_IF_ERROR(FlushTail());
    IDB_RETURN_IF_ERROR(tail_writer_->Flush());
    IDB_RETURN_IF_ERROR(tail_writer_->Sync());
  }
  IDB_RETURN_IF_ERROR(SaveMeta());
  dirty_ = false;
  return Status::OK();
}

Status StateStore::SaveMeta() {
  std::string meta;
  PutVarint64(&meta, kMetaV2Tag);
  PutVarint64(&meta, pop_watermark_);
  PutVarint64(&meta, next_seqno_);
  // Survivors: live entries at or below the watermark (late out-of-order
  // appends the prefix pops skipped). Normally none; bounded by commit skew.
  std::vector<RowId> survivors;
  for (const LiveEntry& live : live_) {
    if (live.entry.row_id > pop_watermark_) break;  // sorted mirror
    survivors.push_back(live.entry.row_id);
  }
  PutVarint64(&meta, survivors.size());
  for (RowId id : survivors) PutVarint64(&meta, id);
  const std::string tmp = MetaPath() + ".tmp";
  IDB_RETURN_IF_ERROR(env_->WriteStringToFile(tmp, meta, /*sync=*/true));
  return env_->RenameFile(tmp, MetaPath());
}

Status StateStore::Drop() {
  IDB_RETURN_IF_ERROR(SealTail());
  while (!segments_.empty()) {
    Segment segment = segments_.front();
    segments_.pop_front();
    IDB_RETURN_IF_ERROR(EraseSegment(segment));
  }
  live_.clear();
  live_times_.clear();
  return env_->RemoveDirRecursive(dir_);
}

}  // namespace instantdb
