#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace instantdb {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::MarkDirty() {
  assert(valid());
  pool_->MarkDirtyFrame(frame_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk),
      capacity_(capacity == 0 ? 1 : capacity),
      page_size_(disk->page_size()),
      frames_(capacity_),
      memory_(new char[capacity_ * disk->page_size()]) {}

BufferPool::~BufferPool() { FlushAll().ok(); }

void BufferPool::TouchLocked(size_t frame) {
  auto it = lru_pos_.find(frame);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(frame);
  lru_pos_[frame] = lru_.begin();
}

Result<size_t> BufferPool::GetFreeFrameLocked() {
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].valid) return i;
  }
  // Evict the least-recently-used unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const size_t frame = *it;
    if (frames_[frame].pins > 0) continue;
    Frame& victim = frames_[frame];
    if (victim.dirty) {
      IDB_RETURN_IF_ERROR(
          disk_->WritePage(victim.page, memory_.get() + frame * page_size_));
      ++stats_.dirty_writebacks;
    }
    table_.erase(victim.page);
    lru_.erase(lru_pos_[frame]);
    lru_pos_.erase(frame);
    victim = Frame{};
    ++stats_.evictions;
    return frame;
  }
  return Status::Busy("buffer pool exhausted: all frames pinned");
}

Result<PageGuard> BufferPool::PinExistingLocked(size_t frame) {
  Frame& f = frames_[frame];
  ++f.pins;
  TouchLocked(frame);
  return PageGuard(this, f.page, frame, memory_.get() + frame * page_size_);
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(id);
  if (it != table_.end()) {
    ++stats_.hits;
    return PinExistingLocked(it->second);
  }
  ++stats_.misses;
  IDB_ASSIGN_OR_RETURN(size_t frame, GetFreeFrameLocked());
  IDB_RETURN_IF_ERROR(disk_->ReadPage(id, memory_.get() + frame * page_size_));
  frames_[frame] = Frame{id, 0, false, true};
  table_[id] = frame;
  return PinExistingLocked(frame);
}

Result<PageGuard> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mu_);
  IDB_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  IDB_ASSIGN_OR_RETURN(size_t frame, GetFreeFrameLocked());
  std::memset(memory_.get() + frame * page_size_, 0, page_size_);
  frames_[frame] = Frame{id, 0, false, true};
  table_[id] = frame;
  return PinExistingLocked(frame);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.valid && f.dirty) {
      IDB_RETURN_IF_ERROR(
          disk_->WritePage(f.page, memory_.get() + i * page_size_));
      f.dirty = false;
    }
  }
  return disk_->Sync();
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(frames_[frame].pins > 0);
  --frames_[frame].pins;
}

void BufferPool::MarkDirtyFrame(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_[frame].dirty = true;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace instantdb
