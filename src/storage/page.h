#ifndef INSTANTDB_STORAGE_PAGE_H_
#define INSTANTDB_STORAGE_PAGE_H_

#include <cstdint>

namespace instantdb {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// Dense table identifier assigned by the catalog; storage paths and WAL
/// records are keyed by it.
using TableId = uint32_t;

/// Engine-assigned, monotonically increasing tuple identifier. Row ids are
/// the join key between the stable heap record and the per-attribute state
/// stores, and they are what the paper's "keeping the identity of the donor
/// intact" refers to at the physical level.
using RowId = uint64_t;
inline constexpr RowId kInvalidRowId = UINT64_MAX;

/// Physical record locator inside a heap file.
struct Rid {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page != kInvalidPageId; }
  bool operator==(const Rid& other) const {
    return page == other.page && slot == other.slot;
  }
};

}  // namespace instantdb

#endif  // INSTANTDB_STORAGE_PAGE_H_
