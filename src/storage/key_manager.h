#ifndef INSTANTDB_STORAGE_KEY_MANAGER_H_
#define INSTANTDB_STORAGE_KEY_MANAGER_H_

#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "util/chacha20.h"

namespace instantdb {

/// \brief Keystore backing crypto-erasure (EraseMode::kCryptoErase and
/// WalPrivacyMode::kEncryptedEpoch).
///
/// Every state-store segment and WAL epoch encrypts its payloads under a
/// key identified by a string id. *Destroying* the key is the erase
/// operation: all at-rest copies of the ciphertext become unreadable at
/// once, which is how degradation reaches index pages, log archives and
/// file-system slack that physical overwrite cannot reach (paper §III).
///
/// Substitution note (DESIGN.md §2): a production system would hold this
/// table in tamper-resistant storage (TPM/enclave/SED). Here the keystore
/// is a file that is rewritten without the destroyed key and the previous
/// image is zero-overwritten before being unlinked.
class Env;

class KeyManager {
 public:
  /// `env` == nullptr uses Env::Default().
  explicit KeyManager(std::string path, Env* env = nullptr);

  /// Loads the keystore if it exists.
  Status Open();

  /// Returns the key for `key_id`, minting (and persisting) a fresh random
  /// key on first use. A destroyed id may be reused for *new* data — the
  /// old ciphertext remains unreadable because the old key bytes are gone.
  Result<ChaCha20::Key> GetOrCreate(const std::string& key_id);

  /// Key lookup without minting; NotFound if absent or destroyed.
  Result<ChaCha20::Key> Get(const std::string& key_id) const;

  /// Irreversibly forgets the key: removes it from the in-memory table,
  /// rewrites the keystore without it, and scrubs the old file image.
  Status Destroy(const std::string& key_id);

  bool IsDestroyed(const std::string& key_id) const;

  /// Calls `fn` with every live (present, not destroyed) key id starting
  /// with `prefix`, in id order. The deletion-assurance audit uses this to
  /// count epoch keys that outlived their destruction deadline — bounded by
  /// the live key count, not by elapsed epochs.
  void ForEachLiveKeyId(const std::string& prefix,
                        const std::function<void(const std::string&)>& fn) const;

  size_t live_keys() const;
  uint64_t keys_destroyed() const;

 private:
  Status PersistLocked();

  const std::string path_;
  Env* const env_;
  mutable std::mutex mu_;
  std::map<std::string, ChaCha20::Key> keys_;
  std::set<std::string> destroyed_;
  Random rng_;
  uint64_t keys_destroyed_ = 0;
};

/// Deterministic nonce for a segment/epoch sequence number: segments are
/// never rewritten under the same key, so (key, seqno) pairs are unique.
ChaCha20::Nonce NonceForSequence(uint64_t seqno);

/// Nonce for a WAL stream's record at stream-local byte offset `offset`.
/// Epoch keys are shared across the streams of a sharded log and offsets
/// restart per stream, so the stream id must enter the nonce to keep
/// (key, nonce) pairs unique. Stream 0 equals NonceForSequence(offset),
/// which keeps single-stream logs written before sharding decryptable.
ChaCha20::Nonce NonceForStreamOffset(uint32_t stream, uint64_t offset);

}  // namespace instantdb

#endif  // INSTANTDB_STORAGE_KEY_MANAGER_H_
