#ifndef INSTANTDB_STORAGE_RECORD_H_
#define INSTANTDB_STORAGE_RECORD_H_

#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/clock.h"
#include "common/options.h"
#include "common/result.h"
#include "storage/page.h"

namespace instantdb {

/// Degradable attribute image stored inline in the heap record under
/// DegradableLayout::kInPlace. `phase == lcp.num_phases()` means removed.
struct InlineDegradable {
  int32_t phase = 0;
  Value value;

  bool operator==(const InlineDegradable& other) const {
    return phase == other.phase && value == other.value;
  }
};

/// \brief Decoded heap record.
///
/// Under kStateStores the heap holds only the stable part plus the
/// insertion timestamp (which fixes the whole degradation schedule); the
/// degradable values live in the per-(attribute, phase) state stores. Under
/// kInPlace the degradable images ride along inline.
struct HeapTuple {
  RowId row_id = kInvalidRowId;
  Micros insert_time = 0;
  /// Aligned with Schema::stable_columns().
  std::vector<Value> stable;
  /// Aligned with Schema::degradable_columns(); used by kInPlace only.
  std::vector<InlineDegradable> degradable;
};

void EncodeHeapTuple(const Schema& schema, DegradableLayout layout,
                     const HeapTuple& tuple, std::string* dst);

Status DecodeHeapTuple(const Schema& schema, DegradableLayout layout,
                       Slice input, HeapTuple* out);

}  // namespace instantdb

#endif  // INSTANTDB_STORAGE_RECORD_H_
