#include "storage/record.h"

namespace instantdb {

void EncodeHeapTuple(const Schema& /*schema*/, DegradableLayout layout,
                     const HeapTuple& tuple, std::string* dst) {
  PutVarint64(dst, tuple.row_id);
  PutVarint64(dst, static_cast<uint64_t>(tuple.insert_time));
  for (const Value& v : tuple.stable) v.EncodeTo(dst);
  if (layout == DegradableLayout::kInPlace) {
    for (const InlineDegradable& d : tuple.degradable) {
      PutVarint32(dst, static_cast<uint32_t>(d.phase));
      d.value.EncodeTo(dst);
    }
  }
}

Status DecodeHeapTuple(const Schema& schema, DegradableLayout layout,
                       Slice input, HeapTuple* out) {
  uint64_t row_id, insert_time;
  if (!GetVarint64(&input, &row_id) || !GetVarint64(&input, &insert_time)) {
    return Status::Corruption("bad heap tuple header");
  }
  out->row_id = row_id;
  out->insert_time = static_cast<Micros>(insert_time);
  out->stable.resize(schema.stable_columns().size());
  for (Value& v : out->stable) {
    if (!Value::DecodeFrom(&input, &v)) {
      return Status::Corruption("bad stable value");
    }
  }
  out->degradable.clear();
  if (layout == DegradableLayout::kInPlace) {
    out->degradable.resize(schema.degradable_columns().size());
    for (InlineDegradable& d : out->degradable) {
      uint32_t phase;
      if (!GetVarint32(&input, &phase) ||
          !Value::DecodeFrom(&input, &d.value)) {
        return Status::Corruption("bad inline degradable value");
      }
      d.phase = static_cast<int32_t>(phase);
    }
  }
  if (!input.empty()) return Status::Corruption("trailing bytes in tuple");
  return Status::OK();
}

}  // namespace instantdb
