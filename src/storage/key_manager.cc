#include "storage/key_manager.h"

#include <random>

#include "util/coding.h"
#include "util/crc32c.h"
#include "io/env.h"

namespace instantdb {

namespace {

uint64_t SeedFromSystem() {
  std::random_device rd;
  return (static_cast<uint64_t>(rd()) << 32) ^ rd();
}

}  // namespace

ChaCha20::Nonce NonceForSequence(uint64_t seqno) {
  ChaCha20::Nonce nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[i] = static_cast<uint8_t>(seqno >> (8 * i));
  }
  return nonce;
}

ChaCha20::Nonce NonceForStreamOffset(uint32_t stream, uint64_t offset) {
  ChaCha20::Nonce nonce = NonceForSequence(offset);
  for (int i = 0; i < 4; ++i) {
    nonce[8 + i] = static_cast<uint8_t>(stream >> (8 * i));
  }
  return nonce;
}

KeyManager::KeyManager(std::string path, Env* env)
    : path_(std::move(path)),
      env_(env != nullptr ? env : Env::Default()),
      rng_(SeedFromSystem()) {}

Status KeyManager::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  keys_.clear();
  destroyed_.clear();
  if (!env_->FileExists(path_)) return Status::OK();
  IDB_ASSIGN_OR_RETURN(std::string contents, env_->ReadFileToString(path_));
  Slice input = contents;
  uint32_t masked;
  if (!GetFixed32(&input, &masked) ||
      crc32c::Unmask(masked) != crc32c::Value(input.data(), input.size())) {
    return Status::Corruption("keystore checksum mismatch: " + path_);
  }
  uint32_t live, dead;
  if (!GetVarint32(&input, &live) || !GetVarint32(&input, &dead)) {
    return Status::Corruption("bad keystore header");
  }
  for (uint32_t i = 0; i < live; ++i) {
    Slice id;
    if (!GetLengthPrefixed(&input, &id) ||
        input.size() < ChaCha20::kKeyBytes) {
      return Status::Corruption("bad keystore entry");
    }
    ChaCha20::Key key;
    std::memcpy(key.data(), input.data(), ChaCha20::kKeyBytes);
    input.remove_prefix(ChaCha20::kKeyBytes);
    keys_[std::string(id)] = key;
  }
  for (uint32_t i = 0; i < dead; ++i) {
    Slice id;
    if (!GetLengthPrefixed(&input, &id)) {
      return Status::Corruption("bad keystore tombstone");
    }
    destroyed_.insert(std::string(id));
  }
  return Status::OK();
}

Status KeyManager::PersistLocked() {
  std::string body;
  PutVarint32(&body, static_cast<uint32_t>(keys_.size()));
  PutVarint32(&body, static_cast<uint32_t>(destroyed_.size()));
  for (const auto& [id, key] : keys_) {
    PutLengthPrefixed(&body, id);
    body.append(reinterpret_cast<const char*>(key.data()), key.size());
  }
  for (const auto& id : destroyed_) PutLengthPrefixed(&body, id);
  std::string file;
  PutFixed32(&file, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  file += body;

  const std::string tmp = path_ + ".new";
  IDB_RETURN_IF_ERROR(env_->WriteStringToFile(tmp, file, /*sync=*/true));
  // Scrub the previous image before it is replaced so old key bytes do not
  // linger in the superseded file's blocks.
  if (env_->FileExists(path_)) {
    auto old_size = env_->GetFileSize(path_);
    if (old_size.ok()) {
      IDB_RETURN_IF_ERROR(env_->OverwriteRange(path_, 0, *old_size));
    }
  }
  return env_->RenameFile(tmp, path_);
}

Result<ChaCha20::Key> KeyManager::GetOrCreate(const std::string& key_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key_id);
  if (it != keys_.end()) return it->second;
  ChaCha20::Key key;
  for (size_t i = 0; i < key.size(); i += 8) {
    const uint64_t r = rng_.NextU64();
    std::memcpy(key.data() + i, &r, 8);
  }
  keys_[key_id] = key;
  destroyed_.erase(key_id);  // id reuse covers only new data
  IDB_RETURN_IF_ERROR(PersistLocked());
  return key;
}

Result<ChaCha20::Key> KeyManager::Get(const std::string& key_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key_id);
  if (it == keys_.end()) {
    return Status::NotFound("key absent or destroyed: " + key_id);
  }
  return it->second;
}

Status KeyManager::Destroy(const std::string& key_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key_id);
  if (it == keys_.end()) {
    destroyed_.insert(key_id);
    return Status::OK();
  }
  // Zero the in-memory copy before dropping it.
  it->second.fill(0);
  keys_.erase(it);
  destroyed_.insert(key_id);
  ++keys_destroyed_;
  return PersistLocked();
}

bool KeyManager::IsDestroyed(const std::string& key_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return destroyed_.count(key_id) != 0;
}

void KeyManager::ForEachLiveKeyId(
    const std::string& prefix,
    const std::function<void(const std::string&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = keys_.lower_bound(prefix);
       it != keys_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    fn(it->first);
  }
}

size_t KeyManager::live_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.size();
}

uint64_t KeyManager::keys_destroyed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_destroyed_;
}

}  // namespace instantdb
