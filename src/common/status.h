#ifndef INSTANTDB_COMMON_STATUS_H_
#define INSTANTDB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace instantdb {

/// \brief Operation outcome for every fallible library call.
///
/// InstantDB never throws on library paths (RocksDB/LevelDB idiom): every
/// operation that can fail returns a `Status` (or a `Result<T>`, see
/// common/result.h). A default-constructed Status is OK.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
    /// Transaction was aborted (deadlock-avoidance wound or explicit abort).
    kAborted = 7,
    /// The data demanded by the query has degraded past the requested
    /// accuracy level and is no longer computable.
    kExpired = 8,
    /// Admission control shed the request: the service's per-class queue is
    /// full or a backpressure signal asked for load to be dropped. Retry
    /// later (ideally with jittered backoff) — nothing was executed.
    kOverloaded = 9,
    /// A statement deadline expired (queued or mid-execution). Partial-safe:
    /// the statement's effects, if any, are those of a normally-failed
    /// statement — scans stop at batch granularity and release their
    /// workers.
    kTimeout = 10,
    /// The database is closing: queued-but-unadmitted statements drain with
    /// this instead of executing (Database::Close must never hang behind a
    /// full admission queue).
    kShutdown = 11,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = {}) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg = {}) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg = {}) {
    return Status(Code::kNotSupported, msg);
  }
  static Status InvalidArgument(std::string_view msg = {}) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg = {}) {
    return Status(Code::kIOError, msg);
  }
  static Status Busy(std::string_view msg = {}) {
    return Status(Code::kBusy, msg);
  }
  static Status Aborted(std::string_view msg = {}) {
    return Status(Code::kAborted, msg);
  }
  static Status Expired(std::string_view msg = {}) {
    return Status(Code::kExpired, msg);
  }
  static Status Overloaded(std::string_view msg = {}) {
    return Status(Code::kOverloaded, msg);
  }
  static Status Timeout(std::string_view msg = {}) {
    return Status(Code::kTimeout, msg);
  }
  static Status Shutdown(std::string_view msg = {}) {
    return Status(Code::kShutdown, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsExpired() const { return code_ == Code::kExpired; }
  bool IsOverloaded() const { return code_ == Code::kOverloaded; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsShutdown() const { return code_ == Code::kShutdown; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering for logs and error reports.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string_view msg)
      : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Early-return helper: propagates a non-OK Status to the caller.
#define IDB_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::instantdb::Status _idb_st = (expr);        \
    if (!_idb_st.ok()) return _idb_st;           \
  } while (false)

}  // namespace instantdb

#endif  // INSTANTDB_COMMON_STATUS_H_
