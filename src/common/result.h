#ifndef INSTANTDB_COMMON_RESULT_H_
#define INSTANTDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace instantdb {

/// \brief Either a value of type `T` or a non-OK `Status`.
///
/// The value accessors assert on misuse; callers must check `ok()` (or use
/// the IDB_ASSIGN_OR_RETURN macro) before dereferencing.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a `Result<T>` expression to `lhs`, or early-returns
/// the error status. `lhs` may be a declaration (`auto x`) or an lvalue.
#define IDB_ASSIGN_OR_RETURN(lhs, expr)                  \
  IDB_ASSIGN_OR_RETURN_IMPL_(                            \
      IDB_RESULT_CONCAT_(_idb_result, __LINE__), lhs, expr)

#define IDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define IDB_RESULT_CONCAT_(a, b) IDB_RESULT_CONCAT_IMPL_(a, b)
#define IDB_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace instantdb

#endif  // INSTANTDB_COMMON_RESULT_H_
