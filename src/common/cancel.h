#ifndef INSTANTDB_COMMON_CANCEL_H_
#define INSTANTDB_COMMON_CANCEL_H_

#include <atomic>

#include "common/clock.h"
#include "common/status.h"

namespace instantdb {

/// \brief Per-statement cooperative cancellation flag.
///
/// Generalizes the atomic the streaming cursor already polled on Close into
/// a first-class handle any owner (the service front end, an embedder's
/// request handler, a test) can trip from another thread. The scan paths
/// poll it at morsel-claim and batch granularity — the same points they
/// check the statement deadline — so a cancelled statement stops within one
/// batch without ever interrupting a partition latch mid-hold.
///
/// Lifetime: the token must outlive every statement it is wired into
/// (ScanOptions::cancel is a raw pointer). Reset() lets a caller reuse one
/// token across sequential statements; never reset while a statement using
/// it is still running.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The per-batch statement-budget probe shared by every scan path: Aborted
/// when the statement's CancelToken tripped, Timeout when its absolute
/// deadline (0 = none) passed on `clock`, OK otherwise. Cancellation is
/// checked first — a cancelled statement should report the cancel even when
/// its deadline also lapsed while it was parked.
inline Status CheckStatementBudget(const Clock* clock, Micros deadline,
                                   const CancelToken* cancel) {
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Aborted("statement cancelled");
  }
  if (deadline != 0 && clock != nullptr && clock->NowMicros() >= deadline) {
    return Status::Timeout("statement deadline exceeded");
  }
  return Status::OK();
}

}  // namespace instantdb

#endif  // INSTANTDB_COMMON_CANCEL_H_
