#ifndef INSTANTDB_COMMON_STRINGS_H_
#define INSTANTDB_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace instantdb {

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty tokens.
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII case-insensitive equality (used by the SQL lexer for keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// ASCII upper-casing (SQL keywords are case-insensitive).
std::string ToUpper(std::string_view s);

/// True if `s` starts with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace instantdb

#endif  // INSTANTDB_COMMON_STRINGS_H_
