#include "common/clock.h"

#include <cassert>
#include <chrono>

namespace instantdb {

namespace {

Micros SteadyNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SystemClock::SystemClock() : epoch_(SteadyNow()) {}

Micros SystemClock::NowMicros() const { return SteadyNow() - epoch_; }

Micros SystemClock::WaitUntil(Micros deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  const Micros now = NowMicros();
  if (now >= deadline) return now;
  cv_.wait_for(lock, std::chrono::microseconds(deadline - now));
  return NowMicros();
}

void SystemClock::WakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  cv_.notify_all();
}

Micros VirtualClock::WaitUntil(Micros deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  // Virtual time only moves when Advance* is called, so wait for either the
  // deadline to be reached or an explicit wake.
  cv_.wait(lock, [&] { return NowMicros() >= deadline || woken_; });
  woken_ = false;
  return NowMicros();
}

void VirtualClock::WakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  woken_ = true;
  cv_.notify_all();
}

void VirtualClock::Advance(Micros delta) {
  assert(delta >= 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  cv_.notify_all();
}

void VirtualClock::AdvanceTo(Micros t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Micros cur = now_.load(std::memory_order_acquire);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
    }
  }
  cv_.notify_all();
}

}  // namespace instantdb
