#include "common/clock.h"

#include <cassert>
#include <chrono>

namespace instantdb {

namespace {

Micros SteadyNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SystemClock::SystemClock() : epoch_(SteadyNow()) {}

Micros SystemClock::NowMicros() const { return SteadyNow() - epoch_; }

uint64_t SystemClock::WakeToken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wake_gen_;
}

Micros SystemClock::WaitUntil(Micros deadline, uint64_t token) {
  std::unique_lock<std::mutex> lock(mu_);
  const Micros now = NowMicros();
  if (now >= deadline || wake_gen_ != token) return now;
  cv_.wait_for(lock, std::chrono::microseconds(deadline - now),
               [&] { return wake_gen_ != token; });
  return NowMicros();
}

void SystemClock::WakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  ++wake_gen_;
  cv_.notify_all();
}

uint64_t VirtualClock::WakeToken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wake_gen_;
}

Micros VirtualClock::WaitUntil(Micros deadline, uint64_t token) {
  std::unique_lock<std::mutex> lock(mu_);
  // Virtual time only moves when Advance* is called, so wait for either the
  // deadline to be reached or a wake issued after `token` was captured.
  cv_.wait(lock,
           [&] { return NowMicros() >= deadline || wake_gen_ != token; });
  return NowMicros();
}

void VirtualClock::WakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  ++wake_gen_;
  cv_.notify_all();
}

void VirtualClock::Advance(Micros delta) {
  assert(delta >= 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  cv_.notify_all();
}

void VirtualClock::AdvanceTo(Micros t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Micros cur = now_.load(std::memory_order_acquire);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
    }
  }
  cv_.notify_all();
}

}  // namespace instantdb
