#ifndef INSTANTDB_COMMON_LOGGING_H_
#define INSTANTDB_COMMON_LOGGING_H_

#include <atomic>
#include <string>

#include "common/strings.h"

namespace instantdb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Defaults to kWarn
/// so tests and benchmarks stay quiet unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one line to stderr: "[LEVEL file:line] message".
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

#define IDB_LOG(level, ...)                                              \
  do {                                                                   \
    if (static_cast<int>(level) >=                                       \
        static_cast<int>(::instantdb::GetLogLevel())) {                  \
      ::instantdb::LogMessage(level, __FILE__, __LINE__,                 \
                              ::instantdb::StringPrintf(__VA_ARGS__));   \
    }                                                                    \
  } while (false)

#define IDB_DEBUG(...) IDB_LOG(::instantdb::LogLevel::kDebug, __VA_ARGS__)
#define IDB_INFO(...) IDB_LOG(::instantdb::LogLevel::kInfo, __VA_ARGS__)
#define IDB_WARN(...) IDB_LOG(::instantdb::LogLevel::kWarn, __VA_ARGS__)
#define IDB_ERROR(...) IDB_LOG(::instantdb::LogLevel::kError, __VA_ARGS__)

}  // namespace instantdb

#endif  // INSTANTDB_COMMON_LOGGING_H_
