#ifndef INSTANTDB_COMMON_RANDOM_H_
#define INSTANTDB_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace instantdb {

/// \brief Fast deterministic PRNG (xorshift128+), seeded explicitly so every
/// test and benchmark run is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x2545F4914F6CDD1DULL) {
    s0_ = seed ^ 0x9E3779B97F4A7C15ULL;
    s1_ = (seed << 1) | 1;
    // Warm up to decorrelate small seeds.
    for (int i = 0; i < 8; ++i) NextU64();
  }

  uint64_t NextU64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return NextU64() % n;
  }

  /// Uniform integer in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// \brief Zipf-distributed generator over [0, n). Used by the workload
/// generators to model skewed access (popular locations, frequent queries).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 1)
      : rng_(seed), cdf_(n) {
    assert(n > 0);
    double sum = 0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (uint64_t i = 0; i < n; ++i) cdf_[i] /= sum;
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    // Binary search the cumulative distribution.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  Random rng_;
  std::vector<double> cdf_;
};

}  // namespace instantdb

#endif  // INSTANTDB_COMMON_RANDOM_H_
