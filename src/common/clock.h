#ifndef INSTANTDB_COMMON_CLOCK_H_
#define INSTANTDB_COMMON_CLOCK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace instantdb {

/// Microseconds since an arbitrary epoch. All LCP delays and degradation
/// deadlines in InstantDB are expressed in this unit.
using Micros = int64_t;

inline constexpr Micros kMicrosPerMilli = 1000;
inline constexpr Micros kMicrosPerSecond = 1000 * kMicrosPerMilli;
inline constexpr Micros kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr Micros kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr Micros kMicrosPerDay = 24 * kMicrosPerHour;
/// The paper expresses the coarsest delays in months; we use the civil
/// 30-day month throughout.
inline constexpr Micros kMicrosPerMonth = 30 * kMicrosPerDay;

/// \brief Time source for every degradation decision in the engine.
///
/// The paper's LCP delays span minutes to months; experiments cannot run in
/// wall time. All engine components take time exclusively through this
/// interface so that tests and benchmarks can drive a `VirtualClock` while
/// deployments use `SystemClock`. This is the substitution documented in
/// DESIGN.md §2.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since the clock's epoch.
  virtual Micros NowMicros() const = 0;

  /// Snapshot of the wake generation. Background loops capture a token
  /// BEFORE re-checking the condition they sleep on (running flags, next
  /// deadline) and pass it to WaitUntil: a WakeAll landing in the gap
  /// between the check and the park then returns the wait immediately
  /// instead of being lost — the classic missed-wakeup on shutdown.
  virtual uint64_t WakeToken() const = 0;

  /// Blocks until `NowMicros() >= deadline` or `WakeAll()` is called after
  /// `token` was captured. Returns the time observed on wake-up.
  virtual Micros WaitUntil(Micros deadline, uint64_t token) = 0;

  /// Convenience form with the token captured at call time — only safe for
  /// callers that re-poll their sleep condition on a bounded cadence.
  Micros WaitUntil(Micros deadline) { return WaitUntil(deadline, WakeToken()); }

  /// Wakes all `WaitUntil` sleepers (used on shutdown and when new, earlier
  /// deadlines are scheduled). A broadcast: every thread parked at the bump
  /// wakes, and every token captured before it is expired.
  virtual void WakeAll() = 0;
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  SystemClock();

  Micros NowMicros() const override;
  uint64_t WakeToken() const override;
  using Clock::WaitUntil;
  Micros WaitUntil(Micros deadline, uint64_t token) override;
  void WakeAll() override;

 private:
  Micros epoch_;  // steady_clock offset so times start near zero
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t wake_gen_ = 0;  // guarded by mu_; see Clock::WakeToken
};

/// \brief Manually-advanced clock for deterministic tests and benchmarks.
///
/// `Advance`/`AdvanceTo` move time forward and wake sleepers, letting a test
/// compress a month of degradation schedule into microseconds of real time.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override { return now_.load(std::memory_order_acquire); }

  uint64_t WakeToken() const override;
  using Clock::WaitUntil;
  Micros WaitUntil(Micros deadline, uint64_t token) override;
  void WakeAll() override;

  /// Moves time forward by `delta` microseconds (must be >= 0).
  void Advance(Micros delta);
  /// Moves time forward to `t` if `t` is in the future; no-op otherwise.
  void AdvanceTo(Micros t);

 private:
  std::atomic<Micros> now_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Guarded by mu_; bumped by WakeAll. A generation counter, not a flag:
  /// every waiter present at the bump wakes (each compares against the
  /// generation it captured), so one waiter cannot swallow a broadcast
  /// meant for several — the degrader and the maintenance daemon both park
  /// on the same clock — and a token captured before the bump expires even
  /// if its thread had not parked yet.
  uint64_t wake_gen_ = 0;
};

}  // namespace instantdb

#endif  // INSTANTDB_COMMON_CLOCK_H_
