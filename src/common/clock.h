#ifndef INSTANTDB_COMMON_CLOCK_H_
#define INSTANTDB_COMMON_CLOCK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace instantdb {

/// Microseconds since an arbitrary epoch. All LCP delays and degradation
/// deadlines in InstantDB are expressed in this unit.
using Micros = int64_t;

inline constexpr Micros kMicrosPerMilli = 1000;
inline constexpr Micros kMicrosPerSecond = 1000 * kMicrosPerMilli;
inline constexpr Micros kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr Micros kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr Micros kMicrosPerDay = 24 * kMicrosPerHour;
/// The paper expresses the coarsest delays in months; we use the civil
/// 30-day month throughout.
inline constexpr Micros kMicrosPerMonth = 30 * kMicrosPerDay;

/// \brief Time source for every degradation decision in the engine.
///
/// The paper's LCP delays span minutes to months; experiments cannot run in
/// wall time. All engine components take time exclusively through this
/// interface so that tests and benchmarks can drive a `VirtualClock` while
/// deployments use `SystemClock`. This is the substitution documented in
/// DESIGN.md §2.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since the clock's epoch.
  virtual Micros NowMicros() const = 0;

  /// Blocks until `NowMicros() >= deadline` or `WakeAll()` is called.
  /// Returns the time observed on wake-up.
  virtual Micros WaitUntil(Micros deadline) = 0;

  /// Wakes all `WaitUntil` sleepers (used on shutdown and when new, earlier
  /// deadlines are scheduled).
  virtual void WakeAll() = 0;
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  SystemClock();

  Micros NowMicros() const override;
  Micros WaitUntil(Micros deadline) override;
  void WakeAll() override;

 private:
  Micros epoch_;  // steady_clock offset so times start near zero
  std::mutex mu_;
  std::condition_variable cv_;
};

/// \brief Manually-advanced clock for deterministic tests and benchmarks.
///
/// `Advance`/`AdvanceTo` move time forward and wake sleepers, letting a test
/// compress a month of degradation schedule into microseconds of real time.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override { return now_.load(std::memory_order_acquire); }

  Micros WaitUntil(Micros deadline) override;
  void WakeAll() override;

  /// Moves time forward by `delta` microseconds (must be >= 0).
  void Advance(Micros delta);
  /// Moves time forward to `t` if `t` is in the future; no-op otherwise.
  void AdvanceTo(Micros t);

 private:
  std::atomic<Micros> now_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool woken_ = false;  // guarded by mu_; set by WakeAll
};

}  // namespace instantdb

#endif  // INSTANTDB_COMMON_CLOCK_H_
