#include "common/status.h"

namespace instantdb {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kExpired:
      return "Expired";
    case Status::Code::kOverloaded:
      return "Overloaded";
    case Status::Code::kTimeout:
      return "Timeout";
    case Status::Code::kShutdown:
      return "Shutdown";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace instantdb
