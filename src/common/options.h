#ifndef INSTANTDB_COMMON_OPTIONS_H_
#define INSTANTDB_COMMON_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "common/clock.h"

namespace instantdb {

class CancelToken;

/// How the WAL prevents accurate values from surviving in log files past
/// their degradation deadline (DESIGN.md §3, experiment B5).
enum class WalPrivacyMode {
  /// Traditional WAL: records are kept until segment recycling. Accurate
  /// values linger — this is the unsafe baseline the paper warns about.
  kPlain,
  /// Segments containing values whose first degradation deadline passed are
  /// physically overwritten after a forced checkpoint.
  kScrub,
  /// Degradable payloads are encrypted under per-epoch keys; destroying the
  /// epoch key at transition time makes every log copy unreadable.
  kEncryptedEpoch,
};

/// Physical layout for degradable attribute values (experiment B4).
enum class DegradableLayout {
  /// One append-only FIFO store per (attribute, LCP state); degradation is
  /// sequential pop/append plus segment-granularity secure erase.
  kStateStores,
  /// Degradable values stored inline in the heap tuple; degradation is a
  /// random-access in-place overwrite. Ablation baseline.
  kInPlace,
};

/// How popped state-store segments are made unrecoverable.
enum class EraseMode {
  /// Overwrite the byte range with zeros, then sync.
  kOverwrite,
  /// Segments are encrypted with per-segment keys; erasing destroys the key.
  kCryptoErase,
};

struct StorageOptions {
  size_t page_size = 8192;
  size_t buffer_pool_pages = 4096;
  /// Capacity of one state-store segment in bytes.
  size_t segment_bytes = 64 * 1024;
  EraseMode erase_mode = EraseMode::kOverwrite;
};

struct WalOptions {
  WalPrivacyMode privacy_mode = WalPrivacyMode::kScrub;
  size_t segment_bytes = 1 * 1024 * 1024;
  /// Number of independent WAL streams commits are sharded over. Records
  /// route to stream `row_id % wal_streams` — the same hash the tables use
  /// for partitioning — so with wal_streams == partitions a partition's
  /// redo lives in exactly one stream and commits on distinct partitions
  /// neither share a log mutex nor queue behind one file's fsync. 0 (the
  /// default) means "match DbOptions::partitions" (standalone WalManager
  /// use treats it as 1); 1 keeps the unsharded on-disk layout byte-for-
  /// byte. The count is persisted in `wal/STREAMS` at creation — reopening
  /// with a different value keeps the on-disk count.
  size_t wal_streams = 0;
  /// Sync on every commit. Benchmarks disable this to isolate CPU costs.
  /// Durability is watermark-based either way: a committer blocks until the
  /// stream's synced LSN covers its bytes, and one leader's fdatasync
  /// absorbs every committer parked on the same stream (leader-based group
  /// commit) — so under concurrency this costs far less than one sync per
  /// commit.
  bool sync_on_commit = false;
  /// kEncryptedEpoch: width of one key epoch. Choosing it at or below the
  /// shortest phase-0 duration lets every epoch be destroyed as soon as its
  /// tuples leave the accurate state.
  Micros epoch_micros = kMicrosPerHour;
};

struct DegradationOptions {
  /// Run the degrader on a background thread (real deployments). Tests and
  /// benchmarks instead pump `DegradationEngine::RunDue()` manually.
  bool background_thread = false;
  /// Maximum tuples moved per degradation step transaction, bounding the
  /// time any store head stays locked.
  size_t step_batch_limit = 1024;
  /// Size of the Database's shared lazily-started worker pool
  /// (util/worker_pool.h): degradation passes, scans, aggregate drains,
  /// checkpoints and audit sweeps all borrow the same threads instead of
  /// spawning their own per call. Degradation steps remain their own
  /// system transactions with wait-die retry. 1 (the default) keeps the
  /// serial engine; raising it lets degradation and scan throughput scale
  /// on a multicore box.
  size_t worker_threads = 1;
};

struct ReadOptions {
  /// Paper §IV "future work" semantics: when true, selection predicates at
  /// accuracy k are also evaluated against tuples already degraded past k
  /// (matching iff the coarser stored value is consistent with the
  /// predicate). Default is the paper's strict, unambiguous semantics.
  bool include_coarser = false;
};

/// How a SELECT's heap scan fans out over a table (Session::scan_options).
/// The unit of read parallelism is the MORSEL — a page range of one
/// partition's heap (util/morsel.h) — not the whole partition: workers
/// claim morsels from per-partition queues with partition affinity and
/// steal from the busiest queue when their own runs dry, so parallelism is
/// not capped by the partition count and a skewed partition is shared by
/// many workers. Per-batch snapshot semantics (one partition latch per
/// batch) are unchanged at any parallelism.
struct ScanOptions {
  /// Number of scan workers a streaming cursor fans out over, and the pool
  /// size a materialized (Session::Execute) scan drains morsels with.
  /// 0 (the default) means DegradationOptions::worker_threads — a database
  /// configured with a worker pool reads with it too — EXCEPT on tables a
  /// few scan batches long (under ~2k live rows), which stay sequential:
  /// fanning out costs more than such a scan. Set an explicit value to
  /// force fan-out regardless of table size; it may exceed the partition
  /// count (workers share partitions at morsel granularity) and is clamped
  /// only to the morsel-plan size. 1 scans partitions sequentially inline
  /// on the consumer's thread (no extra threads, rows in (partition, heap)
  /// order); higher values run that many scan workers, which interleaves
  /// rows across morsels in arrival order on the streaming path.
  size_t parallelism = 0;
  /// Heap pages per morsel. 0 (the default) = kDefaultMorselPages (16).
  /// Smaller morsels split work finer (better stealing on skew, more claim
  /// overhead); tests force 1 to exercise many morsels on tiny tables.
  uint32_t morsel_pages = 0;
  /// Capacity of the streaming cursor's prefetch queue, in batches. The
  /// queue is what lets scan I/O on one partition overlap σ/π evaluation of
  /// another partition's batch; it is bounded so a slow consumer
  /// backpressures the workers instead of buffering the table. 0 means
  /// 2 × parallelism.
  size_t prefetch_batches = 0;
  /// Predicate & aggregate pushdown below row assembly: stable-column WHERE
  /// terms are evaluated batch-at-a-time on the decoded heap tuples, state
  /// stores are probed only for the surviving rows (one sorted merge per
  /// store instead of one binary search per row), and ungrouped
  /// COUNT/SUM/AVG/MIN/MAX fold per-partition partials inside the scan
  /// workers. On by default; off restores full RowView assembly before σ —
  /// the reference path the pushdown equivalence tests compare against.
  bool pushdown = true;
  /// Absolute statement deadline on the database's clock (0 = none). Every
  /// scan path checks it at morsel-claim and batch granularity and returns
  /// Status::Timeout — partial-safe: workers stop claiming, release their
  /// pool tokens, and the statement fails like any other error. The service
  /// front end sets it per statement from ServiceOptions::default_deadline
  /// (or a per-call override); embedders may set it directly.
  Micros deadline = 0;
  /// Cooperative cancellation handle (common/cancel.h), polled at the same
  /// granularity as `deadline`; a tripped token fails the statement with
  /// Status::Aborted. Not owned; must outlive the statement. nullptr = not
  /// cancellable.
  const CancelToken* cancel = nullptr;
};

struct WriteOptions {
  bool sync = false;
};

/// Priority class of one service-layer statement. The paper's purpose model
/// meets QoS here: a deployment maps purposes to classes (an interactive
/// GEO lookup is kHigh, a marketing export kLow), and admission drains
/// queues weighted by class while backpressure sheds the low classes first.
enum class ServiceClass : uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr size_t kNumServiceClasses = 3;

/// Configuration of the overload-safe service front end
/// (service/service.h): admission control, per-class weighted queueing,
/// backpressure shedding, statement deadlines, and the degradation priority
/// floor.
struct ServiceOptions {
  /// Statements executing concurrently across all sessions. Beyond it new
  /// arrivals queue (per class, up to `queue_depth`) and then reject with
  /// Status::Overloaded — latency stays bounded instead of collapsing.
  size_t max_concurrent = 8;
  /// Queued-but-unadmitted statements tolerated PER CLASS before arrivals
  /// of that class reject with Status::Overloaded.
  size_t queue_depth = 16;
  /// Weighted fair queueing across classes, indexed by ServiceClass: a
  /// class's share of admissions under contention is proportional to its
  /// weight (must be > 0).
  double per_class_weights[kNumServiceClasses] = {4.0, 2.0, 1.0};
  /// Worker-pool tokens reserved for the degradation engine's priority
  /// dispatches (WorkerPool::SetReserved): normal borrowers (scans,
  /// aggregates, checkpoints) never take the last N free workers, so
  /// overdue privacy steps fan out even at 100% query load — the paper's
  /// timeliness guarantee must not bend to foreground pressure. Clamped to
  /// the pool size.
  size_t reserved_degradation_workers = 1;
  /// Default statement deadline, relative to admission (0 = none). A
  /// statement past it returns Status::Timeout — while queued or at the
  /// scan paths' morsel/batch checks once running.
  Micros default_deadline = 0;
  /// Backpressure thresholds. WAL pressure: committers parked on
  /// group-commit sync watermarks (WalManager::SyncWaiters) at or above
  /// this count.
  size_t wal_waiters_high = 4;
  /// Degradation pressure: overdue (table, partition) units
  /// (DegradationEngine::OverdueUnits) at or above this count.
  size_t degradation_backlog_high = 1;
  /// How long one PressureState sample stays cached before admission
  /// resamples the signals (OverdueUnits walks table partitions — not free
  /// per admission). 0 = resample every admission (deterministic tests).
  Micros pressure_refresh = 10 * kMicrosPerMilli;
};

/// Configuration of the self-driving maintenance daemon (maintain/
/// maintenance_daemon.h): background checkpoint cadence plus continuous
/// deletion-assurance audits. The daemon is what makes the durability/
/// privacy loop autonomous — without it checkpoints (and therefore WAL
/// segment retirement, the scrub cadence) only happen when a caller asks.
struct MaintenanceOptions {
  /// Start the daemon at Database::Open. Off by default: tests and tools
  /// that assert exact checkpoint counts drive maintenance explicitly
  /// (MaintenanceDaemon::RunOnce) or not at all.
  bool enabled = false;
  /// Background checkpoint cadence FLOOR. Each cadence point checkpoints
  /// only when at least `checkpoint_dirty_threshold` partitions are dirty
  /// OR a live WAL segment holds a degradable payload past its phase-0
  /// deadline (retirement must not wait for new writes). The cadence is
  /// adaptive: the daemon schedules the next point at `interval` from now,
  /// pulled EARLIER to the earliest phase-0 deadline of any payload still
  /// in the live log (WalManager::EarliestPayloadDeadline) when that lands
  /// inside the window — so the interval no longer needs to sit below the
  /// shortest phase-0 duration; it only bounds the idle wake-up rate.
  Micros checkpoint_interval = kMicrosPerSecond;
  /// Minimum number of dirty partitions before a cadence checkpoint fires;
  /// below it the cadence point is recorded as skipped-clean. 0 makes every
  /// cadence point checkpoint unconditionally.
  uint64_t checkpoint_dirty_threshold = 1;
  /// Cadence of deletion-assurance audit sweeps (0 disables continuous
  /// audits; explicit MaintenanceDaemon::RunAuditNow always works).
  Micros audit_interval = 0;
  /// Slack an audit grants the degrader/daemon before a value past its
  /// deadline counts as exposed. 0 (exact) is right on a VirtualClock where
  /// degradation is pumped; real deployments set it to roughly one
  /// degradation-pass latency plus one checkpoint interval.
  Micros audit_grace = 0;
  /// Bound on how long Database::Close waits for an in-flight caller-driven
  /// degradation pass to drain before proceeding with the final checkpoint
  /// (the close is safe either way — checkpoints are fuzzy — but an orderly
  /// shutdown prefers quiescence).
  Micros close_quiesce_timeout = 5 * kMicrosPerSecond;
};

}  // namespace instantdb

#endif  // INSTANTDB_COMMON_OPTIONS_H_
