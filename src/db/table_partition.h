#ifndef INSTANTDB_DB_TABLE_PARTITION_H_
#define INSTANTDB_DB_TABLE_PARTITION_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "common/options.h"
#include "db/scan_spec.h"
#include "index/bitmap_index.h"
#include "index/multires_index.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "storage/state_store.h"
#include "txn/transaction.h"
#include "util/histogram.h"
#include "util/morsel.h"
#include "wal/wal_manager.h"

namespace instantdb {

/// Options shared by every table of a database (subset of DbOptions the
/// table layer needs).
struct TableRuntime {
  StorageOptions storage;
  DegradableLayout layout = DegradableLayout::kStateStores;
  bool bitmap_indexes = false;
  /// Number of hash-partitions of the row-id space per table. 1 keeps the
  /// single-partition layout (and on-disk paths) of unpartitioned tables.
  uint32_t partitions = 1;
  KeyManager* keys = nullptr;
  WalManager* wal = nullptr;
  Clock* clock = nullptr;
  /// All table storage I/O routes through this seam; nullptr = Env::Default().
  Env* env = nullptr;
};

/// Fully assembled row as seen by the executor: stable values plus each
/// degradable attribute's *stored* phase and value (the physical ST_j
/// membership, which is what the paper's query semantics partition on).
struct RowView {
  RowId row_id = kInvalidRowId;
  Micros insert_time = 0;
  /// Aligned with schema.columns(): stable columns hold their value;
  /// degradable columns hold the stored (possibly degraded) value, or NULL
  /// once removed.
  std::vector<Value> values;
  /// Aligned with schema.degradable_columns(): current phase per attribute
  /// (lcp.num_phases() = removed).
  std::vector<int> phases;
};

/// \brief The physical state of one hash-partition of a table: slotted heap
/// for the stable part, FIFO state stores per (degradable attribute, phase),
/// multi-resolution + optional bitmap indexes, the row-id map, and the
/// degradation stepping logic.
///
/// `Table` (db/table.h) routes every row id to exactly one partition via a
/// deterministic hash, so partitions never share rows: each owns its own
/// reader-writer latch and its degradation steps lock per-partition store
/// heads. That is what lets the degradation worker pool run steps on
/// distinct partitions concurrently while preserving the paper's bounded
/// reader/degrader interference (B8) per partition.
///
/// Thread-safety: logical conflicts go through the 2PL LockManager (row/
/// store/table locks, store keys carry the partition index); physical
/// structures are protected by the per-partition latch (scans share it,
/// apply closures take it exclusive). Statistics are mutated under the
/// exclusive latch and read under the shared latch.
class TablePartition {
 public:
  TablePartition(const TableDef* def, std::string dir,
                 const TableRuntime& runtime, uint32_t index);
  ~TablePartition();
  TablePartition(const TablePartition&) = delete;
  TablePartition& operator=(const TablePartition&) = delete;

  /// Opens storage, rebuilds the row-id map from the heap, opens the state
  /// stores. Indexes are rebuilt separately (RebuildIndexes) after WAL
  /// replay so they reflect the recovered state.
  Status Open();
  Status RebuildIndexes();
  /// Unconditional flush of heap pages + state stores (stores skip
  /// themselves when individually clean). Prefer CheckpointIfDirty.
  Status Checkpoint();
  /// Incremental checkpoint: flushes only when a mutation applied since the
  /// last flush, then advances the clean-through low-water mark to
  /// `positions` — the per-stream fuzzy begin vector the caller captured
  /// under the commit barrier (TransactionManager::CheckpointBeginPositions)
  /// BEFORE any flushing. Correctness of the skip: every WAL record below
  /// `positions` was fully applied when the barrier returned, and an
  /// applied-but-unflushed mutation leaves the partition dirty — so a clean
  /// partition's durable state already covers everything below `positions`.
  /// Returns true when a flush ran, false when the partition was clean and
  /// only the watermark advanced.
  Result<bool> CheckpointIfDirty(const std::vector<Lsn>& positions);
  /// Per-stream low-water mark: this partition's durable state covers every
  /// WAL record below it. Empty until the first CheckpointIfDirty — the
  /// database then treats it as "nothing covered" (zeros).
  std::vector<Lsn> clean_through() const;
  /// Securely drops all storage of this partition.
  Status Drop();

  const TableDef& def() const { return *def_; }
  const Schema& schema() const { return def_->schema; }
  TableId id() const { return def_->id; }
  uint32_t index() const { return index_; }

  /// Largest row id seen in this partition's heap at Open() time (0 when
  /// empty); the router derives the table-wide row-id counter from it.
  RowId max_row_id() const { return max_row_id_; }

  /// Mints the next row id owned by this partition (id ≡ index mod
  /// partitions, so PartitionOf routes it straight back here). Partition-
  /// affine allocation is what lets a batch's inserts — and their WAL redo
  /// — land in a single partition and a single log stream.
  RowId AllocateRowId();
  /// Raises the allocator above a replayed row id (recovery redo).
  void EnsureRowAllocatorAbove(RowId row_id);

  // --- apply closures (commit-time + idempotent redo) ------------------------

  Status ApplyInsert(RowId row_id, Micros insert_time,
                     const std::vector<Value>& stable,
                     const std::vector<Value>& degradable,
                     bool degradable_available);
  Status ApplyDelete(RowId row_id);
  /// `old_values` is non-null on the live path (index maintenance) and null
  /// during redo (indexes are rebuilt wholesale after replay).
  Status ApplyDegrade(int column, int from_phase, int to_phase,
                      RowId up_to_row_id, const std::vector<StoreEntry>& moves,
                      const std::vector<Value>* old_values);
  Status ApplyUpdateStable(RowId row_id, const std::vector<Value>& stable);

  // --- read path -------------------------------------------------------------

  /// Snapshot scan of this partition under its shared latch. Stops early
  /// when `fn` returns false (reported via the return flag of ScanRows'
  /// caller; see Table::ScanRows).
  Status ScanRows(const std::function<bool(const RowView&)>& fn,
                  bool* stopped) const;

  /// Splits this partition's heap into page-range morsels of
  /// `pages_per_morsel` pages (0 = kDefaultMorselPages), the unit the
  /// morsel scheduler hands to scan/degrade/audit workers. The last morsel
  /// is open-ended (end_page == kInvalidPageId) so rows appended after
  /// planning are still observed; an empty partition yields one open-ended
  /// morsel for the same reason. Each morsel carries its own resume
  /// position through the range-bounded ScanBatch/ScanBatchFiltered
  /// overloads below.
  std::vector<Morsel> MorselPlan(uint32_t pages_per_morsel) const;

  /// Cursor support: assembles up to `limit` live rows starting at heap
  /// position `*pos` (`Rid{0, 0}` to start) under the shared latch,
  /// advancing `*pos` to the resume position and setting `*done` once this
  /// partition's heap is exhausted.
  Status ScanBatch(Rid* pos, size_t limit, std::vector<RowView>* out,
                   bool* done) const;

  /// Range-bounded ScanBatch over one morsel's pages: identical semantics,
  /// but `*done` reports exhaustion of [*pos, end_page) instead of the
  /// whole heap (end_page == kInvalidPageId restores the unbounded form).
  Status ScanBatch(Rid* pos, PageId end_page, size_t limit,
                   std::vector<RowView>* out, bool* done) const;

  /// Pushdown form of ScanBatch: decodes up to `limit` heap tuples from
  /// `*pos`, runs `spec.filter` batch-at-a-time on the decoded stable
  /// values, and only then resolves the degradable part — for the SURVIVORS
  /// only, with one sorted merge per state store (StateStore::FindMany)
  /// instead of one binary search per row. Everything happens under a
  /// single shared-latch acquisition, so the batch has exactly ScanBatch's
  /// snapshot-per-batch semantics. REPLACES `*out`'s contents (it does not
  /// append): the caller keeps passing the same vector and the RowView
  /// slots recycle their storage. `limit` bounds tuples DECODED, not rows
  /// emitted — a selective batch comes out short rather than holding the
  /// latch until it fills. `ws` is per-consumer scratch; `deltas`
  /// accumulates the pushdown accounting (see ScanDeltas).
  Status ScanBatchFiltered(Rid* pos, size_t limit, const ScanSpec& spec,
                           ScanWorkspace* ws, std::vector<RowView>* out,
                           bool* done, ScanDeltas* deltas) const;

  /// Range-bounded pushdown batch over one morsel's pages (the
  /// MorselPlan/ScanBatchFiltered(range) pair the morsel consumers drive).
  Status ScanBatchFiltered(Rid* pos, PageId end_page, size_t limit,
                           const ScanSpec& spec, ScanWorkspace* ws,
                           std::vector<RowView>* out, bool* done,
                           ScanDeltas* deltas) const;

  /// Whole-partition pushdown scan under ONE shared-latch hold
  /// (snapshot-per-partition, like ScanRows): assembles survivor batches of
  /// kScanChunkRows and hands each to `fn`. The vector passed to `fn` is
  /// reused between calls. The materializing read path and the aggregate
  /// pushdown drain partitions through this.
  Status ScanFiltered(const ScanSpec& spec, ScanWorkspace* ws,
                      const std::function<Status(const std::vector<RowView>&)>& fn,
                      ScanDeltas* deltas) const;

  /// Tuples decoded per latched chunk of ScanFiltered (matches the
  /// streaming cursor's batch size).
  static constexpr size_t kScanChunkRows = 256;

  /// Batched store probe: resolves the stored (phase, value) of every id in
  /// `row_ids` (must be ascending) for every degradable column, row-major —
  /// phases/values[i * degradable_cols + d]. A removed value reports phase
  /// == lcp.num_phases() with a NULL value; an id not in this partition
  /// reports every column removed. One shared-latch acquisition, one
  /// FindMany merge per (column, phase) store. Exposed for tests (merge
  /// equivalence vs Find) and consumers that need levels without full rows.
  Status ProbeMany(const std::vector<RowId>& row_ids, std::vector<int>* phases,
                   std::vector<Value>* values) const;

  Result<std::optional<RowView>> GetRow(RowId row_id) const;

  /// True if the row id currently lives in this partition.
  bool Contains(RowId row_id) const;

  /// (column, phase) of the store currently holding `row_id`'s value, for
  /// every degradable column (kStateStores layout; empty under kInPlace).
  /// Used by Table::Delete to serialize against degradation steps.
  std::vector<std::pair<int, int>> StoresHolding(RowId row_id) const;

  uint64_t live_rows() const;

  Status IndexLookupEqual(int column, const Value& value, int level,
                          std::vector<RowId>* out) const;
  Status IndexLookupRange(int column, const Value& lo, const Value& hi,
                          int level, std::vector<RowId>* out) const;
  Result<Bitmap> BitmapLookupEqual(int column, const Value& value,
                                   int level) const;

  const MultiResolutionIndex* multires_index(int degradable_ordinal) const {
    return multires_[degradable_ordinal].get();
  }
  const BitmapColumnIndex* bitmap_index(int degradable_ordinal) const {
    return bitmaps_.empty() ? nullptr : bitmaps_[degradable_ordinal].get();
  }

  // --- degradation -----------------------------------------------------------

  /// Earliest pending transition deadline across this partition's stores
  /// (kForever if nothing is pending).
  Micros NextDeadline() const;

  /// Runs ONE degradation step on this partition as a system transaction:
  /// drains every entry whose deadline has passed (up to `batch_limit`)
  /// from the single most overdue (column, phase) store. Returns the number
  /// of tuples moved (0 when nothing is due). `*stepped_phase0` is set when
  /// the step drained a phase-0 store (the router then advances the WAL
  /// epoch-key watermark using the table-wide safe time).
  Result<size_t> RunDegradationStep(TransactionManager* tm, Micros now,
                                    size_t batch_limit, bool* stepped_phase0);

  /// True if any store head of this partition is overdue at `now`.
  bool HasWorkAt(Micros now) const;

  /// Earliest phase-0 head insert time (or `now` when phase 0 is empty):
  /// epoch keys up to the table-wide minimum of this are destroyable.
  Micros SafeEpochTime() const;

  struct Stats {
    uint64_t inserts = 0;
    uint64_t deletes = 0;
    uint64_t degrade_steps = 0;
    uint64_t values_degraded = 0;
    uint64_t values_removed = 0;
    uint64_t tuples_expired = 0;  // whole-tuple removals by the LCP

    void MergeFrom(const Stats& other) {
      inserts += other.inserts;
      deletes += other.deletes;
      degrade_steps += other.degrade_steps;
      values_degraded += other.values_degraded;
      values_removed += other.values_removed;
      tuples_expired += other.tuples_expired;
    }
  };
  /// True when a mutation applied since the last CheckpointIfDirty flush.
  /// Latch-free (two relaxed atomic loads): the maintenance daemon polls
  /// every partition each cadence point. May transiently read dirty for a
  /// partition a concurrent checkpoint is flushing right now — the daemon's
  /// extra checkpoint then finds it clean, which is benign.
  bool dirty() const {
    return mutation_seq_.load(std::memory_order_acquire) !=
           flushed_seq_.load(std::memory_order_acquire);
  }

  /// Deletion-assurance probe (maintain/audit.h): per-phase index-vs-storage
  /// reconciliation under ONE shared-latch acquisition, so a concurrent
  /// degrade step (which moves store entries and index postings together
  /// under the exclusive latch) can never be observed halfway. For every
  /// (degradable column, phase): `stale` counts index entries above what the
  /// phase's store (or in-place schedule queue) actually holds — postings
  /// still claiming accuracy the data has lost — and `missing` the opposite.
  struct IndexAuditCounts {
    uint64_t stale = 0;
    uint64_t missing = 0;
  };
  IndexAuditCounts AuditIndexes() const;

  /// Snapshot under the shared latch (safe against a concurrent degrader).
  Stats stats() const;
  /// Copy of the lateness histogram under the shared latch.
  Histogram lateness_histogram() const;

  BufferPool* heap_pool() const { return heap_pool_.get(); }
  const StateStore* store(int column, int phase) const;

 private:
  struct PendingDegrade {
    int column = -1;  // schema column index
    int phase = -1;
    Micros deadline = kForever;
  };

  std::string HeapPath() const { return dir_ + "/heap.db"; }
  std::string IndexPath() const { return dir_ + "/index.db"; }
  std::string StoreDir(int column, int phase) const;

  /// Deadline of the head entry of (column, phase), kForever if empty.
  Micros StoreHeadDeadline(int column, int phase) const;
  PendingDegrade MostOverdue() const;

  /// After a value of `row_id` reached ⊥: if every degradable attribute of
  /// the tuple is gone, remove the whole tuple (paper: disappearance).
  /// Caller holds the exclusive latch.
  Status MaybeExpireTupleLocked(RowId row_id);

  /// Builds a RowView from a decoded heap tuple (caller holds the latch).
  bool AssembleRow(const HeapTuple& tuple, RowView* view) const;

  /// ScanBatchFiltered's body, minus the latch (ScanFiltered holds it once
  /// for the whole partition). `end_page` bounds the decoded page range
  /// (exclusive; kInvalidPageId = to the heap's end).
  Status ScanChunkLocked(Rid* pos, PageId end_page, size_t limit,
                         const ScanSpec& spec, ScanWorkspace* ws,
                         std::vector<RowView>* out, bool* done,
                         ScanDeltas* deltas) const;
  /// Filters ws->tuples[0..count), probes stores for the survivors
  /// (FindMany merges), and fills `*out` (replace semantics). Caller holds
  /// the shared latch.
  void AssembleSurvivorsLocked(const ScanSpec& spec, ScanWorkspace* ws,
                               std::vector<RowView>* out,
                               ScanDeltas* deltas) const;

  const TableDef* const def_;
  const std::string dir_;
  TableRuntime runtime_;
  const uint32_t index_;

  std::unique_ptr<DiskManager> heap_disk_;
  std::unique_ptr<BufferPool> heap_pool_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<DiskManager> index_disk_;
  std::unique_ptr<BufferPool> index_pool_;

  /// stores_[degradable_ordinal][phase].
  std::vector<std::vector<std::unique_ptr<StateStore>>> stores_;
  std::vector<std::unique_ptr<MultiResolutionIndex>> multires_;
  std::vector<std::unique_ptr<BitmapColumnIndex>> bitmaps_;

  /// In-place layout: FIFO schedule (row_id, insert_time) per (ordinal,
  /// phase), mirroring what the state stores provide for free.
  std::vector<std::vector<std::deque<std::pair<RowId, Micros>>>> inplace_queues_;

  mutable std::shared_mutex latch_;
  /// Serializes checkpoints of this partition and guards the incremental-
  /// checkpoint bookkeeping (flushed_seq_, clean_through_).
  mutable std::mutex ckpt_mu_;
  /// Monotone count of applied mutations (inserts, deletes, degrade moves,
  /// stable updates), bumped under the exclusive latch. The dirty test is
  /// `mutation_seq_ != flushed_seq_`.
  std::atomic<uint64_t> mutation_seq_{0};
  /// Written under ckpt_mu_; atomic so dirty() can poll it latch-free (the
  /// maintenance daemon's cadence test must not contend with checkpoints).
  std::atomic<uint64_t> flushed_seq_{0};
  std::vector<Lsn> clean_through_;   // under ckpt_mu_
  std::unordered_map<RowId, Rid> row_map_;
  RowId max_row_id_ = 0;
  /// Row-id allocator multiplier: the next id minted is
  /// `next_multiplier_ * partitions + index`.
  std::atomic<RowId> next_multiplier_{0};

  Stats stats_;
  Histogram lateness_;
};

}  // namespace instantdb

#endif  // INSTANTDB_DB_TABLE_PARTITION_H_
