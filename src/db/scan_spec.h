#ifndef INSTANTDB_DB_SCAN_SPEC_H_
#define INSTANTDB_DB_SCAN_SPEC_H_

#include <cstdint>
#include <vector>

#include "storage/record.h"
#include "storage/state_store.h"

/// \file
/// \brief Pushdown contract between the storage/db layer and the query
/// layer: what a scan may evaluate BELOW row assembly.
///
/// The dominant per-row scan cost is RowView assembly — one state-store
/// probe per degradable column — paid before σ ever runs. A ScanSpec lets
/// the consumer push the stable-column part of σ underneath that cost: the
/// partition decodes heap tuples, runs the filter batch-at-a-time on the
/// decoded stable values, and probes the state stores only for the
/// surviving rows (one sorted merge per store instead of one binary search
/// per row). The query layer implements TupleFilter (it owns predicate
/// semantics); this header keeps the db layer free of any query dependency.

namespace instantdb {

/// Batch predicate over decoded heap tuples, evaluated before any state
/// store is touched. Implementations live in the query layer
/// (query/predicate.h); the db layer only calls through this interface.
class TupleFilter {
 public:
  virtual ~TupleFilter() = default;
  /// Fills `*sel` (cleared by the caller) with the indexes, in ascending
  /// order, of the tuples in [tuples, tuples + n) whose STABLE columns
  /// satisfy the filter. Degradable columns must not be consulted — under
  /// the kStateStores layout they are not present in the tuple at all.
  virtual void SelectStable(const HeapTuple* tuples, size_t n,
                            std::vector<uint32_t>* sel) const = 0;
};

/// What a pushdown scan should compute per batch. Value-semantic and
/// read-only during the scan; the filter (when set) must outlive it.
struct ScanSpec {
  /// Stable-column pre-filter; nullptr scans unfiltered (every decoded
  /// tuple survives to assembly).
  const TupleFilter* filter = nullptr;
  /// When false the scan skips the state-store probes entirely and leaves
  /// every degradable value NULL at phase 0 — the COUNT(*) fast path for
  /// queries that reference no degradable column. The caller asserts that
  /// no consumer reads the degradable part of the emitted rows.
  bool need_degradable = true;
};

/// Per-scan counter deltas, filled by the partition while it holds its
/// latch (plain integers — the query layer folds them into the database's
/// atomic counters outside the latch). The accounting invariant, asserted
/// in tests: probes_issued + probes_skipped == rows_scanned × number of
/// degradable columns — every (row, degradable column) pair is either
/// probed or provably not needed.
struct ScanDeltas {
  uint64_t rows_scanned = 0;     ///< heap tuples decoded
  uint64_t rows_prefiltered = 0; ///< rejected by the stable filter pre-assembly
  uint64_t probes_issued = 0;    ///< (row, column) store resolutions performed
  uint64_t probes_skipped = 0;   ///< (row, column) resolutions avoided
};

/// Scratch a pushdown scan reuses across batches (decoded-tuple slots,
/// selection vectors, probe arrays): owned by the consumer — one per scan
/// worker — so a steady-state scan stops allocating. Contents are
/// meaningless between calls.
struct ScanWorkspace {
  /// Decoded tuple slots; the valid prefix is [0, count). Kept instead of
  /// cleared so the per-tuple value vectors keep their capacity.
  std::vector<HeapTuple> tuples;
  size_t count = 0;
  std::vector<uint32_t> selection;  ///< surviving tuple indexes (heap order)
  std::vector<uint32_t> order;      ///< survivor positions sorted by row id
  std::vector<RowId> ids;           ///< survivor row ids, ascending
  std::vector<const StoreEntry*> entries;  ///< per-survivor probe results
  std::vector<int> phases;                 ///< per-survivor resolved phases
};

}  // namespace instantdb

#endif  // INSTANTDB_DB_SCAN_SPEC_H_
