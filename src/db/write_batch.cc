#include "db/write_batch.h"

namespace instantdb {

void WriteBatch::Insert(std::string table, std::vector<Value> row) {
  Op op;
  op.is_insert = true;
  op.table = std::move(table);
  op.row = std::move(row);
  ops_.push_back(std::move(op));
}

void WriteBatch::Delete(std::string table, RowId row_id) {
  Op op;
  op.is_insert = false;
  op.table = std::move(table);
  op.row_id = row_id;
  ops_.push_back(std::move(op));
}

void WriteBatch::Clear() {
  ops_.clear();
  row_ids_.clear();
}

}  // namespace instantdb
