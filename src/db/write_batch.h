#ifndef INSTANTDB_DB_WRITE_BATCH_H_
#define INSTANTDB_DB_WRITE_BATCH_H_

#include <string>
#include <vector>

#include "catalog/value.h"
#include "storage/page.h"

namespace instantdb {

/// \brief Staged multi-table write set, applied atomically by
/// `Database::Write` through ONE transaction and one WAL append/sync
/// (group commit).
///
/// This is the scalable ingest path: the per-row convenience APIs
/// (`Database::Insert`/`Delete`) pay a transaction begin/commit — and, with
/// `WriteOptions::sync`, a WAL fsync — per row, while a WriteBatch amortizes
/// all of that over the whole batch:
///
/// \code
///   WriteBatch batch;
///   for (const Ping& p : arrivals)
///     batch.Insert("pings", {Value::String(p.user), Value::String(p.addr)});
///   Status s = db->Write(&batch, {.sync = true});   // one txn, one sync
///   if (s.ok()) UseRowIds(batch.row_ids());
/// \endcode
///
/// Either every staged operation commits or none does. After a successful
/// Write, `row_ids()` holds the engine-assigned row id of each staged
/// insert, in staging order (kInvalidRowId entries for deletes). A batch
/// can be reused after Clear().
class WriteBatch {
 public:
  /// Stages one full-accuracy row (schema order) for insertion.
  void Insert(std::string table, std::vector<Value> row);

  /// Stages the removal of one tuple (stable + degradable parts).
  void Delete(std::string table, RowId row_id);

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  void Clear();

  /// Per staged operation, in order: the assigned row id of each insert
  /// (kInvalidRowId for deletes). Valid after a successful Database::Write.
  const std::vector<RowId>& row_ids() const { return row_ids_; }

 private:
  friend class Database;

  struct Op {
    bool is_insert = true;
    std::string table;
    std::vector<Value> row;   // insert only
    RowId row_id = kInvalidRowId;  // delete only
  };

  std::vector<Op> ops_;
  std::vector<RowId> row_ids_;
};

}  // namespace instantdb

#endif  // INSTANTDB_DB_WRITE_BATCH_H_
