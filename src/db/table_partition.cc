#include "db/table_partition.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"
#include "io/env.h"

namespace instantdb {

TablePartition::TablePartition(const TableDef* def, std::string dir,
                               const TableRuntime& runtime, uint32_t index)
    : def_(def), dir_(std::move(dir)), runtime_(runtime), index_(index) {
  if (runtime_.env == nullptr) runtime_.env = Env::Default();
}

TablePartition::~TablePartition() = default;

std::string TablePartition::StoreDir(int column, int phase) const {
  return dir_ + StringPrintf("/stores/c%d.p%d", column, phase);
}

const StateStore* TablePartition::store(int column, int phase) const {
  const int ordinal = schema().DegradableOrdinal(column);
  if (ordinal < 0 || static_cast<size_t>(ordinal) >= stores_.size() ||
      phase < 0 || static_cast<size_t>(phase) >= stores_[ordinal].size()) {
    return nullptr;  // kInPlace layout has no stores
  }
  return stores_[ordinal][phase].get();
}

Status TablePartition::Open() {
  IDB_RETURN_IF_ERROR(runtime_.env->CreateDirs(dir_));
  // Heap pages get CRC stamps (reserved header word): a torn page write
  // surfaces as Corruption instead of decoding garbage rows.
  IDB_ASSIGN_OR_RETURN(
      heap_disk_, DiskManager::Open(HeapPath(), runtime_.storage.page_size,
                                    runtime_.env, /*checksum_pages=*/true));
  heap_pool_ = std::make_unique<BufferPool>(
      heap_disk_.get(), runtime_.storage.buffer_pool_pages);
  heap_ = std::make_unique<HeapFile>(heap_pool_.get());
  IDB_RETURN_IF_ERROR(heap_->Open());

  // Rebuild the row-id map (and in-place schedules) from the heap.
  row_map_.clear();
  inplace_queues_.assign(schema().degradable_columns().size(), {});
  for (size_t d = 0; d < schema().degradable_columns().size(); ++d) {
    const ColumnDef& col = schema().column(schema().degradable_columns()[d]);
    inplace_queues_[d].assign(col.lcp.num_phases(), {});
  }
  RowId max_row = 0;
  std::vector<HeapTuple> tuples;  // only for kInPlace schedule rebuild
  Status scan_status;
  IDB_RETURN_IF_ERROR(heap_->Scan([&](Rid rid, Slice record) {
    HeapTuple tuple;
    scan_status = DecodeHeapTuple(schema(), runtime_.layout, record, &tuple);
    if (!scan_status.ok()) return false;
    row_map_[tuple.row_id] = rid;
    max_row = std::max(max_row, tuple.row_id);
    if (runtime_.layout == DegradableLayout::kInPlace) {
      tuples.push_back(std::move(tuple));
    }
    return true;
  }));
  IDB_RETURN_IF_ERROR(scan_status);
  max_row_id_ = max_row;

  if (runtime_.layout == DegradableLayout::kInPlace) {
    std::sort(tuples.begin(), tuples.end(),
              [](const HeapTuple& a, const HeapTuple& b) {
                return a.row_id < b.row_id;
              });
    for (const HeapTuple& tuple : tuples) {
      for (size_t d = 0; d < tuple.degradable.size(); ++d) {
        const int phases = static_cast<int>(inplace_queues_[d].size());
        if (tuple.degradable[d].phase < phases) {
          inplace_queues_[d][tuple.degradable[d].phase].emplace_back(
              tuple.row_id, tuple.insert_time);
        }
      }
    }
  }

  // State stores (kStateStores layout only).
  stores_.clear();
  if (runtime_.layout == DegradableLayout::kStateStores) {
    for (int col_idx : schema().degradable_columns()) {
      const ColumnDef& col = schema().column(col_idx);
      std::vector<std::unique_ptr<StateStore>> per_phase;
      for (int p = 0; p < col.lcp.num_phases(); ++p) {
        auto store = std::make_unique<StateStore>(
            StoreDir(col_idx, p), id(), col_idx, p, runtime_.storage,
            runtime_.keys, runtime_.env);
        IDB_RETURN_IF_ERROR(store->Open());
        // Ids of fully degraded (expired) tuples have left the heap but
        // must never be re-allocated: an append of a reused id would be
        // mistaken for WAL redo of the popped value and dropped.
        if (store->LastAppendedRowId() != kInvalidRowId) {
          max_row_id_ = std::max(max_row_id_, store->LastAppendedRowId());
        }
        per_phase.push_back(std::move(store));
      }
      stores_.push_back(std::move(per_phase));
    }
  }

  // Row-id allocator: this partition mints ids congruent to its index
  // (id = m * partitions + index), resuming above everything recovered.
  const RowId stride = runtime_.partitions == 0 ? 1 : runtime_.partitions;
  next_multiplier_.store(
      max_row_id_ == 0 ? (index_ == 0 ? 1 : 0) : max_row_id_ / stride + 1,
      std::memory_order_relaxed);
  return Status::OK();
}

RowId TablePartition::AllocateRowId() {
  const RowId stride = runtime_.partitions == 0 ? 1 : runtime_.partitions;
  const RowId m = next_multiplier_.fetch_add(1, std::memory_order_relaxed);
  return m * stride + index_;
}

void TablePartition::EnsureRowAllocatorAbove(RowId row_id) {
  const RowId stride = runtime_.partitions == 0 ? 1 : runtime_.partitions;
  const RowId next = row_id / stride + 1;
  RowId expect = next_multiplier_.load(std::memory_order_relaxed);
  while (next > expect &&
         !next_multiplier_.compare_exchange_weak(expect, next,
                                                 std::memory_order_relaxed)) {
  }
}

Status TablePartition::RebuildIndexes() {
  // Indexes are derived data: recreate the index file from scratch.
  index_pool_.reset();
  index_disk_.reset();
  if (runtime_.env->FileExists(IndexPath())) {
    IDB_RETURN_IF_ERROR(runtime_.env->RemoveFile(IndexPath()));
  }
  // No page checksums here: B-tree nodes use the reserved header word for
  // the leftmost-child pointer (see DiskManager).
  IDB_ASSIGN_OR_RETURN(
      index_disk_, DiskManager::Open(IndexPath(), runtime_.storage.page_size,
                                     runtime_.env));
  index_pool_ = std::make_unique<BufferPool>(
      index_disk_.get(), runtime_.storage.buffer_pool_pages);

  multires_.clear();
  bitmaps_.clear();
  for (int col_idx : schema().degradable_columns()) {
    const ColumnDef& col = schema().column(col_idx);
    auto index = std::make_unique<MultiResolutionIndex>(col, index_pool_.get());
    IDB_RETURN_IF_ERROR(index->Init());
    multires_.push_back(std::move(index));
    if (runtime_.bitmap_indexes) {
      bitmaps_.push_back(std::make_unique<BitmapColumnIndex>(col));
    }
  }

  if (runtime_.layout == DegradableLayout::kStateStores) {
    for (size_t d = 0; d < stores_.size(); ++d) {
      for (size_t p = 0; p < stores_[d].size(); ++p) {
        Status status;
        stores_[d][p]->ForEach([&](const StoreEntry& entry) {
          status = multires_[d]->OnInsertAtPhase(entry.row_id, entry.value,
                                                 static_cast<int>(p));
          if (status.ok() && !bitmaps_.empty()) {
            status = bitmaps_[d]->OnInsertAtPhase(entry.row_id, entry.value,
                                                  static_cast<int>(p));
          }
          return status.ok();
        });
        IDB_RETURN_IF_ERROR(status);
      }
    }
  } else {
    Status status;
    IDB_RETURN_IF_ERROR(heap_->Scan([&](Rid, Slice record) {
      HeapTuple tuple;
      status = DecodeHeapTuple(schema(), runtime_.layout, record, &tuple);
      if (!status.ok()) return false;
      for (size_t d = 0; d < tuple.degradable.size(); ++d) {
        const InlineDegradable& inline_value = tuple.degradable[d];
        if (inline_value.phase >=
            static_cast<int32_t>(inplace_queues_[d].size())) {
          continue;  // removed
        }
        status = multires_[d]->OnInsertAtPhase(tuple.row_id,
                                               inline_value.value,
                                               inline_value.phase);
        if (status.ok() && !bitmaps_.empty()) {
          status = bitmaps_[d]->OnInsertAtPhase(tuple.row_id,
                                                inline_value.value,
                                                inline_value.phase);
        }
        if (!status.ok()) return false;
      }
      return true;
    }));
    IDB_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

Status TablePartition::Checkpoint() {
  std::shared_lock<std::shared_mutex> latch(latch_);
  // Write ordering: stores BEFORE heap. A durable heap row whose store
  // entries never reached disk is a shell with every degradable value at ⊥;
  // ApplyInsert's redo can repair one, but only while the insert record is
  // still replayed, so the flush must never advance the manifest past an
  // insert whose store entry it failed to persist. Syncing the heap only
  // after every store checkpoint succeeded makes "heap row durable ⟹ its
  // store entries durable" an invariant of every flush attempt, even one a
  // fault aborts halfway. (Buffer-pool eviction can still leak a heap page
  // early — that residual window is what the ApplyInsert repair path
  // covers.) Cross-store consistency needs no ordering: a failed attempt
  // never advances clean_through_, so the WAL replays the affected records
  // against whichever subset landed.
  for (auto& per_phase : stores_) {
    for (auto& store : per_phase) {
      IDB_RETURN_IF_ERROR(store->Checkpoint());
    }
  }
  return heap_pool_->FlushAll();
}

Result<bool> TablePartition::CheckpointIfDirty(
    const std::vector<Lsn>& positions) {
  std::lock_guard<std::mutex> ckpt(ckpt_mu_);
  const uint64_t seq = mutation_seq_.load(std::memory_order_acquire);
  bool flushed = false;
  if (seq != flushed_seq_.load(std::memory_order_relaxed)) {
    IDB_RETURN_IF_ERROR(Checkpoint());
    // Mutations cannot land mid-flush (they need the exclusive latch), so
    // the flush covered everything through `seq`. A mutation applying
    // between the load above and the flush's latch acquisition is also on
    // disk now but stays conservatively unaccounted — the partition reads
    // as dirty again next time and re-flushes.
    flushed_seq_.store(seq, std::memory_order_release);
    flushed = true;
  }
  // Flushed or clean, the durable state now covers every record below the
  // begin positions (see the header's correctness argument).
  clean_through_ = positions;
  return flushed;
}

std::vector<Lsn> TablePartition::clean_through() const {
  std::lock_guard<std::mutex> ckpt(ckpt_mu_);
  return clean_through_;
}

Status TablePartition::Drop() {
  std::unique_lock<std::shared_mutex> latch(latch_);
  for (auto& per_phase : stores_) {
    for (auto& store : per_phase) {
      IDB_RETURN_IF_ERROR(store->Drop());
    }
  }
  stores_.clear();
  heap_.reset();
  heap_pool_.reset();
  heap_disk_.reset();
  index_pool_.reset();
  index_disk_.reset();
  return runtime_.env->RemoveDirRecursive(dir_);
}

// --- apply closures ----------------------------------------------------------------

Status TablePartition::ApplyInsert(RowId row_id, Micros insert_time,
                                   const std::vector<Value>& stable,
                                   const std::vector<Value>& degradable,
                                   bool degradable_available) {
  std::unique_lock<std::shared_mutex> latch(latch_);
  if (row_map_.count(row_id) != 0) {
    // Idempotent redo over a row the heap already holds — but not a blind
    // skip. A heap page can reach disk through buffer-pool eviction at any
    // time, independent of Checkpoint, so after a crash the heap may hold a
    // row whose store entries never became durable; skipping here would
    // freeze that shell with every degradable value at ⊥ forever. Re-offer
    // the values to the phase-0 stores instead. If ANY phase still holds
    // the row, nothing was lost (possibly it already degraded — a later
    // degrade record in log order re-converges), so only a row absent from
    // every phase is repaired. Append and the index OnInsert hooks are
    // idempotent, so a repeated redo stays a no-op.
    if (degradable_available &&
        runtime_.layout == DegradableLayout::kStateStores) {
      for (size_t d = 0; d < schema().degradable_columns().size(); ++d) {
        bool present = false;
        for (const auto& store : stores_[d]) {
          if (store->Find(row_id) != nullptr) {
            present = true;
            break;
          }
        }
        if (present) continue;
        IDB_RETURN_IF_ERROR(
            stores_[d][0]->Append({row_id, insert_time, degradable[d]}));
        if (!multires_.empty()) {
          IDB_RETURN_IF_ERROR(multires_[d]->OnInsert(row_id, degradable[d]));
        }
        if (!bitmaps_.empty()) {
          IDB_RETURN_IF_ERROR(bitmaps_[d]->OnInsert(row_id, degradable[d]));
        }
      }
      mutation_seq_.fetch_add(1, std::memory_order_release);
    }
    return Status::OK();
  }
  HeapTuple tuple;
  tuple.row_id = row_id;
  tuple.insert_time = insert_time;
  tuple.stable = stable;
  if (runtime_.layout == DegradableLayout::kInPlace) {
    tuple.degradable.resize(schema().degradable_columns().size());
    for (size_t d = 0; d < tuple.degradable.size(); ++d) {
      tuple.degradable[d].phase = 0;
      tuple.degradable[d].value =
          degradable_available ? degradable[d] : Value::Null();
    }
  }
  std::string encoded;
  EncodeHeapTuple(schema(), runtime_.layout, tuple, &encoded);
  IDB_ASSIGN_OR_RETURN(Rid rid, heap_->Insert(encoded));
  row_map_[row_id] = rid;
  max_row_id_ = std::max(max_row_id_, row_id);

  if (degradable_available) {
    for (size_t d = 0; d < schema().degradable_columns().size(); ++d) {
      if (runtime_.layout == DegradableLayout::kStateStores) {
        IDB_RETURN_IF_ERROR(
            stores_[d][0]->Append({row_id, insert_time, degradable[d]}));
      } else {
        inplace_queues_[d][0].emplace_back(row_id, insert_time);
      }
      if (!multires_.empty()) {
        IDB_RETURN_IF_ERROR(multires_[d]->OnInsert(row_id, degradable[d]));
      }
      if (!bitmaps_.empty()) {
        IDB_RETURN_IF_ERROR(bitmaps_[d]->OnInsert(row_id, degradable[d]));
      }
    }
  }
  ++stats_.inserts;
  mutation_seq_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status TablePartition::ApplyDelete(RowId row_id) {
  std::unique_lock<std::shared_mutex> latch(latch_);
  auto it = row_map_.find(row_id);
  if (it == row_map_.end()) return Status::OK();  // idempotent redo

  // Remove degradable values from stores + indexes.
  if (runtime_.layout == DegradableLayout::kStateStores) {
    for (size_t d = 0; d < stores_.size(); ++d) {
      for (size_t p = 0; p < stores_[d].size(); ++p) {
        const StoreEntry* entry = stores_[d][p]->Find(row_id);
        if (entry == nullptr) continue;
        const Value value = entry->value;
        if (!multires_.empty()) {
          IDB_RETURN_IF_ERROR(
              multires_[d]->OnDelete(row_id, static_cast<int>(p), value));
        }
        if (!bitmaps_.empty()) {
          IDB_RETURN_IF_ERROR(
              bitmaps_[d]->OnDelete(row_id, static_cast<int>(p), value));
        }
        IDB_RETURN_IF_ERROR(stores_[d][p]->SecureDeleteEntry(row_id));
        break;
      }
    }
  } else {
    IDB_ASSIGN_OR_RETURN(std::string record, heap_->Get(it->second));
    HeapTuple tuple;
    IDB_RETURN_IF_ERROR(
        DecodeHeapTuple(schema(), runtime_.layout, record, &tuple));
    for (size_t d = 0; d < tuple.degradable.size(); ++d) {
      const InlineDegradable& inline_value = tuple.degradable[d];
      if (inline_value.phase >=
          static_cast<int32_t>(inplace_queues_[d].size())) {
        continue;
      }
      if (!multires_.empty()) {
        IDB_RETURN_IF_ERROR(multires_[d]->OnDelete(
            row_id, inline_value.phase, inline_value.value));
      }
      if (!bitmaps_.empty()) {
        IDB_RETURN_IF_ERROR(bitmaps_[d]->OnDelete(
            row_id, inline_value.phase, inline_value.value));
      }
    }
  }
  IDB_RETURN_IF_ERROR(heap_->Delete(it->second));
  row_map_.erase(it);
  ++stats_.deletes;
  mutation_seq_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status TablePartition::ApplyUpdateStable(RowId row_id,
                                         const std::vector<Value>& stable) {
  std::unique_lock<std::shared_mutex> latch(latch_);
  auto it = row_map_.find(row_id);
  if (it == row_map_.end()) return Status::OK();  // idempotent redo
  IDB_ASSIGN_OR_RETURN(std::string record, heap_->Get(it->second));
  HeapTuple tuple;
  IDB_RETURN_IF_ERROR(
      DecodeHeapTuple(schema(), runtime_.layout, record, &tuple));
  tuple.stable = stable;
  std::string encoded;
  EncodeHeapTuple(schema(), runtime_.layout, tuple, &encoded);
  Rid new_rid;
  IDB_RETURN_IF_ERROR(heap_->Update(it->second, encoded, &new_rid));
  it->second = new_rid;
  mutation_seq_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

// --- read path ---------------------------------------------------------------------

Status TablePartition::ScanRows(const std::function<bool(const RowView&)>& fn,
                                bool* stopped) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  *stopped = false;
  Status decode_status;
  IDB_RETURN_IF_ERROR(heap_->Scan([&](Rid, Slice record) {
    HeapTuple tuple;
    decode_status = DecodeHeapTuple(schema(), runtime_.layout, record, &tuple);
    if (!decode_status.ok()) return false;
    RowView view;
    if (!AssembleRow(tuple, &view)) return true;  // skip unreadable row
    if (!fn(view)) {
      *stopped = true;
      return false;
    }
    return true;
  }));
  return decode_status;
}

std::vector<Morsel> TablePartition::MorselPlan(uint32_t pages_per_morsel) const {
  if (pages_per_morsel == 0) pages_per_morsel = kDefaultMorselPages;
  // num_pages is an atomic read; appends racing the plan land beyond the
  // snapshot and are covered by the open-ended last morsel.
  const PageId pages = heap_pool_->disk()->num_pages();
  std::vector<Morsel> plan;
  PageId begin = 0;
  do {
    Morsel m;
    m.partition = index_;
    m.begin_page = begin;
    begin += pages_per_morsel;
    m.end_page = begin < pages ? begin : kInvalidPageId;
    plan.push_back(m);
  } while (begin < pages);
  return plan;
}

Status TablePartition::ScanBatch(Rid* pos, size_t limit,
                                 std::vector<RowView>* out, bool* done) const {
  return ScanBatch(pos, kInvalidPageId, limit, out, done);
}

Status TablePartition::ScanBatch(Rid* pos, PageId end_page, size_t limit,
                                 std::vector<RowView>* out, bool* done) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  *done = true;
  const size_t start_size = out->size();
  Status decode_status;
  IDB_RETURN_IF_ERROR(heap_->ScanRange(*pos, end_page, [&](Rid rid, Slice record) {
    if (out->size() - start_size >= limit) {
      *pos = rid;  // resume here: this record has not been consumed
      *done = false;
      return false;
    }
    HeapTuple tuple;
    decode_status = DecodeHeapTuple(schema(), runtime_.layout, record, &tuple);
    if (!decode_status.ok()) return false;
    RowView view;
    if (AssembleRow(tuple, &view)) out->push_back(std::move(view));
    return true;
  }));
  return decode_status;
}

Status TablePartition::ScanBatchFiltered(Rid* pos, size_t limit,
                                         const ScanSpec& spec,
                                         ScanWorkspace* ws,
                                         std::vector<RowView>* out, bool* done,
                                         ScanDeltas* deltas) const {
  return ScanBatchFiltered(pos, kInvalidPageId, limit, spec, ws, out, done,
                           deltas);
}

Status TablePartition::ScanBatchFiltered(Rid* pos, PageId end_page,
                                         size_t limit, const ScanSpec& spec,
                                         ScanWorkspace* ws,
                                         std::vector<RowView>* out, bool* done,
                                         ScanDeltas* deltas) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  return ScanChunkLocked(pos, end_page, limit, spec, ws, out, done, deltas);
}

Status TablePartition::ScanFiltered(
    const ScanSpec& spec, ScanWorkspace* ws,
    const std::function<Status(const std::vector<RowView>&)>& fn,
    ScanDeltas* deltas) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  Rid pos{0, 0};
  bool done = false;
  std::vector<RowView> views;
  while (!done) {
    IDB_RETURN_IF_ERROR(ScanChunkLocked(&pos, kInvalidPageId, kScanChunkRows,
                                        spec, ws, &views, &done, deltas));
    if (!views.empty()) IDB_RETURN_IF_ERROR(fn(views));
  }
  return Status::OK();
}

Status TablePartition::ScanChunkLocked(Rid* pos, PageId end_page, size_t limit,
                                       const ScanSpec& spec, ScanWorkspace* ws,
                                       std::vector<RowView>* out, bool* done,
                                       ScanDeltas* deltas) const {
  *done = true;
  ws->count = 0;
  Status decode_status;
  IDB_RETURN_IF_ERROR(heap_->ScanRange(*pos, end_page, [&](Rid rid, Slice record) {
    if (ws->count >= limit) {
      *pos = rid;  // resume here: this record has not been consumed
      *done = false;
      return false;
    }
    if (ws->count == ws->tuples.size()) ws->tuples.emplace_back();
    decode_status = DecodeHeapTuple(schema(), runtime_.layout, record,
                                    &ws->tuples[ws->count]);
    if (!decode_status.ok()) return false;
    ++ws->count;
    return true;
  }));
  IDB_RETURN_IF_ERROR(decode_status);
  AssembleSurvivorsLocked(spec, ws, out, deltas);
  return Status::OK();
}

void TablePartition::AssembleSurvivorsLocked(const ScanSpec& spec,
                                             ScanWorkspace* ws,
                                             std::vector<RowView>* out,
                                             ScanDeltas* deltas) const {
  const size_t n = ws->count;
  const auto& degradable_cols = schema().degradable_columns();
  const size_t dcols = degradable_cols.size();

  ws->selection.clear();
  if (spec.filter != nullptr) {
    spec.filter->SelectStable(ws->tuples.data(), n, &ws->selection);
  } else {
    ws->selection.resize(n);
    for (size_t i = 0; i < n; ++i) ws->selection[i] = static_cast<uint32_t>(i);
  }
  const size_t survivors = ws->selection.size();

  deltas->rows_scanned += n;
  deltas->rows_prefiltered += n - survivors;
  deltas->probes_skipped += (n - survivors) * dcols;
  if (spec.need_degradable) {
    deltas->probes_issued += survivors * dcols;
  } else {
    deltas->probes_skipped += survivors * dcols;
  }

  // Replace semantics with slot recycling: the overlapping prefix of the
  // caller's vector keeps its per-row vector capacity across batches.
  if (out->size() > survivors) out->resize(survivors);
  while (out->size() < survivors) out->emplace_back();

  for (size_t k = 0; k < survivors; ++k) {
    const HeapTuple& tuple = ws->tuples[ws->selection[k]];
    RowView& view = (*out)[k];
    view.row_id = tuple.row_id;
    view.insert_time = tuple.insert_time;
    view.values.assign(schema().num_columns(), Value::Null());
    for (size_t i = 0; i < schema().stable_columns().size(); ++i) {
      view.values[schema().stable_columns()[i]] = tuple.stable[i];
    }
    view.phases.assign(dcols, 0);
  }
  if (!spec.need_degradable || dcols == 0 || survivors == 0) return;

  if (runtime_.layout == DegradableLayout::kInPlace) {
    for (size_t k = 0; k < survivors; ++k) {
      const HeapTuple& tuple = ws->tuples[ws->selection[k]];
      RowView& view = (*out)[k];
      for (size_t d = 0; d < dcols; ++d) {
        const InlineDegradable& inline_value = tuple.degradable[d];
        view.phases[d] = inline_value.phase;
        if (inline_value.phase <
            schema().column(degradable_cols[d]).lcp.num_phases()) {
          view.values[degradable_cols[d]] = inline_value.value;
        }
      }
    }
    return;
  }

  // kStateStores: one sorted merge per (column, phase) store over the
  // survivors' ascending row ids. Heap order is mostly — but not strictly —
  // ascending (updates relocate rows), hence the sort.
  ws->order.resize(survivors);
  for (size_t k = 0; k < survivors; ++k) ws->order[k] = static_cast<uint32_t>(k);
  std::sort(ws->order.begin(), ws->order.end(), [&](uint32_t a, uint32_t b) {
    return ws->tuples[ws->selection[a]].row_id <
           ws->tuples[ws->selection[b]].row_id;
  });
  ws->ids.resize(survivors);
  for (size_t j = 0; j < survivors; ++j) {
    ws->ids[j] = ws->tuples[ws->selection[ws->order[j]]].row_id;
  }
  for (size_t d = 0; d < dcols; ++d) {
    const int removed = schema().column(degradable_cols[d]).lcp.num_phases();
    ws->entries.assign(survivors, nullptr);
    ws->phases.assign(survivors, removed);
    size_t found = 0;
    for (size_t p = 0; p < stores_[d].size() && found < survivors; ++p) {
      const size_t hits =
          stores_[d][p]->FindMany(ws->ids.data(), survivors, ws->entries.data());
      if (hits == 0) continue;
      found += hits;
      for (size_t j = 0; j < survivors; ++j) {
        if (ws->phases[j] == removed && ws->entries[j] != nullptr) {
          ws->phases[j] = static_cast<int>(p);
        }
      }
    }
    for (size_t j = 0; j < survivors; ++j) {
      RowView& view = (*out)[ws->order[j]];
      view.phases[d] = ws->phases[j];
      if (ws->entries[j] != nullptr) {
        view.values[degradable_cols[d]] = ws->entries[j]->value;
      }
    }
  }
}

Status TablePartition::ProbeMany(const std::vector<RowId>& row_ids,
                                 std::vector<int>* phases,
                                 std::vector<Value>* values) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  const auto& degradable_cols = schema().degradable_columns();
  const size_t dcols = degradable_cols.size();
  const size_t n = row_ids.size();
  phases->assign(n * dcols, 0);
  values->assign(n * dcols, Value::Null());
  if (n == 0 || dcols == 0) return Status::OK();

  if (runtime_.layout == DegradableLayout::kInPlace) {
    for (size_t i = 0; i < n; ++i) {
      auto it = row_map_.find(row_ids[i]);
      HeapTuple tuple;
      bool live = false;
      if (it != row_map_.end()) {
        IDB_ASSIGN_OR_RETURN(std::string record, heap_->Get(it->second));
        IDB_RETURN_IF_ERROR(
            DecodeHeapTuple(schema(), runtime_.layout, record, &tuple));
        live = true;
      }
      for (size_t d = 0; d < dcols; ++d) {
        const int removed =
            schema().column(degradable_cols[d]).lcp.num_phases();
        if (!live) {
          (*phases)[i * dcols + d] = removed;
          continue;
        }
        (*phases)[i * dcols + d] = tuple.degradable[d].phase;
        if (tuple.degradable[d].phase < removed) {
          (*values)[i * dcols + d] = tuple.degradable[d].value;
        }
      }
    }
    return Status::OK();
  }

  std::vector<const StoreEntry*> entries(n, nullptr);
  std::vector<int> resolved(n, 0);
  for (size_t d = 0; d < dcols; ++d) {
    const int removed = schema().column(degradable_cols[d]).lcp.num_phases();
    entries.assign(n, nullptr);
    resolved.assign(n, removed);
    size_t found = 0;
    for (size_t p = 0; p < stores_[d].size() && found < n; ++p) {
      const size_t hits =
          stores_[d][p]->FindMany(row_ids.data(), n, entries.data());
      if (hits == 0) continue;
      found += hits;
      for (size_t i = 0; i < n; ++i) {
        if (resolved[i] == removed && entries[i] != nullptr) {
          resolved[i] = static_cast<int>(p);
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      (*phases)[i * dcols + d] = resolved[i];
      if (entries[i] != nullptr) {
        (*values)[i * dcols + d] = entries[i]->value;
      }
    }
  }
  return Status::OK();
}

bool TablePartition::AssembleRow(const HeapTuple& tuple, RowView* view) const {
  view->row_id = tuple.row_id;
  view->insert_time = tuple.insert_time;
  view->values.assign(schema().num_columns(), Value::Null());
  for (size_t i = 0; i < schema().stable_columns().size(); ++i) {
    view->values[schema().stable_columns()[i]] = tuple.stable[i];
  }
  const auto& degradable_cols = schema().degradable_columns();
  view->phases.assign(degradable_cols.size(), 0);
  for (size_t d = 0; d < degradable_cols.size(); ++d) {
    const ColumnDef& col = schema().column(degradable_cols[d]);
    if (runtime_.layout == DegradableLayout::kStateStores) {
      int phase = col.lcp.num_phases();  // removed unless found
      for (size_t p = 0; p < stores_[d].size(); ++p) {
        const StoreEntry* entry = stores_[d][p]->Find(tuple.row_id);
        if (entry != nullptr) {
          phase = static_cast<int>(p);
          view->values[degradable_cols[d]] = entry->value;
          break;
        }
      }
      view->phases[d] = phase;
    } else {
      const InlineDegradable& inline_value = tuple.degradable[d];
      view->phases[d] = inline_value.phase;
      if (inline_value.phase < col.lcp.num_phases()) {
        view->values[degradable_cols[d]] = inline_value.value;
      }
    }
  }
  return true;
}

Result<std::optional<RowView>> TablePartition::GetRow(RowId row_id) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  auto it = row_map_.find(row_id);
  if (it == row_map_.end()) return std::optional<RowView>{};
  IDB_ASSIGN_OR_RETURN(std::string record, heap_->Get(it->second));
  HeapTuple tuple;
  IDB_RETURN_IF_ERROR(
      DecodeHeapTuple(schema(), runtime_.layout, record, &tuple));
  RowView view;
  AssembleRow(tuple, &view);
  return std::optional<RowView>(std::move(view));
}

bool TablePartition::Contains(RowId row_id) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  return row_map_.count(row_id) != 0;
}

std::vector<std::pair<int, int>> TablePartition::StoresHolding(
    RowId row_id) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  std::vector<std::pair<int, int>> holding;
  for (size_t d = 0; d < stores_.size(); ++d) {
    const int col_idx = schema().degradable_columns()[d];
    for (size_t p = 0; p < stores_[d].size(); ++p) {
      if (stores_[d][p]->Find(row_id) != nullptr) {
        holding.emplace_back(col_idx, static_cast<int>(p));
        break;
      }
    }
  }
  return holding;
}

uint64_t TablePartition::live_rows() const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  return row_map_.size();
}

Status TablePartition::IndexLookupEqual(int column, const Value& value,
                                        int level,
                                        std::vector<RowId>* out) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  const int ordinal = schema().DegradableOrdinal(column);
  if (ordinal < 0 || multires_.empty()) {
    return Status::InvalidArgument("no multi-resolution index on column");
  }
  return multires_[ordinal]->LookupEqual(value, level, [&](RowId rid) {
    out->push_back(rid);
    return true;
  });
}

Status TablePartition::IndexLookupRange(int column, const Value& lo,
                                        const Value& hi, int level,
                                        std::vector<RowId>* out) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  const int ordinal = schema().DegradableOrdinal(column);
  if (ordinal < 0 || multires_.empty()) {
    return Status::InvalidArgument("no multi-resolution index on column");
  }
  return multires_[ordinal]->LookupRange(lo, hi, level, [&](RowId rid) {
    out->push_back(rid);
    return true;
  });
}

Result<Bitmap> TablePartition::BitmapLookupEqual(int column, const Value& value,
                                                 int level) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  const int ordinal = schema().DegradableOrdinal(column);
  if (ordinal < 0 || bitmaps_.empty()) {
    return Status::InvalidArgument("no bitmap index on column");
  }
  return bitmaps_[ordinal]->LookupEqual(value, level);
}

// --- degradation ----------------------------------------------------------------------

Micros TablePartition::StoreHeadDeadline(int ordinal, int phase) const {
  const ColumnDef& col =
      schema().column(schema().degradable_columns()[ordinal]);
  Micros head_insert = kForever;
  if (runtime_.layout == DegradableLayout::kStateStores) {
    if (stores_[ordinal][phase]->empty()) return kForever;
    head_insert = stores_[ordinal][phase]->Head().insert_time;
  } else {
    if (inplace_queues_[ordinal][phase].empty()) return kForever;
    head_insert = inplace_queues_[ordinal][phase].front().second;
  }
  const Micros offset = col.lcp.PhaseEndOffset(phase);
  if (offset == kForever) return kForever;
  return head_insert + offset;
}

TablePartition::PendingDegrade TablePartition::MostOverdue() const {
  PendingDegrade best;
  for (size_t d = 0; d < schema().degradable_columns().size(); ++d) {
    const ColumnDef& col = schema().column(schema().degradable_columns()[d]);
    for (int p = 0; p < col.lcp.num_phases(); ++p) {
      const Micros deadline = StoreHeadDeadline(static_cast<int>(d), p);
      if (deadline < best.deadline) {
        best = {schema().degradable_columns()[d], p, deadline};
      }
    }
  }
  return best;
}

Micros TablePartition::NextDeadline() const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  return MostOverdue().deadline;
}

bool TablePartition::HasWorkAt(Micros now) const {
  return NextDeadline() <= now;
}

Result<size_t> TablePartition::RunDegradationStep(TransactionManager* tm,
                                                  Micros now,
                                                  size_t batch_limit,
                                                  bool* stepped_phase0) {
  *stepped_phase0 = false;
  PendingDegrade target;
  {
    std::shared_lock<std::shared_mutex> latch(latch_);
    target = MostOverdue();
  }
  if (target.deadline > now) return size_t{0};

  const int col_idx = target.column;
  const int ordinal = schema().DegradableOrdinal(col_idx);
  const ColumnDef& col = schema().column(col_idx);
  const int from_phase = target.phase;
  const int to_phase = from_phase + 1;  // == num_phases means ⊥
  const bool removal = to_phase >= col.lcp.num_phases();

  auto txn = tm->Begin();
  Status lock_status = txn->Lock(
      LockKey::Store(id(), col_idx, from_phase, index_), LockMode::kExclusive);
  if (lock_status.ok() && !removal) {
    lock_status = txn->Lock(LockKey::Store(id(), col_idx, to_phase, index_),
                            LockMode::kExclusive);
  }
  if (!lock_status.ok()) {
    tm->Abort(txn.get());
    return lock_status;
  }

  // Collect the overdue prefix under the shared latch.
  std::vector<StoreEntry> moves;      // entries with generalized values
  std::vector<Value> old_values;
  std::vector<Micros> deadlines;
  RowId up_to = 0;
  {
    std::shared_lock<std::shared_mutex> latch(latch_);
    const Micros offset = col.lcp.PhaseEndOffset(from_phase);
    auto consider = [&](RowId row_id, Micros insert_time,
                        const Value& value) {
      const Micros deadline = insert_time + offset;
      if (deadline > now || moves.size() >= batch_limit) return false;
      StoreEntry moved{row_id, insert_time, Value::Null()};
      if (!removal) {
        auto generalized = col.hierarchy->Generalize(
            value, col.lcp.phase(from_phase).level,
            col.lcp.phase(to_phase).level);
        if (!generalized.ok()) return false;
        moved.value = *generalized;
      }
      moves.push_back(std::move(moved));
      old_values.push_back(value);
      deadlines.push_back(deadline);
      up_to = row_id;
      return true;
    };
    if (runtime_.layout == DegradableLayout::kStateStores) {
      stores_[ordinal][from_phase]->ForEach([&](const StoreEntry& entry) {
        return consider(entry.row_id, entry.insert_time, entry.value);
      });
    } else {
      for (const auto& [row_id, insert_time] :
           inplace_queues_[ordinal][from_phase]) {
        auto it = row_map_.find(row_id);
        if (it == row_map_.end()) {
          // Row deleted; schedule entry is stale. Treat as a zero-cost move
          // so the queue drains.
          const Micros deadline = insert_time + col.lcp.PhaseEndOffset(from_phase);
          if (deadline > now || moves.size() >= batch_limit) break;
          moves.push_back({row_id, insert_time, Value::Null()});
          old_values.push_back(Value::Null());
          deadlines.push_back(deadline);
          up_to = row_id;
          continue;
        }
        auto record = heap_->Get(it->second);
        if (!record.ok()) break;
        HeapTuple tuple;
        if (!DecodeHeapTuple(schema(), runtime_.layout, *record, &tuple).ok()) {
          break;
        }
        if (!consider(row_id, insert_time,
                      tuple.degradable[ordinal].value)) {
          break;
        }
      }
    }
  }
  if (moves.empty()) {
    tm->Abort(txn.get());
    return size_t{0};
  }

  WalRecord record;
  record.type = WalRecordType::kDegradeStep;
  record.table = id();
  record.column = col_idx;
  record.from_phase = from_phase;
  record.to_phase = to_phase;
  record.up_to_row_id = up_to;
  // Removal steps log Null values: redo still needs the row ids to expire
  // tuples, and a NULL leaks nothing. Redo routes the record back to this
  // partition by hashing the row ids carried in `entries`.
  record.entries = moves;

  const size_t moved = moves.size();
  txn->AddOp(std::move(record),
             [this, col_idx, from_phase, to_phase, up_to, moves, old_values] {
               return ApplyDegrade(col_idx, from_phase, to_phase, up_to, moves,
                                   &old_values);
             });
  IDB_RETURN_IF_ERROR(tm->Commit(txn.get()));

  {
    std::unique_lock<std::shared_mutex> latch(latch_);
    for (size_t i = 0; i < deadlines.size(); ++i) {
      lateness_.Add(static_cast<double>(now - deadlines[i]));
    }
    ++stats_.degrade_steps;
    if (removal) {
      stats_.values_removed += moved;
    } else {
      stats_.values_degraded += moved;
    }
  }

  *stepped_phase0 = from_phase == 0;
  return moved;
}

Status TablePartition::ApplyDegrade(int col_idx, int from_phase, int to_phase,
                                    RowId up_to,
                                    const std::vector<StoreEntry>& moves,
                                    const std::vector<Value>* old_values) {
  std::unique_lock<std::shared_mutex> latch(latch_);
  const int ordinal = schema().DegradableOrdinal(col_idx);
  const ColumnDef& col = schema().column(col_idx);
  const bool removal = to_phase >= col.lcp.num_phases();
  const bool update_indexes = old_values != nullptr && !multires_.empty();

  if (runtime_.layout == DegradableLayout::kStateStores) {
    // Pop exactly the collected entries. A prefix pop through `up_to` would
    // also destroy an out-of-order append that landed below `up_to` between
    // this step's collect and apply — that entry was never generalized and
    // must stay for a later step. (`up_to` remains in the WAL record for
    // observability; redo pops by the entry ids too.)
    (void)up_to;
    // Apply order: append and index updates FIRST, pops LAST. Every sub-step
    // can fail on an I/O error after the WAL record has already committed,
    // so the order is chosen to make any partial state self-healing: a fault
    // before the pop leaves the value in the from-phase store, where its
    // overdue deadline keeps it visible to the next degradation pass, which
    // re-collects and re-applies the step — Append of a present id, the
    // index OnDegrade hooks, and PopById of an absent id are all idempotent,
    // so the retry (or WAL redo after a crash) converges to the fully
    // applied state. Pop-first turned the same fault into permanent loss:
    // a popped-but-never-appended value vanished from every store, and no
    // later pass could find it again (the audit saw the heap shell with all
    // values at ⊥). The cost is a transient window where a value exists in
    // two stores at once — over-accurate, never under-durable — which the
    // retry erases.
    for (size_t i = 0; i < moves.size(); ++i) {
      const StoreEntry& move = moves[i];
      // A row deleted between collect and apply must not resurface.
      const bool row_live = row_map_.count(move.row_id) != 0;
      if (!removal && row_live) {
        IDB_RETURN_IF_ERROR(stores_[ordinal][to_phase]->Append(move));
      }
      if (update_indexes && row_live) {
        IDB_RETURN_IF_ERROR(multires_[ordinal]->OnDegrade(
            move.row_id, from_phase, (*old_values)[i], to_phase, move.value));
        if (!bitmaps_.empty()) {
          IDB_RETURN_IF_ERROR(bitmaps_[ordinal]->OnDegrade(
              move.row_id, from_phase, (*old_values)[i], to_phase,
              move.value));
        }
      }
    }
    for (const StoreEntry& move : moves) {
      IDB_RETURN_IF_ERROR(stores_[ordinal][from_phase]->PopById(move.row_id));
    }
    if (removal) {
      // Expiry last: MaybeExpireTupleLocked only removes the heap shell once
      // every store has dropped the row, so it must run after the pops.
      for (const StoreEntry& move : moves) {
        if (row_map_.count(move.row_id) != 0) {
          IDB_RETURN_IF_ERROR(MaybeExpireTupleLocked(move.row_id));
        }
      }
    }
    mutation_seq_.fetch_add(1, std::memory_order_release);
    return Status::OK();
  }

  // In-place layout: rewrite heap tuples and advance the schedule queues.
  // Queue entries are removed by id, not as a positional prefix: concurrent
  // commits can enqueue slightly out of row-id order, and `up_to` alone
  // would then drop a not-yet-moved neighbour.
  auto& queue = inplace_queues_[ordinal][from_phase];
  {
    std::unordered_set<RowId> moved_ids;
    for (const StoreEntry& move : moves) moved_ids.insert(move.row_id);
    for (auto it = queue.begin(); it != queue.end() && !moved_ids.empty();) {
      if (moved_ids.erase(it->first) != 0) {
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (size_t i = 0; i < moves.size(); ++i) {
    const StoreEntry& move = moves[i];
    auto it = row_map_.find(move.row_id);
    if (it == row_map_.end()) continue;  // deleted meanwhile / stale redo
    IDB_ASSIGN_OR_RETURN(std::string record, heap_->Get(it->second));
    HeapTuple tuple;
    IDB_RETURN_IF_ERROR(
        DecodeHeapTuple(schema(), runtime_.layout, record, &tuple));
    if (tuple.degradable[ordinal].phase != from_phase) continue;  // stale redo
    const Value old_value = tuple.degradable[ordinal].value;
    tuple.degradable[ordinal].phase = to_phase;
    tuple.degradable[ordinal].value = removal ? Value::Null() : move.value;
    std::string encoded;
    EncodeHeapTuple(schema(), runtime_.layout, tuple, &encoded);
    Rid new_rid;
    IDB_RETURN_IF_ERROR(heap_->Update(it->second, encoded, &new_rid));
    it->second = new_rid;
    if (!removal) {
      inplace_queues_[ordinal][to_phase].emplace_back(move.row_id,
                                                      move.insert_time);
    }
    if (update_indexes) {
      IDB_RETURN_IF_ERROR(multires_[ordinal]->OnDegrade(
          move.row_id, from_phase, old_value, to_phase, move.value));
      if (!bitmaps_.empty()) {
        IDB_RETURN_IF_ERROR(bitmaps_[ordinal]->OnDegrade(
            move.row_id, from_phase, old_value, to_phase, move.value));
      }
    }
    if (removal) {
      IDB_RETURN_IF_ERROR(MaybeExpireTupleLocked(move.row_id));
    }
  }
  mutation_seq_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status TablePartition::MaybeExpireTupleLocked(RowId row_id) {
  auto it = row_map_.find(row_id);
  if (it == row_map_.end()) return Status::OK();
  if (runtime_.layout == DegradableLayout::kStateStores) {
    for (const auto& per_phase : stores_) {
      for (const auto& store : per_phase) {
        if (store->Find(row_id) != nullptr) return Status::OK();
      }
    }
  } else {
    IDB_ASSIGN_OR_RETURN(std::string record, heap_->Get(it->second));
    HeapTuple tuple;
    IDB_RETURN_IF_ERROR(
        DecodeHeapTuple(schema(), runtime_.layout, record, &tuple));
    for (size_t d = 0; d < tuple.degradable.size(); ++d) {
      const ColumnDef& col =
          schema().column(schema().degradable_columns()[d]);
      if (tuple.degradable[d].phase < col.lcp.num_phases()) {
        return Status::OK();
      }
    }
  }
  // Every degradable attribute reached ⊥: the tuple disappears, stable part
  // included (paper §II "up to disappearance from the database").
  IDB_RETURN_IF_ERROR(heap_->Delete(it->second));
  row_map_.erase(it);
  ++stats_.tuples_expired;
  return Status::OK();
}

Micros TablePartition::SafeEpochTime() const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  Micros safe = runtime_.clock->NowMicros();
  for (size_t d = 0; d < schema().degradable_columns().size(); ++d) {
    Micros head = kForever;
    if (runtime_.layout == DegradableLayout::kStateStores) {
      // Exact minimum, not Head(): the mirror is sorted by row id, and an
      // out-of-order commit can put an earlier insert_time behind the head.
      // Destroying an epoch key while such a value is still accurate would
      // make it unrecoverable after a crash.
      head = stores_[d][0]->MinInsertTime();
    } else {
      for (const auto& [row_id, insert_time] : inplace_queues_[d][0]) {
        head = std::min(head, insert_time);
      }
    }
    safe = std::min(safe, head);
  }
  return safe;
}

TablePartition::IndexAuditCounts TablePartition::AuditIndexes() const {
  IndexAuditCounts counts;
  if (multires_.empty()) return counts;
  // ONE shared-latch acquisition for the whole reconciliation: degrade
  // steps move store entries and index postings together under the
  // exclusive latch, so any two-acquisition scheme would race a live
  // degrader into false positives.
  std::shared_lock<std::shared_mutex> latch(latch_);
  const auto& degradable = schema().degradable_columns();
  std::vector<std::vector<uint64_t>> actual(degradable.size());
  for (size_t d = 0; d < degradable.size(); ++d) {
    const int num_phases = schema().column(degradable[d]).lcp.num_phases();
    actual[d].assign(num_phases, 0);
    if (runtime_.layout == DegradableLayout::kStateStores) {
      for (int p = 0; p < num_phases; ++p) actual[d][p] = stores_[d][p]->size();
    }
  }
  if (runtime_.layout == DegradableLayout::kInPlace) {
    // The schedule queues are lazy (deleted rows linger until their phase
    // mismatch is seen), so the heap is the authority on phase membership.
    for (const auto& [row_id, rid] : row_map_) {
      auto record = heap_->Get(rid);
      if (!record.ok()) continue;
      HeapTuple tuple;
      if (!DecodeHeapTuple(schema(), runtime_.layout, *record, &tuple).ok()) {
        continue;
      }
      for (size_t d = 0; d < tuple.degradable.size(); ++d) {
        const int phase = tuple.degradable[d].phase;
        if (phase < static_cast<int>(actual[d].size())) ++actual[d][phase];
      }
    }
  }
  for (size_t d = 0; d < degradable.size(); ++d) {
    for (size_t p = 0; p < actual[d].size(); ++p) {
      const uint64_t indexed = multires_[d]->EntriesInPhase(static_cast<int>(p));
      if (indexed > actual[d][p]) {
        // Postings claiming accuracy the data has lost: the privacy breach.
        counts.stale += indexed - actual[d][p];
      } else {
        counts.missing += actual[d][p] - indexed;
      }
    }
  }
  return counts;
}

TablePartition::Stats TablePartition::stats() const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  return stats_;
}

Histogram TablePartition::lateness_histogram() const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  return lateness_;
}

}  // namespace instantdb
