#include "db/table.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"
#include "io/env.h"
#include "util/parallel.h"

namespace instantdb {

Table::Table(const TableDef* def, std::string dir, const TableRuntime& runtime)
    : def_(def), dir_(std::move(dir)), runtime_(runtime) {
  if (runtime_.env == nullptr) runtime_.env = Env::Default();
}

Table::~Table() = default;

std::string Table::PartitionDir(uint32_t index) const {
  // A single partition keeps the unpartitioned on-disk layout (files
  // directly under the table directory).
  if (runtime_.partitions <= 1) return dir_;
  return dir_ + StringPrintf("/p%u", index);
}

Status Table::Open() {
  if (runtime_.partitions == 0 || runtime_.partitions > kMaxPartitions) {
    return Status::InvalidArgument("bad partition count");
  }
  IDB_RETURN_IF_ERROR(runtime_.env->CreateDirs(dir_));

  // The partition count is a physical property of the table: row-id routing
  // must match whatever layout is on disk, so the count chosen at creation
  // wins over a later DbOptions change.
  if (runtime_.env->FileExists(PartitionCountPath())) {
    IDB_ASSIGN_OR_RETURN(std::string text,
                         runtime_.env->ReadFileToString(PartitionCountPath()));
    char* end = nullptr;
    const unsigned long persisted = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || persisted == 0 ||
        persisted > kMaxPartitions) {
      return Status::Corruption("bad PARTITIONS file for table " +
                                def_->name);
    }
    runtime_.partitions = static_cast<uint32_t>(persisted);
  } else {
    // No PARTITIONS file: either a fresh table, or one from before
    // partitioning existed. Pin a pre-existing layout rather than trusting
    // DbOptions — re-routing would orphan every stored row.
    if (runtime_.env->FileExists(dir_ + "/heap.db")) {
      runtime_.partitions = 1;  // legacy unpartitioned layout
    } else if (runtime_.env->FileExists(dir_ + "/p0")) {
      // PARTITIONS file lost but partition dirs present: recover the count
      // only if the dirs are unambiguous (contiguous p0..pN-1, N >= 2).
      // Guessing across a gap — a partially restored table — would pin a
      // wrong count and silently mis-route rows forever.
      IDB_ASSIGN_OR_RETURN(auto names, runtime_.env->ListDir(dir_));
      uint32_t max_index = 0;
      uint32_t count = 0;
      for (const std::string& name : names) {
        if (name.size() < 2 || name[0] != 'p') continue;
        char* end = nullptr;
        const unsigned long index = std::strtoul(name.c_str() + 1, &end, 10);
        if (*end != '\0') continue;
        ++count;
        max_index = std::max(max_index, static_cast<uint32_t>(index));
      }
      if (count != max_index + 1 || count < 2 || count > kMaxPartitions) {
        return Status::Corruption(
            "PARTITIONS file missing and partition directories are "
            "ambiguous for table " + def_->name);
      }
      runtime_.partitions = count;
    }
    IDB_RETURN_IF_ERROR(runtime_.env->WriteStringToFile(
        PartitionCountPath(), std::to_string(runtime_.partitions),
        /*sync=*/true));
  }

  partitions_.clear();
  for (uint32_t i = 0; i < runtime_.partitions; ++i) {
    auto partition = std::make_unique<TablePartition>(def_, PartitionDir(i),
                                                      runtime_, i);
    IDB_RETURN_IF_ERROR(partition->Open());
    partitions_.push_back(std::move(partition));
  }
  return Status::OK();
}

Status Table::RebuildIndexes(size_t worker_threads) {
  // Partitions own disjoint physical state, so their rebuilds are
  // embarrassingly parallel; the pool mirrors the degradation worker pool
  // (the database passes the same size).
  return ParallelFor(worker_threads, partitions_.size(),
                     [this](size_t i) { return partitions_[i]->RebuildIndexes(); });
}

Status Table::Drop() {
  for (auto& partition : partitions_) {
    IDB_RETURN_IF_ERROR(partition->Drop());
  }
  partitions_.clear();
  return runtime_.env->RemoveDirRecursive(dir_);
}

// --- DML -------------------------------------------------------------------------

Result<RowId> Table::Insert(Transaction* txn, const std::vector<Value>& row) {
  IDB_RETURN_IF_ERROR(schema().ValidateInsertRow(row));
  const Micros now = runtime_.clock->NowMicros();

  // Batch-affine allocation: every insert of this transaction draws from
  // one partition's allocator (rotating across transactions), so the whole
  // batch commits through one partition latch and one WAL stream.
  const uint32_t affine = txn->InsertPartition(id(), [this] {
    return next_affine_.fetch_add(1, std::memory_order_relaxed) %
           static_cast<uint32_t>(partitions_.size());
  });
  TablePartition* partition = partitions_[affine].get();
  const RowId row_id = partition->AllocateRowId();
  IDB_RETURN_IF_ERROR(txn->Lock(LockKey::Row(id(), row_id), LockMode::kExclusive));

  WalRecord record;
  record.type = WalRecordType::kInsert;
  record.table = id();
  record.row_id = row_id;
  record.insert_time = now;
  for (int idx : schema().stable_columns()) record.stable.push_back(row[idx]);
  for (int idx : schema().degradable_columns()) {
    // Inserts arrive at full accuracy, but a policy may start coarser than
    // leaf level ("never store exact addresses"): generalize immediately so
    // the accurate form never reaches storage or the WAL.
    const ColumnDef& col = schema().column(idx);
    const int first_level = col.lcp.phase(0).level;
    if (first_level > 0) {
      IDB_ASSIGN_OR_RETURN(Value coarse,
                           col.hierarchy->Generalize(row[idx], 0, first_level));
      record.degradable.push_back(std::move(coarse));
    } else {
      record.degradable.push_back(row[idx]);
    }
    // Earliest phase-0 deadline this record's payload carries: the WAL
    // streams fold it into a per-segment minimum for the deletion-assurance
    // audit ("does any live segment hold an accurate value past its
    // deadline?").
    const Micros phase0 = col.lcp.PhaseEndOffset(0);
    if (phase0 != kForever) {
      record.payload_deadline = std::min(record.payload_deadline, now + phase0);
    }
  }
  std::vector<Value> stable = record.stable;
  std::vector<Value> degradable = record.degradable;
  txn->AddOp(std::move(record),
             [partition, row_id, now, stable = std::move(stable),
              degradable = std::move(degradable)] {
               return partition->ApplyInsert(row_id, now, stable, degradable,
                                             /*degradable_available=*/true);
             });
  return row_id;
}

Status Table::Delete(Transaction* txn, RowId row_id) {
  IDB_RETURN_IF_ERROR(txn->Lock(LockKey::Row(id(), row_id), LockMode::kExclusive));
  TablePartition* partition = Route(row_id);
  if (!partition->Contains(row_id)) {
    return Status::NotFound("no such row");
  }
  // Serialize against degradation steps touching this row's stores (the
  // store lock keys carry the partition index, so only this partition's
  // degrader conflicts).
  for (const auto& [col_idx, phase] : partition->StoresHolding(row_id)) {
    IDB_RETURN_IF_ERROR(
        txn->Lock(LockKey::Store(id(), col_idx, phase, partition->index()),
                  LockMode::kExclusive));
  }
  WalRecord record;
  record.type = WalRecordType::kDelete;
  record.table = id();
  record.row_id = row_id;
  txn->AddOp(std::move(record),
             [partition, row_id] { return partition->ApplyDelete(row_id); });
  return Status::OK();
}

Status Table::UpdateStable(Transaction* txn, RowId row_id,
                           const std::vector<Value>& stable) {
  if (stable.size() != schema().stable_columns().size()) {
    return Status::InvalidArgument("stable value count mismatch");
  }
  for (size_t i = 0; i < stable.size(); ++i) {
    const ColumnDef& col = schema().column(schema().stable_columns()[i]);
    if (!stable[i].is_null() && stable[i].type() != col.type) {
      return Status::InvalidArgument("stable type mismatch for " + col.name);
    }
  }
  IDB_RETURN_IF_ERROR(txn->Lock(LockKey::Row(id(), row_id), LockMode::kExclusive));
  TablePartition* partition = Route(row_id);
  if (!partition->Contains(row_id)) return Status::NotFound("no such row");
  WalRecord record;
  record.type = WalRecordType::kUpdateStable;
  record.table = id();
  record.row_id = row_id;
  record.stable = stable;
  txn->AddOp(std::move(record), [partition, row_id, stable] {
    return partition->ApplyUpdateStable(row_id, stable);
  });
  return Status::OK();
}

// --- read path ---------------------------------------------------------------------

Status Table::ScanRows(const std::function<bool(const RowView&)>& fn) const {
  for (const auto& partition : partitions_) {
    bool stopped = false;
    IDB_RETURN_IF_ERROR(partition->ScanRows(fn, &stopped));
    if (stopped) break;
  }
  return Status::OK();
}

Status Table::ScanBatch(TableScanPos* pos, size_t limit,
                        std::vector<RowView>* out, bool* done) const {
  out->clear();
  *done = false;
  while (pos->partition < partitions_.size()) {
    if (out->size() >= limit) return Status::OK();  // more partitions remain
    bool partition_done = false;
    IDB_RETURN_IF_ERROR(partitions_[pos->partition]->ScanBatch(
        &pos->rid, limit - out->size(), out, &partition_done));
    if (!partition_done) return Status::OK();  // limit hit inside partition
    ++pos->partition;
    pos->rid = Rid{0, 0};
  }
  *done = true;
  return Status::OK();
}

Status PartitionCursor::NextBatch(size_t limit, std::vector<RowView>* out,
                                  bool* done) {
  if (done_ || partition_ == nullptr) {
    *done = true;
    return Status::OK();
  }
  IDB_RETURN_IF_ERROR(
      partition_->ScanBatch(&pos_, end_page_, limit, out, &done_));
  *done = done_;
  return Status::OK();
}

Status PartitionCursor::NextBatch(size_t limit, const ScanSpec& spec,
                                  ScanWorkspace* ws, std::vector<RowView>* out,
                                  bool* done, ScanDeltas* deltas) {
  if (done_ || partition_ == nullptr) {
    out->clear();
    *done = true;
    return Status::OK();
  }
  IDB_RETURN_IF_ERROR(partition_->ScanBatchFiltered(&pos_, end_page_, limit,
                                                    spec, ws, out, &done_,
                                                    deltas));
  *done = done_;
  return Status::OK();
}

Result<std::optional<RowView>> Table::GetRow(RowId row_id) const {
  return Route(row_id)->GetRow(row_id);
}

uint64_t Table::live_rows() const {
  uint64_t total = 0;
  for (const auto& partition : partitions_) total += partition->live_rows();
  return total;
}

Status Table::IndexLookupEqual(int column, const Value& value, int level,
                               std::vector<RowId>* out) const {
  for (const auto& partition : partitions_) {
    IDB_RETURN_IF_ERROR(
        partition->IndexLookupEqual(column, value, level, out));
  }
  return Status::OK();
}

Status Table::IndexLookupRange(int column, const Value& lo, const Value& hi,
                               int level, std::vector<RowId>* out) const {
  for (const auto& partition : partitions_) {
    IDB_RETURN_IF_ERROR(
        partition->IndexLookupRange(column, lo, hi, level, out));
  }
  return Status::OK();
}

Result<Bitmap> Table::BitmapLookupEqual(int column, const Value& value,
                                        int level) const {
  Bitmap merged;
  for (const auto& partition : partitions_) {
    IDB_ASSIGN_OR_RETURN(Bitmap bitmap,
                         partition->BitmapLookupEqual(column, value, level));
    merged.OrWith(bitmap);
  }
  return merged;
}

// --- degradation ----------------------------------------------------------------------

Micros Table::NextDeadline() const {
  Micros next = kForever;
  for (const auto& partition : partitions_) {
    next = std::min(next, partition->NextDeadline());
  }
  return next;
}

bool Table::HasWorkAt(Micros now) const { return NextDeadline() <= now; }

bool Table::PartitionHasWorkAt(uint32_t partition, Micros now) const {
  return partitions_[partition]->HasWorkAt(now);
}

Result<size_t> Table::RunDegradationStep(TransactionManager* tm, Micros now,
                                         size_t batch_limit,
                                         uint32_t partition) {
  bool stepped_phase0 = false;
  IDB_ASSIGN_OR_RETURN(const size_t moved,
                       partitions_[partition]->RunDegradationStep(
                           tm, now, batch_limit, &stepped_phase0));
  if (moved > 0 && stepped_phase0 && runtime_.wal != nullptr &&
      runtime_.wal->epoch_keys_enabled()) {
    // Epoch keys are table-wide: a key is destroyable only once every
    // partition's phase-0 head has moved past the epoch. SafeEpochTime
    // walks live phase-0 state (O(1) per store, O(queue) under kInPlace),
    // so it only runs when there are keys to destroy.
    IDB_RETURN_IF_ERROR(
        runtime_.wal->DestroyEpochKeysThrough(id(), SafeEpochTime()));
  }
  return moved;
}

Micros Table::SafeEpochTime() const {
  Micros safe = kForever;
  for (const auto& partition : partitions_) {
    safe = std::min(safe, partition->SafeEpochTime());
  }
  return safe;
}

// --- recovery redo -----------------------------------------------------------------

Status Table::RedoInsert(const WalRecord& record) {
  // Replayed inserts carry committed row ids: keep the owning partition's
  // allocator above the recovered id space.
  TablePartition* partition = Route(record.row_id);
  partition->EnsureRowAllocatorAbove(record.row_id);
  return partition->ApplyInsert(record.row_id, record.insert_time,
                                record.stable, record.degradable,
                                !record.degradable_unavailable);
}

Status Table::RedoDegrade(const WalRecord& record) {
  // A degradation step drains one partition's store: every entry hashes to
  // the same partition, so the first row id routes the whole record.
  if (record.entries.empty()) return Status::OK();
  return Route(record.entries[0].row_id)
      ->ApplyDegrade(record.column, record.from_phase, record.to_phase,
                     record.up_to_row_id, record.entries,
                     /*old_values=*/nullptr);
}

Status Table::RedoDelete(const WalRecord& record) {
  return Route(record.row_id)->ApplyDelete(record.row_id);
}

Status Table::RedoUpdateStable(const WalRecord& record) {
  return Route(record.row_id)->ApplyUpdateStable(record.row_id, record.stable);
}

Table::Stats Table::stats() const {
  Stats total;
  for (const auto& partition : partitions_) {
    total.MergeFrom(partition->stats());
  }
  return total;
}

Histogram Table::lateness_histogram() const {
  Histogram merged;
  for (const auto& partition : partitions_) {
    merged.Merge(partition->lateness_histogram());
  }
  return merged;
}

}  // namespace instantdb
