#ifndef INSTANTDB_DB_TABLE_H_
#define INSTANTDB_DB_TABLE_H_

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "common/options.h"
#include "index/bitmap_index.h"
#include "index/multires_index.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "storage/state_store.h"
#include "txn/transaction.h"
#include "util/histogram.h"
#include "wal/wal_manager.h"

namespace instantdb {

/// Options shared by every table of a database (subset of DbOptions the
/// table layer needs).
struct TableRuntime {
  StorageOptions storage;
  DegradableLayout layout = DegradableLayout::kStateStores;
  bool bitmap_indexes = false;
  KeyManager* keys = nullptr;
  WalManager* wal = nullptr;
  Clock* clock = nullptr;
};

/// Fully assembled row as seen by the executor: stable values plus each
/// degradable attribute's *stored* phase and value (the physical ST_j
/// membership, which is what the paper's query semantics partition on).
struct RowView {
  RowId row_id = kInvalidRowId;
  Micros insert_time = 0;
  /// Aligned with schema.columns(): stable columns hold their value;
  /// degradable columns hold the stored (possibly degraded) value, or NULL
  /// once removed.
  std::vector<Value> values;
  /// Aligned with schema.degradable_columns(): current phase per attribute
  /// (lcp.num_phases() = removed).
  std::vector<int> phases;
};

/// \brief One table: slotted heap for the stable part, FIFO state stores
/// per (degradable attribute, phase), multi-resolution + optional bitmap
/// indexes, and the degradation stepping logic.
///
/// Thread-safety: logical conflicts go through the 2PL LockManager (row/
/// store/table locks); physical structures are protected by a per-table
/// reader-writer latch (scans share it, apply closures take it exclusive).
class Table {
 public:
  Table(const TableDef* def, std::string dir, const TableRuntime& runtime);
  ~Table();
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Opens storage, rebuilds the row-id map from the heap, opens the state
  /// stores. Indexes are rebuilt separately (RebuildIndexes) after WAL
  /// replay so they reflect the recovered state.
  Status Open();
  Status RebuildIndexes();
  Status Checkpoint();
  /// Securely drops all storage (DROP TABLE).
  Status Drop();

  const TableDef& def() const { return *def_; }
  const Schema& schema() const { return def_->schema; }
  TableId id() const { return def_->id; }

  // --- DML (deferred-apply; effects run at txn commit) ----------------------

  /// Validates the full-accuracy row, assigns a row id, locks it, and
  /// queues the insert. Paper §II: inserts are granted only in the most
  /// accurate state.
  Result<RowId> Insert(Transaction* txn, const std::vector<Value>& row);

  /// Locks and queues the removal of one tuple (stable + degradable parts).
  Status Delete(Transaction* txn, RowId row_id);

  /// Updates stable columns of one tuple (degradable updates are rejected
  /// by the binder; this API only accepts stable values).
  Status UpdateStable(Transaction* txn, RowId row_id,
                      const std::vector<Value>& stable);

  // --- read path -------------------------------------------------------------

  /// Snapshot scan: assembles every live row under the shared latch. Stops
  /// early when `fn` returns false.
  Status ScanRows(const std::function<bool(const RowView&)>& fn) const;

  /// Cursor support: assembles up to `limit` live rows starting at heap
  /// position `*pos` (`Rid{0, 0}` to start) under the shared latch,
  /// advancing `*pos` to the resume position and setting `*done` once the
  /// heap is exhausted. The latch is released between batches, so a slow
  /// consumer never blocks writers or the degrader; isolation is weak
  /// across batches: rows changed between two batches may or may not be
  /// observed, and a row physically relocated by a concurrent update may
  /// be missed or observed twice. Pass SIZE_MAX to scan everything under
  /// one latch (single-snapshot semantics).
  Status ScanBatch(Rid* pos, size_t limit, std::vector<RowView>* out,
                   bool* done) const;

  Result<std::optional<RowView>> GetRow(RowId row_id) const;

  uint64_t live_rows() const;

  /// Rows matching an equality/range predicate on a degradable column at
  /// accuracy `level`, via the multi-resolution index.
  Status IndexLookupEqual(int column, const Value& value, int level,
                          std::vector<RowId>* out) const;
  Status IndexLookupRange(int column, const Value& lo, const Value& hi,
                          int level, std::vector<RowId>* out) const;
  /// Same via the bitmap index (enabled by TableRuntime::bitmap_indexes).
  Result<Bitmap> BitmapLookupEqual(int column, const Value& value,
                                   int level) const;

  const MultiResolutionIndex* multires_index(int degradable_ordinal) const {
    return multires_[degradable_ordinal].get();
  }
  const BitmapColumnIndex* bitmap_index(int degradable_ordinal) const {
    return bitmaps_.empty() ? nullptr : bitmaps_[degradable_ordinal].get();
  }

  // --- degradation -----------------------------------------------------------

  /// Earliest pending transition deadline across all stores (kForever if
  /// nothing is pending). Under kInPlace layout the deadline is tracked by
  /// the in-memory schedule queues.
  Micros NextDeadline() const;

  /// Runs ONE degradation step as a system transaction: drains every entry
  /// whose deadline has passed (up to `batch_limit`) from the single most
  /// overdue (column, phase) store. Returns the number of tuples moved
  /// (0 when nothing is due). Timeliness lateness is recorded per tuple in
  /// `lateness_histogram`.
  Result<size_t> RunDegradationStep(TransactionManager* tm, Micros now,
                                    size_t batch_limit);

  /// True if any store head is overdue at `now`.
  bool HasWorkAt(Micros now) const;

  // --- recovery redo ----------------------------------------------------------

  Status RedoInsert(const WalRecord& record);
  Status RedoDegrade(const WalRecord& record);
  Status RedoDelete(const WalRecord& record);
  Status RedoUpdateStable(const WalRecord& record);

  struct Stats {
    uint64_t inserts = 0;
    uint64_t deletes = 0;
    uint64_t degrade_steps = 0;
    uint64_t values_degraded = 0;
    uint64_t values_removed = 0;
    uint64_t tuples_expired = 0;  // whole-tuple removals by the LCP
  };
  Stats stats() const;
  const Histogram& lateness_histogram() const { return lateness_; }

  BufferPool* heap_pool() const { return heap_pool_.get(); }
  const StateStore* store(int column, int phase) const;

 private:
  struct PendingDegrade {
    int column = -1;  // schema column index
    int phase = -1;
    Micros deadline = kForever;
  };

  std::string HeapPath() const { return dir_ + "/heap.db"; }
  std::string IndexPath() const { return dir_ + "/index.db"; }
  std::string StoreDir(int column, int phase) const;

  /// Deadline of the head entry of (column, phase), kForever if empty.
  Micros StoreHeadDeadline(int column, int phase) const;
  PendingDegrade MostOverdue() const;

  /// Applies one insert to heap/stores/indexes (commit-time + redo path).
  Status ApplyInsert(RowId row_id, Micros insert_time,
                     const std::vector<Value>& stable,
                     const std::vector<Value>& degradable,
                     bool degradable_available);
  Status ApplyDelete(RowId row_id);
  /// `old_values` is non-null on the live path (index maintenance) and null
  /// during redo (indexes are rebuilt wholesale after replay).
  Status ApplyDegrade(int column, int from_phase, int to_phase,
                      RowId up_to_row_id, const std::vector<StoreEntry>& moves,
                      const std::vector<Value>* old_values);
  Status ApplyUpdateStable(RowId row_id, const std::vector<Value>& stable);

  /// After a value of `row_id` reached ⊥: if every degradable attribute of
  /// the tuple is gone, remove the whole tuple (paper: disappearance).
  /// Caller holds the exclusive latch.
  Status MaybeExpireTupleLocked(RowId row_id);

  /// Builds a RowView from a decoded heap tuple (caller holds the latch).
  bool AssembleRow(const HeapTuple& tuple, RowView* view) const;

  /// After a phase-0 step: allow the WAL to destroy epoch keys whose
  /// accurate values have all left phase 0.
  Micros SafeEpochTime() const;

  const TableDef* const def_;
  const std::string dir_;
  TableRuntime runtime_;

  std::unique_ptr<DiskManager> heap_disk_;
  std::unique_ptr<BufferPool> heap_pool_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<DiskManager> index_disk_;
  std::unique_ptr<BufferPool> index_pool_;

  /// stores_[degradable_ordinal][phase].
  std::vector<std::vector<std::unique_ptr<StateStore>>> stores_;
  std::vector<std::unique_ptr<MultiResolutionIndex>> multires_;
  std::vector<std::unique_ptr<BitmapColumnIndex>> bitmaps_;

  /// In-place layout: FIFO schedule (row_id, insert_time) per (ordinal,
  /// phase), mirroring what the state stores provide for free.
  std::vector<std::vector<std::deque<std::pair<RowId, Micros>>>> inplace_queues_;

  mutable std::shared_mutex latch_;
  std::unordered_map<RowId, Rid> row_map_;
  RowId next_row_id_ = 1;

  Stats stats_;
  Histogram lateness_;
};

}  // namespace instantdb

#endif  // INSTANTDB_DB_TABLE_H_
