#ifndef INSTANTDB_DB_TABLE_H_
#define INSTANTDB_DB_TABLE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/table_partition.h"

namespace instantdb {

/// Upper bound on DbOptions::partitions (sanity limit: one partition per
/// core is the useful range; this also caps what a corrupt PARTITIONS file
/// can make Open() attempt).
inline constexpr uint32_t kMaxPartitions = 1024;

/// Resume position of a table scan that spans partitions: the partition
/// currently being walked plus the heap position inside it. Value-semantic
/// so cursors can checkpoint it between batches.
struct TableScanPos {
  uint32_t partition = 0;
  Rid rid{0, 0};
};

/// \brief Cursor over ONE partition's heap, from Table::OpenPartitionCursor.
///
/// This is the unit the parallel read path shards on: a consumer that wants
/// to fan a table scan out itself (the query layer's prefetch workers, the
/// exposure/attack-window audit benches) opens one cursor per partition and
/// drains them on distinct threads — partitions own disjoint rows and
/// latches, so the cursors never contend. Each NextBatch holds the
/// partition's shared latch only while assembling that batch
/// (snapshot-per-batch semantics, exactly like Table::ScanBatch).
/// Value-semantic and independent of sibling cursors; the Table must
/// outlive it.
class PartitionCursor {
 public:
  PartitionCursor() = default;

  /// Assembles up to `limit` live rows into `*out` (appended), advancing
  /// the cursor. `*done` is set once the partition is exhausted; subsequent
  /// calls return no rows with `*done` true.
  Status NextBatch(size_t limit, std::vector<RowView>* out, bool* done);

  /// Pushdown form (TablePartition::ScanBatchFiltered): stable predicates
  /// run on the decoded tuples and state stores are probed only for the
  /// survivors. REPLACES `*out`'s contents; `limit` bounds tuples decoded,
  /// so a selective batch comes out short. `ws` and `deltas` are the
  /// caller's per-worker scratch and counter accumulator.
  Status NextBatch(size_t limit, const ScanSpec& spec, ScanWorkspace* ws,
                   std::vector<RowView>* out, bool* done, ScanDeltas* deltas);

  uint32_t partition_index() const { return index_; }

 private:
  friend class Table;
  PartitionCursor(const TablePartition* partition, uint32_t index,
                  PageId begin_page = 0, PageId end_page = kInvalidPageId)
      : partition_(partition),
        index_(index),
        pos_{begin_page, 0},
        end_page_(end_page) {}

  const TablePartition* partition_ = nullptr;
  uint32_t index_ = 0;
  Rid pos_{0, 0};
  /// Exclusive page bound (kInvalidPageId = whole partition): a morsel
  /// cursor reports done at its range's end, not the heap's.
  PageId end_page_ = kInvalidPageId;
  bool done_ = false;
};

/// \brief One table: a router over N hash-partitions of the row-id space.
///
/// Every physical structure (heap file + buffer pool, per-(attribute, phase)
/// state stores, multi-resolution/bitmap indexes, latch, row map, in-place
/// schedule queues) lives in a `TablePartition`; the table routes each row
/// id to its owning partition with the deterministic hash `row_id % N`.
/// Recovery reuses the same hash — WAL records carry row ids, so redo needs
/// no partition-aware record types. With `TableRuntime::partitions == 1`
/// (the default) the single partition stores its files directly under the
/// table directory, preserving the unpartitioned on-disk layout; with N > 1
/// partition k lives under `<table-dir>/p<k>`. The partition count is
/// persisted in `<table-dir>/PARTITIONS` so a reopen with a different
/// DbOptions::partitions cannot mis-route recovered rows.
///
/// Partitioning is what lets throughput scale with cores: scans take one
/// partition latch at a time (writers and the degrader on other partitions
/// proceed unimpeded), and the degradation worker pool runs overdue steps
/// on distinct partitions concurrently — the paper's timeliness machinery
/// scales with the data volume it polices instead of running as one global
/// sequential sweep.
class Table {
 public:
  Table(const TableDef* def, std::string dir, const TableRuntime& runtime);
  ~Table();
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Opens every partition (creating the directory layout on first open).
  /// Indexes are rebuilt separately (RebuildIndexes) after WAL replay so
  /// they reflect the recovered state.
  Status Open();
  /// Rebuilds every partition's indexes. Partitions are independent, so
  /// with `worker_threads > 1` they rebuild on a worker pool (the database
  /// passes the degradation pool size) — this is what cuts recovery time on
  /// multi-partition tables.
  Status RebuildIndexes(size_t worker_threads = 1);
  /// Securely drops all storage (DROP TABLE).
  Status Drop();

  const TableDef& def() const { return *def_; }
  const Schema& schema() const { return def_->schema; }
  TableId id() const { return def_->id; }

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(partitions_.size());
  }
  const TablePartition* partition(uint32_t i) const {
    return partitions_[i].get();
  }
  /// Mutable access for the database's incremental checkpoint fan-out
  /// (TablePartition::CheckpointIfDirty): partitions are the unit of
  /// checkpoint scheduling, exactly as they are for degradation steps.
  TablePartition* partition(uint32_t i) { return partitions_[i].get(); }
  /// Owning partition of a row id (deterministic; recovery routes WAL
  /// records with the same function).
  uint32_t PartitionOf(RowId row_id) const {
    return static_cast<uint32_t>(row_id % partitions_.size());
  }

  // --- DML (deferred-apply; effects run at txn commit) ----------------------

  /// Validates the full-accuracy row, assigns a row id, locks it, and
  /// queues the insert. Paper §II: inserts are granted only in the most
  /// accurate state. Row ids are allocated partition-affine: every insert
  /// of one transaction into this table draws from the same partition's
  /// allocator (partitions rotate across transactions), so a WriteBatch's
  /// rows — and their WAL redo — land in one partition and one log stream.
  Result<RowId> Insert(Transaction* txn, const std::vector<Value>& row);

  /// Locks and queues the removal of one tuple (stable + degradable parts).
  Status Delete(Transaction* txn, RowId row_id);

  /// Updates stable columns of one tuple (degradable updates are rejected
  /// by the binder; this API only accepts stable values).
  Status UpdateStable(Transaction* txn, RowId row_id,
                      const std::vector<Value>& stable);

  // --- read path -------------------------------------------------------------

  /// Snapshot scan: assembles every live row, walking partitions in order
  /// under each partition's shared latch. Stops early when `fn` returns
  /// false. Consistency is snapshot-per-partition: each partition is read
  /// atomically, but a row changed in a later partition while an earlier
  /// one was being read may reflect the newer state (rows never span
  /// partitions, so no row is ever torn).
  Status ScanRows(const std::function<bool(const RowView&)>& fn) const;

  /// Cursor support: assembles up to `limit` live rows starting at `*pos`
  /// (default-constructed to start), advancing `*pos` to the resume
  /// position — which may cross into the next partition — and setting
  /// `*done` once every partition is exhausted. Each batch holds one
  /// partition latch at a time, so a slow consumer never blocks writers or
  /// the degrader; isolation is weak across batches: rows changed between
  /// two batches may or may not be observed, and a row physically relocated
  /// by a concurrent update may be missed or observed twice. Pass SIZE_MAX
  /// to scan everything in one call (snapshot-per-partition semantics).
  Status ScanBatch(TableScanPos* pos, size_t limit, std::vector<RowView>* out,
                   bool* done) const;

  /// Opens a cursor over partition `i` only, so parallel consumers can
  /// shard a table scan themselves (one cursor per partition, one thread
  /// per cursor). The streaming read path's fan-out workers are built on
  /// this; it is also the API the degradation-audit benches use to sweep a
  /// table at device speed. An out-of-range index yields an empty cursor
  /// (NextBatch reports done immediately) rather than undefined behavior.
  PartitionCursor OpenPartitionCursor(uint32_t i) const {
    if (i >= partitions_.size()) return PartitionCursor();
    return PartitionCursor(partitions_[i].get(), i);
  }

  /// Morsel-grained sharding (util/morsel.h): per-partition page-range
  /// plans for the work-stealing scheduler. `plan[p]` is partition p's
  /// queue; Σ plan sizes is the claim total the scan counters assert
  /// against. `pages_per_morsel` 0 = kDefaultMorselPages
  /// (ScanOptions::morsel_pages plumbs through here).
  std::vector<std::vector<Morsel>> MorselPlan(uint32_t pages_per_morsel) const {
    std::vector<std::vector<Morsel>> plan;
    plan.reserve(partitions_.size());
    for (const auto& partition : partitions_) {
      plan.push_back(partition->MorselPlan(pages_per_morsel));
    }
    return plan;
  }

  /// Cursor over ONE morsel's page range — each claimed morsel gets its own
  /// resume position, so many workers share a partition without sharing
  /// cursor state. An out-of-range partition yields an empty cursor.
  PartitionCursor OpenMorselCursor(const Morsel& morsel) const {
    if (morsel.partition >= partitions_.size()) return PartitionCursor();
    return PartitionCursor(partitions_[morsel.partition].get(),
                           morsel.partition, morsel.begin_page,
                           morsel.end_page);
  }

  Result<std::optional<RowView>> GetRow(RowId row_id) const;

  uint64_t live_rows() const;

  /// Rows matching an equality/range predicate on a degradable column at
  /// accuracy `level`, merged across every partition's multi-resolution
  /// index.
  Status IndexLookupEqual(int column, const Value& value, int level,
                          std::vector<RowId>* out) const;
  Status IndexLookupRange(int column, const Value& lo, const Value& hi,
                          int level, std::vector<RowId>* out) const;
  /// Same via the bitmap indexes (enabled by TableRuntime::bitmap_indexes);
  /// partition bitmaps are disjoint by construction and OR-merged.
  Result<Bitmap> BitmapLookupEqual(int column, const Value& value,
                                   int level) const;

  // --- degradation -----------------------------------------------------------

  /// Earliest pending transition deadline across all partitions (kForever
  /// if nothing is pending).
  Micros NextDeadline() const;

  /// Runs ONE degradation step on `partition` as a system transaction (see
  /// TablePartition::RunDegradationStep). After a phase-0 step the WAL
  /// epoch-key watermark advances using the table-wide safe time. Distinct
  /// partitions may be stepped concurrently.
  Result<size_t> RunDegradationStep(TransactionManager* tm, Micros now,
                                    size_t batch_limit, uint32_t partition);

  /// True if any store head of any partition is overdue at `now`.
  bool HasWorkAt(Micros now) const;
  /// True if any store head of `partition` is overdue at `now`.
  bool PartitionHasWorkAt(uint32_t partition, Micros now) const;

  // --- recovery redo ----------------------------------------------------------

  Status RedoInsert(const WalRecord& record);
  Status RedoDegrade(const WalRecord& record);
  Status RedoDelete(const WalRecord& record);
  Status RedoUpdateStable(const WalRecord& record);

  /// min over partitions of the phase-0 head insert times: every insert at
  /// or before this instant has left the accurate state in all partitions.
  /// Drives both epoch-key destruction (RunDegradationStep) and the
  /// deletion-assurance audit's lingering-key probe.
  Micros SafeEpochTime() const;

  using Stats = TablePartition::Stats;
  /// Aggregated over partitions; each partition snapshot is taken under its
  /// shared latch.
  Stats stats() const;
  /// Merged copy of every partition's lateness histogram (taken under each
  /// partition's shared latch).
  Histogram lateness_histogram() const;

 private:
  std::string PartitionDir(uint32_t index) const;
  std::string PartitionCountPath() const { return dir_ + "/PARTITIONS"; }
  TablePartition* Route(RowId row_id) const {
    return partitions_[PartitionOf(row_id)].get();
  }

  const TableDef* const def_;
  const std::string dir_;
  TableRuntime runtime_;

  std::vector<std::unique_ptr<TablePartition>> partitions_;
  /// Rotates the partition assigned to each inserting transaction (the
  /// partitions own the actual row-id allocators).
  std::atomic<uint32_t> next_affine_{0};
};

}  // namespace instantdb

#endif  // INSTANTDB_DB_TABLE_H_
