#ifndef INSTANTDB_DB_DATABASE_H_
#define INSTANTDB_DB_DATABASE_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/options.h"
#include "db/table.h"
#include "db/write_batch.h"
#include "degrade/degradation_engine.h"
#include "maintain/maintenance_daemon.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "util/worker_pool.h"
#include "wal/wal_manager.h"

namespace instantdb {

/// Top-level configuration of an InstantDB instance.
struct DbOptions {
  std::string path;
  StorageOptions storage;
  WalOptions wal;
  DegradationOptions degradation;
  /// Self-driving maintenance: background checkpoint cadence + continuous
  /// deletion-assurance audits (maintain/maintenance_daemon.h). The daemon
  /// object always exists (pumped tests drive it via RunOnce); the
  /// scheduler thread starts only when `maintenance.enabled`.
  MaintenanceOptions maintenance;
  DegradableLayout layout = DegradableLayout::kStateStores;
  /// Hash-partitions of the row-id space per table. 1 (the default) keeps
  /// the unpartitioned on-disk layout; higher values let scans, batched
  /// ingest and the degradation worker pool scale across cores. The count
  /// is persisted per table at creation — reopening with a different value
  /// keeps the on-disk count.
  uint32_t partitions = 1;
  /// Maintain bitmap indexes alongside the multi-resolution trees (OLAP).
  bool bitmap_indexes = false;
  /// External clock (a VirtualClock for tests/benchmarks). When null the
  /// database owns a SystemClock.
  Clock* clock = nullptr;
  /// Filesystem seam (io/env.h): every durability-bearing file operation of
  /// this instance routes through it. nullptr = Env::Default(). Tests pass a
  /// FaultInjectionEnv to exercise fsync EIO, short writes, ENOSPC and
  /// simulated crashes.
  Env* env = nullptr;
};

/// \brief The InstantDB engine facade: catalog + WAL + transactions +
/// tables + degrader, with crash recovery on open.
///
/// Typical embedded use:
/// \code
///   DbOptions options;
///   options.path = "/data/mydb";
///   auto db = Database::Open(options);
///   auto schema = Schema::Make({
///       ColumnDef::Stable("user", ValueType::kString),
///       ColumnDef::Degradable("location", LocationDomain(),
///                             Fig2LocationLcp())});
///   db->CreateTable("pings", *schema);
///   db->Insert("pings", {Value::String("alice"),
///                        Value::String("11 Rue Lepic")});
/// \endcode
///
/// SQL access (DECLARE PURPOSE / SELECT / INSERT / DELETE) is provided by
/// `Session` in query/session.h.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(const DbOptions& options);
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Orderly shutdown, called by the destructor and safe to call twice.
  /// The shutdown order is a contract (asserted in the implementation):
  ///   1. maintenance daemon stops — no new background checkpoint or audit
  ///      can start;
  ///   2. the degrader's background thread stops;
  ///   3. bounded quiesce (MaintenanceOptions::close_quiesce_timeout) drains
  ///      any still-in-flight caller-pumped degradation pass;
  ///   4. a final checkpoint runs against the settled state.
  /// A quiesce timeout is logged, not fatal — checkpoints are fuzzy, so the
  /// final checkpoint is correct against in-flight work too.
  Status Close();

  // --- DDL -------------------------------------------------------------------

  Result<const TableDef*> CreateTable(const std::string& name, Schema schema);
  /// Drops the table and securely erases all its storage.
  Status DropTable(const std::string& name);
  /// nullptr when absent.
  Table* GetTable(const std::string& name) const;
  Table* GetTable(TableId id) const;
  const Catalog& catalog() const { return *catalog_; }

  // --- transactions ------------------------------------------------------------

  std::unique_ptr<Transaction> Begin() { return tm_->Begin(); }
  Status Commit(Transaction* txn, const WriteOptions& options = {}) {
    return tm_->Commit(txn, options.sync);
  }
  void Abort(Transaction* txn) { tm_->Abort(txn); }

  /// Applies every staged operation of `batch` atomically: one transaction,
  /// one WAL append/sync (group commit). On success the batch's `row_ids()`
  /// carry the assigned id of each staged insert. This is the scalable
  /// ingest path — per-row Insert/Delete pay the full commit overhead per
  /// row. On failure (including a wait-die lock abort) nothing is applied.
  Status Write(WriteBatch* batch, const WriteOptions& options = {});

  /// Single-statement convenience: insert one row (schema order) in its own
  /// transaction. Returns the assigned row id. Thin wrapper over the same
  /// path WriteBatch uses with a batch of one.
  Result<RowId> Insert(const std::string& table, const std::vector<Value>& row,
                       const WriteOptions& options = {});
  /// Single-statement convenience: delete one row by id.
  Status Delete(const std::string& table, RowId row_id,
                const WriteOptions& options = {});

  // --- maintenance ---------------------------------------------------------------

  /// Incremental fuzzy checkpoint: captures the per-stream begin vector
  /// under the commit barrier, flushes ONLY the partitions mutated since
  /// their last flush (fanned out over DegradationOptions::worker_threads
  /// workers — the same pool size the degrader uses), stamps the WAL
  /// CHECKPOINT manifest from the element-wise minimum of the per-partition
  /// clean-through low-water marks, and retires fully-covered segments per
  /// the privacy mode. Clean partitions cost one atomic compare — a mostly-
  /// cold database checkpoints in O(dirty), which is what keeps the segment
  /// retirement cadence (and therefore kScrub/kEncryptedEpoch timeliness)
  /// independent of total data volume.
  Status Checkpoint();

  /// Pumped degradation: run everything due at the clock's current time.
  Result<size_t> RunDegradationOnce();

  /// Partitions with mutations applied since their last checkpoint flush
  /// (latch-free poll; the daemon's cadence test). Taken under the shared
  /// DDL lock so a concurrent CreateTable/DropTable can't invalidate the
  /// table map mid-count.
  uint64_t DirtyPartitions() const;

  /// Runs `auditor` over every live table while holding the DDL lock
  /// shared, so a concurrent DropTable cannot destroy a table mid-sweep
  /// (the daemon's audit entry point; tests go through Audit()).
  AuditReport RunAuditSweep(const DeletionAuditor& auditor, Micros now,
                            Micros grace) const;

  /// On-demand deletion-assurance sweep at the clock's current time
  /// (cadence-independent; MaintenanceDaemon::RunAuditNow). The report's
  /// Verify() is the hard-fail form.
  AuditReport Audit() { return maintenance_->RunAuditNow(); }

  // --- statistics ----------------------------------------------------------------

  /// Read-path counters (snapshot in Stats::scan). Benches read parallel
  /// scan efficiency from these instead of timing guesses: `rows` / elapsed
  /// is assembly throughput, and `prefetch_stalls` counts how often a
  /// cursor's consumer outran its scan workers (waited on an empty prefetch
  /// queue) — zero stalls means the scan was consumer-bound, many means it
  /// was producer (I/O or partition) bound.
  struct ScanStats {
    /// Scan batches served to the operator pipeline (heap batches plus
    /// index-probe batches).
    uint64_t batches = 0;
    /// Rows pulled out of partition heaps / index probes before σ.
    uint64_t rows = 0;
    /// Times a streaming cursor's consumer waited on an empty prefetch
    /// queue while its scan workers were still producing.
    uint64_t prefetch_stalls = 0;
    /// Pushdown accounting (ScanOptions::pushdown). Per scanned row and
    /// degradable column the read path either issues a store probe or
    /// provably skips it, so over the pushdown scan paths
    /// store_probes_issued + store_probes_skipped ==
    /// rows × degradable columns (asserted in tests).
    /// Rows rejected by the stable-column pre-filter before any store
    /// probe or RowView assembly:
    uint64_t rows_prefiltered = 0;
    /// (row, degradable column) store resolutions performed / avoided:
    uint64_t store_probes_issued = 0;
    uint64_t store_probes_skipped = 0;
    /// Per-worker aggregate partials folded into final results by the
    /// aggregate pushdown (0 when every aggregate ran through the cursor).
    uint64_t aggregate_partials_merged = 0;
    /// Morsel-scheduler accounting over the parallel scan paths
    /// (util/morsel.h): page-range work units claimed, how many of those
    /// were stolen from a non-home partition queue, and steals that lost
    /// the race to a queue's last morsel. Invariant (asserted in tests):
    /// a fully-drained parallel scan claims exactly its morsel-plan size —
    /// morsels_claimed grows by Σ per-partition plan sizes per scan.
    uint64_t morsels_claimed = 0;
    uint64_t morsels_stolen = 0;
    uint64_t steal_failures = 0;
  };

  /// I/O-layer health (snapshot in Stats::io): physical-operation counters
  /// from the instance's Env plus the consumers' retry/error bookkeeping.
  /// Invariant (asserted by the fault-injection tests): sync_failures > 0 ⇒
  /// wal.poisoned_streams > 0 OR retries > 0 — a failed sync is never
  /// silently retried-and-forgotten (fsyncgate).
  struct IoStats {
    /// File write operations issued (appends + positional writes).
    uint64_t writes = 0;
    /// fsync/fdatasync operations issued, and how many returned an error.
    uint64_t syncs = 0;
    uint64_t sync_failures = 0;
    /// Transient I/O failures absorbed by backoff-retry in the background
    /// loops (maintenance cadence + degrader passes).
    uint64_t retries = 0;
    /// Faults injected by a FaultInjectionEnv (0 in production).
    uint64_t injected_faults = 0;
    /// First sticky background I/O error, empty when healthy (the same
    /// status Close() returns; recorded even after later retries succeed).
    std::string first_error;
  };

  /// Service front end accounting (service/service.h; zeros when none is
  /// attached). Every submission ends in exactly one terminal bucket, so
  /// admitted + rejected_overload + rejected_shutdown + rejected_deadline
  /// == submitted always (asserted in tests). `timeouts` is orthogonal: it
  /// counts every Status::Timeout returned — queue-expired (also in
  /// rejected_deadline) and mid-execution (also in admitted).
  struct ServiceStats {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    /// Submissions that had to park in an admission queue first (a subset
    /// of whatever terminal bucket they reached).
    uint64_t queued = 0;
    /// Shed with Status::Overloaded: class queue full, or a backpressure
    /// signal dropped the (class, read/write) combination.
    uint64_t rejected_overload = 0;
    /// Drained with Status::Shutdown by Database::Close.
    uint64_t rejected_shutdown = 0;
    /// Deadline expired before admission (at submission or while queued).
    uint64_t rejected_deadline = 0;
    uint64_t timeouts = 0;
    /// Statements that returned Aborted with their CancelToken tripped.
    uint64_t cancelled = 0;
    /// High-water mark of queued-but-unadmitted statements across classes.
    uint64_t max_queue_depth = 0;
    /// Degradation dispatches that dipped into the worker-pool reserve
    /// (WorkerPool::reserved_grants) — proof the priority floor engaged.
    uint64_t degradation_reserved_dispatches = 0;
  };

  /// One-stop engine counters, so benches and tests read the engine's
  /// behavior (sync absorption, scan fan-out efficiency, checkpoint
  /// dirty-skipping) instead of inferring it from file I/O or timing.
  struct Stats {
    /// Aggregated WAL stream counters. The commit pipeline trio:
    /// `wal.syncs` (fdatasyncs issued), `wal.sync_requests` (durability
    /// demands), `wal.commits_absorbed` (demands satisfied by another
    /// leader's sync). syncs / sync_requests is the syncs-per-commit ratio
    /// group commit drives below 1 under concurrency.
    WalManager::Stats wal;
    TransactionManager::Stats txn;
    DegradationEngine::Stats degradation;
    /// Read path: batches served, rows scanned, prefetch-queue stalls.
    ScanStats scan;
    /// I/O-layer health: Env counters + background retry/error bookkeeping.
    IoStats io;
    /// Checkpoint pipeline: invocations, partitions flushed because they
    /// were dirty, and partitions skipped as clean.
    uint64_t checkpoints = 0;
    uint64_t checkpoint_partitions_flushed = 0;
    uint64_t checkpoint_partitions_clean = 0;
    /// Maintenance daemon: cadence checkpoints run/skipped/forced, audits
    /// run/failed, rows swept, worst attack window seen.
    MaintenanceDaemon::Stats maintenance;
    /// Service front end: admission/shedding/deadline accounting.
    ServiceStats service;
  };
  Stats stats() const;

  /// Live scan counters the read path increments (internal plumbing for
  /// query/plan.cc and query/cursor.cc; read the snapshot via stats()).
  struct ScanCounters {
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> prefetch_stalls{0};
    std::atomic<uint64_t> rows_prefiltered{0};
    std::atomic<uint64_t> store_probes_issued{0};
    std::atomic<uint64_t> store_probes_skipped{0};
    std::atomic<uint64_t> aggregate_partials_merged{0};
    std::atomic<uint64_t> morsels_claimed{0};
    std::atomic<uint64_t> morsels_stolen{0};
    std::atomic<uint64_t> steal_failures{0};
  };
  ScanCounters* scan_counters() const { return &scan_counters_; }

  /// Live service-layer counters a ServiceFrontEnd increments (atomics —
  /// admissions race across sessions; read the snapshot via stats()).
  /// Database-owned so stats().service works, as zeros, with no front end
  /// attached.
  struct ServiceCounters {
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> queued{0};
    std::atomic<uint64_t> rejected_overload{0};
    std::atomic<uint64_t> rejected_shutdown{0};
    std::atomic<uint64_t> rejected_deadline{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> cancelled{0};
    std::atomic<uint64_t> max_queue_depth{0};
  };
  ServiceCounters* service_counters() const { return &service_counters_; }

  /// Registers a hook Close() invokes FIRST — before the maintenance
  /// daemon and degrader stop — so an attached service front end can drain
  /// its queued-but-unadmitted statements with Status::Shutdown and wait
  /// out in-flight ones instead of letting the quiesce timeout eat them.
  /// nullptr clears. One hook at a time (the attaching component owns it
  /// and must clear it before dying).
  void set_pre_close_hook(std::function<void()> hook) {
    std::lock_guard<std::mutex> lock(pre_close_mu_);
    pre_close_hook_ = std::move(hook);
  }

  /// The shared lazily-started worker pool (util/worker_pool.h), sized by
  /// DegradationOptions::worker_threads: scans, aggregate drains,
  /// degradation passes, checkpoints and audit sweeps borrow these threads
  /// instead of spawning their own per call.
  WorkerPool* worker_pool() const { return &worker_pool_; }

  Clock* clock() const { return clock_; }
  Env* env() const { return env_; }
  WalManager* wal() const { return wal_.get(); }
  KeyManager* keys() const { return keys_.get(); }
  LockManager* lock_manager() const { return locks_.get(); }
  TransactionManager* txn_manager() const { return tm_.get(); }
  DegradationEngine* degradation() const { return degrader_.get(); }
  MaintenanceDaemon* maintenance() const { return maintenance_.get(); }
  const DbOptions& options() const { return options_; }

 private:
  explicit Database(DbOptions options) : options_(std::move(options)) {}

  Status OpenImpl();
  Status Recover();
  /// First sticky I/O error any background loop recorded (maintenance
  /// cadence first, then degrader); OK when healthy. Close() returns it and
  /// stats().io.first_error carries its text.
  Status FirstBackgroundError() const;
  TableRuntime MakeRuntime() const;
  std::string TableDir(TableId id) const;

  DbOptions options_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_ = nullptr;
  /// Resolved once in OpenImpl (options_.env or Env::Default()); every
  /// component below routes its file I/O through it.
  Env* env_ = nullptr;

  std::unique_ptr<KeyManager> keys_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<WalManager> wal_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<TransactionManager> tm_;
  std::unique_ptr<DegradationEngine> degrader_;
  std::unique_ptr<MaintenanceDaemon> maintenance_;
  /// Guards the table map against the maintenance daemon: DDL takes it
  /// exclusive, the daemon-driven paths (Checkpoint's unit collection,
  /// DirtyPartitions, SnapshotTables-based audits) take it shared — the
  /// first background readers of `tables_` this engine has had.
  mutable std::shared_mutex ddl_mu_;
  std::map<TableId, std::unique_ptr<Table>> tables_;
  /// Read-path counters (exposed via Stats::scan); atomics because scan
  /// workers and concurrent sessions bump them in parallel.
  mutable ScanCounters scan_counters_;
  /// Service-layer counters (exposed via Stats::service); atomics because
  /// concurrent submissions bump them from caller threads.
  mutable ServiceCounters service_counters_;
  /// Close() drains the attached service front end through this before
  /// stopping anything else; guarded so attach/detach can race Close.
  std::mutex pre_close_mu_;
  std::function<void()> pre_close_hook_;
  /// Shared worker pool; threads start on first use and park between
  /// borrows. Mutable: read paths (const) borrow workers too.
  mutable WorkerPool worker_pool_{
      std::max<size_t>(options_.degradation.worker_threads, 1)};
  /// Checkpoint counters (exposed via Stats); atomics because the worker
  /// pool bumps flushed/clean concurrently.
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> checkpoint_partitions_flushed_{0};
  std::atomic<uint64_t> checkpoint_partitions_clean_{0};
  bool closed_ = false;
};

}  // namespace instantdb

#endif  // INSTANTDB_DB_DATABASE_H_
