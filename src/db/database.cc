#include "db/database.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <shared_mutex>

#include "common/logging.h"
#include "common/strings.h"
#include "io/env.h"
#include "util/parallel.h"

namespace instantdb {

Result<std::unique_ptr<Database>> Database::Open(const DbOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("DbOptions::path must be set");
  }
  if (options.partitions > kMaxPartitions) {
    return Status::InvalidArgument("DbOptions::partitions exceeds limit");
  }
  auto db = std::unique_ptr<Database>(new Database(options));
  IDB_RETURN_IF_ERROR(db->OpenImpl());
  return db;
}

Database::~Database() { Close().ok(); }

std::string Database::TableDir(TableId id) const {
  return options_.path + StringPrintf("/tables/t%u", id);
}

TableRuntime Database::MakeRuntime() const {
  TableRuntime runtime;
  runtime.storage = options_.storage;
  runtime.layout = options_.layout;
  runtime.bitmap_indexes = options_.bitmap_indexes;
  runtime.partitions = options_.partitions == 0 ? 1 : options_.partitions;
  runtime.keys = keys_.get();
  runtime.wal = wal_.get();
  runtime.clock = clock_;
  runtime.env = env_;
  return runtime;
}

Status Database::OpenImpl() {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  IDB_RETURN_IF_ERROR(env_->CreateDirs(options_.path));
  IDB_RETURN_IF_ERROR(env_->CreateDirs(options_.path + "/tables"));

  if (options_.clock != nullptr) {
    clock_ = options_.clock;
  } else {
    owned_clock_ = std::make_unique<SystemClock>();
    clock_ = owned_clock_.get();
  }

  keys_ = std::make_unique<KeyManager>(options_.path + "/KEYSTORE", env_);
  IDB_RETURN_IF_ERROR(keys_->Open());

  const std::string catalog_path = options_.path + "/CATALOG";
  if (env_->FileExists(catalog_path)) {
    IDB_ASSIGN_OR_RETURN(catalog_, Catalog::LoadFrom(catalog_path, env_));
  } else {
    catalog_ = std::make_unique<Catalog>();
  }

  // WAL sharding defaults to one stream per table partition, so a
  // partition's redo lives in exactly one stream and commits on distinct
  // partitions never share a log mutex or an fsync queue. The WalManager
  // pins whatever count is already on disk.
  WalOptions wal_options = options_.wal;
  if (wal_options.wal_streams == 0) {
    wal_options.wal_streams = options_.partitions == 0 ? 1 : options_.partitions;
  }
  wal_ = std::make_unique<WalManager>(options_.path + "/wal", wal_options,
                                      keys_.get(), env_);
  IDB_RETURN_IF_ERROR(wal_->Open());

  locks_ = std::make_unique<LockManager>();
  tm_ = std::make_unique<TransactionManager>(locks_.get(), wal_.get());
  degrader_ = std::make_unique<DegradationEngine>(
      tm_.get(), clock_, options_.degradation, &worker_pool_);

  for (const TableDef* def : catalog_->tables()) {
    auto table = std::make_unique<Table>(def, TableDir(def->id), MakeRuntime());
    IDB_RETURN_IF_ERROR(table->Open());
    degrader_->RegisterTable(table.get());
    tables_[def->id] = std::move(table);
  }

  IDB_RETURN_IF_ERROR(Recover());

  // Partitions rebuild their indexes on the worker pool — partition-
  // parallel recovery, like the degradation passes the pool was sized for.
  for (auto& [id, table] : tables_) {
    IDB_RETURN_IF_ERROR(
        table->RebuildIndexes(options_.degradation.worker_threads));
  }

  if (options_.degradation.background_thread) {
    IDB_RETURN_IF_ERROR(degrader_->Start());
  }

  // The daemon object always exists — pumped tests drive RunOnce and
  // Audit() without a thread; only `enabled` spawns the scheduler.
  maintenance_ = std::make_unique<MaintenanceDaemon>(this, options_.maintenance);
  if (options_.maintenance.enabled) {
    IDB_RETURN_IF_ERROR(maintenance_->Start());
  }
  return Status::OK();
}

Status Database::Recover() {
  IDB_ASSIGN_OR_RETURN(std::vector<Lsn> checkpoint,
                       wal_->ReadCheckpointPositions());

  // Streams may replay in parallel only when every table partition maps
  // wholly into one stream (stream count divides the partition count):
  // then any two conflicting records share a stream, and per-stream order
  // is commit order where it matters. Otherwise the WalManager merges
  // records globally in commit-sequence order.
  bool stream_local = true;
  for (const auto& [id, table] : tables_) {
    if (table->num_partitions() % wal_->num_streams() != 0) {
      stream_local = false;
      break;
    }
  }

  // Two passes inside RecoverCommitted: committed transaction set (commit
  // frames + per-stream record counts, so a torn tail in one stream voids a
  // cross-stream commit atomically), then idempotent redo of committed
  // work. The redo callback runs concurrently across streams when
  // stream_local; the per-partition apply paths are the same ones
  // concurrent live commits exercise.
  uint64_t max_txn_id = 0;
  IDB_RETURN_IF_ERROR(wal_->RecoverCommitted(
      checkpoint, stream_local, [&](const WalRecord& record) {
        auto it = tables_.find(record.table);
        if (it == tables_.end()) return Status::OK();  // dropped table
        switch (record.type) {
          case WalRecordType::kInsert:
            return it->second->RedoInsert(record);
          case WalRecordType::kDegradeStep:
            return it->second->RedoDegrade(record);
          case WalRecordType::kDelete:
            return it->second->RedoDelete(record);
          case WalRecordType::kUpdateStable:
            return it->second->RedoUpdateStable(record);
          default:
            return Status::OK();
        }
      },
      &max_txn_id));
  // Resume transaction ids above everything in the replay range: a reused
  // id would alias this generation's records on the next recovery.
  tm_->EnsureTxnIdsAbove(max_txn_id);
  return Status::OK();
}

Result<const TableDef*> Database::CreateTable(const std::string& name,
                                              Schema schema) {
  // Exclusive against the daemon's background readers of tables_ (cadence
  // checkpoints, dirty polls, audit sweeps).
  std::unique_lock<std::shared_mutex> ddl(ddl_mu_);
  IDB_ASSIGN_OR_RETURN(const TableDef* def,
                       catalog_->CreateTable(name, std::move(schema)));
  IDB_RETURN_IF_ERROR(catalog_->SaveTo(options_.path + "/CATALOG", env_));
  auto table = std::make_unique<Table>(def, TableDir(def->id), MakeRuntime());
  IDB_RETURN_IF_ERROR(table->Open());
  IDB_RETURN_IF_ERROR(table->RebuildIndexes());
  degrader_->RegisterTable(table.get());
  tables_[def->id] = std::move(table);
  return def;
}

Status Database::DropTable(const std::string& name) {
  // Exclusive DDL lock: an in-progress audit sweep or cadence checkpoint
  // holds it shared, so the table cannot be destroyed under either.
  std::unique_lock<std::shared_mutex> ddl(ddl_mu_);
  const TableDef* def = catalog_->GetTable(name);
  if (def == nullptr) return Status::NotFound("no such table: " + name);
  const TableId id = def->id;
  degrader_->UnregisterTable(id);
  auto it = tables_.find(id);
  if (it != tables_.end()) {
    IDB_RETURN_IF_ERROR(it->second->Drop());
    tables_.erase(it);
  }
  IDB_RETURN_IF_ERROR(catalog_->DropTable(name));
  return catalog_->SaveTo(options_.path + "/CATALOG", env_);
}

Table* Database::GetTable(const std::string& name) const {
  const TableDef* def = catalog_->GetTable(name);
  return def == nullptr ? nullptr : GetTable(def->id);
}

Table* Database::GetTable(TableId id) const {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Database::Write(WriteBatch* batch, const WriteOptions& options) {
  batch->row_ids_.clear();
  if (batch->ops_.empty()) return Status::OK();
  batch->row_ids_.reserve(batch->ops_.size());
  auto txn = Begin();
  // Batches are overwhelmingly single-table: resolve the name once per run
  // of identical names instead of one catalog lookup per row.
  Table* table = nullptr;
  const std::string* resolved_name = nullptr;
  for (const WriteBatch::Op& op : batch->ops_) {
    if (resolved_name == nullptr || op.table != *resolved_name) {
      table = GetTable(op.table);
      resolved_name = &op.table;
    }
    if (table == nullptr) {
      Abort(txn.get());
      batch->row_ids_.clear();
      return Status::NotFound("no such table: " + op.table);
    }
    if (op.is_insert) {
      auto row_id = table->Insert(txn.get(), op.row);
      if (!row_id.ok()) {
        Abort(txn.get());
        batch->row_ids_.clear();
        return row_id.status();
      }
      batch->row_ids_.push_back(*row_id);
    } else {
      const Status status = table->Delete(txn.get(), op.row_id);
      if (!status.ok()) {
        Abort(txn.get());
        batch->row_ids_.clear();
        return status;
      }
      batch->row_ids_.push_back(kInvalidRowId);
    }
  }
  const Status status = tm_->Commit(txn.get(), options.sync);
  if (!status.ok()) batch->row_ids_.clear();
  return status;
}

Result<RowId> Database::Insert(const std::string& table_name,
                               const std::vector<Value>& row,
                               const WriteOptions& options) {
  WriteBatch batch;
  batch.Insert(table_name, row);
  IDB_RETURN_IF_ERROR(Write(&batch, options));
  return batch.row_ids()[0];
}

Status Database::Delete(const std::string& table_name, RowId row_id,
                        const WriteOptions& options) {
  WriteBatch batch;
  batch.Delete(table_name, row_id);
  return Write(&batch, options);
}

Status Database::Checkpoint() {
  // Fuzzy checkpoint: capture the replay-start LSN vector BEFORE flushing
  // any table state, at a point where no commit is between its WAL append
  // and its apply. A transaction committing mid-flush (a degradation
  // worker, a concurrent WriteBatch) may be only partially reflected in the
  // flushed metas; starting replay at `begin` re-applies it idempotently
  // instead of silently excluding it — without this, a degrade step
  // committing during the flush could resurface its accurate value after
  // recovery.
  const std::vector<Lsn> begin = tm_->CheckpointBeginPositions();

  // Write-ahead barrier: every record the partitions have already applied
  // must be durable BEFORE any store flush makes its effects durable.
  // Degrade commits reach the WAL buffers without an fsync; a store
  // checkpoint that persists their pops while the record still sits in an
  // unsynced WAL tail lets a crash forget the record but keep the pop — the
  // value is then gone from every store with no replay left to rebuild it.
  // Syncing the streams first restores the invariant that durable store
  // state is always covered by durable log.
  IDB_RETURN_IF_ERROR(wal_->Sync());

  // Incremental flush: only partitions mutated since their last flush do
  // I/O, fanned out over the degradation pool size — so one large cold
  // table no longer stalls the retirement cadence scrubbing depends on.
  // The shared DDL lock pins the table set for the whole flush: the daemon
  // checkpoints from its scheduler thread, and a concurrent DropTable must
  // not destroy a partition mid-flush.
  std::shared_lock<std::shared_mutex> ddl(ddl_mu_);
  std::vector<TablePartition*> units;
  for (auto& [id, table] : tables_) {
    for (uint32_t p = 0; p < table->num_partitions(); ++p) {
      units.push_back(table->partition(p));
    }
  }
  std::atomic<uint64_t> flushed{0};
  std::atomic<uint64_t> clean{0};
  IDB_RETURN_IF_ERROR(worker_pool_.Run(
      std::max<size_t>(options_.degradation.worker_threads, 1), units.size(),
      [&](size_t i) {
        IDB_ASSIGN_OR_RETURN(const bool ran,
                             units[i]->CheckpointIfDirty(begin));
        (ran ? flushed : clean).fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }));
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_partitions_flushed_.fetch_add(flushed.load(),
                                           std::memory_order_relaxed);
  checkpoint_partitions_clean_.fetch_add(clean.load(),
                                         std::memory_order_relaxed);

  // Stamp the manifest from the per-partition low-water marks: retirement
  // must never outrun the weakest partition's durable coverage. Today every
  // partition just advanced to `begin`, so the minimum equals `begin` — but
  // deriving it from the partitions keeps the safety argument local if a
  // future path checkpoints partitions at different cadences.
  std::vector<Lsn> low_water = begin;
  for (TablePartition* unit : units) {
    const std::vector<Lsn> mark = unit->clean_through();
    if (mark.size() != low_water.size()) {
      // Empty (or stream-count-mismatched) mark = "nothing covered": pin
      // the manifest to zero rather than silently treating the partition
      // as covered. Unreachable while every partition advances above, but
      // a future partial-checkpoint cadence must fail safe.
      std::fill(low_water.begin(), low_water.end(), Lsn{0});
      break;
    }
    for (size_t s = 0; s < low_water.size(); ++s) {
      low_water[s] = std::min(low_water[s], mark[s]);
    }
  }
  return wal_->LogCheckpointAll(low_water).status();
}

uint64_t Database::DirtyPartitions() const {
  std::shared_lock<std::shared_mutex> ddl(ddl_mu_);
  uint64_t dirty = 0;
  for (const auto& [id, table] : tables_) {
    for (uint32_t p = 0; p < table->num_partitions(); ++p) {
      if (table->partition(p)->dirty()) ++dirty;
    }
  }
  return dirty;
}

AuditReport Database::RunAuditSweep(const DeletionAuditor& auditor, Micros now,
                                    Micros grace) const {
  std::shared_lock<std::shared_mutex> ddl(ddl_mu_);
  std::vector<Table*> tables;
  tables.reserve(tables_.size());
  for (const auto& [id, table] : tables_) tables.push_back(table.get());
  return auditor.Run(tables, now, grace);
}

Database::Stats Database::stats() const {
  Stats stats;
  stats.wal = wal_->stats();
  stats.txn = tm_->stats();
  stats.degradation = degrader_->stats();
  stats.scan.batches = scan_counters_.batches.load(std::memory_order_relaxed);
  stats.scan.rows = scan_counters_.rows.load(std::memory_order_relaxed);
  stats.scan.prefetch_stalls =
      scan_counters_.prefetch_stalls.load(std::memory_order_relaxed);
  stats.scan.rows_prefiltered =
      scan_counters_.rows_prefiltered.load(std::memory_order_relaxed);
  stats.scan.store_probes_issued =
      scan_counters_.store_probes_issued.load(std::memory_order_relaxed);
  stats.scan.store_probes_skipped =
      scan_counters_.store_probes_skipped.load(std::memory_order_relaxed);
  stats.scan.aggregate_partials_merged =
      scan_counters_.aggregate_partials_merged.load(std::memory_order_relaxed);
  stats.scan.morsels_claimed =
      scan_counters_.morsels_claimed.load(std::memory_order_relaxed);
  stats.scan.morsels_stolen =
      scan_counters_.morsels_stolen.load(std::memory_order_relaxed);
  stats.scan.steal_failures =
      scan_counters_.steal_failures.load(std::memory_order_relaxed);
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  stats.checkpoint_partitions_flushed =
      checkpoint_partitions_flushed_.load(std::memory_order_relaxed);
  stats.checkpoint_partitions_clean =
      checkpoint_partitions_clean_.load(std::memory_order_relaxed);
  if (maintenance_ != nullptr) stats.maintenance = maintenance_->stats();
  stats.service.submitted =
      service_counters_.submitted.load(std::memory_order_relaxed);
  stats.service.admitted =
      service_counters_.admitted.load(std::memory_order_relaxed);
  stats.service.queued = service_counters_.queued.load(std::memory_order_relaxed);
  stats.service.rejected_overload =
      service_counters_.rejected_overload.load(std::memory_order_relaxed);
  stats.service.rejected_shutdown =
      service_counters_.rejected_shutdown.load(std::memory_order_relaxed);
  stats.service.rejected_deadline =
      service_counters_.rejected_deadline.load(std::memory_order_relaxed);
  stats.service.timeouts =
      service_counters_.timeouts.load(std::memory_order_relaxed);
  stats.service.cancelled =
      service_counters_.cancelled.load(std::memory_order_relaxed);
  stats.service.max_queue_depth =
      service_counters_.max_queue_depth.load(std::memory_order_relaxed);
  stats.service.degradation_reserved_dispatches = worker_pool_.reserved_grants();
  const IoCounters io = env_->io_counters();
  stats.io.writes = io.writes;
  stats.io.syncs = io.syncs;
  stats.io.sync_failures = io.sync_failures;
  stats.io.injected_faults = io.injected_faults;
  stats.io.retries =
      stats.degradation.io_retries + stats.maintenance.io_retries;
  Status first = FirstBackgroundError();
  if (!first.ok()) stats.io.first_error = first.ToString();
  return stats;
}

Status Database::FirstBackgroundError() const {
  if (maintenance_ != nullptr) {
    Status status = maintenance_->first_error();
    if (!status.ok()) return status;
  }
  if (degrader_ != nullptr) {
    Status status = degrader_->first_error();
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Result<size_t> Database::RunDegradationOnce() {
  return degrader_->RunDue(clock_->NowMicros());
}

Status Database::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  // Shutdown order contract (see the header): the service front end drains
  // FIRST — queued statements reject with Shutdown, in-flight ones finish —
  // so nothing new reaches the engine below; then the maintenance daemon
  // stops so no new background checkpoint or audit can start while the
  // engine drains; then the degrader's thread; then a bounded quiesce for
  // any still-in-flight caller-pumped pass; only then the final checkpoint.
  std::function<void()> pre_close;
  {
    std::lock_guard<std::mutex> lock(pre_close_mu_);
    pre_close = pre_close_hook_;
  }
  if (pre_close) pre_close();
  if (maintenance_ != nullptr) maintenance_->Stop();
  degrader_->Stop();
  if (!degrader_->Quiesce(options_.maintenance.close_quiesce_timeout)) {
    // Not fatal: checkpoints are fuzzy, so the final checkpoint is correct
    // against in-flight work — an orderly close just prefers quiescence.
    IDB_WARN("Close: degrader did not quiesce within %lld us",
             static_cast<long long>(options_.maintenance.close_quiesce_timeout));
  }
  assert(maintenance_ == nullptr || !maintenance_->running());
  assert(!degrader_->running());
  Status status = Checkpoint();
  // Surface the first sticky background I/O error even when the final
  // checkpoint succeeded: a background loop that hit (and maybe retried
  // past) a disk failure must not close with a silent OK.
  if (status.ok()) status = FirstBackgroundError();
  return status;
}

}  // namespace instantdb
