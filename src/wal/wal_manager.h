#ifndef INSTANTDB_WAL_WAL_MANAGER_H_
#define INSTANTDB_WAL_WAL_MANAGER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/options.h"
#include "storage/key_manager.h"
#include "util/file.h"
#include "wal/log_record.h"
#include "wal/wal_stream.h"

namespace instantdb {

/// \brief Sharded redo log: a router over N independent WalStreams with
/// global commit ordering and degradation-aware retirement.
///
/// The paper (§III, citing Stahlberg et al.) observes that traditional WALs
/// keep every inserted value recoverable long after deletion. Accurate
/// degradable values enter the log exactly once, inside kInsert records;
/// three strategies (WalPrivacyMode) bound their lifetime:
///
///  - kPlain: retired segments are renamed to `*.recycled` and left on disk.
///    This models the unintended retention of real systems (log archives,
///    recycled-but-unscrubbed segments) and is the unsafe baseline the
///    forensic experiments scan.
///  - kScrub: retired segments are zero-overwritten, synced, and unlinked —
///    per stream, so retirement proceeds stream-by-stream.
///  - kEncryptedEpoch: each insert's degradable payload is encrypted under
///    a per-(table, epoch) key shared by every stream. Destroying the key
///    makes all log copies in all streams unreadable at once.
///
/// Sharding: records route to stream `row_id % N` — the same hash the
/// tables use for partitioning — so a partition's redo lives in exactly one
/// stream whenever the stream count divides the partition count. Commits
/// serialize only on the streams they touch; their syncs overlap in the
/// I/O layer instead of queueing behind one file. `WalOptions::wal_streams`
/// picks N at creation; the count is persisted in `<dir>/STREAMS` and a
/// reopen keeps the on-disk count (re-routing would strand old records).
/// N = 1 stores segments directly under the log directory — byte-for-byte
/// the pre-sharding layout — while N > 1 gives stream k the subdirectory
/// `s<k>`.
///
/// Commit ordering: AppendCommit stamps every commit frame with a global
/// commit sequence number (CSN) plus the number of records the transaction
/// appended to each stream. Recovery scans streams in parallel, accepts a
/// transaction only when its commit frame AND all its per-stream records
/// survived (a torn tail in one stream atomically voids a cross-stream
/// commit that was never acknowledged), and replays either stream-parallel
/// (when partitions map wholly into streams) or merged in CSN order.
///
/// Checkpoints: one CHECKPOINT manifest records the per-stream vector of
/// replay-start LSNs; fuzzy checkpoints and segment retirement proceed
/// stream-by-stream against it.
class Env;

class WalManager {
 public:
  /// `env` == nullptr uses Env::Default(); the same env is handed to every
  /// stream, so all physical log I/O funnels through one seam.
  WalManager(std::string dir, const WalOptions& options, KeyManager* keys,
             Env* env = nullptr);
  ~WalManager();
  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Resolves the stream count (persisted STREAMS file wins; a legacy
  /// single-stream layout pins 1) and opens every stream, truncating torn
  /// tails.
  Status Open();

  uint32_t num_streams() const {
    return static_cast<uint32_t>(streams_.size());
  }

  /// Stream a record routes to: row records by `row_id % N`, degradation
  /// steps by their first entry's row id (all entries of one step share a
  /// partition), everything else by transaction id.
  uint32_t StreamOf(const WalRecord& record) const;

  /// Appends one record to its stream; returns its stream-local LSN.
  Result<Lsn> Append(const WalRecord& record, bool sync);

  /// Group append: routes each record to its stream and appends each
  /// stream's run as one buffered write + at most one sync. Returns the
  /// stream-local LSN of the first record. (Transactions commit through
  /// AppendCommit instead, which adds the cross-stream atomicity metadata.)
  Result<Lsn> AppendBatch(const std::vector<const WalRecord*>& records,
                          bool sync);

  /// Transaction commit: routes `ops` to their streams, stamps `commit`
  /// with the next global commit sequence number and the per-stream record
  /// counts, appends it to the stream of the first op (so a stream-local
  /// transaction costs one write on one stream), and when `sync` (or
  /// WalOptions::sync_on_commit) blocks until every touched stream's synced
  /// watermark covers this transaction's bytes — at most one sync per
  /// stream, and under concurrency usually a *shared* one: the stream's
  /// group-commit leader absorbs every committer parked on the watermark.
  /// With one stream this degenerates to exactly the unsharded group
  /// commit: ops and the unstamped commit marker in one buffered write,
  /// byte-identical to the pre-sharding log.
  Status AppendCommit(const std::vector<const WalRecord*>& ops,
                      WalRecord* commit, bool sync);

  /// Syncs every stream.
  Status Sync();

  /// End of stream 0 (the whole log when unsharded; tests and single-stream
  /// tools).
  Lsn next_lsn() const { return streams_[0]->next_lsn(); }

  /// Per-stream end-of-log vector, indexed by stream id. The commit barrier
  /// (TransactionManager::CheckpointBeginPositions) snapshots this with no
  /// commit in flight, so no transaction straddles the returned positions.
  std::vector<Lsn> StreamEnds() const;

  /// Durably checkpoints every stream: appends a kCheckpoint record and
  /// rotates per stream, writes the CHECKPOINT manifest carrying the whole
  /// replay-start vector, then retires fully-covered segments per the
  /// privacy mode, stream by stream. `replay_from` must be captured BEFORE
  /// flushing the storage state the checkpoint covers (fuzzy-checkpoint
  /// begin positions — with incremental checkpointing, the element-wise
  /// minimum of the per-partition low-water marks); pass an empty vector
  /// when no writes are in flight (quiescent form: each stream covers
  /// everything logged so far). Returns the vector replay must start from
  /// after a crash. The on-disk CHECKPOINT format is unchanged: one-stream
  /// manifests keep the legacy single-LSN layout.
  Result<std::vector<Lsn>> LogCheckpointAll(const std::vector<Lsn>& replay_from);

  /// Replay-start vector recorded by the last completed checkpoint; zeros
  /// if none.
  Result<std::vector<Lsn>> ReadCheckpointPositions() const;

  /// Replays stream 0 (the whole log when unsharded) in stream order.
  Status Replay(Lsn from,
                const std::function<Status(const WalRecord&, Lsn)>& fn) const;

  /// Replays one stream in stream order from `from`.
  Status ReplayStream(uint32_t stream, Lsn from,
                      const std::function<Status(const WalRecord&, Lsn)>& fn) const;

  /// Two-pass sharded recovery. Pass 1 scans every stream from its
  /// checkpoint position (one thread per stream) and derives the committed
  /// transaction set: a commit frame must be present and, when it carries
  /// per-stream record counts, every counted record must have survived its
  /// stream's torn-tail truncation — so a cross-stream commit that lost
  /// records in one stream is voided atomically. Pass 2 redoes the data
  /// records of committed transactions: when `stream_local_apply` (every
  /// table partition maps wholly into one stream, so all conflicting
  /// records share a stream) streams replay in parallel, one thread each;
  /// otherwise records are merged and applied globally in commit-sequence
  /// order. `redo` must be thread-safe in the parallel case.
  ///
  /// Recovery also advances the global commit sequence past everything
  /// scanned (a reopened log must never mint CSNs that collide with live
  /// pre-crash frames, or a second crash would mis-order the merge), and
  /// reports the largest transaction id seen via `max_txn_id` (when
  /// non-null) so the transaction manager can resume above it — a reused
  /// txn id could satisfy a torn transaction's record counts with a prior
  /// generation's records.
  Status RecoverCommitted(const std::vector<Lsn>& from, bool stream_local_apply,
                          const std::function<Status(const WalRecord&)>& redo,
                          uint64_t* max_txn_id = nullptr);

  /// kEncryptedEpoch: destroys the keys of every epoch of `table` that ends
  /// at or before `safe_time` (all its tuples have left phase 0). Keys are
  /// shared across streams, so this kills every stream's copies at once.
  Status DestroyEpochKeysThrough(TableId table, Micros safe_time);

  uint64_t EpochOf(Micros t) const {
    return static_cast<uint64_t>(t) / static_cast<uint64_t>(options_.epoch_micros);
  }

  /// Deletion-assurance probes (maintain/audit.h). `ExposureAudit` covers
  /// what plaintext-readable log bytes may still hold an accurate value past
  /// its phase-0 deadline:
  ///  - `exposed_segments`: live segments whose per-segment payload-deadline
  ///    minimum is at or before `horizon` (kPlain, kScrub — under
  ///    kEncryptedEpoch live payloads are ciphertext and exposure is the
  ///    epoch keys' problem, so the count is 0 by construction).
  ///  - `unscrubbed_recycled`: segments retired by renaming to `*.recycled`
  ///    and left on disk (kPlain only). These were never scanned again, so
  ///    every one is assumed to hold formerly-accurate bytes — the unsafe
  ///    baseline the audit exists to flag.
  struct ExposureAudit {
    uint64_t exposed_segments = 0;
    uint64_t unscrubbed_recycled = 0;
  };
  ExposureAudit AuditExposure(Micros horizon) const;

  /// Earliest phase-0 payload deadline still held by any live segment of
  /// any stream; kForever when the log holds no degradable payload. Drives
  /// the maintenance daemon's adaptive checkpoint cadence: a checkpoint at
  /// this instant rotates + retires the segment before its payload becomes
  /// an exposure finding. Deadlines are tracked in every privacy mode (under
  /// kEncryptedEpoch an early checkpoint still shrinks the decryptable
  /// window between epoch-key destructions).
  Micros EarliestPayloadDeadline() const;

  /// kEncryptedEpoch: number of live (undestroyed) epoch keys of `table`
  /// whose epoch ends at or before `safe_time` — keys DestroyEpochKeysThrough
  /// should already have destroyed. Non-zero means accurate log payloads are
  /// still decryptable past their deadline. 0 in the other privacy modes.
  /// Bounded by the keystore's live key count (it enumerates live keys with
  /// the table's prefix rather than walking all elapsed epochs).
  uint64_t LingeringEpochKeys(TableId table, Micros safe_time) const;

  /// True when epoch keys exist to destroy (kEncryptedEpoch). Lets callers
  /// skip computing the safe-time bound — which walks live phase-0 state —
  /// in the other privacy modes.
  bool epoch_keys_enabled() const {
    return options_.privacy_mode == WalPrivacyMode::kEncryptedEpoch;
  }

  struct Stats {
    uint64_t records_appended = 0;
    uint64_t bytes_appended = 0;
    uint64_t segments_created = 0;
    uint64_t segments_retired = 0;
    uint64_t scrub_bytes = 0;
    uint64_t epoch_keys_destroyed = 0;
    /// Commit pipeline (see WalStream::Stats): fdatasyncs actually issued,
    /// durability demands, and demands absorbed by another leader's sync.
    uint64_t syncs = 0;
    uint64_t sync_requests = 0;
    uint64_t commits_absorbed = 0;
    /// Streams whose sync failed and that now fail every append/sync fast
    /// (see WalStream::poisoned()). Non-zero means the log has lost its
    /// durability guarantee until reopen.
    uint64_t poisoned_streams = 0;
  };
  /// Aggregated over streams.
  Stats stats() const;

  /// Committers currently parked on any stream's group-commit sync
  /// watermark (Σ WalStream::sync_waiters). The service front end's WAL
  /// backpressure signal.
  size_t SyncWaiters() const {
    size_t waiters = 0;
    for (const auto& stream : streams_) waiters += stream->sync_waiters();
    return waiters;
  }
  WalStream::Stats stream_stats(uint32_t stream) const {
    return streams_[stream]->stats();
  }

  const std::string& dir() const { return dir_; }

 private:
  std::string StreamDir(uint32_t stream) const;
  std::string StreamCountPath() const { return dir_ + "/STREAMS"; }
  Result<uint32_t> ResolveStreamCount() const;
  Status WriteManifest(const std::vector<Lsn>& lsns);

  const std::string dir_;
  const WalOptions options_;
  KeyManager* const keys_;
  Env* const env_;

  std::vector<std::unique_ptr<WalStream>> streams_;

  /// Global commit sequence: stamped into commit frames when sharded so
  /// recovery can order commits across streams. 0 marks "unstamped"
  /// (single-stream and legacy logs, ordered by the log itself).
  std::atomic<uint64_t> next_commit_seq_{1};

  /// Serializes whole checkpoints (rotate → manifest → retire). Multiple
  /// drivers checkpoint concurrently (the maintenance daemon's cadence vs.
  /// caller-driven Database::Checkpoint): unserialized, both would write
  /// CHECKPOINT.tmp and race the rename — and an interleaving could stamp
  /// an older LSN vector over a newer manifest, regressing the durable
  /// replay pointer. Appends/syncs never take this.
  std::mutex checkpoint_mu_;

  /// Guards the epoch watermark map (keys are shared across streams).
  mutable std::mutex epoch_mu_;
  std::map<TableId, uint64_t> epoch_watermark_;  // first not-yet-destroyed
  std::atomic<uint64_t> epoch_keys_destroyed_{0};
};

}  // namespace instantdb

#endif  // INSTANTDB_WAL_WAL_MANAGER_H_
