#ifndef INSTANTDB_WAL_WAL_MANAGER_H_
#define INSTANTDB_WAL_WAL_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/options.h"
#include "storage/key_manager.h"
#include "util/file.h"
#include "wal/log_record.h"

namespace instantdb {

/// \brief Segmented redo log with degradation-aware retirement.
///
/// The paper (§III, citing Stahlberg et al.) observes that traditional WALs
/// keep every inserted value recoverable long after deletion. Accurate
/// degradable values enter the log exactly once, inside kInsert records;
/// three strategies (WalPrivacyMode) bound their lifetime:
///
///  - kPlain: retired segments are renamed to `*.recycled` and left on disk.
///    This models the unintended retention of real systems (log archives,
///    recycled-but-unscrubbed segments) and is the unsafe baseline the
///    forensic experiments scan.
///  - kScrub: retired segments are zero-overwritten, synced, and unlinked.
///    Timeliness is inherited from the checkpoint cadence: a forced
///    checkpoint before the earliest phase-0 deadline guarantees no
///    accurate value outlives its LCP in the log.
///  - kEncryptedEpoch: each insert's degradable payload is encrypted under
///    a per-(table, epoch) key, epoch = insert_time / epoch_micros.
///    Destroying the key (when every tuple of the epoch has left phase 0)
///    makes all log copies — including archived ones — unreadable at once,
///    with no rewrite I/O.
///
/// Framing: [u32 masked CRC32C(body)] [u32 len] [body]. LSNs are logical
/// byte offsets; a segment file `wal_<start-lsn>.log` holds the frames
/// starting at that offset. Recovery tolerates a torn tail frame.
///
/// Thread-safety: all public methods are serialized on an internal mutex,
/// so commits issued by concurrent degradation workers and user
/// transactions interleave at whole-append granularity (an append is never
/// torn between two transactions' frames).
class WalManager {
 public:
  WalManager(std::string dir, const WalOptions& options, KeyManager* keys);
  ~WalManager();
  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Scans existing segments, truncating a torn tail, and positions the
  /// writer at the end of the log.
  Status Open();

  /// Appends one record; returns its LSN. Syncs when `sync` (commit with
  /// WriteOptions::sync or WalOptions::sync_on_commit).
  Result<Lsn> Append(const WalRecord& record, bool sync);

  /// Group commit: appends all records as ONE buffered file write followed
  /// by at most one sync, instead of a write (and possible sync) per
  /// record. This is what makes a WriteBatch of N inserts cost one WAL sync
  /// rather than N. Returns the LSN of the first record.
  Result<Lsn> AppendBatch(const std::vector<const WalRecord*>& records,
                          bool sync);

  Status Sync();

  Lsn next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_;
  }

  /// Durably marks everything before `replay_from` as checkpointed: appends
  /// a kCheckpoint record, writes the CHECKPOINT pointer file, and retires
  /// fully-covered segments per the privacy mode. Returns the LSN replay
  /// must start from after a crash.
  ///
  /// `replay_from` must be captured BEFORE flushing the storage state the
  /// checkpoint covers (fuzzy-checkpoint begin LSN): a transaction — e.g. a
  /// degradation step from the worker pool — that commits while storage is
  /// being flushed lands at an LSN at or after it and is replayed
  /// idempotently on recovery. The zero-argument form uses the current end
  /// of the log (callers that know no writes are in flight).
  Result<Lsn> LogCheckpoint(Lsn replay_from);
  Result<Lsn> LogCheckpoint();

  /// LSN recorded by the last completed checkpoint; 0 if none.
  Result<Lsn> ReadCheckpointLsn() const;

  /// Replays records with LSN >= `from` in order. `fn` returning non-OK
  /// aborts the replay with that status.
  Status Replay(Lsn from,
                const std::function<Status(const WalRecord&, Lsn)>& fn) const;

  /// kEncryptedEpoch: destroys the keys of every epoch of `table` that ends
  /// at or before `safe_time` (all its tuples have left phase 0).
  Status DestroyEpochKeysThrough(TableId table, Micros safe_time);

  uint64_t EpochOf(Micros t) const {
    return static_cast<uint64_t>(t) / static_cast<uint64_t>(options_.epoch_micros);
  }

  /// True when epoch keys exist to destroy (kEncryptedEpoch). Lets callers
  /// skip computing the safe-time bound — which walks live phase-0 state —
  /// in the other privacy modes.
  bool epoch_keys_enabled() const {
    return options_.privacy_mode == WalPrivacyMode::kEncryptedEpoch;
  }

  struct Stats {
    uint64_t records_appended = 0;
    uint64_t bytes_appended = 0;
    uint64_t segments_created = 0;
    uint64_t segments_retired = 0;
    uint64_t scrub_bytes = 0;
    uint64_t epoch_keys_destroyed = 0;
    uint64_t syncs = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  const std::string& dir() const { return dir_; }

 private:
  std::string SegmentPath(Lsn start) const;
  std::string EpochKeyId(TableId table, uint64_t epoch) const;
  Result<Lsn> AppendLocked(const WalRecord& record, bool sync);
  Result<Lsn> LogCheckpointLocked(Lsn replay_from);
  Status OpenNewSegment();
  Status RetireSegmentsThrough(Lsn lsn);
  WalBlobCipher MakeEncryptor(Lsn lsn);
  WalBlobCipher MakeDecryptor(Lsn lsn) const;

  const std::string dir_;
  const WalOptions options_;
  KeyManager* const keys_;

  /// Guards writer state, segment list, epoch watermarks and stats.
  mutable std::mutex mu_;

  struct SegmentInfo {
    Lsn start = 0;
    Lsn end = 0;  // exclusive
  };
  std::vector<SegmentInfo> segments_;  // sorted by start
  std::unique_ptr<WritableFile> writer_;
  Lsn next_lsn_ = 0;
  std::map<TableId, uint64_t> epoch_watermark_;  // first not-yet-destroyed epoch
  Stats stats_;
};

}  // namespace instantdb

#endif  // INSTANTDB_WAL_WAL_MANAGER_H_
