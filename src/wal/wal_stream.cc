#include "wal/wal_stream.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "util/crc32c.h"

namespace instantdb {

std::string WalEpochKeyId(TableId table, uint64_t epoch) {
  return StringPrintf("wal.t%u.e%llu", table,
                      static_cast<unsigned long long>(epoch));
}

WalStream::WalStream(std::string dir, uint32_t stream_id,
                     const WalOptions& options, KeyManager* keys)
    : dir_(std::move(dir)), id_(stream_id), options_(options), keys_(keys) {}

WalStream::~WalStream() {
  if (writer_ != nullptr) writer_->Close().ok();
}

std::string WalStream::SegmentPath(Lsn start) const {
  return dir_ + StringPrintf("/wal_%016llx.log",
                             static_cast<unsigned long long>(start));
}

Status WalStream::Open() {
  IDB_RETURN_IF_ERROR(CreateDirs(dir_));
  segments_.clear();
  writer_.reset();
  next_lsn_ = 0;

  IDB_ASSIGN_OR_RETURN(auto names, ListDir(dir_));
  std::vector<Lsn> starts;
  for (const std::string& name : names) {
    if (StartsWith(name, "wal_") && EndsWith(name, ".log")) {
      starts.push_back(std::strtoull(name.c_str() + 4, nullptr, 16));
    }
  }
  std::sort(starts.begin(), starts.end());
  for (Lsn start : starts) {
    IDB_ASSIGN_OR_RETURN(uint64_t size, GetFileSize(SegmentPath(start)));
    segments_.push_back({start, start + size});
  }
  // Segments are contiguous in LSN space, so a sealed segment's logical end
  // is the next segment's start — a crash between preallocating a fresh
  // segment and trimming the old one leaves physical sizes that overstate
  // the tail; the successor's name is authoritative.
  for (size_t i = 0; i + 1 < segments_.size(); ++i) {
    segments_[i].end = segments_[i + 1].start;
  }

  if (!segments_.empty()) {
    // Validate the tail segment frame-by-frame; drop a torn suffix.
    SegmentInfo& last = segments_.back();
    IDB_ASSIGN_OR_RETURN(std::string raw,
                         ReadFileToString(SegmentPath(last.start)));
    uint64_t off = 0;
    while (off + 8 <= raw.size()) {
      const uint32_t masked = DecodeFixed32(raw.data() + off);
      const uint32_t len = DecodeFixed32(raw.data() + off + 4);
      if (off + 8 + len > raw.size()) break;
      if (crc32c::Unmask(masked) !=
          crc32c::Value(raw.data() + off + 8, len)) {
        break;
      }
      off += 8 + len;
    }
    if (off < raw.size()) {
      // Torn suffix, or the zeroed remainder of a preallocated segment.
      IDB_RETURN_IF_ERROR(TruncateFile(SegmentPath(last.start), off));
      last.end = last.start + off;
    }
    next_lsn_ = last.end;
    // Positional writer, not O_APPEND: preallocation extends the physical
    // file past the logical end, and appends must land at the logical end.
    IDB_ASSIGN_OR_RETURN(
        writer_, NewWritableFile(SegmentPath(last.start), /*truncate=*/false));
    IDB_RETURN_IF_ERROR(PreallocateActiveLocked());
  }
  return Status::OK();
}

Status WalStream::PreallocateActiveLocked() {
  // Reserve the segment's full extent and make the size durable once, so
  // every commit sync inside it can be a journal-free fdatasync. Best-
  // effort: filesystems without fallocate keep the plain fsync path.
  preallocated_ = false;
  const Lsn start = segments_.back().start;
  if (next_lsn_ - start >= options_.segment_bytes) return Status::OK();
  if (!writer_->Preallocate(options_.segment_bytes).ok()) return Status::OK();
  IDB_RETURN_IF_ERROR(writer_->Sync());
  preallocated_ = true;
  prealloc_end_ = start + options_.segment_bytes;
  return Status::OK();
}

Status WalStream::SyncWriterLocked() {
  if (preallocated_ && next_lsn_ <= prealloc_end_) return writer_->SyncData();
  return writer_->Sync();
}

Status WalStream::OpenNewSegment() {
  if (writer_ != nullptr) {
    IDB_RETURN_IF_ERROR(writer_->Sync());
    IDB_RETURN_IF_ERROR(writer_->Close());
    // Trim the sealed segment's preallocated remainder so retired and
    // replayed segments are exactly their logical size.
    const SegmentInfo& sealed = segments_.back();
    if (preallocated_ && sealed.end - sealed.start < options_.segment_bytes) {
      IDB_RETURN_IF_ERROR(
          TruncateFile(SegmentPath(sealed.start), sealed.end - sealed.start));
    }
  }
  IDB_ASSIGN_OR_RETURN(writer_, NewWritableFile(SegmentPath(next_lsn_)));
  segments_.push_back({next_lsn_, next_lsn_});
  ++stats_.segments_created;
  IDB_RETURN_IF_ERROR(PreallocateActiveLocked());
  return Status::OK();
}

WalBlobCipher WalStream::MakeEncryptor(Lsn lsn) {
  if (options_.privacy_mode != WalPrivacyMode::kEncryptedEpoch) {
    return nullptr;
  }
  return [this, lsn](const WalRecord& record, const std::string& in,
                     std::string* out) {
    auto key = keys_->GetOrCreate(WalEpochKeyId(
        record.table,
        static_cast<uint64_t>(record.insert_time) /
            static_cast<uint64_t>(options_.epoch_micros)));
    if (!key.ok()) return false;
    *out = in;
    ChaCha20::XorStreamAt(*key, NonceForStreamOffset(id_, lsn), 0, out->data(),
                          out->size());
    return true;
  };
}

WalBlobCipher WalStream::MakeDecryptor(Lsn lsn) const {
  return [this, lsn](const WalRecord& record, const std::string& in,
                     std::string* out) {
    auto key = keys_->Get(WalEpochKeyId(
        record.table,
        static_cast<uint64_t>(record.insert_time) /
            static_cast<uint64_t>(options_.epoch_micros)));
    if (!key.ok()) return false;  // destroyed epoch: values are gone
    *out = in;
    ChaCha20::XorStreamAt(*key, NonceForStreamOffset(id_, lsn), 0, out->data(),
                          out->size());
    return true;
  };
}

Result<Lsn> WalStream::Append(const WalRecord& record, bool sync) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(record, sync);
}

Result<Lsn> WalStream::AppendLocked(const WalRecord& record, bool sync) {
  if (writer_ == nullptr ||
      (next_lsn_ - segments_.back().start) >= options_.segment_bytes) {
    IDB_RETURN_IF_ERROR(OpenNewSegment());
  }
  const Lsn lsn = next_lsn_;
  std::string body;
  EncodeWalRecord(record, MakeEncryptor(lsn), &body);
  std::string frame;
  PutFixed32(&frame, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  PutFixed32(&frame, static_cast<uint32_t>(body.size()));
  frame += body;
  IDB_RETURN_IF_ERROR(writer_->Append(frame));
  next_lsn_ += frame.size();
  segments_.back().end = next_lsn_;
  ++stats_.records_appended;
  stats_.bytes_appended += frame.size();
  if (sync || options_.sync_on_commit) {
    IDB_RETURN_IF_ERROR(SyncWriterLocked());
    ++stats_.syncs;
  }
  return lsn;
}

Result<Lsn> WalStream::AppendBatch(
    const std::vector<const WalRecord*>& records, bool sync) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records.empty()) return next_lsn_;
  Lsn first_lsn = 0;
  // Frames accumulate against a provisional LSN; shared state (next_lsn_,
  // segment end, stats) only advances once the buffered bytes are actually
  // on the file, so a failed write cannot desync LSNs from the physical
  // log (the per-LSN encryption nonces depend on this).
  Lsn lsn = next_lsn_;
  std::string buffer;
  uint64_t buffered_records = 0;
  auto flush = [&]() -> Status {
    if (buffer.empty()) return Status::OK();
    IDB_RETURN_IF_ERROR(writer_->Append(buffer));
    next_lsn_ = lsn;
    segments_.back().end = next_lsn_;
    stats_.records_appended += buffered_records;
    stats_.bytes_appended += buffer.size();
    buffer.clear();
    buffered_records = 0;
    return Status::OK();
  };
  std::string body;  // reused across records: one allocation per batch
  for (size_t i = 0; i < records.size(); ++i) {
    if (writer_ == nullptr ||
        (lsn - segments_.back().start) >= options_.segment_bytes) {
      // The buffered frames belong to the segment being closed: flush them
      // before rotating.
      IDB_RETURN_IF_ERROR(flush());
      IDB_RETURN_IF_ERROR(OpenNewSegment());
    }
    if (i == 0) first_lsn = lsn;
    body.clear();
    EncodeWalRecord(*records[i], MakeEncryptor(lsn), &body);
    PutFixed32(&buffer, crc32c::Mask(crc32c::Value(body.data(), body.size())));
    PutFixed32(&buffer, static_cast<uint32_t>(body.size()));
    buffer += body;
    lsn += 8 + body.size();
    ++buffered_records;
  }
  IDB_RETURN_IF_ERROR(flush());
  if (sync || options_.sync_on_commit) {
    IDB_RETURN_IF_ERROR(SyncWriterLocked());
    ++stats_.syncs;
  }
  return first_lsn;
}

Status WalStream::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (writer_ == nullptr) return Status::OK();
  ++stats_.syncs;
  return SyncWriterLocked();
}

Result<Lsn> WalStream::BeginCheckpoint(Lsn replay_from) {
  std::lock_guard<std::mutex> lock(mu_);
  if (replay_from != kLogEnd) replay_from = std::min(replay_from, next_lsn_);
  WalRecord record;
  record.type = WalRecordType::kCheckpoint;
  record.checkpoint_lsn = replay_from == kLogEnd ? next_lsn_ : replay_from;
  IDB_RETURN_IF_ERROR(AppendLocked(record, /*sync=*/true).status());
  // Fuzzy form: replay resumes at the begin LSN, so records committed while
  // storage was being flushed (between the caller capturing replay_from and
  // now) are replayed again, idempotently — including the kCheckpoint
  // record itself, which redo ignores. Quiescent form: resume after
  // everything logged so far.
  const Lsn lsn = replay_from == kLogEnd ? next_lsn_ : replay_from;
  // Rotate so the segment holding pre-checkpoint records (including the
  // accurate values of insert records) becomes retirable — without this,
  // kScrub could never clean the active segment and accurate values would
  // outlive their degradation deadline in the log.
  IDB_RETURN_IF_ERROR(OpenNewSegment());
  return lsn;
}

Status WalStream::RetireThrough(Lsn lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  while (segments_.size() > 1 && segments_.front().end <= lsn) {
    const SegmentInfo segment = segments_.front();
    const std::string path = SegmentPath(segment.start);
    switch (options_.privacy_mode) {
      case WalPrivacyMode::kPlain: {
        // Model real-world unintended retention: the bytes stay on disk.
        IDB_RETURN_IF_ERROR(RenameFile(path, path + ".recycled"));
        break;
      }
      case WalPrivacyMode::kScrub: {
        const uint64_t size = segment.end - segment.start;
        IDB_RETURN_IF_ERROR(OverwriteRange(path, 0, size));
        stats_.scrub_bytes += size;
        IDB_RETURN_IF_ERROR(RemoveFile(path));
        break;
      }
      case WalPrivacyMode::kEncryptedEpoch: {
        // Ciphertext is unreadable once its epoch key dies; plain unlink.
        IDB_RETURN_IF_ERROR(RemoveFile(path));
        break;
      }
    }
    segments_.erase(segments_.begin());
    ++stats_.segments_retired;
  }
  return Status::OK();
}

Status WalStream::Replay(
    Lsn from, const std::function<Status(const WalRecord&, Lsn)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SegmentInfo& segment : segments_) {
    if (segment.end <= from) continue;
    IDB_ASSIGN_OR_RETURN(std::string raw,
                         ReadFileToString(SegmentPath(segment.start)));
    uint64_t off = 0;
    while (off + 8 <= raw.size()) {
      const uint32_t masked = DecodeFixed32(raw.data() + off);
      const uint32_t len = DecodeFixed32(raw.data() + off + 4);
      if (off + 8 + len > raw.size()) break;  // torn tail
      if (crc32c::Unmask(masked) !=
          crc32c::Value(raw.data() + off + 8, len)) {
        break;
      }
      const Lsn lsn = segment.start + off;
      if (lsn >= from) {
        auto record = DecodeWalRecord(Slice(raw.data() + off + 8, len),
                                      MakeDecryptor(lsn));
        if (!record.ok()) return record.status();
        IDB_RETURN_IF_ERROR(fn(*record, lsn));
      }
      off += 8 + len;
    }
  }
  return Status::OK();
}

}  // namespace instantdb
