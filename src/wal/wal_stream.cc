#include "wal/wal_stream.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "io/env.h"
#include "util/crc32c.h"

namespace instantdb {

std::string WalEpochKeyId(TableId table, uint64_t epoch) {
  return StringPrintf("wal.t%u.e%llu", table,
                      static_cast<unsigned long long>(epoch));
}

WalStream::WalStream(std::string dir, uint32_t stream_id,
                     const WalOptions& options, KeyManager* keys, Env* env)
    : dir_(std::move(dir)),
      id_(stream_id),
      options_(options),
      keys_(keys),
      env_(env != nullptr ? env : Env::Default()) {}

WalStream::~WalStream() {
  if (writer_ != nullptr) writer_->Close().ok();
}

std::string WalStream::SegmentPath(Lsn start) const {
  return dir_ + StringPrintf("/wal_%016llx.log",
                             static_cast<unsigned long long>(start));
}

Status WalStream::Open() {
  IDB_RETURN_IF_ERROR(env_->CreateDirs(dir_));
  segments_.clear();
  writer_.reset();
  next_lsn_ = 0;

  IDB_ASSIGN_OR_RETURN(auto names, env_->ListDir(dir_));
  std::vector<Lsn> starts;
  for (const std::string& name : names) {
    if (StartsWith(name, "wal_") && EndsWith(name, ".log")) {
      starts.push_back(std::strtoull(name.c_str() + 4, nullptr, 16));
    }
  }
  std::sort(starts.begin(), starts.end());
  for (Lsn start : starts) {
    IDB_ASSIGN_OR_RETURN(uint64_t size, env_->GetFileSize(SegmentPath(start)));
    // Deadline unknown for bytes recovered from disk: 0 = assume exposed
    // (empty segments carry nothing and stay kForever via the fixup below).
    segments_.push_back({start, start + size, /*min_payload_deadline=*/0});
  }
  // Segments are contiguous in LSN space, so a sealed segment's logical end
  // is the next segment's start — a crash between preallocating a fresh
  // segment and trimming the old one leaves physical sizes that overstate
  // the tail; the successor's name is authoritative.
  for (size_t i = 0; i + 1 < segments_.size(); ++i) {
    segments_[i].end = segments_[i + 1].start;
  }
  for (SegmentInfo& segment : segments_) {
    if (segment.end == segment.start) segment.min_payload_deadline = kForever;
  }

  if (!segments_.empty()) {
    // Validate the tail segment frame-by-frame; drop a torn suffix.
    SegmentInfo& last = segments_.back();
    IDB_ASSIGN_OR_RETURN(std::string raw,
                         env_->ReadFileToString(SegmentPath(last.start)));
    uint64_t off = 0;
    while (off + 8 <= raw.size()) {
      const uint32_t masked = DecodeFixed32(raw.data() + off);
      const uint32_t len = DecodeFixed32(raw.data() + off + 4);
      if (off + 8 + len > raw.size()) break;
      if (crc32c::Unmask(masked) !=
          crc32c::Value(raw.data() + off + 8, len)) {
        break;
      }
      off += 8 + len;
    }
    if (off < raw.size()) {
      // Torn suffix, or the zeroed remainder of a preallocated segment.
      IDB_RETURN_IF_ERROR(env_->TruncateFile(SegmentPath(last.start), off));
      last.end = last.start + off;
    }
    next_lsn_ = last.end;
    // Positional writer, not O_APPEND: preallocation extends the physical
    // file past the logical end, and appends must land at the logical end.
    IDB_ASSIGN_OR_RETURN(
        writer_,
        env_->NewWritableFile(SegmentPath(last.start), /*truncate=*/false));
    IDB_RETURN_IF_ERROR(PreallocateActiveLocked());
  }
  // Everything recovered from disk is as durable as it will ever be.
  synced_lsn_ = next_lsn_;
  return Status::OK();
}

Status WalStream::PreallocateActiveLocked() {
  // Reserve the segment's full extent and make the size durable once, so
  // every commit sync inside it can be a journal-free fdatasync. Best-
  // effort: filesystems without fallocate keep the plain fsync path.
  preallocated_ = false;
  const Lsn start = segments_.back().start;
  if (next_lsn_ - start >= options_.segment_bytes) return Status::OK();
  if (!writer_->Preallocate(options_.segment_bytes).ok()) return Status::OK();
  IDB_RETURN_IF_ERROR(writer_->Sync());
  preallocated_ = true;
  prealloc_end_ = start + options_.segment_bytes;
  return Status::OK();
}

Status WalStream::OpenNewSegmentLocked(std::unique_lock<std::mutex>& lock) {
  if (writer_ != nullptr) {
    // A leader's fdatasync may be running on the current writer with the
    // mutex released; closing the file under it would pull the fd away.
    while (sync_in_flight_) sync_cv_.wait(lock);
    IDB_RETURN_IF_ERROR(writer_->Sync());
    // The seal fsync covered every append so far: committers parked on the
    // watermark are durable now.
    synced_lsn_ = std::max(synced_lsn_, next_lsn_);
    sync_cv_.notify_all();
    IDB_RETURN_IF_ERROR(writer_->Close());
    // Trim the sealed segment's preallocated remainder so retired and
    // replayed segments are exactly their logical size.
    const SegmentInfo& sealed = segments_.back();
    if (preallocated_ && sealed.end - sealed.start < options_.segment_bytes) {
      IDB_RETURN_IF_ERROR(
          env_->TruncateFile(SegmentPath(sealed.start),
                             sealed.end - sealed.start));
    }
  }
  IDB_ASSIGN_OR_RETURN(writer_, env_->NewWritableFile(SegmentPath(next_lsn_)));
  segments_.push_back({next_lsn_, next_lsn_});
  ++stats_.segments_created;
  IDB_RETURN_IF_ERROR(PreallocateActiveLocked());
  return Status::OK();
}

Status WalStream::PoisonLocked(const Status& cause) {
  if (poisoned_.ok()) {
    // First failure wins and is permanent (fsyncgate semantics): a failed
    // fdatasync may have dropped dirty pages a retry would no longer cover,
    // and a failed append leaves the positional fd ahead of next_lsn_ —
    // retry-and-pretend would ack commits whose bytes are not, or are not
    // where the LSN-derived nonces say they are, on disk.
    poisoned_ = Status::IOError("wal stream " + std::to_string(id_) +
                                " poisoned: " + cause.ToString());
    // Wake every parked group-commit waiter so it observes the poison
    // instead of sleeping for a watermark that will never advance.
    sync_cv_.notify_all();
  }
  return poisoned_;
}

WalBlobCipher WalStream::MakeDecryptor(Lsn lsn) const {
  return [this, lsn](const WalRecord& record, const std::string& in,
                     std::string* out) {
    auto key = keys_->Get(WalEpochKeyId(
        record.table,
        static_cast<uint64_t>(record.insert_time) /
            static_cast<uint64_t>(options_.epoch_micros)));
    if (!key.ok()) return false;  // destroyed epoch: values are gone
    *out = in;
    ChaCha20::XorStreamAt(*key, NonceForStreamOffset(id_, lsn), 0, out->data(),
                          out->size());
    return true;
  };
}

WalStream::PendingFrame WalStream::PrepareFrame(const WalRecord& record) const {
  PendingFrame frame;
  frame.payload_deadline = record.payload_deadline;
  std::string body;
  WalBlobRange range;
  if (options_.privacy_mode == WalPrivacyMode::kEncryptedEpoch &&
      record.type == WalRecordType::kInsert) {
    // The epoch key depends only on (table, insert time), so it can be
    // fetched here; only the nonce needs the LSN reserved under the mutex.
    auto key = keys_->GetOrCreate(WalEpochKeyId(
        record.table,
        static_cast<uint64_t>(record.insert_time) /
            static_cast<uint64_t>(options_.epoch_micros)));
    if (key.ok()) {
      EncodeWalRecordDeferBlob(record, &body, &range);
      frame.key = *key;
    } else {
      // Keystore unavailable: fall back to the plaintext layout, exactly
      // as the inline encryptor did when the key could not be minted.
      EncodeWalRecord(record, nullptr, &body);
    }
  } else {
    EncodeWalRecord(record, nullptr, &body);
  }
  frame.bytes.reserve(8 + body.size());
  if (range.length == 0) {
    PutFixed32(&frame.bytes,
               crc32c::Mask(crc32c::Value(body.data(), body.size())));
  } else {
    PutFixed32(&frame.bytes, 0);  // sealed with the blob once the LSN exists
  }
  PutFixed32(&frame.bytes, static_cast<uint32_t>(body.size()));
  frame.bytes += body;
  frame.blob_offset = 8 + range.offset;
  frame.blob_length = range.length;
  return frame;
}

Result<Lsn> WalStream::AppendFramesLocked(std::unique_lock<std::mutex>& lock,
                                          std::vector<PendingFrame>& frames) {
  if (frames.empty()) return next_lsn_;
  Lsn first_lsn = 0;
  // Frames accumulate against a provisional LSN; shared state (next_lsn_,
  // segment end, stats) only advances once the buffered bytes are actually
  // on the file, so a failed write cannot desync LSNs from the physical
  // log (the per-LSN encryption nonces depend on this).
  Lsn lsn = next_lsn_;
  std::string buffer;
  uint64_t buffered_records = 0;
  auto flush = [&]() -> Status {
    if (buffer.empty()) return Status::OK();
    IDB_RETURN_IF_ERROR(writer_->Append(buffer));
    next_lsn_ = lsn;
    segments_.back().end = next_lsn_;
    stats_.records_appended += buffered_records;
    stats_.bytes_appended += buffer.size();
    buffer.clear();
    buffered_records = 0;
    return Status::OK();
  };
  for (size_t i = 0; i < frames.size(); ++i) {
    if (writer_ == nullptr ||
        (lsn - segments_.back().start) >= options_.segment_bytes) {
      // The buffered frames belong to the segment being closed: flush them
      // before rotating.
      IDB_RETURN_IF_ERROR(flush());
      IDB_RETURN_IF_ERROR(OpenNewSegmentLocked(lock));
    }
    if (i == 0) first_lsn = lsn;
    PendingFrame& frame = frames[i];
    if (frame.blob_length > 0) {
      // LSN-reservation seal: the record was serialized outside the mutex;
      // now that its LSN is fixed, XOR the blob with the LSN-derived nonce
      // and fill in the frame CRC over the final (ciphertext) body.
      ChaCha20::XorStreamAt(frame.key, NonceForStreamOffset(id_, lsn), 0,
                            &frame.bytes[frame.blob_offset],
                            frame.blob_length);
      EncodeFixed32(&frame.bytes[0],
                    crc32c::Mask(crc32c::Value(frame.bytes.data() + 8,
                                               frame.bytes.size() - 8)));
    }
    buffer += frame.bytes;
    lsn += frame.bytes.size();
    ++buffered_records;
    // Fold the payload deadline into the segment the frame lands in, before
    // the flush: if the write then fails the commit fails too, but partial
    // bytes may be on disk — over-reporting exposure is the safe direction.
    segments_.back().min_payload_deadline =
        std::min(segments_.back().min_payload_deadline, frame.payload_deadline);
  }
  IDB_RETURN_IF_ERROR(flush());
  return first_lsn;
}

Result<Lsn> WalStream::Append(const WalRecord& record, bool sync) {
  return AppendBatch({&record}, sync);
}

Result<Lsn> WalStream::AppendBatch(
    const std::vector<const WalRecord*>& records, bool sync, Lsn* end_lsn) {
  // Encoding — serialization, CRC, and for encrypted payloads the key fetch
  // — happens here, before the stream mutex: concurrent committers encode
  // in parallel and only the buffered write serializes.
  std::vector<PendingFrame> frames;
  frames.reserve(records.size());
  for (const WalRecord* record : records) frames.push_back(PrepareFrame(*record));
  Lsn first = 0;
  Lsn end = 0;
  {
    std::lock_guard<std::mutex> append(append_mu_);
    std::unique_lock<std::mutex> lock(mu_);
    if (!poisoned_.ok()) return poisoned_;
    auto appended = AppendFramesLocked(lock, frames);
    if (!appended.ok()) return PoisonLocked(appended.status());
    first = *appended;
    end = next_lsn_;
  }
  if (end_lsn != nullptr) *end_lsn = end;
  if (sync || options_.sync_on_commit) {
    IDB_RETURN_IF_ERROR(SyncThrough(end));
  }
  return first;
}

Status WalStream::SyncThrough(Lsn lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!poisoned_.ok()) return poisoned_;
  if (writer_ == nullptr) return Status::OK();  // nothing ever appended
  // Every counted request either leads exactly one sync or is absorbed:
  // sync_requests == syncs + commits_absorbed (the bench's absorption
  // ratio rests on this; only poisoned-stream exits fall outside it).
  ++stats_.sync_requests;
  lsn = std::min(lsn, next_lsn_);
  bool led = false;
  if (synced_lsn_ < lsn) {
    // Commit-latency-aware leadership: register our demand so the waiter
    // with the LARGEST covered LSN — the newest arrival, since appends
    // serialize — is the one that leads the next sync. Smaller demands
    // park; the leader's fdatasync covers them anyway. Registrations are
    // generation-tagged: only the holders of the CURRENT largest demand
    // may clear it on exit, so a stale waiter (one whose registration was
    // superseded by a larger arrival, or who never registered) can never
    // clobber a later generation that happens to reuse its LSN.
    bool registered = false;
    uint64_t my_generation = 0;
    ++sync_parked_;  // depth signal; deregister() undoes it on every exit
    if (lsn > pending_target_) {
      pending_target_ = lsn;
      pending_target_holders_ = 1;
      my_generation = ++pending_generation_;
      registered = true;
    } else if (lsn == pending_target_) {
      ++pending_target_holders_;
      my_generation = pending_generation_;
      registered = true;
    }
    auto deregister = [&] {
      --sync_parked_;
      if (registered && my_generation == pending_generation_ &&
          --pending_target_holders_ == 0) {
        // Last holder of the largest demand leaves (normally satisfied;
        // after a sync error, unsatisfied): let smaller demands lead.
        pending_target_ = 0;
        ++pending_generation_;
        sync_cv_.notify_all();
      }
    };
    while (synced_lsn_ < lsn) {
      if (sync_in_flight_ || lsn < pending_target_) {
        // Park on the watermark: either a leader's sync is in flight (it
        // covers every byte appended before it started, very likely
        // including ours), or a newer arrival with a larger demand is
        // about to lead one that will.
        sync_cv_.wait(lock);
        if (!poisoned_.ok()) {
          // The leader's sync failed and poisoned the stream: this commit
          // was never made durable and never will be on this stream.
          deregister();
          return poisoned_;
        }
        continue;
      }
      // Largest demand present: lead. One fdatasync for everything
      // appended so far absorbs every committer parked above.
      sync_in_flight_ = true;
      led = true;
      const Lsn durable_to = next_lsn_;
      WritableFile* writer = writer_.get();
      const bool data_only = preallocated_ && durable_to <= prealloc_end_;
      ++stats_.syncs;
      lock.unlock();
      // Commit-path sync: fdatasync while inside the preallocated, size-
      // durable region (no journal commit, so concurrent streams' syncs
      // overlap in the I/O layer), full fsync otherwise. Rotation cannot
      // close this writer meanwhile — it waits on sync_in_flight_.
      const Status synced = data_only ? writer->SyncData() : writer->Sync();
      lock.lock();
      sync_in_flight_ = false;
      sync_cv_.notify_all();
      if (!synced.ok()) {
        // fsyncgate: the kernel may have dropped the dirty pages this sync
        // failed to write; a retry could succeed while covering nothing.
        // Poison the stream so no later sync can silently "succeed".
        PoisonLocked(synced);
        deregister();
        return poisoned_;
      }
      synced_lsn_ = std::max(synced_lsn_, durable_to);
    }
    deregister();
  }
  if (!led) ++stats_.commits_absorbed;
  return Status::OK();
}

Status WalStream::Sync() {
  Lsn end = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_ == nullptr) return Status::OK();
    end = next_lsn_;
  }
  return SyncThrough(end);
}

Result<Lsn> WalStream::BeginCheckpoint(Lsn replay_from) {
  std::lock_guard<std::mutex> append(append_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  if (!poisoned_.ok()) return poisoned_;
  if (replay_from != kLogEnd) replay_from = std::min(replay_from, next_lsn_);
  const Lsn record_start = next_lsn_;
  WalRecord record;
  record.type = WalRecordType::kCheckpoint;
  record.checkpoint_lsn = replay_from == kLogEnd ? next_lsn_ : replay_from;
  std::vector<PendingFrame> frames;
  frames.push_back(PrepareFrame(record));
  auto appended = AppendFramesLocked(lock, frames);
  if (!appended.ok()) return PoisonLocked(appended.status());
  // Fuzzy form: replay resumes at the begin LSN, so records committed while
  // storage was being flushed (between the caller capturing replay_from and
  // now) are replayed again, idempotently — including the kCheckpoint
  // record itself, which redo ignores. Quiescent form: resume after
  // everything logged so far.
  Lsn lsn = replay_from == kLogEnd ? next_lsn_ : replay_from;
  // A fuzzy checkpoint with NO records interleaved between the captured
  // begin position and this kCheckpoint record needs nothing below the
  // record's end either — replay from there would only re-read the record
  // redo ignores. Advancing over it lets the rotated-out segment retire on
  // THIS checkpoint instead of one checkpoint later, which is what keeps
  // the scrub/unlink cadence inside one checkpoint interval of a payload's
  // degradation deadline.
  if (lsn == record_start) lsn = next_lsn_;
  // Rotate so the segment holding pre-checkpoint records (including the
  // accurate values of insert records) becomes retirable — without this,
  // kScrub could never clean the active segment and accurate values would
  // outlive their degradation deadline in the log. The rotation's seal
  // fsync also makes the kCheckpoint record durable.
  Status rotated = OpenNewSegmentLocked(lock);
  // The rotation's seal fsync is what makes the kCheckpoint record (and the
  // commits before it) durable — its failure is a sync failure like any
  // other and poisons the stream.
  if (!rotated.ok()) return PoisonLocked(rotated);
  return lsn;
}

Status WalStream::RetireThrough(Lsn lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  while (segments_.size() > 1 && segments_.front().end <= lsn) {
    const SegmentInfo segment = segments_.front();
    const std::string path = SegmentPath(segment.start);
    switch (options_.privacy_mode) {
      case WalPrivacyMode::kPlain: {
        // Model real-world unintended retention: the bytes stay on disk.
        IDB_RETURN_IF_ERROR(env_->RenameFile(path, path + ".recycled"));
        break;
      }
      case WalPrivacyMode::kScrub: {
        const uint64_t size = segment.end - segment.start;
        IDB_RETURN_IF_ERROR(env_->OverwriteRange(path, 0, size));
        stats_.scrub_bytes += size;
        IDB_RETURN_IF_ERROR(env_->RemoveFile(path));
        break;
      }
      case WalPrivacyMode::kEncryptedEpoch: {
        // Ciphertext is unreadable once its epoch key dies; plain unlink.
        IDB_RETURN_IF_ERROR(env_->RemoveFile(path));
        break;
      }
    }
    segments_.erase(segments_.begin());
    ++stats_.segments_retired;
  }
  return Status::OK();
}

uint64_t WalStream::ExposedPayloadSegments(Micros horizon) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t exposed = 0;
  for (const SegmentInfo& segment : segments_) {
    if (segment.min_payload_deadline <= horizon) ++exposed;
  }
  return exposed;
}

Micros WalStream::EarliestPayloadDeadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  Micros earliest = kForever;
  for (const SegmentInfo& segment : segments_) {
    earliest = std::min(earliest, segment.min_payload_deadline);
  }
  return earliest;
}

Status WalStream::Replay(
    Lsn from, const std::function<Status(const WalRecord&, Lsn)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SegmentInfo& segment : segments_) {
    if (segment.end <= from) continue;
    IDB_ASSIGN_OR_RETURN(std::string raw,
                         env_->ReadFileToString(SegmentPath(segment.start)));
    uint64_t off = 0;
    while (off + 8 <= raw.size()) {
      const uint32_t masked = DecodeFixed32(raw.data() + off);
      const uint32_t len = DecodeFixed32(raw.data() + off + 4);
      if (off + 8 + len > raw.size()) break;  // torn tail
      if (crc32c::Unmask(masked) !=
          crc32c::Value(raw.data() + off + 8, len)) {
        break;
      }
      const Lsn lsn = segment.start + off;
      if (lsn >= from) {
        auto record = DecodeWalRecord(Slice(raw.data() + off + 8, len),
                                      MakeDecryptor(lsn));
        if (!record.ok()) return record.status();
        IDB_RETURN_IF_ERROR(fn(*record, lsn));
      }
      off += 8 + len;
    }
  }
  return Status::OK();
}

}  // namespace instantdb
