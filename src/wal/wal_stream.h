#ifndef INSTANTDB_WAL_WAL_STREAM_H_
#define INSTANTDB_WAL_WAL_STREAM_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/options.h"
#include "storage/key_manager.h"
#include "util/file.h"
#include "wal/log_record.h"

namespace instantdb {

/// Id of the shared per-(table, epoch) key in the KeyManager
/// (WalPrivacyMode::kEncryptedEpoch). Epoch keys are shared across every
/// stream of a sharded log, so destroying one makes the epoch's inserts
/// unreadable in all streams at once.
std::string WalEpochKeyId(TableId table, uint64_t epoch);

/// \brief One independent redo-log stream: segment files, writer, mutex and
/// group-commit buffer.
///
/// The WalManager shards the log over N of these (records route by
/// `row_id % N`, the same hash the tables use for partitioning), so commits
/// touching distinct streams serialize only on their own stream's mutex and
/// their syncs overlap in the I/O layer instead of queueing behind one
/// file. A stream knows nothing about its siblings: LSNs are stream-local
/// byte offsets, segments are named `wal_<start-lsn>.log` inside the
/// stream's directory, and the three privacy modes (WalPrivacyMode) retire
/// segments per stream exactly as the unsharded log did. Epoch keys are the
/// one shared resource — per (table, epoch) keys live in the KeyManager and
/// are shared across streams, so the stream id enters the encryption nonce
/// (NonceForStreamOffset) to keep (key, nonce) pairs unique.
///
/// Framing: [u32 masked CRC32C(body)] [u32 len] [body]. Recovery tolerates
/// a torn tail frame. With a single stream the directory layout, frame
/// bytes and nonces are identical to the pre-sharding WalManager, which is
/// what keeps old databases readable.
///
/// Thread-safety: all public methods serialize on the stream's mutex; the
/// WalManager adds no locking above it except for the shared epoch-key
/// watermark.
class WalStream {
 public:
  /// Sentinel for BeginCheckpoint: "cover everything logged so far".
  static constexpr Lsn kLogEnd = UINT64_MAX;

  struct Stats {
    uint64_t records_appended = 0;
    uint64_t bytes_appended = 0;
    uint64_t segments_created = 0;
    uint64_t segments_retired = 0;
    uint64_t scrub_bytes = 0;
    uint64_t syncs = 0;
  };

  WalStream(std::string dir, uint32_t stream_id, const WalOptions& options,
            KeyManager* keys);
  ~WalStream();
  WalStream(const WalStream&) = delete;
  WalStream& operator=(const WalStream&) = delete;

  /// Scans existing segments, truncating a torn tail, and positions the
  /// writer at the end of the stream.
  Status Open();

  /// Appends one record; returns its stream-local LSN.
  Result<Lsn> Append(const WalRecord& record, bool sync);

  /// Group commit: appends all records as ONE buffered file write followed
  /// by at most one sync. Returns the LSN of the first record.
  Result<Lsn> AppendBatch(const std::vector<const WalRecord*>& records,
                          bool sync);

  Status Sync();

  Lsn next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_;
  }

  /// First half of a checkpoint: appends a kCheckpoint record carrying
  /// `replay_from` (kLogEnd = the post-record end of the stream, for
  /// callers that know no writes are in flight) and rotates to a fresh
  /// segment so the pre-checkpoint segments become retirable. Returns the
  /// LSN replay must start from. The caller persists the manifest and then
  /// calls RetireThrough — retirement must not outrun the durable record of
  /// the new replay position.
  Result<Lsn> BeginCheckpoint(Lsn replay_from);

  /// Retires every segment fully below `lsn` per the privacy mode.
  Status RetireThrough(Lsn lsn);

  /// Replays records with LSN >= `from` in stream order. `fn` returning
  /// non-OK aborts the replay with that status.
  Status Replay(Lsn from,
                const std::function<Status(const WalRecord&, Lsn)>& fn) const;

  uint32_t id() const { return id_; }
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  std::string SegmentPath(Lsn start) const;
  Result<Lsn> AppendLocked(const WalRecord& record, bool sync);
  Status OpenNewSegment();
  /// Commit-path sync: fdatasync while inside the preallocated, size-
  /// durable region (no journal commit, so concurrent streams' syncs
  /// overlap in the I/O layer), full fsync otherwise.
  Status SyncWriterLocked();
  Status PreallocateActiveLocked();
  WalBlobCipher MakeEncryptor(Lsn lsn);
  WalBlobCipher MakeDecryptor(Lsn lsn) const;

  const std::string dir_;
  const uint32_t id_;
  const WalOptions options_;
  KeyManager* const keys_;

  /// Guards writer state, the segment list and stats.
  mutable std::mutex mu_;

  struct SegmentInfo {
    Lsn start = 0;
    Lsn end = 0;  // exclusive
  };
  std::vector<SegmentInfo> segments_;  // sorted by start
  std::unique_ptr<WritableFile> writer_;
  Lsn next_lsn_ = 0;
  /// Active segment preallocation state: when `preallocated_`, the file's
  /// size is durable through `prealloc_end_`, so commit syncs may use
  /// fdatasync for appends below it.
  bool preallocated_ = false;
  Lsn prealloc_end_ = 0;
  Stats stats_;
};

}  // namespace instantdb

#endif  // INSTANTDB_WAL_WAL_STREAM_H_
