#ifndef INSTANTDB_WAL_WAL_STREAM_H_
#define INSTANTDB_WAL_WAL_STREAM_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/options.h"
#include "storage/key_manager.h"
#include "util/file.h"
#include "wal/log_record.h"

namespace instantdb {

class Env;

/// Id of the shared per-(table, epoch) key in the KeyManager
/// (WalPrivacyMode::kEncryptedEpoch). Epoch keys are shared across every
/// stream of a sharded log, so destroying one makes the epoch's inserts
/// unreadable in all streams at once.
std::string WalEpochKeyId(TableId table, uint64_t epoch);

/// \brief One independent redo-log stream: segment files, writer, mutex and
/// a leader-based group-commit sync watermark.
///
/// The WalManager shards the log over N of these (records route by
/// `row_id % N`, the same hash the tables use for partitioning), so commits
/// touching distinct streams serialize only on their own stream's mutex and
/// their syncs overlap in the I/O layer instead of queueing behind one
/// file. A stream knows nothing about its siblings: LSNs are stream-local
/// byte offsets, segments are named `wal_<start-lsn>.log` inside the
/// stream's directory, and the three privacy modes (WalPrivacyMode) retire
/// segments per stream exactly as the unsharded log did. Epoch keys are the
/// one shared resource — per (table, epoch) keys live in the KeyManager and
/// are shared across streams, so the stream id enters the encryption nonce
/// (NonceForStreamOffset) to keep (key, nonce) pairs unique.
///
/// Commit pipeline: append and sync are split around two watermarks.
/// Appends advance the stream-local *appended* LSN (`next_lsn_`) under the
/// mutex, but frames are encoded and checksummed BEFORE the mutex is taken
/// (for kEncryptedEpoch inserts, serialization happens outside and only the
/// LSN-derived blob seal + CRC run under it — the LSN-reservation path).
/// Durability runs OUTSIDE the mutex behind the *synced* LSN watermark
/// (`synced_lsn_`): a committer wanting durability parks until the
/// watermark covers its bytes; leadership is commit-latency-aware — among
/// the committers waiting while no sync is in flight, the one demanding the
/// LARGEST covered LSN (the newest arrival, since appends serialize) leads,
/// issues one fdatasync for everything appended so far with the mutex
/// released, and its sync absorbs every parked committer at once. Handing
/// the sync to the largest demand instead of first-through-the-gate shaves
/// the tail: the biggest outstanding commit never waits behind a sync led
/// on its behalf by a smaller one. The `sync_requests`/`syncs`/
/// `commits_absorbed` counters expose how well the absorption works
/// (sync_requests == syncs + commits_absorbed always).
///
/// Framing: [u32 masked CRC32C(body)] [u32 len] [body]. Recovery tolerates
/// a torn tail frame. With a single stream the directory layout, frame
/// bytes and nonces are identical to the pre-sharding WalManager, which is
/// what keeps old databases readable.
///
/// Thread-safety: all public methods are safe to call concurrently; shared
/// state is guarded by the stream mutex, and the only code that runs
/// outside it while logically in progress is the leader's fdatasync
/// (segment rotation waits for an in-flight sync before closing the
/// writer).
class WalStream {
 public:
  /// Sentinel for BeginCheckpoint: "cover everything logged so far".
  static constexpr Lsn kLogEnd = UINT64_MAX;

  struct Stats {
    uint64_t records_appended = 0;
    uint64_t bytes_appended = 0;
    uint64_t segments_created = 0;
    uint64_t segments_retired = 0;
    uint64_t scrub_bytes = 0;
    /// fdatasync/fsync calls actually issued on the commit path.
    uint64_t syncs = 0;
    /// Durability demands (SyncThrough calls): every durable commit makes
    /// one per stream it touched.
    uint64_t sync_requests = 0;
    /// Requests satisfied without issuing their own sync — parked behind a
    /// leader whose fdatasync covered them, or already below the watermark
    /// on arrival. syncs + commits_absorbed == sync_requests on a healthy
    /// stream; a poisoned stream's waiters return with the sticky error
    /// and count in neither bucket.
    uint64_t commits_absorbed = 0;
  };

  /// `env` == nullptr uses Env::Default().
  WalStream(std::string dir, uint32_t stream_id, const WalOptions& options,
            KeyManager* keys, Env* env = nullptr);
  ~WalStream();
  WalStream(const WalStream&) = delete;
  WalStream& operator=(const WalStream&) = delete;

  /// Scans existing segments, truncating a torn tail, and positions the
  /// writer at the end of the stream.
  Status Open();

  /// Appends one record; returns its stream-local LSN.
  Result<Lsn> Append(const WalRecord& record, bool sync);

  /// Group commit: appends all records as ONE buffered file write. Frames
  /// are encoded outside the stream mutex. Returns the LSN of the first
  /// record; `*end_lsn` (when non-null) receives the post-batch appended
  /// LSN — the watermark a caller passes to SyncThrough to make exactly
  /// this batch durable. With `sync` the call blocks on the watermark
  /// before returning (at most one sync, possibly another leader's).
  Result<Lsn> AppendBatch(const std::vector<const WalRecord*>& records,
                          bool sync, Lsn* end_lsn = nullptr);

  /// Durably persists every record appended at or below `lsn`: returns
  /// immediately when the synced watermark already covers it, parks behind
  /// an in-flight leader sync when one is running, and otherwise leads one
  /// sync (issued with the mutex released) whose watermark advance wakes
  /// every parked committer it absorbed.
  Status SyncThrough(Lsn lsn);

  /// Syncs everything appended so far (SyncThrough the appended end).
  Status Sync();

  /// Appended watermark: the stream-local LSN the next record will get.
  Lsn next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_;
  }

  /// Synced watermark: everything below it is durable.
  Lsn synced_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return synced_lsn_;
  }

  /// Committers currently inside SyncThrough whose demand the synced
  /// watermark did not already cover (group-commit depth: leaders plus
  /// parked followers). Instantaneous — a backpressure signal, not an
  /// accounting counter: a sustained non-zero depth means durability
  /// demand is outrunning the device and admission should shed writes
  /// first.
  size_t sync_waiters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sync_parked_;
  }

  /// First half of a checkpoint: appends a kCheckpoint record carrying
  /// `replay_from` (kLogEnd = the post-record end of the stream, for
  /// callers that know no writes are in flight) and rotates to a fresh
  /// segment so the pre-checkpoint segments become retirable (the rotation
  /// fsync makes the record durable). Returns the LSN replay must start
  /// from. The caller persists the manifest and then calls RetireThrough —
  /// retirement must not outrun the durable record of the new replay
  /// position.
  Result<Lsn> BeginCheckpoint(Lsn replay_from);

  /// Retires every segment fully below `lsn` per the privacy mode.
  Status RetireThrough(Lsn lsn);

  /// Deletion-assurance probe: how many live segments (including the active
  /// one) may still hold an accurate degradable payload whose phase-0
  /// deadline is at or before `horizon`. Per-segment minima are folded in at
  /// append time from WalRecord::payload_deadline; segments already on disk
  /// at Open are counted conservatively (their contents were never scanned,
  /// so they are assumed exposed until retirement proves otherwise). A
  /// checkpoint rotates + retires, so a non-zero count is the audit signal
  /// that WAL retirement is lagging the degradation deadlines.
  uint64_t ExposedPayloadSegments(Micros horizon) const;

  /// Earliest phase-0 payload deadline over every live segment (the time at
  /// which the first still-logged accurate value becomes overdue), kForever
  /// when no live segment holds a degradable payload. The maintenance
  /// daemon's adaptive cadence checkpoints just before this instant instead
  /// of waiting out a fixed interval.
  Micros EarliestPayloadDeadline() const;

  /// Replays records with LSN >= `from` in stream order. `fn` returning
  /// non-OK aborts the replay with that status.
  Status Replay(Lsn from,
                const std::function<Status(const WalRecord&, Lsn)>& fn) const;

  uint32_t id() const { return id_; }
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Sticky-failure state (fsyncgate semantics): once an append or sync on
  /// this stream fails, the stream is permanently poisoned — the failed
  /// operation may have left the kernel's dirty-page state (and therefore
  /// what a later fsync would actually cover) unknowable, and a failed
  /// append leaves the positional writer's offset ahead of `next_lsn_`,
  /// which would desync LSN-derived encryption nonces from the physical
  /// bytes. Every subsequent Append/AppendBatch/SyncThrough/BeginCheckpoint
  /// fails fast with the sticky status; parked group-commit waiters are
  /// woken with it. Recovery is re-opening the database (replaying only
  /// what a clean sync acknowledged).
  bool poisoned() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !poisoned_.ok();
  }
  /// OK, or the sticky poison status.
  Status health() const {
    std::lock_guard<std::mutex> lock(mu_);
    return poisoned_;
  }

 private:
  /// One frame prepared outside the stream mutex: header + body bytes,
  /// plus the blob seal left for the LSN-reservation step (kEncryptedEpoch
  /// inserts: the nonce derives from the record's LSN, which only exists
  /// once the mutex assigns it).
  struct PendingFrame {
    std::string bytes;       // [u32 crc (0 until sealed)][u32 len][body]
    size_t blob_offset = 0;  // into `bytes`; meaningful when blob_length > 0
    size_t blob_length = 0;  // 0 = frame final (CRC already computed)
    ChaCha20::Key key{};     // epoch key for the deferred seal
    /// Earliest phase-0 deadline of the payload (WalRecord carry-through);
    /// min-merged into the segment the frame lands in.
    Micros payload_deadline = kForever;
  };

  std::string SegmentPath(Lsn start) const;
  /// Encodes + checksums `record` into a frame. Plaintext frames come out
  /// final; kEncryptedEpoch inserts carry their blob in plaintext with the
  /// seal deferred to AppendFramesLocked. Called outside the mutex.
  PendingFrame PrepareFrame(const WalRecord& record) const;
  /// Assigns LSNs, seals deferred blobs, and appends every frame as
  /// buffered writes (one per segment touched), rotating segments at
  /// frame boundaries. Shared state (next_lsn_, segment end, stats) only
  /// advances once bytes are on the file, so a failed write cannot desync
  /// LSNs from the physical log (the LSN-derived nonces depend on this).
  /// Returns the first frame's LSN. Caller holds `lock`.
  Result<Lsn> AppendFramesLocked(std::unique_lock<std::mutex>& lock,
                                 std::vector<PendingFrame>& frames);
  /// Seals + closes the active segment and opens a fresh one. Waits out an
  /// in-flight leader sync first (it holds the writer's fd), and advances
  /// the synced watermark to the sealed end. Caller holds `lock`.
  Status OpenNewSegmentLocked(std::unique_lock<std::mutex>& lock);
  Status PreallocateActiveLocked();
  WalBlobCipher MakeDecryptor(Lsn lsn) const;
  /// Marks the stream sticky-failed (first failure wins) and wakes every
  /// parked committer so they observe the poison. Returns the sticky status.
  Status PoisonLocked(const Status& cause);

  const std::string dir_;
  const uint32_t id_;
  const WalOptions options_;
  KeyManager* const keys_;
  Env* const env_;

  /// Serializes appenders for the WHOLE append — including the rotation
  /// wait inside OpenNewSegmentLocked, which releases `mu_` while an
  /// in-flight leader sync drains. Without this outer lock a second
  /// appender could slip in through that window and interleave with a
  /// half-done rotation (stale local LSNs, double-sealed segments). Lock
  /// order: append_mu_ before mu_; SyncThrough takes only mu_, so the
  /// sync leader never needs append_mu_ to finish.
  std::mutex append_mu_;
  /// Guards writer state, the segment list, both watermarks and stats.
  mutable std::mutex mu_;
  /// Waits: committers parked on the synced watermark; rotation parked on
  /// an in-flight sync. Notified when either condition can have changed.
  std::condition_variable sync_cv_;

  struct SegmentInfo {
    Lsn start = 0;
    Lsn end = 0;  // exclusive
    /// Earliest phase-0 deadline over the accurate degradable payloads
    /// appended into this segment; kForever when it holds none. Segments
    /// found on disk at Open get 0 ("unknown — assume exposed"): the audit
    /// must not vouch for bytes it never saw appended.
    Micros min_payload_deadline = kForever;
  };
  std::vector<SegmentInfo> segments_;  // sorted by start
  std::unique_ptr<WritableFile> writer_;
  /// Appended watermark: everything below is written (buffered) to the
  /// active segment.
  Lsn next_lsn_ = 0;
  /// Synced watermark: everything below is durable. Advanced by the sync
  /// leader and by segment rotation (which fsyncs the sealed segment).
  Lsn synced_lsn_ = 0;
  /// True while a leader's fdatasync runs with the mutex released. At most
  /// one sync is ever in flight per stream; rotation waits on it.
  bool sync_in_flight_ = false;
  /// Largest LSN any still-waiting committer demands, and how many waiters
  /// demand exactly it. A waiter below the target parks instead of leading
  /// (the target's holder leads and covers it); the last holder to leave
  /// resets the target so smaller demands can lead after an error. The
  /// generation counter advances whenever the target is raised or cleared:
  /// deregistration is generation-checked, so a waiter whose registration
  /// was superseded cannot decrement a later registration that reuses its
  /// LSN.
  Lsn pending_target_ = 0;
  size_t pending_target_holders_ = 0;
  uint64_t pending_generation_ = 0;
  /// Committers inside SyncThrough not yet covered by the watermark (the
  /// sync_waiters() depth signal).
  size_t sync_parked_ = 0;
  /// Active segment preallocation state: when `preallocated_`, the file's
  /// size is durable through `prealloc_end_`, so commit syncs may use
  /// fdatasync for appends below it.
  bool preallocated_ = false;
  Lsn prealloc_end_ = 0;
  /// OK until the first append/sync failure; sticky thereafter (see
  /// poisoned()). Guarded by mu_.
  Status poisoned_;
  Stats stats_;
};

}  // namespace instantdb

#endif  // INSTANTDB_WAL_WAL_STREAM_H_
