#ifndef INSTANTDB_WAL_LOG_RECORD_H_
#define INSTANTDB_WAL_LOG_RECORD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "catalog/lcp.h"
#include "catalog/value.h"
#include "common/clock.h"
#include "common/result.h"
#include "storage/page.h"
#include "storage/state_store.h"

namespace instantdb {

/// Log sequence number: the global byte offset of a record's frame in the
/// logical log (segments are named by their starting LSN).
using Lsn = uint64_t;

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  /// Tuple insertion at full accuracy. The degradable values are the only
  /// accurate sensitive bytes that ever reach the log; WalPrivacyMode
  /// governs how they are kept from outliving their degradation deadline.
  kInsert = 4,
  /// One degradation step of one attribute: pop the (FIFO) prefix of the
  /// `from_phase` store up to `up_to_row_id` and append the generalized
  /// `entries` to the next phase (empty when the step is a removal to ⊥).
  /// Logged values are already generalized — they leak nothing beyond what
  /// stays live in the database, so they may be logged in the clear.
  kDegradeStep = 5,
  /// Tuple removal (user delete, or the final LCP transition).
  kDelete = 6,
  /// Update of the stable part (full physical redo image).
  kUpdateStable = 7,
  kCheckpoint = 8,
};

/// \brief One redo record. All redo is *idempotent*: appends carry monotone
/// row ids (stores skip duplicates), pops are expressed as "through row id",
/// deletes and stable updates are absolute.
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t txn_id = 0;
  TableId table = 0;

  // kInsert / kDelete / kUpdateStable
  RowId row_id = kInvalidRowId;
  Micros insert_time = 0;
  std::vector<Value> stable;      // schema stable-column order
  std::vector<Value> degradable;  // schema degradable-column order (accurate)
  /// Set by the decoder when the degradable payload was epoch-encrypted and
  /// the epoch key has been destroyed: the accurate values are gone for
  /// good, which is exactly the guarantee — redo falls back to the coarse
  /// values carried by later kDegradeStep records.
  bool degradable_unavailable = false;

  // kDegradeStep
  int column = 0;       // schema column index
  int from_phase = 0;
  int to_phase = 0;     // == lcp.num_phases() means removal to ⊥
  RowId up_to_row_id = 0;
  std::vector<StoreEntry> entries;

  // kCheckpoint
  Lsn checkpoint_lsn = 0;

  /// In-memory only (never serialized): earliest phase-0 deadline of the
  /// accurate degradable values this kInsert record carries — insert_time
  /// plus the shortest first-phase duration over the row's degradable
  /// columns, kForever when nothing in the record ever degrades. The WAL
  /// streams fold it into a per-segment minimum so the deletion-assurance
  /// audit can ask "does any live segment still hold an accurate value past
  /// its deadline?" without re-reading the log.
  Micros payload_deadline = kForever;

  // kCommit, sharded WAL only (WalOptions::wal_streams > 1). The global
  // commit sequence number orders commits across streams, and `stream_counts`
  // lists, per stream the transaction touched, how many records it appended
  // there — recovery honors the commit only when every counted record
  // survived its stream's torn-tail truncation, which keeps cross-stream
  // commits atomic. Single-stream commit frames leave both empty (encoded as
  // zero extra bytes), so old logs decode unchanged and wal_streams=1 logs
  // stay byte-identical to pre-sharding ones.
  uint64_t commit_seq = 0;
  std::vector<std::pair<uint32_t, uint32_t>> stream_counts;
};

/// Encrypts/decrypts the degradable blob of an insert record. Input is the
/// serialized plaintext (encrypt) or ciphertext (decrypt); returns false
/// when the key is unavailable (destroyed epoch).
using WalBlobCipher =
    std::function<bool(const WalRecord& record, const std::string& in,
                       std::string* out)>;

/// Serializes the record body (the WalManager frames and checksums it).
/// `encrypt` may be null for plaintext modes.
void EncodeWalRecord(const WalRecord& record, const WalBlobCipher& encrypt,
                     std::string* dst);

/// Byte range of the degradable blob inside a record body produced by
/// EncodeWalRecordDeferBlob. `length == 0` means the record carries no
/// encryptable blob (every type but kInsert) and the body is final.
struct WalBlobRange {
  size_t offset = 0;
  size_t length = 0;
};

/// LSN-reservation encode path: serializes the record body with the
/// degradable blob written in *plaintext* but already framed as encrypted
/// (flag + length prefix), reporting the blob's byte range via `*range`.
/// The stream cipher preserves length, so the caller can serialize — the
/// expensive part — outside the stream mutex, reserve the record's LSN
/// under it, and then XOR the blob in place with the LSN-derived nonce.
/// The resulting bytes are identical to EncodeWalRecord with the same key
/// and nonce. Must only be used when the encryption key is known to exist
/// (the caller fetched it); records without a blob come out exactly as
/// EncodeWalRecord(record, nullptr, dst) would.
void EncodeWalRecordDeferBlob(const WalRecord& record, std::string* dst,
                              WalBlobRange* range);

/// Decodes a record body; `decrypt` may be null (encrypted payloads are then
/// reported unavailable).
Result<WalRecord> DecodeWalRecord(Slice input, const WalBlobCipher& decrypt);

}  // namespace instantdb

#endif  // INSTANTDB_WAL_LOG_RECORD_H_
