#include "wal/log_record.h"

namespace instantdb {

namespace {

void EncodeValues(const std::vector<Value>& values, std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(values.size()));
  for (const Value& v : values) v.EncodeTo(dst);
}

bool DecodeValues(Slice* input, std::vector<Value>* out) {
  uint32_t n;
  if (!GetVarint32(input, &n)) return false;
  out->resize(n);
  for (Value& v : *out) {
    if (!Value::DecodeFrom(input, &v)) return false;
  }
  return true;
}

void EncodeEntries(const std::vector<StoreEntry>& entries, std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(entries.size()));
  for (const StoreEntry& e : entries) {
    PutVarint64(dst, e.row_id);
    PutVarint64(dst, static_cast<uint64_t>(e.insert_time));
    e.value.EncodeTo(dst);
  }
}

bool DecodeEntries(Slice* input, std::vector<StoreEntry>* out) {
  uint32_t n;
  if (!GetVarint32(input, &n)) return false;
  out->resize(n);
  for (StoreEntry& e : *out) {
    uint64_t row_id, insert_time;
    if (!GetVarint64(input, &row_id) || !GetVarint64(input, &insert_time) ||
        !Value::DecodeFrom(input, &e.value)) {
      return false;
    }
    e.row_id = row_id;
    e.insert_time = static_cast<Micros>(insert_time);
  }
  return true;
}

}  // namespace

void EncodeWalRecord(const WalRecord& record, const WalBlobCipher& encrypt,
                     std::string* dst) {
  dst->push_back(static_cast<char>(record.type));
  PutVarint64(dst, record.txn_id);
  PutVarint32(dst, record.table);
  switch (record.type) {
    case WalRecordType::kCommit:
      // Sharded commit frames carry the CSN + per-stream record counts;
      // unsharded ones encode nothing here, keeping the single-stream byte
      // layout identical to logs written before sharding existed.
      if (record.commit_seq != 0 || !record.stream_counts.empty()) {
        PutVarint64(dst, record.commit_seq);
        PutVarint32(dst, static_cast<uint32_t>(record.stream_counts.size()));
        for (const auto& [stream, count] : record.stream_counts) {
          PutVarint32(dst, stream);
          PutVarint32(dst, count);
        }
      }
      break;
    case WalRecordType::kBegin:
    case WalRecordType::kAbort:
      break;
    case WalRecordType::kInsert: {
      PutVarint64(dst, record.row_id);
      PutVarint64(dst, static_cast<uint64_t>(record.insert_time));
      EncodeValues(record.stable, dst);
      if (encrypt != nullptr) {
        std::string plain;
        EncodeValues(record.degradable, &plain);
        std::string sealed = plain;
        const bool ok = encrypt(record, plain, &sealed);
        dst->push_back(ok ? 1 : 0);
        if (ok) {
          PutLengthPrefixed(dst, sealed);
          break;
        }
      } else {
        dst->push_back(0);
      }
      EncodeValues(record.degradable, dst);
      break;
    }
    case WalRecordType::kDegradeStep:
      PutVarint32(dst, static_cast<uint32_t>(record.column));
      PutVarint32(dst, static_cast<uint32_t>(record.from_phase));
      PutVarint32(dst, static_cast<uint32_t>(record.to_phase));
      PutVarint64(dst, record.up_to_row_id);
      EncodeEntries(record.entries, dst);
      break;
    case WalRecordType::kDelete:
      PutVarint64(dst, record.row_id);
      break;
    case WalRecordType::kUpdateStable:
      PutVarint64(dst, record.row_id);
      EncodeValues(record.stable, dst);
      break;
    case WalRecordType::kCheckpoint:
      PutVarint64(dst, record.checkpoint_lsn);
      break;
  }
}

void EncodeWalRecordDeferBlob(const WalRecord& record, std::string* dst,
                              WalBlobRange* range) {
  *range = {};
  if (record.type != WalRecordType::kInsert) {
    // Only inserts carry an encryptable blob; everything else is final.
    EncodeWalRecord(record, nullptr, dst);
    return;
  }
  dst->push_back(static_cast<char>(record.type));
  PutVarint64(dst, record.txn_id);
  PutVarint32(dst, record.table);
  PutVarint64(dst, record.row_id);
  PutVarint64(dst, static_cast<uint64_t>(record.insert_time));
  EncodeValues(record.stable, dst);
  dst->push_back(1);  // encrypted flag: the caller seals the blob in place
  std::string plain;
  EncodeValues(record.degradable, &plain);
  PutVarint32(dst, static_cast<uint32_t>(plain.size()));
  range->offset = dst->size();
  range->length = plain.size();
  dst->append(plain);
}

Result<WalRecord> DecodeWalRecord(Slice input, const WalBlobCipher& decrypt) {
  WalRecord record;
  if (input.empty()) return Status::Corruption("empty WAL record");
  record.type = static_cast<WalRecordType>(input.front());
  input.remove_prefix(1);
  uint64_t txn_id;
  uint32_t table;
  if (!GetVarint64(&input, &txn_id) || !GetVarint32(&input, &table)) {
    return Status::Corruption("bad WAL record header");
  }
  record.txn_id = txn_id;
  record.table = table;
  switch (record.type) {
    case WalRecordType::kCommit:
      // Optional tail: absent in single-stream and legacy frames.
      if (!input.empty()) {
        uint32_t n;
        if (!GetVarint64(&input, &record.commit_seq) ||
            !GetVarint32(&input, &n) || n > 65536) {
          return Status::Corruption("bad commit record");
        }
        record.stream_counts.resize(n);
        for (auto& [stream, count] : record.stream_counts) {
          if (!GetVarint32(&input, &stream) || !GetVarint32(&input, &count)) {
            return Status::Corruption("bad commit stream counts");
          }
        }
      }
      break;
    case WalRecordType::kBegin:
    case WalRecordType::kAbort:
      break;
    case WalRecordType::kInsert: {
      uint64_t row_id, insert_time;
      if (!GetVarint64(&input, &row_id) || !GetVarint64(&input, &insert_time) ||
          !DecodeValues(&input, &record.stable) || input.empty()) {
        return Status::Corruption("bad insert record");
      }
      record.row_id = row_id;
      record.insert_time = static_cast<Micros>(insert_time);
      const bool encrypted = input.front() != 0;
      input.remove_prefix(1);
      if (!encrypted) {
        if (!DecodeValues(&input, &record.degradable)) {
          return Status::Corruption("bad insert degradable values");
        }
        break;
      }
      Slice blob;
      if (!GetLengthPrefixed(&input, &blob)) {
        return Status::Corruption("bad insert blob");
      }
      std::string plain;
      if (decrypt != nullptr &&
          decrypt(record, std::string(blob), &plain)) {
        Slice plain_slice = plain;
        if (!DecodeValues(&plain_slice, &record.degradable)) {
          return Status::Corruption("bad decrypted insert blob");
        }
      } else {
        // Epoch key destroyed: the accurate values are unrecoverable by
        // design. Redo proceeds without them.
        record.degradable_unavailable = true;
      }
      break;
    }
    case WalRecordType::kDegradeStep: {
      uint32_t column, from_phase, to_phase;
      uint64_t up_to;
      if (!GetVarint32(&input, &column) || !GetVarint32(&input, &from_phase) ||
          !GetVarint32(&input, &to_phase) || !GetVarint64(&input, &up_to) ||
          !DecodeEntries(&input, &record.entries)) {
        return Status::Corruption("bad degrade record");
      }
      record.column = static_cast<int>(column);
      record.from_phase = static_cast<int>(from_phase);
      record.to_phase = static_cast<int>(to_phase);
      record.up_to_row_id = up_to;
      break;
    }
    case WalRecordType::kDelete: {
      uint64_t row_id;
      if (!GetVarint64(&input, &row_id)) {
        return Status::Corruption("bad delete record");
      }
      record.row_id = row_id;
      break;
    }
    case WalRecordType::kUpdateStable: {
      uint64_t row_id;
      if (!GetVarint64(&input, &row_id) ||
          !DecodeValues(&input, &record.stable)) {
        return Status::Corruption("bad update record");
      }
      record.row_id = row_id;
      break;
    }
    case WalRecordType::kCheckpoint: {
      uint64_t lsn;
      if (!GetVarint64(&input, &lsn)) {
        return Status::Corruption("bad checkpoint record");
      }
      record.checkpoint_lsn = lsn;
      break;
    }
    default:
      return Status::Corruption("unknown WAL record type");
  }
  if (!input.empty()) return Status::Corruption("trailing WAL record bytes");
  return record;
}

}  // namespace instantdb
