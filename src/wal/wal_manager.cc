#include "wal/wal_manager.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"
#include "io/env.h"
#include "util/crc32c.h"
#include "util/parallel.h"

namespace instantdb {

namespace {

constexpr char kCheckpointFile[] = "CHECKPOINT";

/// Sanity cap on WalOptions::wal_streams (mirrors kMaxPartitions: one
/// stream per core is the useful range, and this bounds what a corrupt
/// STREAMS file can make Open() attempt).
constexpr uint32_t kMaxWalStreams = 1024;

bool IsDataRecord(WalRecordType type) {
  return type != WalRecordType::kCommit && type != WalRecordType::kCheckpoint;
}

}  // namespace

WalManager::WalManager(std::string dir, const WalOptions& options,
                       KeyManager* keys, Env* env)
    : dir_(std::move(dir)),
      options_(options),
      keys_(keys),
      env_(env != nullptr ? env : Env::Default()) {}

WalManager::~WalManager() = default;

std::string WalManager::StreamDir(uint32_t stream) const {
  // A single stream keeps the unsharded on-disk layout (segments directly
  // under the log directory).
  if (streams_.size() <= 1) return dir_;
  return dir_ + StringPrintf("/s%u", stream);
}

Result<uint32_t> WalManager::ResolveStreamCount() const {
  if (env_->FileExists(StreamCountPath())) {
    IDB_ASSIGN_OR_RETURN(std::string text,
                         env_->ReadFileToString(StreamCountPath()));
    char* end = nullptr;
    const unsigned long persisted = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || persisted == 0 ||
        persisted > kMaxWalStreams) {
      return Status::Corruption("bad STREAMS file in " + dir_);
    }
    return static_cast<uint32_t>(persisted);
  }
  IDB_ASSIGN_OR_RETURN(auto names, env_->ListDir(dir_));
  bool has_legacy = false;
  uint32_t stream_dirs = 0;
  uint32_t max_index = 0;
  for (const std::string& name : names) {
    if (StartsWith(name, "wal_") || name == kCheckpointFile) {
      has_legacy = true;
      continue;
    }
    if (name.size() >= 2 && name[0] == 's') {
      char* end = nullptr;
      const unsigned long index = std::strtoul(name.c_str() + 1, &end, 10);
      if (*end != '\0') continue;
      ++stream_dirs;
      max_index = std::max(max_index, static_cast<uint32_t>(index));
    }
  }
  if (stream_dirs > 0) {
    // STREAMS file lost but stream directories present: recover the count
    // only if the dirs are unambiguous (contiguous s0..sN-1, N >= 2).
    // Guessing across a gap would mis-route every record forever. This
    // check runs BEFORE the legacy one — sharded logs also keep their
    // CHECKPOINT manifest at the top level, so a top-level file must not
    // demote a sharded log to one stream.
    if (stream_dirs != max_index + 1 || stream_dirs < 2 ||
        stream_dirs > kMaxWalStreams) {
      return Status::Corruption(
          "STREAMS file missing and stream directories are ambiguous in " +
          dir_);
    }
    return stream_dirs;
  }
  if (has_legacy) {
    // Segments (or a checkpoint) at the top level and no stream dirs: a log
    // written before sharding existed, or by wal_streams = 1. Pin the
    // single-stream layout — re-routing would strand every record on disk.
    return 1u;
  }
  // Fresh log: adopt the configured count (0 = "decided by the caller",
  // treated as 1 here for standalone use).
  const size_t configured = options_.wal_streams == 0 ? 1 : options_.wal_streams;
  if (configured > kMaxWalStreams) {
    return Status::InvalidArgument("WalOptions::wal_streams exceeds limit");
  }
  return static_cast<uint32_t>(configured);
}

Status WalManager::Open() {
  IDB_RETURN_IF_ERROR(env_->CreateDirs(dir_));
  IDB_ASSIGN_OR_RETURN(const uint32_t count, ResolveStreamCount());
  if (count > 1 && !env_->FileExists(StreamCountPath())) {
    IDB_RETURN_IF_ERROR(env_->WriteStringToFile(
        StreamCountPath(), std::to_string(count), /*sync=*/true));
  }
  streams_.clear();
  streams_.reserve(count);
  // StreamDir consults streams_.size() to pick the layout, so size the
  // vector before computing directories.
  for (uint32_t s = 0; s < count; ++s) streams_.push_back(nullptr);
  for (uint32_t s = 0; s < count; ++s) {
    streams_[s] =
        std::make_unique<WalStream>(StreamDir(s), s, options_, keys_, env_);
    IDB_RETURN_IF_ERROR(streams_[s]->Open());
  }
  return Status::OK();
}

uint32_t WalManager::StreamOf(const WalRecord& record) const {
  const auto n = static_cast<uint64_t>(streams_.size());
  if (n == 1) return 0;
  switch (record.type) {
    case WalRecordType::kInsert:
    case WalRecordType::kDelete:
    case WalRecordType::kUpdateStable:
      return static_cast<uint32_t>(record.row_id % n);
    case WalRecordType::kDegradeStep:
      // A step drains one partition's store; every entry's row id hashes to
      // the same partition, so the first entry routes the whole record.
      if (!record.entries.empty()) {
        return static_cast<uint32_t>(record.entries[0].row_id % n);
      }
      [[fallthrough]];
    default:
      return static_cast<uint32_t>(record.txn_id % n);
  }
}

Result<Lsn> WalManager::Append(const WalRecord& record, bool sync) {
  return streams_[StreamOf(record)]->Append(record, sync);
}

Result<Lsn> WalManager::AppendBatch(
    const std::vector<const WalRecord*>& records, bool sync) {
  if (streams_.size() == 1) return streams_[0]->AppendBatch(records, sync);
  if (records.empty()) return Lsn{0};
  std::vector<std::vector<const WalRecord*>> buckets(streams_.size());
  for (const WalRecord* record : records) {
    buckets[StreamOf(*record)].push_back(record);
  }
  const uint32_t first_stream = StreamOf(*records[0]);
  Lsn first_lsn = 0;
  for (uint32_t s = 0; s < streams_.size(); ++s) {
    if (buckets[s].empty()) continue;
    IDB_ASSIGN_OR_RETURN(const Lsn lsn,
                         streams_[s]->AppendBatch(buckets[s], sync));
    if (s == first_stream) first_lsn = lsn;
  }
  return first_lsn;
}

Status WalManager::AppendCommit(const std::vector<const WalRecord*>& ops,
                                WalRecord* commit, bool sync) {
  const uint32_t n = num_streams();
  if (n == 1) {
    // Unsharded group commit, byte-identical to the pre-sharding log: the
    // commit frame stays unstamped (no CSN, no counts) and everything goes
    // as one buffered write + at most one sync.
    std::vector<const WalRecord*> records(ops);
    records.push_back(commit);
    return streams_[0]->AppendBatch(records, sync).status();
  }
  commit->commit_seq = next_commit_seq_.fetch_add(1, std::memory_order_relaxed);
  commit->stream_counts.clear();
  // Fast path: batch-affine row allocation makes most transactions stream-
  // local, so detect "every op routes to one stream" without building
  // per-stream buckets.
  bool local = true;
  const uint32_t first = ops.empty() ? 0 : StreamOf(*ops[0]);
  for (const WalRecord* op : ops) {
    if (StreamOf(*op) != first) {
      local = false;
      break;
    }
  }
  if (local) {
    if (!ops.empty()) {
      commit->stream_counts.emplace_back(first,
                                         static_cast<uint32_t>(ops.size()));
    }
    const uint32_t commit_stream =
        ops.empty() ? static_cast<uint32_t>(commit->txn_id % n) : first;
    std::vector<const WalRecord*> tail(ops);
    tail.push_back(commit);
    return streams_[commit_stream]->AppendBatch(tail, sync).status();
  }
  std::vector<std::vector<const WalRecord*>> buckets(n);
  for (const WalRecord* op : ops) buckets[StreamOf(*op)].push_back(op);
  for (uint32_t s = 0; s < n; ++s) {
    if (!buckets[s].empty()) {
      commit->stream_counts.emplace_back(
          s, static_cast<uint32_t>(buckets[s].size()));
    }
  }
  const uint32_t commit_stream =
      commit->stream_counts.empty()
          ? static_cast<uint32_t>(commit->txn_id % n)
          : commit->stream_counts.front().first;
  std::vector<Lsn> sibling_end(n, 0);
  for (uint32_t s = 0; s < n; ++s) {
    if (s == commit_stream || buckets[s].empty()) continue;
    IDB_RETURN_IF_ERROR(
        streams_[s]->AppendBatch(buckets[s], false, &sibling_end[s]).status());
  }
  // The commit stream's ops and the commit frame go as one buffered write,
  // so a stream-local transaction (the common case: partition-affine row
  // allocation puts a batch's inserts in one partition) costs one write and
  // — when durable — at most one sync on one stream.
  std::vector<const WalRecord*> tail = std::move(buckets[commit_stream]);
  tail.push_back(commit);
  IDB_RETURN_IF_ERROR(
      streams_[commit_stream]->AppendBatch(tail, sync).status());
  if (sync && !options_.sync_on_commit) {
    // Ack only once every stream holding this transaction's records is
    // durable — SyncThrough the exact end of each sibling's run, so a
    // leader sync already past it (another commit's, or this loop's own
    // earlier iteration racing new traffic) satisfies the ack for free.
    // A crash part-way leaves the commit frame on disk with a torn sibling
    // stream; recovery's per-stream record counts void the commit
    // atomically, so durability is still all-or-nothing. (Under
    // sync_on_commit the sibling AppendBatch calls above already synced —
    // skipping this loop avoids a second fsync per sibling stream.)
    for (const auto& [s, count] : commit->stream_counts) {
      (void)count;
      if (s == commit_stream) continue;
      IDB_RETURN_IF_ERROR(streams_[s]->SyncThrough(sibling_end[s]));
    }
  }
  return Status::OK();
}

Status WalManager::Sync() {
  for (auto& stream : streams_) IDB_RETURN_IF_ERROR(stream->Sync());
  return Status::OK();
}

std::vector<Lsn> WalManager::StreamEnds() const {
  std::vector<Lsn> ends(streams_.size());
  for (size_t s = 0; s < streams_.size(); ++s) ends[s] = streams_[s]->next_lsn();
  return ends;
}

Status WalManager::WriteManifest(const std::vector<Lsn>& lsns) {
  std::string body;
  if (lsns.size() == 1) {
    // Legacy single-stream format, readable by (and identical to) the
    // pre-sharding CHECKPOINT file.
    PutVarint64(&body, lsns[0]);
  } else {
    PutVarint32(&body, static_cast<uint32_t>(lsns.size()));
    for (Lsn lsn : lsns) PutVarint64(&body, lsn);
  }
  std::string file;
  PutFixed32(&file, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  file += body;
  const std::string tmp = dir_ + "/" + kCheckpointFile + ".tmp";
  IDB_RETURN_IF_ERROR(env_->WriteStringToFile(tmp, file, /*sync=*/true));
  Status renamed = env_->RenameFile(tmp, dir_ + "/" + kCheckpointFile);
  if (!renamed.ok()) {
    // The previous manifest stays authoritative; drop the orphan so a later
    // crash cannot leave a stale .tmp to confuse a human (recovery never
    // reads it either way).
    (void)env_->RemoveFile(tmp);
  }
  return renamed;
}

Result<std::vector<Lsn>> WalManager::LogCheckpointAll(
    const std::vector<Lsn>& replay_from) {
  if (!replay_from.empty() && replay_from.size() != streams_.size()) {
    return Status::InvalidArgument("replay_from size != stream count");
  }
  // One checkpoint at a time (see checkpoint_mu_): the daemon's cadence and
  // caller-driven checkpoints would otherwise race the manifest rename.
  std::lock_guard<std::mutex> checkpoint_lock(checkpoint_mu_);
  std::vector<Lsn> lsns(streams_.size(), 0);
  for (size_t s = 0; s < streams_.size(); ++s) {
    IDB_ASSIGN_OR_RETURN(
        lsns[s], streams_[s]->BeginCheckpoint(
                     replay_from.empty() ? WalStream::kLogEnd : replay_from[s]));
  }
  // Retirement only after the manifest durably records the new replay
  // positions: segments must never disappear ahead of the pointer that
  // says they are no longer needed.
  IDB_RETURN_IF_ERROR(WriteManifest(lsns));
  for (size_t s = 0; s < streams_.size(); ++s) {
    IDB_RETURN_IF_ERROR(streams_[s]->RetireThrough(lsns[s]));
  }
  return lsns;
}

Result<std::vector<Lsn>> WalManager::ReadCheckpointPositions() const {
  std::vector<Lsn> lsns(streams_.size(), 0);
  const std::string path = dir_ + "/" + kCheckpointFile;
  if (!env_->FileExists(path)) return lsns;
  IDB_ASSIGN_OR_RETURN(std::string contents, env_->ReadFileToString(path));
  Slice input = contents;
  uint32_t masked;
  if (!GetFixed32(&input, &masked) ||
      crc32c::Unmask(masked) != crc32c::Value(input.data(), input.size())) {
    return Status::Corruption("bad CHECKPOINT file");
  }
  if (streams_.size() == 1) {
    uint64_t lsn;
    if (!GetVarint64(&input, &lsn)) {
      return Status::Corruption("bad CHECKPOINT payload");
    }
    lsns[0] = lsn;
    return lsns;
  }
  uint32_t count;
  if (!GetVarint32(&input, &count) || count != streams_.size()) {
    return Status::Corruption("CHECKPOINT stream count mismatch");
  }
  for (uint32_t s = 0; s < count; ++s) {
    uint64_t lsn;
    if (!GetVarint64(&input, &lsn)) {
      return Status::Corruption("bad CHECKPOINT payload");
    }
    lsns[s] = lsn;
  }
  return lsns;
}

Status WalManager::Replay(
    Lsn from, const std::function<Status(const WalRecord&, Lsn)>& fn) const {
  return streams_[0]->Replay(from, fn);
}

Status WalManager::ReplayStream(
    uint32_t stream, Lsn from,
    const std::function<Status(const WalRecord&, Lsn)>& fn) const {
  return streams_[stream]->Replay(from, fn);
}

Status WalManager::RecoverCommitted(
    const std::vector<Lsn>& from, bool stream_local_apply,
    const std::function<Status(const WalRecord&)>& redo,
    uint64_t* max_txn_id) {
  const size_t n = streams_.size();
  if (from.size() != n) {
    return Status::InvalidArgument("recovery position size != stream count");
  }

  // Pass 1 (parallel): per stream, how many data records each transaction
  // left behind, plus every commit frame's CSN and expected counts, plus
  // the id/sequence high-water marks the reopened log must resume above.
  struct CommitMeta {
    uint64_t seq = 0;
    std::vector<std::pair<uint32_t, uint32_t>> counts;
  };
  std::vector<std::map<uint64_t, uint64_t>> observed(n);  // txn -> records
  std::vector<std::map<uint64_t, CommitMeta>> commits(n);
  std::vector<uint64_t> max_txn(n, 0);
  std::vector<uint64_t> max_seq(n, 0);
  IDB_RETURN_IF_ERROR(ParallelFor(n, n, [&](size_t s) {
    return streams_[s]->Replay(from[s], [&](const WalRecord& record, Lsn) {
      // Track ids of torn transactions too: reusing one would let a new
      // generation's torn commit pass the record-count check with this
      // generation's records.
      max_txn[s] = std::max(max_txn[s], record.txn_id);
      if (record.type == WalRecordType::kCommit) {
        max_seq[s] = std::max(max_seq[s], record.commit_seq);
        commits[s].emplace(record.txn_id,
                           CommitMeta{record.commit_seq, record.stream_counts});
      } else if (IsDataRecord(record.type)) {
        ++observed[s][record.txn_id];
      }
      return Status::OK();
    });
  }));

  // New commits must sequence strictly after every surviving frame; a CSN
  // collision across crash generations would break the merge order (and
  // the atomicity check) on the next recovery.
  uint64_t high_txn = 0;
  uint64_t high_seq = 0;
  for (uint32_t s = 0; s < n; ++s) {
    high_txn = std::max(high_txn, max_txn[s]);
    high_seq = std::max(high_seq, max_seq[s]);
  }
  uint64_t expect = next_commit_seq_.load(std::memory_order_relaxed);
  while (high_seq + 1 > expect &&
         !next_commit_seq_.compare_exchange_weak(expect, high_seq + 1,
                                                 std::memory_order_relaxed)) {
  }
  if (max_txn_id != nullptr) *max_txn_id = high_txn;

  // Committed = commit frame present AND every per-stream record count
  // intact. A commit without counts is a legacy/single-stream frame whose
  // own stream ordering vouches for it (records precede the commit in the
  // same buffered write, so a torn tail that ate them ate the commit too).
  std::map<uint64_t, uint64_t> committed;  // txn -> commit seq
  for (uint32_t s = 0; s < n; ++s) {
    for (const auto& [txn_id, meta] : commits[s]) {
      bool intact = true;
      for (const auto& [stream, count] : meta.counts) {
        if (stream >= n) {
          intact = false;
          break;
        }
        const auto it = observed[stream].find(txn_id);
        if (it == observed[stream].end() || it->second < count) {
          intact = false;
          break;
        }
      }
      if (intact) committed.emplace(txn_id, meta.seq);
    }
  }

  // Pass 2: redo data records of committed transactions.
  if (stream_local_apply) {
    // Every table partition maps wholly into one stream, so any two
    // conflicting records share a stream and stream order already equals
    // commit order where it matters: streams replay concurrently.
    return ParallelFor(n, n, [&](size_t s) {
      return streams_[s]->Replay(from[s], [&](const WalRecord& record, Lsn) {
        if (!IsDataRecord(record.type)) return Status::OK();
        if (committed.count(record.txn_id) == 0) return Status::OK();
        return redo(record);
      });
    });
  }

  // Cross-stream ordering required (stream count does not divide the
  // partition count): gather the committed records and apply them globally
  // in commit-sequence order, records of one transaction in (stream,
  // stream-order) order.
  struct Pending {
    uint64_t seq;
    uint32_t stream;
    uint64_t index;
    WalRecord record;
  };
  std::vector<Pending> pending;
  for (uint32_t s = 0; s < n; ++s) {
    uint64_t index = 0;
    IDB_RETURN_IF_ERROR(streams_[s]->Replay(
        from[s], [&](const WalRecord& record, Lsn) {
          if (!IsDataRecord(record.type)) return Status::OK();
          const auto it = committed.find(record.txn_id);
          if (it == committed.end()) return Status::OK();
          pending.push_back({it->second, s, index++, record});
          return Status::OK();
        }));
  }
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Pending& a, const Pending& b) {
                     if (a.seq != b.seq) return a.seq < b.seq;
                     if (a.stream != b.stream) return a.stream < b.stream;
                     return a.index < b.index;
                   });
  for (const Pending& p : pending) IDB_RETURN_IF_ERROR(redo(p.record));
  return Status::OK();
}

Status WalManager::DestroyEpochKeysThrough(TableId table, Micros safe_time) {
  if (options_.privacy_mode != WalPrivacyMode::kEncryptedEpoch) {
    return Status::OK();
  }
  if (safe_time <= 0) return Status::OK();
  std::lock_guard<std::mutex> lock(epoch_mu_);
  // Epoch e covers [e*epoch, (e+1)*epoch); destroy every epoch that ends at
  // or before safe_time.
  const uint64_t end_epoch = EpochOf(safe_time - 1) + 1;
  uint64_t& watermark = epoch_watermark_[table];
  while (watermark < end_epoch) {
    const std::string id = WalEpochKeyId(table, watermark);
    if (!keys_->IsDestroyed(id)) {
      IDB_RETURN_IF_ERROR(keys_->Destroy(id));
      epoch_keys_destroyed_.fetch_add(1, std::memory_order_relaxed);
    }
    ++watermark;
  }
  return Status::OK();
}

WalManager::ExposureAudit WalManager::AuditExposure(Micros horizon) const {
  ExposureAudit audit;
  if (options_.privacy_mode != WalPrivacyMode::kEncryptedEpoch) {
    for (const auto& stream : streams_) {
      audit.exposed_segments += stream->ExposedPayloadSegments(horizon);
    }
  }
  if (options_.privacy_mode == WalPrivacyMode::kPlain) {
    // Every retirement under kPlain renamed the segment and left the bytes
    // on disk; none has ever been scrubbed.
    for (const auto& stream : streams_) {
      audit.unscrubbed_recycled += stream->stats().segments_retired;
    }
  }
  return audit;
}

Micros WalManager::EarliestPayloadDeadline() const {
  Micros earliest = kForever;
  for (const auto& stream : streams_) {
    earliest = std::min(earliest, stream->EarliestPayloadDeadline());
  }
  return earliest;
}

uint64_t WalManager::LingeringEpochKeys(TableId table, Micros safe_time) const {
  if (options_.privacy_mode != WalPrivacyMode::kEncryptedEpoch) return 0;
  if (safe_time <= 0) return 0;
  // Epoch e covers [e*epoch, (e+1)*epoch): every epoch ending at or before
  // safe_time must be dead. Count survivors among the table's live keys.
  const uint64_t end_epoch = EpochOf(safe_time - 1) + 1;
  const std::string prefix = StringPrintf("wal.t%u.e", table);
  uint64_t lingering = 0;
  keys_->ForEachLiveKeyId(prefix, [&](const std::string& id) {
    const uint64_t epoch = std::strtoull(id.c_str() + prefix.size(), nullptr, 10);
    if (epoch < end_epoch) ++lingering;
  });
  return lingering;
}

WalManager::Stats WalManager::stats() const {
  Stats total;
  for (const auto& stream : streams_) {
    const WalStream::Stats s = stream->stats();
    total.records_appended += s.records_appended;
    total.bytes_appended += s.bytes_appended;
    total.segments_created += s.segments_created;
    total.segments_retired += s.segments_retired;
    total.scrub_bytes += s.scrub_bytes;
    total.syncs += s.syncs;
    total.sync_requests += s.sync_requests;
    total.commits_absorbed += s.commits_absorbed;
    if (stream->poisoned()) ++total.poisoned_streams;
  }
  total.epoch_keys_destroyed =
      epoch_keys_destroyed_.load(std::memory_order_relaxed);
  return total;
}

}  // namespace instantdb
