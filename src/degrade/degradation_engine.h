#ifndef INSTANTDB_DEGRADE_DEGRADATION_ENGINE_H_
#define INSTANTDB_DEGRADE_DEGRADATION_ENGINE_H_

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/options.h"
#include "db/table.h"
#include "txn/transaction.h"
#include "util/worker_pool.h"

namespace instantdb {

/// \brief The sharded degrader: tracks the earliest pending transition
/// deadline across every partition of every table and fires degradation
/// steps as system transactions — the component that makes degradation
/// *timely* (paper §III).
///
/// Scheduling is per (table, partition): one pass collects every partition
/// with overdue work and drains it STEP-GRAINED over the Database's shared
/// worker pool (`DegradationOptions::worker_threads`). Each claim runs one
/// bounded degradation step and requeues the unit at the back while it
/// still has work, so an urgent (audit-repair) unit at the front of the
/// queue gets its first step within one step latency even when another
/// partition holds a deep backlog — no worker is pinned to one partition
/// for the whole pass. Distinct partitions never share physical state or
/// store locks, so workers proceed without interfering; within a partition
/// the paper's B8 bounded-interference property holds exactly as in the
/// serial engine.
///
/// Two drive modes:
///  - pumped: tests/benchmarks call `RunDue(now)` after advancing a
///    VirtualClock; everything is deterministic (workers join before RunDue
///    returns).
///  - background: `Start()` spawns a coordinator thread that sleeps on the
///    Clock until the next deadline (woken early when the deadline set
///    changes) and runs RunDue passes.
///
/// Each step locks only the head of one partition's (attribute, phase)
/// store; wait-die aborts are retried on the next pass and surfaced in the
/// stats.
class DegradationEngine {
 public:
  /// `pool` (optional, not owned, must outlive the engine) is the shared
  /// worker pool passes borrow workers from; null falls back to spawning
  /// one-shot threads per pass (standalone/test construction).
  DegradationEngine(TransactionManager* tm, Clock* clock,
                    const DegradationOptions& options,
                    WorkerPool* pool = nullptr);
  ~DegradationEngine();
  DegradationEngine(const DegradationEngine&) = delete;
  DegradationEngine& operator=(const DegradationEngine&) = delete;

  void RegisterTable(Table* table);
  /// Removes the table from the schedule and waits for any in-flight RunDue
  /// pass to finish, so the caller may destroy the Table afterwards.
  void UnregisterTable(TableId id);

  /// Runs every step whose deadline has passed at `now` (fanning overdue
  /// partitions out over the worker pool); returns the total number of
  /// attribute values moved/removed.
  Result<size_t> RunDue(Micros now);

  /// Earliest pending deadline over all tables (kForever when idle).
  Micros NextDeadline() const;

  /// Degradation backlog: (table, partition) units with overdue work at
  /// `now` — the same test RunDue schedules by. Non-zero means the engine
  /// is behind its deadlines; the service front end reads it as a
  /// backpressure signal (PressureState) and starts shedding foreground
  /// load so the floor holds. Walks every partition; callers cache it.
  size_t OverdueUnits(Micros now) const;

  /// Audit-driven repair: marks one (table, partition) unit as urgent. The
  /// next RunDue pass (the background coordinator is woken immediately)
  /// schedules urgent units at the FRONT of its first round, ahead of the
  /// regular deadline order — a failed deletion-assurance audit turns its
  /// overdue findings into top-priority work instead of waiting for the
  /// partition's turn. Unknown tables and partitions without overdue work
  /// are ignored at drain time, so stale enqueues are harmless.
  void EnqueueUrgent(TableId table, uint32_t partition);

  /// Background-thread mode.
  Status Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bounded quiesce: waits up to `max_wait` for an in-flight RunDue pass
  /// (caller-pumped or background) to drain, returning true when the engine
  /// is quiescent and false on timeout. Database::Close uses it after
  /// stopping the background thread so the final checkpoint runs against a
  /// settled state; the close is safe either way (checkpoints are fuzzy).
  bool Quiesce(Micros max_wait);

  /// Fault injection (tests only): while set, RunDue never schedules the
  /// (table, partition) unit, so its overdue values stay stale — the planted
  /// exposure a deletion-assurance audit must catch. Use with the pumped
  /// drive mode: a background coordinator would busy-spin on the skipped
  /// partition's permanently-overdue deadline.
  void TEST_FaultSkipPartition(TableId table, uint32_t partition, bool skip);

  struct Stats {
    uint64_t passes = 0;  // RunDue invocations that found due work
    uint64_t steps = 0;
    uint64_t values_moved = 0;
    uint64_t lock_aborts = 0;  // wait-die victims, retried next pass
    /// Urgent (audit-repair) units drained ahead of the regular order.
    uint64_t urgent_units = 0;
    /// Background passes that failed transiently (IOError/Busy) and were
    /// retried after a capped exponential backoff instead of hot-spinning
    /// on the still-overdue deadline.
    uint64_t io_retries = 0;
  };
  Stats stats() const;

  /// First I/O error any background pass hit (OK before any). Sticky:
  /// Database::Close surfaces it even after later retries succeeded.
  Status first_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
  }

 private:
  void BackgroundLoop();

  TransactionManager* const tm_;
  Clock* const clock_;
  const DegradationOptions options_;
  WorkerPool* const pool_;  // shared Database pool, may be null

  mutable std::mutex mu_;
  std::map<TableId, Table*> tables_;
  Stats stats_;
  Status first_error_;  // first background-pass I/O error, under mu_
  /// (table, partition) units RunDue must skip (TEST_FaultSkipPartition).
  std::set<std::pair<TableId, uint32_t>> fault_skip_;
  /// Audit-repair units to schedule ahead of the regular order; swapped out
  /// (and counted) by the next RunDue pass.
  std::set<std::pair<TableId, uint32_t>> urgent_;

  /// Held shared for the duration of a RunDue pass (whose workers step raw
  /// Table* outside mu_); UnregisterTable acquires it exclusively to
  /// quiesce before the table is destroyed (Quiesce does the same with a
  /// deadline, hence the _timed variant).
  mutable std::shared_timed_mutex run_mu_;

  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace instantdb

#endif  // INSTANTDB_DEGRADE_DEGRADATION_ENGINE_H_
